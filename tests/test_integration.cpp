// Cross-module integration tests: the traced receive path that feeds
// Tables 1/3 and Figure 1, end-to-end working-set invariants, and the
// library's headline claim checked natively (LDLP batches a backlog
// through each layer once).
#include <gtest/gtest.h>

#include "stack/rx_path_trace.hpp"
#include "trace/code_map_render.hpp"
#include "trace/working_set.hpp"

namespace ldlp {
namespace {

struct TracedPath : public ::testing::Test {
  stack::StackTracer tracer;
  trace::TraceBuffer buffer;

  void SetUp() override {
    ASSERT_TRUE(stack::trace_tcp_receive_ack(tracer, buffer, {512, 2}));
    ASSERT_GT(buffer.size(), 0u);
  }
};

TEST_F(TracedPath, WorkingSetTotalsNearPaper) {
  const auto ws = trace::analyze_working_set(buffer, 32);
  // Paper Table 1: code 30304 (row sum), RO 5088, mutable 3648. The model
  // must land within 15% on every column.
  EXPECT_NEAR(static_cast<double>(ws.code_bytes()), 30304.0, 30304.0 * 0.15);
  EXPECT_NEAR(static_cast<double>(ws.ro_bytes()), 5088.0, 5088.0 * 0.15);
  EXPECT_NEAR(static_cast<double>(ws.mut_bytes()), 3648.0, 3648.0 * 0.15);
}

TEST_F(TracedPath, EveryLayerContributes) {
  const auto ws = trace::analyze_working_set(buffer, 32);
  for (std::size_t i = 0;
       i <= static_cast<std::size_t>(trace::LayerClass::kCopyChecksum); ++i) {
    EXPECT_GT(ws.layers[i].code_lines, 0u)
        << trace::layer_name(static_cast<trace::LayerClass>(i));
  }
}

TEST_F(TracedPath, WorkingSetExceedsPrimaryCache) {
  // The paper's headline: the working set is >4x an 8 KB cache.
  const auto ws = trace::analyze_working_set(buffer, 32);
  EXPECT_GT(ws.code_bytes() + ws.ro_bytes(), 4u * 8192);
}

TEST_F(TracedPath, CodeDwarfsMessageContents) {
  // "message contents count for less than 10% of the memory system
  // traffic" — code+ro vs ~2.2 KB of message movement.
  const auto ws = trace::analyze_working_set(buffer, 32);
  const double code_traffic =
      static_cast<double>(ws.code_bytes() + ws.ro_bytes());
  EXPECT_GT(code_traffic, 10.0 * 2200.0 * 0.9);
}

TEST_F(TracedPath, PhasesAllPopulated) {
  const auto ws = trace::analyze_working_set(buffer, 32);
  // Entry touches little code; pkt intr and exit touch a lot.
  EXPECT_GT(ws.phases[0].code_bytes, 1000u);
  EXPECT_GT(ws.phases[1].code_bytes, 8000u);
  EXPECT_GT(ws.phases[2].code_bytes, 10000u);
  EXPECT_LT(ws.phases[0].code_bytes, ws.phases[1].code_bytes);
  EXPECT_LT(ws.phases[0].code_bytes, ws.phases[2].code_bytes);
}

TEST_F(TracedPath, LineSizeDeltasMatchPaperSigns) {
  const auto base = trace::analyze_working_set(buffer, 32);
  const auto fine = trace::analyze_working_set(buffer, 16);
  const auto coarse = trace::analyze_working_set(buffer, 64);
  // Table 3 signs: smaller lines -> fewer bytes, more lines; larger lines
  // -> more bytes, fewer lines. Magnitudes within loose bands.
  const double code16 = static_cast<double>(fine.code_bytes()) /
                        static_cast<double>(base.code_bytes());
  EXPECT_GT(code16, 0.80);  // paper: -13%
  EXPECT_LT(code16, 0.97);
  const double code64 = static_cast<double>(coarse.code_bytes()) /
                        static_cast<double>(base.code_bytes());
  EXPECT_GT(code64, 1.05);  // paper: +17%
  EXPECT_LT(code64, 1.40);
  const double ro16 = static_cast<double>(fine.ro_bytes()) /
                      static_cast<double>(base.ro_bytes());
  EXPECT_LT(ro16, 0.85);  // paper: -31%
}

TEST_F(TracedPath, TracingIsRepeatable) {
  stack::StackTracer tracer2;
  trace::TraceBuffer buffer2;
  ASSERT_TRUE(stack::trace_tcp_receive_ack(tracer2, buffer2, {512, 2}));
  const auto a = trace::analyze_working_set(buffer, 32);
  const auto b = trace::analyze_working_set(buffer2, 32);
  EXPECT_EQ(a.code_bytes(), b.code_bytes());
  EXPECT_EQ(a.ro_bytes(), b.ro_bytes());
  EXPECT_EQ(a.mut_bytes(), b.mut_bytes());
}

TEST_F(TracedPath, RenderedMapMentionsKeyFunctions) {
  const auto text = trace::render_code_map(tracer.code_map(), buffer);
  for (const char* fn : {"tcp_input", "in_cksum", "soreceive", "leintr",
                         "ip_output", "ether_input"}) {
    EXPECT_NE(text.find(fn), std::string::npos) << fn;
  }
}

TEST(TracerLifecycle, InactiveTracerRecordsNothing) {
  stack::StackTracer tracer;
  trace::TraceBuffer buffer;
  // No activation: instrumented helpers must be no-ops.
  stack::trace_fn(stack::Fn::kTcpInput);
  stack::trace_rgn(stack::Rgn::kTcpPcbMut);
  EXPECT_EQ(buffer.size(), 0u);
  EXPECT_EQ(stack::StackTracer::active(), nullptr);
}

TEST(TracerLifecycle, DeactivateStopsRecording) {
  stack::StackTracer tracer;
  trace::TraceBuffer buffer;
  tracer.activate(buffer);
  stack::trace_fn(stack::Fn::kTcpInput);
  const auto before = buffer.size();
  EXPECT_GT(before, 0u);
  tracer.deactivate();
  stack::trace_fn(stack::Fn::kTcpInput);
  EXPECT_EQ(buffer.size(), before);
}

TEST(TracerLifecycle, PayloadSizeScalesMessageTraffic) {
  // Bigger payloads change packet-content traffic but not the layer
  // working set (Table 1 excludes packet contents).
  auto measure = [](std::uint32_t payload) {
    stack::StackTracer tracer;
    trace::TraceBuffer buffer;
    EXPECT_TRUE(stack::trace_tcp_receive_ack(tracer, buffer, {payload, 2}));
    return trace::analyze_working_set(buffer, 32);
  };
  const auto small = measure(128);
  const auto large = measure(1024);
  EXPECT_NEAR(static_cast<double>(small.code_bytes()),
              static_cast<double>(large.code_bytes()),
              static_cast<double>(large.code_bytes()) * 0.05);
}

}  // namespace
}  // namespace ldlp
