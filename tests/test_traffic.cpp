// Unit tests for traffic generation: Poisson/deterministic/burst sources,
// size models, self-similar generator (mean rate + burstiness), Hurst
// estimation, trace save/load.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/stats.hpp"
#include "traffic/arrivals.hpp"
#include "traffic/hurst.hpp"
#include "traffic/self_similar.hpp"
#include "traffic/size_models.hpp"
#include "traffic/trace_io.hpp"

namespace ldlp::traffic {
namespace {

TEST(PoissonSource, MeanRateConverges) {
  PoissonSource source(1000.0, internet552_sizes(), 1);
  const auto trace = collect(source, 50.0);
  EXPECT_NEAR(static_cast<double>(trace.size()) / 50.0, 1000.0, 30.0);
}

TEST(PoissonSource, ExponentialGapCv) {
  // Coefficient of variation of exponential gaps is 1.
  PoissonSource source(500.0, internet552_sizes(), 2);
  RunningStats gaps;
  double prev = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const auto arrival = source.next();
    gaps.add(arrival->time - prev);
    prev = arrival->time;
  }
  EXPECT_NEAR(gaps.stddev() / gaps.mean(), 1.0, 0.05);
}

TEST(PoissonSource, MonotoneTimes) {
  PoissonSource source(2000.0, internet552_sizes(), 3);
  double prev = 0.0;
  for (int i = 0; i < 1000; ++i) {
    const auto arrival = source.next();
    EXPECT_GE(arrival->time, prev);
    prev = arrival->time;
  }
}

TEST(DeterministicSource, ExactSpacing) {
  DeterministicSource source(100.0, 64);
  EXPECT_DOUBLE_EQ(source.next()->time, 0.01);
  EXPECT_DOUBLE_EQ(source.next()->time, 0.02);
  EXPECT_EQ(source.next()->size_bytes, 64u);
}

TEST(BurstSource, MonotoneAndBursty) {
  BurstSource source(50.0, 8, 1e-5, 552, 4);
  double prev = -1.0;
  int tight_gaps = 0;
  for (int i = 0; i < 800; ++i) {
    const auto arrival = source.next();
    EXPECT_GE(arrival->time, prev);
    if (arrival->time - prev < 2e-5 && prev >= 0) ++tight_gaps;
    prev = arrival->time;
  }
  EXPECT_GT(tight_gaps, 600);  // 7 of every 8 gaps are intra-burst
}

TEST(SizeModels, FixedAlwaysSame) {
  FixedSize model(552);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(model.sample(rng), 552u);
  EXPECT_DOUBLE_EQ(model.mean(), 552.0);
}

TEST(SizeModels, MixtureMeanAndSupport) {
  MixtureSize model({{100, 1.0}, {300, 1.0}});
  Rng rng(2);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) {
    const auto size = model.sample(rng);
    EXPECT_TRUE(size == 100 || size == 300);
    stats.add(size);
  }
  EXPECT_DOUBLE_EQ(model.mean(), 200.0);
  EXPECT_NEAR(stats.mean(), 200.0, 3.0);
}

TEST(SizeModels, Ethernet1989IsBimodal) {
  auto model = ethernet1989_sizes();
  Rng rng(3);
  int small = 0;
  int large = 0;
  for (int i = 0; i < 10000; ++i) {
    const auto size = model->sample(rng);
    if (size <= 64) ++small;
    if (size >= 1072) ++large;
  }
  EXPECT_GT(small, 3000);
  EXPECT_GT(large, 2000);
}

TEST(SelfSimilar, MeanRateOnTarget) {
  SelfSimilarConfig cfg;
  cfg.mean_rate_per_sec = 800.0;
  cfg.duration_sec = 200.0;
  auto sizes = internet552_sizes();
  const auto trace = generate_self_similar_trace(cfg, *sizes, 77);
  const double rate = static_cast<double>(trace.size()) / cfg.duration_sec;
  EXPECT_NEAR(rate, 800.0, 200.0);  // heavy-tailed: wide tolerance
}

TEST(SelfSimilar, SortedAndSized) {
  SelfSimilarConfig cfg;
  cfg.duration_sec = 20.0;
  auto sizes = internet552_sizes();
  const auto trace = generate_self_similar_trace(cfg, *sizes, 5);
  ASSERT_FALSE(trace.empty());
  for (std::size_t i = 1; i < trace.size(); ++i)
    EXPECT_GE(trace[i].time, trace[i - 1].time);
  for (const auto& arrival : trace) EXPECT_EQ(arrival.size_bytes, 552u);
}

TEST(SelfSimilar, DeterministicInSeed) {
  SelfSimilarConfig cfg;
  cfg.duration_sec = 10.0;
  auto sizes = internet552_sizes();
  const auto a = generate_self_similar_trace(cfg, *sizes, 9);
  const auto b = generate_self_similar_trace(cfg, *sizes, 9);
  EXPECT_EQ(a, b);
}

TEST(SelfSimilar, BurstierThanPoisson) {
  // The whole point of the generator: long-range dependence. The Hurst
  // estimate of the ON/OFF aggregate must clearly exceed Poisson's 0.5.
  SelfSimilarConfig cfg;
  cfg.mean_rate_per_sec = 1000.0;
  cfg.duration_sec = 300.0;
  auto sizes = internet552_sizes();
  const auto ss = generate_self_similar_trace(cfg, *sizes, 21);
  const double h_ss = estimate_hurst_variance_time(ss);

  PoissonSource poisson(1000.0, internet552_sizes(), 22);
  const auto pp = collect(poisson, 300.0);
  const double h_pp = estimate_hurst_variance_time(pp);

  EXPECT_GT(h_ss, 0.7);
  EXPECT_LT(h_pp, 0.65);
  EXPECT_GT(h_ss, h_pp + 0.1);
}

TEST(TraceReplay, ReplaysAndScales) {
  std::vector<PacketArrival> trace{{1.0, 100}, {2.0, 200}};
  TraceReplaySource source(trace);
  source.set_time_scale(2.0);
  EXPECT_DOUBLE_EQ(source.next()->time, 2.0);
  EXPECT_EQ(source.next()->size_bytes, 200u);
  EXPECT_FALSE(source.next().has_value());
}

TEST(TraceIo, SaveLoadRoundTrip) {
  const std::string path = ::testing::TempDir() + "/ldlp_trace_test.txt";
  std::vector<PacketArrival> trace{{0.001, 64}, {0.5, 1518}, {100.25, 552}};
  ASSERT_TRUE(save_trace(path, trace));
  const auto loaded = load_trace(path);
  ASSERT_EQ(loaded.size(), trace.size());
  for (std::size_t i = 0; i < trace.size(); ++i) {
    EXPECT_NEAR(loaded[i].time, trace[i].time, 1e-9);
    EXPECT_EQ(loaded[i].size_bytes, trace[i].size_bytes);
  }
  std::remove(path.c_str());
}

TEST(TraceIo, MissingFileReturnsEmpty) {
  EXPECT_TRUE(load_trace("/nonexistent/path/trace.txt").empty());
}

TEST(SelfSimilar, InterarrivalMeanMatchesRate) {
  // The generator must honour its configured aggregate rate across the
  // range the tail benches use: the mean interarrival gap has to track
  // 1/rate even though individual gaps are wildly bursty. Heavy-tailed
  // ON/OFF superposition converges slowly, hence the wide-but-bounded
  // tolerance.
  auto sizes = internet552_sizes();
  for (const double rate : {200.0, 800.0, 3200.0}) {
    SelfSimilarConfig cfg;
    cfg.mean_rate_per_sec = rate;
    cfg.duration_sec = 200.0;
    const auto trace = generate_self_similar_trace(cfg, *sizes, 31);
    ASSERT_GT(trace.size(), 100u) << "rate " << rate;
    const double span = trace.back().time - trace.front().time;
    const double mean_gap = span / static_cast<double>(trace.size() - 1);
    EXPECT_NEAR(mean_gap, 1.0 / rate, 0.35 / rate) << "rate " << rate;
  }
}

TEST(Hurst, EstimatorSanityOnKnownStreams) {
  // The variance-time estimator itself has to be trustworthy before its
  // verdict on the self-similar generator means anything. Short-range
  // streams must read near (or below) 0.5: deterministic arrivals have
  // zero count variance at every aggregation level, Poisson arrivals are
  // the canonical H = 0.5 process. Degenerate input returns the 0.5
  // prior instead of garbage.
  DeterministicSource det(1000.0, 552);
  const auto even = collect(det, 300.0);
  EXPECT_LT(estimate_hurst_variance_time(even), 0.6);

  PoissonSource poisson(1000.0, internet552_sizes(), 7);
  const auto pp = collect(poisson, 300.0);
  const double h_pp = estimate_hurst_variance_time(pp);
  EXPECT_GT(h_pp, 0.35);
  EXPECT_LT(h_pp, 0.65);

  EXPECT_DOUBLE_EQ(estimate_hurst_variance_time({}), 0.5);

  // And the self-similar generator's estimate must be stable in seed:
  // three independent draws all clearly long-range dependent.
  SelfSimilarConfig cfg;
  cfg.mean_rate_per_sec = 1000.0;
  cfg.duration_sec = 300.0;
  auto sizes = internet552_sizes();
  for (const std::uint64_t seed : {11ULL, 12ULL, 13ULL}) {
    const auto ss = generate_self_similar_trace(cfg, *sizes, seed);
    EXPECT_GT(estimate_hurst_variance_time(ss), 0.65) << "seed " << seed;
  }
}

TEST(Collect, RespectsHorizonAndCount) {
  DeterministicSource source(100.0, 64);
  const auto by_time = collect(source, 0.055);
  EXPECT_EQ(by_time.size(), 5u);
  DeterministicSource source2(100.0, 64);
  const auto by_count = collect(source2, 1e9, 7);
  EXPECT_EQ(by_count.size(), 7u);
}

}  // namespace
}  // namespace ldlp::traffic
