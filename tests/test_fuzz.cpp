// Adversarial-input sweeps: every wire decoder in the library is fed
// random bytes and mutated valid messages. Decoders must never crash,
// never read out of bounds (exercised under the pool/packet bounds
// checks), and either reject or produce a structurally valid result that
// re-encodes cleanly. These run as parameterized suites over seeds so the
// corpus is wide but reproducible.
#include <gtest/gtest.h>

#include <vector>

#include "buf/packet.hpp"
#include "common/rng.hpp"
#include "dns/dns_msg.hpp"
#include "rpc/nfs_lite.hpp"
#include "signal/message.hpp"
#include "wire/arp.hpp"
#include "wire/ethernet.hpp"
#include "wire/ipv4.hpp"
#include "wire/tcp.hpp"
#include "wire/udp.hpp"

namespace ldlp {
namespace {

std::vector<std::uint8_t> random_bytes(Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> out(rng.bounded(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng());
  return out;
}

/// Typical header sizes: resizing a message to exactly one of these
/// lands the end of input on a parser's field boundary, where
/// off-by-one reads live. (eth 14, ip 20, ip+8, udp 8, tcp 20, arp 28,
/// eth+ip+udp 42...)
constexpr std::size_t kHeaderBoundaries[] = {1, 2, 4, 8, 12, 14, 20, 28, 42};

/// Flip bits/bytes of a valid message, truncate it, grow it with
/// garbage, or clip it to a header boundary. Unlike the naive
/// truncate-only version, mutants can end up *longer* than the
/// original, so parsers also see trailing junk past a valid message.
std::vector<std::uint8_t> mutate(Rng& rng, std::vector<std::uint8_t> bytes) {
  if (bytes.empty()) return bytes;
  const std::size_t edits = rng.bounded(4) + 1;
  for (std::size_t i = 0; i < edits; ++i) {
    const std::size_t at = rng.bounded(bytes.size());
    switch (rng.bounded(5)) {
      case 0: bytes[at] = static_cast<std::uint8_t>(rng()); break;
      case 1: bytes[at] ^= static_cast<std::uint8_t>(1u << rng.bounded(8)); break;
      case 2: bytes.resize(at); break;  // truncate
      case 3: {                         // append garbage
        const std::size_t extra = rng.bounded(32) + 1;
        for (std::size_t k = 0; k < extra; ++k)
          bytes.push_back(static_cast<std::uint8_t>(rng()));
        break;
      }
      case 4:  // snap the length onto a header boundary (grow or shrink)
        bytes.resize(kHeaderBoundaries[rng.bounded(std::size(kHeaderBoundaries))]);
        break;
    }
    if (bytes.empty()) break;
  }
  return bytes;
}

class FuzzSeeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FuzzSeeds, WireDecodersSurviveRandomBytes) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 500; ++trial) {
    const auto bytes = random_bytes(rng, 128);
    (void)wire::parse_eth(bytes);
    (void)wire::parse_arp(bytes);
    (void)wire::parse_ipv4(bytes);
    (void)wire::parse_udp(bytes);
    (void)wire::parse_tcp(bytes);
  }
}

TEST_P(FuzzSeeds, DnsDecoderSurvivesRandomBytes) {
  Rng rng(GetParam() ^ 0x1111);
  for (int trial = 0; trial < 300; ++trial) {
    (void)dns::decode(random_bytes(rng, 256));
  }
}

TEST_P(FuzzSeeds, DnsDecoderSurvivesMutatedMessages) {
  Rng rng(GetParam() ^ 0x2222);
  dns::DnsMessage msg = dns::DnsMessage::query(1234, "www.fuzz.example");
  msg.answers.push_back(dns::ResourceRecord::a("www.fuzz.example", 1, 60));
  msg.answers.push_back(
      dns::ResourceRecord::cname("alias.fuzz.example", "www.fuzz.example", 60));
  const auto valid = dns::encode(msg);
  for (int trial = 0; trial < 300; ++trial) {
    const auto decoded = dns::decode(mutate(rng, valid));
    if (decoded.has_value()) {
      // Whatever survived mutation must re-encode without blowing up.
      (void)dns::encode(*decoded);
    }
  }
}

TEST_P(FuzzSeeds, RpcDecoderSurvives) {
  Rng rng(GetParam() ^ 0x3333);
  rpc::RpcCall call;
  call.xid = 9;
  call.prog = rpc::kNfsProgram;
  call.vers = 2;
  call.proc = 4;
  call.args = random_bytes(rng, 64);
  const auto valid = rpc::encode_call(call);
  for (int trial = 0; trial < 300; ++trial) {
    (void)rpc::decode_rpc(random_bytes(rng, 200));
    (void)rpc::decode_rpc(mutate(rng, valid));
  }
}

TEST_P(FuzzSeeds, SignallingDecoderSurvives) {
  Rng rng(GetParam() ^ 0x4444);
  const std::uint8_t digits[] = {1, 2, 3};
  const auto valid = signal::encode(
      signal::make_setup(55, digits, digits, {100, 50}));
  for (int trial = 0; trial < 300; ++trial) {
    (void)signal::decode(random_bytes(rng, 160));
    const auto decoded = signal::decode(mutate(rng, valid));
    if (decoded.has_value()) (void)signal::encode(*decoded);
  }
}

TEST_P(FuzzSeeds, RoundTripSurvivors) {
  // Property: any DNS message that decodes must decode identically after
  // one encode/decode cycle (idempotent normal form).
  Rng rng(GetParam() ^ 0x5555);
  for (int trial = 0; trial < 200; ++trial) {
    const auto bytes = random_bytes(rng, 300);
    const auto first = dns::decode(bytes);
    if (!first.has_value()) continue;
    const auto second = dns::decode(dns::encode(*first));
    ASSERT_TRUE(second.has_value());
    EXPECT_EQ(second->id, first->id);
    EXPECT_EQ(second->questions.size(), first->questions.size());
    EXPECT_EQ(second->answers.size(), first->answers.size());
  }
}

TEST_P(FuzzSeeds, MbufChainOpsSurviveCorruptChains) {
  // The mbuf chain operations see chains built from mutated wire bytes,
  // sliced at random offsets, and with a deliberately inconsistent
  // cached pkt_len. They must never crash or read out of bounds, and the
  // pool must come back leak-free.
  Rng rng(GetParam() ^ 0x6666);
  buf::MbufPool pool(128, 64);
  const auto seed_msg =
      dns::encode(dns::DnsMessage::query(77, "chain.fuzz.example"));
  for (int trial = 0; trial < 200; ++trial) {
    const auto bytes = mutate(rng, seed_msg);
    buf::Packet pkt = buf::Packet::from_bytes(pool, bytes);
    if (pkt.empty()) continue;

    // Desynchronize the cached header length from the chain's true
    // length — exactly what a corrupting layer would produce.
    pkt.head()->set_pkt_len(static_cast<std::uint32_t>(rng.bounded(512)));

    const std::uint32_t len = pkt.length();
    switch (rng.bounded(4)) {
      case 0:
        (void)pkt.pullup(static_cast<std::uint32_t>(rng.bounded(len + 32)));
        break;
      case 1: {
        // Trim front or back, sometimes more than the chain holds.
        const auto n = static_cast<std::int32_t>(rng.bounded(len + 16));
        pkt.adj(rng.chance(0.5) ? n : -n);
        break;
      }
      case 2: {
        buf::Packet tail =
            pkt.split(static_cast<std::uint32_t>(rng.bounded(len + 16)));
        if (!tail.empty() && rng.chance(0.5)) pkt.cat(std::move(tail));
        break;
      }
      case 3: {
        std::vector<std::uint8_t> scratch(rng.bounded(64) + 1);
        (void)pkt.copy_out(static_cast<std::uint32_t>(rng.bounded(len + 8)),
                           scratch);
        (void)pkt.append(scratch);
        break;
      }
    }
    pkt.sync_pkt_len();
    EXPECT_EQ(pkt.length(), pkt.head() != nullptr ? pkt.head()->pkt_len() : 0u);
    pkt.reset();
  }
  EXPECT_EQ(pool.stats().mbufs_outstanding(), 0u);
  EXPECT_EQ(pool.stats().clusters_outstanding(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzSeeds,
                         ::testing::Range<std::uint64_t>(1, 13));

}  // namespace
}  // namespace ldlp
