// TCP behaviour tests: handshake, data transfer, header-prediction fast
// path, delayed ACKs, loss recovery, out-of-order buffering, orderly and
// abortive close, PCB demux cache.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "stack/host.hpp"

namespace ldlp::stack {
namespace {

using wire::ip_from_parts;

struct TcpPair {
  std::unique_ptr<Host> client;
  std::unique_ptr<Host> server;
  PcbId conn = kNoPcb;
  PcbId accepted = kNoPcb;

  explicit TcpPair(core::SchedMode mode = core::SchedMode::kConventional,
                   TcpConfig tcp = {}) {
    HostConfig cc;
    cc.name = "client";
    cc.mac = {2, 0, 0, 0, 0, 1};
    cc.ip = ip_from_parts(10, 0, 0, 1);
    cc.mode = mode;
    cc.tcp = tcp;
    HostConfig cs = cc;
    cs.name = "server";
    cs.mac = {2, 0, 0, 0, 0, 2};
    cs.ip = ip_from_parts(10, 0, 0, 2);
    client = std::make_unique<Host>(cc);
    server = std::make_unique<Host>(cs);
    NetDevice::connect(client->device(), server->device());
    server->tcp().set_accept_hook([this](PcbId id) { accepted = id; });
  }

  void settle(int rounds = 12) {
    for (int i = 0; i < rounds; ++i) {
      client->pump();
      server->pump();
    }
  }

  /// Advance both clocks and run timers + pumps.
  void tick(double dt, int rounds = 4) {
    client->advance(dt);
    server->advance(dt);
    settle(rounds);
  }

  bool establish(std::uint16_t port = 80) {
    (void)server->tcp().listen(port);
    conn = client->tcp().connect(ip_from_parts(10, 0, 0, 2), port);
    settle();
    return client->tcp().state(conn) == TcpState::kEstablished &&
           accepted != kNoPcb &&
           server->tcp().state(accepted) == TcpState::kEstablished;
  }

  std::vector<std::uint8_t> drain_server_socket(std::size_t n) {
    std::vector<std::uint8_t> out(n);
    const std::size_t got =
        server->sockets().read(server->tcp().socket_of(accepted), out);
    out.resize(got);
    return out;
  }
};

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(TcpHandshake, ThreeWayEstablishes) {
  TcpPair net;
  EXPECT_TRUE(net.establish());
  EXPECT_EQ(net.client->tcp().tcp_stats().conns_established, 1u);
  EXPECT_EQ(net.server->tcp().tcp_stats().conns_established, 1u);
}

TEST(TcpHandshake, SynToClosedPortGetsRst) {
  TcpPair net;
  const PcbId conn = net.client->tcp().connect(ip_from_parts(10, 0, 0, 2), 81);
  net.settle();
  EXPECT_EQ(net.client->tcp().state(conn), TcpState::kClosed);
  EXPECT_EQ(net.server->tcp().tcp_stats().rsts_sent, 1u);
}

TEST(TcpHandshake, MssNegotiatedDownward) {
  TcpConfig small;
  small.mss = 512;
  TcpPair net(core::SchedMode::kConventional, small);
  ASSERT_TRUE(net.establish());
  // Send more than one MSS; every segment on the wire must respect it.
  std::vector<std::uint8_t> data(2000, 0x5c);
  ASSERT_TRUE(net.client->tcp().send(net.conn, data));
  net.settle();
  EXPECT_EQ(net.drain_server_socket(4000), data);
  EXPECT_GE(net.client->tcp().pcb_stats(net.conn).segs_out, 4u);
}

TEST(TcpData, SimpleTransfer) {
  TcpPair net;
  ASSERT_TRUE(net.establish());
  const auto msg = bytes_of("the quick brown fox");
  ASSERT_TRUE(net.client->tcp().send(net.conn, msg));
  net.settle();
  EXPECT_EQ(net.drain_server_socket(100), msg);
}

TEST(TcpData, BidirectionalTransfer) {
  TcpPair net;
  ASSERT_TRUE(net.establish());
  ASSERT_TRUE(net.client->tcp().send(net.conn, bytes_of("ping")));
  net.settle();
  ASSERT_TRUE(net.server->tcp().send(net.accepted, bytes_of("pong")));
  net.settle();
  EXPECT_EQ(net.drain_server_socket(10), bytes_of("ping"));
  std::vector<std::uint8_t> out(10);
  const std::size_t got = net.client->sockets().read(
      net.client->tcp().socket_of(net.conn), out);
  out.resize(got);
  EXPECT_EQ(out, bytes_of("pong"));
}

TEST(TcpData, LargeTransferIsByteExact) {
  TcpPair net;
  ASSERT_TRUE(net.establish());
  std::vector<std::uint8_t> data(20000);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i * 31 + 7);
  // Send in chunks, draining as we go so the receive window keeps moving.
  std::vector<std::uint8_t> received;
  std::size_t sent = 0;
  for (int round = 0; round < 100 && received.size() < data.size(); ++round) {
    if (sent < data.size()) {
      const std::size_t take = std::min<std::size_t>(4000, data.size() - sent);
      if (net.client->tcp().send(
              net.conn, {data.data() + sent, take}))
        sent += take;
    }
    net.tick(0.01, 3);
    const auto chunk = net.drain_server_socket(8000);
    received.insert(received.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(received, data);
}

TEST(TcpData, FastPathDominatesBulkReceive) {
  TcpPair net;
  ASSERT_TRUE(net.establish());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        net.client->tcp().send(net.conn, std::vector<std::uint8_t>(512, i)));
    net.settle(3);
    (void)net.drain_server_socket(2000);
  }
  const auto& stats = net.server->tcp().pcb_stats(net.accepted);
  EXPECT_GE(stats.fast_path, 15u);
  EXPECT_GT(stats.fast_path, stats.slow_path);
}

TEST(TcpData, AckEverySecondSegment) {
  TcpConfig cfg;
  cfg.delack_every = 2;
  TcpPair net(core::SchedMode::kConventional, cfg);
  ASSERT_TRUE(net.establish());
  const auto& before = net.server->tcp().pcb_stats(net.accepted);
  const auto acks_before = before.acks_sent;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        net.client->tcp().send(net.conn, std::vector<std::uint8_t>(100, i)));
    net.settle(2);
  }
  const auto acks_after = net.server->tcp().pcb_stats(net.accepted).acks_sent;
  // 8 data segments -> ~4 ACKs (every second one).
  EXPECT_GE(acks_after - acks_before, 3u);
  EXPECT_LE(acks_after - acks_before, 5u);
}

TEST(TcpData, SingleEntryPcbCacheHits) {
  TcpPair net;
  ASSERT_TRUE(net.establish());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        net.client->tcp().send(net.conn, std::vector<std::uint8_t>(64, i)));
    net.settle(2);
  }
  const auto& stats = net.server->tcp().tcp_stats();
  EXPECT_GT(stats.pcb_cache_hits, stats.pcb_cache_misses);
}

TEST(TcpLoss, RetransmissionRecovers) {
  TcpPair net;
  ASSERT_TRUE(net.establish());
  // Drop everything the server hears for a while.
  net.server->device().set_loss(1.0, 7);
  ASSERT_TRUE(net.client->tcp().send(net.conn, bytes_of("lost-once")));
  net.settle();
  EXPECT_TRUE(net.drain_server_socket(100).empty());
  // Heal the wire; the retransmit timer resends.
  net.server->device().set_loss(0.0);
  for (int i = 0; i < 10; ++i) net.tick(0.3);
  EXPECT_EQ(net.drain_server_socket(100), bytes_of("lost-once"));
  EXPECT_GE(net.client->tcp().pcb_stats(net.conn).retransmits, 1u);
}

TEST(TcpLoss, LossyLinkEventuallyDeliversEverything) {
  TcpPair net;
  ASSERT_TRUE(net.establish());
  net.server->device().set_loss(0.3, 11);
  net.client->device().set_loss(0.3, 13);
  std::vector<std::uint8_t> data(4000);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i);
  ASSERT_TRUE(net.client->tcp().send(net.conn, data));
  std::vector<std::uint8_t> received;
  for (int round = 0; round < 400 && received.size() < data.size(); ++round) {
    net.tick(0.25, 2);
    const auto chunk = net.drain_server_socket(8000);
    received.insert(received.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(received, data);
}

TEST(TcpLoss, ReorderedSegmentsUseOooBuffer) {
  TcpPair net;
  ASSERT_TRUE(net.establish());
  net.server->device().set_reorder(0.5, 23);
  std::vector<std::uint8_t> data(6000);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i * 5 + 1);
  ASSERT_TRUE(net.client->tcp().send(net.conn, data));
  std::vector<std::uint8_t> received;
  for (int round = 0; round < 200 && received.size() < data.size(); ++round) {
    net.tick(0.05, 2);
    const auto chunk = net.drain_server_socket(8000);
    received.insert(received.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(received, data);
  EXPECT_GT(net.server->tcp().pcb_stats(net.accepted).ooo_buffered, 0u);
}

TEST(TcpLoss, ReorderAndLossTogether) {
  TcpPair net;
  ASSERT_TRUE(net.establish());
  net.server->device().set_reorder(0.3, 29);
  net.server->device().set_loss(0.15, 31);
  std::vector<std::uint8_t> data(3000);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i ^ 0x55);
  ASSERT_TRUE(net.client->tcp().send(net.conn, data));
  std::vector<std::uint8_t> received;
  for (int round = 0; round < 400 && received.size() < data.size(); ++round) {
    net.tick(0.2, 2);
    const auto chunk = net.drain_server_socket(8000);
    received.insert(received.end(), chunk.begin(), chunk.end());
  }
  EXPECT_EQ(received, data);
}

TEST(TcpClose, OrderlyFinSequence) {
  TcpPair net;
  ASSERT_TRUE(net.establish());
  net.client->tcp().close(net.conn);
  net.settle();
  EXPECT_EQ(net.server->tcp().state(net.accepted), TcpState::kCloseWait);
  net.server->tcp().close(net.accepted);
  net.settle();
  EXPECT_EQ(net.server->tcp().state(net.accepted), TcpState::kClosed);
  EXPECT_EQ(net.client->tcp().state(net.conn), TcpState::kTimeWait);
  net.tick(2.0);  // 2MSL (shortened) expires
  EXPECT_EQ(net.client->tcp().state(net.conn), TcpState::kClosed);
}

TEST(TcpClose, CloseFlushesQueuedData) {
  TcpPair net;
  ASSERT_TRUE(net.establish());
  ASSERT_TRUE(net.client->tcp().send(net.conn, bytes_of("final words")));
  net.client->tcp().close(net.conn);
  net.settle();
  EXPECT_EQ(net.drain_server_socket(100), bytes_of("final words"));
  EXPECT_EQ(net.server->tcp().state(net.accepted), TcpState::kCloseWait);
}

TEST(TcpClose, AbortSendsRst) {
  TcpPair net;
  ASSERT_TRUE(net.establish());
  net.client->tcp().abort(net.conn);
  net.settle();
  EXPECT_EQ(net.client->tcp().state(net.conn), TcpState::kClosed);
  EXPECT_EQ(net.server->tcp().state(net.accepted), TcpState::kClosed);
  EXPECT_GE(net.server->tcp().tcp_stats().conns_reset, 1u);
}

TEST(TcpClose, SendAfterCloseRefused) {
  TcpPair net;
  ASSERT_TRUE(net.establish());
  net.client->tcp().close(net.conn);
  EXPECT_FALSE(net.client->tcp().send(net.conn, bytes_of("late")));
}

TEST(TcpScheduling, LdlpDeliversIdenticalStream) {
  std::vector<std::uint8_t> data(6000);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i * 3);
  for (const auto mode :
       {core::SchedMode::kConventional, core::SchedMode::kLdlp}) {
    TcpPair net(mode);
    ASSERT_TRUE(net.establish());
    ASSERT_TRUE(net.client->tcp().send(net.conn, data));
    std::vector<std::uint8_t> received;
    for (int round = 0; round < 60 && received.size() < data.size(); ++round) {
      net.tick(0.01, 3);
      const auto chunk = net.drain_server_socket(8000);
      received.insert(received.end(), chunk.begin(), chunk.end());
    }
    EXPECT_EQ(received, data) << "mode=" << static_cast<int>(mode);
  }
}

TEST(TcpScheduling, LdlpBatchesBackloggedSegments) {
  TcpPair net(core::SchedMode::kLdlp);
  ASSERT_TRUE(net.establish());
  net.server->eth().reset_stats();  // discard per-frame handshake batches
  // Queue several segments on the wire before the server pumps once.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(
        net.client->tcp().send(net.conn, std::vector<std::uint8_t>(200, i)));
    net.client->pump();
  }
  EXPECT_GE(net.server->device().rx_pending(), 6u);
  net.server->pump();
  // All six data segments traversed the stack in one blocked pass.
  EXPECT_EQ(net.drain_server_socket(4000).size(), 1200u);
  const auto& eth_stats = net.server->eth().stats();
  EXPECT_GE(eth_stats.mean_batch(), 5.0);
}

TEST(TcpPools, NoMbufLeakAcrossSession) {
  std::uint64_t outstanding = 0;
  {
    TcpPair net;
    ASSERT_TRUE(net.establish());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(net.client->tcp().send(net.conn,
                                         std::vector<std::uint8_t>(700, i)));
      net.settle(3);
      (void)net.drain_server_socket(8000);
    }
    net.client->tcp().close(net.conn);
    net.server->tcp().close(net.accepted);
    net.tick(2.0);
    outstanding = net.client->pool().stats().mbufs_outstanding() +
                  net.server->pool().stats().mbufs_outstanding();
  }
  EXPECT_EQ(outstanding, 0u);
}

TEST(TcpClose, NoRetransmitTimerFiresAfterAbort) {
  // Regression: a PCB's retransmit timer must be disarmed when the
  // connection dies. Leave data unacked (armed rtx), abort, then advance
  // far past every rtx deadline — nothing may leave the closed PCB.
  TcpPair net;
  ASSERT_TRUE(net.establish());
  net.server->device().set_loss(1.0, 42);  // black-hole: data stays unacked
  ASSERT_TRUE(net.client->tcp().send(net.conn, bytes_of("doomed")));
  net.settle();
  net.client->tcp().abort(net.conn);
  net.client->pump();
  ASSERT_EQ(net.client->tcp().state(net.conn), TcpState::kClosed);
  const auto tx_before = net.client->device().stats().tx_frames;
  const auto rtx_before = net.client->tcp().pcb_stats(net.conn).retransmits;
  for (int i = 0; i < 24; ++i) net.tick(0.5);  // >> rto_max_sec
  EXPECT_EQ(net.client->device().stats().tx_frames, tx_before);
  EXPECT_EQ(net.client->tcp().pcb_stats(net.conn).retransmits, rtx_before);
}

TEST(TcpClose, CloseFromSynSentCancelsTimers) {
  // Connect toward a host that never answers, close while in SYN_SENT;
  // the SYN rtx timer must not keep firing afterwards.
  TcpPair net;
  net.server->device().set_loss(1.0, 7);  // server never hears the SYN
  const PcbId conn = net.client->tcp().connect(ip_from_parts(10, 0, 0, 2), 80);
  net.settle();
  ASSERT_EQ(net.client->tcp().state(conn), TcpState::kSynSent);
  net.client->tcp().close(conn);
  EXPECT_EQ(net.client->tcp().state(conn), TcpState::kClosed);
  const auto tx_before = net.client->device().stats().tx_frames;
  const auto arp_before = net.client->eth().arp().stats().retries;
  for (int i = 0; i < 40; ++i) net.tick(0.5);
  // The SYN itself is parked awaiting ARP (the dark server never answers
  // requests either), so the retry timer legitimately re-requests until
  // it gives up — but nothing TCP may leave the closed PCB.
  const auto arp_retries = net.client->eth().arp().stats().retries - arp_before;
  EXPECT_EQ(net.client->device().stats().tx_frames, tx_before + arp_retries);
  EXPECT_EQ(net.client->eth().arp().stats().resolve_failures, 1u);
}

}  // namespace
}  // namespace ldlp::stack
