// Recovery and liveness tests: RST generation/acceptance windows,
// keepalive teardown of dead peers, TIME_WAIT reuse, and the
// ldlp::recover oracles — ConvergenceOracle settling after partition,
// link-flap and host-restart episodes, and the ProgressWatchdog catching
// silent wedges (the persist-timer mutation revert-guard).
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <vector>

#include "fault/injector.hpp"
#include "recover/convergence.hpp"
#include "recover/watchdog.hpp"
#include "stack/host.hpp"
#include "wire/checksum.hpp"
#include "wire/tcp.hpp"

namespace ldlp::recover {
namespace {

using stack::Host;
using stack::HostConfig;
using stack::kNoPcb;
using stack::kNoSocket;
using stack::NetDevice;
using stack::PcbId;
using stack::SocketId;
using stack::TcpConfig;
using stack::TcpState;
using wire::ip_from_parts;

struct Pair {
  HostConfig cc, cs;
  std::unique_ptr<Host> client;
  std::unique_ptr<Host> server;
  PcbId conn = kNoPcb;
  PcbId accepted = kNoPcb;
  SocketId accepted_socket = kNoSocket;

  explicit Pair(TcpConfig tcp = {},
                core::SchedMode mode = core::SchedMode::kConventional) {
    cc.name = "client";
    cc.mac = {2, 0, 0, 0, 0, 1};
    cc.ip = ip_from_parts(10, 0, 0, 1);
    cc.mode = mode;
    cc.tcp = tcp;
    cs = cc;
    cs.name = "server";
    cs.mac = {2, 0, 0, 0, 0, 2};
    cs.ip = ip_from_parts(10, 0, 0, 2);
    client = std::make_unique<Host>(cc);
    server = std::make_unique<Host>(cs);
    NetDevice::connect(client->device(), server->device());
    server->tcp().set_accept_hook([this](PcbId id) {
      accepted = id;
      accepted_socket = server->tcp().socket_of(id);
    });
  }

  void settle(int rounds = 12) {
    for (int i = 0; i < rounds; ++i) {
      client->pump();
      server->pump();
    }
  }

  void tick(double dt, int rounds = 4) {
    client->advance(dt);
    server->advance(dt);
    settle(rounds);
  }

  bool establish(std::uint16_t port = 80) {
    (void)server->tcp().listen(port);
    conn = client->tcp().connect(cs.ip, port);
    settle();
    return client->tcp().state(conn) == TcpState::kEstablished &&
           accepted != kNoPcb &&
           server->tcp().state(accepted) == TcpState::kEstablished;
  }

  std::size_t read_server(std::vector<std::uint8_t>& out) {
    std::uint8_t chunk[2048];
    const std::size_t n = server->sockets().read(accepted_socket, chunk);
    out.insert(out.end(), chunk, chunk + n);
    return n;
  }

  /// Hand-craft a minimal client→server TCP segment (no payload) with a
  /// valid transport checksum, ready for device().inject().
  std::vector<std::uint8_t> craft_to_server(std::uint16_t src_port,
                                            std::uint16_t dst_port,
                                            std::uint32_t seq,
                                            std::uint32_t ack,
                                            std::uint8_t flags) {
    std::vector<std::uint8_t> frame(wire::kEthHeaderLen +
                                    wire::kIpMinHeaderLen +
                                    wire::kTcpMinHeaderLen);
    wire::EthHeader eth;
    eth.dst = cs.mac;
    eth.src = cc.mac;
    eth.ether_type = static_cast<std::uint16_t>(wire::EtherType::kIpv4);
    wire::write_eth(eth, frame);

    wire::Ipv4Header ip;
    ip.total_len = wire::kIpMinHeaderLen + wire::kTcpMinHeaderLen;
    ip.protocol = static_cast<std::uint8_t>(wire::IpProto::kTcp);
    ip.src = cc.ip;
    ip.dst = cs.ip;
    wire::write_ipv4(ip, {frame.data() + wire::kEthHeaderLen,
                          wire::kIpMinHeaderLen});

    wire::TcpHeader tcp;
    tcp.src_port = src_port;
    tcp.dst_port = dst_port;
    tcp.seq = seq;
    tcp.ack = ack;
    tcp.flags = flags;
    tcp.window = 4096;
    const std::size_t off = wire::kEthHeaderLen + wire::kIpMinHeaderLen;
    wire::write_tcp(tcp, {frame.data() + off, wire::kTcpMinHeaderLen});

    wire::CksumAccumulator acc;
    acc.sum = wire::pseudo_header_sum(
        cc.ip, cs.ip, static_cast<std::uint8_t>(wire::IpProto::kTcp),
        wire::kTcpMinHeaderLen);
    acc.add({frame.data() + off, wire::kTcpMinHeaderLen}, /*simple=*/true);
    const std::uint16_t sum = acc.finish();
    frame[off + 16] = static_cast<std::uint8_t>(sum >> 8);
    frame[off + 17] = static_cast<std::uint8_t>(sum & 0xff);
    return frame;
  }
};

// ---- RST lifecycle -----------------------------------------------------

TEST(RstRecovery, SendToRestartedPeerResetsConnection) {
  Pair net;
  ASSERT_TRUE(net.establish());

  // The server reboots: all connection state vanishes without a trace on
  // the wire. The client's next segment must draw a RST (no PCB matches)
  // and the client must tear its half down instead of retransmitting
  // into the void forever.
  net.server->restart();
  const std::vector<std::uint8_t> data(256, 0xab);
  ASSERT_TRUE(net.client->tcp().send(net.conn, data));
  for (int i = 0;
       i < 40 && net.client->tcp().state(net.conn) != TcpState::kClosed; ++i)
    net.tick(0.05);

  EXPECT_EQ(net.client->tcp().state(net.conn), TcpState::kClosed);
  EXPECT_GE(net.server->tcp().tcp_stats().rsts_sent, 1u);
  EXPECT_GE(net.client->tcp().tcp_stats().conns_reset, 1u);
}

TEST(RstRecovery, OutOfWindowRstIgnored) {
  Pair net;
  ASSERT_TRUE(net.establish());
  const std::uint16_t cport = net.client->tcp().pcb_view(net.conn).local_port;
  const std::uint32_t rcv_nxt =
      net.server->tcp().pcb_view(net.accepted).rcv_nxt;

  // A blind RST far outside the receive window must be dropped silently
  // (RFC 5961 spirit): honouring it would hand off-path attackers — or a
  // stale duplicate from an old incarnation — a connection kill.
  net.server->device().inject(net.craft_to_server(
      cport, 80, rcv_nxt + (1u << 20), 0, wire::tcpflags::kRst));
  net.settle();

  EXPECT_EQ(net.server->tcp().state(net.accepted), TcpState::kEstablished);
  EXPECT_EQ(net.server->tcp().tcp_stats().rsts_ignored, 1u);
  EXPECT_EQ(net.server->tcp().tcp_stats().conns_reset, 0u);
}

TEST(RstRecovery, InWindowRstAbortsConnection) {
  Pair net;
  ASSERT_TRUE(net.establish());
  const std::uint16_t cport = net.client->tcp().pcb_view(net.conn).local_port;
  const std::uint32_t rcv_nxt =
      net.server->tcp().pcb_view(net.accepted).rcv_nxt;

  // The same RST at exactly rcv_nxt is a legitimate abort.
  net.server->device().inject(
      net.craft_to_server(cport, 80, rcv_nxt, 0, wire::tcpflags::kRst));
  net.settle();

  EXPECT_EQ(net.server->tcp().state(net.accepted), TcpState::kClosed);
  EXPECT_EQ(net.server->tcp().tcp_stats().conns_reset, 1u);
  EXPECT_EQ(net.server->tcp().tcp_stats().rsts_ignored, 0u);
}

// ---- Keepalive ---------------------------------------------------------

TcpConfig keepalive_config() {
  TcpConfig tcp;
  tcp.keepalive_idle_sec = 1.0;
  tcp.keepalive_intvl_sec = 0.5;
  tcp.keepalive_probes = 3;
  return tcp;
}

TEST(Keepalive, DeadPeerTornDownAfterProbes) {
  Pair net(keepalive_config());
  ASSERT_TRUE(net.establish());

  // Everything addressed to the client now vanishes: from the client's
  // perspective the peer has silently died. Idle detection must probe
  // (1 s idle, then every 0.5 s) and give up after 3 unanswered probes
  // instead of holding the connection open forever.
  net.client->device().set_loss(1.0);
  for (int i = 0;
       i < 120 && net.client->tcp().state(net.conn) != TcpState::kClosed; ++i)
    net.tick(0.1);

  EXPECT_EQ(net.client->tcp().state(net.conn), TcpState::kClosed);
  EXPECT_EQ(net.client->tcp().tcp_stats().keepalive_drops, 1u);
  EXPECT_EQ(net.client->tcp().pcb_view(net.conn).stats.keepalive_probes, 3u);
}

TEST(Keepalive, LivePeerAnswersProbesConnectionSurvives) {
  Pair net(keepalive_config());
  ASSERT_TRUE(net.establish());

  // Idle well past several probe cycles. A live peer answers each probe
  // (zero-length acceptability ACK), so the connection must survive and
  // still carry data afterwards.
  for (int i = 0; i < 40; ++i) net.tick(0.1);
  EXPECT_EQ(net.client->tcp().state(net.conn), TcpState::kEstablished);
  EXPECT_EQ(net.server->tcp().state(net.accepted), TcpState::kEstablished);
  EXPECT_GE(net.client->tcp().pcb_view(net.conn).stats.keepalive_probes, 1u);
  EXPECT_EQ(net.client->tcp().tcp_stats().keepalive_drops, 0u);

  const std::vector<std::uint8_t> data(64, 0x5e);
  ASSERT_TRUE(net.client->tcp().send(net.conn, data));
  net.settle();
  std::vector<std::uint8_t> got;
  net.read_server(got);
  EXPECT_EQ(got, data);
}

// ---- Close choreography ------------------------------------------------

TEST(CloseRecovery, SimultaneousCloseConverges) {
  Pair net;
  ASSERT_TRUE(net.establish());

  // Both ends close before either FIN has flown: the FINs cross in
  // flight. Both sides must still converge to a terminal state within
  // the liveness budget — no handshake ordering assumption.
  net.client->tcp().close(net.conn);
  net.server->tcp().close(net.accepted);

  ConvergenceOracle conv;
  conv.add_host(*net.client);
  conv.add_host(*net.server);
  conv.arm();
  for (int i = 0; i < 400 && !conv.settled(); ++i) {
    net.tick(0.05);
    conv.on_pass();
  }
  EXPECT_TRUE(conv.settled());
  EXPECT_TRUE(conv.ok()) << conv.violations()[0];

  // After 2MSL both sides must be fully Closed, not parked in TimeWait.
  for (int i = 0; i < 30; ++i) net.tick(0.1);
  EXPECT_EQ(net.client->tcp().state(net.conn), TcpState::kClosed);
  EXPECT_EQ(net.server->tcp().state(net.accepted), TcpState::kClosed);
}

TEST(CloseRecovery, FreshSynShortcutsTimeWait) {
  Pair net;
  ASSERT_TRUE(net.establish());
  const std::uint16_t cport = net.client->tcp().pcb_view(net.conn).local_port;

  // Server closes first, then the client: the server's side ends up in
  // TIME_WAIT holding the 4-tuple.
  net.server->tcp().close(net.accepted);
  for (int i = 0; i < 10; ++i) net.tick(0.02);
  net.client->tcp().close(net.conn);
  for (int i = 0; i < 10 && net.server->tcp().state(net.accepted) !=
                                TcpState::kTimeWait;
       ++i)
    net.tick(0.02);
  ASSERT_EQ(net.server->tcp().state(net.accepted), TcpState::kTimeWait);

  // A fresh SYN on the same 4-tuple with a sequence beyond the old
  // incarnation's receive point cannot be a stray duplicate: the 2MSL
  // wait is cut short and the SYN goes to the listener.
  const std::uint32_t rcv_nxt =
      net.server->tcp().pcb_view(net.accepted).rcv_nxt;
  net.server->device().inject(net.craft_to_server(
      cport, 80, rcv_nxt + 1000, 0, wire::tcpflags::kSyn));
  net.settle();

  EXPECT_EQ(net.server->tcp().tcp_stats().time_wait_reuses, 1u);
}

// ---- Persist-timer revert guard ----------------------------------------

/// Drive the zero-window wedge from the PR-4 persist fix: fill the
/// receiver until the window closes with nothing in flight, then drain.
/// Only a persist probe can restart the transfer. Returns bytes read.
std::size_t run_zero_window_drain(Pair& net, ConvergenceOracle& conv,
                                  ProgressWatchdog* dog, int drain_ticks) {
  std::vector<std::uint8_t> payload(24000);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i * 31 + 5);
  std::size_t queued = 0;
  for (int i = 0; i < 200 && queued < payload.size(); ++i) {
    const std::span<const std::uint8_t> rest(payload.data() + queued,
                                             payload.size() - queued);
    if (net.client->tcp().send(net.conn, rest)) queued = payload.size();
    net.tick(0.05);
  }
  EXPECT_EQ(queued, payload.size()) << "send buffer never drained";
  for (int i = 0; i < 40; ++i) net.tick(0.05);

  conv.arm();
  std::vector<std::uint8_t> got;
  for (int i = 0; i < drain_ticks && !conv.settled(); ++i) {
    net.tick(0.05);
    conv.on_pass();
    if (dog != nullptr) dog->on_pass();
    net.read_server(got);
  }
  // Settling is a kernel-level verdict (all bytes ACKed, queues empty);
  // whatever reached the receive socket is still waiting for the app.
  while (net.read_server(got) > 0) {
  }
  return got.size();
}

TEST(PersistGuard, ConvergenceOracleCatchesDisabledPersistTimer) {
  // Mutation revert-guard: re-introduce the PR-4 bug via the config
  // hook. With the persist timer off, the transfer wedges at the closed
  // window — the oracle must flag it, proving the fix is load-bearing
  // and the oracle would catch a regression.
  TcpConfig broken;
  broken.enable_persist_timer = false;
  Pair net(broken);
  ASSERT_TRUE(net.establish());

  ConvergenceOracle conv(ConvergenceConfig{/*budget_passes=*/400});
  conv.add_host(*net.client);
  conv.add_host(*net.server);
  const std::size_t got = run_zero_window_drain(net, conv, nullptr, 600);

  EXPECT_LT(got, 24000u) << "wedge did not form — mutation not exercised";
  EXPECT_FALSE(conv.ok())
      << "oracle missed the persist-timer wedge";
  ASSERT_FALSE(conv.violations().empty());
  EXPECT_EQ(net.client->tcp().pcb_stats(net.conn).persist_probes, 0u);
}

TEST(PersistGuard, PersistTimerEnabledConvergesCleanly) {
  // Control arm: the shipped configuration completes the same transfer
  // and settles within the default liveness budget.
  Pair net;
  ASSERT_TRUE(net.establish());

  ConvergenceOracle conv;
  conv.add_host(*net.client);
  conv.add_host(*net.server);
  const std::size_t got = run_zero_window_drain(net, conv, nullptr, 900);

  EXPECT_EQ(got, 24000u);
  EXPECT_TRUE(conv.settled());
  EXPECT_TRUE(conv.ok()) << conv.violations()[0];
  EXPECT_GT(net.client->tcp().pcb_stats(net.conn).persist_probes, 0u);
}

TEST(Watchdog, FlagsSilentZeroWindowStall) {
  // Same wedge, watched by the ProgressWatchdog: the client holds 8 KB
  // of send buffer while its progress counters stand perfectly still —
  // total silence with work pending is exactly its trigger.
  TcpConfig broken;
  broken.enable_persist_timer = false;
  Pair net(broken);
  ASSERT_TRUE(net.establish());

  ConvergenceOracle conv(ConvergenceConfig{/*budget_passes=*/100000});
  ProgressWatchdog dog(WatchdogConfig{/*stall_passes=*/100});
  dog.add_host(*net.client);
  conv.add_host(*net.client);
  (void)run_zero_window_drain(net, conv, &dog, 250);

  EXPECT_FALSE(dog.ok());
  EXPECT_GE(dog.stats().stalls_flagged, 1u);
}

TEST(Watchdog, QuietOnHealthyTransfer) {
  Pair net;
  ASSERT_TRUE(net.establish());

  ProgressWatchdog dog(WatchdogConfig{/*stall_passes=*/100});
  dog.add_host(*net.client);
  dog.add_host(*net.server);

  const std::vector<std::uint8_t> payload(8000, 0x3c);
  ASSERT_TRUE(net.client->tcp().send(net.conn, payload));
  std::vector<std::uint8_t> got;
  for (int i = 0; i < 200 && got.size() < payload.size(); ++i) {
    net.tick(0.05);
    dog.on_pass();
    net.read_server(got);
  }
  EXPECT_EQ(got.size(), payload.size());
  EXPECT_TRUE(dog.ok()) << dog.violations()[0];
  EXPECT_EQ(dog.stats().stalls_flagged, 0u);
}

// ---- Healing fault episodes --------------------------------------------

TEST(Heal, PartitionHealsAndTransferCompletes) {
  Pair net;
  ASSERT_TRUE(net.establish());

  // One-way partition at the client's NIC from the first tick: ACKs
  // vanish, the client backs off and retransmits, and once the
  // partition lifts the stream must complete byte-exact and every
  // connection must settle.
  fault::FaultPlan plan;
  fault::Episode ep;
  ep.kind = fault::FaultKind::kPartition;
  ep.start = 0.0;
  ep.end = 0.5;
  plan.add(ep);
  fault::FaultInjector inj(std::move(plan), /*seed=*/7);
  net.client->attach_fault(&inj);

  ConvergenceOracle conv;
  ProgressWatchdog dog;
  conv.add_host(*net.client, &inj);
  conv.add_host(*net.server);
  dog.add_host(*net.client, &inj);
  dog.add_host(*net.server);

  std::vector<std::uint8_t> payload(8000);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i * 13 + 1);
  ASSERT_TRUE(net.client->tcp().send(net.conn, payload));
  conv.arm();

  std::vector<std::uint8_t> got;
  for (int i = 0; i < 600 && !conv.settled(); ++i) {
    net.tick(0.05);
    conv.on_pass();
    dog.on_pass();
    net.read_server(got);
  }
  net.read_server(got);

  EXPECT_EQ(got, payload);
  EXPECT_TRUE(conv.settled());
  EXPECT_TRUE(conv.ok()) << conv.violations()[0];
  EXPECT_TRUE(dog.ok()) << dog.violations()[0];
  EXPECT_GE(inj.stats().partition_dropped, 1u);
  net.client->attach_fault(nullptr);
}

TEST(Heal, HostRestartConvergesToCleanReset) {
  Pair net;
  ASSERT_TRUE(net.establish());

  // The server crashes mid-transfer and comes back with no memory of
  // the connection. The client's retransmissions after the reboot draw
  // a RST; convergence here means "reset cleanly", not "complete". The
  // payload overfills the receive window (nobody reads), so the client
  // is guaranteed to still hold undelivered bytes when the crash hits.
  fault::FaultPlan plan;
  fault::Episode ep;
  ep.kind = fault::FaultKind::kHostRestart;
  ep.start = 0.5;
  ep.end = 0.9;
  plan.add(ep);
  fault::FaultInjector inj(std::move(plan), /*seed=*/7);
  net.server->attach_fault(&inj);

  ConvergenceOracle conv;
  conv.add_host(*net.client);
  conv.add_host(*net.server, &inj);

  const std::vector<std::uint8_t> payload(60000, 0x77);
  ASSERT_TRUE(net.client->tcp().send(net.conn, payload));
  conv.arm();

  for (int i = 0; i < 400 && !conv.settled(); ++i) {
    net.tick(0.05);
    conv.on_pass();
  }

  EXPECT_TRUE(conv.settled());
  EXPECT_TRUE(conv.ok()) << conv.violations()[0];
  EXPECT_EQ(inj.stats().host_restarts, 1u);
  EXPECT_EQ(net.client->tcp().state(net.conn), TcpState::kClosed);
  net.server->attach_fault(nullptr);
}

TEST(Heal, OracleNotReadyWhileFaultsActive) {
  Pair net;
  ASSERT_TRUE(net.establish());

  fault::FaultPlan plan;
  fault::Episode ep;
  ep.kind = fault::FaultKind::kPartition;
  ep.start = 0.0;
  ep.end = 1.0;
  plan.add(ep);
  fault::FaultInjector inj(std::move(plan), /*seed=*/7);
  net.client->attach_fault(&inj);

  ConvergenceOracle conv(ConvergenceConfig{/*budget_passes=*/5});
  conv.add_host(*net.client, &inj);
  conv.add_host(*net.server);
  conv.arm();

  // The liveness budget must not tick while the world is still burning:
  // twenty passes inside the episode, far past the 5-pass budget, with
  // an unconverged connection on the books must flag nothing.
  const std::vector<std::uint8_t> payload(4000, 0x21);
  ASSERT_TRUE(net.client->tcp().send(net.conn, payload));
  for (int i = 0; i < 20; ++i) {
    net.tick(0.02);
    conv.on_pass();
  }
  EXPECT_FALSE(conv.ready());
  EXPECT_TRUE(conv.ok());

  // After the episode ends the budget starts counting — and since
  // post-heal retransmit recovery takes far more than 5 passes, the
  // deliberately tiny budget must now flag, proving it is live.
  std::vector<std::uint8_t> got;
  for (int i = 0; i < 400 && !conv.settled(); ++i) {
    net.tick(0.05);
    conv.on_pass();
    net.read_server(got);
  }
  EXPECT_TRUE(conv.ready());
  EXPECT_TRUE(conv.settled());
  EXPECT_FALSE(conv.ok());
  net.client->attach_fault(nullptr);
}

// ---- ARP retry timer ---------------------------------------------------
//
// ARP requests used to be sent only when a packet parked, with a
// park-count backoff. A lone parked packet whose single request died on
// the wire was therefore never re-requested: the mbuf sat in the park
// queue forever (the 256-seed heal soak caught this as an mbuf leak).
// The timer-driven retry path below is the fix's revert-guard.

TEST(ArpRetry, LostRequestRetriedByTimer) {
  Pair net;
  // Kill the server's RX so the client's first (and only) ARP request
  // dies in flight, leaving the datagram parked with no request pending.
  net.server->device().set_loss(1.0, 11);

  const std::vector<std::uint8_t> payload = {0xde, 0xad, 0xbe, 0xef};
  net.client->udp().send(5000, net.cs.ip, 7000, payload);
  for (int i = 0; i < 3; ++i) net.tick(0.1);
  ASSERT_EQ(net.client->eth().arp().stats().requests_allowed, 1u);
  ASSERT_EQ(net.client->eth().arp().stats().retries, 0u);
  ASSERT_FALSE(net.client->eth().arp().lookup(net.cs.ip).has_value());

  // Heal the link; only the retry timer can rescue the parked datagram.
  net.server->device().set_loss(0.0);
  for (int i = 0; i < 8; ++i) net.tick(0.1);

  EXPECT_GE(net.client->eth().arp().stats().retries, 1u);
  EXPECT_TRUE(net.client->eth().arp().lookup(net.cs.ip).has_value());
  EXPECT_EQ(net.server->udp().udp_stats().rx, 1u);
  EXPECT_EQ(net.client->eth().arp().stats().resolve_failures, 0u);
}

TEST(ArpRetry, UnresolvableTargetExpiresParkedPackets) {
  Pair net;
  const std::uint64_t before = net.client->pool().stats().mbufs_outstanding();

  const std::vector<std::uint8_t> payload = {0x42};
  net.client->udp().send(5000, ip_from_parts(10, 0, 0, 99), 7000, payload);
  net.tick(0.05);
  ASSERT_GT(net.client->pool().stats().mbufs_outstanding(), before);

  // Retries back off 0.5 s doubling to 4 s; five tries then the entry is
  // expired and its parked packets freed — EHOSTDOWN, not a leak.
  for (int i = 0; i < 40; ++i) net.tick(0.5);

  const stack::ArpCacheStats& as = net.client->eth().arp().stats();
  EXPECT_EQ(as.retries, 5u);
  EXPECT_EQ(as.resolve_failures, 1u);
  EXPECT_EQ(net.client->pool().stats().mbufs_outstanding(), before);
  std::string why;
  EXPECT_TRUE(net.client->eth().arp().audit(&why)) << why;
}

}  // namespace
}  // namespace ldlp::recover
