// Unit and property tests for the wire codecs and checksums.
#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "buf/packet.hpp"
#include "common/rng.hpp"
#include "wire/arp.hpp"
#include "wire/checksum.hpp"
#include "wire/ethernet.hpp"
#include "wire/hexdump.hpp"
#include "wire/ipv4.hpp"
#include "wire/tcp.hpp"
#include "wire/udp.hpp"

namespace ldlp::wire {
namespace {

TEST(Checksum, Rfc1071Example) {
  // Classic example: 0x0001 0xf203 0xf4f5 0xf6f7 -> sum 0xddf2,
  // checksum ~0xddf2 = 0x220d.
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(cksum_simple(data), 0x220d);
  EXPECT_EQ(cksum_unrolled(data), 0x220d);
}

TEST(Checksum, ZeroesAndOnes) {
  std::vector<std::uint8_t> zeros(100, 0);
  EXPECT_EQ(cksum_simple(zeros), 0xffff);
  std::vector<std::uint8_t> ones(64, 0xff);
  EXPECT_EQ(cksum_simple(ones), 0x0000);
}

TEST(Checksum, OddLengthTrailingByte) {
  const std::uint8_t data[] = {0x12, 0x34, 0x56};
  // Words: 0x1234, 0x5600 -> sum 0x6834 -> ~ = 0x97cb.
  EXPECT_EQ(cksum_simple(data), 0x97cb);
  EXPECT_EQ(cksum_unrolled(data), 0x97cb);
}

TEST(Checksum, SimpleEqualsUnrolledRandom) {
  Rng rng(404);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> data(rng.bounded(1500) + 1);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    ASSERT_EQ(cksum_simple(data), cksum_unrolled(data)) << "len=" << data.size();
  }
}

TEST(Checksum, AccumulatorSplitsArbitrarily) {
  // The incremental accumulator over any segmentation must equal the
  // one-shot checksum — including odd-length segments.
  Rng rng(405);
  for (int trial = 0; trial < 100; ++trial) {
    std::vector<std::uint8_t> data(rng.bounded(700) + 2);
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    const std::uint16_t whole = cksum_simple(data);

    CksumAccumulator acc;
    std::size_t pos = 0;
    while (pos < data.size()) {
      const std::size_t take =
          std::min<std::size_t>(rng.bounded(9) + 1, data.size() - pos);
      acc.add({data.data() + pos, take}, trial % 2 == 0);
      pos += take;
    }
    ASSERT_EQ(acc.finish(), whole) << "trial=" << trial;
  }
}

TEST(Checksum, PacketChainMatchesFlat) {
  buf::MbufPool pool(64, 16);
  Rng rng(406);
  std::vector<std::uint8_t> data(3000);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng());
  buf::Packet pkt = buf::Packet::from_bytes(pool, data);
  ASSERT_GT(pkt.chain_count(), 1u);
  EXPECT_EQ(cksum_packet(pkt, 0, 3000),
            cksum_simple(data));
  // Offset/length window.
  EXPECT_EQ(cksum_packet(pkt, 100, 552),
            cksum_simple({data.data() + 100, 552}));
}

TEST(Checksum, VerifyPropertyRoundTrip) {
  // Storing ~sum into the data makes the recomputed checksum 0.
  std::vector<std::uint8_t> data(40, 0);
  for (std::size_t i = 0; i < data.size(); ++i)
    data[i] = static_cast<std::uint8_t>(i * 7);
  data[10] = data[11] = 0;  // checksum field
  const std::uint16_t sum = cksum_simple(data);
  data[10] = static_cast<std::uint8_t>(sum >> 8);
  data[11] = static_cast<std::uint8_t>(sum);
  EXPECT_EQ(cksum_simple(data), 0);
}

TEST(Ethernet, HeaderRoundTrip) {
  EthHeader header;
  header.dst = {1, 2, 3, 4, 5, 6};
  header.src = {7, 8, 9, 10, 11, 12};
  header.ether_type = static_cast<std::uint16_t>(EtherType::kIpv4);
  std::uint8_t buf[kEthHeaderLen];
  EXPECT_EQ(write_eth(header, buf), kEthHeaderLen);
  const auto parsed = parse_eth(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->dst, header.dst);
  EXPECT_EQ(parsed->src, header.src);
  EXPECT_EQ(parsed->ether_type, header.ether_type);
  EXPECT_FALSE(parsed->is_broadcast());
}

TEST(Ethernet, ShortFrameRejected) {
  std::uint8_t buf[10] = {};
  EXPECT_FALSE(parse_eth(buf).has_value());
  EXPECT_EQ(write_eth(EthHeader{}, {buf, 10}), 0u);
}

TEST(Ethernet, MacToString) {
  EXPECT_EQ(mac_to_string({0xde, 0xad, 0xbe, 0xef, 0x00, 0x01}),
            "de:ad:be:ef:00:01");
}

TEST(Arp, RoundTrip) {
  ArpPacket pkt;
  pkt.op = ArpOp::kReply;
  pkt.sender_mac = {1, 1, 1, 1, 1, 1};
  pkt.sender_ip = ip_from_parts(10, 0, 0, 1);
  pkt.target_mac = {2, 2, 2, 2, 2, 2};
  pkt.target_ip = ip_from_parts(10, 0, 0, 2);
  std::uint8_t buf[kArpLen];
  EXPECT_EQ(write_arp(pkt, buf), kArpLen);
  const auto parsed = parse_arp(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->op, ArpOp::kReply);
  EXPECT_EQ(parsed->sender_ip, pkt.sender_ip);
  EXPECT_EQ(parsed->target_mac, pkt.target_mac);
}

TEST(Arp, RejectsWrongHardwareType) {
  ArpPacket pkt;
  std::uint8_t buf[kArpLen];
  write_arp(pkt, buf);
  buf[0] = 9;  // not Ethernet
  EXPECT_FALSE(parse_arp(buf).has_value());
}

TEST(Ipv4, RoundTripWithChecksum) {
  Ipv4Header header;
  header.total_len = 572;
  header.ident = 0x1234;
  header.dont_fragment = true;
  header.ttl = 17;
  header.protocol = 6;
  header.src = ip_from_parts(192, 168, 1, 1);
  header.dst = ip_from_parts(192, 168, 1, 2);
  std::uint8_t buf[kIpMinHeaderLen];
  EXPECT_EQ(write_ipv4(header, buf), kIpMinHeaderLen);
  const auto parsed = parse_ipv4(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->total_len, 572);
  EXPECT_EQ(parsed->ident, 0x1234);
  EXPECT_TRUE(parsed->dont_fragment);
  EXPECT_FALSE(parsed->more_fragments);
  EXPECT_EQ(parsed->ttl, 17);
  EXPECT_EQ(parsed->src, header.src);
  EXPECT_FALSE(parsed->is_fragment());
}

TEST(Ipv4, CorruptionDetected) {
  Ipv4Header header;
  header.total_len = 100;
  header.src = 1;
  header.dst = 2;
  std::uint8_t buf[kIpMinHeaderLen];
  write_ipv4(header, buf);
  buf[8] ^= 0x40;  // flip a TTL bit: checksum now wrong
  EXPECT_FALSE(parse_ipv4(buf).has_value());
}

TEST(Ipv4, FragmentFieldsRoundTrip) {
  Ipv4Header header;
  header.total_len = 1500;
  header.more_fragments = true;
  header.frag_offset = 185;  // x8 = 1480 bytes
  std::uint8_t buf[kIpMinHeaderLen];
  write_ipv4(header, buf);
  const auto parsed = parse_ipv4(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(parsed->is_fragment());
  EXPECT_TRUE(parsed->more_fragments);
  EXPECT_EQ(parsed->frag_offset, 185);
}

TEST(Ipv4, RejectsBadVersionAndLengths) {
  std::uint8_t buf[kIpMinHeaderLen] = {};
  Ipv4Header header;
  header.total_len = 40;
  write_ipv4(header, buf);
  std::uint8_t bad[kIpMinHeaderLen];
  std::copy(std::begin(buf), std::end(buf), bad);
  bad[0] = 0x65;  // version 6
  EXPECT_FALSE(parse_ipv4(bad).has_value());
  std::copy(std::begin(buf), std::end(buf), bad);
  bad[0] = 0x44;  // ihl 4 < 5
  EXPECT_FALSE(parse_ipv4(bad).has_value());
  EXPECT_FALSE(parse_ipv4({buf, 10}).has_value());  // truncated
}

TEST(Ipv4, IpStringHelpers) {
  const std::uint32_t ip = ip_from_parts(10, 1, 2, 3);
  EXPECT_EQ(ip, 0x0a010203u);
  EXPECT_EQ(ip_to_string(ip), "10.1.2.3");
}

TEST(Udp, RoundTrip) {
  UdpHeader header{5353, 53, 108, 0xbeef};
  std::uint8_t buf[kUdpHeaderLen];
  EXPECT_EQ(write_udp(header, buf), kUdpHeaderLen);
  const auto parsed = parse_udp(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->src_port, 5353);
  EXPECT_EQ(parsed->dst_port, 53);
  EXPECT_EQ(parsed->length, 108);
  EXPECT_EQ(parsed->checksum, 0xbeef);
}

TEST(Udp, RejectsImpossibleLength) {
  UdpHeader header{1, 2, 4, 0};  // length < header
  std::uint8_t buf[kUdpHeaderLen];
  write_udp(header, buf);
  EXPECT_FALSE(parse_udp(buf).has_value());
}

TEST(Tcp, RoundTripPlain) {
  TcpHeader header;
  header.src_port = 49152;
  header.dst_port = 80;
  header.seq = 0xdeadbeef;
  header.ack = 0x01020304;
  header.flags = tcpflags::kAck | tcpflags::kPsh;
  header.window = 8192;
  std::uint8_t buf[kTcpMinHeaderLen];
  EXPECT_EQ(write_tcp(header, buf), kTcpMinHeaderLen);
  const auto parsed = parse_tcp(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->seq, 0xdeadbeefu);
  EXPECT_EQ(parsed->ack, 0x01020304u);
  EXPECT_TRUE(parsed->has(tcpflags::kAck));
  EXPECT_TRUE(parsed->has(tcpflags::kPsh));
  EXPECT_FALSE(parsed->has(tcpflags::kSyn));
  EXPECT_FALSE(parsed->mss.has_value());
}

TEST(Tcp, MssOptionRoundTrip) {
  TcpHeader header;
  header.flags = tcpflags::kSyn;
  header.mss = 1460;
  std::uint8_t buf[kTcpMinHeaderLen + 4];
  EXPECT_EQ(write_tcp(header, buf), kTcpMinHeaderLen + 4);
  const auto parsed = parse_tcp(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->header_len(), kTcpMinHeaderLen + 4);
  ASSERT_TRUE(parsed->mss.has_value());
  EXPECT_EQ(*parsed->mss, 1460);
}

TEST(Tcp, MalformedOptionsRejected) {
  TcpHeader header;
  header.mss = 1460;
  std::uint8_t buf[kTcpMinHeaderLen + 4];
  write_tcp(header, buf);
  buf[kTcpMinHeaderLen + 1] = 9;  // option length beyond the header
  EXPECT_FALSE(parse_tcp(buf).has_value());
}

TEST(Tcp, BadDataOffsetRejected) {
  TcpHeader header;
  std::uint8_t buf[kTcpMinHeaderLen];
  write_tcp(header, buf);
  buf[12] = 0x30;  // data_off = 3 words
  EXPECT_FALSE(parse_tcp(buf).has_value());
}

TEST(PseudoHeader, TransportChecksumVerifies) {
  buf::MbufPool pool(16, 4);
  // Build a UDP-ish segment and verify via the pseudo-header path.
  std::vector<std::uint8_t> seg(20, 0x11);
  seg[6] = seg[7] = 0;  // checksum field offset for this fake layout
  buf::Packet pkt = buf::Packet::from_bytes(pool, seg);
  const std::uint32_t src = ip_from_parts(1, 2, 3, 4);
  const std::uint32_t dst = ip_from_parts(5, 6, 7, 8);
  const std::uint16_t sum = transport_cksum(pkt, 0, 20, src, dst, 17);
  std::uint8_t sum_bytes[2] = {static_cast<std::uint8_t>(sum >> 8),
                               static_cast<std::uint8_t>(sum)};
  ASSERT_TRUE(pkt.copy_in(6, sum_bytes));
  EXPECT_EQ(transport_cksum(pkt, 0, 20, src, dst, 17), 0);
  // A different pseudo-header must not verify. (Swapping src/dst would:
  // one's-complement addition is commutative — so perturb an address.)
  EXPECT_NE(transport_cksum(pkt, 0, 20, src + 1, dst, 17), 0);
  EXPECT_NE(transport_cksum(pkt, 0, 20, src, dst, 6), 0);
}

TEST(Hexdump, FormatsBytes) {
  const std::uint8_t data[] = {'H', 'i', 0x00, 0xff};
  const std::string out = hexdump({data, 4});
  EXPECT_NE(out.find("48 69 00 ff"), std::string::npos);
  EXPECT_NE(out.find("|Hi..|"), std::string::npos);
}

// ---- Directed malformed input: truncation at every boundary ----------------
//
// Each parser must reject every strict prefix of a minimal valid message.
// Byte-at-a-time truncation catches off-by-one length checks that a single
// "too short" probe (or the random fuzzer) can miss.

template <typename Parser>
void expect_all_prefixes_rejected(std::span<const std::uint8_t> valid,
                                  Parser parse) {
  ASSERT_TRUE(parse(valid).has_value()) << "baseline message must parse";
  for (std::size_t len = 0; len < valid.size(); ++len) {
    EXPECT_FALSE(parse(valid.first(len)).has_value())
        << "accepted a " << len << "-byte prefix of a " << valid.size()
        << "-byte message";
  }
}

TEST(Malformed, EthernetTruncationSweep) {
  EthHeader header;
  header.dst = {1, 2, 3, 4, 5, 6};
  header.src = {7, 8, 9, 10, 11, 12};
  header.ether_type = static_cast<std::uint16_t>(EtherType::kIpv4);
  std::uint8_t buf[kEthHeaderLen];
  ASSERT_EQ(write_eth(header, buf), kEthHeaderLen);
  expect_all_prefixes_rejected(
      buf, [](std::span<const std::uint8_t> d) { return parse_eth(d); });
}

TEST(Malformed, ArpTruncationSweep) {
  ArpPacket pkt;
  pkt.op = ArpOp::kRequest;
  pkt.sender_ip = ip_from_parts(10, 0, 0, 1);
  pkt.target_ip = ip_from_parts(10, 0, 0, 2);
  std::uint8_t buf[kArpLen];
  ASSERT_EQ(write_arp(pkt, buf), kArpLen);
  expect_all_prefixes_rejected(
      buf, [](std::span<const std::uint8_t> d) { return parse_arp(d); });
}

TEST(Malformed, Ipv4TruncationSweep) {
  Ipv4Header header;
  header.total_len = 40;
  header.protocol = 17;
  header.ttl = 64;
  header.src = ip_from_parts(10, 0, 0, 1);
  header.dst = ip_from_parts(10, 0, 0, 2);
  std::uint8_t buf[kIpMinHeaderLen];
  ASSERT_EQ(write_ipv4(header, buf), kIpMinHeaderLen);
  expect_all_prefixes_rejected(
      buf, [](std::span<const std::uint8_t> d) { return parse_ipv4(d); });
}

TEST(Malformed, Ipv4OptionsTruncationSweep) {
  // ihl = 6: a 24-byte header. Truncating anywhere inside the options
  // must reject even though 20 bytes (the minimum) are present.
  Ipv4Header header;
  header.total_len = 44;
  header.protocol = 6;
  header.ttl = 64;
  header.src = ip_from_parts(10, 0, 0, 1);
  header.dst = ip_from_parts(10, 0, 0, 2);
  std::uint8_t buf[kIpMinHeaderLen + 4] = {};
  ASSERT_EQ(write_ipv4(header, {buf, kIpMinHeaderLen}), kIpMinHeaderLen);
  buf[0] = 0x46;              // version 4, ihl 6
  buf[20] = 1;                // one NOP option + 3 EOL bytes
  buf[10] = buf[11] = 0;      // recompute the header checksum
  const std::uint16_t sum = cksum_simple({buf, sizeof buf});
  buf[10] = static_cast<std::uint8_t>(sum >> 8);
  buf[11] = static_cast<std::uint8_t>(sum);
  expect_all_prefixes_rejected(
      buf, [](std::span<const std::uint8_t> d) { return parse_ipv4(d); });
}

TEST(Malformed, UdpTruncationSweep) {
  UdpHeader header{5353, 53, 20, 0xbeef};
  std::uint8_t buf[kUdpHeaderLen];
  ASSERT_EQ(write_udp(header, buf), kUdpHeaderLen);
  expect_all_prefixes_rejected(
      buf, [](std::span<const std::uint8_t> d) { return parse_udp(d); });
}

TEST(Malformed, TcpTruncationSweep) {
  TcpHeader header;
  header.src_port = 49152;
  header.dst_port = 80;
  header.flags = tcpflags::kSyn;
  header.mss = 1460;  // 24-byte header: truncation inside options too
  std::uint8_t buf[kTcpMinHeaderLen + 4];
  ASSERT_EQ(write_tcp(header, buf), kTcpMinHeaderLen + 4);
  expect_all_prefixes_rejected(
      buf, [](std::span<const std::uint8_t> d) { return parse_tcp(d); });
}

// ---- Directed malformed input: option/length field abuse -------------------

TEST(Malformed, TcpOptionLengthZeroRejected) {
  // optlen 0 on a non-NOP option must reject, not loop forever.
  TcpHeader header;
  header.mss = 1460;
  std::uint8_t buf[kTcpMinHeaderLen + 4];
  ASSERT_EQ(write_tcp(header, buf), kTcpMinHeaderLen + 4);
  buf[kTcpMinHeaderLen + 1] = 0;  // MSS option, length 0
  EXPECT_FALSE(parse_tcp(buf).has_value());
}

TEST(Malformed, TcpOptionLengthOneRejected) {
  TcpHeader header;
  header.mss = 1460;
  std::uint8_t buf[kTcpMinHeaderLen + 4];
  ASSERT_EQ(write_tcp(header, buf), kTcpMinHeaderLen + 4);
  buf[kTcpMinHeaderLen + 1] = 1;  // length 1 cannot cover kind+len itself
  EXPECT_FALSE(parse_tcp(buf).has_value());
}

TEST(Malformed, TcpOptionKindWithoutLengthByteRejected) {
  // A lone option kind as the very last header byte (its length byte
  // would sit past data_off) must reject.
  TcpHeader header;
  header.mss = 1460;
  std::uint8_t buf[kTcpMinHeaderLen + 4];
  ASSERT_EQ(write_tcp(header, buf), kTcpMinHeaderLen + 4);
  buf[kTcpMinHeaderLen + 0] = 1;  // NOP
  buf[kTcpMinHeaderLen + 1] = 1;  // NOP
  buf[kTcpMinHeaderLen + 2] = 1;  // NOP
  buf[kTcpMinHeaderLen + 3] = 8;  // kind 8, no room for its length byte
  EXPECT_FALSE(parse_tcp(buf).has_value());
}

TEST(Malformed, TcpUnknownOptionSkippedMssStillFound) {
  // Well-formed unknown options must be stepped over, not rejected.
  TcpHeader header;
  std::uint8_t buf[kTcpMinHeaderLen + 8] = {};
  ASSERT_EQ(write_tcp(header, {buf, kTcpMinHeaderLen}), kTcpMinHeaderLen);
  buf[12] = 0x70;                  // data_off 7 words = 28 bytes
  buf[kTcpMinHeaderLen + 0] = 8;   // unknown kind
  buf[kTcpMinHeaderLen + 1] = 4;   // length 4 (2 bytes of payload)
  buf[kTcpMinHeaderLen + 4] = 2;   // MSS
  buf[kTcpMinHeaderLen + 5] = 4;
  buf[kTcpMinHeaderLen + 6] = 0x05;
  buf[kTcpMinHeaderLen + 7] = 0xb4;
  const auto parsed = parse_tcp(buf);
  ASSERT_TRUE(parsed.has_value());
  ASSERT_TRUE(parsed->mss.has_value());
  EXPECT_EQ(*parsed->mss, 1460);
}

TEST(Malformed, TcpDataOffsetPastBufferRejected) {
  TcpHeader header;
  std::uint8_t buf[kTcpMinHeaderLen];
  ASSERT_EQ(write_tcp(header, buf), kTcpMinHeaderLen);
  buf[12] = 0xf0;  // data_off 15 words = 60 bytes, buffer has 20
  EXPECT_FALSE(parse_tcp(buf).has_value());
}

TEST(Malformed, Ipv4TotalLenSmallerThanHeaderRejected) {
  Ipv4Header header;
  header.total_len = 19;  // less than the 20-byte header it describes
  header.protocol = 17;
  header.src = ip_from_parts(1, 2, 3, 4);
  header.dst = ip_from_parts(5, 6, 7, 8);
  std::uint8_t buf[kIpMinHeaderLen];
  ASSERT_EQ(write_ipv4(header, buf), kIpMinHeaderLen);
  EXPECT_FALSE(parse_ipv4(buf).has_value());
}

TEST(Malformed, UdpZeroLengthField) {
  // length == 8 is a legal zero-payload datagram; smaller values cannot
  // even cover the header.
  UdpHeader zero_payload{1000, 2000, kUdpHeaderLen, 0};
  std::uint8_t buf[kUdpHeaderLen];
  ASSERT_EQ(write_udp(zero_payload, buf), kUdpHeaderLen);
  const auto parsed = parse_udp(buf);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->length, kUdpHeaderLen);

  for (const std::uint16_t bad : {0, 1, 7}) {
    UdpHeader h{1000, 2000, bad, 0};
    ASSERT_EQ(write_udp(h, buf), kUdpHeaderLen);
    EXPECT_FALSE(parse_udp(buf).has_value()) << "length " << bad;
  }
}

TEST(Malformed, ArpBadOpRejected) {
  ArpPacket pkt;
  std::uint8_t buf[kArpLen];
  ASSERT_EQ(write_arp(pkt, buf), kArpLen);
  buf[6] = 0;
  buf[7] = 3;  // op 3: neither request nor reply
  EXPECT_FALSE(parse_arp(buf).has_value());
}

}  // namespace
}  // namespace ldlp::wire
