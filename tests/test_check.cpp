// Tests for ldlp::check — conformance oracles, invariant auditors, the
// ldlp.schedule.v1 round trip, and the delta-debugging shrinker.
#include <gtest/gtest.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "check/oracle.hpp"
#include "check/schedule.hpp"
#include "check/shrink.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "obs/metrics.hpp"
#include "stack/host.hpp"

namespace ldlp {
namespace {

using wire::ip_from_parts;

std::vector<std::uint8_t> bytes_of(std::initializer_list<int> v) {
  std::vector<std::uint8_t> out;
  for (int b : v) out.push_back(static_cast<std::uint8_t>(b));
  return out;
}

// ---- DeliveryOracle: stream flows --------------------------------------

TEST(OracleStream, ExactDeliveryPasses) {
  check::DeliveryOracle oracle;
  const auto flow = oracle.open_stream("t");
  oracle.bind_stream_rx(flow, 7);
  const auto sent = bytes_of({1, 2, 3, 4, 5});
  oracle.stream_sent(flow, sent);
  oracle.on_stream_append(7, {sent.data(), 2});
  oracle.on_stream_append(7, {sent.data() + 2, 3});
  EXPECT_TRUE(oracle.finalize());
  EXPECT_TRUE(oracle.ok());
  EXPECT_EQ(oracle.stats().stream_bytes_sent, 5u);
  EXPECT_EQ(oracle.stats().stream_bytes_delivered, 5u);
}

TEST(OracleStream, ByteMismatchCondemned) {
  check::DeliveryOracle oracle;
  const auto flow = oracle.open_stream("t");
  oracle.bind_stream_rx(flow, 7);
  oracle.stream_sent(flow, bytes_of({1, 2, 3}));
  oracle.on_stream_append(7, bytes_of({1, 9, 3}));
  EXPECT_FALSE(oracle.ok());
  ASSERT_EQ(oracle.violations().size(), 1u);
  EXPECT_NE(oracle.violations()[0].find("mismatch at offset 1"),
            std::string::npos);
}

TEST(OracleStream, FabricatedBytesCondemned) {
  // Delivering more than was ever sent is fabrication or re-delivery.
  check::DeliveryOracle oracle;
  const auto flow = oracle.open_stream("t");
  oracle.bind_stream_rx(flow, 7);
  oracle.stream_sent(flow, bytes_of({1, 2}));
  oracle.on_stream_append(7, bytes_of({1, 2, 3}));
  EXPECT_FALSE(oracle.ok());
}

TEST(OracleStream, ShortfallCaughtAtFinalize) {
  check::DeliveryOracle oracle;
  const auto flow = oracle.open_stream("t");
  oracle.bind_stream_rx(flow, 7);
  oracle.stream_sent(flow, bytes_of({1, 2, 3}));
  oracle.on_stream_append(7, bytes_of({1}));
  EXPECT_TRUE(oracle.ok());  // a prefix is fine mid-run...
  EXPECT_FALSE(oracle.finalize());  // ...but not at the end.
}

TEST(OracleStream, UnboundSocketIgnored) {
  check::DeliveryOracle oracle;
  const auto flow = oracle.open_stream("t");
  oracle.bind_stream_rx(flow, 7);
  oracle.stream_sent(flow, bytes_of({1}));
  oracle.on_stream_append(99, bytes_of({42, 42}));  // unrelated socket
  oracle.on_stream_append(7, bytes_of({1}));
  EXPECT_TRUE(oracle.finalize());
}

// ---- DeliveryOracle: datagram flows ------------------------------------

stack::Datagram dgram(std::vector<std::uint8_t> payload) {
  stack::Datagram d;
  d.payload = std::move(payload);
  return d;
}

TEST(OracleDatagram, AtMostOncePasses) {
  check::DeliveryOracle oracle;
  const auto flow = oracle.open_datagram("q");
  oracle.bind_datagram_rx(flow, 3);
  oracle.datagram_sent(flow, bytes_of({1, 2}));
  oracle.datagram_sent(flow, bytes_of({3}));
  oracle.on_datagram(3, dgram(bytes_of({1, 2})));
  // The {3} datagram is lost: at-most-once still holds.
  EXPECT_TRUE(oracle.finalize());
  EXPECT_EQ(oracle.stats().datagrams_sent, 2u);
  EXPECT_EQ(oracle.stats().datagrams_delivered, 1u);
}

TEST(OracleDatagram, IdenticalPayloadsCountedNotConfused) {
  // Two sends of the same bytes permit two deliveries — the third is a
  // duplicate.
  check::DeliveryOracle oracle;
  const auto flow = oracle.open_datagram("q");
  oracle.bind_datagram_rx(flow, 3);
  oracle.datagram_sent(flow, bytes_of({5, 5}));
  oracle.datagram_sent(flow, bytes_of({5, 5}));
  oracle.on_datagram(3, dgram(bytes_of({5, 5})));
  oracle.on_datagram(3, dgram(bytes_of({5, 5})));
  EXPECT_TRUE(oracle.ok());
  oracle.on_datagram(3, dgram(bytes_of({5, 5})));
  EXPECT_FALSE(oracle.ok());
}

TEST(OracleDatagram, DuplicatesAllowedWhenWireDuplicates) {
  check::DeliveryOracle oracle;
  oracle.set_allow_duplicates(true);
  const auto flow = oracle.open_datagram("q");
  oracle.bind_datagram_rx(flow, 3);
  oracle.datagram_sent(flow, bytes_of({5}));
  oracle.on_datagram(3, dgram(bytes_of({5})));
  oracle.on_datagram(3, dgram(bytes_of({5})));
  EXPECT_TRUE(oracle.finalize());
  EXPECT_EQ(oracle.stats().datagram_duplicates, 1u);
}

TEST(OracleDatagram, UnknownPayloadCondemned) {
  check::DeliveryOracle oracle;
  const auto flow = oracle.open_datagram("q");
  oracle.bind_datagram_rx(flow, 3);
  oracle.datagram_sent(flow, bytes_of({1}));
  oracle.on_datagram(3, dgram(bytes_of({2})));
  EXPECT_FALSE(oracle.ok());
}

TEST(Oracle, PublishMirrorsStats) {
  check::DeliveryOracle oracle;
  const auto flow = oracle.open_stream("t");
  oracle.bind_stream_rx(flow, 1);
  oracle.stream_sent(flow, bytes_of({1, 2}));
  oracle.on_stream_append(1, bytes_of({1, 2}));
  obs::Registry reg;
  oracle.publish(reg);
  const obs::Snapshot snap = reg.snapshot();
  EXPECT_DOUBLE_EQ(snap.value("check.stream_bytes_sent"), 2.0);
  EXPECT_DOUBLE_EQ(snap.value("check.stream_bytes_delivered"), 2.0);
  EXPECT_DOUBLE_EQ(snap.value("check.violations"), 0.0);
}

// ---- Live host pair: oracle + auditor + persist timer ------------------

/// Two hosts wired back to back (no faults) with an auditor on each.
struct Pair {
  std::unique_ptr<stack::Host> a;
  std::unique_ptr<stack::Host> b;

  explicit Pair(core::SchedMode mode) {
    stack::HostConfig ca;
    ca.name = "a";
    ca.mac = {2, 0, 0, 0, 0, 1};
    ca.ip = ip_from_parts(10, 0, 0, 1);
    ca.mode = mode;
    stack::HostConfig cb = ca;
    cb.name = "b";
    cb.mac = {2, 0, 0, 0, 0, 2};
    cb.ip = ip_from_parts(10, 0, 0, 2);
    a = std::make_unique<stack::Host>(ca);
    b = std::make_unique<stack::Host>(cb);
    stack::NetDevice::connect(a->device(), b->device());
  }

  void tick(double dt, int rounds = 2) {
    a->advance(dt);
    b->advance(dt);
    for (int i = 0; i < rounds; ++i) {
      a->pump();
      b->pump();
    }
  }
};

TEST(HostAuditor, CleanTransferAuditsClean) {
  for (const auto mode :
       {core::SchedMode::kConventional, core::SchedMode::kLdlp}) {
    Pair net(mode);
    check::HostAuditor aud_a(*net.a);
    check::HostAuditor aud_b(*net.b);
    aud_a.install();
    aud_b.install();

    check::DeliveryOracle oracle;
    const auto flow = oracle.open_stream("a->b");
    net.b->sockets().set_tap(&oracle);
    stack::PcbId accepted = stack::kNoPcb;
    net.b->tcp().set_accept_hook([&](stack::PcbId id) {
      accepted = id;
      oracle.bind_stream_rx(flow, net.b->tcp().socket_of(id));
    });
    (void)net.b->tcp().listen(80);
    const stack::PcbId conn =
        net.a->tcp().connect(ip_from_parts(10, 0, 0, 2), 80);
    net.a->tcp().set_send_tap(
        [&](stack::PcbId id, std::span<const std::uint8_t> bytes) {
          if (id == conn) oracle.stream_sent(flow, bytes);
        });

    std::vector<std::uint8_t> payload(4000);
    for (std::size_t i = 0; i < payload.size(); ++i)
      payload[i] = static_cast<std::uint8_t>(i * 13 + 7);
    std::vector<std::uint8_t> got;
    bool queued = false;
    for (int i = 0; i < 400 && got.size() < payload.size(); ++i) {
      if (!queued &&
          net.a->tcp().state(conn) == stack::TcpState::kEstablished)
        queued = net.a->tcp().send(conn, payload);
      net.tick(0.05);
      if (accepted == stack::kNoPcb) continue;
      std::uint8_t chunk[512];
      const std::size_t n =
          net.b->sockets().read(net.b->tcp().socket_of(accepted), chunk);
      got.insert(got.end(), chunk, chunk + n);
    }
    EXPECT_EQ(got, payload);
    EXPECT_TRUE(oracle.finalize()) << (oracle.violations().empty()
                                           ? ""
                                           : oracle.violations()[0]);
    EXPECT_TRUE(aud_a.ok()) << aud_a.violations()[0];
    EXPECT_TRUE(aud_b.ok()) << aud_b.violations()[0];
    EXPECT_GT(aud_a.stats().passes, 0u);
    EXPECT_GT(aud_b.stats().pcbs_checked, 0u);
    net.b->sockets().set_tap(nullptr);
  }
}

TEST(HostAuditor, PersistProbeBreaksZeroWindowDeadlock) {
  // Regression for the zero-window deadlock the chaos oracles surfaced:
  // the receiver's window closes with nothing in flight, and since the
  // peer only announces a reopened window on an ACK — of which there are
  // none — only the sender's persist probe can restart the transfer.
  // Conventional mode appends synchronously, so advertised windows track
  // the receive buffer exactly and the stall forms deterministically.
  Pair net(core::SchedMode::kConventional);
  check::HostAuditor aud_a(*net.a);
  aud_a.install();

  stack::PcbId accepted = stack::kNoPcb;
  net.b->tcp().set_accept_hook([&](stack::PcbId id) { accepted = id; });
  (void)net.b->tcp().listen(80);
  const stack::PcbId conn =
      net.a->tcp().connect(ip_from_parts(10, 0, 0, 2), 80);
  for (int i = 0; i < 100 &&
                  net.a->tcp().state(conn) != stack::TcpState::kEstablished;
       ++i)
    net.tick(0.05);
  ASSERT_EQ(net.a->tcp().state(conn), stack::TcpState::kEstablished);

  // Fill b's receive buffer (nobody reads) until a's window closes.
  std::vector<std::uint8_t> payload(24000);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i * 31 + 5);
  std::size_t queued = 0;
  for (int i = 0; i < 200 && queued < payload.size(); ++i) {
    const std::span<const std::uint8_t> rest(payload.data() + queued,
                                             payload.size() - queued);
    if (net.a->tcp().send(conn, rest)) queued = payload.size();
    net.tick(0.05);
  }
  ASSERT_EQ(queued, payload.size()) << "send buffer never drained";
  for (int i = 0; i < 40; ++i) net.tick(0.05);

  // Now drain the receiver; completion requires a persist probe.
  std::vector<std::uint8_t> got;
  ASSERT_NE(accepted, stack::kNoPcb);
  for (int i = 0; i < 600 && got.size() < payload.size(); ++i) {
    net.tick(0.05);
    std::uint8_t chunk[2048];
    const std::size_t n =
        net.b->sockets().read(net.b->tcp().socket_of(accepted), chunk);
    got.insert(got.end(), chunk, chunk + n);
  }
  EXPECT_EQ(got.size(), payload.size());
  EXPECT_EQ(got, payload);
  EXPECT_GT(net.a->tcp().pcb_stats(conn).persist_probes, 0u);
  EXPECT_TRUE(aud_a.ok()) << aud_a.violations()[0];
}

// ---- Schedule JSON round trip ------------------------------------------

check::Schedule sample_schedule() {
  check::Schedule s;
  s.scenario = "tcp";
  s.seed = 42;
  fault::FaultPlan plan_a;
  plan_a.add({fault::FaultKind::kGilbertElliott, 0.1, 0.4, 0.75, 6, 0.157});
  plan_a.add({fault::FaultKind::kDuplicate, 0.2, 0.3, 0.33, 0, 0.0});
  fault::FaultPlan plan_b;
  plan_b.add({fault::FaultKind::kPoolExhaustion, 0.1, 0.4, 1.0, 4, 0.0});
  s.injectors.push_back({"a", 85, plan_a});
  s.injectors.push_back({"b", 86, plan_b});
  return s;
}

TEST(Schedule, JsonRoundTrip) {
  const check::Schedule s = sample_schedule();
  std::string error;
  const auto back = check::Schedule::from_json(s.to_json(), &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->scenario, s.scenario);
  EXPECT_EQ(back->seed, s.seed);
  ASSERT_EQ(back->injectors.size(), 2u);
  EXPECT_EQ(back->injectors[0].host, "a");
  EXPECT_EQ(back->injectors[0].rng_seed, 85u);
  ASSERT_EQ(back->injectors[0].plan.episodes().size(), 2u);
  const fault::Episode& e = back->injectors[0].plan.episodes()[0];
  EXPECT_EQ(e.kind, fault::FaultKind::kGilbertElliott);
  EXPECT_DOUBLE_EQ(e.start, 0.1);
  EXPECT_DOUBLE_EQ(e.end, 0.4);
  EXPECT_DOUBLE_EQ(e.rate, 0.75);
  EXPECT_EQ(e.param, 6u);
  EXPECT_DOUBLE_EQ(e.magnitude, 0.157);
  EXPECT_EQ(back->episode_count(), 3u);
  EXPECT_TRUE(back->has_kind(fault::FaultKind::kDuplicate));
  EXPECT_FALSE(back->has_kind(fault::FaultKind::kReorder));
  // Byte-stable: serialising the parsed schedule reproduces the document.
  EXPECT_EQ(back->to_json().dump(2), s.to_json().dump(2));
}

TEST(Schedule, FileRoundTrip) {
  const check::Schedule s = sample_schedule();
  const std::string path =
      testing::TempDir() + "/ldlp_schedule_roundtrip.json";
  ASSERT_TRUE(s.save(path));
  std::string error;
  const auto back = check::Schedule::load(path, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->to_json().dump(2), s.to_json().dump(2));
  std::remove(path.c_str());
}

TEST(Schedule, FaultDomainRoundTrip) {
  check::Schedule s;
  s.scenario = "fleet";
  s.seed = 7;
  fault::FaultPlan plan;
  fault::Episode cut;
  cut.kind = fault::FaultKind::kPartition;
  cut.start = 0.2;
  cut.end = 0.6;
  cut.domain = fault::FaultDomain::kSwitch;
  cut.domain_index = 3;
  cut.direction = fault::kDirAtoB;
  plan.add(cut);
  fault::Episode flap;
  flap.kind = fault::FaultKind::kLinkFlap;
  flap.start = 0.1;
  flap.end = 0.9;
  flap.rate = 0.4;
  flap.magnitude = 0.05;
  flap.domain = fault::FaultDomain::kRack;
  flap.domain_index = 2;
  plan.add(flap);
  s.injectors.push_back({"fabric", 99, plan});

  std::string error;
  const auto back = check::Schedule::from_json(s.to_json(), &error);
  ASSERT_TRUE(back.has_value()) << error;
  const auto& episodes = back->injectors[0].plan.episodes();
  ASSERT_EQ(episodes.size(), 2u);
  // FaultPlan::add keeps episodes start-sorted: the flap (0.1) first.
  EXPECT_EQ(episodes[0].domain, fault::FaultDomain::kRack);
  EXPECT_EQ(episodes[0].domain_index, 2u);
  EXPECT_EQ(episodes[0].direction, fault::kDirBoth);
  EXPECT_EQ(episodes[1].domain, fault::FaultDomain::kSwitch);
  EXPECT_EQ(episodes[1].domain_index, 3u);
  EXPECT_EQ(episodes[1].direction, fault::kDirAtoB);
  EXPECT_EQ(back->to_json().dump(2), s.to_json().dump(2));
}

TEST(Schedule, LegacyEpisodesDefaultToNoDomain) {
  // A pre-fleet document has no domain keys at all; it must load with
  // every episode scoped kNone (per-host injector semantics unchanged)
  // and serialise byte-identically (no keys invented on the way out).
  const check::Schedule legacy = sample_schedule();
  const obs::Json doc = legacy.to_json();
  EXPECT_EQ(doc.dump(2).find("\"domain\""), std::string::npos);
  std::string error;
  const auto back = check::Schedule::from_json(doc, &error);
  ASSERT_TRUE(back.has_value()) << error;
  for (const auto& spec : back->injectors)
    for (const auto& e : spec.plan.episodes()) {
      EXPECT_EQ(e.domain, fault::FaultDomain::kNone);
      EXPECT_EQ(e.direction, fault::kDirBoth);
    }
  EXPECT_EQ(back->to_json().dump(2), doc.dump(2));
}

TEST(Schedule, UnknownFieldsTolerated) {
  // Forward compatibility: a document written by a newer tool may carry
  // extra keys; loading must ignore them rather than reject the file.
  obs::Json doc = sample_schedule().to_json();
  doc.set("future_top_level", obs::Json("ignored"));
  std::string error;
  const auto back = check::Schedule::from_json(doc, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->episode_count(), 3u);
}

TEST(Schedule, UnknownDomainNameRejected) {
  // An unknown domain *name* is a hard error: silently treating a scoped
  // outage as unscoped would change what the schedule means.
  check::Schedule s;
  s.scenario = "fleet";
  fault::FaultPlan plan;
  fault::Episode cut;
  cut.kind = fault::FaultKind::kPartition;
  cut.end = 1.0;
  cut.domain = fault::FaultDomain::kSite;
  plan.add(cut);
  s.injectors.push_back({"fabric", 1, plan});
  obs::Json doc = s.to_json();
  std::string text = doc.dump(2);
  const auto pos = text.find("\"site\"");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 6, "\"zone\"");
  std::string parse_error;
  const auto redoc = obs::Json::parse(text, &parse_error);
  ASSERT_TRUE(redoc.has_value()) << parse_error;
  std::string error;
  EXPECT_FALSE(check::Schedule::from_json(*redoc, &error).has_value());
  EXPECT_NE(error.find("zone"), std::string::npos);
}

TEST(Schedule, RejectsWrongSchema) {
  obs::Json doc = sample_schedule().to_json();
  doc.set("schema", obs::Json("not.a.schedule"));
  std::string error;
  EXPECT_FALSE(check::Schedule::from_json(doc, &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(Schedule, LoadReportsMissingFile) {
  std::string error;
  EXPECT_FALSE(
      check::Schedule::load("/nonexistent/nope.json", &error).has_value());
  EXPECT_NE(error.find("nope.json"), std::string::npos);
}

// ---- Shrinker ----------------------------------------------------------

/// A schedule fails iff it still contains the poison episode (param 42).
bool has_poison(const check::Schedule& s) {
  for (const auto& spec : s.injectors)
    for (const auto& e : spec.plan.episodes())
      if (e.param == 42) return true;
  return false;
}

TEST(Shrink, ReducesToSinglePoisonEpisode) {
  check::Schedule s;
  s.scenario = "synthetic";
  s.seed = 7;
  for (int host = 0; host < 2; ++host) {
    fault::FaultPlan plan;
    for (int i = 0; i < 6; ++i) {
      fault::Episode e;
      e.kind = fault::FaultKind::kLossBurst;
      e.start = i * 0.1;
      e.end = e.start + 0.05;
      e.param = (host == 1 && i == 3) ? 42u : static_cast<std::uint32_t>(i);
      plan.add(e);
    }
    s.injectors.push_back({host == 0 ? "a" : "b", 99, plan});
  }
  ASSERT_TRUE(has_poison(s));

  const check::ShrinkResult res = check::shrink(s, has_poison);
  EXPECT_TRUE(res.converged);
  EXPECT_EQ(res.episodes_before, 12u);
  EXPECT_EQ(res.episodes_after, 1u);
  EXPECT_TRUE(has_poison(res.schedule));
  // Injector wiring survives even when a plan empties out.
  ASSERT_EQ(res.schedule.injectors.size(), 2u);
  EXPECT_TRUE(res.schedule.injectors[0].plan.empty());
  EXPECT_EQ(res.schedule.injectors[1].plan.episodes().size(), 1u);
  EXPECT_EQ(res.schedule.injectors[1].plan.episodes()[0].param, 42u);
}

TEST(Shrink, RunBudgetRespected) {
  check::Schedule s = sample_schedule();
  std::size_t calls = 0;
  const auto pred = [&](const check::Schedule&) {
    ++calls;
    return true;  // everything "fails": shrinks all the way to empty
  };
  const check::ShrinkResult res = check::shrink(s, pred, 4);
  EXPECT_LE(res.runs, 4u);
  EXPECT_LE(calls, 4u);
}

// ---- Gilbert-Elliott determinism ---------------------------------------

TEST(GilbertElliott, SameSeedSameBursts) {
  // Two identical runs through a GE channel must take identical Good/Bad
  // transitions and drop identical frames — schedules replay exactly.
  const auto run_once = [] {
    fault::FaultPlan plan;
    plan.add({fault::FaultKind::kGilbertElliott, 0.0, 10.0, 0.9, 5, 0.1});
    fault::FaultInjector inj(plan, 1234);
    double t = 0.0;
    inj.set_clock(&t);
    std::vector<std::uint8_t> frame(64, 0xab);
    std::uint64_t dropped = 0;
    for (int i = 0; i < 2000; ++i) {
      t += 0.001;
      const fault::FrameVerdict v = inj.on_frame(frame);
      if (v.drop) ++dropped;
    }
    return std::pair<std::uint64_t, fault::FaultStats>(dropped, inj.stats());
  };
  const auto [dropped1, stats1] = run_once();
  const auto [dropped2, stats2] = run_once();
  EXPECT_EQ(dropped1, dropped2);
  EXPECT_GT(stats1.burst_entries, 0u);
  EXPECT_GT(stats1.burst_dropped, 0u);
  EXPECT_EQ(stats1.burst_dropped, stats2.burst_dropped);
  EXPECT_EQ(stats1.burst_entries, stats2.burst_entries);
  EXPECT_EQ(dropped1, stats1.burst_dropped);
}

}  // namespace
}  // namespace ldlp
