// Unit tests for the scheduling framework — the paper's contribution.
// Verifies that conventional mode is depth-first per message, that LDLP
// mode drains per layer (blocked order) with run-to-completion above the
// entry layer, that the batch limit bounds entry-layer batches, and that
// the blocking-factor estimator matches the paper's arithmetic.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "buf/packet.hpp"
#include "common/rng.hpp"
#include "core/blocking.hpp"
#include "core/grouping.hpp"
#include "core/stack_graph.hpp"

namespace ldlp::core {
namespace {

/// Records (layer name, message id) in a shared journal, then forwards.
class JournalLayer final : public Layer {
 public:
  JournalLayer(std::string name, std::vector<std::string>& journal)
      : Layer(std::move(name)), journal_(journal) {}

 protected:
  void process(Message msg) override {
    journal_.push_back(name() + ":" + std::to_string(msg.flow_id));
    emit(std::move(msg), 0);
  }

 private:
  std::vector<std::string>& journal_;
};

struct TwoLayerFixture {
  buf::MbufPool pool{64, 16};
  std::vector<std::string> journal;
  JournalLayer l1{"L1", journal};
  JournalLayer l2{"L2", journal};
  StackGraph graph;
  LayerId id1;
  LayerId id2;

  TwoLayerFixture() {
    id1 = graph.add_layer(l1);
    id2 = graph.add_layer(l2);
    graph.connect(id1, id2, 0);
  }

  Message msg(std::uint64_t id) {
    Message m(buf::Packet::make(pool));
    m.flow_id = id;
    return m;
  }
};

TEST(StackGraph, ConventionalIsDepthFirstPerMessage) {
  TwoLayerFixture fx;
  fx.graph.set_mode(SchedMode::kConventional);
  fx.graph.inject(fx.id1, fx.msg(1));
  fx.graph.inject(fx.id1, fx.msg(2));
  EXPECT_EQ(fx.journal,
            (std::vector<std::string>{"L1:1", "L2:1", "L1:2", "L2:2"}));
}

TEST(StackGraph, LdlpIsBlockedOrder) {
  TwoLayerFixture fx;
  fx.graph.set_mode(SchedMode::kLdlp);
  fx.graph.inject(fx.id1, fx.msg(1));
  fx.graph.inject(fx.id1, fx.msg(2));
  EXPECT_TRUE(fx.journal.empty());  // nothing runs until the graph does
  EXPECT_EQ(fx.graph.backlog(), 2u);
  const std::size_t processed = fx.graph.run();
  EXPECT_EQ(processed, 4u);  // 2 messages x 2 layers
  // Blocked schedule: L1 drains both messages, then L2 drains both.
  EXPECT_EQ(fx.journal,
            (std::vector<std::string>{"L1:1", "L1:2", "L2:1", "L2:2"}));
  EXPECT_EQ(fx.graph.backlog(), 0u);
}

TEST(StackGraph, BatchLimitBoundsEntryLayer) {
  TwoLayerFixture fx;
  fx.graph.set_mode(SchedMode::kLdlp);
  fx.graph.set_batch_limit(2);
  for (std::uint64_t i = 1; i <= 5; ++i) fx.graph.inject(fx.id1, fx.msg(i));
  (void)fx.graph.run();
  // Entry layer yields every 2 messages; L2 runs to completion each time.
  EXPECT_EQ(fx.journal,
            (std::vector<std::string>{"L1:1", "L1:2", "L2:1", "L2:2", "L1:3",
                                      "L1:4", "L2:3", "L2:4", "L1:5",
                                      "L2:5"}));
}

TEST(StackGraph, LayerStatsTrackBatches) {
  TwoLayerFixture fx;
  fx.graph.set_mode(SchedMode::kLdlp);
  for (std::uint64_t i = 0; i < 6; ++i) fx.graph.inject(fx.id1, fx.msg(i));
  (void)fx.graph.run();
  EXPECT_EQ(fx.l1.stats().processed, 6u);
  EXPECT_EQ(fx.l1.stats().activations, 1u);  // one drain of 6
  EXPECT_DOUBLE_EQ(fx.l1.stats().mean_batch(), 6.0);
  EXPECT_EQ(fx.l1.stats().max_queue, 6u);
}

TEST(StackGraph, QueueOverflowDrops) {
  buf::MbufPool pool(64, 16);
  std::vector<std::string> journal;
  class Tiny final : public Layer {
   public:
    explicit Tiny() : Layer("tiny", 2) {}

   protected:
    void process(Message) override {}
  } tiny;
  StackGraph graph;
  const LayerId id = graph.add_layer(tiny);
  graph.set_mode(SchedMode::kLdlp);
  for (int i = 0; i < 5; ++i) graph.inject(id, Message(buf::Packet::make(pool)));
  EXPECT_EQ(tiny.stats().drops, 3u);
  (void)graph.run();
  EXPECT_EQ(tiny.stats().processed, 2u);
  EXPECT_EQ(pool.stats().mbufs_outstanding(), 0u);  // drops freed chains
}

TEST(StackGraph, DemuxFanOut) {
  buf::MbufPool pool(64, 16);
  std::vector<std::string> journal;
  /// Routes odd flow ids to port 1, even to port 0.
  class Demux final : public Layer {
   public:
    Demux(std::vector<std::string>& j) : Layer("demux"), journal_(j) {}

   protected:
    void process(Message msg) override {
      journal_.push_back("demux:" + std::to_string(msg.flow_id));
      emit(std::move(msg), msg.flow_id % 2 == 0 ? 0 : 1);
    }
    std::vector<std::string>& journal_;
  };

  Demux demux(journal);
  JournalLayer even("even", journal);
  JournalLayer odd("odd", journal);
  StackGraph graph;
  const LayerId d = graph.add_layer(demux);
  const LayerId e = graph.add_layer(even);
  const LayerId o = graph.add_layer(odd);
  graph.connect(d, e, 0);
  graph.connect(d, o, 1);
  graph.set_mode(SchedMode::kLdlp);
  for (std::uint64_t i = 0; i < 4; ++i) {
    Message m(buf::Packet::make(pool));
    m.flow_id = i;
    graph.inject(d, std::move(m));
  }
  (void)graph.run();
  // Demux drains all 4, then both upper layers run to completion.
  EXPECT_EQ(journal[0], "demux:0");
  EXPECT_EQ(journal[3], "demux:3");
  EXPECT_EQ(journal.size(), 8u);
  int evens = 0;
  int odds = 0;
  for (const auto& entry : journal) {
    if (entry.rfind("even:", 0) == 0) ++evens;
    if (entry.rfind("odd:", 0) == 0) ++odds;
  }
  EXPECT_EQ(evens, 2);
  EXPECT_EQ(odds, 2);
}

TEST(StackGraph, UnconnectedPortConsumesMessage) {
  buf::MbufPool pool(8, 2);
  std::vector<std::string> journal;
  JournalLayer top("top", journal);
  StackGraph graph;
  const LayerId id = graph.add_layer(top);
  graph.set_mode(SchedMode::kConventional);
  graph.inject(id, Message(buf::Packet::make(pool)));  // top emits to nothing
  EXPECT_EQ(journal.size(), 1u);
  EXPECT_EQ(pool.stats().mbufs_outstanding(), 0u);
}

TEST(StackGraph, RunIsNoopInConventionalMode) {
  TwoLayerFixture fx;
  fx.graph.set_mode(SchedMode::kConventional);
  EXPECT_EQ(fx.graph.run(), 0u);
}

TEST(Blocking, PaperArithmetic) {
  // 8 KB D-cache, 5 layers x 256 B data, 552 B messages:
  // (8192 - 1280) / 552 = 12.
  const StackFootprint stack{5, 6 * 1024, 256, 552};
  const sim::CacheConfig icache{8192, 32, 1};
  const sim::CacheConfig dcache{8192, 32, 1};
  const auto estimate = estimate_blocking(stack, icache, dcache);
  EXPECT_EQ(estimate.batch_limit, 12u);
  EXPECT_TRUE(estimate.layer_fits_icache);
  EXPECT_EQ(estimate.layers_in_icache, 1u);
}

TEST(Blocking, LargeMessageDegeneratesToOne) {
  // Large-message protocol (Figure 4): one message is the right blocking
  // factor when messages dwarf the cache.
  const StackFootprint stack{3, 2048, 128, 16 * 1024};
  const auto estimate = estimate_blocking(stack, sim::CacheConfig{8192, 32, 1},
                                          sim::CacheConfig{8192, 32, 1});
  EXPECT_EQ(estimate.batch_limit, 1u);
}

TEST(Blocking, BigCacheHoldsWholeStack) {
  const StackFootprint stack{5, 6 * 1024, 256, 552};
  const auto estimate =
      estimate_blocking(stack, sim::CacheConfig{65536, 32, 1},
                        sim::CacheConfig{65536, 32, 1});
  EXPECT_GE(estimate.layers_in_icache, 5u);
}

TEST(Grouping, SingleLayerGroupsOnSmallCache) {
  // 6 KB layers, 8 KB cache, 75% budget = 6144: one layer per group.
  const auto groups = plan_groups({6144, 6144, 6144, 6144, 6144}, 8192);
  EXPECT_EQ(groups, (std::vector<std::uint32_t>{1, 1, 1, 1, 1}));
}

TEST(Grouping, PairsOnMediumCache) {
  const auto groups = plan_groups({6144, 6144, 6144, 6144, 6144}, 16384);
  EXPECT_EQ(groups, (std::vector<std::uint32_t>{2, 2, 1}));
}

TEST(Grouping, WholeStackOnHugeCache) {
  const auto groups =
      plan_groups({6144, 6144, 6144, 6144, 6144}, 64 * 1024, 0.75);
  EXPECT_EQ(groups, (std::vector<std::uint32_t>{5}));
}

TEST(Grouping, OversizedLayerGetsOwnGroup) {
  const auto groups = plan_groups({20000, 1000, 1000}, 8192);
  ASSERT_EQ(groups.size(), 2u);
  EXPECT_EQ(groups[0], 1u);  // the 20 KB layer alone
  EXPECT_EQ(groups[1], 2u);
}

TEST(Grouping, HeterogeneousSizes) {
  // 3+2+4+1+5 KB against a 8 KB cache at 75% (6 KB budget).
  const auto groups =
      plan_groups({3072, 2048, 4096, 1024, 5120}, 8192);
  EXPECT_EQ(groups, (std::vector<std::uint32_t>{2, 2, 1}));
  std::uint32_t total = 0;
  for (const auto g : groups) total += g;
  EXPECT_EQ(total, 5u);
}

TEST(Grouping, EmptyStack) {
  EXPECT_TRUE(plan_groups({}, 8192).empty());
}

// Property-based check of the blocking estimate over randomised footprints
// and cache geometries (deterministic seed): the invariants the scheduler
// relies on, not specific arithmetic points.
TEST(Blocking, PropertiesOverRandomFootprints) {
  Rng rng(20260806);
  const sim::CacheConfig icache{8 * 1024, 32, 1};
  for (int trial = 0; trial < 500; ++trial) {
    StackFootprint fp;
    fp.num_layers = 1 + static_cast<std::uint32_t>(rng() % 12);
    fp.layer_code_bytes = 512 + static_cast<std::uint32_t>(rng() % 16384);
    fp.layer_data_bytes = static_cast<std::uint32_t>(rng() % 2048);
    fp.message_bytes = 1 + static_cast<std::uint32_t>(rng() % 4096);
    const std::uint32_t dcache_bytes =
        1024u << (rng() % 7);  // 1 KB .. 64 KB
    const sim::CacheConfig dcache{dcache_bytes, 32, 1};
    const auto est = estimate_blocking(fp, icache, dcache);

    // Always a usable batch bound.
    ASSERT_GE(est.batch_limit, 1u) << "trial " << trial;

    // Monotone: a strictly larger D-cache never shrinks the batch.
    const sim::CacheConfig bigger{dcache_bytes * 2, 32, 1};
    const auto est2 = estimate_blocking(fp, icache, bigger);
    EXPECT_GE(est2.batch_limit, est.batch_limit) << "trial " << trial;

    // Degenerate: one message alone overflowing the D-cache forces 1.
    if (fp.message_bytes >= dcache_bytes)
      EXPECT_EQ(est.batch_limit, 1u) << "trial " << trial;
  }
}

// Regression test for the stale-counter bug class: re-running a graph
// after reset_stats() must reproduce a fresh graph's totals exactly —
// shed_entry/shed_depth and the per-layer counters must not carry over.
TEST(StackGraph, ResetStatsClearsBetweenRuns) {
  const auto drive = [](TwoLayerFixture& fx) {
    fx.graph.set_mode(SchedMode::kLdlp);
    fx.graph.set_backlog_limit(3);
    for (std::uint64_t i = 0; i < 5; ++i)
      fx.graph.inject(fx.id1, fx.msg(i));  // 2 of 5 shed at entry
    (void)fx.graph.run();
  };

  TwoLayerFixture fresh;
  drive(fresh);
  const GraphStats want = fresh.graph.graph_stats();
  EXPECT_EQ(want.injected, 5u);
  EXPECT_EQ(want.shed_entry, 2u);
  EXPECT_EQ(want.runs, 1u);

  TwoLayerFixture reused;
  drive(reused);
  reused.journal.clear();
  reused.graph.reset_stats();
  EXPECT_EQ(reused.graph.graph_stats().injected, 0u);
  EXPECT_EQ(reused.l1.stats().enqueued, 0u);
  EXPECT_EQ(reused.graph.drain_stats().count(), 0u);

  drive(reused);
  const GraphStats& got = reused.graph.graph_stats();
  EXPECT_EQ(got.injected, want.injected);
  EXPECT_EQ(got.shed_entry, want.shed_entry);
  EXPECT_EQ(got.shed_depth, want.shed_depth);
  EXPECT_EQ(got.delivered_top, want.delivered_top);
  EXPECT_EQ(got.runs, want.runs);
  EXPECT_EQ(reused.l1.stats().enqueued, fresh.l1.stats().enqueued);
  EXPECT_EQ(reused.l1.stats().processed, fresh.l1.stats().processed);
  EXPECT_EQ(reused.l2.stats().processed, fresh.l2.stats().processed);
  EXPECT_EQ(reused.graph.drain_stats().count(),
            fresh.graph.drain_stats().count());
}

// The per-layer conservation law the chaos invariants build on.
TEST(StackGraph, LayerEnqueueConservation) {
  TwoLayerFixture fx;
  fx.graph.set_mode(SchedMode::kLdlp);
  for (std::uint64_t i = 0; i < 7; ++i) fx.graph.inject(fx.id1, fx.msg(i));
  (void)fx.graph.run();
  for (const Layer* layer : {&fx.l1, &fx.l2}) {
    const LayerStats& s = layer->stats();
    EXPECT_EQ(s.enqueued, s.processed + s.drops + layer->queue_len())
        << layer->name();
  }
  const GraphStats& gs = fx.graph.graph_stats();
  EXPECT_EQ(gs.injected, gs.shed_entry + fx.l1.stats().enqueued);
}

}  // namespace
}  // namespace ldlp::core
