// ldlp::obs — registry, JSON model, snapshot schema (golden file), bench
// result round-trip and the compare rule that drives the perf gate.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <vector>

#include "check/oracle.hpp"
#include "core/stack_graph.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "obs/bench_result.hpp"
#include "obs/bridge.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "overlay/overlay.hpp"
#include "par/worker_pool.hpp"
#include "recover/convergence.hpp"
#include "recover/partition_heal.hpp"
#include "recover/watchdog.hpp"
#include "stack/host.hpp"
#include "wire/ipv4.hpp"

#ifndef LDLP_GOLDEN_DIR
#define LDLP_GOLDEN_DIR "tests/golden"
#endif

namespace {

using namespace ldlp;

// ---------------------------------------------------------------- registry

TEST(ObsRegistry, CounterGaugeBasics) {
  obs::Registry reg;
  obs::Counter& c = reg.counter("msgs");
  c.add();
  c.add(4);
  EXPECT_EQ(c.value(), 5u);
  EXPECT_EQ(&reg.counter("msgs"), &c) << "register-once must find, not dup";

  obs::Gauge& g = reg.gauge("depth");
  g.set(3.5);
  g.add(0.5);
  EXPECT_DOUBLE_EQ(g.value(), 4.0);
  EXPECT_EQ(reg.size(), 2u);

  reg.reset();
  EXPECT_EQ(c.value(), 0u);
  EXPECT_DOUBLE_EQ(g.value(), 0.0);
  EXPECT_EQ(reg.size(), 2u) << "reset zeroes values, keeps names";
}

TEST(ObsRegistry, HistogramPercentiles) {
  obs::Registry reg;
  obs::Histogram& h = reg.histogram("lat", 1e-6, 10.0, 40);
  for (int i = 1; i <= 100; ++i) h.add(i * 1e-3);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_NEAR(h.mean(), 0.0505, 0.0005);
  // Log-bucketed: bounded relative error, not exact.
  EXPECT_NEAR(h.p50(), 0.050, 0.050 * 0.10);
  EXPECT_NEAR(h.p99(), 0.099, 0.099 * 0.10);
  EXPECT_GE(h.max(), 0.1 - 1e-12);
}

TEST(ObsHistogram, QuantileRelativeErrorBounded) {
  // Log bucketing at k buckets per decade puts every sample within a
  // bucket of width ratio = 10^(1/k); quantile() answers the geometric
  // midpoint of the target bucket, so any reported quantile must lie
  // within one bucket ratio of the exact order statistic. Verify against
  // exact quantiles of a log-uniform spread (1 ms .. 1 s) — the regime
  // the tail benches live in.
  constexpr int kPerDecade = 32;
  const double ratio = std::pow(10.0, 1.0 / kPerDecade);
  obs::Histogram h(1e-6, 1e3, kPerDecade);
  std::vector<double> xs;
  std::uint64_t s = 0x2545f4914f6cdd1dULL;
  for (int i = 0; i < 20000; ++i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    const double u =
        static_cast<double>(s >> 11) * (1.0 / 9007199254740992.0);
    const double v = 1e-3 * std::pow(10.0, 3.0 * u);
    xs.push_back(v);
    h.add(v);
  }
  std::sort(xs.begin(), xs.end());
  for (const double q : {0.5, 0.9, 0.99, 0.999, 0.9999}) {
    const double exact =
        xs[static_cast<std::size_t>(q * static_cast<double>(xs.size() - 1))];
    const double est = h.quantile(q);
    EXPECT_LE(est, exact * ratio * 1.02) << "q=" << q;
    EXPECT_GE(est, exact / (ratio * 1.02)) << "q=" << q;
  }
}

TEST(ObsHistogram, MergeEquivalentToPooledSamples) {
  // merge() must behave exactly like adding every sample to one
  // histogram, and be order-independent — that's what makes the
  // worker-pool registries' merged quantiles trustworthy.
  obs::Histogram pooled(1e-6, 10.0, 40);
  obs::Histogram a(1e-6, 10.0, 40);
  obs::Histogram b(1e-6, 10.0, 40);
  obs::Histogram c(1e-6, 10.0, 40);
  for (int i = 1; i <= 300; ++i) {
    const double v = 1e-4 * i;
    pooled.add(v);
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).add(v);
  }
  obs::Histogram ab(a);
  ab.merge(b);
  ab.merge(c);  // (a+b)+c
  obs::Histogram cb(c);
  cb.merge(b);
  cb.merge(a);  // (c+b)+a
  for (const obs::Histogram* m : {&ab, &cb}) {
    EXPECT_EQ(m->count(), pooled.count());
    EXPECT_DOUBLE_EQ(m->mean(), pooled.mean());
    EXPECT_DOUBLE_EQ(m->max(), pooled.max());
    for (const double q : {0.5, 0.95, 0.99, 0.999})
      EXPECT_DOUBLE_EQ(m->quantile(q), pooled.quantile(q)) << "q=" << q;
  }
}

TEST(ObsHistogram, SparseTailQuantilesResolve) {
  // The tail-at-scale shape: a dense body and a sparse far tail. p99
  // must stay in the body, p999 must land on the 10-sample straggler
  // cluster, p9999 on the worst-outlier cluster — the three must not
  // collapse onto each other.
  obs::Histogram h(1e-6, 1e3, 32);
  for (int i = 0; i < 9985; ++i) h.add(1e-3);
  for (int i = 0; i < 10; ++i) h.add(0.1);
  for (int i = 0; i < 5; ++i) h.add(10.0);
  EXPECT_EQ(h.count(), 10000u);
  EXPECT_NEAR(h.p99(), 1e-3, 1e-3 * 0.10);
  EXPECT_NEAR(h.p999(), 0.1, 0.1 * 0.10);
  EXPECT_NEAR(h.p9999(), 10.0, 10.0 * 0.10);
  EXPECT_GT(h.p999(), h.p99() * 50.0);
  EXPECT_GT(h.p9999(), h.p999() * 50.0);
}

TEST(ObsHistogram, EmptySnapshotQuantilesAreZero) {
  // The repair-latency histogram of a calm overlay run records nothing,
  // but Registry::snapshot() emits p50..p9999 for it unconditionally:
  // every quantile of an empty histogram must be a well-defined 0.0, not
  // an uninitialized bucket midpoint.
  obs::Registry reg;
  (void)reg.histogram("overlay.repair_latency_sec", 1e-3, 1e2);
  const obs::Snapshot snap = reg.snapshot();
  const obs::SnapshotEntry* e = snap.find("overlay.repair_latency_sec");
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->value, 0.0);  // sample count
  EXPECT_EQ(e->mean, 0.0);
  EXPECT_EQ(e->p50, 0.0);
  EXPECT_EQ(e->p999, 0.0);
  EXPECT_EQ(e->p9999, 0.0);
  EXPECT_EQ(e->max, 0.0);

  obs::Histogram h(1e-6, 10.0, 20);
  for (const double q : {0.0, 0.5, 0.99, 0.999, 0.9999, 1.0})
    EXPECT_EQ(h.quantile(q), 0.0) << "q=" << q;
}

TEST(ObsHistogram, NonFiniteInputsStayWellDefined) {
  constexpr double kNan = std::numeric_limits<double>::quiet_NaN();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  obs::Histogram h(1e-6, 10.0, 20);
  h.add(kNan);  // no bucket is correct for NaN: dropped, not misfiled
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.quantile(0.999), 0.0);
  h.add(1e-3);
  h.add(kInf);   // overflow bucket
  h.add(-kInf);  // underflow bucket
  EXPECT_EQ(h.count(), 3u);
  EXPECT_TRUE(std::isfinite(h.quantile(0.5)));
  EXPECT_TRUE(std::isfinite(h.quantile(0.9999)));
  // A NaN q is answered like an empty histogram, not passed to clamp.
  EXPECT_EQ(h.quantile(kNan), 0.0);
}

TEST(ObsRegistry, SnapshotInsertionOrderedAndTyped) {
  obs::Registry reg;
  reg.counter("z.last").add(1);
  reg.gauge("a.first").set(2.0);
  reg.histogram("m.mid").add(0.5);

  // Registration order, not name order: the registry is the narrative of
  // what the program instrumented, and merged-in names (see MergedTail)
  // sort after everything registered directly.
  const obs::Snapshot snap = reg.snapshot();
  ASSERT_EQ(snap.entries.size(), 3u);
  EXPECT_EQ(snap.entries[0].name, "z.last");
  EXPECT_EQ(snap.entries[1].name, "a.first");
  EXPECT_EQ(snap.entries[2].name, "m.mid");
  EXPECT_EQ(snap.entries[0].kind, obs::MetricKind::kCounter);
  EXPECT_EQ(snap.entries[1].kind, obs::MetricKind::kGauge);
  EXPECT_EQ(snap.entries[2].kind, obs::MetricKind::kHistogram);
  EXPECT_DOUBLE_EQ(snap.value("a.first"), 2.0);
  EXPECT_DOUBLE_EQ(snap.value("z.last"), 1.0);
  EXPECT_EQ(snap.find("missing"), nullptr);
}

TEST(ObsRegistry, MergeCombinesAndOrdersDeterministically) {
  // Two "worker" registries that registered overlapping names in
  // different orders, as racing threads would.
  obs::Registry w0;
  w0.counter("par.jobs").add(3);
  w0.gauge("par.depth").set(2.0);
  w0.histogram("par.lat").add(0.25);
  obs::Registry w1;
  w1.histogram("par.lat").add(0.75);
  w1.counter("par.only1").add(7);
  w1.counter("par.jobs").add(5);
  w1.gauge("par.depth").set(1.0);

  obs::Registry main;
  main.counter("seeds").add(2);
  main.merge(w0);
  main.merge(w1);

  const obs::Snapshot snap = main.snapshot();
  // Counters sum, gauges keep the max, histograms pool samples.
  EXPECT_DOUBLE_EQ(snap.value("par.jobs"), 8.0);
  EXPECT_DOUBLE_EQ(snap.value("par.depth"), 2.0);
  EXPECT_DOUBLE_EQ(snap.value("par.lat"), 2.0);  // histogram count
  EXPECT_DOUBLE_EQ(snap.value("par.only1"), 7.0);

  // Direct registrations first (insertion order), merged names after in
  // name order — identical no matter which worker merged first.
  ASSERT_EQ(snap.entries.size(), 5u);
  EXPECT_EQ(snap.entries[0].name, "seeds");
  EXPECT_EQ(snap.entries[1].name, "par.depth");
  EXPECT_EQ(snap.entries[2].name, "par.jobs");
  EXPECT_EQ(snap.entries[3].name, "par.lat");
  EXPECT_EQ(snap.entries[4].name, "par.only1");

  obs::Registry reversed;
  reversed.counter("seeds").add(2);
  reversed.merge(w1);
  reversed.merge(w0);
  const obs::Snapshot swap = reversed.snapshot();
  ASSERT_EQ(swap.entries.size(), snap.entries.size());
  for (std::size_t i = 0; i < snap.entries.size(); ++i) {
    EXPECT_EQ(swap.entries[i].name, snap.entries[i].name);
    EXPECT_DOUBLE_EQ(swap.entries[i].value, snap.entries[i].value)
        << snap.entries[i].name;
  }
}

// -------------------------------------------------------------------- json

TEST(ObsJson, RoundTripPreservesValuesAndOrder) {
  obs::Json obj = obs::Json::object();
  obj.set("schema", obs::Json("test.v1"));
  obj.set("count", obs::Json(std::uint64_t{42}));
  obj.set("ratio", obs::Json(0.1));
  obj.set("label", obs::Json("a \"quoted\"\nstring"));
  obs::Json arr = obs::Json::array();
  arr.push_back(obs::Json(1.5));
  arr.push_back(obs::Json(true));
  arr.push_back(obs::Json());
  obj.set("items", std::move(arr));

  const std::string text = obj.dump(2);
  std::string error;
  const auto parsed = obs::Json::parse(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->dump(2), text) << "round trip must be byte-stable";
  EXPECT_EQ(parsed->string_at("schema"), "test.v1");
  EXPECT_EQ(parsed->number_at("count"), 42.0);
  EXPECT_EQ(parsed->number_at("ratio"), 0.1);
  ASSERT_EQ(parsed->members().size(), 5u);
  EXPECT_EQ(parsed->members()[0].first, "schema");
  EXPECT_EQ(parsed->members()[4].first, "items");
}

TEST(ObsJson, ParseRejectsGarbage) {
  std::string error;
  EXPECT_FALSE(obs::Json::parse("{", &error).has_value());
  EXPECT_FALSE(obs::Json::parse("{\"a\":1} trailing", &error).has_value());
  EXPECT_FALSE(obs::Json::parse("{'a':1}", &error).has_value());
  EXPECT_FALSE(obs::Json::parse("", &error).has_value());
}

TEST(ObsJson, NumbersEmitShortestRoundTrip) {
  EXPECT_EQ(obs::Json(0.1).dump(), "0.1");
  EXPECT_EQ(obs::Json(1e-7).dump(), obs::Json::parse("1e-07")->dump());
  EXPECT_EQ(obs::Json(std::uint64_t{960}).dump(), "960");
  EXPECT_EQ(obs::Json(3.0).dump(), "3");  // whole doubles print as integers
}

// ------------------------------------------------------------- golden file

std::string golden_path() {
  return std::string(LDLP_GOLDEN_DIR) + "/obs_snapshot.json";
}

/// A deterministic registry covering all three metric kinds, plus the
/// conformance (check.*) and wire-impairment (fault.*) metric families —
/// the golden file pins their names and layout.
obs::Snapshot reference_snapshot() {
  obs::Registry reg;
  reg.counter("graph.injected").set(1000);
  reg.counter("graph.shed_entry").set(17);
  reg.gauge("graph.layer.tcp.mean_batch").set(6.25);
  obs::Histogram& h = reg.histogram("graph.drain_sec", 1e-7, 1e3, 20);
  for (int i = 1; i <= 32; ++i) h.add(i * 125e-6);

  // check.*: a delivery oracle that saw one exact stream and a duplicated
  // (but permitted) datagram.
  check::DeliveryOracle oracle;
  oracle.set_allow_duplicates(true);
  const auto stream = oracle.open_stream("a->b");
  oracle.bind_stream_rx(stream, 1);
  const std::uint8_t bytes[] = {1, 2, 3, 4};
  oracle.stream_sent(stream, bytes);
  oracle.on_stream_append(1, bytes);
  const auto query = oracle.open_datagram("dns");
  oracle.bind_datagram_rx(query, 2);
  oracle.datagram_sent(query, {bytes, 2});
  stack::Datagram d;
  d.payload = {1, 2};
  oracle.on_datagram(2, d);
  oracle.on_datagram(2, d);  // wire duplicate, allowed
  oracle.publish(reg);

  // fault.*: a deterministic injector run through reorder, duplicate and
  // Gilbert-Elliott episodes (seed pinned, so counters are stable).
  fault::FaultPlan plan;
  plan.add({fault::FaultKind::kReorder, 0.0, 1.0, 1.0, 2, 0.0});
  plan.add({fault::FaultKind::kDuplicate, 1.0, 2.0, 1.0, 0, 0.0});
  plan.add({fault::FaultKind::kGilbertElliott, 2.0, 3.0, 1.0, 4, 0.5});
  fault::FaultInjector inj(plan, 7);
  double t = 0.0;
  inj.set_clock(&t);
  std::vector<std::uint8_t> frame(32, 0x5a);
  for (int i = 0; i < 300; ++i) {
    t += 0.01;
    (void)inj.on_frame(frame);
  }
  obs::publish_fault(reg, inj);

  // recover.*: the liveness oracles, armed over an empty host set so
  // they settle deterministically — pins the counter family names.
  recover::ConvergenceOracle conv;
  conv.arm();
  for (int i = 0; i < 3; ++i) conv.on_pass();
  conv.publish(reg);
  recover::ProgressWatchdog dog;
  for (int i = 0; i < 3; ++i) dog.on_pass();
  dog.publish(reg);

  // net.* / recover.heal.*: a two-host star fabric carrying one TCP
  // handshake (ARP broadcast flood + SYN exchange — fully deterministic),
  // published through the fabric bridge, plus a partition-heal oracle
  // with one open pair. Pins the per-link/per-switch counter layout.
  net::Fabric fabric({/*host_tick_sec=*/1e-3, /*fault_seed=*/1});
  net::StarConfig star;
  star.hosts = 2;
  const std::vector<net::HostId> hosts = net::build_star(fabric, star);
  (void)fabric.host(hosts[1]).tcp().listen(7);
  (void)fabric.host(hosts[0]).tcp().connect(net::host_ip(1), 7);
  fabric.run_for(0.05);
  obs::publish_fabric(reg, fabric);
  recover::PartitionHealOracle heal;
  (void)heal.open_pair("h0", "h1");
  heal.publish(reg);

  // overlay.*: a two-node HyParView/PlumTree overlay on its own star
  // fabric — one join handshake and one broadcast, fully deterministic.
  // The repair-latency histogram records no samples (calm fleet), so the
  // golden file also pins the zero-sample quantile path (p* == 0).
  net::Fabric ofab({/*host_tick_sec=*/1e-3, /*fault_seed=*/1});
  net::StarConfig ostar;
  ostar.hosts = 2;
  const std::vector<net::HostId> ohosts = net::build_star(ofab, ostar);
  overlay::OverlayNode n0(ofab.host(ohosts[0]), net::host_ip(0), {});
  overlay::OverlayNode n1(ofab.host(ohosts[1]), net::host_ip(1), {});
  ofab.set_pass_hook([&] {
    n0.poll(ofab.now());
    n1.poll(ofab.now());
  });
  n1.join(net::host_ip(0), 0.0);
  ofab.run_for(1.0);
  const std::uint8_t gossip[] = {1, 2, 3, 4};
  (void)n0.broadcast(gossip, ofab.now());
  ofab.run_for(1.0);
  const overlay::OverlayNode* onodes[] = {&n0, &n1};
  overlay::publish_overlay(reg, onodes);

  // par.*: a two-worker pool over four deterministic jobs. Which worker
  // runs which job is scheduling-dependent, but the merged counters sum
  // and the merged histogram pools its samples, so the snapshot — and
  // this golden file — is identical on every run. The merged par.test.*
  // names land name-sorted after all directly registered metrics.
  par::WorkerPool pool(2);
  pool.run(4, [](std::size_t job, par::WorkerContext& ctx) {
    ctx.registry->counter("par.test.jobs").add(1);
    ctx.registry->histogram("par.test.cost_sec")
        .add(1e-3 * static_cast<double>(job + 1));
  });
  pool.publish(reg);
  pool.merge_registries(reg);

  return reg.snapshot();
}

TEST(ObsGolden, SnapshotJsonMatchesGoldenFile) {
  const std::string text = reference_snapshot().to_json().dump(2) + "\n";

  if (std::getenv("LDLP_UPDATE_GOLDEN") != nullptr) {
    std::ofstream out(golden_path(), std::ios::binary);
    out << text;
    ASSERT_TRUE(out.good()) << "could not rewrite " << golden_path();
    GTEST_SKIP() << "golden file updated";
  }

  std::ifstream in(golden_path(), std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden file " << golden_path()
                         << " — regenerate with LDLP_UPDATE_GOLDEN=1";
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), text)
      << "snapshot JSON schema drifted; if intentional, regenerate with "
         "LDLP_UPDATE_GOLDEN=1 test_obs and commit the diff";

  // The golden file itself must parse and carry the schema marker.
  std::string error;
  const auto parsed = obs::Json::parse(buffer.str(), &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->string_at("schema"), obs::Snapshot::kSchema);
}

TEST(ObsSnapshot, CsvHasHeaderAndOneRowPerMetric) {
  const obs::Snapshot snap = reference_snapshot();
  const std::string csv = snap.to_csv();
  std::size_t lines = 0;
  for (const char c : csv)
    if (c == '\n') ++lines;
  EXPECT_EQ(lines, 1 + snap.entries.size());
  EXPECT_EQ(csv.rfind("name,type,value,mean,p50,p95,p99,p999,p9999,max\n", 0),
            0u);
}

// ------------------------------------------------------------ bench result

TEST(ObsBenchResult, JsonRoundTrip) {
  obs::BenchResult r;
  r.name = "unit";
  r.tolerance = 0.02;
  r.set_config("seed", "42");
  r.set_metric("a.lat", 1.25e-3);
  r.set_metric("b.count", 960.0);

  std::string error;
  const auto back = obs::BenchResult::from_json(r.to_json(), &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->name, "unit");
  EXPECT_DOUBLE_EQ(back->tolerance, 0.02);
  EXPECT_EQ(back->metric("a.lat"), 1.25e-3);
  EXPECT_EQ(back->metric("b.count"), 960.0);
  EXPECT_EQ(back->config.size(), 1u);
  EXPECT_EQ(back->file_name(), "BENCH_unit.json");
}

TEST(ObsBenchResult, CompareRule) {
  obs::BenchResult base;
  base.name = "gate";
  base.tolerance = 0.10;
  base.set_metric("lat", 100.0);
  base.set_metric("miss", 50.0);

  obs::BenchResult ok = base;
  ok.metrics.clear();
  ok.set_metric("lat", 109.0);   // +9% — inside
  ok.set_metric("miss", 46.0);   // -8% — inside
  ok.set_metric("extra", 1.0);   // additions pass
  EXPECT_TRUE(obs::compare_results(base, ok).pass);

  obs::BenchResult drift = ok;
  drift.metrics.clear();
  drift.set_metric("lat", 112.0);  // +12% — outside
  drift.set_metric("miss", 50.0);
  const auto report = obs::compare_results(base, drift);
  EXPECT_FALSE(report.pass);
  EXPECT_NE(report.describe().find("lat"), std::string::npos);

  obs::BenchResult missing = base;
  missing.metrics.clear();
  missing.set_metric("lat", 100.0);  // "miss" gone
  EXPECT_FALSE(obs::compare_results(base, missing).pass);

  // Tolerance override loosens the gate without editing the baseline.
  EXPECT_TRUE(obs::compare_results(base, drift, 0.20).pass);
}

// ----------------------------------------------------------------- bridge

TEST(ObsBridge, PublishHostIsIdempotent) {
  stack::HostConfig ca;
  ca.name = "a";
  ca.mac = {2, 0, 0, 0, 0, 1};
  ca.ip = wire::ip_from_parts(10, 0, 0, 1);
  stack::HostConfig cb = ca;
  cb.name = "b";
  cb.mac = {2, 0, 0, 0, 0, 2};
  cb.ip = wire::ip_from_parts(10, 0, 0, 2);
  stack::Host a(ca);
  stack::Host b(cb);
  stack::NetDevice::connect(a.device(), b.device());

  const auto sock = b.sockets().create(stack::SocketKind::kDatagram, 4096);
  ASSERT_TRUE(b.udp().bind(9, sock));
  const std::vector<std::uint8_t> payload(64, 0xab);
  for (int round = 0; round < 4; ++round) {
    a.udp().send(9, cb.ip, 9, payload);
    a.pump();
    b.pump();
    a.pump();
    b.pump();
  }

  obs::Registry reg;
  obs::publish_host(reg, a);
  obs::publish_host(reg, b);
  const obs::Snapshot first = reg.snapshot();
  EXPECT_GE(first.value("a.dev.tx_frames"), 1.0);
  EXPECT_GE(first.value("b.udp.rx"), 1.0);
  EXPECT_GE(first.value("b.graph.layer.udp.processed"), 1.0);

  // Publishing again without new traffic must not inflate anything.
  obs::publish_host(reg, a);
  obs::publish_host(reg, b);
  const obs::Snapshot second = reg.snapshot();
  ASSERT_EQ(first.entries.size(), second.entries.size());
  for (std::size_t i = 0; i < first.entries.size(); ++i)
    EXPECT_DOUBLE_EQ(first.entries[i].value, second.entries[i].value)
        << first.entries[i].name;
}

}  // namespace
