// Unit and property tests for the mbuf system: pool lifecycle, cluster
// sharing, and every chain operation (prepend/append/adj/pullup/copy/
// split/cat), including a randomized operation-sequence invariant sweep.
#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "buf/packet.hpp"
#include "buf/packet_queue.hpp"
#include "common/rng.hpp"

namespace ldlp::buf {
namespace {

std::vector<std::uint8_t> pattern(std::size_t n, std::uint8_t seed = 0) {
  std::vector<std::uint8_t> out(n);
  for (std::size_t i = 0; i < n; ++i)
    out[i] = static_cast<std::uint8_t>(seed + i);
  return out;
}

std::vector<std::uint8_t> contents(const Packet& pkt) {
  std::vector<std::uint8_t> out(pkt.length());
  EXPECT_TRUE(pkt.copy_out(0, out));
  return out;
}

TEST(Pool, AllocFreeCycle) {
  MbufPool pool(4, 2);
  Mbuf* m = pool.alloc(true);
  ASSERT_NE(m, nullptr);
  EXPECT_TRUE(m->is_pkthdr());
  EXPECT_EQ(m->len(), 0u);
  EXPECT_EQ(pool.stats().mbufs_outstanding(), 1u);
  pool.free_one(m);
  EXPECT_EQ(pool.stats().mbufs_outstanding(), 0u);
}

TEST(Pool, ExhaustionReturnsNull) {
  MbufPool pool(2, 1);
  Mbuf* a = pool.alloc();
  Mbuf* b = pool.alloc();
  EXPECT_EQ(pool.alloc(), nullptr);
  EXPECT_EQ(pool.stats().alloc_failures, 1u);
  pool.free_one(a);
  pool.free_one(b);
}

TEST(Pool, ClusterSharingRefcounts) {
  MbufPool pool(4, 2);
  Mbuf* a = pool.alloc();
  ASSERT_TRUE(pool.add_cluster(*a));
  a->grow_back(100);
  Mbuf* b = pool.alloc();
  pool.share_cluster(*a, *b);
  EXPECT_EQ(b->len(), 100u);
  EXPECT_EQ(b->data(), a->data());
  EXPECT_EQ(pool.clusters_free(), 1u);
  pool.free_one(a);
  EXPECT_EQ(pool.clusters_free(), 1u);  // still referenced by b
  pool.free_one(b);
  EXPECT_EQ(pool.clusters_free(), 2u);
}

TEST(Packet, FromBytesRoundTrip) {
  MbufPool pool(64, 16);
  {
    const auto payload = pattern(5000);  // forces a multi-mbuf chain
    Packet pkt = Packet::from_bytes(pool, payload);
    ASSERT_TRUE(pkt);
    EXPECT_EQ(pkt.length(), 5000u);
    EXPECT_GT(pkt.chain_count(), 1u);
    EXPECT_EQ(contents(pkt), payload);
    EXPECT_EQ(pkt.head()->pkt_len(), 5000u);
  }
  EXPECT_EQ(pool.stats().mbufs_outstanding(), 0u);  // RAII released all
}

TEST(Packet, PrependWithinHeadroom) {
  MbufPool pool(8, 4);
  Packet pkt = Packet::from_bytes(pool, pattern(10));
  const std::uint32_t chains = pkt.chain_count();
  std::uint8_t* front = pkt.prepend(8);
  ASSERT_NE(front, nullptr);
  std::fill_n(front, 8, 0xaa);
  EXPECT_EQ(pkt.length(), 18u);
  EXPECT_EQ(pkt.chain_count(), chains);  // no new mbuf needed
  EXPECT_EQ(contents(pkt)[0], 0xaa);
  EXPECT_EQ(contents(pkt)[8], 0);
}

TEST(Packet, PrependAllocatesWhenNoHeadroom) {
  MbufPool pool(8, 4);
  Packet pkt = Packet::make(pool);
  ASSERT_TRUE(pkt);
  // Exhaust the head mbuf's leading space.
  while (pkt.head()->leading_space() > 0) pkt.head()->grow_front(1);
  const std::uint32_t before = pkt.chain_count();
  EXPECT_NE(pkt.prepend(16), nullptr);
  EXPECT_EQ(pkt.chain_count(), before + 1);
}

TEST(Packet, AdjFrontAndBack) {
  MbufPool pool(64, 16);
  Packet pkt = Packet::from_bytes(pool, pattern(1000));
  pkt.adj(100);  // strip header-like prefix
  EXPECT_EQ(pkt.length(), 900u);
  EXPECT_EQ(contents(pkt)[0], pattern(1000)[100]);
  pkt.adj(-200);  // trim trailer
  EXPECT_EQ(pkt.length(), 700u);
  EXPECT_EQ(contents(pkt).back(), pattern(1000)[799]);
  EXPECT_EQ(pkt.head()->pkt_len(), 700u);
}

TEST(Packet, AdjAcrossMbufBoundaries) {
  MbufPool pool(64, 16);
  Packet pkt = Packet::from_bytes(pool, pattern(4000));
  pkt.adj(2100);  // removes whole interior mbufs
  EXPECT_EQ(pkt.length(), 1900u);
  EXPECT_EQ(contents(pkt)[0], pattern(4000)[2100]);
}

TEST(Packet, PullupMakesContiguous) {
  MbufPool pool(64, 16);
  // Build a fragmented chain via cat of small pieces.
  Packet pkt = Packet::from_bytes(pool, pattern(40));
  Packet tail = Packet::from_bytes(pool, pattern(40, 40));
  pkt.cat(std::move(tail));
  ASSERT_GE(pkt.chain_count(), 2u);
  const std::uint8_t* base = pkt.pullup(60);
  ASSERT_NE(base, nullptr);
  EXPECT_GE(pkt.head()->len(), 60u);
  for (int i = 0; i < 60; ++i)
    EXPECT_EQ(base[i], static_cast<std::uint8_t>(i));
  EXPECT_EQ(pkt.length(), 80u);
}

TEST(Packet, PullupFailsWhenTooShort) {
  MbufPool pool(8, 4);
  Packet pkt = Packet::from_bytes(pool, pattern(10));
  EXPECT_EQ(pkt.pullup(11), nullptr);
  EXPECT_EQ(pkt.length(), 10u);  // untouched on failure
}

TEST(Packet, CopyInOutAtOffsets) {
  MbufPool pool(64, 16);
  Packet pkt = Packet::from_bytes(pool, pattern(3000));
  std::uint8_t window[64];
  ASSERT_TRUE(pkt.copy_out(2900, window));
  EXPECT_EQ(window[0], pattern(3000)[2900]);

  const auto patch = pattern(64, 0x80);
  ASSERT_TRUE(pkt.copy_in(1500, patch));
  std::uint8_t check[64];
  ASSERT_TRUE(pkt.copy_out(1500, check));
  EXPECT_EQ(check[10], patch[10]);

  std::uint8_t over[8];
  EXPECT_FALSE(pkt.copy_out(2998, over));  // 2998+8 > 3000
}

TEST(Packet, SplitAtOffsets) {
  MbufPool pool(64, 16);
  for (std::uint32_t at : {0u, 1u, 552u, 2048u, 2999u, 3000u}) {
    Packet pkt = Packet::from_bytes(pool, pattern(3000));
    Packet rest = pkt.split(at);
    ASSERT_TRUE(rest || at == 3000) << "at=" << at;
    EXPECT_EQ(pkt.length(), at);
    EXPECT_EQ(rest.length(), 3000u - at);
    const auto left = contents(pkt);
    const auto right = contents(rest);
    const auto whole = pattern(3000);
    EXPECT_TRUE(std::equal(left.begin(), left.end(), whole.begin()));
    EXPECT_TRUE(
        std::equal(right.begin(), right.end(), whole.begin() + at));
  }
  EXPECT_EQ(pool.stats().mbufs_outstanding(), 0u);
}

TEST(Packet, CatPreservesBytes) {
  MbufPool pool(64, 16);
  Packet a = Packet::from_bytes(pool, pattern(100));
  Packet b = Packet::from_bytes(pool, pattern(100, 100));
  a.cat(std::move(b));
  EXPECT_EQ(a.length(), 200u);
  EXPECT_EQ(contents(a), pattern(200));
}

TEST(Packet, TryViewContiguousOnly) {
  MbufPool pool(64, 16);
  Packet pkt = Packet::from_bytes(pool, pattern(100));
  const auto view = pkt.try_view(10, 20);
  ASSERT_TRUE(view.has_value());
  EXPECT_EQ((*view)[0], 10);
  // A view spanning a chain boundary is refused.
  Packet tail = Packet::from_bytes(pool, pattern(100));
  pkt.cat(std::move(tail));
  EXPECT_FALSE(pkt.try_view(95, 20).has_value());
}

TEST(Packet, MoveSemantics) {
  MbufPool pool(8, 4);
  Packet a = Packet::from_bytes(pool, pattern(10));
  Packet b = std::move(a);
  EXPECT_TRUE(a.empty());
  EXPECT_EQ(b.length(), 10u);
  a = std::move(b);
  EXPECT_EQ(a.length(), 10u);
}

TEST(PacketQueue, FifoAndDropWhenFull) {
  MbufPool pool(16, 4);
  PacketQueue queue(2);
  EXPECT_TRUE(queue.push(Packet::from_bytes(pool, pattern(1))));
  EXPECT_TRUE(queue.push(Packet::from_bytes(pool, pattern(2))));
  EXPECT_FALSE(queue.push(Packet::from_bytes(pool, pattern(3))));
  EXPECT_EQ(queue.drops(), 1u);
  EXPECT_EQ(queue.pop().length(), 1u);
  EXPECT_EQ(queue.pop().length(), 2u);
  EXPECT_TRUE(queue.pop().empty());
  EXPECT_EQ(pool.stats().mbufs_outstanding(), 0u);
}

/// Property sweep: random op sequences preserve the byte-level model.
class PacketFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PacketFuzz, MatchesVectorModel) {
  Rng rng(GetParam());
  MbufPool pool(512, 128);
  {
    std::vector<std::uint8_t> model = pattern(300);
    Packet pkt = Packet::from_bytes(pool, model);
    for (int op = 0; op < 60; ++op) {
      switch (rng.bounded(5)) {
        case 0: {  // append
          const auto extra =
              pattern(rng.bounded(400) + 1, static_cast<std::uint8_t>(op));
          ASSERT_TRUE(pkt.append(extra));
          model.insert(model.end(), extra.begin(), extra.end());
          break;
        }
        case 1: {  // adj front
          if (model.empty()) break;
          const auto n = rng.bounded(model.size()) + 1;
          pkt.adj(static_cast<std::int32_t>(n));
          model.erase(model.begin(), model.begin() + static_cast<long>(n));
          break;
        }
        case 2: {  // adj back
          if (model.empty()) break;
          const auto n = rng.bounded(model.size()) + 1;
          pkt.adj(-static_cast<std::int32_t>(n));
          model.resize(model.size() - n);
          break;
        }
        case 3: {  // split and re-cat (identity on contents)
          const auto at = rng.bounded(model.size() + 1);
          Packet rest = pkt.split(static_cast<std::uint32_t>(at));
          pkt.cat(std::move(rest));
          break;
        }
        case 4: {  // pullup a prefix
          if (model.empty()) break;
          const auto n = std::min<std::uint64_t>(
              rng.bounded(model.size()) + 1, 100);
          (void)pkt.pullup(static_cast<std::uint32_t>(n));
          break;
        }
      }
      ASSERT_EQ(pkt.length(), model.size()) << "op " << op;
      ASSERT_EQ(contents(pkt), model) << "op " << op;
    }
  }
  EXPECT_EQ(pool.stats().mbufs_outstanding(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PacketFuzz,
                         ::testing::Range<std::uint64_t>(1, 17));

}  // namespace
}  // namespace ldlp::buf
