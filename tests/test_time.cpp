// ldlp::time — hierarchical timer wheel, clock faults, timer oracles.
//
// Wheel-grain tests pin the contract edge cases (arm-in-past, cancel
// after fire, horizon wrap, (deadline, seq) firing order, storm caps).
// Schedule-grain tests round-trip the clock fault kinds through
// ldlp.schedule.v1. The backoff-cap audit sweeps every retry surface —
// TCP RTO, ARP re-request, DNS retry, RPC leg RTO, overlay probe —
// under a forced kTimerStorm and asserts the documented doubling
// schedules and caps hold (a storm may fire timers spuriously, but the
// handlers re-check deadlines, so it must never accelerate a ladder).
// Scenario-grain tests reuse run_gossip_sim — the exact code the clocks
// chaos soak runs — for the WheelConfig::shed_guard mutation check and
// the ddmin shrink of a failing clocks schedule.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "bench/soak_scenarios.hpp"
#include "check/schedule.hpp"
#include "check/shrink.hpp"
#include "dns/resolver.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "obs/metrics.hpp"
#include "overlay/gossip_sim.hpp"
#include "overlay/overlay.hpp"
#include "rpc/fanout.hpp"
#include "stack/host.hpp"
#include "time/timer_wheel.hpp"

namespace ldlp {
namespace {

using stack::Host;
using stack::HostConfig;
using stack::NetDevice;
using time::TimerClass;
using time::TimerWheel;
using wire::ip_from_parts;

// ---- Wheel contract edge cases -----------------------------------------

TEST(Wheel, ArmInPastFiresOnNextAdvanceNotCurrent) {
  TimerWheel w;
  w.advance_to(1.0);
  int fired = 0;
  const time::TimerId id =
      w.arm(0.5, TimerClass::kLiveness, [&] { ++fired; });
  EXPECT_TRUE(w.armed(id));
  w.advance_to(1.0);  // stale advance: a frozen clock fires nothing
  EXPECT_EQ(fired, 0);
  w.advance_to(1.001);  // the *next* advance delivers it
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(w.armed(id));
}

TEST(Wheel, CancelAfterFireIsNoOpEvenWhenSlotIsReused) {
  TimerWheel w;
  int fired = 0;
  const time::TimerId id = w.arm(0.01, TimerClass::kCadence, [&] { ++fired; });
  w.advance_to(0.02);
  EXPECT_EQ(fired, 1);
  EXPECT_FALSE(w.cancel(id));
  EXPECT_EQ(w.stats().cancels, 0u);
  // The freed node slot is recycled; the stale id's generation no longer
  // matches, so cancelling it must not kill the new tenant.
  int fired2 = 0;
  const time::TimerId id2 = w.arm(0.05, TimerClass::kCadence, [&] { ++fired2; });
  EXPECT_FALSE(w.cancel(id));
  EXPECT_TRUE(w.armed(id2));
  w.advance_to(0.06);
  EXPECT_EQ(fired2, 1);
}

TEST(Wheel, WrapsPastTheWheelHorizonViaOverflow) {
  // 4 levels x 64 slots: anything beyond 64^4 ticks can't be filed in a
  // slot and parks on the overflow list until the top level wraps.
  time::WheelConfig cfg;
  cfg.tick_sec = 1.0;
  TimerWheel w(cfg);
  std::vector<int> order;
  (void)w.arm(100.0, TimerClass::kCadence, [&] { order.push_back(0); });
  const double past_horizon = 16'777'300.0;  // 64^4 = 16'777'216 ticks
  (void)w.arm(past_horizon, TimerClass::kExpiry, [&] { order.push_back(1); });
  EXPECT_EQ(w.armed_count(), 2u);
  w.advance_to(past_horizon + 1.0);
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], 0);
  EXPECT_EQ(order[1], 1);
  EXPECT_GT(w.stats().cascades, 0u);  // outer levels actually re-filed
  EXPECT_EQ(w.armed_count(), 0u);
}

TEST(Wheel, FiresInDeadlineThenArmOrderTwiceIdentically) {
  const auto run_once = [] {
    TimerWheel w;
    std::vector<int> order;
    // Shuffled deadlines, several ties: ties must fire in arm order.
    const double deadlines[] = {0.30, 0.10, 0.30, 0.20, 0.10, 0.30, 0.05};
    for (int i = 0; i < 7; ++i)
      (void)w.arm(deadlines[i], TimerClass::kCadence,
                  [&order, i] { order.push_back(i); });
    w.advance_to(1.0);
    return order;
  };
  const std::vector<int> a = run_once();
  const std::vector<int> expected = {6, 1, 4, 3, 0, 2, 5};
  EXPECT_EQ(a, expected);
  EXPECT_EQ(a, run_once());  // bit-identical on replay
}

TEST(Wheel, StormSpuriousFiresAreCappedAndDueTimersStillFire) {
  time::WheelConfig cfg;
  cfg.storm_spurious_cap = 2;
  TimerWheel w(cfg);
  int due_fired = 0;
  int early_fired = 0;
  (void)w.arm(0.01, TimerClass::kLiveness, [&] { ++due_fired; });
  for (int i = 0; i < 5; ++i)
    (void)w.arm(5.0 + i, TimerClass::kCadence, [&] { ++early_fired; });
  w.set_storm_level(10);  // demands more than the cap allows
  w.advance_to(0.02);
  EXPECT_EQ(due_fired, 1);  // a storm must never starve due timers
  EXPECT_EQ(early_fired, 2);
  EXPECT_EQ(w.stats().spurious_fires, 2u);
  EXPECT_GT(w.stats().shed, 0u);  // the excess demand was shed, not fired
}

TEST(Wheel, ShedGuardRevertShedsStaleTimersWithEvents) {
  time::WheelConfig cfg;
  cfg.shed_guard = false;  // the mutation under test
  TimerWheel w(cfg);
  std::vector<time::TimerEvent> sheds;
  w.set_observer([&](const time::TimerEvent& e) {
    if (e.kind == time::TimerEvent::Kind::kShed) sheds.push_back(e);
  });
  int fired = 0;
  (void)w.arm(0.1, TimerClass::kLiveness, [&] { ++fired; });
  w.advance_to(1.0);  // a stall-recovery snap: 0.9s past the deadline
  EXPECT_EQ(fired, 0);
  ASSERT_EQ(sheds.size(), 1u);
  EXPECT_EQ(sheds[0].cls, TimerClass::kLiveness);
  EXPECT_EQ(w.stats().shed, 1u);

  // The default guard fires the same timer late instead of dropping it.
  TimerWheel guarded;
  int late = 0;
  (void)guarded.arm(0.1, TimerClass::kLiveness, [&] { ++late; });
  guarded.advance_to(1.0);
  EXPECT_EQ(late, 1);
  EXPECT_EQ(guarded.stats().shed, 0u);
}

// ---- Clock fault kinds in ldlp.schedule.v1 -----------------------------

check::Schedule all_clock_kinds_schedule() {
  check::Schedule s;
  s.scenario = "clocks";
  s.seed = 9;
  fault::FaultPlan plan;
  plan.add({fault::FaultKind::kClockSkew, 0.1, 0.5, 0.0, 0, -0.25});
  plan.add({fault::FaultKind::kClockDrift, 0.2, 0.6, 0.0, 0, 0.3});
  plan.add({fault::FaultKind::kClockStall, 0.3, 0.7, 0.0, 0, 0.0});
  plan.add({fault::FaultKind::kTimerStorm, 0.4, 0.8, 0.0, 5, 0.0});
  s.injectors.push_back({"h3", 77, plan});
  return s;
}

TEST(ClockSchedule, RoundTripsAllClockKindsByteStable) {
  const check::Schedule s = all_clock_kinds_schedule();
  std::string error;
  const auto back = check::Schedule::from_json(s.to_json(), &error);
  ASSERT_TRUE(back.has_value()) << error;
  const auto& eps = back->injectors[0].plan.episodes();
  ASSERT_EQ(eps.size(), 4u);
  EXPECT_EQ(eps[0].kind, fault::FaultKind::kClockSkew);
  EXPECT_DOUBLE_EQ(eps[0].magnitude, -0.25);
  EXPECT_EQ(eps[1].kind, fault::FaultKind::kClockDrift);
  EXPECT_DOUBLE_EQ(eps[1].magnitude, 0.3);
  EXPECT_EQ(eps[2].kind, fault::FaultKind::kClockStall);
  EXPECT_EQ(eps[3].kind, fault::FaultKind::kTimerStorm);
  EXPECT_EQ(eps[3].param, 5u);
  EXPECT_EQ(back->to_json().dump(2), s.to_json().dump(2));
}

TEST(ClockSchedule, SoakScheduleRoundTripsByteStable) {
  // The real thing the soak would write next to a failing seed.
  const check::Schedule s = soak::make_clocks_schedule(7);
  std::string error;
  const auto back = check::Schedule::from_json(s.to_json(), &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->to_json().dump(2), s.to_json().dump(2));
}

TEST(ClockSchedule, UnknownFieldsToleratedUnknownKindRejected) {
  // Forward compatibility: extra keys from a newer writer are ignored...
  obs::Json doc = all_clock_kinds_schedule().to_json();
  doc.set("future_clock_model", obs::Json("tsc"));
  std::string error;
  const auto back = check::Schedule::from_json(doc, &error);
  ASSERT_TRUE(back.has_value()) << error;
  EXPECT_EQ(back->episode_count(), 4u);

  // ...but an unknown fault *kind* is a hard error: silently dropping an
  // episode would change what the schedule reproduces.
  std::string text = all_clock_kinds_schedule().to_json().dump(2);
  const auto pos = text.find("\"clock-stall\"");
  ASSERT_NE(pos, std::string::npos);
  text.replace(pos, 13, "\"clock-warp\"");
  std::string parse_error;
  const auto redoc = obs::Json::parse(text, &parse_error);
  ASSERT_TRUE(redoc.has_value()) << parse_error;
  EXPECT_FALSE(check::Schedule::from_json(*redoc, &error).has_value());
  EXPECT_NE(error.find("clock-warp"), std::string::npos);
}

// ---- Backoff-cap audit under a forced timer storm ----------------------

/// One active kTimerStorm episode covering the whole test: every advance
/// fires spurious wakeups, so any ladder that trusted "my timer fired,
/// time to retransmit" without re-checking its deadline would collapse.
fault::FaultPlan storm_plan() {
  fault::FaultPlan plan;
  plan.add({fault::FaultKind::kTimerStorm, 0.0, 1e6, 0.0, 8, 0.0});
  return plan;
}

/// Two directly-cabled hosts; the client carries the storm injector.
struct StormPair {
  std::unique_ptr<Host> client;
  std::unique_ptr<Host> server;
  fault::FaultInjector storm{storm_plan(), 1};

  StormPair() {
    HostConfig cc;
    cc.name = "client";
    cc.mac = {2, 0, 0, 0, 0, 1};
    cc.ip = ip_from_parts(10, 0, 0, 1);
    HostConfig cs = cc;
    cs.name = "server";
    cs.mac = {2, 0, 0, 0, 0, 2};
    cs.ip = ip_from_parts(10, 0, 0, 2);
    client = std::make_unique<Host>(cc);
    server = std::make_unique<Host>(cs);
    NetDevice::connect(client->device(), server->device());
    client->attach_fault(&storm);
  }
};

/// Gaps must follow the documented ladder: each one doubles the last up
/// to `cap`. `first` is the expected initial gap.
void expect_doubling(const std::vector<double>& gaps, double first,
                     double cap, double slack = 0.06) {
  ASSERT_GE(gaps.size(), 2u);
  double expected = first;
  for (std::size_t i = 0; i < gaps.size(); ++i) {
    EXPECT_NEAR(gaps[i], expected, slack)
        << "gap " << i << " breaks the ladder";
    EXPECT_LE(gaps[i], cap + slack) << "gap " << i << " exceeds the cap";
    expected = std::min(expected * 2.0, cap);
  }
}

std::vector<double> diffs(const std::vector<double>& ts) {
  std::vector<double> out;
  for (std::size_t i = 1; i < ts.size(); ++i) out.push_back(ts[i] - ts[i - 1]);
  return out;
}

TEST(BackoffCaps, TcpRtoDoublesToCapUnderStorm) {
  StormPair net;
  (void)net.server->tcp().listen(80);
  const stack::PcbId conn =
      net.client->tcp().connect(ip_from_parts(10, 0, 0, 2), 80);
  for (int i = 0; i < 12; ++i) {
    net.client->pump();
    net.server->pump();
  }
  ASSERT_EQ(net.client->tcp().state(conn), stack::TcpState::kEstablished);

  // Send, then silence the server: only the client's clock moves, so the
  // segment retransmits up the ladder with no ACK ever coming back.
  const std::vector<std::uint8_t> data = {'p', 'i', 'n', 'g'};
  ASSERT_TRUE(net.client->tcp().send(conn, data));
  std::set<double> rtos;
  std::vector<double> change_at;
  double last_rto = 0.0;
  for (double t = 0.0; t < 60.0; t += 0.01) {
    net.client->advance(0.01);
    net.client->pump();
    if (net.client->tcp().state(conn) == stack::TcpState::kClosed) break;
    const double rto = net.client->tcp().pcb_view(conn).rto_sec;
    rtos.insert(rto);
    if (rto != last_rto) {
      change_at.push_back(net.client->now());
      last_rto = rto;
    }
  }
  // Documented ladder: 0.5 doubling to the 8.0 cap, nothing above it —
  // and the storm's spurious wakeups never fired a retransmit early.
  EXPECT_EQ(*rtos.begin(), 0.5);
  EXPECT_EQ(*rtos.rbegin(), 8.0);
  for (const double r : rtos) EXPECT_LE(r, 8.0);
  ASSERT_GE(change_at.size(), 4u);
  // change_at[0] is the established connection's initial 0.5s RTO; each
  // later change is a retransmit, spaced by the RTO it doubled from.
  const std::vector<double> gaps = diffs(change_at);
  expect_doubling(gaps, 0.5, 8.0);
  EXPECT_GT(net.client->wheel().stats().spurious_fires, 0u);
}

TEST(BackoffCaps, ArpRetryDoublesToCapThenFails) {
  StormPair net;
  // 10.0.0.3 does not exist: the datagram parks on ARP forever.
  const std::vector<std::uint8_t> payload = {'x'};
  net.client->udp().send(4000, ip_from_parts(10, 0, 0, 3), 4000, payload);
  std::vector<double> deadlines;
  double last = -1.0;
  for (double t = 0.0; t < 20.0; t += 0.01) {
    net.client->advance(0.01);
    net.client->pump();
    const double d = net.client->eth().arp().next_retry_deadline();
    if (std::isfinite(d) && d != last) {
      deadlines.push_back(d);
      last = d;
    }
  }
  const stack::ArpCacheStats& st = net.client->eth().arp().stats();
  EXPECT_EQ(st.retries, 5u);  // kMaxTries, then give up
  EXPECT_EQ(st.resolve_failures, 1u);
  EXPECT_FALSE(std::isfinite(net.client->eth().arp().next_retry_deadline()));
  // First retry 0.5s after the park; gaps double to the 4s cap.
  ASSERT_GE(deadlines.size(), 3u);
  EXPECT_NEAR(deadlines[0], 0.5, 0.06);
  expect_doubling(diffs(deadlines), 1.0, 4.0);
}

TEST(BackoffCaps, DnsRetryDoublesToCapThenFailsUnderStorm) {
  StormPair net;
  dns::DnsResolver::Config cfg;
  cfg.server_ip = ip_from_parts(10, 0, 0, 2);  // answers ARP, no DNS server
  dns::DnsResolver resolver(*net.client, cfg);
  std::vector<double> sends;
  net.client->udp().set_send_tap(
      [&](std::uint16_t, std::uint32_t, std::uint16_t dst_port,
          std::span<const std::uint8_t>) {
        if (dst_port == dns::kDnsPort) sends.push_back(net.client->now());
      });
  bool fired = false;
  std::optional<std::uint32_t> answer = 1;  // sentinel: must become nullopt
  resolver.resolve("dead.example",
                   [&](const std::string&, std::optional<std::uint32_t> a) {
                     fired = true;
                     answer = a;
                   });
  for (double t = 0.0; t < 10.0 && !fired; t += 0.01) {
    net.client->advance(0.01);
    net.server->advance(0.01);
    net.client->pump();
    net.server->pump();
    resolver.poll();
  }
  ASSERT_TRUE(fired);
  EXPECT_FALSE(answer.has_value());  // exhaustion, not an address
  EXPECT_EQ(resolver.stats().retries, 3u);  // max_retries
  // 4 sends: original + 3 retries, timeouts 0.5 → 1.0 → 2.0 (the cap).
  ASSERT_EQ(sends.size(), 4u);
  expect_doubling(diffs(sends), 0.5, 2.0);
}

TEST(BackoffCaps, RpcLegRtoDoublesToCapUnderStorm) {
  StormPair net;
  rpc::FanoutConfig cfg;  // UDP transport; 10.0.0.2 answers ARP, no server
  obs::Histogram latency(1e-6, 100.0, 10);
  rpc::FanoutClient fc(*net.client, {ip_from_parts(10, 0, 0, 2)}, cfg,
                       latency);
  std::vector<double> sends;
  net.client->udp().set_send_tap(
      [&](std::uint16_t src_port, std::uint32_t, std::uint16_t,
          std::span<const std::uint8_t>) {
        if (src_port == cfg.client_port) sends.push_back(net.client->now());
      });
  fc.start(0.0, 0.0);
  double t = 0.0;
  while (t < 16.0 && sends.size() < 7) {
    t += 0.01;
    net.client->advance(0.01);
    net.server->advance(0.01);
    net.client->pump();
    net.server->pump();
    fc.poll(t);
  }
  EXPECT_EQ(fc.outstanding(), 1u);  // never completed, never dropped
  // Retransmit gaps: 0.25 doubling to the 4.0 cap.
  ASSERT_GE(sends.size(), 6u);
  expect_doubling(diffs(sends), 0.25, 4.0);
}

TEST(BackoffCaps, OverlayProbeBackoffDoublesToCapUnderStorm) {
  StormPair net;
  overlay::OverlayConfig cfg;
  overlay::OverlayNode a(*net.client, ip_from_parts(10, 0, 0, 1), cfg);
  overlay::OverlayNode b(*net.server, ip_from_parts(10, 0, 0, 2), cfg);
  b.join(a.id(), 0.0);
  double t = 0.0;
  const auto step = [&](bool poll_b) {
    t += 0.01;
    net.client->advance(0.01);
    net.server->advance(0.01);
    net.client->pump();
    net.server->pump();
    a.poll(t);
    if (poll_b) b.poll(t);
  };
  while (t < 2.0 && !(a.in_active(b.id()) && b.in_active(a.id()))) step(true);
  ASSERT_TRUE(a.in_active(b.id()));

  // Go silent on b: its host still answers ARP, but the node never polls
  // again, so a's probes get no PONG and climb the backoff ladder.
  std::vector<double> timeout_at;
  std::uint64_t last_timeouts = a.stats().probe_timeouts;
  while (t < 10.0 && a.in_active(b.id())) {
    step(false);
    if (a.stats().probe_timeouts != last_timeouts) {
      timeout_at.push_back(t);
      last_timeouts = a.stats().probe_timeouts;
    }
  }
  EXPECT_FALSE(a.in_active(b.id()));  // declared dead after probe_failures
  EXPECT_EQ(a.stats().probe_timeouts, 3u);
  // Gaps between successive timeouts: 0.3 doubled to the 1.2 cap.
  expect_doubling(diffs(timeout_at), 0.6, 1.2);
}

// ---- The clocks scenario: mutation check + ddmin -----------------------

/// 16-host run_gossip_sim config with the timer oracles attached — the
/// same code path as the clocks soak, sized for unit-test wall clock.
/// Probing is aggressive (idle threshold under every cadence interval)
/// so the consolidated wakeup is liveness-class when the stall snaps.
overlay::GossipSimConfig clocks_sim() {
  overlay::GossipSimConfig cfg;
  cfg.racks = 4;
  cfg.hosts_per_rack = 4;
  cfg.spines = 2;
  cfg.fault_horizon_sec = 1.2;
  cfg.storm_broadcasts = 16;
  cfg.timer_oracles = true;
  cfg.overlay.membership.probe_idle_sec = 0.15;
  return cfg;
}

/// One long clock stall on h2 (the snap strands its armed wakeups well
/// past stale_shed_sec) plus two benign decoys on other hosts that ddmin
/// must discard: a small skew and a mild drift, neither of which can
/// move a wheel far enough in one advance to strand anything.
check::Schedule stall_schedule(std::uint64_t seed) {
  check::Schedule s;
  s.scenario = "clocks";
  s.seed = seed;
  fault::FaultPlan stall;
  stall.add({fault::FaultKind::kClockStall, 0.35, 1.0, 0.0, 0, 0.0});
  s.injectors.push_back({"h2", seed * 3 + 5, stall});
  fault::FaultPlan skew;
  skew.add({fault::FaultKind::kClockSkew, 0.2, 0.5, 0.0, 0, 0.08});
  s.injectors.push_back({"h5", seed * 3 + 6, skew});
  fault::FaultPlan drift;
  drift.add({fault::FaultKind::kClockDrift, 0.1, 0.4, 0.0, 0, 0.2});
  s.injectors.push_back({"h9", seed * 3 + 7, drift});
  return s;
}

TEST(ClocksSim, StallRecoverySnapIsSurvivedWithGuardOn) {
  const overlay::GossipSimResult r =
      overlay::run_gossip_sim(stall_schedule(3), clocks_sim());
  EXPECT_TRUE(r.pass) << r.why;
  EXPECT_EQ(r.timer_shed, 0u);  // the guard fires late, it never drops
  EXPECT_GT(r.timer_arms, 0u);
  EXPECT_GT(r.timer_fires, 0u);
}

TEST(ClocksMutation, ShedGuardRevertCaughtAndShrinksToTheStall) {
  // THE MUTATION CHECK. Reverting WheelConfig::shed_guard must (a) be
  // caught by the deadline oracle when a stall-recovery snap sheds a
  // liveness timer, (b) stay green without clock faults — the oracle
  // blames the shed path, not background noise — and (c) ddmin the
  // failing schedule down to the single kClockStall episode.
  overlay::GossipSimConfig mutated = clocks_sim();
  mutated.wheel.shed_guard = false;

  const check::Schedule stall = stall_schedule(3);
  const overlay::GossipSimResult broken =
      overlay::run_gossip_sim(stall, mutated);
  ASSERT_FALSE(broken.pass);
  ASSERT_FALSE(broken.violations.empty());
  EXPECT_NE(broken.violations[0].find("shed"), std::string::npos)
      << broken.violations[0];

  check::Schedule calm = stall;
  calm.injectors.clear();
  const overlay::GossipSimResult quiet =
      overlay::run_gossip_sim(calm, mutated);
  EXPECT_TRUE(quiet.pass) << quiet.why;

  const check::ShrinkResult shrunk = check::shrink(
      stall,
      [&](const check::Schedule& candidate) {
        return !overlay::run_gossip_sim(candidate, mutated).pass;
      },
      64);
  EXPECT_TRUE(shrunk.converged);
  EXPECT_EQ(shrunk.schedule.episode_count(), 1u);
  EXPECT_TRUE(shrunk.schedule.has_kind(fault::FaultKind::kClockStall));
}

TEST(ClocksScenario, RegisteredWithOwnBudget) {
  bool found = false;
  for (std::size_t i = 0; i < soak::kScenarioCount; ++i) {
    if (std::string(soak::kScenarios[i].name) != "clocks") continue;
    found = true;
    EXPECT_NE(soak::kScenarios[i].make, nullptr);
    EXPECT_EQ(soak::kScenarios[i].seed_timeout_ms, 120000);
    // Opt-in like tail/gossip: the default sweep stays protocol-grain.
    EXPECT_FALSE(soak::kScenarios[i].in_default_sweep);
  }
  EXPECT_TRUE(found);
  // The generated schedule actually carries clock adversity: a fleet
  // injector plus per-host victims with clock-kind episodes.
  const check::Schedule s = soak::make_clocks_schedule(5);
  EXPECT_EQ(s.scenario, "clocks");
  bool has_clock_kind = false;
  for (const auto& spec : s.injectors)
    for (const auto& e : spec.plan.episodes())
      has_clock_kind = has_clock_kind ||
                       e.kind == fault::FaultKind::kClockSkew ||
                       e.kind == fault::FaultKind::kClockDrift ||
                       e.kind == fault::FaultKind::kClockStall ||
                       e.kind == fault::FaultKind::kTimerStorm;
  EXPECT_TRUE(has_clock_kind);
  EXPECT_EQ(s.injectors[0].host, "fabric");
}

}  // namespace
}  // namespace ldlp
