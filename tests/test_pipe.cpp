// Tests for ldlp::pipe — the staged receive path (parse -> steer ->
// proto -> socket) and the stage-level cache/latency engine behind
// fig_pipeline.
//
// The properties pinned here are the ones the design note promises:
//  * per-flow FIFO through the stages, even when the wire reorders and
//    duplicates frames — the staged path must deliver exactly what the
//    layer-blocked baseline delivers;
//  * bounded stage queues conserve frames (offered = enqueued + drops,
//    enqueued = handed_off + queue_len) and drop, never block;
//  * the three schedules (ldlp / pipelined / hybrid) are byte-identical
//    end to end on a real TCP transfer;
//  * the parse stage's parallel classification is bit-identical for any
//    WorkerPool size;
//  * the wide checksum is the same function as the scalar ones;
//  * the stage engine is deterministic and shows the two-sided
//    i-miss/d-miss separation the figure argues from.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "check/invariants.hpp"
#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "par/worker_pool.hpp"
#include "pipe/pipeline.hpp"
#include "pipe/stage_engine.hpp"
#include "stack/host.hpp"
#include "traffic/self_similar.hpp"
#include "traffic/size_models.hpp"
#include "wire/checksum.hpp"

namespace ldlp {
namespace {

using wire::ip_from_parts;

struct Pair {
  stack::HostConfig ca;
  stack::HostConfig cb;
  std::unique_ptr<stack::Host> tx;
  std::unique_ptr<stack::Host> rx;

  Pair() {
    ca.name = "tx";
    ca.mac = {2, 0, 0, 0, 0, 1};
    ca.ip = ip_from_parts(10, 0, 0, 1);
    cb.name = "rx";
    cb.mac = {2, 0, 0, 0, 0, 2};
    cb.ip = ip_from_parts(10, 0, 0, 2);
    cb.mode = core::SchedMode::kLdlp;  // StagedRx schedules the graph.
    tx = std::make_unique<stack::Host>(ca);
    rx = std::make_unique<stack::Host>(cb);
    stack::NetDevice::connect(tx->device(), rx->device());
  }
};

// Flow f sends datagrams from port 9001+f; payload byte 0 is the flow,
// byte 1 the sequence number. Every 7th send is duplicated at the source
// and the rx ring reorders adjacent frames — the adversarial wire.
constexpr int kFlows = 4;
constexpr int kRounds = 48;

/// One adversarial UDP run. `staged_mode` selects the StagedRx schedule;
/// nullptr runs the plain layer-blocked Host::pump baseline. Returns the
/// per-flow delivered sequence numbers, in delivery order.
std::map<int, std::vector<int>> adversarial_run(
    const pipe::RxMode* staged_mode, par::WorkerPool* pool = nullptr,
    pipe::StagedRx** staged_out = nullptr,
    std::unique_ptr<Pair>* keep = nullptr) {
  auto net = std::make_unique<Pair>();
  net->rx->device().set_reorder(0.3, 0xdead);

  std::unique_ptr<pipe::StagedRx> staged;
  if (staged_mode != nullptr) {
    pipe::PipelineConfig pc;
    pc.mode = *staged_mode;
    pc.lanes = 2;
    pc.batch_limit = 4;
    staged = std::make_unique<pipe::StagedRx>(*net->rx, pc);
  }
  const auto pump_rx = [&] {
    if (staged)
      (void)staged->pump(SIZE_MAX, pool);
    else
      net->rx->pump();
  };

  const stack::SocketId sock =
      net->rx->sockets().create(stack::SocketKind::kDatagram);
  EXPECT_TRUE(net->rx->udp().bind(9000, sock));

  // Resolve ARP before the measured flood so nothing parks.
  std::uint8_t warm[2] = {0xff, 0xff};
  net->tx->udp().send(9001, net->cb.ip, 9000, warm);
  for (int i = 0; i < 6; ++i) {
    net->tx->pump();
    pump_rx();
  }
  (void)net->rx->sockets().read_datagram(sock);

  for (int r = 0; r < kRounds; ++r) {
    for (int f = 0; f < kFlows; ++f) {
      const std::uint8_t payload[2] = {static_cast<std::uint8_t>(f),
                                       static_cast<std::uint8_t>(r)};
      net->tx->udp().send(static_cast<std::uint16_t>(9001 + f), net->cb.ip,
                          9000, payload);
      if ((r + f) % 7 == 0)  // source-duplicated frame
        net->tx->udp().send(static_cast<std::uint16_t>(9001 + f), net->cb.ip,
                            9000, payload);
    }
    if (r % 4 == 3) {
      net->tx->pump();
      pump_rx();
    }
  }
  for (int i = 0; i < 4; ++i) {
    net->tx->pump();
    pump_rx();
  }

  std::map<int, std::vector<int>> delivered;
  while (auto dgram = net->rx->sockets().read_datagram(sock)) {
    EXPECT_EQ(dgram->payload.size(), 2u) << "foreign datagram";
    delivered[dgram->payload[0]].push_back(dgram->payload[1]);
  }
  if (staged) {
    EXPECT_TRUE(staged->audit().empty());
  }
  if (staged_out != nullptr) *staged_out = staged.release();
  if (keep != nullptr) *keep = std::move(net);
  return delivered;
}

TEST(PerFlowOrder, AdversarialWireMatchesLayerBlockedBaseline) {
  const auto baseline = adversarial_run(nullptr);
  ASSERT_EQ(baseline.size(), static_cast<std::size_t>(kFlows));
  // The wire duplicates some frames, so each flow delivers > kRounds.
  for (const auto& [flow, seqs] : baseline)
    EXPECT_GT(seqs.size(), static_cast<std::size_t>(kRounds)) << flow;

  for (const pipe::RxMode mode :
       {pipe::RxMode::kLdlp, pipe::RxMode::kPipelined, pipe::RxMode::kHybrid}) {
    const auto staged = adversarial_run(&mode);
    EXPECT_EQ(staged, baseline) << pipe::rx_mode_name(mode);
  }
}

TEST(Jobs, ParallelClassifyIsBitIdentical) {
  const pipe::RxMode mode = pipe::RxMode::kPipelined;
  par::WorkerPool one(1);
  par::WorkerPool four(4);
  const auto serial = adversarial_run(&mode, &one);
  const auto fanned = adversarial_run(&mode, &four);
  EXPECT_EQ(serial, fanned);
}

TEST(BoundedQueue, TinyCapsDropAndConserve) {
  Pair net;
  pipe::PipelineConfig pc;
  pc.mode = pipe::RxMode::kPipelined;
  pc.lanes = 1;
  pc.stage_queue_cap = 4;
  pipe::StagedRx staged(*net.rx, pc);

  const stack::SocketId sock =
      net.rx->sockets().create(stack::SocketKind::kDatagram);
  ASSERT_TRUE(net.rx->udp().bind(9000, sock));
  std::uint8_t payload[8] = {};
  net.tx->udp().send(9001, net.cb.ip, 9000, payload);
  for (int i = 0; i < 6; ++i) {
    net.tx->pump();
    (void)staged.pump();
  }

  // A 64-frame burst against a 4-deep parse queue: the pull loop offers
  // every pending frame before the stages run, so most must drop there.
  for (int i = 0; i < 64; ++i)
    net.tx->udp().send(9001, net.cb.ip, 9000, payload);
  net.tx->pump();
  (void)staged.pump();

  const pipe::StageCounters parse = staged.counters(pipe::Stage::kParse);
  EXPECT_GT(parse.drops, 0u);
  EXPECT_EQ(parse.offered, parse.enqueued + parse.drops);
  EXPECT_EQ(parse.enqueued, parse.handed_off + parse.queue_len);
  EXPECT_LE(parse.high_water, pc.stage_queue_cap);
  EXPECT_TRUE(staged.audit().empty());

  // Dropped chains went back to the pool: nothing may leak.
  EXPECT_EQ(net.rx->pool().stats().mbufs_outstanding(), 0u);
}

TEST(ThreeModes, TcpTransferByteIdentical) {
  const std::vector<std::uint8_t> chunk = [] {
    std::vector<std::uint8_t> out(700);
    Rng rng(0x7cb);
    for (auto& b : out) b = static_cast<std::uint8_t>(rng.bounded(256));
    return out;
  }();

  std::vector<std::uint8_t> first;
  for (const pipe::RxMode mode :
       {pipe::RxMode::kLdlp, pipe::RxMode::kPipelined, pipe::RxMode::kHybrid}) {
    Pair net;
    pipe::PipelineConfig pc;
    pc.mode = mode;
    pc.lanes = 2;
    pc.batch_limit = 4;
    pipe::StagedRx staged(*net.rx, pc);

    (void)net.rx->tcp().listen(80);
    stack::PcbId accepted = stack::kNoPcb;
    net.rx->tcp().set_accept_hook([&](stack::PcbId id) { accepted = id; });
    const stack::PcbId conn = net.tx->tcp().connect(net.cb.ip, 80);
    for (int i = 0; i < 8; ++i) {
      net.tx->pump();
      (void)staged.pump();
    }
    ASSERT_EQ(net.tx->tcp().state(conn), stack::TcpState::kEstablished)
        << pipe::rx_mode_name(mode);

    std::vector<std::uint8_t> got;
    std::vector<std::uint8_t> buf(4096);
    const stack::SocketId sock = net.rx->tcp().socket_of(accepted);
    for (int seg = 0; seg < 8; ++seg) {
      ASSERT_TRUE(net.tx->tcp().send(conn, chunk));
      net.tx->pump();
      (void)staged.pump();
      const std::size_t n = net.rx->sockets().read(sock, buf);
      got.insert(got.end(), buf.begin(),
                 buf.begin() + static_cast<std::ptrdiff_t>(n));
      net.tx->pump();  // absorb the ACK
    }
    ASSERT_EQ(got.size(), chunk.size() * 8) << pipe::rx_mode_name(mode);
    EXPECT_TRUE(staged.audit().empty());
    if (first.empty())
      first = got;
    else
      EXPECT_EQ(got, first) << pipe::rx_mode_name(mode);
  }
  // And the bytes are the sender's, not merely mutually consistent.
  for (std::size_t i = 0; i < first.size(); ++i)
    ASSERT_EQ(first[i], chunk[i % chunk.size()]) << i;
}

TEST(Auditor, StageQueuesJoinTheHostAudit) {
  Pair net;
  pipe::PipelineConfig pc;
  pc.mode = pipe::RxMode::kHybrid;
  pc.lanes = 2;
  pc.batch_limit = 4;
  pipe::StagedRx staged(*net.rx, pc);
  check::HostAuditor auditor(*net.rx, "rx");
  auditor.add_audit([&] { return staged.audit(); });
  auditor.install();

  const stack::SocketId sock =
      net.rx->sockets().create(stack::SocketKind::kDatagram);
  ASSERT_TRUE(net.rx->udp().bind(9000, sock));
  std::uint8_t payload[16] = {};
  for (int r = 0; r < 12; ++r) {
    net.tx->udp().send(9001, net.cb.ip, 9000, payload);
    net.tx->pump();
    (void)staged.pump();
  }
  auditor.run();
  EXPECT_TRUE(auditor.ok()) << auditor.violations().front();
  EXPECT_GT(auditor.stats().passes, 0u);
}

TEST(Publish, PerStageCountersLandInTheRegistry) {
  // TCP stream traffic, so the socket *layer* sees graph messages and the
  // socket stage's counters move (UDP hands datagrams to the socket layer
  // directly, bypassing its queue).
  Pair net;
  pipe::PipelineConfig pc;
  pc.mode = pipe::RxMode::kPipelined;
  pc.lanes = 2;
  pipe::StagedRx staged(*net.rx, pc);

  (void)net.rx->tcp().listen(80);
  stack::PcbId accepted = stack::kNoPcb;
  net.rx->tcp().set_accept_hook([&](stack::PcbId id) { accepted = id; });
  const stack::PcbId conn = net.tx->tcp().connect(net.cb.ip, 80);
  for (int i = 0; i < 8; ++i) {
    net.tx->pump();
    (void)staged.pump();
  }
  ASSERT_EQ(net.tx->tcp().state(conn), stack::TcpState::kEstablished);
  const std::vector<std::uint8_t> payload(128, 0x5a);
  std::vector<std::uint8_t> sink(1024);
  const stack::SocketId sock = net.rx->tcp().socket_of(accepted);
  for (int seg = 0; seg < 4; ++seg) {
    ASSERT_TRUE(net.tx->tcp().send(conn, payload));
    net.tx->pump();
    (void)staged.pump();
    (void)net.rx->sockets().read(sock, sink);
    net.tx->pump();
  }

  obs::Registry registry;
  staged.publish(registry);
  EXPECT_GT(registry.counter("pipe.parse.offered").value(), 0u);
  EXPECT_GT(registry.counter("pipe.steer.handed_off").value(), 0u);
  EXPECT_GT(registry.counter("pipe.proto.enqueued").value(), 0u);
  EXPECT_GT(registry.counter("pipe.socket.handed_off").value(), 0u);
  EXPECT_EQ(registry.counter("pipe.parse.drops").value(), 0u);
  EXPECT_EQ(registry.gauge("pipe.lanes").value(), 2.0);
}

// ---- StageEngine: the simulated three-way figure ----------------------

std::vector<traffic::PacketArrival> short_trace(double rate) {
  traffic::SelfSimilarConfig tc;
  tc.mean_rate_per_sec = rate;
  tc.duration_sec = 0.25;
  const auto sizes = traffic::internet552_sizes();
  return traffic::generate_self_similar_trace(tc, *sizes, 0xf19);
}

pipe::StageEngineResult engine_run(pipe::RxMode mode, double rate) {
  pipe::StageEngineConfig cfg;
  cfg.mode = mode;
  cfg.batch_limit = 8;
  return pipe::StageEngine(cfg).run(short_trace(rate));
}

TEST(StageEngine, DeterministicAcrossRuns) {
  const auto a = engine_run(pipe::RxMode::kHybrid, 15000.0);
  const auto b = engine_run(pipe::RxMode::kHybrid, 15000.0);
  EXPECT_EQ(a.offered, b.offered);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.dropped, b.dropped);
  EXPECT_DOUBLE_EQ(a.i_miss_per_msg, b.i_miss_per_msg);
  EXPECT_DOUBLE_EQ(a.d_miss_per_msg, b.d_miss_per_msg);
  EXPECT_DOUBLE_EQ(a.p99_latency_sec, b.p99_latency_sec);
}

TEST(StageEngine, ConservesMessages) {
  for (const pipe::RxMode mode :
       {pipe::RxMode::kLdlp, pipe::RxMode::kPipelined, pipe::RxMode::kHybrid}) {
    const auto r = engine_run(mode, 20000.0);
    EXPECT_EQ(r.offered, r.completed + r.dropped) << pipe::rx_mode_name(mode);
    EXPECT_GT(r.completed, 0u) << pipe::rx_mode_name(mode);
  }
}

TEST(StageEngine, TwoSidedCacheSeparation) {
  const auto ldlp = engine_run(pipe::RxMode::kLdlp, 15000.0);
  const auto piped = engine_run(pipe::RxMode::kPipelined, 15000.0);
  // LDLP refetches the four stage bodies every batch; the pipelined
  // stages keep their own code resident.
  EXPECT_GT(ldlp.i_miss_per_msg, 10.0 * (piped.i_miss_per_msg + 1e-9));
  // The pipeline pulls every message into four private d-caches.
  EXPECT_GT(piped.d_miss_per_msg, 1.5 * ldlp.d_miss_per_msg);
  // Batching actually happened under LDLP.
  EXPECT_GT(ldlp.mean_batch, 1.5);
  EXPECT_DOUBLE_EQ(piped.mean_batch, 1.0);
}

TEST(StageEngine, HybridAmortisesActivationsPastSaturation) {
  // Past the pipeline's bottleneck stage, per-message activations are
  // what breaks the pipelined schedule; the hybrid batches them away.
  const auto piped = engine_run(pipe::RxMode::kPipelined, 48000.0);
  const auto hybrid = engine_run(pipe::RxMode::kHybrid, 48000.0);
  EXPECT_GT(hybrid.mean_batch, 1.5);
  EXPECT_LT(hybrid.p99_latency_sec, piped.p99_latency_sec);
  EXPECT_LE(hybrid.dropped, piped.dropped);
}

// ---- The wide checksum is the same function ---------------------------

TEST(CksumWide, MatchesScalarOnRandomBuffers) {
  Rng rng(0xc4a);
  for (int len = 0; len <= 130; ++len) {
    std::vector<std::uint8_t> buf(static_cast<std::size_t>(len));
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.bounded(256));
    ASSERT_EQ(wire::cksum_wide(buf), wire::cksum_simple(buf)) << len;
    ASSERT_EQ(wire::cksum_wide(buf), wire::cksum_unrolled(buf)) << len;
  }
  for (const int len : {551, 552, 1459, 1460, 4096}) {
    std::vector<std::uint8_t> buf(static_cast<std::size_t>(len));
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng.bounded(256));
    ASSERT_EQ(wire::cksum_wide(buf), wire::cksum_simple(buf)) << len;
  }
}

TEST(CksumWide, MatchesScalarOnUnalignedSpans) {
  Rng rng(0xa17);
  std::vector<std::uint8_t> buf(1500 + 8);
  for (auto& b : buf) b = static_cast<std::uint8_t>(rng.bounded(256));
  for (int off = 0; off < 8; ++off) {
    const std::span<const std::uint8_t> view(buf.data() + off, 1500);
    ASSERT_EQ(wire::cksum_wide(view), wire::cksum_simple(view)) << off;
  }
}

TEST(CksumWide, Rfc1071Example) {
  const std::uint8_t data[] = {0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7};
  EXPECT_EQ(wire::cksum_wide(data), 0x220d);
  (void)wire::cksum_simd_enabled();  // linkage + callable under any macro
}

}  // namespace
}  // namespace ldlp
