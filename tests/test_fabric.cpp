// ldlp::net — the multi-host fabric: star/fat-tree/WAN topologies, MAC
// learning and valley-free flooding, bounded link queues, topology-scoped
// fault domains (partition / heal), frame conservation, determinism, and
// ddmin shrinking of fleet schedules.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "check/schedule.hpp"
#include "check/shrink.hpp"
#include "fault/fault_plan.hpp"
#include "net/fabric.hpp"
#include "net/fleet_plan.hpp"
#include "net/topology.hpp"
#include "obs/bridge.hpp"
#include "obs/metrics.hpp"
#include "recover/convergence.hpp"
#include "recover/partition_heal.hpp"
#include "recover/watchdog.hpp"
#include "stack/host.hpp"

namespace ldlp {
namespace {

/// One src->dst TCP stream on a fabric, drip-fed and read by the caller.
struct Stream {
  net::Fabric* fabric = nullptr;
  stack::Host* src = nullptr;
  stack::Host* dst = nullptr;
  stack::PcbId conn = stack::kNoPcb;
  stack::PcbId accepted = stack::kNoPcb;
  stack::SocketId rx_socket = stack::kNoSocket;
  std::vector<std::uint8_t> payload;
  std::vector<std::uint8_t> got;
  std::size_t chunk_bytes = 500;  ///< Per-step send size (drip by default).

  void open(net::Fabric& f, net::HostId s, net::HostId d,
            std::uint16_t port, std::size_t bytes) {
    fabric = &f;
    src = &f.host(s);
    dst = &f.host(d);
    payload.resize(bytes);
    for (std::size_t i = 0; i < bytes; ++i)
      payload[i] = static_cast<std::uint8_t>(i * 17 + 3);
    dst->tcp().set_accept_hook([this](stack::PcbId id) {
      if (rx_socket == stack::kNoSocket) {
        accepted = id;
        rx_socket = dst->tcp().socket_of(id);
      }
    });
    (void)dst->tcp().listen(port);
    conn = src->tcp().connect(net::host_ip(d), port);
  }

  /// One driver step: queue the remaining payload once established, read
  /// whatever arrived. Returns true when the full payload has landed.
  bool step() {
    if (sent_ < payload.size() &&
        src->tcp().state(conn) == stack::TcpState::kEstablished) {
      const std::size_t n =
          std::min<std::size_t>(chunk_bytes, payload.size() - sent_);
      if (src->tcp().send(
              conn, std::span(payload).subspan(sent_, n)))
        sent_ += n;
    }
    if (rx_socket != stack::kNoSocket) {
      std::uint8_t chunk[1024];
      const std::size_t n = dst->sockets().read(rx_socket, chunk);
      got.insert(got.end(), chunk, chunk + n);
    }
    return got.size() >= payload.size();
  }

  [[nodiscard]] bool run(double step_sec, int max_steps) {
    for (int i = 0; i < max_steps; ++i) {
      if (step()) return true;
      fabric->run_for(step_sec);
    }
    return step();
  }

  /// Orderly teardown of both ends (a one-sided close parks the peer in
  /// FIN_WAIT_2 forever, which the convergence oracle rightly condemns).
  void close_both() {
    src->tcp().close(conn);
    if (accepted != stack::kNoPcb) dst->tcp().close(accepted);
  }

 private:
  std::size_t sent_ = 0;
};

// ---- Star: basic reachability and conservation -------------------------

TEST(Fabric, StarDeliversAndConserves) {
  net::Fabric fabric({/*host_tick_sec=*/1e-3, /*fault_seed=*/1});
  net::StarConfig star;
  star.hosts = 4;
  const auto hosts = net::build_star(fabric, star);
  ASSERT_EQ(fabric.host_count(), 4u);
  ASSERT_EQ(fabric.switch_count(), 1u);
  ASSERT_EQ(fabric.link_count(), 4u);

  Stream s;
  s.open(fabric, hosts[0], hosts[3], 4000, 8000);
  ASSERT_TRUE(s.run(0.01, 400));
  EXPECT_EQ(s.got, s.payload);
  // Unicast converges onto learned MAC entries: the switch forwards far
  // more than it floods once the first exchange has seeded the fdb.
  EXPECT_GT(fabric.switch_stats(0).forwarded, fabric.switch_stats(0).flooded);
  EXPECT_EQ(fabric.conservation_residual(), 0);
}

TEST(Fabric, BoundedQueuesDropButConserve) {
  net::Fabric fabric({/*host_tick_sec=*/1e-3, /*fault_seed=*/1});
  net::StarConfig star;
  star.hosts = 2;
  // A starved slow link: 1-frame queue, 1 Mbit/s (a full segment
  // serializes for ~12 ms, spanning many ticks). The sender's bursts
  // must overrun it; the ledger must still balance exactly.
  star.access = {/*delay_sec=*/1e-4, /*gbit_per_sec=*/0.001,
                 /*queue_frames=*/1};
  const auto hosts = net::build_star(fabric, star);
  Stream s;
  s.open(fabric, hosts[0], hosts[1], 4000, 20000);
  s.chunk_bytes = s.payload.size();  // one burst: cwnd-paced back-to-back
  (void)s.run(0.01, 500);
  std::uint64_t queue_drops = 0;
  for (net::LinkId id = 0; id < fabric.link_count(); ++id)
    for (int dir = 0; dir < 2; ++dir)
      queue_drops += fabric.link_stats(id, dir).queue_drops;
  EXPECT_GT(queue_drops, 0u);
  EXPECT_EQ(fabric.conservation_residual(), 0);
}

// ---- Fat-tree: valley-free forwarding, no storms, no duplicates --------

TEST(Fabric, FatTreeMultiSpineIsLoopAndDuplicateFree) {
  net::Fabric fabric({/*host_tick_sec=*/1e-3, /*fault_seed=*/1});
  net::FatTreeConfig topo;
  topo.racks = 3;
  topo.hosts_per_rack = 2;
  topo.spines = 2;  // redundant paths: a learning switch alone would storm
  const auto hosts = net::build_fat_tree(fabric, topo);

  recover::PartitionHealOracle heal;  // exactly-once = duplicate detector
  const auto pid = heal.open_pair(fabric.host(hosts[0]).name(),
                                  fabric.host(hosts[5]).name());
  stack::Host& dst = fabric.host(hosts[5]);
  dst.sockets().set_tap(&heal.rx_tap(dst.name()));
  Stream s;
  s.open(fabric, hosts[0], hosts[5], 4000, 6000);
  dst.tcp().set_accept_hook([&](stack::PcbId id) {
    if (s.rx_socket == stack::kNoSocket) {
      s.rx_socket = dst.tcp().socket_of(id);
      heal.bind_rx(pid, s.rx_socket);
    }
  });
  fabric.host(hosts[0]).tcp().set_send_tap(
      [&](stack::PcbId id, std::span<const std::uint8_t> bytes) {
        if (id == s.conn) heal.sent(pid, bytes);
      });
  ASSERT_TRUE(s.run(0.01, 400));
  EXPECT_EQ(s.got, s.payload);
  (void)heal.finalize();
  EXPECT_TRUE(heal.ok()) << (heal.violations().empty()
                                 ? std::string("no detail")
                                 : heal.violations()[0]);
  // The broadcast ARP resolution must not have stormed: with valley-free
  // flooding every broadcast crosses each switch at most once.
  EXPECT_EQ(fabric.conservation_residual(), 0);
  std::uint64_t flooded = 0;
  for (net::SwitchId id = 0; id < fabric.switch_count(); ++id)
    flooded += fabric.switch_stats(id).flooded;
  EXPECT_LT(flooded, 200u);  // a storm would be unbounded (queue-capped)
  dst.sockets().set_tap(nullptr);
}

// ---- Fault domains: switch partition cuts the subtree, then heals ------

TEST(Fabric, SwitchFaultPartitionsAndHeals) {
  net::Fabric fabric({/*host_tick_sec=*/1e-3, /*fault_seed=*/1});
  net::StarConfig star;
  star.hosts = 4;
  const auto hosts = net::build_star(fabric, star);

  fault::FaultPlan plan;
  fault::Episode cut;
  cut.kind = fault::FaultKind::kPartition;
  cut.start = 0.05;
  cut.end = 0.60;
  cut.domain = fault::FaultDomain::kSwitch;
  cut.domain_index = 0;  // the star's hub: everything dark at once
  plan.add(cut);
  fabric.set_fault_plan(plan, /*seed=*/7);

  // The domain covers every access link, both directions, only inside
  // the window.
  for (net::LinkId id = 0; id < fabric.link_count(); ++id) {
    EXPECT_TRUE(fabric.link_cut(id, 0, 0.3));
    EXPECT_TRUE(fabric.link_cut(id, 1, 0.3));
    EXPECT_FALSE(fabric.link_cut(id, 0, 0.01));
    EXPECT_FALSE(fabric.link_cut(id, 0, 0.7));
  }

  // Budgets are sim-time allowances divided by the tick: at this 1 ms
  // tick the capped rto_max (8 s) silent gap is 8000 passes, and the
  // post-heal retransmit ladder needs the same 10x scale-up over the
  // 50 ms-tick defaults.
  recover::ConvergenceOracle conv({/*budget_passes=*/20000});
  recover::ProgressWatchdog dog({/*stall_passes=*/10000});
  for (const net::HostId id : hosts) {
    conv.add_host(fabric.host(id));
    dog.add_host(fabric.host(id));
  }
  conv.add_clearance([&] { return fabric.faults_cleared(); });
  dog.add_clearance([&] { return fabric.faults_cleared(); });
  fabric.set_pass_hook([&] {
    conv.on_pass();
    dog.on_pass();
  });

  Stream s;
  s.open(fabric, hosts[1], hosts[2], 4000, 6000);
  // Mid-partition nothing can have arrived (the SYN died on the wire).
  fabric.run_until(0.3);
  (void)s.step();
  EXPECT_TRUE(s.got.empty());
  std::uint64_t fault_drops = 0;
  for (net::LinkId id = 0; id < fabric.link_count(); ++id)
    for (int dir = 0; dir < 2; ++dir)
      fault_drops += fabric.link_stats(id, dir).fault_drops;
  EXPECT_GT(fault_drops, 0u);

  // After the heal, retransmission completes the stream byte-exact.
  ASSERT_TRUE(s.run(0.01, 2000));
  EXPECT_EQ(s.got, s.payload);
  EXPECT_EQ(fabric.conservation_residual(), 0);

  // And the fleet oracles settle: armed post-traffic, every connection
  // reaches a terminal/converged state within budget, no stalls flagged.
  s.close_both();
  conv.arm();
  for (int i = 0; i < 400 && !conv.settled(); ++i) fabric.run_for(0.05);
  EXPECT_TRUE(conv.settled());
  EXPECT_TRUE(conv.ok()) << (conv.violations().empty()
                                 ? std::string("no detail")
                                 : conv.violations()[0]);
  EXPECT_TRUE(dog.ok()) << (dog.violations().empty()
                                ? std::string("no detail")
                                : dog.violations()[0]);
}

TEST(Fabric, AsymmetricPartitionCutsOneDirection) {
  net::Fabric fabric({/*host_tick_sec=*/1e-3, /*fault_seed=*/1});
  net::StarConfig star;
  star.hosts = 2;
  (void)net::build_star(fabric, star);
  fault::FaultPlan plan;
  fault::Episode cut;
  cut.kind = fault::FaultKind::kPartition;
  cut.start = 0.0;
  cut.end = 1.0;
  cut.domain = fault::FaultDomain::kLink;
  cut.domain_index = 0;
  cut.direction = fault::kDirAtoB;
  plan.add(cut);
  fabric.set_fault_plan(plan, 7);
  EXPECT_TRUE(fabric.link_cut(0, 0, 0.5));
  EXPECT_FALSE(fabric.link_cut(0, 1, 0.5));   // reverse direction clean
  EXPECT_FALSE(fabric.link_cut(1, 0, 0.5));   // other link untouched
}

// ---- WAN pair: two sites over one long link ----------------------------

TEST(Fabric, WanPairCrossesSites) {
  net::Fabric fabric({/*host_tick_sec=*/1e-3, /*fault_seed=*/1});
  net::WanPairConfig topo;
  topo.hosts_per_site = 2;
  const auto hosts = net::build_wan_pair(fabric, topo);
  ASSERT_EQ(fabric.site_count(), 2u);
  Stream s;
  s.open(fabric, hosts[0], hosts[3], 4000, 4000);  // site 0 -> site 1
  ASSERT_TRUE(s.run(0.05, 400));
  EXPECT_EQ(s.got, s.payload);
  EXPECT_EQ(fabric.conservation_residual(), 0);

  // A site-domain partition darkens only links touching that site.
  fault::FaultPlan plan;
  fault::Episode cut;
  cut.kind = fault::FaultKind::kPartition;
  cut.start = 0.0;
  cut.end = 1e9;
  cut.domain = fault::FaultDomain::kSite;
  cut.domain_index = 1;
  plan.add(cut);
  fabric.set_fault_plan(plan, 7);
  const double t = fabric.now() + 0.001;
  EXPECT_FALSE(fabric.link_cut(0, 0, t));  // site-0 access link clean
  EXPECT_TRUE(fabric.link_cut(2, 0, t));   // site-1 access link dark
  EXPECT_TRUE(fabric.link_cut(4, 0, t));   // the WAN link touches site 1
}

// ---- Determinism: same build + workload => bit-identical counters ------

obs::Snapshot fleet_snapshot() {
  net::Fabric fabric({/*host_tick_sec=*/1e-3, /*fault_seed=*/42});
  net::FatTreeConfig topo;
  topo.racks = 2;
  topo.hosts_per_rack = 2;
  topo.spines = 2;
  const auto hosts = net::build_fat_tree(fabric, topo);
  fabric.set_fault_plan(
      net::random_fleet_plan(9, 0.5, net::shape_of(fabric), 4), 43);
  Stream s;
  s.open(fabric, hosts[0], hosts[3], 4000, 5000);
  (void)s.run(0.01, 200);
  obs::Registry reg;
  obs::publish_fabric(reg, fabric);
  return reg.snapshot();
}

TEST(Fabric, RunsAreBitIdentical) {
  const std::string a = fleet_snapshot().to_json().dump(2);
  const std::string b = fleet_snapshot().to_json().dump(2);
  EXPECT_EQ(a, b);
}

// ---- Fleet plans shrink with ddmin -------------------------------------

TEST(Fabric, FleetScheduleShrinksToCulpritEpisode) {
  // A fleet schedule whose only *fatal* episode is the hub-switch
  // partition; the other episodes are noise. The failure predicate
  // rebuilds the fabric from the candidate schedule — exactly what
  // chaos_soak --replay does — and asks whether host 0's access link is
  // dark mid-run. ddmin must isolate the single culprit.
  const auto build_plan = [](const check::Schedule& s) {
    for (const auto& spec : s.injectors)
      if (spec.host == "fabric") return spec.plan;
    return fault::FaultPlan{};
  };
  const auto fails = [&](const check::Schedule& s) {
    net::Fabric fabric({1e-3, 1});
    net::StarConfig star;
    star.hosts = 4;
    (void)net::build_star(fabric, star);
    fabric.set_fault_plan(build_plan(s), 7);
    return fabric.link_cut(/*link=*/0, /*direction=*/0, /*t=*/0.25);
  };

  check::Schedule schedule;
  schedule.scenario = "fleet";
  schedule.seed = 5;
  fault::FaultPlan plan = net::random_fleet_plan(
      5, 1.0, {/*links=*/4, /*switches=*/1, /*racks=*/1, /*sites=*/1,
               /*hosts=*/4});
  fault::Episode culprit;
  culprit.kind = fault::FaultKind::kPartition;
  culprit.start = 0.2;
  culprit.end = 0.3;
  culprit.domain = fault::FaultDomain::kSwitch;
  culprit.domain_index = 0;
  plan.add(culprit);
  schedule.injectors.push_back({"fabric", 7, plan});
  ASSERT_TRUE(fails(schedule));

  const check::ShrinkResult minimal = check::shrink(schedule, fails);
  EXPECT_TRUE(minimal.converged);
  ASSERT_EQ(minimal.schedule.episode_count(), 1u);
  const fault::Episode kept = build_plan(minimal.schedule).episodes().at(0);
  EXPECT_EQ(kept.kind, fault::FaultKind::kPartition);
  EXPECT_EQ(kept.domain, fault::FaultDomain::kSwitch);
}

}  // namespace
}  // namespace ldlp
