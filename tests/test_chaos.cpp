// Chaos tests: every protocol scenario in the library runs under a
// seeded FaultPlan — loss bursts, corruption, duplication, reordering,
// delay jitter, device stalls, mbuf-pool exhaustion — and must satisfy
// four invariants: no crash, zero mbuf leaks (pool accounting), bounded
// queue occupancy, and eventual convergence once the faults clear. Each
// scenario is parameterized over seeds; a failure's SCOPED_TRACE prints
// the seed and the full episode schedule, which reproduce the run
// exactly (see EXPERIMENTS.md, "Fault injection & chaos runs").
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "dns/resolver.hpp"
#include "check/invariants.hpp"
#include "check/oracle.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "obs/bridge.hpp"
#include "obs/metrics.hpp"
#include "rpc/nfs_lite.hpp"
#include "signal/node.hpp"
#include "stack/host.hpp"

namespace ldlp {
namespace {

using wire::ip_from_parts;

constexpr double kHorizon = 1.0;  ///< Fault window per injector, seconds.

std::string trace_for(std::uint64_t seed, const fault::FaultInjector& inj) {
  return "seed=" + std::to_string(seed) + " plan:\n" + inj.plan().describe();
}

/// Two hosts joined by a wire, each with its own injector running an
/// independent random plan derived from the scenario seed.
struct ChaosPair {
  std::unique_ptr<stack::Host> a;
  std::unique_ptr<stack::Host> b;
  std::unique_ptr<fault::FaultInjector> fault_a;
  std::unique_ptr<fault::FaultInjector> fault_b;

  explicit ChaosPair(std::uint64_t seed,
                     core::SchedMode mode = core::SchedMode::kConventional) {
    stack::HostConfig ca;
    ca.name = "a";
    ca.mac = {2, 0, 0, 0, 0, 1};
    ca.ip = ip_from_parts(10, 0, 0, 1);
    ca.mode = mode;
    stack::HostConfig cb = ca;
    cb.name = "b";
    cb.mac = {2, 0, 0, 0, 0, 2};
    cb.ip = ip_from_parts(10, 0, 0, 2);
    a = std::make_unique<stack::Host>(ca);
    b = std::make_unique<stack::Host>(cb);
    stack::NetDevice::connect(a->device(), b->device());
    fault_a = std::make_unique<fault::FaultInjector>(
        fault::FaultPlan::random(seed, kHorizon), seed * 2 + 1);
    fault_b = std::make_unique<fault::FaultInjector>(
        fault::FaultPlan::random(seed ^ 0xbeefULL, kHorizon), seed * 2 + 2);
    a->attach_fault(fault_a.get());
    b->attach_fault(fault_b.get());
  }

  void tick(double dt, int rounds = 2) {
    a->advance(dt);
    b->advance(dt);
    for (int i = 0; i < rounds; ++i) {
      a->pump();
      b->pump();
    }
  }

  /// End-of-scenario checks common to every stack scenario: detach the
  /// injectors (returning any held pool buffers), then assert the leak,
  /// queue-bound and backlog invariants on both hosts.
  void check_invariants() {
    // The scenario may have converged mid-plan; run out the clock so
    // delayed frames release and pool pressure lets go.
    for (int i = 0;
         i < 50 && !(fault_a->faults_cleared() && fault_b->faults_cleared());
         ++i)
      tick(0.1);
    EXPECT_TRUE(fault_a->faults_cleared());
    EXPECT_TRUE(fault_b->faults_cleared());
    a->attach_fault(nullptr);
    b->attach_fault(nullptr);
    for (stack::Host* h : {a.get(), b.get()}) {
      h->pump();
      EXPECT_EQ(h->graph().backlog(), 0u) << h->name();
      // Conservation at admission: every message handed to the graph was
      // either shed (at entry or by depth overflow) or enqueued into the
      // entry layer — nothing vanishes under faults.
      const core::GraphStats& gs = h->graph().graph_stats();
      const core::LayerStats& entry = h->graph().layer(0).stats();
      EXPECT_EQ(gs.injected, gs.shed_entry + gs.shed_depth + entry.enqueued)
          << h->name();
      for (core::LayerId id = 0; id < h->graph().layer_count(); ++id) {
        const core::Layer& layer = h->graph().layer(id);
        const core::LayerStats& s = layer.stats();
        EXPECT_LE(s.max_queue, layer.queue_capacity())
            << h->name() << "/" << layer.name();
        // Per-layer conservation: everything enqueued was processed,
        // dropped at the queue bound, or is still sitting in the queue.
        EXPECT_EQ(s.enqueued, s.processed + s.drops + layer.queue_len())
            << h->name() << "/" << layer.name();
      }
      // The published metrics must agree with the raw counters — the obs
      // bridge is how post-mortems read these numbers.
      obs::Registry reg;
      obs::publish_host(reg, *h);
      const obs::Snapshot snap = reg.snapshot();
      EXPECT_DOUBLE_EQ(snap.value(h->name() + ".graph.injected"),
                       static_cast<double>(gs.injected))
          << h->name();
      EXPECT_DOUBLE_EQ(snap.value(h->name() + ".graph.shed_entry"),
                       static_cast<double>(gs.shed_entry))
          << h->name();
    }
  }
};

class ChaosSeeds : public ::testing::TestWithParam<std::uint64_t> {};

// ---- TCP under chaos -------------------------------------------------------

TEST_P(ChaosSeeds, TcpTransferConvergesAfterFaults) {
  const std::uint64_t seed = GetParam();
  ChaosPair net(seed);
  SCOPED_TRACE(trace_for(seed, *net.fault_a));
  SCOPED_TRACE(trace_for(seed ^ 0xbeefULL, *net.fault_b));

  // Conformance checking rides along: structural invariants after every
  // scheduler pass, and a delivery oracle on the a->b stream.
  check::HostAuditor aud_a(*net.a);
  check::HostAuditor aud_b(*net.b);
  aud_a.install();
  aud_b.install();
  check::DeliveryOracle oracle;
  const auto flow = oracle.open_stream("a->b");
  net.b->sockets().set_tap(&oracle);

  stack::PcbId accepted = stack::kNoPcb;
  net.b->tcp().set_accept_hook([&](stack::PcbId id) {
    if (accepted == stack::kNoPcb)
      oracle.bind_stream_rx(flow, net.b->tcp().socket_of(id));
    accepted = id;
  });
  (void)net.b->tcp().listen(80);
  const stack::PcbId conn =
      net.a->tcp().connect(ip_from_parts(10, 0, 0, 2), 80);
  net.a->tcp().set_send_tap(
      [&](stack::PcbId id, std::span<const std::uint8_t> bytes) {
        if (id == conn) oracle.stream_sent(flow, bytes);
      });

  // Connect straight into the fault window; SYN retransmission must carry
  // the handshake through once the faults clear.
  for (int i = 0; i < 1200 &&
                  net.a->tcp().state(conn) != stack::TcpState::kEstablished;
       ++i)
    net.tick(0.05);
  ASSERT_EQ(net.a->tcp().state(conn), stack::TcpState::kEstablished);

  std::vector<std::uint8_t> payload(4000);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i * 31 + seed);
  ASSERT_TRUE(net.a->tcp().send(conn, payload));

  // The server may still sit in SYN_RECEIVED (the handshake ACK can be a
  // casualty); the data segments carry it to ESTABLISHED, firing the
  // accept hook, after which the stream must arrive intact.
  std::vector<std::uint8_t> got;
  for (int i = 0; i < 1200 && got.size() < payload.size(); ++i) {
    net.tick(0.05);
    if (accepted == stack::kNoPcb) continue;
    std::vector<std::uint8_t> chunk(1500);
    const std::size_t n =
        net.b->sockets().read(net.b->tcp().socket_of(accepted), chunk);
    got.insert(got.end(), chunk.begin(),
               chunk.begin() + static_cast<std::ptrdiff_t>(n));
  }
  ASSERT_NE(accepted, stack::kNoPcb);
  EXPECT_EQ(got, payload);  // delivered in order, uncorrupted, exactly once

  net.a->tcp().close(conn);
  net.b->tcp().close(accepted);
  for (int i = 0; i < 8; ++i) net.tick(1.0);
  net.check_invariants();
  EXPECT_EQ(net.a->pool().stats().mbufs_outstanding(), 0u);
  EXPECT_EQ(net.b->pool().stats().mbufs_outstanding(), 0u);

  EXPECT_TRUE(oracle.finalize())
      << (oracle.violations().empty() ? "" : oracle.violations()[0]);
  EXPECT_TRUE(aud_a.ok()) << (aud_a.ok() ? "" : aud_a.violations()[0]);
  EXPECT_TRUE(aud_b.ok()) << (aud_b.ok() ? "" : aud_b.violations()[0]);
  EXPECT_GT(aud_a.stats().passes, 0u);
  net.b->sockets().set_tap(nullptr);
}

// ---- DNS under chaos -------------------------------------------------------

TEST_P(ChaosSeeds, DnsResolutionConvergesAfterFaults) {
  const std::uint64_t seed = GetParam();
  ChaosPair net(seed ^ 0xd15ULL);
  SCOPED_TRACE(trace_for(seed, *net.fault_a));
  dns::DnsServer server(*net.b);
  constexpr int kNames = 5;
  for (int i = 0; i < kNames; ++i)
    server.add_a("h" + std::to_string(i) + ".chaos",
                 ip_from_parts(10, 7, 0, static_cast<std::uint8_t>(i)));
  dns::DnsResolver::Config cfg;
  cfg.server_ip = ip_from_parts(10, 0, 0, 2);
  dns::DnsResolver resolver(*net.a, cfg);

  // A lookup may exhaust its retries inside the fault window (that is the
  // clean-failure path); convergence means a later retry succeeds.
  std::vector<std::optional<std::uint32_t>> results(kNames);
  std::vector<bool> outstanding(kNames, false);
  const auto kick = [&](int i) {
    outstanding[i] = true;
    resolver.resolve("h" + std::to_string(i) + ".chaos",
                     [&results, &outstanding, i](const std::string&,
                                                 std::optional<std::uint32_t> addr) {
                       outstanding[i] = false;
                       if (addr.has_value()) results[i] = addr;
                     });
  };
  for (int i = 0; i < kNames; ++i) kick(i);

  for (int iter = 0; iter < 400; ++iter) {
    net.tick(0.25);
    server.poll();
    net.b->pump();
    net.a->pump();
    resolver.poll();
    bool done = true;
    for (int i = 0; i < kNames; ++i) {
      if (results[i].has_value()) continue;
      done = false;
      if (!outstanding[i]) kick(i);  // failed cleanly — try again
    }
    if (done) break;
  }
  for (int i = 0; i < kNames; ++i) {
    ASSERT_TRUE(results[i].has_value()) << "name " << i << " never resolved";
    EXPECT_EQ(*results[i], ip_from_parts(10, 7, 0, static_cast<std::uint8_t>(i)));
  }
  net.check_invariants();
  EXPECT_EQ(net.a->pool().stats().mbufs_outstanding(), 0u);
  EXPECT_EQ(net.b->pool().stats().mbufs_outstanding(), 0u);
}

// ---- NFS under chaos -------------------------------------------------------

TEST_P(ChaosSeeds, NfsOpsConvergeAfterFaults) {
  const std::uint64_t seed = GetParam();
  ChaosPair net(seed ^ 0x9f5ULL);
  SCOPED_TRACE(trace_for(seed, *net.fault_a));
  rpc::NfsServer server(*net.b);
  rpc::NfsClient::Config cfg;
  cfg.server_ip = ip_from_parts(10, 0, 0, 2);
  rpc::NfsClient client(*net.a, cfg, [&net, &server] {
    // Keep both clocks moving so each side's fault window expires.
    net.b->advance(0.05);
    net.a->pump();
    net.b->pump();
    server.poll();
    net.b->pump();
    net.a->pump();
  });

  // Each op retries internally (capped backoff) and may still fail inside
  // the fault window; the outer loop is the application-level retry that
  // must succeed once the faults clear.
  const auto persist = [&](auto op) {
    for (int attempt = 0; attempt < 10; ++attempt) {
      if (op()) return true;
    }
    return false;
  };

  std::optional<rpc::FileHandle> fh;
  ASSERT_TRUE(persist([&] {
    fh = client.create(rpc::kRootHandle, "chaos.dat");
    return fh.has_value();
  }));
  std::vector<std::uint8_t> content(600);
  for (std::size_t i = 0; i < content.size(); ++i)
    content[i] = static_cast<std::uint8_t>(i * 13 + seed);
  ASSERT_TRUE(persist([&] { return client.write(*fh, 0, content); }));
  std::optional<std::vector<std::uint8_t>> back;
  ASSERT_TRUE(persist([&] {
    back = client.read(*fh, 0, static_cast<std::uint32_t>(content.size()));
    return back.has_value();
  }));
  EXPECT_EQ(*back, content);  // duplicate-request cache kept writes single

  // Drain past both horizons so the convergence invariants apply.
  for (int i = 0; i < 30; ++i) net.tick(0.1);
  net.check_invariants();
  EXPECT_EQ(net.a->pool().stats().mbufs_outstanding(), 0u);
  EXPECT_EQ(net.b->pool().stats().mbufs_outstanding(), 0u);
}

// ---- Signalling under chaos ------------------------------------------------

TEST_P(ChaosSeeds, SignallingCallsConvergeAfterFaults) {
  const std::uint64_t seed = GetParam();
  // SignallingNodes carry their own byte pipe (no NetDevice), so the plan
  // drives the pipe's loss rate directly: SSCOP's POLL/STAT machinery with
  // capped backoff must complete every call once the loss window closes.
  fault::FaultPlan plan;
  plan.add({fault::FaultKind::kLossBurst, 0.0, 0.6,
            0.3 + 0.05 * static_cast<double>(seed % 8), 0, 0.0});
  SCOPED_TRACE("seed=" + std::to_string(seed) + " plan:\n" + plan.describe());

  signal::SignallingNode user("user");
  signal::SignallingNode network("net");
  signal::SignallingNode::connect(user, network);

  const std::uint8_t called[] = {1, 2, 3, 4};
  const std::uint8_t calling[] = {9, 9, 9};
  const signal::TrafficDescriptor td{100, 50};
  std::vector<std::uint32_t> refs;
  for (int i = 0; i < 10; ++i)
    refs.push_back(user.calls().originate(called, calling, td));

  bool all_active = false;
  for (int round = 0; round < 1000 && !all_active; ++round) {
    const fault::Episode* loss =
        plan.active(fault::FaultKind::kLossBurst, user.now());
    user.set_loss_rate(loss != nullptr ? loss->rate : 0.0, seed);
    network.set_loss_rate(loss != nullptr ? loss->rate : 0.0, seed + 1);
    user.advance(0.05);
    network.advance(0.05);
    network.pump();
    user.pump();
    all_active = true;
    for (const auto ref : refs)
      all_active &= user.calls().state(ref) == signal::CallState::kActive;
  }
  for (const auto ref : refs)
    EXPECT_EQ(user.calls().state(ref), signal::CallState::kActive) << ref;
  EXPECT_EQ(user.link().unacked(), 0u);
  EXPECT_EQ(network.stats().codec_errors, 0u);
}

// ---- Pool exhaustion -------------------------------------------------------

TEST_P(ChaosSeeds, PoolExhaustionRecoversLeakFree) {
  const std::uint64_t seed = GetParam();
  ChaosPair net(seed);  // random plans on both sides...
  // ...plus a guaranteed squeeze on the sender: only 4 mbufs left free.
  fault::FaultPlan squeeze;
  squeeze.add({fault::FaultKind::kPoolExhaustion, 0.0, 0.4, 1.0, 4, 0.0});
  fault::FaultInjector pinch(squeeze, seed);
  net.a->attach_fault(&pinch);
  SCOPED_TRACE(trace_for(seed, pinch));

  const auto sock =
      net.b->sockets().create(stack::SocketKind::kDatagram, 64 * 1024);
  ASSERT_TRUE(net.b->udp().bind(7777, sock));
  const std::vector<std::uint8_t> payload(64, 0xab);

  // Send through the squeeze: allocation failures are silent drops, never
  // crashes or asserts.
  for (int i = 0; i < 40; ++i) {
    net.a->udp().send(1, ip_from_parts(10, 0, 0, 2), 7777, payload);
    net.tick(0.02);
  }
  EXPECT_GT(pinch.stats().pool_squeezes, 0u);

  // Past the episode the held mbufs return and traffic flows again.
  for (int i = 0; i < 30; ++i) net.tick(0.1);
  ASSERT_TRUE(pinch.faults_cleared());
  const auto rx_before = net.b->udp().udp_stats().rx;
  for (int i = 0; i < 5; ++i) {
    net.a->udp().send(1, ip_from_parts(10, 0, 0, 2), 7777, payload);
    net.tick(0.05);
  }
  EXPECT_EQ(net.b->udp().udp_stats().rx, rx_before + 5);

  net.a->attach_fault(nullptr);
  net.b->attach_fault(nullptr);
  net.a->pump();
  net.b->pump();
  // Socket rx buffers drained, nothing in flight: the pools must balance.
  std::vector<std::uint8_t> sink(4096);
  while (net.b->sockets().read(sock, sink) > 0) {
  }
  EXPECT_EQ(net.a->pool().stats().mbufs_outstanding(), 0u);
  EXPECT_EQ(net.b->pool().stats().mbufs_outstanding(), 0u);
}

// ---- NetDevice drop accounting ---------------------------------------------

TEST_P(ChaosSeeds, DeviceDropAccountingConsistent) {
  // Legacy loss, legacy reorder, a tiny RX ring (overflow) and a random
  // fault plan all active at once: every frame handed to the device must
  // be accounted for exactly once across rx_frames / rx_drops / the ring /
  // the injector's delay queue.
  const std::uint64_t seed = GetParam();
  buf::MbufPool pool(512, 256);
  stack::NetDevice dev("dut", {2, 0, 0, 0, 0, 9}, pool, /*rx_ring_slots=*/8);
  double now = 0.0;
  fault::FaultInjector inj(fault::FaultPlan::random(seed, 0.5), seed);
  inj.set_clock(&now);
  dev.set_fault(&inj);
  dev.set_loss(0.2, seed);
  dev.set_reorder(0.5, seed + 1);
  SCOPED_TRACE(trace_for(seed, inj));

  Rng rng(seed ^ 0xacc7ULL);
  std::uint64_t injected = 0;
  std::uint64_t pulled = 0;
  for (int step = 0; step < 300; ++step) {
    now += 0.004;
    dev.poll();  // flush delay-released frames into the ring
    const std::size_t burst = rng.bounded(3) + 1;
    for (std::size_t k = 0; k < burst; ++k) {
      std::vector<std::uint8_t> frame(64);
      for (auto& byte : frame) byte = static_cast<std::uint8_t>(rng());
      dev.inject(std::move(frame));
      ++injected;
    }
    // Pull intermittently so the tiny ring oscillates between overflow
    // and empty (receive() returns nothing during stall episodes).
    if (rng.chance(0.6)) {
      while (auto pkt = dev.receive()) ++pulled;
    }
  }
  now = 2.0;  // past the horizon: all delayed frames become releasable
  dev.poll();
  while (auto pkt = dev.receive()) ++pulled;

  EXPECT_EQ(inj.delayed_pending(), 0u);
  EXPECT_EQ(dev.rx_pending(), 0u);
  EXPECT_EQ(dev.stats().rx_frames, pulled);
  EXPECT_EQ(injected + inj.stats().duplicated,
            dev.stats().rx_frames + dev.stats().rx_drops);
  EXPECT_GT(dev.stats().rx_drops, 0u);  // loss + overflow really happened
  EXPECT_EQ(pool.stats().mbufs_outstanding(), 0u);

  // tx_drops: no peer connected, and runt frames, are both counted.
  const auto tx_drops_before = dev.stats().tx_drops;
  EXPECT_FALSE(
      dev.transmit(buf::Packet::from_bytes(pool, std::vector<std::uint8_t>(64, 1))));
  EXPECT_FALSE(
      dev.transmit(buf::Packet::from_bytes(pool, std::vector<std::uint8_t>(6, 1))));
  EXPECT_EQ(dev.stats().tx_drops, tx_drops_before + 2);
  EXPECT_EQ(pool.stats().mbufs_outstanding(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosSeeds,
                         ::testing::Range<std::uint64_t>(1, 11));

// ---- Scheduler overload protection -----------------------------------------

class CountingLayer final : public core::Layer {
 public:
  explicit CountingLayer(std::string name, std::size_t capacity = 500)
      : core::Layer(std::move(name), capacity) {}

 protected:
  void process(core::Message msg) override { emit(std::move(msg)); }
};

TEST(ChaosOverload, LdlpShedsAtEntryAndDrainsAdmittedWork) {
  core::StackGraph graph;
  graph.set_mode(core::SchedMode::kLdlp);
  CountingLayer bottom("bottom");
  CountingLayer middle("middle", /*capacity=*/4);  // deliberately tight
  CountingLayer top("top");
  const auto b = graph.add_layer(bottom);
  const auto m = graph.add_layer(middle);
  const auto t = graph.add_layer(top);
  graph.connect(b, m);
  graph.connect(m, t);
  graph.set_backlog_limit(32);

  constexpr std::size_t kOffered = 200;
  for (std::size_t i = 0; i < kOffered; ++i) graph.inject(b, core::Message{});

  // Admission control: the graph refused everything beyond its backlog
  // limit at the entry layer, before any queue could grow without bound.
  EXPECT_EQ(graph.backlog(), 32u);
  EXPECT_EQ(graph.graph_stats().shed_entry, kOffered - 32u);

  graph.run();

  // Run-to-completion: every admitted message either finished or was
  // dropped at an explicitly bounded queue — none is stranded.
  EXPECT_EQ(graph.backlog(), 0u);
  EXPECT_EQ(bottom.stats().processed, 32u);
  EXPECT_EQ(middle.stats().processed + middle.stats().drops, 32u);
  EXPECT_LE(middle.stats().max_queue, middle.queue_capacity());
  EXPECT_EQ(top.stats().processed, middle.stats().processed);
  // Full conservation across the graph.
  EXPECT_EQ(kOffered, graph.graph_stats().shed_entry +
                          middle.stats().drops + top.stats().processed);
}

TEST(ChaosOverload, ConventionalEmitCycleIsDepthBounded) {
  // Two layers that bounce every message between each other would recurse
  // forever under procedure-call layering; the depth guard sheds instead
  // of overflowing the call stack.
  core::StackGraph graph;
  CountingLayer ping("ping");
  CountingLayer pong("pong");
  const auto p = graph.add_layer(ping);
  const auto q = graph.add_layer(pong);
  graph.connect(p, q);
  graph.connect(q, p);
  graph.inject(p, core::Message{});
  EXPECT_GE(graph.graph_stats().shed_depth, 1u);
  EXPECT_EQ(graph.backlog(), 0u);
}

}  // namespace
}  // namespace ldlp
