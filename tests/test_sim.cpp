// Unit tests for the machine model: cache geometry, hit/miss behaviour,
// associativity, memory-system penalties, address-space placement, CPU
// cycle accounting. Includes parameterized sweeps over cache geometries.
#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "sim/address_space.hpp"
#include "sim/cpu_model.hpp"

namespace ldlp::sim {
namespace {

TEST(CacheConfig, ValidityRules) {
  EXPECT_TRUE((CacheConfig{8192, 32, 1}.valid()));
  EXPECT_TRUE((CacheConfig{8192, 32, 4}.valid()));
  EXPECT_FALSE((CacheConfig{8192, 33, 1}.valid()));  // non power of two
  EXPECT_FALSE((CacheConfig{0, 32, 1}.valid()));
  EXPECT_FALSE((CacheConfig{16, 32, 1}.valid()));  // line larger than cache
}

TEST(Cache, ColdMissThenHit) {
  Cache cache(CacheConfig{8192, 32, 1});
  EXPECT_FALSE(cache.access(0x1000));
  EXPECT_TRUE(cache.access(0x1000));
  EXPECT_TRUE(cache.access(0x101f));  // same 32-byte line
  EXPECT_FALSE(cache.access(0x1020)); // next line
  EXPECT_EQ(cache.stats().misses, 2u);
  EXPECT_EQ(cache.stats().hits, 2u);
}

TEST(Cache, DirectMappedConflict) {
  Cache cache(CacheConfig{8192, 32, 1});
  // Two addresses 8 KB apart map to the same set and evict each other.
  EXPECT_FALSE(cache.access(0x0));
  EXPECT_FALSE(cache.access(0x2000));
  EXPECT_FALSE(cache.access(0x0));
  EXPECT_FALSE(cache.access(0x2000));
  EXPECT_EQ(cache.stats().hits, 0u);
}

TEST(Cache, TwoWayResolvesPairConflict) {
  Cache cache(CacheConfig{8192, 32, 2});
  EXPECT_FALSE(cache.access(0x0));
  EXPECT_FALSE(cache.access(0x2000));
  EXPECT_TRUE(cache.access(0x0));
  EXPECT_TRUE(cache.access(0x2000));
}

TEST(Cache, LruEvictsOldest) {
  // 2-way, and three lines mapping to the same set: A, B, C.
  Cache cache(CacheConfig{8192, 32, 2});
  const std::uint64_t a = 0x0;
  const std::uint64_t b = 0x1000;  // 4 KB apart = same set in 2-way 8 KB
  const std::uint64_t c = 0x2000;
  EXPECT_FALSE(cache.access(a));
  EXPECT_FALSE(cache.access(b));
  EXPECT_TRUE(cache.access(a));   // A more recent than B
  EXPECT_FALSE(cache.access(c));  // evicts B (LRU)
  EXPECT_TRUE(cache.access(a));
  EXPECT_FALSE(cache.access(b));
}

TEST(Cache, AccessRangeCountsLines) {
  Cache cache(CacheConfig{8192, 32, 1});
  EXPECT_EQ(cache.access_range(0x100, 64), 2u);   // exactly two lines
  EXPECT_EQ(cache.access_range(0x100, 64), 0u);   // now resident
  EXPECT_EQ(cache.access_range(0x13f, 2), 1u);    // straddles into a new line
  EXPECT_EQ(cache.access_range(0x200, 0), 0u);    // empty range
  EXPECT_EQ(cache.access_range(0x205, 1), 1u);    // sub-line range
}

TEST(Cache, FlushColdsEverything) {
  Cache cache(CacheConfig{8192, 32, 1});
  (void)cache.access_range(0, 4096);
  EXPECT_EQ(cache.resident_lines(), 128u);
  cache.flush();
  EXPECT_EQ(cache.resident_lines(), 0u);
  EXPECT_FALSE(cache.access(0));
}

TEST(Cache, ContainsDoesNotTouchStats) {
  Cache cache(CacheConfig{8192, 32, 1});
  (void)cache.access(0x40);
  const auto misses = cache.stats().misses;
  EXPECT_TRUE(cache.contains(0x40));
  EXPECT_FALSE(cache.contains(0x80));
  EXPECT_EQ(cache.stats().misses, misses);
}

TEST(Cache, WorkingSetLargerThanCacheThrashes) {
  // The paper's core observation: a 30 KB working set through an 8 KB
  // cache misses on (nearly) every line, every iteration.
  Cache cache(CacheConfig{8192, 32, 1});
  for (int iteration = 0; iteration < 3; ++iteration) {
    const auto misses = cache.stats().misses;
    (void)cache.access_range(0, 30 * 1024);
    EXPECT_EQ(cache.stats().misses - misses, 30u * 1024 / 32);
  }
}

TEST(Cache, WorkingSetSmallerThanCacheStaysResident) {
  Cache cache(CacheConfig{8192, 32, 1});
  (void)cache.access_range(0, 6 * 1024);
  const auto misses = cache.stats().misses;
  for (int i = 0; i < 5; ++i) (void)cache.access_range(0, 6 * 1024);
  EXPECT_EQ(cache.stats().misses, misses);
}

/// Parameterized geometry sweep: total cold misses over a region must
/// equal region/line for every valid geometry.
class CacheGeometry : public ::testing::TestWithParam<
                          std::tuple<std::uint32_t, std::uint32_t, std::uint32_t>> {};

TEST_P(CacheGeometry, ColdMissesEqualLineCount) {
  const auto [size, line, ways] = GetParam();
  Cache cache(CacheConfig{size, line, ways});
  const std::uint64_t region = size;  // exactly fills the cache
  (void)cache.access_range(0, region);
  EXPECT_EQ(cache.stats().misses, region / line);
  // Re-walk: everything resident regardless of associativity.
  (void)cache.access_range(0, region);
  EXPECT_EQ(cache.stats().misses, region / line);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Combine(::testing::Values(4096u, 8192u, 65536u),
                       ::testing::Values(16u, 32u, 64u),
                       ::testing::Values(1u, 2u, 4u)));

TEST(MemorySystem, PenaltyPerMiss) {
  MemoryConfig cfg;
  cfg.miss_penalty_cycles = 20;
  MemorySystem mem(cfg);
  EXPECT_EQ(mem.access(Access::kIFetch, 0, 64), 40u);  // two lines
  EXPECT_EQ(mem.access(Access::kIFetch, 0, 64), 0u);
  EXPECT_EQ(mem.total_stall_cycles(), 40u);
}

TEST(MemorySystem, SplitCachesAreIndependent) {
  MemorySystem mem(MemoryConfig{});
  (void)mem.access(Access::kIFetch, 0x1000, 32);
  // The same address through the D-cache still misses: split caches.
  EXPECT_GT(mem.access(Access::kRead, 0x1000, 32), 0u);
}

TEST(MemorySystem, UnifiedCacheShares) {
  MemoryConfig cfg;
  cfg.unified = true;
  MemorySystem mem(cfg);
  (void)mem.access(Access::kIFetch, 0x1000, 32);
  EXPECT_EQ(mem.access(Access::kRead, 0x1000, 32), 0u);
}

TEST(MemorySystem, WritesAllocate) {
  MemorySystem mem(MemoryConfig{});
  EXPECT_GT(mem.access(Access::kWrite, 0x500, 32), 0u);
  EXPECT_EQ(mem.access(Access::kRead, 0x500, 32), 0u);
}

TEST(MemorySystem, L2AbsorbsPrimaryMisses) {
  MemoryConfig cfg;
  cfg.l2 = CacheConfig{512 * 1024, 32, 1};
  cfg.l2_hit_cycles = 6;
  cfg.miss_penalty_cycles = 20;
  MemorySystem mem(cfg);
  // Cold: L1 and L2 both miss -> full memory penalty.
  EXPECT_EQ(mem.access(Access::kIFetch, 0, 32), 20u);
  // Evict from L1 (8 KB conflict) but not from the big L2.
  (void)mem.access(Access::kIFetch, 0x2000, 32);
  // L1 miss, L2 hit -> short stall.
  EXPECT_EQ(mem.access(Access::kIFetch, 0, 32), 6u);
}

TEST(MemorySystem, L2SharedBetweenInstructionAndData) {
  MemoryConfig cfg;
  cfg.l2 = CacheConfig{512 * 1024, 32, 1};
  MemorySystem mem(cfg);
  (void)mem.access(Access::kIFetch, 0x4000, 32);  // fills L2
  // Data access to the same line: misses D-cache, hits unified L2.
  EXPECT_EQ(mem.access(Access::kRead, 0x4000, 32), cfg.l2_hit_cycles);
}

TEST(MemorySystem, TlbChargesPageWalks) {
  MemoryConfig cfg;
  cfg.tlb_enabled = true;
  cfg.tlb_entries = 4;
  cfg.tlb_page_bytes = 8192;
  cfg.tlb_miss_cycles = 30;
  MemorySystem mem(cfg);
  // First touch of a page: TLB miss (30) + cache miss (20).
  EXPECT_EQ(mem.access(Access::kRead, 0, 8), 50u);
  // Same page, different line: TLB hit, cache miss only.
  EXPECT_EQ(mem.access(Access::kRead, 64, 8), 20u);
  // Walk five pages through a 4-entry TLB twice: capacity misses repeat.
  for (int round = 0; round < 2; ++round) {
    std::uint64_t tlb_misses0 = mem.tlb_misses();
    for (std::uint64_t page = 1; page <= 5; ++page)
      (void)mem.access(Access::kRead, page * 8192, 8);
    EXPECT_GE(mem.tlb_misses() - tlb_misses0, 4u) << "round " << round;
  }
}

TEST(MemorySystem, TlbSpanningAccessTouchesBothPages) {
  MemoryConfig cfg;
  cfg.tlb_enabled = true;
  MemorySystem mem(cfg);
  const std::uint64_t stall = mem.access(Access::kRead, 8192 - 16, 32);
  // Two TLB misses + two cache-line misses.
  EXPECT_EQ(stall, 2u * 30 + 2u * 20);
}

TEST(CpuModel, CycleAccounting) {
  CpuConfig cfg;  // 100 MHz
  CpuModel cpu(cfg);
  cpu.execute(1000);
  EXPECT_EQ(cpu.busy_cycles(), 1000u);
  EXPECT_DOUBLE_EQ(cpu.busy_seconds(), 1000.0 / 100e6);
  cpu.ifetch(0, 32);  // one cold miss: +20 cycles
  EXPECT_EQ(cpu.busy_cycles(), 1020u);
  cpu.reset();
  EXPECT_EQ(cpu.busy_cycles(), 0u);
  cpu.ifetch(0, 32);  // cold again after reset
  EXPECT_EQ(cpu.busy_cycles(), 20u);
}

TEST(AddressSpace, NoOverlaps) {
  AddressSpace space(1 << 20, 32);
  Rng rng(55);
  for (int i = 0; i < 100; ++i)
    (void)space.allocate("r" + std::to_string(i), 1024, rng);
  const auto& regions = space.regions();
  for (std::size_t i = 0; i < regions.size(); ++i) {
    EXPECT_EQ(regions[i].base % 32, 0u);
    for (std::size_t j = i + 1; j < regions.size(); ++j)
      EXPECT_FALSE(regions[i].overlaps(regions[j]))
          << regions[i].name << " vs " << regions[j].name;
  }
}

TEST(AddressSpace, SequentialPacksFromZero) {
  AddressSpace space(1 << 16, 32);
  const Region a = space.allocate_sequential("a", 100);
  const Region b = space.allocate_sequential("b", 100);
  EXPECT_EQ(a.base, 0u);
  EXPECT_GE(b.base, a.end());
  EXPECT_EQ(b.base % 32, 0u);
}

TEST(AddressSpace, RandomPlacementVariesWithSeed) {
  AddressSpace s1(1 << 24, 32);
  AddressSpace s2(1 << 24, 32);
  Rng r1(1);
  Rng r2(2);
  const Region a = s1.allocate("x", 4096, r1);
  const Region b = s2.allocate("x", 4096, r2);
  EXPECT_NE(a.base, b.base);
}

}  // namespace
}  // namespace ldlp::sim
