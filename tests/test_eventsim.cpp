// Unit tests for the discrete-event engine and latency recorder.
#include <gtest/gtest.h>

#include <vector>

#include "eventsim/event_queue.hpp"
#include "eventsim/latency_recorder.hpp"

namespace ldlp::eventsim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(3.0, [&] { order.push_back(3); });
  queue.schedule_at(1.0, [&] { order.push_back(1); });
  queue.schedule_at(2.0, [&] { order.push_back(2); });
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
}

TEST(EventQueue, SimultaneousEventsKeepScheduleOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    queue.schedule_at(1.0, [&order, i] { order.push_back(i); });
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, RunUntilHorizonStops) {
  EventQueue queue;
  int fired = 0;
  queue.schedule_at(1.0, [&] { ++fired; });
  queue.schedule_at(2.0, [&] { ++fired; });
  queue.schedule_at(5.0, [&] { ++fired; });
  queue.run_until(2.0);  // inclusive
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(queue.pending(), 1u);
  EXPECT_DOUBLE_EQ(queue.now(), 2.0);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue queue;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 10) queue.schedule_in(0.5, step);
  };
  queue.schedule_at(0.0, step);
  queue.run();
  EXPECT_EQ(chain, 10);
  EXPECT_DOUBLE_EQ(queue.now(), 4.5);
}

TEST(EventQueue, AdvancesClockToHorizonWhenDrained) {
  EventQueue queue;
  queue.schedule_at(1.0, [] {});
  queue.run_until(10.0);
  EXPECT_DOUBLE_EQ(queue.now(), 10.0);
}

TEST(LatencyRecorder, BasicAccounting) {
  LatencyRecorder rec;
  rec.record_completion(0.0, 0.001);
  rec.record_completion(0.0, 0.003);
  rec.record_drop();
  EXPECT_EQ(rec.completed(), 2u);
  EXPECT_EQ(rec.drops(), 1u);
  EXPECT_DOUBLE_EQ(rec.mean_latency(), 0.002);
  EXPECT_DOUBLE_EQ(rec.max_latency(), 0.003);
  EXPECT_GT(rec.p99_latency(), rec.p50_latency() * 0.99);
}

TEST(LatencyRecorder, MergeCombines) {
  LatencyRecorder a;
  LatencyRecorder b;
  a.record_completion(0.0, 0.001);
  b.record_completion(0.0, 0.009);
  b.record_drop();
  a.merge(b);
  EXPECT_EQ(a.completed(), 2u);
  EXPECT_EQ(a.drops(), 1u);
  EXPECT_DOUBLE_EQ(a.mean_latency(), 0.005);
}

}  // namespace
}  // namespace ldlp::eventsim
