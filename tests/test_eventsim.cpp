// Unit tests for the discrete-event engine and latency recorder.
#include <gtest/gtest.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "eventsim/event_queue.hpp"
#include "eventsim/latency_recorder.hpp"

namespace ldlp::eventsim {
namespace {

TEST(EventQueue, FiresInTimeOrder) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule_at(3.0, [&] { order.push_back(3); });
  queue.schedule_at(1.0, [&] { order.push_back(1); });
  queue.schedule_at(2.0, [&] { order.push_back(2); });
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(queue.now(), 3.0);
}

TEST(EventQueue, SimultaneousEventsKeepScheduleOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    queue.schedule_at(1.0, [&order, i] { order.push_back(i); });
  queue.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

// Regression: the (time, seq) ordering must survive real heap churn.
// The multi-host fabric schedules hundreds of same-tick events (every
// host tick round, every frame delivery on equal-delay links) and its
// --jobs determinism depends on ties firing in exact insertion order —
// a plain binary heap without the seq tiebreak passes the 5-event test
// above but reorders ties once sift-down gets involved.
TEST(EventQueue, TieOrderSurvivesHeapChurn) {
  EventQueue queue;
  std::vector<std::pair<double, int>> fired;
  // 40 timestamps, each with 8 tied events, interleaved so the heap sees
  // inserts in neither sorted nor reverse order.
  int seq = 0;
  std::vector<std::pair<double, int>> expected;
  for (int round = 0; round < 8; ++round) {
    for (int slot = 0; slot < 40; ++slot) {
      const double t = static_cast<double>((slot * 7) % 40) + 1.0;
      const int id = seq++;
      queue.schedule_at(t, [&fired, t, id] { fired.push_back({t, id}); });
      expected.push_back({t, id});
    }
  }
  // Events scheduled from inside callbacks at an already-pending time
  // must fire after every previously scheduled tie at that time.
  queue.schedule_at(0.5, [&] {
    const int id = seq++;
    queue.schedule_at(20.0, [&fired, id] { fired.push_back({20.0, id}); });
    expected.push_back({20.0, id});
  });
  queue.run();
  // Stable sort by time = (time, insertion-seq) order.
  std::stable_sort(expected.begin(), expected.end(),
                   [](const auto& a, const auto& b) {
                     return a.first < b.first;
                   });
  EXPECT_EQ(fired, expected);
}

TEST(EventQueue, RunUntilHorizonStops) {
  EventQueue queue;
  int fired = 0;
  queue.schedule_at(1.0, [&] { ++fired; });
  queue.schedule_at(2.0, [&] { ++fired; });
  queue.schedule_at(5.0, [&] { ++fired; });
  queue.run_until(2.0);  // inclusive
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(queue.pending(), 1u);
  EXPECT_DOUBLE_EQ(queue.now(), 2.0);
}

TEST(EventQueue, EventsCanScheduleEvents) {
  EventQueue queue;
  int chain = 0;
  std::function<void()> step = [&] {
    if (++chain < 10) queue.schedule_in(0.5, step);
  };
  queue.schedule_at(0.0, step);
  queue.run();
  EXPECT_EQ(chain, 10);
  EXPECT_DOUBLE_EQ(queue.now(), 4.5);
}

TEST(EventQueue, AdvancesClockToHorizonWhenDrained) {
  EventQueue queue;
  queue.schedule_at(1.0, [] {});
  queue.run_until(10.0);
  EXPECT_DOUBLE_EQ(queue.now(), 10.0);
}

TEST(LatencyRecorder, BasicAccounting) {
  LatencyRecorder rec;
  rec.record_completion(0.0, 0.001);
  rec.record_completion(0.0, 0.003);
  rec.record_drop();
  EXPECT_EQ(rec.completed(), 2u);
  EXPECT_EQ(rec.drops(), 1u);
  EXPECT_DOUBLE_EQ(rec.mean_latency(), 0.002);
  EXPECT_DOUBLE_EQ(rec.max_latency(), 0.003);
  EXPECT_GT(rec.p99_latency(), rec.p50_latency() * 0.99);
}

TEST(LatencyRecorder, MergeCombines) {
  LatencyRecorder a;
  LatencyRecorder b;
  a.record_completion(0.0, 0.001);
  b.record_completion(0.0, 0.009);
  b.record_drop();
  a.merge(b);
  EXPECT_EQ(a.completed(), 2u);
  EXPECT_EQ(a.drops(), 1u);
  EXPECT_DOUBLE_EQ(a.mean_latency(), 0.005);
}

}  // namespace
}  // namespace ldlp::eventsim
