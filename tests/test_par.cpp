// ldlp::par — flow steering, multi-queue receive, the worker pool, and
// the sharded LDLP engine.
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "par/shard_engine.hpp"
#include "par/worker_pool.hpp"
#include "stack/host.hpp"
#include "stack/netdev.hpp"
#include "wire/ethernet.hpp"
#include "wire/ipv4.hpp"
#include "wire/udp.hpp"

namespace {

using namespace ldlp;

stack::FlowKey make_key(std::uint32_t src_ip, std::uint16_t src_port,
                        std::uint32_t dst_ip, std::uint16_t dst_port,
                        std::uint8_t proto = 17) {
  stack::FlowKey key;
  key.src_ip = src_ip;
  key.dst_ip = dst_ip;
  key.src_port = src_port;
  key.dst_port = dst_port;
  key.proto = proto;
  return key;
}

/// Eth + IPv4 + UDP frame carrying `payload_len` zero bytes.
std::vector<std::uint8_t> make_udp_frame(const wire::MacAddr& dst_mac,
                                         const stack::FlowKey& flow,
                                         std::size_t payload_len = 18,
                                         std::uint16_t frag_offset = 0) {
  std::vector<std::uint8_t> frame(wire::kEthHeaderLen +
                                  wire::kIpMinHeaderLen +
                                  wire::kUdpHeaderLen + payload_len);
  wire::EthHeader eth;
  eth.dst = dst_mac;
  eth.src = {2, 0, 0, 0, 0, 9};
  eth.ether_type = static_cast<std::uint16_t>(wire::EtherType::kIpv4);
  std::size_t at = wire::write_eth(eth, frame);
  wire::Ipv4Header ip;
  ip.total_len = static_cast<std::uint16_t>(frame.size() - wire::kEthHeaderLen);
  ip.protocol = flow.proto;
  ip.frag_offset = frag_offset;
  ip.src = flow.src_ip;
  ip.dst = flow.dst_ip;
  at += wire::write_ipv4(ip, std::span(frame).subspan(at));
  wire::UdpHeader udp;
  udp.src_port = flow.src_port;
  udp.dst_port = flow.dst_port;
  udp.length = static_cast<std::uint16_t>(wire::kUdpHeaderLen + payload_len);
  wire::write_udp(udp, std::span(frame).subspan(at));
  return frame;
}

TEST(FlowHash, StableAcrossInstancesAndCalls) {
  const stack::FlowHash a;
  const stack::FlowHash b;
  for (std::uint32_t f = 0; f < 64; ++f) {
    const auto key = make_key(0x0a000001u + f, 10000 + f, 0x0a00ffffu, 53);
    const std::uint32_t h = a(key);
    EXPECT_EQ(h, a(key)) << "same instance, same key";
    EXPECT_EQ(h, b(key)) << "fresh instance, default seed";
  }
}

TEST(FlowHash, SeedChangesTheMapping) {
  const stack::FlowHash a;
  const stack::FlowHash b(false, 0x1234'5678'9abc'def0ULL);
  int diff = 0;
  for (std::uint32_t f = 0; f < 64; ++f) {
    const auto key = make_key(0x0a000001u + f, 10000 + f, 0x0a00ffffu, 53);
    if (a(key) != b(key)) ++diff;
  }
  EXPECT_GT(diff, 32);
}

TEST(FlowHash, SymmetricModeCoSteersBothDirections) {
  const stack::FlowHash sym(true);
  const stack::FlowHash plain(false);
  int asym_diff = 0;
  for (std::uint32_t f = 0; f < 64; ++f) {
    const auto fwd = make_key(0x0a000001u + f, 10000 + f, 0x0a00ffffu, 53);
    const auto rev = make_key(fwd.dst_ip, fwd.dst_port, fwd.src_ip,
                              fwd.src_port);
    EXPECT_EQ(sym(fwd), sym(rev));
    if (plain(fwd) != plain(rev)) ++asym_diff;
  }
  // Plain Toeplitz is direction-sensitive; that is why symmetric mode
  // exists at all.
  EXPECT_GT(asym_diff, 0);
}

TEST(FlowHash, DistributionHasNoHotShard) {
  const stack::FlowHash hash;
  for (const std::size_t queues : {2u, 4u, 8u}) {
    std::vector<std::uint32_t> counts(queues, 0);
    const std::uint32_t flows = 512;
    for (std::uint32_t f = 0; f < flows; ++f) {
      const auto key =
          make_key(0x0a000000u + f * 7u + 1, 1024 + f, 0x0a00ffffu, 53);
      ++counts[hash(key) % queues];
    }
    const double fair = static_cast<double>(flows) / queues;
    for (std::size_t q = 0; q < queues; ++q) {
      EXPECT_LT(counts[q], 2.0 * fair)
          << queues << " queues, queue " << q;
      EXPECT_GT(counts[q], 0u);
    }
  }
}

TEST(FlowHash, ClassifyExtractsTheTuple) {
  const wire::MacAddr mac{2, 0, 0, 0, 0, 1};
  const auto flow = make_key(0x0a000001u, 4242, 0x0a000002u, 53);
  const auto frame = make_udp_frame(mac, flow);
  const auto key = stack::FlowHash::classify(frame);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(*key, flow);
}

TEST(FlowHash, ClassifyRejectsNonIp) {
  std::vector<std::uint8_t> arp(60, 0);
  wire::EthHeader eth;
  eth.dst = wire::kBroadcastMac;
  eth.src = {2, 0, 0, 0, 0, 9};
  eth.ether_type = static_cast<std::uint16_t>(wire::EtherType::kArp);
  wire::write_eth(eth, arp);
  EXPECT_FALSE(stack::FlowHash::classify(arp).has_value());
  EXPECT_FALSE(stack::FlowHash::classify({}).has_value());
}

TEST(FlowHash, ClassifyFragmentFallsBackToAddresses) {
  const wire::MacAddr mac{2, 0, 0, 0, 0, 1};
  const auto flow = make_key(0x0a000001u, 4242, 0x0a000002u, 53);
  // A non-first fragment has no transport header; steering must use the
  // address pair only, and do so for every fragment of the datagram.
  const auto frag = make_udp_frame(mac, flow, 18, /*frag_offset=*/3);
  const auto key = stack::FlowHash::classify(frag);
  ASSERT_TRUE(key.has_value());
  EXPECT_EQ(key->src_ip, flow.src_ip);
  EXPECT_EQ(key->dst_ip, flow.dst_ip);
  EXPECT_EQ(key->src_port, 0);
  EXPECT_EQ(key->dst_port, 0);
}

TEST(NetDevice, SteersEachFlowToOneQueue) {
  buf::MbufPool pool(512, 128);
  stack::NetDevice dev("rx", {2, 0, 0, 0, 0, 1}, pool);
  dev.set_rx_queues(4);
  ASSERT_EQ(dev.rx_queue_count(), 4u);

  std::map<std::size_t, std::uint32_t> per_queue;
  for (std::uint32_t f = 0; f < 6; ++f) {
    const auto flow =
        make_key(0x0a000001u + f, 20000 + f, 0x0a00ffffu, 53);
    const auto frame = make_udp_frame(dev.mac(), flow);
    const std::size_t queue = dev.steer(frame);
    ASSERT_LT(queue, 4u);
    for (int copy = 0; copy < 3; ++copy) {
      EXPECT_EQ(dev.steer(frame), queue) << "steering must be stable";
      dev.inject(frame);
      per_queue[queue] += 1;
    }
  }
  std::size_t pending = 0;
  for (const auto& [queue, count] : per_queue) {
    EXPECT_EQ(dev.rx_pending(queue), count);
    pending += count;
  }
  EXPECT_EQ(dev.rx_pending(), pending);

  std::size_t drained = 0;
  while (true) {
    buf::Packet pkt = dev.receive();
    if (pkt.empty()) break;
    ++drained;
  }
  EXPECT_EQ(drained, 18u);
  EXPECT_EQ(dev.rx_pending(), 0u);
}

TEST(NetDevice, ReconfigureResteersBufferedFrames) {
  buf::MbufPool pool(512, 128);
  stack::NetDevice dev("rx", {2, 0, 0, 0, 0, 1}, pool);
  for (std::uint32_t f = 0; f < 8; ++f) {
    const auto flow = make_key(0x0a000001u + f, 30000 + f, 0x0a00ffffu, 53);
    dev.inject(make_udp_frame(dev.mac(), flow));
  }
  ASSERT_EQ(dev.rx_pending(), 8u);
  dev.set_rx_queues(4);
  EXPECT_EQ(dev.rx_pending(), 8u) << "no frame may be lost on reconfigure";
  dev.set_rx_queues(1);
  EXPECT_EQ(dev.rx_pending(), 8u);
  std::size_t drained = 0;
  while (!dev.receive().empty()) ++drained;
  EXPECT_EQ(drained, 8u);
}

TEST(WorkerPool, ResultsLandInJobIndexedSlots) {
  std::vector<std::uint64_t> serial(64, 0);
  std::vector<std::uint64_t> parallel(64, 0);
  par::WorkerPool one(1);
  one.run(serial.size(), [&](std::size_t job, par::WorkerContext&) {
    serial[job] = job * job + 1;
  });
  par::WorkerPool four(4);
  four.run(parallel.size(), [&](std::size_t job, par::WorkerContext&) {
    parallel[job] = job * job + 1;
  });
  EXPECT_EQ(serial, parallel);
}

TEST(WorkerPool, MergesWorkerRegistriesDeterministically) {
  auto run_with = [](std::size_t workers) {
    par::WorkerPool pool(workers);
    pool.run(32, [](std::size_t job, par::WorkerContext& ctx) {
      ctx.registry->counter("par.t.jobs").add(1);
      ctx.registry->histogram("par.t.cost_sec")
          .add(1e-6 * static_cast<double>(job + 1));
    });
    obs::Registry reg;
    pool.publish(reg);
    pool.merge_registries(reg);
    return reg.snapshot();
  };
  const obs::Snapshot serial = run_with(1);
  const obs::Snapshot threaded = run_with(4);
  EXPECT_EQ(serial.value("par.t.jobs"), 32.0);
  EXPECT_EQ(threaded.value("par.t.jobs"), 32.0);
  const auto* sh = serial.find("par.t.cost_sec");
  const auto* th = threaded.find("par.t.cost_sec");
  ASSERT_NE(sh, nullptr);
  ASSERT_NE(th, nullptr);
  EXPECT_EQ(sh->value, th->value);
  EXPECT_DOUBLE_EQ(sh->max, th->max);
  EXPECT_EQ(threaded.value("par.pool.jobs"), 32.0);
}

TEST(WorkerPool, PropagatesTheFirstException) {
  par::WorkerPool pool(4);
  EXPECT_THROW(
      pool.run(16,
               [](std::size_t job, par::WorkerContext&) {
                 if (job == 7) throw std::runtime_error("job 7 failed");
               }),
      std::runtime_error);
}

TEST(ShardEngine, RunsAreBitIdentical) {
  par::ShardEngineConfig cfg;
  cfg.shards = 4;
  cfg.messages = 2000;
  const par::ShardEngineResult a = par::ShardEngine(cfg).run();
  const par::ShardEngineResult b = par::ShardEngine(cfg).run();
  EXPECT_EQ(a.mean_latency_sec, b.mean_latency_sec);
  EXPECT_EQ(a.p99_latency_sec, b.p99_latency_sec);
  EXPECT_EQ(a.i_miss_per_msg, b.i_miss_per_msg);
  ASSERT_EQ(a.shards.size(), b.shards.size());
  for (std::size_t s = 0; s < a.shards.size(); ++s) {
    EXPECT_EQ(a.shards[s].messages, b.shards[s].messages);
    EXPECT_EQ(a.shards[s].i_misses, b.shards[s].i_misses);
  }
}

TEST(ShardEngine, ConservesMessagesAcrossShards) {
  par::ShardEngineConfig cfg;
  cfg.shards = 8;
  cfg.messages = 4000;
  const par::ShardEngineResult r = par::ShardEngine(cfg).run();
  std::uint64_t total = 0;
  for (const par::ShardStats& s : r.shards) total += s.messages;
  EXPECT_EQ(total, cfg.messages);
  EXPECT_GE(r.max_shard_share, 1.0);
  EXPECT_LT(r.max_shard_share, 2.0) << "Toeplitz skew out of bounds";
}

TEST(ShardEngine, CoalescingRefillsBatches) {
  par::ShardEngineConfig poll;
  poll.shards = 4;
  poll.messages = 4000;
  poll.arrival_rate_hz = 16000.0;
  par::ShardEngineConfig coal = poll;
  coal.coalesce_sec = 750e-6;
  const par::ShardEngineResult p = par::ShardEngine(poll).run();
  const par::ShardEngineResult c = par::ShardEngine(coal).run();
  EXPECT_GT(c.mean_batch, p.mean_batch);
  EXPECT_LT(c.i_miss_per_msg, p.i_miss_per_msg);
}

/// End to end: a TCP connection through a Host whose device runs two RX
/// queues. The handshake and data segments of one flow must all land on
/// the same shard, so the stack behaves exactly as with one queue.
TEST(HostMultiQueue, TcpDataFlowsThroughShardedReceive) {
  stack::HostConfig ca;
  ca.name = "tx";
  ca.mac = {2, 0, 0, 0, 0, 1};
  ca.ip = wire::ip_from_parts(10, 0, 0, 1);
  stack::HostConfig cb;
  cb.name = "rx";
  cb.mac = {2, 0, 0, 0, 0, 2};
  cb.ip = wire::ip_from_parts(10, 0, 0, 2);
  cb.mode = core::SchedMode::kLdlp;
  cb.rx_queues = 2;
  stack::Host tx(ca);
  stack::Host rx(cb);
  stack::NetDevice::connect(tx.device(), rx.device());
  ASSERT_EQ(rx.device().rx_queue_count(), 2u);

  (void)rx.tcp().listen(80);
  stack::PcbId accepted = stack::kNoPcb;
  rx.tcp().set_accept_hook([&](stack::PcbId id) { accepted = id; });
  const stack::PcbId conn = tx.tcp().connect(cb.ip, 80);
  for (int i = 0; i < 8; ++i) {
    tx.pump();
    rx.pump();
  }
  ASSERT_EQ(tx.tcp().state(conn), stack::TcpState::kEstablished);
  ASSERT_NE(accepted, stack::kNoPcb);

  const std::vector<std::uint8_t> payload(256, 0x7e);
  ASSERT_TRUE(tx.tcp().send(conn, payload));
  for (int i = 0; i < 4; ++i) {
    rx.pump();
    tx.pump();
  }
  std::vector<std::uint8_t> sink(payload.size());
  const stack::SocketId socket = rx.tcp().socket_of(accepted);
  EXPECT_EQ(rx.sockets().read(socket, sink), payload.size());
  EXPECT_EQ(sink, payload);
}

}  // namespace
