// Tests of the section 4 synthetic benchmark system: determinism,
// conservation of messages, the directional properties the paper claims
// (LDLP cuts I-misses under load, raises throughput, batches bounded by
// the blocking estimate), and degenerate configurations.
#include <gtest/gtest.h>

#include "synth/sweep.hpp"
#include "traffic/size_models.hpp"

namespace ldlp::synth {
namespace {

SynthConfig config_for(SynthMode mode) {
  SynthConfig cfg;
  cfg.mode = mode;
  return cfg;
}

RunResult run_once(const SynthConfig& cfg, double rate, double seconds,
                   std::uint64_t seed) {
  SynthStack stack(cfg);
  traffic::PoissonSource source(rate, traffic::internet552_sizes(), seed);
  return stack.run(source, seconds);
}

TEST(SynthStack, DeterministicForSeeds) {
  const SynthConfig cfg = config_for(SynthMode::kLdlp);
  const RunResult a = run_once(cfg, 5000, 0.5, 42);
  const RunResult b = run_once(cfg, 5000, 0.5, 42);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_DOUBLE_EQ(a.mean_latency_sec, b.mean_latency_sec);
  EXPECT_DOUBLE_EQ(a.i_misses_per_msg, b.i_misses_per_msg);
}

TEST(SynthStack, MessagesConserved) {
  for (const auto mode :
       {SynthMode::kConventional, SynthMode::kLdlp}) {
    const RunResult r = run_once(config_for(mode), 6000, 0.5, 7);
    EXPECT_EQ(r.offered, r.completed + r.dropped)
        << "mode=" << static_cast<int>(mode);
    EXPECT_GT(r.completed, 0u);
  }
}

TEST(SynthStack, BatchLimitMatchesBlockingEstimate) {
  SynthStack stack(config_for(SynthMode::kLdlp));
  EXPECT_EQ(stack.batch_limit(), 12u);  // (8192 - 5*256)/552
  SynthStack conv(config_for(SynthMode::kConventional));
  EXPECT_EQ(conv.batch_limit(), 1u);
}

TEST(SynthStack, ConventionalColdMissesMatchWorkingSet) {
  // At low load, every message fetches the whole 30 KB of layer code:
  // 5 layers x 6 KB / 32 B = 960 instruction misses per message.
  const RunResult r = run_once(config_for(SynthMode::kConventional),
                               500, 1.0, 3);
  EXPECT_NEAR(r.i_misses_per_msg, 960.0, 25.0);
}

TEST(SynthStack, LdlpCutsInstructionMissesUnderLoad) {
  const RunResult conv =
      run_once(config_for(SynthMode::kConventional), 8000, 0.5, 5);
  const RunResult ldlp =
      run_once(config_for(SynthMode::kLdlp), 8000, 0.5, 5);
  EXPECT_LT(ldlp.i_misses_per_msg, conv.i_misses_per_msg / 3.0);
  EXPECT_GE(ldlp.d_misses_per_msg, conv.d_misses_per_msg * 0.8);
  EXPECT_GT(ldlp.mean_batch, 3.0);
}

TEST(SynthStack, LdlpThroughputExceedsConventional) {
  const RunResult conv =
      run_once(config_for(SynthMode::kConventional), 9000, 1.0, 9);
  const RunResult ldlp =
      run_once(config_for(SynthMode::kLdlp), 9000, 1.0, 9);
  EXPECT_GT(ldlp.completed, conv.completed * 2);
  EXPECT_LT(ldlp.mean_latency_sec, conv.mean_latency_sec);
}

TEST(SynthStack, IlpSavesDataMissesNotInstructionMisses) {
  // The paper's argument for why ILP does not rescue small-message
  // protocols: fusing data loops saves message-data traffic but leaves
  // the dominant instruction-fetch traffic untouched.
  const RunResult conv =
      run_once(config_for(SynthMode::kConventional), 2000, 0.5, 19);
  const RunResult ilp = run_once(config_for(SynthMode::kIlp), 2000, 0.5, 19);
  EXPECT_NEAR(ilp.i_misses_per_msg, conv.i_misses_per_msg,
              conv.i_misses_per_msg * 0.03);
  EXPECT_LT(ilp.d_misses_per_msg, conv.d_misses_per_msg);
  // And therefore ILP saturates at nearly the same load as conventional,
  // far below LDLP.
  const RunResult ilp_hot = run_once(config_for(SynthMode::kIlp), 9000, 0.5, 19);
  const RunResult ldlp_hot =
      run_once(config_for(SynthMode::kLdlp), 9000, 0.5, 19);
  EXPECT_GT(static_cast<double>(ldlp_hot.completed),
            static_cast<double>(ilp_hot.completed) * 1.7);
  EXPECT_GT(ilp_hot.dropped, ldlp_hot.dropped * 10);
}

TEST(SynthStack, LightLoadBatchesNearOne) {
  const RunResult r = run_once(config_for(SynthMode::kLdlp), 200, 1.0, 1);
  EXPECT_LT(r.mean_batch, 1.1);
  EXPECT_EQ(r.dropped, 0u);
}

TEST(SynthStack, QueueCostChargesLdlpOnly) {
  SynthConfig with = config_for(SynthMode::kLdlp);
  with.queue_cost_cycles = 4000;  // exaggerated to be visible
  SynthConfig without = with;
  without.queue_cost_cycles = 0;
  const RunResult slow = run_once(with, 500, 0.5, 11);
  const RunResult fast = run_once(without, 500, 0.5, 11);
  EXPECT_GT(slow.mean_latency_sec, fast.mean_latency_sec);
}

TEST(SynthStack, BufferLimitCausesDrops) {
  SynthConfig cfg = config_for(SynthMode::kConventional);
  cfg.buffer_limit = 10;
  const RunResult r = run_once(cfg, 10000, 0.5, 13);
  EXPECT_GT(r.dropped, 0u);
  EXPECT_LE(r.max_latency_sec, 1.0);  // short queue bounds sojourn
}

TEST(SynthStack, BigIcacheErasesAdvantage) {
  SynthConfig conv = config_for(SynthMode::kConventional);
  conv.cpu.memory.icache.size_bytes = 64 * 1024;
  conv.cpu.memory.dcache.size_bytes = 64 * 1024;
  // 4-way: with direct mapping, randomly placed 6 KB regions still
  // conflict often enough to mask residency (an effect the cache-size
  // ablation bench shows); associativity isolates the capacity question.
  conv.cpu.memory.icache.ways = 4;
  conv.cpu.memory.dcache.ways = 4;
  SynthConfig ldlp = conv;
  ldlp.mode = SynthMode::kLdlp;
  const RunResult c = run_once(conv, 5000, 0.5, 17);
  const RunResult l = run_once(ldlp, 5000, 0.5, 17);
  // Whole stack resident: both schedules see few I-misses.
  EXPECT_LT(c.i_misses_per_msg, 100.0);
  EXPECT_LT(l.i_misses_per_msg, 100.0);
}

TEST(SynthStack, GroupingDegeneratesCorrectly) {
  // Group size = num_layers inside one batch behaves like the
  // conventional inner order: same I-miss count per message when the
  // batch is 1 (light load).
  SynthConfig grouped = config_for(SynthMode::kLdlp);
  grouped.layers_per_group = 5;
  grouped.queue_cost_cycles = 0;
  const RunResult g = run_once(grouped, 300, 0.5, 31);
  SynthConfig conv = config_for(SynthMode::kConventional);
  const RunResult c = run_once(conv, 300, 0.5, 31);
  EXPECT_NEAR(g.i_misses_per_msg, c.i_misses_per_msg,
              c.i_misses_per_msg * 0.05);
}

TEST(SynthStack, AutoGroupingMatchesPlan) {
  SynthConfig cfg = config_for(SynthMode::kLdlp);
  cfg.layers_per_group = 0;  // auto
  cfg.cpu.memory.icache.size_bytes = 16 * 1024;
  SynthStack stack(cfg);
  EXPECT_EQ(stack.groups(), (std::vector<std::uint32_t>{2, 2, 1}));
}

TEST(SynthStack, DuplexDoublesCodeWorkingSet) {
  // Request/response mode: the transmit code path is distinct, so cold
  // per-message I-misses double (plus the application's footprint).
  SynthConfig rx_only = config_for(SynthMode::kConventional);
  SynthConfig duplex = rx_only;
  duplex.duplex = true;
  const RunResult rx = run_once(rx_only, 300, 0.5, 37);
  const RunResult both = run_once(duplex, 300, 0.5, 37);
  EXPECT_GT(both.i_misses_per_msg, rx.i_misses_per_msg * 1.9);
  EXPECT_GT(both.mean_latency_sec, rx.mean_latency_sec * 1.8);
}

TEST(SynthStack, DuplexLdlpBatchesBothDirections) {
  SynthConfig conv = config_for(SynthMode::kConventional);
  conv.duplex = true;
  SynthConfig ldlp = conv;
  ldlp.mode = SynthMode::kLdlp;
  const RunResult c = run_once(conv, 4000, 0.5, 41);
  const RunResult l = run_once(ldlp, 4000, 0.5, 41);
  EXPECT_LT(l.i_misses_per_msg, c.i_misses_per_msg / 2.0);
  EXPECT_GT(l.completed, c.completed);
}

TEST(Sweep, AverageAggregatesFields) {
  RunResult a;
  a.completed = 10;
  a.mean_latency_sec = 0.001;
  a.batch_limit = 12;
  RunResult b;
  b.completed = 20;
  b.mean_latency_sec = 0.003;
  b.batch_limit = 12;
  const RunResult mean = average({a, b});
  EXPECT_EQ(mean.completed, 15u);
  EXPECT_DOUBLE_EQ(mean.mean_latency_sec, 0.002);
  EXPECT_EQ(mean.batch_limit, 12u);
}

TEST(Sweep, PoissonSweepMonotoneLoad) {
  SweepOptions opt;
  opt.runs = 3;
  opt.run_seconds = 0.3;
  const auto points = sweep_poisson_rates(
      config_for(SynthMode::kLdlp), {1000, 4000, 8000}, opt);
  ASSERT_EQ(points.size(), 3u);
  EXPECT_LT(points[0].mean.mean_batch, points[2].mean.mean_batch);
  EXPECT_LE(points[2].mean.i_misses_per_msg, points[0].mean.i_misses_per_msg);
}

TEST(Sweep, ClockSweepSlowerIsWorse) {
  traffic::PoissonSource source(1500, traffic::internet552_sizes(), 23);
  const auto trace = traffic::collect(source, 5.0);
  SweepOptions opt;
  opt.runs = 2;
  const auto points = sweep_cpu_clock(
      config_for(SynthMode::kConventional), trace, {20e6, 80e6}, opt);
  ASSERT_EQ(points.size(), 2u);
  EXPECT_GT(points[0].mean.mean_latency_sec, points[1].mean.mean_latency_sec);
}

}  // namespace
}  // namespace ldlp::synth
