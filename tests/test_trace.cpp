// Unit tests for the tracing substrate: sparsity interval generation, code
// and data footprint maps, working-set analysis (classification,
// rasterisation at multiple line sizes), phase accounting.
#include <gtest/gtest.h>

#include "trace/code_map.hpp"
#include "trace/code_map_render.hpp"
#include "trace/data_map.hpp"
#include "trace/sparsity.hpp"
#include "trace/working_set.hpp"

namespace ldlp::trace {
namespace {

TEST(Sparsity, CoversExactlyActiveBytes) {
  for (std::uint32_t active : {64u, 500u, 992u, 3000u}) {
    const auto ivs = make_intervals(4000, active, {96, 8}, 42);
    EXPECT_EQ(covered_bytes(ivs), active) << "active=" << active;
  }
}

TEST(Sparsity, IntervalsAscendingAndDisjoint) {
  const auto ivs = make_intervals(10000, 4000, {96, 8}, 7);
  for (std::size_t i = 0; i < ivs.size(); ++i) {
    EXPECT_GT(ivs[i].len, 0u);
    EXPECT_LE(ivs[i].off + ivs[i].len, 10000u);
    if (i > 0) {
      EXPECT_GE(ivs[i].off, ivs[i - 1].off + ivs[i - 1].len);
    }
  }
}

TEST(Sparsity, FullCoverageIsOneInterval) {
  const auto ivs = make_intervals(512, 512, {96, 8}, 1);
  ASSERT_EQ(ivs.size(), 1u);
  EXPECT_EQ(ivs[0].off, 0u);
  EXPECT_EQ(ivs[0].len, 512u);
}

TEST(Sparsity, DeterministicInSeed) {
  const auto a = make_intervals(5000, 2000, {64, 8}, 99);
  const auto b = make_intervals(5000, 2000, {64, 8}, 99);
  EXPECT_EQ(a, b);
  const auto c = make_intervals(5000, 2000, {64, 8}, 100);
  EXPECT_NE(a, c);
}

TEST(Sparsity, ClampsOversizedRequest) {
  const auto ivs = make_intervals(100, 1000, {96, 8}, 3);
  EXPECT_EQ(covered_bytes(ivs), 100u);
}

TEST(Sparsity, EmptyInputs) {
  EXPECT_TRUE(make_intervals(0, 10, {96, 8}, 1).empty());
  EXPECT_TRUE(make_intervals(100, 0, {96, 8}, 1).empty());
}

TEST(CodeMap, SequentialNonOverlappingPlacement) {
  CodeMap code;
  const FnId a = code.define("fn_a", LayerClass::kTcp, 1000);
  const FnId b = code.define("fn_b", LayerClass::kIp, 500);
  EXPECT_GE(code.fn(b).base, code.fn(a).base + 1000);
  EXPECT_EQ(code.find("fn_b"), b);
  EXPECT_EQ(code.find("nope"), code.count());
}

TEST(CodeMap, RepeatCallsDontGrowWorkingSet) {
  CodeMap code;
  const FnId fn = code.define("fn", LayerClass::kTcp, 4000, 1500);
  TraceBuffer buffer;
  buffer.enable();
  code.record_call(buffer, fn);
  const auto once = analyze_working_set(buffer, 32).total.code_lines;
  code.record_call(buffer, fn);
  code.record_call(buffer, fn);
  const auto thrice = analyze_working_set(buffer, 32).total.code_lines;
  EXPECT_EQ(once, thrice);
}

TEST(CodeMap, PartialCallIsSubsetOfFull) {
  CodeMap code;
  const FnId fn = code.define("fn", LayerClass::kTcp, 4000, 1500);
  TraceBuffer partial_buf;
  partial_buf.enable();
  code.record_call(partial_buf, fn, 0.4);
  TraceBuffer full_buf;
  full_buf.enable();
  code.record_call(full_buf, fn, 1.0);
  const auto partial = analyze_working_set(partial_buf, 32).total.code_lines;
  const auto full = analyze_working_set(full_buf, 32).total.code_lines;
  EXPECT_LT(partial, full);
  // Union of partial+full equals full alone (subset property).
  code.record_call(full_buf, fn, 0.4);
  EXPECT_EQ(analyze_working_set(full_buf, 32).total.code_lines, full);
}

TEST(CodeMap, DisabledBufferRecordsNothing) {
  CodeMap code;
  const FnId fn = code.define("fn", LayerClass::kTcp, 1000);
  TraceBuffer buffer;  // not enabled
  code.record_call(buffer, fn);
  EXPECT_EQ(buffer.size(), 0u);
}

TEST(DataMap, ReadOnlyVsMutableClassification) {
  DataMap data;
  const RegionId ro = data.define("table", LayerClass::kIp,
                                  DataIntent::kReadOnly, 1000, 400);
  const RegionId mut = data.define("pcb", LayerClass::kTcp,
                                   DataIntent::kMutable, 1000, 400);
  TraceBuffer buffer;
  buffer.enable();
  data.record_touch(buffer, ro);
  data.record_touch(buffer, mut);
  const auto ws = analyze_working_set(buffer, 32);
  EXPECT_GT(ws.total.ro_lines, 0u);
  EXPECT_GT(ws.total.mut_lines, 0u);
  EXPECT_EQ(ws.total.code_lines, 0u);
  EXPECT_GT(ws.layers[static_cast<std::size_t>(LayerClass::kIp)].ro_lines, 0u);
  EXPECT_GT(ws.layers[static_cast<std::size_t>(LayerClass::kTcp)].mut_lines,
            0u);
}

TEST(WorkingSet, FirstTouchLayerAttribution) {
  TraceBuffer buffer;
  buffer.enable();
  buffer.record(RefKind::kRead, LayerClass::kIp, 0x1000, 32);
  buffer.record(RefKind::kRead, LayerClass::kTcp, 0x1000, 32);  // same line
  const auto ws = analyze_working_set(buffer, 32);
  EXPECT_EQ(ws.layers[static_cast<std::size_t>(LayerClass::kIp)].ro_lines, 1u);
  EXPECT_EQ(ws.layers[static_cast<std::size_t>(LayerClass::kTcp)].ro_lines,
            0u);
}

TEST(WorkingSet, LaterWriteMakesLineMutable) {
  TraceBuffer buffer;
  buffer.enable();
  buffer.record(RefKind::kRead, LayerClass::kIp, 0x1000, 32);
  const auto before = analyze_working_set(buffer, 32);
  EXPECT_EQ(before.total.ro_lines, 1u);
  buffer.record(RefKind::kWrite, LayerClass::kIp, 0x1010, 4);
  const auto after = analyze_working_set(buffer, 32);
  EXPECT_EQ(after.total.ro_lines, 0u);
  EXPECT_EQ(after.total.mut_lines, 1u);
}

TEST(WorkingSet, PacketDataAndStackExcluded) {
  TraceBuffer buffer;
  buffer.enable();
  buffer.record(RefKind::kRead, LayerClass::kPacketData, 0x7000, 512);
  buffer.record(RefKind::kWrite, LayerClass::kStack, 0x8000, 64);
  const auto ws = analyze_working_set(buffer, 32);
  EXPECT_EQ(ws.total.total_lines(), 0u);
  // ...but the phase footers do see the references.
  EXPECT_GT(ws.phases[0].read_bytes, 0u);
  EXPECT_GT(ws.phases[0].write_bytes, 0u);
}

TEST(WorkingSet, PhaseFootersSeparate) {
  TraceBuffer buffer;
  buffer.enable();
  buffer.set_phase(Phase::kEntry);
  buffer.record(RefKind::kCode, LayerClass::kTcp, 0x100, 64, 16);
  buffer.set_phase(Phase::kExit);
  buffer.record(RefKind::kCode, LayerClass::kTcp, 0x100, 32, 8);
  const auto ws = analyze_working_set(buffer, 32);
  EXPECT_EQ(ws.phases[0].code_bytes, 64u);
  EXPECT_EQ(ws.phases[0].code_refs, 16u);
  EXPECT_EQ(ws.phases[2].code_bytes, 32u);
  EXPECT_EQ(ws.phases[2].code_refs, 8u);
  EXPECT_EQ(ws.phases[1].code_bytes, 0u);
}

/// Rasterisation property: unique bytes covered can only shrink (or stay)
/// as lines get smaller, and line count can only grow.
class LineSizeSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(LineSizeSweep, MonotoneVsBaseline) {
  CodeMap code;
  const FnId fn = code.define("fn", LayerClass::kTcp, 12000, 4000);
  TraceBuffer buffer;
  buffer.enable();
  code.record_call(buffer, fn);
  const auto base = analyze_working_set(buffer, 32);
  const auto ws = analyze_working_set(buffer, GetParam());
  if (GetParam() < 32) {
    EXPECT_LE(ws.code_bytes(), base.code_bytes());
    EXPECT_GE(ws.total.code_lines, base.total.code_lines);
  } else if (GetParam() > 32) {
    EXPECT_GE(ws.code_bytes(), base.code_bytes());
    EXPECT_LE(ws.total.code_lines, base.total.code_lines);
  }
}

INSTANTIATE_TEST_SUITE_P(Lines, LineSizeSweep,
                         ::testing::Values(4u, 8u, 16u, 32u, 64u, 128u));

TEST(RenderCodeMap, ListsTouchedFunctions) {
  CodeMap code;
  const FnId fn = code.define("very_visible_fn", LayerClass::kTcp, 1000);
  TraceBuffer buffer;
  buffer.enable();
  buffer.set_phase(Phase::kPacketIntr);
  code.record_call(buffer, fn);
  const std::string out = render_code_map(code, buffer);
  EXPECT_NE(out.find("very_visible_fn"), std::string::npos);
  EXPECT_NE(out.find("pkt intr"), std::string::npos);
}

}  // namespace
}  // namespace ldlp::trace
