// Signalling protocol tests: IE/message codecs, call state machines,
// VC pool management, SSCOP reliability, full node pairs under both
// scheduling modes and lossy links.
#include <gtest/gtest.h>

#include <vector>

#include "signal/node.hpp"

namespace ldlp::signal {
namespace {

const std::uint8_t kCalled[] = {1, 2, 3, 4};
const std::uint8_t kCalling[] = {9, 9, 9};
const TrafficDescriptor kTd{353207, 176603};

TEST(Ie, ConnectionIdRoundTrip) {
  const Ie ie = make_connection_id({7, 1234});
  const auto cid = parse_connection_id(ie);
  ASSERT_TRUE(cid.has_value());
  EXPECT_EQ(cid->vpi, 7);
  EXPECT_EQ(cid->vci, 1234);
}

TEST(Ie, TrafficDescriptorRoundTrip) {
  const Ie ie = make_traffic_descriptor(kTd);
  const auto td = parse_traffic_descriptor(ie);
  ASSERT_TRUE(td.has_value());
  EXPECT_EQ(td->peak_cell_rate, kTd.peak_cell_rate);
  EXPECT_EQ(td->sustained_cell_rate, kTd.sustained_cell_rate);
}

TEST(Ie, WrongIdRejected) {
  const Ie ie = make_cause(Cause::kUserBusy);
  EXPECT_FALSE(parse_connection_id(ie).has_value());
  const auto cause = parse_cause(ie);
  ASSERT_TRUE(cause.has_value());
  EXPECT_EQ(*cause, Cause::kUserBusy);
}

TEST(Message, SetupRoundTrip) {
  const SigMessage msg = make_setup(0x123456, kCalled, kCalling, kTd);
  const auto bytes = encode(msg);
  EXPECT_LT(bytes.size(), 100u);  // a small message, as the paper assumes
  const auto decoded = decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->type, MsgType::kSetup);
  EXPECT_EQ(decoded->call_ref, 0x123456u);
  EXPECT_TRUE(decoded->from_originator);
  ASSERT_NE(decoded->find(IeId::kCalledNumber), nullptr);
  EXPECT_EQ(decoded->find(IeId::kCalledNumber)->value,
            std::vector<std::uint8_t>(std::begin(kCalled), std::end(kCalled)));
  ASSERT_NE(decoded->find(IeId::kTrafficDescriptor), nullptr);
}

TEST(Message, FlagDistinguishesDirection) {
  const SigMessage msg = make_connect(42, {0, 100});
  const auto decoded = decode(encode(msg));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_FALSE(decoded->from_originator);
  EXPECT_EQ(decoded->call_ref, 42u);
}

TEST(Message, MalformedRejected) {
  auto bytes = encode(make_release_complete(1, true));
  bytes[0] = 0x55;  // wrong protocol discriminator
  EXPECT_FALSE(decode(bytes).has_value());
  auto truncated = encode(make_setup(1, kCalled, kCalling, kTd));
  truncated.resize(truncated.size() - 3);  // cuts the last IE
  EXPECT_FALSE(decode(truncated).has_value());
  EXPECT_FALSE(decode(std::vector<std::uint8_t>(4, 0)).has_value());
}

TEST(CallControl, DirectSetupConnectRelease) {
  CallControl user;
  CallControl network;
  user.set_send([&](const SigMessage& m) { network.on_message(m); });
  network.set_send([&](const SigMessage& m) { user.on_message(m); });

  const std::uint32_t ref = user.originate(kCalled, kCalling, kTd);
  EXPECT_EQ(user.state(ref), CallState::kActive);
  EXPECT_EQ(network.stats().connects, 1u);
  EXPECT_EQ(network.stats().active_calls, 1u);

  user.release(ref);
  EXPECT_FALSE(user.state(ref).has_value());  // cleared
  EXPECT_EQ(network.stats().active_calls, 0u);
  EXPECT_EQ(user.stats().active_calls, 0u);
}

TEST(CallControl, VcPoolExhaustionRejects) {
  CallControl user;
  CallControl network(64, 2);  // only two VCs
  user.set_send([&](const SigMessage& m) { network.on_message(m); });
  network.set_send([&](const SigMessage& m) { user.on_message(m); });

  const auto r1 = user.originate(kCalled, kCalling, kTd);
  const auto r2 = user.originate(kCalled, kCalling, kTd);
  const auto r3 = user.originate(kCalled, kCalling, kTd);
  EXPECT_EQ(user.state(r1), CallState::kActive);
  EXPECT_EQ(user.state(r2), CallState::kActive);
  EXPECT_FALSE(user.state(r3).has_value());  // rejected and cleared
  EXPECT_EQ(network.stats().rejected, 1u);

  // Releasing frees a VC for a new call.
  user.release(r1);
  const auto r4 = user.originate(kCalled, kCalling, kTd);
  EXPECT_EQ(user.state(r4), CallState::kActive);
}

TEST(CallControl, VcAssignmentsUniqueAmongActive) {
  CallControl user;
  CallControl network(64, 16);
  user.set_send([&](const SigMessage& m) { network.on_message(m); });
  network.set_send([&](const SigMessage& m) { user.on_message(m); });
  std::vector<std::uint16_t> vcis;
  user.set_on_active([&](const Call& call) {
    ASSERT_TRUE(call.vc.has_value());
    vcis.push_back(call.vc->vci);
  });
  for (int i = 0; i < 16; ++i) (void)user.originate(kCalled, kCalling, kTd);
  std::sort(vcis.begin(), vcis.end());
  EXPECT_EQ(std::adjacent_find(vcis.begin(), vcis.end()), vcis.end());
}

TEST(CallControl, ReleaseUnknownCallAnsweredStatelessly) {
  CallControl network;
  int sent = 0;
  network.set_send([&](const SigMessage& m) {
    ++sent;
    EXPECT_EQ(m.type, MsgType::kReleaseComplete);
  });
  network.on_message(make_release(777, Cause::kNormalClearing, true));
  EXPECT_EQ(sent, 1);
  EXPECT_EQ(network.stats().protocol_errors, 1u);
}

TEST(Sscop, InOrderDelivery) {
  SscopLink a;
  SscopLink b;
  std::vector<std::vector<std::uint8_t>> delivered;
  a.set_transmit([&](std::vector<std::uint8_t> pdu) { b.on_pdu(pdu, 0.0); });
  b.set_transmit([&](std::vector<std::uint8_t> pdu) { a.on_pdu(pdu, 0.0); });
  b.set_deliver([&](std::vector<std::uint8_t> p) {
    delivered.push_back(std::move(p));
  });
  ASSERT_TRUE(a.send({1, 2, 3}, 0.0));
  ASSERT_TRUE(a.send({4, 5}, 0.0));
  ASSERT_EQ(delivered.size(), 2u);
  EXPECT_EQ(delivered[0], (std::vector<std::uint8_t>{1, 2, 3}));
  EXPECT_EQ(delivered[1], (std::vector<std::uint8_t>{4, 5}));
}

TEST(Sscop, RetransmitAfterLoss) {
  SscopLink a;
  SscopLink b;
  std::vector<std::vector<std::uint8_t>> delivered;
  bool drop_next = true;
  a.set_transmit([&](std::vector<std::uint8_t> pdu) {
    if (drop_next && pdu[0] == 1) {  // drop the first SD only
      drop_next = false;
      return;
    }
    b.on_pdu(pdu, 0.0);
  });
  b.set_transmit([&](std::vector<std::uint8_t> pdu) { a.on_pdu(pdu, 0.0); });
  b.set_deliver([&](std::vector<std::uint8_t> p) {
    delivered.push_back(std::move(p));
  });
  ASSERT_TRUE(a.send({42}, 0.0));
  EXPECT_TRUE(delivered.empty());
  EXPECT_EQ(a.unacked(), 1u);
  a.on_timer(1.0);  // past the retransmit deadline
  ASSERT_EQ(delivered.size(), 1u);
  EXPECT_EQ(delivered[0], (std::vector<std::uint8_t>{42}));
  EXPECT_GE(a.stats().retransmits, 1u);
}

TEST(Sscop, WindowLimitsOutstanding) {
  SscopConfig cfg;
  cfg.window = 2;
  SscopLink a(cfg);
  a.set_transmit([](std::vector<std::uint8_t>) {});  // black hole: no acks
  EXPECT_TRUE(a.send({1}, 0.0));
  EXPECT_TRUE(a.send({2}, 0.0));
  EXPECT_FALSE(a.send({3}, 0.0));
}

TEST(Sscop, UnsolicitedStatsKeepWindowOpen) {
  // Regression: without receiver-initiated STATs a pump-driven system
  // (no timers) wedges once `window` SDs are outstanding.
  SscopLink a;
  SscopLink b;
  a.set_transmit([&](std::vector<std::uint8_t> pdu) { b.on_pdu(pdu, 0.0); });
  b.set_transmit([&](std::vector<std::uint8_t> pdu) { a.on_pdu(pdu, 0.0); });
  int delivered = 0;
  b.set_deliver([&](std::vector<std::uint8_t>) { ++delivered; });
  for (int i = 0; i < 2000; ++i)
    ASSERT_TRUE(a.send({static_cast<std::uint8_t>(i)}, 0.0)) << i;
  EXPECT_EQ(delivered, 2000);
  EXPECT_LT(a.unacked(), 16u);
}

TEST(Sscop, PollElicitsStat) {
  SscopLink a;
  SscopLink b;
  int stats_seen = 0;
  a.set_transmit([&](std::vector<std::uint8_t> pdu) {
    if (pdu[0] == 1) return;  // drop all SDs: acks must come via POLL
    b.on_pdu(pdu, 0.0);
  });
  b.set_transmit([&](std::vector<std::uint8_t> pdu) {
    if (pdu[0] == 3) ++stats_seen;
    a.on_pdu(pdu, 0.0);
  });
  ASSERT_TRUE(a.send({1}, 0.0));
  EXPECT_EQ(a.unacked(), 1u);
  a.on_timer(0.06);  // poll interval elapsed
  EXPECT_GE(stats_seen, 1);
  EXPECT_GE(a.stats().polls, 1u);
}

TEST(CallControl, UnknownMessageTypeCounted) {
  CallControl cc;
  SigMessage weird;
  weird.type = MsgType::kStatus;
  weird.call_ref = 5;
  cc.on_message(weird);
  EXPECT_EQ(cc.stats().protocol_errors, 1u);
}

TEST(CallControl, ConnectForUnknownRefIsError) {
  CallControl cc;
  cc.on_message(make_connect(999, {0, 77}));
  EXPECT_EQ(cc.stats().protocol_errors, 1u);
  EXPECT_EQ(cc.stats().active_calls, 0u);
}

TEST(Node, CallFlowOverNodes) {
  SignallingNode user("user");
  SignallingNode network("net");
  SignallingNode::connect(user, network);
  const std::uint32_t ref = user.calls().originate(kCalled, kCalling, kTd);
  network.pump();
  user.pump();
  EXPECT_EQ(user.calls().state(ref), CallState::kActive);
  user.calls().release(ref);
  network.pump();
  user.pump();
  EXPECT_FALSE(user.calls().state(ref).has_value());
  EXPECT_EQ(network.stats().codec_errors, 0u);
}

TEST(Node, LdlpModeBatchesAndCompletes) {
  SignallingNode user("user", core::SchedMode::kLdlp);
  SignallingNode network("net", core::SchedMode::kLdlp);
  SignallingNode::connect(user, network);
  std::vector<std::uint32_t> refs;
  for (int i = 0; i < 50; ++i)
    refs.push_back(user.calls().originate(kCalled, kCalling, kTd));
  // All 50 SETUPs sit in the switch's inbox; one pump handles the batch.
  EXPECT_EQ(network.inbox_backlog(), 50u);
  network.pump();
  user.pump();
  for (const auto ref : refs)
    EXPECT_EQ(user.calls().state(ref), CallState::kActive);
  EXPECT_EQ(network.calls().stats().active_calls, 50u);
}

TEST(Node, LossyLinkRecoversViaSscop) {
  SignallingNode user("user");
  SignallingNode network("net");
  SignallingNode::connect(user, network);
  network.set_loss_rate(0.4, 1234);
  user.set_loss_rate(0.4, 5678);

  std::vector<std::uint32_t> refs;
  for (int i = 0; i < 20; ++i)
    refs.push_back(user.calls().originate(kCalled, kCalling, kTd));
  for (int round = 0; round < 600; ++round) {
    user.advance(0.05);
    network.advance(0.05);
    network.pump();
    user.pump();
    bool all_active = true;
    for (const auto ref : refs)
      all_active &= user.calls().state(ref) == CallState::kActive;
    if (all_active) break;
  }
  for (const auto ref : refs)
    EXPECT_EQ(user.calls().state(ref), CallState::kActive) << ref;
  EXPECT_GT(user.link().stats().retransmits +
                network.link().stats().retransmits,
            0u);
}

}  // namespace
}  // namespace ldlp::signal
