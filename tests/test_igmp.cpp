// IGMP tests: message codec, join/leave report behaviour, query-driven
// delayed reports, report suppression, and multicast datagram delivery
// filtered by group membership — over the real two-host stack.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "stack/host.hpp"

namespace ldlp::stack {
namespace {

using wire::ip_from_parts;

constexpr std::uint32_t kGroup = 0xe1000005;  // 225.0.0.5

TEST(IgmpCodec, RoundTripWithChecksum) {
  IgmpMessage msg;
  msg.type = IgmpType::kReportV2;
  msg.max_resp_deciseconds = 0;
  msg.group = kGroup;
  std::uint8_t bytes[kIgmpLen];
  ASSERT_EQ(write_igmp(msg, bytes), kIgmpLen);
  const auto parsed = parse_igmp(bytes);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->type, IgmpType::kReportV2);
  EXPECT_EQ(parsed->group, kGroup);
}

TEST(IgmpCodec, CorruptionRejected) {
  IgmpMessage msg;
  msg.type = IgmpType::kQuery;
  std::uint8_t bytes[kIgmpLen];
  write_igmp(msg, bytes);
  bytes[5] ^= 0x01;
  EXPECT_FALSE(parse_igmp(bytes).has_value());
  // Unknown type.
  write_igmp(msg, bytes);
  bytes[0] = 0x42;
  EXPECT_FALSE(parse_igmp(bytes).has_value());
}

TEST(IgmpCodec, MulticastPredicates) {
  EXPECT_TRUE(is_multicast(kAllHostsGroup));
  EXPECT_TRUE(is_multicast(kGroup));
  EXPECT_FALSE(is_multicast(ip_from_parts(10, 0, 0, 1)));
  EXPECT_FALSE(is_multicast(0xffffffff));
}

struct McastPair {
  std::unique_ptr<Host> a;
  std::unique_ptr<Host> b;

  McastPair() {
    HostConfig ca;
    ca.name = "a";
    ca.mac = {2, 0, 0, 0, 0, 1};
    ca.ip = ip_from_parts(10, 0, 0, 1);
    HostConfig cb = ca;
    cb.name = "b";
    cb.mac = {2, 0, 0, 0, 0, 2};
    cb.ip = ip_from_parts(10, 0, 0, 2);
    a = std::make_unique<Host>(ca);
    b = std::make_unique<Host>(cb);
    NetDevice::connect(a->device(), b->device());
  }

  void settle(int rounds = 6) {
    for (int i = 0; i < rounds; ++i) {
      a->pump();
      b->pump();
    }
  }
};

TEST(IgmpHostSide, JoinSendsUnsolicitedReport) {
  McastPair net;
  net.a->igmp().join(kGroup);
  EXPECT_EQ(net.a->igmp().stats().reports_sent, 1u);
  EXPECT_TRUE(net.a->igmp().is_member(kGroup));
  net.settle();
  // The peer (also not a member) sees the report at IP as IGMP protocol.
  EXPECT_GE(net.b->ip().ip_stats().rx_igmp, 0u);  // filtered: not a member
  // Second unsolicited report after the random delay.
  for (int i = 0; i < 12; ++i) {
    net.a->advance(1.0);
    net.settle(1);
  }
  EXPECT_EQ(net.a->igmp().stats().reports_sent, 2u);
}

TEST(IgmpHostSide, LeaveSendsLeaveWhenLastReporter) {
  McastPair net;
  net.a->igmp().join(kGroup);
  net.a->igmp().leave(kGroup);
  EXPECT_EQ(net.a->igmp().stats().leaves_sent, 1u);
  EXPECT_FALSE(net.a->igmp().is_member(kGroup));
  // Leaving a group we never joined: silent.
  net.a->igmp().leave(kGroup);
  EXPECT_EQ(net.a->igmp().stats().leaves_sent, 1u);
}

TEST(IgmpHostSide, QueryTriggersDelayedReport) {
  McastPair net;
  net.b->igmp().join(kGroup);
  net.settle();
  const auto reports_before = net.b->igmp().stats().reports_sent;

  // Host A plays router: general query to all-hosts.
  std::uint8_t bytes[kIgmpLen];
  IgmpMessage query;
  query.type = IgmpType::kQuery;
  query.max_resp_deciseconds = 20;  // 2 s window
  query.group = 0;
  write_igmp(query, bytes);
  buf::Packet pkt = buf::Packet::from_bytes(net.a->pool(), bytes);
  net.a->ip().output(std::move(pkt), kAllHostsGroup, wire::IpProto::kIgmp, 1);
  net.settle();
  EXPECT_EQ(net.b->igmp().stats().queries_heard, 1u);

  // Within the response window, the report fires.
  for (int i = 0; i < 25; ++i) {
    net.b->advance(0.1);
    net.settle(1);
  }
  EXPECT_GT(net.b->igmp().stats().reports_sent, reports_before);
}

TEST(IgmpHostSide, ReportSuppression) {
  McastPair net;
  net.a->igmp().join(kGroup);
  net.b->igmp().join(kGroup);
  net.settle();

  // Query both; whoever fires first suppresses the other.
  std::uint8_t bytes[kIgmpLen];
  IgmpMessage query;
  query.type = IgmpType::kQuery;
  query.max_resp_deciseconds = 50;
  write_igmp(query, bytes);
  for (Host* h : {net.a.get(), net.b.get()}) {
    buf::Packet pkt = buf::Packet::from_bytes(h->pool(), bytes);
    // Inject locally as though a router on the wire queried everyone.
    h->ip().output(std::move(pkt), kAllHostsGroup, wire::IpProto::kIgmp, 1);
  }
  net.settle();
  for (int i = 0; i < 60; ++i) {
    net.a->advance(0.1);
    net.b->advance(0.1);
    net.settle(1);
  }
  const auto suppressed =
      net.a->igmp().stats().suppressed + net.b->igmp().stats().suppressed;
  EXPECT_GE(suppressed, 1u);
}

TEST(IgmpHostSide, MulticastDeliveryFollowsMembership) {
  McastPair net;
  const SocketId sock = net.b->sockets().create(SocketKind::kDatagram);
  ASSERT_TRUE(net.b->udp().bind(6000, sock));

  auto send_to_group = [&] {
    const std::vector<std::uint8_t> payload{'m', 'c'};
    net.a->udp().send(6001, kGroup, 6000, payload);
    net.settle();
  };

  // Not a member: the datagram is filtered at IP.
  send_to_group();
  EXPECT_EQ(net.b->sockets().pending_datagrams(sock), 0u);
  EXPECT_GE(net.b->ip().ip_stats().rx_not_mine, 1u);

  // Join, then the same datagram is delivered.
  net.b->igmp().join(kGroup);
  net.settle();
  send_to_group();
  EXPECT_EQ(net.b->sockets().pending_datagrams(sock), 1u);
  EXPECT_GE(net.b->ip().ip_stats().rx_multicast, 1u);

  // Leave again: filtered again.
  net.b->igmp().leave(kGroup);
  net.settle();
  send_to_group();
  EXPECT_EQ(net.b->sockets().pending_datagrams(sock), 1u);
}

}  // namespace
}  // namespace ldlp::stack
