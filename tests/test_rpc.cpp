// RPC/NFS tests: XDR codec properties, RPC call/reply framing, the
// in-memory filesystem, and full client/server operation over the stack —
// including retry + duplicate-request-cache semantics under loss.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "rpc/nfs_lite.hpp"

namespace ldlp::rpc {
namespace {

using wire::ip_from_parts;

TEST(Xdr, PrimitivesRoundTrip) {
  XdrWriter w;
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.boolean(true);
  w.i32(-42);
  XdrReader r(w.bytes());
  EXPECT_EQ(r.u32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.u64().value(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.boolean().value(), true);
  EXPECT_EQ(static_cast<std::int32_t>(r.u32().value()), -42);
  EXPECT_TRUE(r.exhausted());
}

TEST(Xdr, OpaquePadsToFourBytes) {
  XdrWriter w;
  const std::uint8_t five[] = {1, 2, 3, 4, 5};
  w.opaque(five);
  EXPECT_EQ(w.bytes().size(), 4u + 8u);  // length word + 5 bytes + 3 pad
  XdrReader r(w.bytes());
  const auto out = r.opaque();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(out->size(), 5u);
  EXPECT_EQ((*out)[4], 5);
  EXPECT_TRUE(r.exhausted());
}

TEST(Xdr, StringRoundTrip) {
  XdrWriter w;
  w.str("hello nfs");
  XdrReader r(w.bytes());
  EXPECT_EQ(r.str().value(), "hello nfs");
}

TEST(Xdr, BoundsEnforced) {
  XdrReader empty({});
  EXPECT_FALSE(empty.u32().has_value());
  XdrWriter w;
  w.u32(1000);  // claims 1000 bytes follow
  XdrReader r(w.bytes());
  EXPECT_FALSE(r.opaque().has_value());
  // Length cap.
  XdrWriter w2;
  w2.opaque(std::vector<std::uint8_t>(64, 7));
  XdrReader r2(w2.bytes());
  EXPECT_FALSE(r2.opaque(32).has_value());
}

TEST(Xdr, RandomOpaqueProperty) {
  Rng rng(71);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<std::uint8_t> data(rng.bounded(200));
    for (auto& b : data) b = static_cast<std::uint8_t>(rng());
    XdrWriter w;
    w.opaque(data);
    w.u32(0x5a5a5a5a);  // sentinel after the padding
    XdrReader r(w.bytes());
    EXPECT_EQ(r.opaque().value(), data);
    EXPECT_EQ(r.u32().value(), 0x5a5a5a5au);
  }
}

TEST(RpcMsg, CallRoundTrip) {
  RpcCall call;
  call.xid = 77;
  call.prog = kNfsProgram;
  call.vers = 2;
  call.proc = 4;
  call.args = {9, 9, 9, 9};
  const auto decoded = decode_rpc(encode_call(call));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->call.has_value());
  EXPECT_FALSE(decoded->reply.has_value());
  EXPECT_EQ(decoded->call->xid, 77u);
  EXPECT_EQ(decoded->call->prog, kNfsProgram);
  EXPECT_EQ(decoded->call->args, call.args);
}

TEST(RpcMsg, ReplyRoundTrip) {
  RpcReply reply;
  reply.xid = 88;
  reply.stat = AcceptStat::kSuccess;
  reply.results = {1, 2, 3, 4, 5, 6, 7, 8};
  const auto decoded = decode_rpc(encode_reply(reply));
  ASSERT_TRUE(decoded.has_value());
  ASSERT_TRUE(decoded->reply.has_value());
  EXPECT_EQ(decoded->reply->results, reply.results);
}

TEST(RpcMsg, ErrorReplyCarriesNoResults) {
  RpcReply reply;
  reply.xid = 9;
  reply.stat = AcceptStat::kProcUnavail;
  const auto decoded = decode_rpc(encode_reply(reply));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->reply->stat, AcceptStat::kProcUnavail);
  EXPECT_TRUE(decoded->reply->results.empty());
}

TEST(RpcMsg, WrongRpcVersionRejected) {
  RpcCall call;
  call.xid = 1;
  auto bytes = encode_call(call);
  bytes[11] = 3;  // rpcvers = 3
  EXPECT_FALSE(decode_rpc(bytes).has_value());
}

TEST(MemFs, CreateLookupReadWrite) {
  MemFs fs;
  FileHandle fh = 0;
  EXPECT_EQ(fs.create(kRootHandle, "file.txt", false, fh), NfsStat::kOk);
  EXPECT_EQ(fs.lookup(kRootHandle, "file.txt").value(), fh);
  EXPECT_FALSE(fs.lookup(kRootHandle, "other").has_value());

  const std::vector<std::uint8_t> data{'h', 'i'};
  EXPECT_EQ(fs.write(fh, 0, data), NfsStat::kOk);
  EXPECT_EQ(fs.getattr(fh)->size, 2u);
  std::vector<std::uint8_t> out;
  EXPECT_EQ(fs.read(fh, 0, 10, out), NfsStat::kOk);
  EXPECT_EQ(out, data);
  // Sparse extend.
  EXPECT_EQ(fs.write(fh, 10, data), NfsStat::kOk);
  EXPECT_EQ(fs.getattr(fh)->size, 12u);
}

TEST(MemFs, CreateIsIdempotentViaExist) {
  MemFs fs;
  FileHandle a = 0;
  FileHandle b = 0;
  EXPECT_EQ(fs.create(kRootHandle, "x", false, a), NfsStat::kOk);
  EXPECT_EQ(fs.create(kRootHandle, "x", false, b), NfsStat::kExist);
  EXPECT_EQ(a, b);
}

TEST(MemFs, DirectoryChecks) {
  MemFs fs;
  FileHandle sub = 0;
  EXPECT_EQ(fs.create(kRootHandle, "dir", true, sub), NfsStat::kOk);
  FileHandle in_sub = 0;
  EXPECT_EQ(fs.create(sub, "nested", false, in_sub), NfsStat::kOk);
  EXPECT_EQ(fs.lookup(sub, "nested").value(), in_sub);
  std::vector<std::uint8_t> out;
  EXPECT_EQ(fs.read(sub, 0, 8, out), NfsStat::kIsDir);
  FileHandle bogus = 0;
  EXPECT_EQ(fs.create(in_sub, "under-file", false, bogus), NfsStat::kNotDir);
  EXPECT_EQ(fs.read(9999, 0, 8, out), NfsStat::kStale);
}

TEST(MemFs, ReaddirListsSorted) {
  MemFs fs;
  FileHandle fh = 0;
  (void)fs.create(kRootHandle, "b", false, fh);
  (void)fs.create(kRootHandle, "a", false, fh);
  (void)fs.create(kRootHandle, "c", false, fh);
  const auto names = fs.readdir(kRootHandle);
  EXPECT_EQ(names, (std::vector<std::string>{"a", "b", "c"}));
}

// ---- End-to-end fixture -----------------------------------------------------

struct NfsNet {
  stack::HostConfig client_cfg;
  stack::HostConfig server_cfg;
  std::unique_ptr<stack::Host> client_host;
  std::unique_ptr<stack::Host> server_host;
  std::unique_ptr<NfsServer> server;
  std::unique_ptr<NfsClient> client;

  explicit NfsNet(core::SchedMode mode = core::SchedMode::kConventional) {
    client_cfg.name = "nfsc";
    client_cfg.mac = {2, 0, 0, 0, 0, 1};
    client_cfg.ip = ip_from_parts(10, 0, 0, 1);
    client_cfg.mode = mode;
    server_cfg.name = "nfsd";
    server_cfg.mac = {2, 0, 0, 0, 0, 2};
    server_cfg.ip = ip_from_parts(10, 0, 0, 2);
    server_cfg.mode = mode;
    client_host = std::make_unique<stack::Host>(client_cfg);
    server_host = std::make_unique<stack::Host>(server_cfg);
    stack::NetDevice::connect(client_host->device(), server_host->device());
    server = std::make_unique<NfsServer>(*server_host);
    NfsClient::Config cfg;
    cfg.server_ip = server_cfg.ip;
    client = std::make_unique<NfsClient>(*client_host, cfg, [this] {
      client_host->pump();
      server_host->pump();
      server->poll();
      server_host->pump();
      client_host->pump();
    });
  }
};

TEST(NfsEndToEnd, CreateWriteReadBack) {
  NfsNet net;
  const auto fh = net.client->create(kRootHandle, "hello.txt");
  ASSERT_TRUE(fh.has_value());
  std::vector<std::uint8_t> content;
  for (int i = 0; i < 1000; ++i)
    content.push_back(static_cast<std::uint8_t>(i * 7));
  ASSERT_TRUE(net.client->write(*fh, 0, content));
  const auto attr = net.client->getattr(*fh);
  ASSERT_TRUE(attr.has_value());
  EXPECT_EQ(attr->size, 1000u);
  EXPECT_FALSE(attr->is_dir);
  const auto back = net.client->read(*fh, 0, 2000);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, content);
  // Partial read at an offset.
  const auto window = net.client->read(*fh, 500, 16);
  ASSERT_TRUE(window.has_value());
  EXPECT_EQ(window->size(), 16u);
  EXPECT_EQ((*window)[0], content[500]);
}

TEST(NfsEndToEnd, LookupAndReaddir) {
  NfsNet net;
  for (const char* name : {"alpha", "beta", "gamma"})
    ASSERT_TRUE(net.client->create(kRootHandle, name).has_value());
  const auto found = net.client->lookup(kRootHandle, "beta");
  ASSERT_TRUE(found.has_value());
  EXPECT_FALSE(net.client->lookup(kRootHandle, "delta").has_value());
  const auto listing = net.client->readdir(kRootHandle);
  ASSERT_TRUE(listing.has_value());
  EXPECT_EQ(*listing, (std::vector<std::string>{"alpha", "beta", "gamma"}));
}

TEST(NfsEndToEnd, GetattrOnRoot) {
  NfsNet net;
  const auto attr = net.client->getattr(kRootHandle);
  ASSERT_TRUE(attr.has_value());
  EXPECT_TRUE(attr->is_dir);
}

TEST(NfsEndToEnd, StaleHandleFails) {
  NfsNet net;
  EXPECT_FALSE(net.client->getattr(424242).has_value());
  EXPECT_GT(net.server->stats().errors, 0u);
}

TEST(NfsEndToEnd, RetryAndDupCacheUnderLoss) {
  NfsNet net;
  // Lose the first copy of everything toward the server once in a while;
  // at-least-once retry plus the duplicate cache keep semantics exact.
  net.server_host->device().set_loss(0.4, 17);
  net.client_host->device().set_loss(0.4, 19);
  const auto fh = net.client->create(kRootHandle, "lossy.txt");
  ASSERT_TRUE(fh.has_value());
  std::vector<std::uint8_t> content(512, 0x3c);
  ASSERT_TRUE(net.client->write(*fh, 0, content));
  const auto back = net.client->read(*fh, 0, 1024);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, content);
  // A retried CREATE must return the *same* handle (dup cache or kExist).
  const auto again = net.client->create(kRootHandle, "lossy.txt");
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(*again, *fh);
  EXPECT_GT(net.client->stats().retries, 0u);
}

TEST(NfsEndToEnd, MetadataStormIsSmallMessages) {
  // The paper's observation: all NFS messages except READ replies and
  // WRITE calls are small. Measure the actual wire sizes of a metadata
  // workload.
  NfsNet net;
  for (int i = 0; i < 10; ++i) {
    const auto fh =
        net.client->create(kRootHandle, "f" + std::to_string(i));
    ASSERT_TRUE(fh.has_value());
    ASSERT_TRUE(net.client->getattr(*fh).has_value());
    ASSERT_TRUE(net.client->lookup(kRootHandle, "f" + std::to_string(i))
                    .has_value());
  }
  const auto& stats = net.server->stats();
  EXPECT_GE(stats.calls, 30u);
  // Mean message size across the metadata storm: well under 200 bytes.
  EXPECT_LT(stats.bytes_in / stats.calls, 200u);
  EXPECT_LT(stats.bytes_out / stats.calls, 200u);
}

TEST(NfsEndToEnd, WorksUnderLdlpScheduling) {
  NfsNet net(core::SchedMode::kLdlp);
  const auto fh = net.client->create(kRootHandle, "ldlp.txt");
  ASSERT_TRUE(fh.has_value());
  std::vector<std::uint8_t> content(256, 0x11);
  ASSERT_TRUE(net.client->write(*fh, 0, content));
  const auto back = net.client->read(*fh, 0, 256);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, content);
}

}  // namespace
}  // namespace ldlp::rpc
