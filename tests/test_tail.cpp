// Tail-at-scale RPC fan-out: determinism of the sweep engine, the
// LDLP-vs-conventional separation the bench reports, transport parity,
// and the chaos-soak scenario registry that runs the workload under
// fault plans.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>

#include "bench/soak_scenarios.hpp"
#include "obs/bench_result.hpp"
#include "obs/metrics.hpp"
#include "rpc/fanout.hpp"

namespace ldlp {
namespace {

rpc::TailSweepConfig small_sweep() {
  rpc::TailSweepConfig sweep;
  sweep.fanouts = {1, 4};
  sweep.base.requests = 60;
  sweep.base.rate_per_sec = 200.0;
  sweep.base.seed = 7;
  return sweep;
}

TEST(TailSweep, ByteIdenticalAcrossJobs) {
  // The sweep fans (mode, N) cells across a worker pool with
  // cell-indexed result slots; the emitted BENCH JSON must be
  // byte-identical for any worker count — that is what lets CI compare
  // the artifact against a checked-in baseline regardless of -j.
  const obs::BenchResult serial = rpc::run_tail_sweep(small_sweep(), 1);
  const obs::BenchResult parallel = rpc::run_tail_sweep(small_sweep(), 4);
  EXPECT_EQ(serial.to_json().dump(2), parallel.to_json().dump(2));
}

TEST(TailSweep, DeterministicInSeedAndCompletes) {
  const obs::BenchResult a = rpc::run_tail_sweep(small_sweep(), 2);
  const obs::BenchResult b = rpc::run_tail_sweep(small_sweep(), 2);
  EXPECT_EQ(a.to_json().dump(2), b.to_json().dump(2));
  // Every cell drained: completed == requests, no incompletes.
  for (const char* prefix : {"conv.", "ldlp."}) {
    for (const char* n : {"n1", "n4"}) {
      const std::string cell = std::string(prefix) + n;
      ASSERT_TRUE(a.metric(cell + ".completed").has_value()) << cell;
      EXPECT_EQ(a.metric(cell + ".completed").value(), 60.0) << cell;
      EXPECT_EQ(a.metric(cell + ".incomplete").value(), 0.0) << cell;
      EXPECT_GT(a.metric(cell + ".p99_sec").value(), 0.0) << cell;
      EXPECT_GE(a.metric(cell + ".p999_sec").value(),
                a.metric(cell + ".p50_sec").value())
          << cell;
    }
  }
}

TEST(TailWorkload, LdlpBeatsConventionalAtScale) {
  // The headline claim: under the calibrated per-message vs batched CPU
  // model, conventional processing's per-message overhead compounds with
  // fan-out degree while LDLP amortizes it — so at N=16 both the mean
  // and the p99 must clearly favour LDLP.
  rpc::TailRunConfig cfg;
  cfg.fanout = 16;
  cfg.requests = 80;
  cfg.rate_per_sec = 200.0;
  cfg.seed = 3;
  cfg.mode = core::SchedMode::kConventional;
  const rpc::TailRunResult conv = rpc::run_tail_workload(cfg);
  cfg.mode = core::SchedMode::kLdlp;
  const rpc::TailRunResult ldlp = rpc::run_tail_workload(cfg);
  ASSERT_TRUE(conv.ok);
  ASSERT_TRUE(ldlp.ok);
  EXPECT_LT(ldlp.mean_sec, conv.mean_sec);
  EXPECT_LT(ldlp.p99_sec, conv.p99_sec);
}

TEST(TailWorkload, TcpTransportDrains) {
  rpc::TailRunConfig cfg;
  cfg.fanout = 4;
  cfg.requests = 40;
  cfg.rate_per_sec = 100.0;
  cfg.seed = 5;
  cfg.fanout_cfg.transport = rpc::FanoutTransport::kTcp;
  const rpc::TailRunResult r = rpc::run_tail_workload(cfg);
  ASSERT_TRUE(r.ok);
  EXPECT_EQ(r.completed, 40u);
  EXPECT_GT(r.p99_sec, 0.0);
}

// ------------------------------------------------------ scenario registry

TEST(SoakScenarios, RegistryIsComplete) {
  // The regression that motivated the registry: a scenario added to the
  // sweep list but missed by the timeout table (or the --help text).
  // Every entry must be fully populated, and names must be unique.
  std::set<std::string> names;
  for (const soak::ScenarioInfo& def : soak::kScenarios) {
    ASSERT_NE(def.name, nullptr);
    EXPECT_FALSE(std::string(def.name).empty());
    EXPECT_TRUE(names.insert(def.name).second)
        << "duplicate scenario name " << def.name;
    EXPECT_NE(def.make, nullptr) << def.name;
    EXPECT_GT(def.seed_timeout_ms, 0u) << def.name;
    ASSERT_NE(def.blurb, nullptr) << def.name;
    EXPECT_FALSE(std::string(def.blurb).empty()) << def.name;
    // The maker must stamp its own registered name and the seed into the
    // schedule — replay and shrink artifacts key on both.
    const check::Schedule s = def.make(42);
    EXPECT_EQ(s.scenario, def.name);
    EXPECT_EQ(s.seed, 42u);
    EXPECT_FALSE(s.injectors.empty()) << def.name;
  }
  EXPECT_TRUE(names.count("tail") == 1)
      << "tail scenario missing from the registry";
}

TEST(SoakScenarios, LookupAndTimeoutDefaults) {
  for (const soak::ScenarioInfo& def : soak::kScenarios) {
    const soak::ScenarioInfo* found = soak::find_scenario(def.name);
    ASSERT_EQ(found, &def);
    EXPECT_EQ(soak::default_timeout_ms(def.name), def.seed_timeout_ms);
  }
  EXPECT_EQ(soak::find_scenario("no-such-scenario"), nullptr);
  // The default sweep budgets for its slowest member, and is never zero.
  std::uint64_t max_sweep_ms = 0;
  for (const soak::ScenarioInfo& def : soak::kScenarios)
    if (def.in_default_sweep)
      max_sweep_ms = std::max(max_sweep_ms, def.seed_timeout_ms);
  EXPECT_EQ(soak::default_timeout_ms(""), max_sweep_ms);
  EXPECT_GT(max_sweep_ms, 0u);
}

TEST(SoakScenarios, HelpListsEveryScenario) {
  const std::string help = soak::scenario_help();
  for (const soak::ScenarioInfo& def : soak::kScenarios) {
    EXPECT_NE(help.find(def.name), std::string::npos) << def.name;
    EXPECT_NE(help.find(def.blurb), std::string::npos) << def.name;
  }
}

}  // namespace
}  // namespace ldlp
