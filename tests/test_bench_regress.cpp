// The perf-regression gate, run as a tier-1 test (ctest label: bench-gate).
//
// Re-runs the fast deterministic gate benches (bench/regress_suite.hpp) and
// compares every metric against the checked-in baselines. A failure here
// means a change altered measured behaviour — either fix the change or,
// when the shift is intended, run `bench_regress --update` and commit the
// baseline diff alongside the code.
#include <gtest/gtest.h>

#include <string>

#include "bench/regress_suite.hpp"

#ifndef LDLP_BASELINE_DIR
#define LDLP_BASELINE_DIR "bench/baselines"
#endif

namespace {

using namespace ldlp;

TEST(BenchGate, AllCasesWithinBaselineTolerance) {
  for (const regress::GateCase& gate : regress::suite()) {
    const obs::BenchResult current = gate.run();
    std::string error;
    const auto baseline = obs::BenchResult::load_file(
        std::string(LDLP_BASELINE_DIR) + "/" + current.file_name(), &error);
    ASSERT_TRUE(baseline.has_value())
        << gate.name << ": baseline missing (" << error
        << ") — run `bench_regress --update` and commit bench/baselines";
    const obs::CompareReport report = obs::compare_results(*baseline, current);
    EXPECT_TRUE(report.pass)
        << gate.name << " regressed:\n" << report.describe();
  }
}

TEST(BenchGate, SuiteIsDeterministic) {
  // The whole gate rests on reruns reproducing: same seeds, same numbers.
  const obs::BenchResult a = regress::gate_synth();
  const obs::BenchResult b = regress::gate_synth();
  ASSERT_EQ(a.metrics.size(), b.metrics.size());
  for (std::size_t i = 0; i < a.metrics.size(); ++i) {
    EXPECT_EQ(a.metrics[i].first, b.metrics[i].first);
    EXPECT_DOUBLE_EQ(a.metrics[i].second, b.metrics[i].second)
        << a.metrics[i].first;
  }
}

TEST(BenchGate, PerturbedBaselineTrips) {
  // The acceptance test for the gate itself: drift one metric past the
  // tolerance and the comparison must fail (and name the metric).
  const obs::BenchResult current = regress::gate_blocking();
  ASSERT_FALSE(current.metrics.empty());

  obs::BenchResult perturbed = current;
  const std::string& key = perturbed.metrics.front().first;
  perturbed.metrics.front().second +=
      (perturbed.metrics.front().second + 1.0) * (current.tolerance + 1.0);

  const obs::CompareReport report = obs::compare_results(perturbed, current);
  EXPECT_FALSE(report.pass);
  bool named = false;
  for (const auto& row : report.rows)
    if (row.key == key && !row.pass) named = true;
  EXPECT_TRUE(named) << "failing metric must appear in the report";

  // Within-tolerance drift still passes.
  obs::BenchResult nudged = current;
  nudged.metrics.front().second *= 1.0 + current.tolerance * 0.5;
  nudged.tolerance = 0.10;
  EXPECT_TRUE(obs::compare_results(nudged, current).pass);
}

}  // namespace
