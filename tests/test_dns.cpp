// DNS tests: name and message codecs (including compression pointers and
// malformed input), server zone lookups with CNAME chasing, resolver
// caching (positive and negative), retry under loss, query coalescing —
// all end-to-end over the real UDP/IP/Ethernet stack.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "dns/resolver.hpp"

namespace ldlp::dns {
namespace {

using wire::ip_from_parts;

TEST(DnsName, EncodeDecodeRoundTrip) {
  for (const std::string name :
       {"example", "www.example.com", "a.b.c.d.e", "x"}) {
    std::vector<std::uint8_t> wire;
    ASSERT_TRUE(encode_name(name, wire)) << name;
    std::size_t pos = 0;
    const auto decoded = decode_name(wire, pos);
    ASSERT_TRUE(decoded.has_value()) << name;
    EXPECT_EQ(*decoded, name);
    EXPECT_EQ(pos, wire.size());
  }
}

TEST(DnsName, NormalizationLowercasesAndStripsDot) {
  EXPECT_EQ(normalize_name("WWW.Example.COM."), "www.example.com");
}

TEST(DnsName, RejectsOversizedLabels) {
  std::vector<std::uint8_t> wire;
  EXPECT_FALSE(encode_name(std::string(64, 'a') + ".com", wire));
  EXPECT_FALSE(encode_name("a..b", wire));  // empty label
}

TEST(DnsName, DecodesCompressionPointer) {
  // "ns.example" at offset 0; at offset 12 a name "www" + pointer to
  // offset 3 ("example").
  std::vector<std::uint8_t> msg;
  ASSERT_TRUE(encode_name("ns.example", msg));  // [0]=2 ns [3]=7 example 0
  msg.resize(12, 0);
  const std::size_t start = msg.size();
  msg.push_back(3);
  msg.push_back('w');
  msg.push_back('w');
  msg.push_back('w');
  msg.push_back(0xc0);
  msg.push_back(3);  // pointer to "example"
  std::size_t pos = start;
  const auto decoded = decode_name(msg, pos);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, "www.example");
  EXPECT_EQ(pos, msg.size());
}

TEST(DnsName, PointerLoopRejected) {
  std::vector<std::uint8_t> msg{0xc0, 0x00};  // points at itself
  std::size_t pos = 0;
  EXPECT_FALSE(decode_name(msg, pos).has_value());
}

TEST(DnsMsg, QueryRoundTrip) {
  const DnsMessage query = DnsMessage::query(0x1234, "Host.Example");
  const auto bytes = encode(query);
  ASSERT_FALSE(bytes.empty());
  EXPECT_LT(bytes.size(), 50u);  // a genuinely small message
  const auto decoded = decode(bytes);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->id, 0x1234);
  EXPECT_FALSE(decoded->is_response);
  ASSERT_EQ(decoded->questions.size(), 1u);
  EXPECT_EQ(decoded->questions[0].name, "host.example");
  EXPECT_EQ(decoded->questions[0].type, RType::kA);
}

TEST(DnsMsg, ResponseWithRecordsRoundTrip) {
  DnsMessage query = DnsMessage::query(7, "www.test");
  DnsMessage response = DnsMessage::response_to(query);
  response.authoritative = true;
  response.answers.push_back(
      ResourceRecord::cname("www.test", "host.test", 120));
  response.answers.push_back(
      ResourceRecord::a("host.test", ip_from_parts(10, 1, 2, 3), 300));
  const auto decoded = decode(encode(response));
  ASSERT_TRUE(decoded.has_value());
  EXPECT_TRUE(decoded->is_response);
  EXPECT_TRUE(decoded->authoritative);
  ASSERT_EQ(decoded->answers.size(), 2u);
  EXPECT_EQ(decoded->answers[0].target_name().value(), "host.test");
  EXPECT_EQ(decoded->answers[1].a_addr().value(), ip_from_parts(10, 1, 2, 3));
  EXPECT_EQ(decoded->answers[1].ttl, 300u);
}

TEST(DnsMsg, MalformedInputsRejected) {
  EXPECT_FALSE(decode(std::vector<std::uint8_t>(5, 0)).has_value());
  auto bytes = encode(DnsMessage::query(1, "a.b"));
  bytes.resize(bytes.size() - 2);  // truncated question
  EXPECT_FALSE(decode(bytes).has_value());
  // Absurd record counts.
  auto bomb = encode(DnsMessage::query(1, "a.b"));
  bomb[6] = 0xff;
  bomb[7] = 0xff;  // 65535 answers claimed
  EXPECT_FALSE(decode(bomb).has_value());
}

// ---- End-to-end fixtures ---------------------------------------------------

struct DnsNet {
  stack::HostConfig client_cfg;
  stack::HostConfig server_cfg;
  std::unique_ptr<stack::Host> client;
  std::unique_ptr<stack::Host> server;
  std::unique_ptr<DnsServer> dns;
  std::unique_ptr<DnsResolver> resolver;

  explicit DnsNet(core::SchedMode mode = core::SchedMode::kConventional) {
    client_cfg.name = "stub";
    client_cfg.mac = {2, 0, 0, 0, 0, 1};
    client_cfg.ip = ip_from_parts(10, 0, 0, 1);
    client_cfg.mode = mode;
    server_cfg.name = "ns";
    server_cfg.mac = {2, 0, 0, 0, 0, 2};
    server_cfg.ip = ip_from_parts(10, 0, 0, 2);
    server_cfg.mode = mode;
    client = std::make_unique<stack::Host>(client_cfg);
    server = std::make_unique<stack::Host>(server_cfg);
    stack::NetDevice::connect(client->device(), server->device());
    dns = std::make_unique<DnsServer>(*server);
    DnsResolver::Config cfg;
    cfg.server_ip = server_cfg.ip;
    resolver = std::make_unique<DnsResolver>(*client, cfg);
  }

  void settle(int rounds = 8) {
    for (int i = 0; i < rounds; ++i) {
      client->pump();
      server->pump();
      dns->poll();
      server->pump();
      client->pump();
      resolver->poll();
    }
  }

  void tick(double dt) {
    client->advance(dt);
    server->advance(dt);
    settle(2);
  }
};

TEST(DnsEndToEnd, ResolvesARecord) {
  DnsNet net;
  net.dns->add_a("host.test", ip_from_parts(10, 9, 9, 9));
  std::optional<std::uint32_t> result;
  net.resolver->resolve("HOST.TEST", [&](const std::string&, auto addr) {
    result = addr;
  });
  net.settle();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, ip_from_parts(10, 9, 9, 9));
  EXPECT_EQ(net.dns->stats().answered, 1u);
}

TEST(DnsEndToEnd, ChasesCnameChain) {
  DnsNet net;
  net.dns->add_cname("www.test", "web.test");
  net.dns->add_cname("web.test", "host.test");
  net.dns->add_a("host.test", ip_from_parts(10, 3, 3, 3));
  std::optional<std::uint32_t> result;
  net.resolver->resolve("www.test",
                        [&](const std::string&, auto addr) { result = addr; });
  net.settle();
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, ip_from_parts(10, 3, 3, 3));
}

TEST(DnsEndToEnd, NxDomainIsNegativelyCached) {
  DnsNet net;
  int callbacks = 0;
  std::optional<std::uint32_t> result = 1;  // sentinel
  net.resolver->resolve("nope.test", [&](const std::string&, auto addr) {
    ++callbacks;
    result = addr;
  });
  net.settle();
  EXPECT_EQ(callbacks, 1);
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(net.dns->stats().nxdomain, 1u);

  // Second lookup is served from the negative cache: no new query.
  const auto sent_before = net.resolver->stats().queries_sent;
  net.resolver->resolve("nope.test",
                        [&](const std::string&, auto) { ++callbacks; });
  EXPECT_EQ(callbacks, 2);
  EXPECT_EQ(net.resolver->stats().queries_sent, sent_before);
  EXPECT_EQ(net.resolver->stats().negative_hits, 1u);
}

TEST(DnsEndToEnd, PositiveCacheServesRepeats) {
  DnsNet net;
  net.dns->add_a("host.test", ip_from_parts(10, 1, 1, 1));
  int callbacks = 0;
  for (int i = 0; i < 5; ++i) {
    net.resolver->resolve("host.test",
                          [&](const std::string&, auto) { ++callbacks; });
    net.settle(4);
  }
  EXPECT_EQ(callbacks, 5);
  EXPECT_EQ(net.resolver->stats().queries_sent, 1u);
  EXPECT_EQ(net.resolver->stats().cache_hits, 4u);
}

TEST(DnsEndToEnd, ConcurrentLookupsCoalesce) {
  DnsNet net;
  net.dns->add_a("host.test", ip_from_parts(10, 1, 1, 1));
  int callbacks = 0;
  for (int i = 0; i < 4; ++i) {
    net.resolver->resolve("host.test",
                          [&](const std::string&, auto) { ++callbacks; });
  }
  EXPECT_EQ(net.resolver->inflight(), 1u);
  net.settle();
  EXPECT_EQ(callbacks, 4);
  EXPECT_EQ(net.resolver->stats().queries_sent, 1u);
}

TEST(DnsEndToEnd, RetriesThroughLoss) {
  DnsNet net;
  net.dns->add_a("host.test", ip_from_parts(10, 1, 1, 1));
  // Drop the first transmission toward the server; the retry gets through.
  net.server->device().set_loss(1.0, 3);
  std::optional<std::uint32_t> result;
  net.resolver->resolve("host.test",
                        [&](const std::string&, auto addr) { result = addr; });
  net.settle(2);
  net.server->device().set_loss(0.0);
  EXPECT_FALSE(result.has_value());
  for (int i = 0; i < 4 && !result.has_value(); ++i) net.tick(0.6);
  ASSERT_TRUE(result.has_value());
  EXPECT_GE(net.resolver->stats().retries, 1u);
}

TEST(DnsEndToEnd, RetryExhaustionFailsCleanly) {
  DnsNet net;
  net.dns->add_a("host.test", ip_from_parts(10, 1, 1, 1));
  net.server->device().set_loss(1.0, 5);  // server never hears us
  int callbacks = 0;
  std::optional<std::uint32_t> result = 1;
  net.resolver->resolve("host.test", [&](const std::string&, auto addr) {
    ++callbacks;
    result = addr;
  });
  // Retries back off 0.5/1/2/2s (capped), so exhaustion lands near t=6.6.
  for (int i = 0; i < 14; ++i) net.tick(0.6);
  EXPECT_EQ(callbacks, 1);
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(net.resolver->inflight(), 0u);
  EXPECT_EQ(net.resolver->stats().exhaustions_cached, 1u);
  // The failure is negatively cached only for failure_ttl (0.25 s) —
  // long since expired by now, so a later lookup tries the wire again.
  const auto sent = net.resolver->stats().queries_sent;
  net.resolver->resolve("host.test", [&](const std::string&, auto) {});
  EXPECT_GT(net.resolver->stats().queries_sent, sent);
}

/// Drive one lookup to retry exhaustion against a black-holed server.
/// Returns the number of 0.05 s ticks it took.
int exhaust_lookup(DnsNet& net, const std::string& name) {
  int callbacks = 0;
  net.resolver->resolve(name, [&](const std::string&, auto) { ++callbacks; });
  int ticks = 0;
  while (callbacks == 0 && ticks < 400) {
    net.tick(0.05);
    ++ticks;
  }
  EXPECT_EQ(callbacks, 1) << "lookup never exhausted";
  return ticks;
}

TEST(DnsEndToEnd, ExhaustionNegativelyCachedBriefly) {
  DnsNet net;
  net.dns->add_a("host.test", ip_from_parts(10, 1, 1, 1));
  net.server->device().set_loss(1.0, 5);  // server never hears us
  exhaust_lookup(net, "host.test");

  // Within failure_ttl a retry storm is absorbed by the cache: the
  // repeat lookup fails instantly without touching the wire.
  const auto sent = net.resolver->stats().queries_sent;
  int callbacks = 0;
  std::optional<std::uint32_t> result = 1;
  net.resolver->resolve("host.test", [&](const std::string&, auto addr) {
    ++callbacks;
    result = addr;
  });
  EXPECT_EQ(callbacks, 1);
  EXPECT_FALSE(result.has_value());
  EXPECT_EQ(net.resolver->stats().queries_sent, sent);
  EXPECT_EQ(net.resolver->stats().negative_hits, 1u);
  EXPECT_EQ(net.resolver->inflight(), 0u);
}

TEST(DnsEndToEnd, ConsecutiveExhaustionsDoubleTheNegativeTtl) {
  DnsNet net;
  net.dns->add_a("host.test", ip_from_parts(10, 1, 1, 1));
  net.server->device().set_loss(1.0, 5);
  exhaust_lookup(net, "host.test");

  // Past the first 0.25 s TTL: the entry is stale and a full retry
  // cycle runs again, ending in a second exhaustion.
  net.tick(0.3);
  exhaust_lookup(net, "host.test");
  EXPECT_EQ(net.resolver->stats().exhaustions_cached, 2u);

  // The second failure doubled the TTL to 0.5 s, so 0.3 s later the
  // negative entry is still live — a first-failure TTL would have
  // expired and sent another query.
  net.tick(0.3);
  const auto sent = net.resolver->stats().queries_sent;
  int callbacks = 0;
  net.resolver->resolve("host.test",
                        [&](const std::string&, auto) { ++callbacks; });
  EXPECT_EQ(callbacks, 1);
  EXPECT_EQ(net.resolver->stats().queries_sent, sent);
  EXPECT_GE(net.resolver->stats().negative_hits, 1u);
}

TEST(DnsEndToEnd, HealedPathResolvesOnceNegativeTtlExpires) {
  DnsNet net;
  net.dns->add_a("host.test", ip_from_parts(10, 1, 1, 1));
  net.server->device().set_loss(1.0, 5);
  exhaust_lookup(net, "host.test");

  // The path heals. The short negative TTL must not wedge recovery:
  // once it lapses, the next lookup goes to the wire and succeeds.
  net.server->device().set_loss(0.0);
  net.tick(0.3);
  bool done = false;
  std::optional<std::uint32_t> result;
  net.resolver->resolve("host.test", [&](const std::string&, auto addr) {
    done = true;
    result = addr;
  });
  // Allow an ARP round trip (the request died with the old path) plus a
  // query retry before the answer lands.
  for (int i = 0; i < 60 && !done; ++i) net.tick(0.1);
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, ip_from_parts(10, 1, 1, 1));
  EXPECT_GE(net.resolver->stats().answers, 1u);
}

TEST(DnsEndToEnd, CacheEntryExpiresByTtl) {
  DnsNet net;
  net.dns->add_a("host.test", ip_from_parts(10, 1, 1, 1), /*ttl=*/5);
  int callbacks = 0;
  net.resolver->resolve("host.test",
                        [&](const std::string&, auto) { ++callbacks; });
  net.settle();
  ASSERT_EQ(callbacks, 1);
  ASSERT_EQ(net.resolver->stats().queries_sent, 1u);

  // Within TTL: served from cache.
  net.tick(2.0);
  net.resolver->resolve("host.test",
                        [&](const std::string&, auto) { ++callbacks; });
  EXPECT_EQ(callbacks, 2);
  EXPECT_EQ(net.resolver->stats().queries_sent, 1u);

  // Past TTL: the entry is stale and a fresh query goes out.
  for (int i = 0; i < 4; ++i) net.tick(2.0);
  net.resolver->resolve("host.test",
                        [&](const std::string&, auto) { ++callbacks; });
  net.settle();
  EXPECT_EQ(callbacks, 3);
  EXPECT_EQ(net.resolver->stats().queries_sent, 2u);
}

TEST(DnsEndToEnd, BurstOfLookupsUnderLdlp) {
  DnsNet net(core::SchedMode::kLdlp);
  for (int i = 0; i < 30; ++i) {
    net.dns->add_a("h" + std::to_string(i) + ".test",
                   ip_from_parts(10, 0, 1, static_cast<std::uint8_t>(i)));
  }
  // Warm the ARP cache: an unresolved next hop parks only a handful of
  // packets (as in BSD), which would eat most of a cold burst.
  net.dns->add_a("warm.test", ip_from_parts(10, 0, 1, 200));
  net.resolver->resolve("warm.test", [](const std::string&, auto) {});
  net.settle();
  int resolved = 0;
  for (int i = 0; i < 30; ++i) {
    net.resolver->resolve("h" + std::to_string(i) + ".test",
                          [&](const std::string&, auto addr) {
                            if (addr.has_value()) ++resolved;
                          });
  }
  net.settle();
  EXPECT_EQ(resolved, 30);
  // The burst of 30 queries crossed the server's stack in batches.
  EXPECT_GT(net.server->eth().stats().mean_batch(), 2.0);
}

}  // namespace
}  // namespace ldlp::dns
