// Integration-style tests of the lower stack: device wire, ARP resolution,
// Ethernet demux, IP validation/fragmentation/reassembly, ICMP echo, UDP.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "stack/host.hpp"
#include "stack/reassembly.hpp"
#include "wire/checksum.hpp"
#include "wire/udp.hpp"

namespace ldlp::stack {
namespace {

using wire::ip_from_parts;

struct Pair {
  HostConfig ca;
  HostConfig cb;
  std::unique_ptr<Host> a;
  std::unique_ptr<Host> b;

  explicit Pair(core::SchedMode mode = core::SchedMode::kConventional,
                std::uint16_t mtu = 1500) {
    ca.name = "a";
    ca.mac = {2, 0, 0, 0, 0, 1};
    ca.ip = ip_from_parts(10, 0, 0, 1);
    ca.mode = mode;
    ca.mtu = mtu;
    cb.name = "b";
    cb.mac = {2, 0, 0, 0, 0, 2};
    cb.ip = ip_from_parts(10, 0, 0, 2);
    cb.mode = mode;
    cb.mtu = mtu;
    a = std::make_unique<Host>(ca);
    b = std::make_unique<Host>(cb);
    NetDevice::connect(a->device(), b->device());
  }

  void settle(int rounds = 10) {
    for (int i = 0; i < rounds; ++i) {
      a->pump();
      b->pump();
    }
  }
};

std::vector<std::uint8_t> bytes_of(const std::string& s) {
  return {s.begin(), s.end()};
}

TEST(Device, WireCopiesFrames) {
  Pair net;
  buf::Packet frame = buf::Packet::make(net.a->pool());
  std::vector<std::uint8_t> payload(100, 0x5a);
  ASSERT_TRUE(frame.append(payload));
  std::uint8_t* front = frame.prepend(wire::kEthHeaderLen);
  ASSERT_NE(front, nullptr);
  wire::EthHeader eth;
  eth.dst = net.cb.mac;
  eth.src = net.ca.mac;
  eth.ether_type = 0x0800;
  wire::write_eth(eth, {front, wire::kEthHeaderLen});
  ASSERT_TRUE(net.a->device().transmit(std::move(frame)));
  EXPECT_EQ(net.b->device().rx_pending(), 1u);
  buf::Packet got = net.b->device().receive();
  ASSERT_TRUE(got);
  EXPECT_EQ(got.length(), 114u);
  EXPECT_EQ(net.b->device().stats().rx_frames, 1u);
}

TEST(Device, OversizedFrameDropped) {
  Pair net;
  std::vector<std::uint8_t> huge(2000, 1);
  buf::Packet frame = buf::Packet::from_bytes(net.a->pool(), huge);
  EXPECT_FALSE(net.a->device().transmit(std::move(frame)));
  EXPECT_EQ(net.a->device().stats().tx_drops, 1u);
}

TEST(Device, LossInjectionDrops) {
  Pair net;
  net.b->device().set_loss(1.0);
  buf::Packet frame =
      buf::Packet::from_bytes(net.a->pool(), std::vector<std::uint8_t>(64, 0));
  std::uint8_t* front = frame.prepend(0);
  (void)front;
  (void)net.a->device().transmit(std::move(frame));
  EXPECT_EQ(net.b->device().rx_pending(), 0u);
  EXPECT_EQ(net.b->device().stats().rx_drops, 1u);
}

TEST(Udp, SendReceiveWithArpResolution) {
  Pair net;
  const SocketId rx_sock = net.b->sockets().create(SocketKind::kDatagram);
  ASSERT_TRUE(net.b->udp().bind(9000, rx_sock));

  const auto payload = bytes_of("hello, small message");
  // First send triggers ARP: the datagram is parked, a request goes out,
  // the reply returns, and the parked datagram is released.
  net.a->udp().send(9001, net.cb.ip, 9000, payload);
  net.settle();

  ASSERT_EQ(net.b->sockets().pending_datagrams(rx_sock), 1u);
  const auto dgram = net.b->sockets().read_datagram(rx_sock);
  ASSERT_TRUE(dgram.has_value());
  EXPECT_EQ(dgram->payload, payload);
  EXPECT_EQ(dgram->from_ip, net.ca.ip);
  EXPECT_EQ(dgram->from_port, 9001);
  EXPECT_GT(net.a->eth().arp().entries(), 0u);

  // Second send goes straight through the warm ARP cache.
  net.a->udp().send(9001, net.cb.ip, 9000, payload);
  net.settle(2);
  EXPECT_EQ(net.b->sockets().pending_datagrams(rx_sock), 1u);
}

TEST(Udp, UnboundPortCounted) {
  Pair net;
  net.a->udp().send(1, net.cb.ip, 4242, bytes_of("x"));
  net.settle();
  EXPECT_EQ(net.b->udp().udp_stats().rx_no_port, 1u);
}

TEST(Udp, BindConflictRefused) {
  Pair net;
  const SocketId s1 = net.b->sockets().create(SocketKind::kDatagram);
  const SocketId s2 = net.b->sockets().create(SocketKind::kDatagram);
  EXPECT_TRUE(net.b->udp().bind(5000, s1));
  EXPECT_FALSE(net.b->udp().bind(5000, s2));
  net.b->udp().unbind(5000);
  EXPECT_TRUE(net.b->udp().bind(5000, s2));
}

TEST(Ip, FragmentationAndReassembly) {
  Pair net(core::SchedMode::kConventional, 600);  // small MTU forces frags
  const SocketId rx_sock = net.b->sockets().create(SocketKind::kDatagram);
  ASSERT_TRUE(net.b->udp().bind(7000, rx_sock));

  std::vector<std::uint8_t> big(2500);
  for (std::size_t i = 0; i < big.size(); ++i)
    big[i] = static_cast<std::uint8_t>(i * 13);
  net.a->udp().send(7001, net.cb.ip, 7000, big);
  net.settle();

  EXPECT_GT(net.a->ip().ip_stats().tx_fragmented, 0u);
  EXPECT_GT(net.b->ip().ip_stats().rx_fragments, 0u);
  EXPECT_EQ(net.b->ip().ip_stats().rx_reassembled, 1u);
  const auto dgram = net.b->sockets().read_datagram(rx_sock);
  ASSERT_TRUE(dgram.has_value());
  EXPECT_EQ(dgram->payload, big);
}

TEST(Ip, IcmpEchoReplied) {
  Pair net;
  // Build an ICMP echo request by hand and push it through A's IP output.
  std::vector<std::uint8_t> icmp(16, 0);
  icmp[0] = 8;  // echo request
  icmp[4] = 0x12;
  icmp[5] = 0x34;  // identifier
  const std::uint16_t sum = wire::cksum_simple(icmp);
  icmp[2] = static_cast<std::uint8_t>(sum >> 8);
  icmp[3] = static_cast<std::uint8_t>(sum);
  buf::Packet pkt = buf::Packet::from_bytes(net.a->pool(), icmp);
  net.a->ip().output(std::move(pkt), net.cb.ip, wire::IpProto::kIcmp);
  net.settle();
  EXPECT_EQ(net.b->ip().ip_stats().rx_icmp_echo, 1u);
  // A receives the reply (delivered to ICMP handler; not an echo request,
  // so consumed silently — verify it arrived at IP intact).
  EXPECT_GE(net.a->ip().ip_stats().rx, 1u);
  EXPECT_EQ(net.a->ip().ip_stats().rx_bad, 0u);
}

TEST(Ip, ForeignDestinationIgnored) {
  Pair net;
  const SocketId rx_sock = net.b->sockets().create(SocketKind::kDatagram);
  ASSERT_TRUE(net.b->udp().bind(7000, rx_sock));
  // Prime the ARP cache so the bogus-destination datagram actually goes
  // out on the wire toward B's MAC.
  net.a->udp().send(1, net.cb.ip, 7000, bytes_of("warm"));
  net.settle();
  net.a->eth().arp().insert(ip_from_parts(10, 0, 0, 77), net.cb.mac);
  net.a->udp().send(1, ip_from_parts(10, 0, 0, 77), 7000, bytes_of("lost"));
  net.settle();
  EXPECT_EQ(net.b->ip().ip_stats().rx_not_mine, 1u);
  EXPECT_EQ(net.b->sockets().pending_datagrams(rx_sock), 1u);  // only "warm"
}

TEST(Reassembly, OutOfOrderFragmentsComplete) {
  buf::MbufPool pool(64, 16);
  ReassemblyTable table;
  wire::Ipv4Header base;
  base.src = 1;
  base.dst = 2;
  base.ident = 42;
  base.protocol = 17;

  auto frag = [&](std::uint16_t offset8, std::uint32_t len, bool more) {
    wire::Ipv4Header h = base;
    h.frag_offset = offset8;
    h.more_fragments = more;
    std::vector<std::uint8_t> payload(len);
    for (std::uint32_t i = 0; i < len; ++i)
      payload[i] = static_cast<std::uint8_t>(offset8 * 8 + i);
    return std::pair{h, buf::Packet::from_bytes(pool, payload)};
  };

  // Deliver middle, last, first.
  auto [h2, p2] = frag(100, 800, true);
  EXPECT_FALSE(table.offer(h2, std::move(p2), 0.0).has_value());
  auto [h3, p3] = frag(200, 100, false);
  EXPECT_FALSE(table.offer(h3, std::move(p3), 0.0).has_value());
  auto [h1, p1] = frag(0, 800, true);
  auto whole = table.offer(h1, std::move(p1), 0.0);
  ASSERT_TRUE(whole.has_value());
  EXPECT_EQ(whole->length(), 1700u);
  std::uint8_t probe[4];
  ASSERT_TRUE(whole->copy_out(800, probe));
  EXPECT_EQ(probe[0], static_cast<std::uint8_t>(800));
  EXPECT_EQ(table.pending(), 0u);
}

TEST(Reassembly, DuplicateFragmentIgnored) {
  buf::MbufPool pool(64, 16);
  ReassemblyTable table;
  wire::Ipv4Header h;
  h.src = 1;
  h.dst = 2;
  h.ident = 7;
  h.protocol = 17;
  h.more_fragments = true;
  EXPECT_FALSE(table
                   .offer(h, buf::Packet::from_bytes(
                                 pool, std::vector<std::uint8_t>(8, 1)),
                          0.0)
                   .has_value());
  EXPECT_FALSE(table
                   .offer(h, buf::Packet::from_bytes(
                                 pool, std::vector<std::uint8_t>(8, 2)),
                          0.0)
                   .has_value());
  EXPECT_EQ(table.stats().fragments_in, 2u);
  EXPECT_EQ(table.pending(), 1u);
}

TEST(Reassembly, TimeoutExpiresStaleDatagrams) {
  buf::MbufPool pool(64, 16);
  ReassemblyTable table(64, 30.0);
  wire::Ipv4Header h;
  h.ident = 9;
  h.protocol = 17;
  h.more_fragments = true;
  (void)table.offer(
      h, buf::Packet::from_bytes(pool, std::vector<std::uint8_t>(8, 0)), 0.0);
  table.expire(10.0);
  EXPECT_EQ(table.pending(), 1u);
  table.expire(31.0);
  EXPECT_EQ(table.pending(), 0u);
  EXPECT_EQ(table.stats().timeouts, 1u);
}

TEST(Arp, RequestOnlyOncePerDestination) {
  Pair net;
  // Two sends before any reply: only one ARP request should leave.
  net.a->udp().send(1, net.cb.ip, 5555, bytes_of("one"));
  net.a->udp().send(1, net.cb.ip, 5555, bytes_of("two"));
  EXPECT_EQ(net.a->device().stats().tx_frames, 1u);  // single ARP request
  net.settle();
  // Both datagrams eventually delivered (parked then released).
  EXPECT_EQ(net.b->udp().udp_stats().rx, 2u);
}

TEST(Ip, RouteSelectionPicksGateway) {
  Pair net;
  // A "remote" destination routed via B as gateway: the frame's IP dst
  // stays remote while the Ethernet next hop resolves to B.
  const std::uint32_t remote = ip_from_parts(192, 168, 7, 7);
  net.a->ip().add_route(Route{ip_from_parts(192, 168, 0, 0),
                              ip_from_parts(255, 255, 0, 0), net.cb.ip});
  net.a->udp().send(1, remote, 7000, bytes_of("via-gw"));
  net.settle();
  // B receives the frame (ARP resolved to B) but the datagram is not for
  // B's IP, so IP counts it as not-mine — proving the gateway path.
  EXPECT_EQ(net.b->ip().ip_stats().rx_not_mine, 1u);
}

TEST(Ip, DefaultRouteFallsBackToOnLink) {
  Pair net;
  // No matching route: next hop is the destination itself (on-link).
  const SocketId rx_sock = net.b->sockets().create(SocketKind::kDatagram);
  ASSERT_TRUE(net.b->udp().bind(7000, rx_sock));
  net.a->ip().add_route(Route{ip_from_parts(172, 16, 0, 0),
                              ip_from_parts(255, 255, 0, 0),
                              ip_from_parts(172, 16, 0, 1)});
  net.a->udp().send(1, net.cb.ip, 7000, bytes_of("direct"));
  net.settle();
  EXPECT_EQ(net.b->sockets().pending_datagrams(rx_sock), 1u);
}

TEST(Udp, CorruptChecksumDropped) {
  Pair net;
  const SocketId rx_sock = net.b->sockets().create(SocketKind::kDatagram);
  ASSERT_TRUE(net.b->udp().bind(7000, rx_sock));

  // Hand-craft a full Ethernet+IP+UDP frame whose UDP checksum is wrong
  // and inject it straight into B's device RX ring.
  std::vector<std::uint8_t> frame(wire::kEthHeaderLen +
                                  wire::kIpMinHeaderLen +
                                  wire::kUdpHeaderLen + 4);
  wire::EthHeader eth;
  eth.dst = net.cb.mac;
  eth.src = net.ca.mac;
  eth.ether_type = static_cast<std::uint16_t>(wire::EtherType::kIpv4);
  wire::write_eth(eth, frame);

  wire::Ipv4Header ip;
  ip.total_len = wire::kIpMinHeaderLen + wire::kUdpHeaderLen + 4;
  ip.protocol = static_cast<std::uint8_t>(wire::IpProto::kUdp);
  ip.src = net.ca.ip;
  ip.dst = net.cb.ip;
  wire::write_ipv4(ip, {frame.data() + wire::kEthHeaderLen,
                        wire::kIpMinHeaderLen});

  wire::UdpHeader udp{1, 7000, wire::kUdpHeaderLen + 4, 0xdead};  // bogus sum
  wire::write_udp(udp, {frame.data() + wire::kEthHeaderLen +
                            wire::kIpMinHeaderLen,
                        wire::kUdpHeaderLen});

  net.b->device().inject(frame);
  net.settle(2);
  EXPECT_EQ(net.b->sockets().pending_datagrams(rx_sock), 0u);
  EXPECT_EQ(net.b->udp().udp_stats().rx_bad, 1u);
}

TEST(Sockets, ReceiveBufferOverflowCounted) {
  Pair net;
  const SocketId rx_sock =
      net.b->sockets().create(SocketKind::kDatagram, 64);  // tiny buffer
  ASSERT_TRUE(net.b->udp().bind(7000, rx_sock));
  for (int i = 0; i < 8; ++i)
    net.a->udp().send(1, net.cb.ip, 7000, std::vector<std::uint8_t>(32, i));
  net.settle();
  EXPECT_LE(net.b->sockets().pending_datagrams(rx_sock), 2u);
  EXPECT_GT(net.b->sockets().socket_stats(rx_sock).overflows, 0u);
}

TEST(Scheduling, LdlpAndConventionalDeliverSameData) {
  for (const auto mode :
       {core::SchedMode::kConventional, core::SchedMode::kLdlp}) {
    Pair net(mode);
    const SocketId rx_sock = net.b->sockets().create(SocketKind::kDatagram);
    ASSERT_TRUE(net.b->udp().bind(8080, rx_sock));
    // Warm the ARP cache first (a cold cache parks at most a handful of
    // packets per unresolved destination, as in BSD).
    net.a->udp().send(8081, net.cb.ip, 8080, bytes_of("warm"));
    net.settle();
    ASSERT_TRUE(net.b->sockets().read_datagram(rx_sock).has_value());
    for (int i = 0; i < 20; ++i)
      net.a->udp().send(8081, net.cb.ip, 8080, bytes_of(std::to_string(i)));
    net.settle();
    EXPECT_EQ(net.b->sockets().pending_datagrams(rx_sock), 20u);
    // In-order delivery either way.
    for (int i = 0; i < 20; ++i) {
      const auto dgram = net.b->sockets().read_datagram(rx_sock);
      ASSERT_TRUE(dgram.has_value());
      EXPECT_EQ(dgram->payload, bytes_of(std::to_string(i)));
    }
  }
}

}  // namespace
}  // namespace ldlp::stack
