// Unit tests for the common substrate: RNG, statistics, histogram, ring
// buffer, intrusive list, byte-order helpers.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <vector>

#include "common/byteorder.hpp"
#include "common/histogram.hpp"
#include "common/intrusive_list.hpp"
#include "common/ring.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"

namespace ldlp {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, BoundedNeverReachesBound) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(rng.bounded(17), 17u);
}

TEST(Rng, BoundedCoversSmallRange) {
  Rng rng(11);
  std::vector<int> seen(5, 0);
  for (int i = 0; i < 5000; ++i) ++seen[rng.bounded(5)];
  for (int count : seen) EXPECT_GT(count, 800);
}

TEST(Rng, RangeInclusive) {
  Rng rng(13);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.range(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, ExponentialMeanConverges) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.exponential(2.5));
  EXPECT_NEAR(stats.mean(), 2.5, 0.05);
}

TEST(Rng, ParetoRespectsMinimum) {
  Rng rng(19);
  for (int i = 0; i < 10000; ++i) EXPECT_GE(rng.pareto(1.5, 0.75), 0.75);
}

TEST(Rng, ParetoMeanMatchesFormula) {
  Rng rng(23);
  RunningStats stats;
  const double alpha = 3.0;  // finite variance for a stable test
  const double xm = 1.0;
  for (int i = 0; i < 100000; ++i) stats.add(rng.pareto(alpha, xm));
  EXPECT_NEAR(stats.mean(), alpha * xm / (alpha - 1.0), 0.03);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(31);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (parent() == child()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RunningStats, BasicMoments) {
  RunningStats stats;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) stats.add(v);
  EXPECT_EQ(stats.count(), 8u);
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  EXPECT_NEAR(stats.stddev(), 2.138, 0.001);  // sample stddev
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 40.0);
}

TEST(RunningStats, EmptyIsSafe) {
  RunningStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_EQ(stats.mean(), 0.0);
  EXPECT_EQ(stats.variance(), 0.0);
}

TEST(RunningStats, MergeMatchesSequential) {
  Rng rng(37);
  RunningStats whole;
  RunningStats left;
  RunningStats right;
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.uniform(-5, 5);
    whole.add(v);
    (i % 2 == 0 ? left : right).add(v);
  }
  left.merge(right);
  EXPECT_EQ(left.count(), whole.count());
  EXPECT_NEAR(left.mean(), whole.mean(), 1e-12);
  EXPECT_NEAR(left.variance(), whole.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(left.min(), whole.min());
  EXPECT_DOUBLE_EQ(left.max(), whole.max());
}

TEST(RunningStats, MergeWithEmpty) {
  RunningStats a;
  a.add(1.0);
  RunningStats b;
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);
  EXPECT_EQ(b.count(), 1u);
  EXPECT_DOUBLE_EQ(b.mean(), 1.0);
}

TEST(LogHistogram, QuantilesOrdered) {
  LogHistogram h(1e-6, 10.0);
  Rng rng(41);
  for (int i = 0; i < 10000; ++i) h.add(rng.exponential(0.01));
  EXPECT_LE(h.quantile(0.1), h.p50());
  EXPECT_LE(h.p50(), h.p99());
  EXPECT_NEAR(h.p50(), 0.00693, 0.001);  // median of exp(mean=0.01)
}

TEST(LogHistogram, MeanIsExact) {
  LogHistogram h(1e-6, 10.0);
  h.add(0.5);
  h.add(1.5);
  EXPECT_DOUBLE_EQ(h.mean(), 1.0);
  EXPECT_EQ(h.count(), 2u);
}

TEST(LogHistogram, UnderOverflowCaptured) {
  LogHistogram h(1e-3, 1.0);
  h.add(1e-9);
  h.add(100.0);
  EXPECT_EQ(h.count(), 2u);
  EXPECT_LE(h.quantile(0.0), 1e-3);
  EXPECT_GE(h.quantile(1.0), 1.0);
}

TEST(LogHistogram, MergeAddsCounts) {
  LogHistogram a(1e-6, 10.0);
  LogHistogram b(1e-6, 10.0);
  a.add(0.1);
  b.add(0.2);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
}

TEST(Ring, PushPopFifo) {
  Ring<int, 4> ring;
  EXPECT_TRUE(ring.empty());
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.push(i));
  EXPECT_TRUE(ring.full());
  EXPECT_FALSE(ring.push(99));
  for (int i = 0; i < 4; ++i) EXPECT_EQ(ring.pop().value(), i);
  EXPECT_FALSE(ring.pop().has_value());
}

TEST(Ring, WrapsAround) {
  Ring<int, 3> ring;
  for (int round = 0; round < 10; ++round) {
    EXPECT_TRUE(ring.push(round));
    EXPECT_EQ(ring.pop().value(), round);
  }
  EXPECT_TRUE(ring.empty());
}

struct Node {
  int value = 0;
  ListHook hook;
};

TEST(IntrusiveList, PushPopOrder) {
  IntrusiveList<Node> list;
  Node nodes[3];
  for (int i = 0; i < 3; ++i) {
    nodes[i].value = i;
    list.push_back(nodes[i]);
  }
  EXPECT_EQ(list.size(), 3u);
  EXPECT_EQ(list.front()->value, 0);
  EXPECT_EQ(list.back()->value, 2);
  EXPECT_EQ(list.pop_front()->value, 0);
  EXPECT_EQ(list.pop_front()->value, 1);
  EXPECT_EQ(list.pop_front()->value, 2);
  EXPECT_TRUE(list.empty());
}

TEST(IntrusiveList, RemoveFromMiddle) {
  IntrusiveList<Node> list;
  Node nodes[3];
  for (auto& n : nodes) list.push_back(n);
  list.remove(nodes[1]);
  EXPECT_EQ(list.size(), 2u);
  EXPECT_EQ(list.pop_front(), &nodes[0]);
  EXPECT_EQ(list.pop_front(), &nodes[2]);
}

TEST(IntrusiveList, ForEachSupportsUnlink) {
  IntrusiveList<Node> list;
  Node nodes[4];
  for (int i = 0; i < 4; ++i) {
    nodes[i].value = i;
    list.push_back(nodes[i]);
  }
  list.for_each([&](Node& n) {
    if (n.value % 2 == 0) list.remove(n);
  });
  EXPECT_EQ(list.size(), 2u);
}

TEST(IntrusiveList, SpliceBack) {
  IntrusiveList<Node> a;
  IntrusiveList<Node> b;
  Node nodes[4];
  a.push_back(nodes[0]);
  a.push_back(nodes[1]);
  b.push_back(nodes[2]);
  b.push_back(nodes[3]);
  a.splice_back(b);
  EXPECT_EQ(a.size(), 4u);
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(a.back(), &nodes[3]);
}

TEST(ByteOrder, RoundTrips) {
  std::uint8_t buf[8];
  store_be16(buf, 0xbeef);
  EXPECT_EQ(load_be16(buf), 0xbeef);
  store_be32(buf, 0xdeadbeef);
  EXPECT_EQ(load_be32(buf), 0xdeadbeefu);
  store_be64(buf, 0x0123456789abcdefULL);
  EXPECT_EQ(load_be64(buf), 0x0123456789abcdefULL);
  EXPECT_EQ(buf[0], 0x01);  // big-endian byte order on the wire
  EXPECT_EQ(buf[7], 0xef);
}

TEST(ByteReader, BoundsChecked) {
  const std::uint8_t data[] = {1, 2, 3};
  ByteReader r({data, 3});
  EXPECT_EQ(r.u8(), 1);
  EXPECT_EQ(r.be16(), 0x0203);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.u8(), 0);  // past the end
  EXPECT_FALSE(r.ok());
}

TEST(ByteWriter, FailsClosedWhenFull) {
  std::uint8_t buf[3];
  ByteWriter w(buf);
  w.be16(0x1122);
  w.be16(0x3344);  // does not fit
  EXPECT_FALSE(w.ok());
  EXPECT_EQ(w.position(), 2u);
}

TEST(ByteReaderWriter, MixedRoundTrip) {
  std::uint8_t buf[32];
  ByteWriter w(buf);
  w.u8(0x42);
  w.be32(123456);
  const std::uint8_t blob[] = {9, 8, 7};
  w.bytes(blob);
  w.fill(0xee, 2);
  ASSERT_TRUE(w.ok());

  ByteReader r({buf, w.position()});
  EXPECT_EQ(r.u8(), 0x42);
  EXPECT_EQ(r.be32(), 123456u);
  auto view = r.bytes(3);
  ASSERT_EQ(view.size(), 3u);
  EXPECT_EQ(view[2], 7);
  EXPECT_EQ(r.be16(), 0xeeee);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.remaining(), 0u);
}

}  // namespace
}  // namespace ldlp
