// ldlp::overlay — HyParView membership + PlumTree dissemination.
//
// Fine-grain protocol tests drive a small fat-tree fleet directly (join
// propagation, shuffle merge, prune-on-duplicate); scenario-grain tests
// reuse run_gossip_sim — the exact code the chaos soak and the perf gate
// run — for repair-after-churn, the enable_repair mutation check and the
// ddmin shrink of a failing gossip schedule.
#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <queue>
#include <set>
#include <string>
#include <vector>

#include "bench/soak_scenarios.hpp"
#include "check/shrink.hpp"
#include "fault/fault_plan.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "overlay/gossip_sim.hpp"
#include "overlay/overlay.hpp"

namespace ldlp {
namespace {

/// A polled overlay fleet on a small fat tree, no faults: the harness
/// the fine-grain membership tests drive.
struct MiniFleet {
  net::Fabric fabric;
  std::vector<net::HostId> hosts;
  std::vector<std::unique_ptr<overlay::OverlayNode>> nodes;

  explicit MiniFleet(std::size_t racks, std::size_t hosts_per_rack,
                     overlay::OverlayConfig cfg = {}) {
    net::FatTreeConfig topo;
    topo.racks = racks;
    topo.hosts_per_rack = hosts_per_rack;
    topo.spines = 1;
    topo.proto.mode = core::SchedMode::kLdlp;
    hosts = net::build_fat_tree(fabric, topo);
    for (std::size_t i = 0; i < hosts.size(); ++i)
      nodes.push_back(std::make_unique<overlay::OverlayNode>(
          fabric.host(hosts[i]), net::host_ip(static_cast<std::uint32_t>(i)),
          cfg));
    fabric.set_pass_hook([this] {
      const double now = fabric.now();
      for (auto& node : nodes) node->poll(now);
    });
  }

  /// Staggered joins through node 0 (node 0's own contact is node 1).
  void join_all(double window_sec) {
    for (std::size_t i = 0; i < nodes.size(); ++i)
      nodes[i]->join(net::host_ip(i == 0 ? 1 : 0),
                     window_sec * static_cast<double>(i) /
                         static_cast<double>(nodes.size()));
  }

  /// BFS over symmetric active links: true when one component spans the
  /// whole fleet.
  [[nodiscard]] bool active_graph_connected() const {
    std::vector<bool> seen(nodes.size(), false);
    std::queue<std::size_t> frontier;
    frontier.push(0);
    seen[0] = true;
    std::size_t reached = 1;
    while (!frontier.empty()) {
      const std::size_t at = frontier.front();
      frontier.pop();
      for (std::size_t j = 0; j < nodes.size(); ++j) {
        if (seen[j]) continue;
        if (nodes[at]->in_active(nodes[j]->id()) &&
            nodes[j]->in_active(nodes[at]->id())) {
          seen[j] = true;
          ++reached;
          frontier.push(j);
        }
      }
    }
    return reached == nodes.size();
  }
};

TEST(OverlayMembership, JoinPropagatesIntoConnectedViews) {
  MiniFleet fleet(2, 4);
  fleet.join_all(0.3);
  fleet.fabric.run_for(3.0);

  std::uint64_t forward_joins = 0;
  for (const auto& node : fleet.nodes) {
    // Every node ended up with a bounded, non-empty active view.
    EXPECT_GE(node->active_size(), 1u) << "node " << node->id();
    EXPECT_LE(node->active_size(), overlay::MembershipConfig{}.active_max);
    forward_joins += node->stats().forward_joins;
  }
  // Joins propagated on random walks, not just pairwise with the contact.
  EXPECT_GT(forward_joins, 0u);
  EXPECT_TRUE(fleet.active_graph_connected());
}

TEST(OverlayMembership, ShufflesMergePassiveViews) {
  MiniFleet fleet(2, 4);
  fleet.join_all(0.3);
  fleet.fabric.run_for(6.0);  // several shuffle_interval_sec periods

  std::uint64_t shuffles = 0, replies = 0;
  std::size_t with_passive = 0;
  for (const auto& node : fleet.nodes) {
    shuffles += node->stats().shuffles_sent;
    replies += node->stats().shuffle_replies;
    if (node->passive_size() > 0) ++with_passive;
  }
  EXPECT_GT(shuffles, 0u);
  EXPECT_GT(replies, 0u);
  // Shuffle walks deposited repair candidates across the fleet — most
  // nodes know members they never directly handshook with.
  EXPECT_GE(with_passive, fleet.nodes.size() / 2);
}

TEST(OverlayDissemination, BroadcastDeliversEverywhereAndPrunes) {
  MiniFleet fleet(2, 4);
  fleet.join_all(0.3);
  fleet.fabric.run_for(2.0);

  std::vector<overlay::MsgId> sent;
  for (int k = 0; k < 8; ++k) {
    const std::vector<std::uint8_t> payload(24,
                                            static_cast<std::uint8_t>(k));
    sent.push_back(fleet.nodes[0]->broadcast(payload, fleet.fabric.now()));
    fleet.fabric.run_for(0.5);
  }
  fleet.fabric.run_for(2.0);

  std::uint64_t duplicates = 0, prunes = 0;
  for (const auto& node : fleet.nodes) {
    for (const overlay::MsgId id : sent)
      EXPECT_TRUE(node->has_delivered(id))
          << "node " << node->id() << " missing (" << id.origin << ","
          << id.seq << ")";
    duplicates += node->stats().duplicates;
    prunes += node->stats().prunes_tx;
  }
  // A fresh overlay floods every active link; prune-on-duplicate must
  // have started carving the tree out of the redundancy.
  EXPECT_GT(duplicates, 0u);
  EXPECT_GT(prunes, 0u);
}

/// 16-host run_gossip_sim config the scenario-grain tests share: same
/// code path as the soak, sized for unit-test wall clock.
overlay::GossipSimConfig small_sim() {
  overlay::GossipSimConfig cfg;
  cfg.racks = 4;
  cfg.hosts_per_rack = 4;
  cfg.spines = 2;
  cfg.fault_horizon_sec = 1.2;
  cfg.storm_broadcasts = 16;
  return cfg;
}

/// One mid-storm restart of h2: the repair path's minimal trigger.
check::Schedule restart_schedule(std::uint64_t seed) {
  check::Schedule s;
  s.scenario = "gossip";
  s.seed = seed;
  fault::Episode e;
  e.kind = fault::FaultKind::kHostRestart;
  e.start = 0.55;
  e.end = 0.85;
  fault::FaultPlan plan;
  plan.add(e);
  s.injectors.push_back({"h2", seed * 3 + 5, std::move(plan)});
  return s;
}

TEST(GossipSim, RepairReadmitsRestartedHost) {
  const overlay::GossipSimResult r =
      overlay::run_gossip_sim(restart_schedule(3), small_sim());
  EXPECT_TRUE(r.pass) << r.why;
  EXPECT_EQ(r.delivery_completeness, 1.0);
  // The victim's peers declared it dead and promoted replacements; the
  // victim itself re-joined through its bootstrap contact.
  EXPECT_GT(r.repairs_done, 0u);
  EXPECT_GT(r.broadcasts, 0u);
}

TEST(GossipSim, FullChurnScheduleConvergesWithEvidence) {
  // The soak's own 64-host schedule (fabric plan + two restart victims):
  // every protocol mechanism must leave a trace.
  const overlay::GossipSimResult r =
      overlay::run_gossip_sim(soak::make_gossip_schedule(1));
  EXPECT_TRUE(r.pass) << r.why;
  EXPECT_EQ(r.delivery_completeness, 1.0);
  EXPECT_GT(r.grafts, 0u);
  EXPECT_GT(r.prunes, 0u);
  EXPECT_GT(r.duplicates, 0u);
  EXPECT_GE(r.relay_redundancy, 1.0);
  // Idle-tick coalescing actually engaged on the 64-host fabric.
  EXPECT_GT(r.suppressed_ticks, 0u);
}

TEST(GossipSim, DeterministicInSchedule) {
  const check::Schedule schedule = soak::make_gossip_schedule(2);
  const overlay::GossipSimResult a = overlay::run_gossip_sim(schedule);
  const overlay::GossipSimResult b = overlay::run_gossip_sim(schedule);
  EXPECT_EQ(a.pass, b.pass);
  EXPECT_EQ(a.why, b.why);
  EXPECT_EQ(a.violations, b.violations);
  EXPECT_EQ(a.deliveries, b.deliveries);
  EXPECT_EQ(a.duplicates, b.duplicates);
  EXPECT_EQ(a.grafts, b.grafts);
  EXPECT_EQ(a.repairs_done, b.repairs_done);
  EXPECT_EQ(a.suppressed_ticks, b.suppressed_ticks);
}

TEST(GossipMutation, DisabledRepairIsCaughtAndShrinksToChurn) {
  // THE MUTATION CHECK. Reverting enable_repair must (a) be caught by
  // the overlay oracles under churn, (b) stay green without churn — the
  // oracles blame the repair path, not background noise — and (c) ddmin
  // the failing schedule down to the single restart episode.
  overlay::GossipSimConfig mutated = small_sim();
  mutated.overlay.membership.enable_repair = false;

  const check::Schedule churn = restart_schedule(3);
  const overlay::GossipSimResult broken =
      overlay::run_gossip_sim(churn, mutated);
  ASSERT_FALSE(broken.pass);

  check::Schedule calm = churn;
  calm.injectors.clear();
  const overlay::GossipSimResult quiet =
      overlay::run_gossip_sim(calm, mutated);
  EXPECT_TRUE(quiet.pass) << quiet.why;

  const check::ShrinkResult shrunk = check::shrink(
      churn,
      [&](const check::Schedule& candidate) {
        return !overlay::run_gossip_sim(candidate, mutated).pass;
      },
      64);
  EXPECT_TRUE(shrunk.converged);
  EXPECT_EQ(shrunk.schedule.episode_count(), 1u);
  EXPECT_TRUE(shrunk.schedule.has_kind(fault::FaultKind::kHostRestart));
}

TEST(GossipScenario, RegisteredWithOwnBudget) {
  bool found = false;
  for (std::size_t i = 0; i < soak::kScenarioCount; ++i) {
    if (std::string(soak::kScenarios[i].name) != "gossip") continue;
    found = true;
    EXPECT_EQ(soak::kScenarios[i].seed_timeout_ms, 120000u);
    EXPECT_FALSE(soak::kScenarios[i].in_default_sweep);
    EXPECT_NE(soak::kScenarios[i].make, nullptr);
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace ldlp
