// Table 3: effect of cache line size on the working set of the TCP/IP
// receive trace. The same reference trace is re-rasterised at 4, 8, 16, 32
// and 64-byte lines; percentage changes are reported against the 32-byte
// baseline, exactly as the paper formats it.
#include <cstdio>

#include "bench_util.hpp"
#include "stack/rx_path_trace.hpp"
#include "trace/working_set.hpp"

namespace {

struct PaperDelta {
  int line;
  double code_bytes, code_lines;
  double ro_bytes, ro_lines;
  double mut_bytes, mut_lines;
};

// Percentage deltas vs the 32-byte baseline from the paper's Table 3.
constexpr PaperDelta kPaper[] = {
    {64, +17, -41, +44, -28, +55, -22},
    {32, 0, 0, 0, 0, 0, 0},
    {16, -13, +73, -31, +38, -38, +23},
    {8, -20, +216, -55, +81, -56, +75},
    {4, -25, +500, 0, 0, 0, 0},  // data N/A below the 8-byte word size
};

double pct(double value, double base) {
  return base != 0.0 ? (value - base) / base * 100.0 : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ldlp;
  benchutil::Flags flags(argc, argv);
  const auto payload = static_cast<std::uint32_t>(flags.u64("payload", 512));
  benchutil::BenchReport report("table3_line_size", flags);
  report.config_u64("payload", payload);

  stack::StackTracer tracer;
  trace::TraceBuffer buffer;
  if (!stack::trace_tcp_receive_ack(tracer, buffer, {payload, 2})) {
    std::fprintf(stderr, "FAILED: receive path did not complete\n");
    return 1;
  }

  const auto base = trace::analyze_working_set(buffer, 32);

  benchutil::heading(
      "Table 3: working-set change vs cache line size (deltas vs 32 B)");
  std::printf("%5s | %-23s | %-23s | %-23s\n", "line", "code bytes/lines",
              "RO bytes/lines", "mut bytes/lines");
  std::printf("%5s | %-23s | %-23s | %-23s\n", "", "paper -> measured",
              "paper -> measured", "paper -> measured");
  for (const PaperDelta& row : kPaper) {
    const auto ws =
        trace::analyze_working_set(buffer, static_cast<std::uint32_t>(row.line));
    const std::string line = std::to_string(row.line);
    report.metric("code_bytes@" + line,
                  static_cast<double>(ws.code_bytes()));
    report.metric("ro_bytes@" + line, static_cast<double>(ws.ro_bytes()));
    report.metric("mut_bytes@" + line, static_cast<double>(ws.mut_bytes()));
    const double code_b = pct(static_cast<double>(ws.code_bytes()),
                              static_cast<double>(base.code_bytes()));
    const double code_l = pct(static_cast<double>(ws.total.code_lines),
                              static_cast<double>(base.total.code_lines));
    const double ro_b = pct(static_cast<double>(ws.ro_bytes()),
                            static_cast<double>(base.ro_bytes()));
    const double ro_l = pct(static_cast<double>(ws.total.ro_lines),
                            static_cast<double>(base.total.ro_lines));
    const double mut_b = pct(static_cast<double>(ws.mut_bytes()),
                             static_cast<double>(base.mut_bytes()));
    const double mut_l = pct(static_cast<double>(ws.total.mut_lines),
                             static_cast<double>(base.total.mut_lines));
    if (row.line == 4) {
      // Paper marks data entries N/A (64-bit word size).
      std::printf(
          "%5d | %+4.0f%%/%+5.0f%% -> %+4.0f%%/%+5.0f%% | %-23s | %-23s\n",
          row.line, row.code_bytes, row.code_lines, code_b, code_l,
          "N/A", "N/A");
      continue;
    }
    std::printf(
        "%5d | %+4.0f%%/%+5.0f%% -> %+4.0f%%/%+5.0f%% | %+4.0f%%/%+4.0f%% -> "
        "%+4.0f%%/%+4.0f%% | %+4.0f%%/%+4.0f%% -> %+4.0f%%/%+4.0f%%\n",
        row.line, row.code_bytes, row.code_lines, code_b, code_l,
        row.ro_bytes, row.ro_lines, ro_b, ro_l, row.mut_bytes, row.mut_lines,
        mut_b, mut_l);
  }

  // The section 5.4 corollary: cache dilution.
  const auto ws4 = trace::analyze_working_set(buffer, 4);
  const double dilution = 1.0 - static_cast<double>(ws4.code_bytes()) /
                                    static_cast<double>(base.code_bytes());
  std::printf(
      "\nCache dilution (section 5.4): %.0f%% of instruction bytes fetched\n"
      "into 32-byte lines are never executed (paper: ~25%%).\n",
      dilution * 100.0);
  report.metric("cache_dilution_frac", dilution);
  report.write();
  return 0;
}
