// Perf-regression gate driver.
//
//   bench_regress             — run the gate suite, compare against the
//                               checked-in baselines, exit nonzero on drift
//   bench_regress --update    — re-run and rewrite the baselines (do this
//                               deliberately, with the diff in the PR)
//   bench_regress --baseline_dir=<dir> — gate against a different tree
//
// The same suite runs under ctest as `ctest -L bench-gate` via
// tests/test_bench_regress.cpp.
#include <cstdio>
#include <string>

#include "bench/regress_suite.hpp"
#include "bench_util.hpp"

#ifndef LDLP_BASELINE_DIR
#define LDLP_BASELINE_DIR "bench/baselines"
#endif

int main(int argc, char** argv) {
  using namespace ldlp;
  benchutil::Flags flags(argc, argv);
  const std::string dir = flags.str("baseline_dir", LDLP_BASELINE_DIR);
  const bool update = flags.flag("update");

  benchutil::heading(update ? "Perf gate: rewriting baselines"
                            : "Perf gate: comparing against baselines");
  std::printf("baseline dir: %s\n\n", dir.c_str());

  int failures = 0;
  for (const regress::GateCase& gate : regress::suite()) {
    if (update) {
      const obs::BenchResult result = gate.run();
      if (!result.write_file(dir)) {
        std::printf("  %-18s WRITE FAILED\n", gate.name);
        ++failures;
      } else {
        std::printf("  %-18s baseline written (%zu metrics, tol %.2g)\n",
                    gate.name, result.metrics.size(), result.tolerance);
      }
      continue;
    }
    const bool pass = regress::gate_case(gate, dir);
    std::printf("  %-18s %s\n", gate.name, pass ? "PASS" : "FAIL");
    if (!pass) ++failures;
  }

  if (!update) {
    std::printf("\n%s\n", failures == 0 ? "gate PASS" : "gate FAIL");
  }
  return failures == 0 ? 0 : 1;
}
