// Figure 6: latency vs arrival rate, Poisson source of 552-byte messages,
// conventional vs LDLP. Buffering is limited to 500 packets, so latencies
// beyond ~100 ms come with drops, as in the paper.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "synth/sweep.hpp"

int main(int argc, char** argv) {
  using namespace ldlp;
  benchutil::Flags flags(argc, argv);
  synth::SweepOptions opt;
  opt.runs = static_cast<std::uint32_t>(flags.u64("runs", 30));
  opt.run_seconds = flags.f64("seconds", 1.0);
  opt.seed = flags.u64("seed", 0x5eed);
  benchutil::BenchReport report("fig6_latency", flags);
  report.config_u64("runs", opt.runs);
  report.config_u64("seed", opt.seed);
  report.config("seconds", std::to_string(opt.run_seconds));

  std::vector<double> rates;
  for (double r = 500; r <= 10000; r += 500) rates.push_back(r);

  synth::SynthConfig conv;
  conv.mode = synth::SynthMode::kConventional;
  synth::SynthConfig ldlp = conv;
  ldlp.mode = synth::SynthMode::kLdlp;

  const auto pc = synth::sweep_poisson_rates(conv, rates, opt);
  const auto pl = synth::sweep_poisson_rates(ldlp, rates, opt);

  benchutil::heading(
      "Figure 6: latency vs arrival rate (Poisson, 552 B messages)");
  std::printf("(%u runs x %.1f s per point; 500-packet buffer)\n\n", opt.runs,
              opt.run_seconds);
  std::printf("%9s | %11s %7s | %11s %7s | %6s\n", "rate", "conv mean",
              "drop%", "LDLP mean", "drop%", "batch");
  for (std::size_t i = 0; i < rates.size(); ++i) {
    const auto& c = pc[i].mean;
    const auto& l = pl[i].mean;
    std::printf("%9.0f | %11s %6.1f%% | %11s %6.1f%% | %6.2f\n", rates[i],
                benchutil::fmt_latency(c.mean_latency_sec).c_str(),
                c.offered != 0
                    ? 100.0 * static_cast<double>(c.dropped) /
                          static_cast<double>(c.offered)
                    : 0.0,
                benchutil::fmt_latency(l.mean_latency_sec).c_str(),
                l.offered != 0
                    ? 100.0 * static_cast<double>(l.dropped) /
                          static_cast<double>(l.offered)
                    : 0.0,
                l.mean_batch);
    const std::string rate = std::to_string(static_cast<int>(rates[i]));
    const double c_drop = c.offered != 0 ? static_cast<double>(c.dropped) /
                                               static_cast<double>(c.offered)
                                         : 0.0;
    const double l_drop = l.offered != 0 ? static_cast<double>(l.dropped) /
                                               static_cast<double>(l.offered)
                                         : 0.0;
    report.metric("conv.mean_latency_sec@" + rate, c.mean_latency_sec);
    report.metric("conv.drop_frac@" + rate, c_drop);
    report.metric("ldlp.mean_latency_sec@" + rate, l.mean_latency_sec);
    report.metric("ldlp.drop_frac@" + rate, l_drop);
    report.metric("ldlp.mean_batch@" + rate, l.mean_batch);
  }

  // Find the saturation knees (first rate with >1% drops).
  auto knee = [](const std::vector<synth::SweepPoint>& points) {
    for (const auto& point : points) {
      if (point.mean.offered != 0 &&
          static_cast<double>(point.mean.dropped) /
                  static_cast<double>(point.mean.offered) >
              0.01)
        return point.x;
    }
    return 0.0;
  };
  const double kc = knee(pc);
  const double kl = knee(pl);
  std::printf(
      "\nSaturation: conventional drops beyond %.0f msgs/s; LDLP beyond "
      "%s msgs/s\n(paper: conventional saturates near 3500-4000, LDLP "
      "sustains ~2.5x more).\n",
      kc, kl != 0.0 ? std::to_string(static_cast<int>(kl)).c_str() : ">10000");
  report.metric("conv.knee_rate", kc);
  report.metric("ldlp.knee_rate", kl);
  report.write();
  return 0;
}
