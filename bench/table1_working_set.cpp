// Table 1: breakdown of working-set sizes in the TCP receive & acknowledge
// path, in bytes of 32-byte cache lines, per layer and reference class.
//
// Runs the instrumented mini-stack through one traced receive+ACK
// iteration (see stack/rx_path_trace.hpp) and prints measured vs paper.
#include <cstdio>

#include "bench_util.hpp"
#include "stack/rx_path_trace.hpp"
#include "trace/working_set.hpp"

namespace {

struct PaperRow {
  ldlp::trace::LayerClass layer;
  double code;
  double ro;
  double mut;
};

constexpr PaperRow kPaper[] = {
    {ldlp::trace::LayerClass::kDevice, 4480, 864, 672},
    {ldlp::trace::LayerClass::kEthernet, 2784, 480, 128},
    {ldlp::trace::LayerClass::kIp, 3168, 448, 160},
    {ldlp::trace::LayerClass::kTcp, 5536, 544, 448},
    {ldlp::trace::LayerClass::kSocketLow, 608, 32, 160},
    {ldlp::trace::LayerClass::kSocketHigh, 1184, 256, 64},
    {ldlp::trace::LayerClass::kKernelEntry, 2208, 1280, 640},
    {ldlp::trace::LayerClass::kProcessControl, 5472, 544, 736},
    {ldlp::trace::LayerClass::kBufferMgmt, 1632, 192, 512},
    {ldlp::trace::LayerClass::kCopyChecksum, 3232, 448, 128},
};

}  // namespace

int main(int argc, char** argv) {
  using namespace ldlp;
  benchutil::Flags flags(argc, argv);
  const auto payload = static_cast<std::uint32_t>(flags.u64("payload", 512));
  benchutil::BenchReport report("table1_working_set", flags);
  report.config_u64("payload", payload);

  stack::StackTracer tracer;
  trace::TraceBuffer buffer;
  if (!stack::trace_tcp_receive_ack(tracer, buffer, {payload, 2})) {
    std::fprintf(stderr, "FAILED: receive path did not complete\n");
    return 1;
  }

  const auto ws = trace::analyze_working_set(buffer, 32);

  benchutil::heading(
      "Table 1: Working set of TCP receive & acknowledge path (bytes, "
      "32-byte lines)");
  std::printf("%-20s | %21s | %21s | %21s\n", "Layer", "Code (paper/meas)",
              "RO data (paper/meas)", "Mut data (paper/meas)");
  double paper_code = 0;
  double paper_ro = 0;
  double paper_mut = 0;
  for (const PaperRow& row : kPaper) {
    const auto& measured = ws.layers[static_cast<std::size_t>(row.layer)];
    std::printf("%-20s | %8.0f / %10llu | %8.0f / %10llu | %8.0f / %10llu\n",
                std::string(trace::layer_name(row.layer)).c_str(), row.code,
                static_cast<unsigned long long>(measured.code_lines * 32),
                row.ro,
                static_cast<unsigned long long>(measured.ro_lines * 32),
                row.mut,
                static_cast<unsigned long long>(measured.mut_lines * 32));
    paper_code += row.code;
    paper_ro += row.ro;
    paper_mut += row.mut;
    const std::string layer(trace::layer_name(row.layer));
    report.metric(layer + ".code_bytes",
                  static_cast<double>(measured.code_lines * 32));
    report.metric(layer + ".ro_bytes",
                  static_cast<double>(measured.ro_lines * 32));
    report.metric(layer + ".mut_bytes",
                  static_cast<double>(measured.mut_lines * 32));
  }
  std::printf("%s\n", std::string(94, '-').c_str());
  benchutil::compare_row("Total code", paper_code,
                         static_cast<double>(ws.code_bytes()));
  benchutil::compare_row("Total read-only data", paper_ro,
                         static_cast<double>(ws.ro_bytes()));
  benchutil::compare_row("Total mutable data", paper_mut,
                         static_cast<double>(ws.mut_bytes()));

  const double total_fetch =
      static_cast<double>(ws.code_bytes() + ws.ro_bytes());
  std::printf(
      "\nConclusion check (paper section 2.4): ~35 KB of code + read-only\n"
      "data is fetched per iteration vs ~2.2 KB of message contents -> the\n"
      "code:data memory traffic ratio is %.1f:1 for a %u-byte message.\n",
      total_fetch / (2.0 * 2 * payload), payload);

  report.metric("total.code_bytes", static_cast<double>(ws.code_bytes()));
  report.metric("total.ro_bytes", static_cast<double>(ws.ro_bytes()));
  report.metric("total.mut_bytes", static_cast<double>(ws.mut_bytes()));
  report.metric("code_data_ratio", total_fetch / (2.0 * 2 * payload));
  report.write();
  return 0;
}
