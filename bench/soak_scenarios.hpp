// Chaos-soak scenario registry: one table owns every scenario's name,
// schedule maker, per-seed wall-clock budget, default-sweep membership and
// help blurb. chaos_soak's --help listing, its --scenario validation and
// the scenario-aware --seed_timeout_ms defaults all derive from this table,
// so adding a scenario in one place updates all three together (they used
// to be maintained separately, and the timeout table silently missed
// scenarios added to the list).
//
// Schedules are the canonical per-seed adversity: deterministic functions
// of the soak seed, serialisable as ldlp.schedule.v1, replayable with
// chaos_soak --replay. The TCP and DNS scenarios draw independent plans
// (DNS perturbs the seed) so one soak seed exercises two distinct fault
// timelines.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <string_view>

#include "check/schedule.hpp"
#include "common/rng.hpp"
#include "fault/fault_plan.hpp"
#include "net/fleet_plan.hpp"

namespace ldlp::soak {

inline constexpr double kHorizon = 1.0;

// Fleet soak topology: 8 racks x 8 hosts behind 2 spines (64 hosts, 10
// switches, 80 links). The schedule carries one "fabric" injector spec
// (the topology-scoped plan: correlated switch/rack cuts, asymmetric
// partitions, flaps, loss) plus host-churn specs ("h<i>") whose restart
// episodes crash individual hosts mid-run.
inline constexpr std::size_t kFleetRacks = 8;
inline constexpr std::size_t kFleetHostsPerRack = 8;
inline constexpr std::size_t kFleetSpines = 2;
inline constexpr std::size_t kFleetHosts = kFleetRacks * kFleetHostsPerRack;
inline constexpr double kFleetHorizon = 2.0;

// Tail scenario topology: a 16-host fat-tree (4 racks x 4, 2 spines)
// carrying the RPC fan-out workload from src/rpc/fanout.hpp — client h0
// fans every request to 8 servers over UDP while the fabric runs a
// topology-scoped fault plan. No host churn: the question under test is
// whether client-owned RPC reliability delivers every request *through*
// partitions and loss bursts, and whether the fleet converges after.
inline constexpr std::size_t kTailRacks = 4;
inline constexpr std::size_t kTailHostsPerRack = 4;
inline constexpr std::size_t kTailSpines = 2;
inline constexpr std::size_t kTailHosts = kTailRacks * kTailHostsPerRack;
inline constexpr double kTailHorizon = 2.0;

inline check::Schedule make_tcp_schedule(std::uint64_t seed) {
  check::Schedule s;
  s.scenario = "tcp";
  s.seed = seed;
  s.injectors.push_back({"a", seed * 2 + 1,
                         fault::FaultPlan::random(seed, kHorizon)});
  s.injectors.push_back({"b", seed * 2 + 2,
                         fault::FaultPlan::random(seed ^ 0xbeefULL, kHorizon)});
  return s;
}

inline check::Schedule make_dns_schedule(std::uint64_t seed) {
  const std::uint64_t base = seed ^ 0xd15ULL;
  check::Schedule s;
  s.scenario = "dns";
  s.seed = seed;
  s.injectors.push_back({"a", base * 2 + 1,
                         fault::FaultPlan::random(base, kHorizon)});
  s.injectors.push_back({"b", base * 2 + 2,
                         fault::FaultPlan::random(base ^ 0xbeefULL, kHorizon)});
  return s;
}

/// Slow-reader TCP: a bigger transfer against an application that drains
/// its socket in a trickle, so the receive buffer rides against hiwat.
/// This is the regime where LDLP's deferred sbappend makes the advertised
/// window momentarily stale — ACKs computed mid-batch overstate the
/// socket room — and the overshoot-handling in SocketLayer::process()
/// earns its keep.
inline check::Schedule make_tcp_slow_schedule(std::uint64_t seed) {
  const std::uint64_t base = seed ^ 0x51deULL;
  check::Schedule s;
  s.scenario = "tcp-slow";
  s.seed = seed;
  s.injectors.push_back({"a", base * 2 + 1,
                         fault::FaultPlan::random(base, kHorizon)});
  s.injectors.push_back({"b", base * 2 + 2,
                         fault::FaultPlan::random(base ^ 0xbeefULL, kHorizon)});
  return s;
}

/// TCP under the healing kinds: partitions, link flaps and host restarts
/// join the legacy adversity. The transfer may be legitimately truncated
/// (a rebooted endpoint loses its connections); the assertions shift from
/// "everything arrives" to "everything that arrives is the exact stream
/// prefix, and the network converges once the faults clear".
inline check::Schedule make_tcp_heal_schedule(std::uint64_t seed) {
  const std::uint64_t base = seed ^ 0x4ea1ULL;
  check::Schedule s;
  s.scenario = "tcp-heal";
  s.seed = seed;
  s.injectors.push_back({"a", base * 2 + 1,
                         fault::FaultPlan::random_heal(base, kHorizon)});
  s.injectors.push_back(
      {"b", base * 2 + 2,
       fault::FaultPlan::random_heal(base ^ 0xbeefULL, kHorizon)});
  return s;
}

/// DNS across partitions and link flaps: a resolver that failed during
/// the outage must re-resolve once the network heals (negative cache
/// entries expire on their backoff TTL). Host restarts are excluded —
/// a reboot wipes the server's UDP binding and zone, which the scenario's
/// fixed server object does not model.
inline check::Schedule make_dns_heal_schedule(std::uint64_t seed) {
  const std::uint64_t base = seed ^ 0xd05ea1ULL;
  check::Schedule s;
  s.scenario = "dns-heal";
  s.seed = seed;
  s.injectors.push_back(
      {"a", base * 2 + 1,
       fault::FaultPlan::random_heal(base, kHorizon, 6,
                                     /*allow_restart=*/false)});
  s.injectors.push_back(
      {"b", base * 2 + 2,
       fault::FaultPlan::random_heal(base ^ 0xbeefULL, kHorizon, 6,
                                     /*allow_restart=*/false)});
  return s;
}

inline check::Schedule make_fleet_schedule(std::uint64_t seed) {
  const std::uint64_t base = seed ^ 0xf1ee7ULL;
  check::Schedule s;
  s.scenario = "fleet";
  s.seed = seed;
  net::FleetShape shape;
  shape.links = kFleetHosts + kFleetRacks * kFleetSpines;
  shape.switches = kFleetSpines + kFleetRacks;
  shape.racks = kFleetRacks;
  shape.sites = 1;
  shape.hosts = kFleetHosts;
  s.injectors.push_back(
      {"fabric", base * 2 + 1,
       net::random_fleet_plan(base, kFleetHorizon, shape, 6)});
  // Host churn: two distinct hosts crash and reboot mid-run, losing PCBs,
  // ARP and ring contents — the fleet must converge around them.
  Rng rng(base ^ 0xc42bULL);
  const std::uint32_t first =
      static_cast<std::uint32_t>(rng.bounded(kFleetHosts));
  const std::uint32_t second = static_cast<std::uint32_t>(
      (first + 1 + rng.bounded(kFleetHosts - 1)) % kFleetHosts);
  std::uint32_t victims[2] = {first, second};
  for (int k = 0; k < 2; ++k) {
    fault::Episode e;
    e.kind = fault::FaultKind::kHostRestart;
    e.start = rng.uniform(0.3, 0.7 * kFleetHorizon);
    e.end = e.start + rng.uniform(0.05, 0.3);
    fault::FaultPlan plan;
    plan.add(e);
    s.injectors.push_back({"h" + std::to_string(victims[k]),
                           base * 3 + 5 + static_cast<std::uint64_t>(k),
                           std::move(plan)});
  }
  return s;
}

/// Gossip overlay soak: the fleet fat-tree (64 hosts) running the
/// HyParView membership + PlumTree dissemination endpoints from
/// src/overlay. The fabric executes a topology-scoped plan (switch
/// cuts, partitions, flaps, loss) while two seed-chosen hosts crash and
/// reboot mid-storm — the overlay must re-admit them through the repair
/// path and the broadcast oracle demands exactly-once completeness for
/// every stable member.
inline check::Schedule make_gossip_schedule(std::uint64_t seed) {
  const std::uint64_t base = seed ^ 0x9055ULL;
  check::Schedule s;
  s.scenario = "gossip";
  s.seed = seed;
  net::FleetShape shape;
  shape.links = kFleetHosts + kFleetRacks * kFleetSpines;
  shape.switches = kFleetSpines + kFleetRacks;
  shape.racks = kFleetRacks;
  shape.sites = 1;
  shape.hosts = kFleetHosts;
  s.injectors.push_back(
      {"fabric", base * 2 + 1,
       net::random_fleet_plan(base, kFleetHorizon, shape, 6)});
  Rng rng(base ^ 0xc42bULL);
  const std::uint32_t first =
      static_cast<std::uint32_t>(rng.bounded(kFleetHosts));
  const std::uint32_t second = static_cast<std::uint32_t>(
      (first + 1 + rng.bounded(kFleetHosts - 1)) % kFleetHosts);
  std::uint32_t victims[2] = {first, second};
  for (int k = 0; k < 2; ++k) {
    fault::Episode e;
    e.kind = fault::FaultKind::kHostRestart;
    e.start = rng.uniform(0.3, 0.7 * kFleetHorizon);
    e.end = e.start + rng.uniform(0.05, 0.3);
    fault::FaultPlan plan;
    plan.add(e);
    s.injectors.push_back({"h" + std::to_string(victims[k]),
                           base * 3 + 5 + static_cast<std::uint64_t>(k),
                           std::move(plan)});
  }
  return s;
}

/// Clocks scenario: the gossip fleet with clock-fault victims. The
/// fabric runs the usual topology-scoped plan (partitions, switch cuts,
/// flaps, loss) while three seed-chosen hosts take kClockSkew /
/// kClockDrift / kClockStall / kTimerStorm episodes — their virtual
/// clocks bend and their wheels take spurious-wakeup storms while the
/// rest of the fleet stays true. Judged by the overlay oracles plus the
/// timer oracles (TimerAuditor: monotone clocks, no leaked timers;
/// DeadlineOracle: every armed timer fires or cancels, shedding never
/// eats a liveness timer).
inline check::Schedule make_clocks_schedule(std::uint64_t seed) {
  const std::uint64_t base = seed ^ 0xc10c5ULL;
  check::Schedule s;
  s.scenario = "clocks";
  s.seed = seed;
  net::FleetShape shape;
  shape.links = kFleetHosts + kFleetRacks * kFleetSpines;
  shape.switches = kFleetSpines + kFleetRacks;
  shape.racks = kFleetRacks;
  shape.sites = 1;
  shape.hosts = kFleetHosts;
  s.injectors.push_back(
      {"fabric", base * 2 + 1,
       net::random_fleet_plan(base, kFleetHorizon, shape, 6)});
  // Three victims spread across distinct racks (stride > hosts_per_rack
  // guarantees distinctness), each with its own clock-kind-only plan.
  Rng rng(base ^ 0xc42bULL);
  const std::uint32_t first =
      static_cast<std::uint32_t>(rng.bounded(kFleetHosts));
  for (std::uint32_t k = 0; k < 3; ++k) {
    const std::uint32_t victim =
        (first + k * static_cast<std::uint32_t>(kFleetHosts / 3)) %
        kFleetHosts;
    s.injectors.push_back(
        {"h" + std::to_string(victim), base * 3 + 5 + k,
         fault::FaultPlan::random_clocks(base ^ (0x5eedULL * (k + 1)),
                                         kFleetHorizon)});
  }
  return s;
}

inline check::Schedule make_tail_schedule(std::uint64_t seed) {
  const std::uint64_t base = seed ^ 0x7a11ULL;
  check::Schedule s;
  s.scenario = "tail";
  s.seed = seed;
  net::FleetShape shape;
  shape.links = kTailHosts + kTailRacks * kTailSpines;
  shape.switches = kTailSpines + kTailRacks;
  shape.racks = kTailRacks;
  shape.sites = 1;
  shape.hosts = kTailHosts;
  s.injectors.push_back(
      {"fabric", base * 2 + 1,
       net::random_fleet_plan(base, kTailHorizon, shape, 4)});
  return s;
}

/// Everything chaos_soak needs to know about one scenario. The table is
/// the single source of truth: --help, --scenario validation and the
/// default per-seed wall budget all read it.
struct ScenarioInfo {
  const char* name;
  check::Schedule (*make)(std::uint64_t seed);
  /// Default --seed_timeout_ms when the flag is unset. Fleet-scale
  /// scenarios pump dozens of hosts per tick and legitimately need
  /// minutes, not the two-host scenarios' 20 s.
  std::uint64_t seed_timeout_ms;
  /// False: only runs when named via --scenario (keeps the default
  /// sweep's per-seed cost stable as heavyweight scenarios are added).
  bool in_default_sweep;
  const char* blurb;  ///< One --help line.
};

inline constexpr ScenarioInfo kScenarios[] = {
    {"tcp", &make_tcp_schedule, 20000, true,
     "8 KB stream, two hosts, legacy loss/corruption adversity"},
    {"tcp-slow", &make_tcp_slow_schedule, 20000, true,
     "24 KB stream into a trickle reader (stale-window regime)"},
    {"dns", &make_dns_schedule, 20000, true,
     "8 parallel lookups with retries under datagram adversity"},
    {"tcp-heal", &make_tcp_heal_schedule, 20000, true,
     "stream across partitions, link flaps and host restarts"},
    {"dns-heal", &make_dns_heal_schedule, 20000, true,
     "lookups across partitions and flaps (no restarts)"},
    {"fleet", &make_fleet_schedule, 60000, false,
     "64-host fat-tree, cross-rack streams, switch cuts + host churn"},
    {"tail", &make_tail_schedule, 60000, false,
     "16-host RPC fan-out (tail workload) under fleet fault plans"},
    {"gossip", &make_gossip_schedule, 120000, false,
     "64-host HyParView/PlumTree overlay: broadcast storm + churn"},
    {"clocks", &make_clocks_schedule, 120000, false,
     "gossip fleet with skewed/stalled clocks + timer storms, timer oracles"},
};
inline constexpr std::size_t kScenarioCount =
    sizeof(kScenarios) / sizeof(kScenarios[0]);

namespace detail {
constexpr bool str_eq(const char* a, const char* b) {
  while (*a != '\0' && *a == *b) { ++a; ++b; }
  return *a == *b;
}
/// Every registry entry must be complete — in particular carry its own
/// non-zero --seed_timeout_ms default (the drift this table exists to
/// prevent: a scenario added to the list but missed by the old separate
/// timeout table silently inherited a budget sized for cheaper siblings).
constexpr bool registry_complete() {
  for (std::size_t i = 0; i < kScenarioCount; ++i) {
    const ScenarioInfo& def = kScenarios[i];
    if (def.name == nullptr || def.name[0] == '\0') return false;
    // def.make is checked at runtime by the registry tests
    // (test_tail/test_overlay): gcc under -fsanitize refuses to
    // constant-fold a function-pointer-vs-null comparison.
    if (def.seed_timeout_ms == 0) return false;
    if (def.blurb == nullptr || def.blurb[0] == '\0') return false;
    for (std::size_t j = i + 1; j < kScenarioCount; ++j)
      if (str_eq(def.name, kScenarios[j].name)) return false;
  }
  return true;
}
}  // namespace detail
static_assert(detail::registry_complete(),
              "soak scenario registry: every entry needs a unique name, a "
              "schedule maker, a non-zero seed_timeout_ms and a help blurb");

[[nodiscard]] inline const ScenarioInfo* find_scenario(
    std::string_view name) noexcept {
  for (const ScenarioInfo& def : kScenarios)
    if (name == def.name) return &def;
  return nullptr;
}

/// Default per-seed wall budget for --scenario=<name>; an empty name (the
/// default sweep) budgets for its slowest member so no scenario in the
/// sweep can be starved by a cheaper sibling's default.
[[nodiscard]] inline std::uint64_t default_timeout_ms(std::string_view name) {
  if (const ScenarioInfo* def = find_scenario(name); def != nullptr)
    return def->seed_timeout_ms;
  std::uint64_t ms = 0;
  for (const ScenarioInfo& def : kScenarios)
    if (def.in_default_sweep) ms = std::max(ms, def.seed_timeout_ms);
  return ms;
}

/// The --help scenario listing, one line per registered scenario.
[[nodiscard]] inline std::string scenario_help() {
  std::string out;
  for (const ScenarioInfo& def : kScenarios) {
    const std::string_view name(def.name);
    out += "  ";
    out += name;
    out.append(name.size() < 10 ? 10 - name.size() : 1, ' ');
    out += def.blurb;
    out += def.in_default_sweep ? "" : "  [--scenario only]";
    out += " (timeout ";
    out += std::to_string(def.seed_timeout_ms);
    out += " ms)\n";
  }
  return out;
}

}  // namespace ldlp::soak
