// Ablation D: dense code layout (paper section 5.4).
//
// Mosberger's compaction — moving rarely-executed basic blocks out of
// line — makes the touched code contiguous, so fewer cache lines carry
// it. The paper derives from its Table 3 data that ~25% of instruction
// bytes fetched are never executed, so "a perfectly dense cache layout
// would reduce the number of cache lines in the working set by about
// 25%". This bench computes exactly that for our traced receive path:
// the as-compiled line count vs the line count if each function's touched
// bytes were packed contiguously, plus the per-message stall cycles the
// compaction would save on the paper's machine.
#include <cstdio>

#include "bench_util.hpp"
#include "stack/rx_path_trace.hpp"
#include "trace/working_set.hpp"

int main(int argc, char** argv) {
  using namespace ldlp;
  benchutil::Flags flags(argc, argv);
  const auto payload = static_cast<std::uint32_t>(flags.u64("payload", 512));
  const auto miss_penalty = flags.u64("penalty", 20);
  benchutil::BenchReport report("ablation_code_layout", flags);
  report.config_u64("payload", payload);
  report.config_u64("penalty", miss_penalty);

  stack::StackTracer tracer;
  trace::TraceBuffer buffer;
  if (!stack::trace_tcp_receive_ack(tracer, buffer, {payload, 2})) {
    std::fprintf(stderr, "FAILED: receive path did not complete\n");
    return 1;
  }

  const auto as_compiled = trace::analyze_working_set(buffer, 32);
  // Byte-granular rasterisation = exactly the executed bytes; packing them
  // contiguously gives the dense-layout line count.
  const auto bytes_exact = trace::analyze_working_set(buffer, 1);
  const std::uint64_t baseline_lines = as_compiled.total.code_lines;
  const std::uint64_t executed_bytes = bytes_exact.code_bytes();
  const std::uint64_t dense_lines = (executed_bytes + 31) / 32;

  const double dilution =
      1.0 - static_cast<double>(dense_lines) /
                static_cast<double>(baseline_lines);

  benchutil::heading("Ablation: dense code layout (Cord/Mosberger, §5.4)");
  std::printf("  executed instruction bytes:    %llu\n",
              static_cast<unsigned long long>(executed_bytes));
  std::printf("  as-compiled working set:       %llu lines (%llu bytes)\n",
              static_cast<unsigned long long>(baseline_lines),
              static_cast<unsigned long long>(baseline_lines * 32));
  std::printf("  perfectly dense layout:        %llu lines (%llu bytes)\n",
              static_cast<unsigned long long>(dense_lines),
              static_cast<unsigned long long>(dense_lines * 32));
  std::printf("  line-count reduction:          %.0f%%   (paper: ~25%%)\n",
              dilution * 100.0);
  std::printf(
      "  cold-cache stall saved/message: %llu cycles (%llu lines x %llu "
      "cycle miss)\n",
      static_cast<unsigned long long>((baseline_lines - dense_lines) *
                                      miss_penalty),
      static_cast<unsigned long long>(baseline_lines - dense_lines),
      static_cast<unsigned long long>(miss_penalty));
  std::printf(
      "\nCompaction composes with LDLP: batching amortises the (smaller)\n"
      "per-batch fill, so the two optimisations multiply rather than\n"
      "compete.\n");
  report.metric("executed_bytes", static_cast<double>(executed_bytes));
  report.metric("as_compiled_lines", static_cast<double>(baseline_lines));
  report.metric("dense_lines", static_cast<double>(dense_lines));
  report.metric("line_reduction_frac", dilution);
  report.write();
  return 0;
}
