// Extension: transmit-side LDLP in a request/response switch.
//
// The paper applies LDLP to receive-side processing and notes the
// technique "is also applicable to transmit-side processing, but we have
// not evaluated [it]". This bench evaluates it in the setting that
// motivates the paper: a signalling switch where every received message
// climbs the stack, is handled by call control, and a response descends a
// distinct transmit code path (tcp_input vs tcp_output: different
// functions, so the duplex code working set is ~62 KB — nearly 8x the
// primary cache).
//
// Part 1 sweeps load at 100 MHz. Part 2 asks the paper's concrete
// question: what clock does a commodity CPU need to hit "10000 pairs of
// setup/teardown requests per second with processing latency of 100
// microseconds" (~20000 messages/s counting both directions of a pair as
// one message each here) under each schedule?
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "synth/sweep.hpp"
#include "traffic/size_models.hpp"

namespace {

ldlp::synth::SynthConfig duplex_config(ldlp::synth::SynthMode mode) {
  ldlp::synth::SynthConfig cfg;
  cfg.mode = mode;
  cfg.duplex = true;
  cfg.max_message_bytes = 256;  // signalling messages are ~100 bytes
  cfg.typical_message_bytes = 100;
  return cfg;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ldlp;
  benchutil::Flags flags(argc, argv);
  synth::SweepOptions opt;
  opt.runs = static_cast<std::uint32_t>(flags.u64("runs", 15));
  opt.seed = flags.u64("seed", 0x5eed);
  benchutil::BenchReport report("ext_duplex_switch", flags);
  report.config_u64("runs", opt.runs);
  report.config_u64("seed", opt.seed);

  benchutil::heading(
      "Extension: duplex (receive+reply) switch, 100-byte messages, "
      "100 MHz");
  std::printf("%9s | %11s %7s | %11s %7s | %6s\n", "msg/s", "conv mean",
              "drop%", "LDLP mean", "drop%", "batch");
  std::vector<double> rates = {500, 1000, 1500, 2000, 3000, 4000, 6000, 8000};
  for (const double rate : rates) {
    synth::RunResult results[2];
    int slot = 0;
    for (const auto mode :
         {synth::SynthMode::kConventional, synth::SynthMode::kLdlp}) {
      synth::SynthConfig cfg = duplex_config(mode);
      // Signalling messages: ~100 bytes.
      Rng master(opt.seed);
      std::vector<synth::RunResult> runs;
      for (std::uint32_t r = 0; r < opt.runs; ++r) {
        cfg.layout_seed = master();
        synth::SynthStack stack(cfg);
        traffic::PoissonSource source(
            rate, std::make_unique<traffic::FixedSize>(100), master());
        runs.push_back(stack.run(source, 1.0));
      }
      results[slot++] = synth::average(runs);
    }
    std::printf("%9.0f | %11s %6.1f%% | %11s %6.1f%% | %6.2f\n", rate,
                benchutil::fmt_latency(results[0].mean_latency_sec).c_str(),
                results[0].offered != 0
                    ? 100.0 * static_cast<double>(results[0].dropped) /
                          static_cast<double>(results[0].offered)
                    : 0.0,
                benchutil::fmt_latency(results[1].mean_latency_sec).c_str(),
                results[1].offered != 0
                    ? 100.0 * static_cast<double>(results[1].dropped) /
                          static_cast<double>(results[1].offered)
                    : 0.0,
                results[1].mean_batch);
    const std::string r = std::to_string(static_cast<int>(rate));
    report.metric("conv.mean_latency_sec@" + r,
                  results[0].mean_latency_sec);
    report.metric("ldlp.mean_latency_sec@" + r,
                  results[1].mean_latency_sec);
    report.metric("ldlp.mean_batch@" + r, results[1].mean_batch);
  }

  // Part 2: the paper's stated goal. 10000 setup/teardown pairs/s is
  // 20000 inbound messages/s through the switch; the latency goal is
  // 100 us per message.
  benchutil::heading(
      "Paper goal check: 20000 msg/s at <=100 us mean latency");
  std::printf("%7s | %14s | %14s\n", "MHz", "conv mean lat", "LDLP mean lat");
  for (const double mhz : {100.0, 200.0, 400.0, 600.0, 800.0}) {
    std::string cells[2];
    int slot = 0;
    for (const auto mode :
         {synth::SynthMode::kConventional, synth::SynthMode::kLdlp}) {
      synth::SynthConfig cfg = duplex_config(mode);
      cfg.cpu.clock_hz = mhz * 1e6;
      Rng master(opt.seed);
      std::vector<synth::RunResult> runs;
      for (std::uint32_t r = 0; r < opt.runs; ++r) {
        cfg.layout_seed = master();
        synth::SynthStack stack(cfg);
        traffic::PoissonSource source(
            20000.0, std::make_unique<traffic::FixedSize>(100), master());
        runs.push_back(stack.run(source, 0.5));
      }
      const auto mean = synth::average(runs);
      const bool goal = mean.mean_latency_sec <= 100e-6 && mean.dropped == 0;
      report.metric(std::string(slot == 0 ? "conv" : "ldlp") +
                        ".goal_latency_sec@" +
                        std::to_string(static_cast<int>(mhz)) + "mhz",
                    mean.mean_latency_sec);
      cells[slot++] =
          benchutil::fmt_latency(mean.mean_latency_sec) +
          (goal ? "  OK" : "    ");
    }
    std::printf("%7.0f | %14s | %14s\n", mhz, cells[0].c_str(),
                cells[1].c_str());
  }
  std::printf(
      "\nReading: at 100 MHz neither schedule meets the 10000-pairs/s goal —\n"
      "the duplex working set is ~8x the cache, so the 1996 goal was\n"
      "optimistic for 1996 hardware. But the schedules diverge by orders of\n"
      "magnitude: LDLP closes in on the 100 us target near ~1 GHz while the\n"
      "conventional schedule is still ~300x away at 800 MHz. The transmit\n"
      "side batches exactly as well as the receive side.\n");
  report.write();
  return 0;
}
