// Ablation G: CISC vs RISC code density (paper section 5.2).
//
// "Networking code is substantially smaller on the i386 than on the
// Alpha... the NetBSD TCP and IP code is 55% smaller on the i386" — so
// with equal-size caches the denser encoding keeps more of the working
// set resident, and the CISC machine "may therefore benefit less from
// LDLP". This bench re-traces the receive path with every function's
// footprint scaled to i386-like density and reports the working set and
// the cold-cache fetch cost on the 8 KB machine for both encodings.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/cache.hpp"
#include "stack/rx_path_trace.hpp"
#include "trace/working_set.hpp"

namespace {

struct Encoding {
  const char* name;
  double scale;
};

/// Cold I-cache misses for one replay of the traced code references.
std::uint64_t cold_misses(const ldlp::trace::TraceBuffer& buffer) {
  ldlp::sim::Cache icache(ldlp::sim::CacheConfig{8192, 32, 1});
  for (const auto& ref : buffer.refs()) {
    if (ref.kind == ldlp::trace::RefKind::kCode)
      (void)icache.access_range(ref.addr, ref.len);
  }
  return icache.stats().misses;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ldlp;
  benchutil::Flags flags(argc, argv);
  const auto payload = static_cast<std::uint32_t>(flags.u64("payload", 512));
  benchutil::BenchReport report("ablation_code_density", flags);
  report.config_u64("payload", payload);

  const Encoding encodings[] = {
      {"Alpha (RISC)", 1.0},
      {"i386 (CISC, ~50% denser)", 0.5},
  };
  const char* enc_key[] = {"alpha", "i386"};

  benchutil::heading(
      "Ablation: instruction-set code density (paper section 5.2)");
  std::printf("%-26s | %12s | %14s | %12s\n", "encoding", "code bytes",
              "cold I-misses", "stall cycles");
  std::uint64_t misses[2] = {0, 0};
  int slot = 0;
  for (const Encoding& enc : encodings) {
    stack::StackTracer tracer(enc.scale);
    trace::TraceBuffer buffer;
    if (!stack::trace_tcp_receive_ack(tracer, buffer, {payload, 2})) {
      std::fprintf(stderr, "FAILED: receive path did not complete\n");
      return 1;
    }
    const auto ws = trace::analyze_working_set(buffer, 32);
    const std::uint64_t m = cold_misses(buffer);
    const std::string key = enc_key[slot];
    report.metric(key + ".code_bytes", static_cast<double>(ws.code_bytes()));
    report.metric(key + ".cold_i_misses", static_cast<double>(m));
    misses[slot++] = m;
    std::printf("%-26s | %12llu | %14llu | %12llu\n", enc.name,
                static_cast<unsigned long long>(ws.code_bytes()),
                static_cast<unsigned long long>(m),
                static_cast<unsigned long long>(m * 20));
  }
  std::printf(
      "\nWith equal 8 KB caches the denser encoding fetches %.0f%% fewer\n"
      "instruction lines per message — the paper's 'one more volley into\n"
      "the CISC/RISC debate'. Note the i386 working set (~16 KB) still\n"
      "exceeds the cache, so LDLP helps there too, just by a smaller\n"
      "factor.\n",
      100.0 * (1.0 - static_cast<double>(misses[1]) /
                         static_cast<double>(misses[0])));
  report.metric("miss_reduction_frac",
                1.0 - static_cast<double>(misses[1]) /
                          static_cast<double>(misses[0]));
  report.write();
  return 0;
}
