// Ablation A: why "all available messages, bounded by the data cache"?
//
// Sweeps the LDLP batch cap at a fixed heavy load. Cap 1 degenerates to
// conventional scheduling; caps beyond the D-cache bound stop helping the
// I-cache but keep hurting the D-cache (and add latency) — the paper's
// blocking estimate (~12 messages for this configuration) sits at the
// knee.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "synth/sweep.hpp"

int main(int argc, char** argv) {
  using namespace ldlp;
  benchutil::Flags flags(argc, argv);
  synth::SweepOptions opt;
  opt.runs = static_cast<std::uint32_t>(flags.u64("runs", 20));
  opt.seed = flags.u64("seed", 0x5eed);
  const double rate = flags.f64("rate", 8000.0);
  benchutil::BenchReport report("ablation_batch_cap", flags);
  report.config_u64("runs", opt.runs);
  report.config_u64("seed", opt.seed);
  report.config("rate", std::to_string(rate));

  benchutil::heading("Ablation: LDLP batch-size cap at 8000 msgs/s");
  std::printf("%6s | %11s | %10s %10s | %7s | %6s\n", "cap", "mean lat",
              "I-miss/msg", "D-miss/msg", "drop%", "batch");
  for (const std::uint32_t cap : {1u, 2u, 4u, 8u, 12u, 16u, 32u, 64u, 500u}) {
    synth::SynthConfig cfg;
    cfg.mode = synth::SynthMode::kLdlp;
    cfg.batch_limit = cap;
    const auto points = synth::sweep_poisson_rates(cfg, {rate}, opt);
    const auto& m = points.front().mean;
    std::printf("%6u | %11s | %10.1f %10.1f | %6.1f%% | %6.2f\n", cap,
                benchutil::fmt_latency(m.mean_latency_sec).c_str(),
                m.i_misses_per_msg, m.d_misses_per_msg,
                m.offered != 0 ? 100.0 * static_cast<double>(m.dropped) /
                                     static_cast<double>(m.offered)
                               : 0.0,
                m.mean_batch);
    const std::string c = std::to_string(cap);
    report.metric("mean_latency_sec@cap" + c, m.mean_latency_sec);
    report.metric("i_miss_per_msg@cap" + c, m.i_misses_per_msg);
    report.metric("d_miss_per_msg@cap" + c, m.d_misses_per_msg);
  }
  report.write();
  std::printf(
      "\nThe D-cache blocking estimate for this machine is 12 messages\n"
      "(8 KB cache - 5 x 256 B layer data over 552 B messages); caps near\n"
      "it capture nearly all of the I-miss reduction without the D-miss\n"
      "growth of unbounded batching.\n");
  return 0;
}
