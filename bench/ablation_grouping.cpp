// Ablation F: layer grouping vs cache size (paper section 6).
//
// The §6 procedure — measure per-layer working sets, then group layers so
// each group's code is cache-co-resident — sits between the paper's two
// extremes (group=1 is pure LDLP; one all-layer group is the conventional
// order inside a batch). Two lessons fall out of the sweep:
//
//  1. Grouping only pays when the group really is conflict-free. Under
//     direct-mapped caches with uncontrolled placement, two 6 KB layers
//     conflict somewhere almost surely, and a conflicting group thrashes
//     *per message* — worse than not grouping. (This is why the paper's
//     on-line LDLP schedules single layers on its direct-mapped machine.)
//     The bench therefore runs 4-way caches, standing in for the layout
//     control (Cord) the paper assumes within a layer.
//
//  2. Even associative caches cannot be filled to the brim: individual
//     sets overflow first. core::plan_groups leaves a 25% margin.
#include <cstdio>

#include "bench_util.hpp"
#include "core/grouping.hpp"
#include "synth/sweep.hpp"

int main(int argc, char** argv) {
  using namespace ldlp;
  benchutil::Flags flags(argc, argv);
  synth::SweepOptions opt;
  opt.runs = static_cast<std::uint32_t>(flags.u64("runs", 15));
  opt.seed = flags.u64("seed", 0x5eed);
  const double rate = flags.f64("rate", 8000.0);
  benchutil::BenchReport report("ablation_grouping", flags);
  report.config_u64("runs", opt.runs);
  report.config_u64("seed", opt.seed);
  report.config("rate", std::to_string(rate));

  auto config_for = [&](std::uint32_t kb, std::uint32_t group) {
    synth::SynthConfig cfg;
    cfg.mode = synth::SynthMode::kLdlp;
    cfg.cpu.memory.icache.size_bytes = kb * 1024;
    cfg.cpu.memory.icache.ways = 4;
    cfg.cpu.memory.dcache.ways = 4;
    cfg.layers_per_group = group;
    return cfg;
  };

  benchutil::heading(
      "Ablation: LDLP layer grouping vs I-cache size (4-way caches)");
  std::printf("(%u runs per cell, %.0f msgs/s; 5 layers x 6 KB code)\n\n",
              opt.runs, rate);
  std::printf("%9s |", "icache");
  for (std::uint32_t group = 1; group <= 5; ++group)
    std::printf("    group=%u", group);
  std::printf(" | auto plan\n");

  for (const std::uint32_t kb : {8u, 16u, 32u, 64u}) {
    std::printf("%8uK |", kb);
    for (std::uint32_t group = 1; group <= 5; ++group) {
      const auto points =
          synth::sweep_poisson_rates(config_for(kb, group), {rate}, opt);
      std::printf(" %10s",
                  benchutil::fmt_latency(points.front().mean.mean_latency_sec)
                      .c_str());
      report.metric("mean_latency_sec@" + std::to_string(kb) + "kb.group" +
                        std::to_string(group),
                    points.front().mean.mean_latency_sec);
    }
    // The automatic §6 plan for this cache size.
    const auto cfg = config_for(kb, 0);
    synth::SynthStack probe(cfg);
    const auto points = synth::sweep_poisson_rates(cfg, {rate}, opt);
    report.metric("mean_latency_sec@" + std::to_string(kb) + "kb.auto",
                  points.front().mean.mean_latency_sec);
    std::printf(" | %9s (",
                benchutil::fmt_latency(points.front().mean.mean_latency_sec)
                    .c_str());
    for (std::size_t i = 0; i < probe.groups().size(); ++i)
      std::printf("%s%u", i != 0 ? "+" : "", probe.groups()[i]);
    std::printf(")\n");
  }
  std::printf(
      "\nReading the table: on the paper's 8 KB machine only one layer fits\n"
      "-> pure LDLP is right; at 16 KB pairing layers is slightly better\n"
      "(half the queue hand-offs, message data loaded per group); at 32 KB\n"
      "groups of up to four win; five layers in 32 KB overflows sets and\n"
      "collapses. The auto plan tracks the optimum through 32 KB; the\n"
      "64 KB row shows the limit of an aggregate-capacity margin — five\n"
      "randomly placed regions still overload a few sets, so a planner\n"
      "with layout control (or a per-set conflict model) could do ~20%%\n"
      "better there.\n");
  report.write();
  return 0;
}
