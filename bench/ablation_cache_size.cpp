// Ablation B: "If the future brings processors with large primary caches,
// will LDLP become irrelevant?" (paper section 6).
//
// Sweeps the I-cache (and proportionally D-cache) size at a fixed load.
// Once the whole five-layer working set (30 KB of code) fits, LDLP's
// advantage vanishes — exactly the paper's prediction that 64 KB caches
// erase the gain for this stack, while larger stacks (encryption layers,
// richer signalling) would push the threshold up again.
#include <cstdio>

#include "bench_util.hpp"
#include "synth/sweep.hpp"

int main(int argc, char** argv) {
  using namespace ldlp;
  benchutil::Flags flags(argc, argv);
  synth::SweepOptions opt;
  opt.runs = static_cast<std::uint32_t>(flags.u64("runs", 20));
  opt.seed = flags.u64("seed", 0x5eed);
  const double rate = flags.f64("rate", 3000.0);
  benchutil::BenchReport report("ablation_cache_size", flags);
  report.config_u64("runs", opt.runs);
  report.config_u64("seed", opt.seed);
  report.config("rate", std::to_string(rate));

  benchutil::heading("Ablation: primary cache size at 3000 msgs/s");
  std::printf("%7s | %22s | %22s | %8s\n", "KB", "conv lat / I-miss",
              "LDLP lat / I-miss", "speedup");
  for (const std::uint32_t kb : {4u, 8u, 16u, 32u, 64u}) {
    synth::SynthConfig conv;
    conv.mode = synth::SynthMode::kConventional;
    conv.cpu.memory.icache.size_bytes = kb * 1024;
    conv.cpu.memory.dcache.size_bytes = kb * 1024;
    synth::SynthConfig ldlp = conv;
    ldlp.mode = synth::SynthMode::kLdlp;

    const auto pc = synth::sweep_poisson_rates(conv, {rate}, opt);
    const auto pl = synth::sweep_poisson_rates(ldlp, {rate}, opt);
    const auto& c = pc.front().mean;
    const auto& l = pl.front().mean;
    std::printf("%7u | %11s / %7.1f | %11s / %7.1f | %7.2fx\n", kb,
                benchutil::fmt_latency(c.mean_latency_sec).c_str(),
                c.i_misses_per_msg,
                benchutil::fmt_latency(l.mean_latency_sec).c_str(),
                l.i_misses_per_msg,
                l.mean_latency_sec > 0.0
                    ? c.mean_latency_sec / l.mean_latency_sec
                    : 0.0);
    const std::string k = std::to_string(kb);
    report.metric("conv.mean_latency_sec@" + k + "kb", c.mean_latency_sec);
    report.metric("conv.i_miss_per_msg@" + k + "kb", c.i_misses_per_msg);
    report.metric("ldlp.mean_latency_sec@" + k + "kb", l.mean_latency_sec);
    report.metric("ldlp.i_miss_per_msg@" + k + "kb", l.i_misses_per_msg);
  }
  report.write();
  std::printf(
      "\nWith 32-64 KB caches the 30 KB five-layer stack fits and the two\n"
      "schedules converge (paper section 6); small caches show the full\n"
      "LDLP advantage.\n");
  return 0;
}
