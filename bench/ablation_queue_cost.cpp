// Ablation C: sensitivity to the enqueue/dequeue cost.
//
// Section 3.2 estimates ~40 instructions per queue hand-off. This sweep
// shows how much headroom the technique has: even at 4x the estimated
// cost, LDLP's miss savings dominate at heavy load; the cost matters most
// at light load where batches are ~1 and the queueing is pure overhead.
#include <cstdio>

#include "bench_util.hpp"
#include "synth/sweep.hpp"

int main(int argc, char** argv) {
  using namespace ldlp;
  benchutil::Flags flags(argc, argv);
  synth::SweepOptions opt;
  opt.runs = static_cast<std::uint32_t>(flags.u64("runs", 20));
  opt.seed = flags.u64("seed", 0x5eed);
  benchutil::BenchReport report("ablation_queue_cost", flags);
  report.config_u64("runs", opt.runs);
  report.config_u64("seed", opt.seed);

  benchutil::heading("Ablation: LDLP queue hand-off cost (cycles/msg/layer)");
  std::printf("%6s | %16s | %16s\n", "cost", "lat @1000 msg/s",
              "lat @8000 msg/s");
  for (const std::uint32_t cost : {0u, 20u, 40u, 80u, 160u}) {
    synth::SynthConfig cfg;
    cfg.mode = synth::SynthMode::kLdlp;
    cfg.queue_cost_cycles = cost;
    const auto points = synth::sweep_poisson_rates(cfg, {1000, 8000}, opt);
    std::printf("%6u | %16s | %16s\n", cost,
                benchutil::fmt_latency(points[0].mean.mean_latency_sec).c_str(),
                benchutil::fmt_latency(points[1].mean.mean_latency_sec).c_str());
    const std::string c = std::to_string(cost);
    report.metric("ldlp.mean_latency_sec@1000.cost" + c,
                  points[0].mean.mean_latency_sec);
    report.metric("ldlp.mean_latency_sec@8000.cost" + c,
                  points[1].mean.mean_latency_sec);
  }

  // Reference: conventional at the same loads.
  synth::SynthConfig conv;
  conv.mode = synth::SynthMode::kConventional;
  const auto pc = synth::sweep_poisson_rates(conv, {1000, 8000}, opt);
  std::printf("%6s | %16s | %16s  (conventional reference)\n", "-",
              benchutil::fmt_latency(pc[0].mean.mean_latency_sec).c_str(),
              benchutil::fmt_latency(pc[1].mean.mean_latency_sec).c_str());
  report.metric("conv.mean_latency_sec@1000", pc[0].mean.mean_latency_sec);
  report.metric("conv.mean_latency_sec@8000", pc[1].mean.mean_latency_sec);
  report.write();
  return 0;
}
