// Hardware-counter cross-check: L1 instruction-cache misses of the *real*
// stack under conventional vs LDLP scheduling, measured with
// perf_event_open on the host CPU.
//
// The paper's effect is strongest on 8 KB-cache 1995 machines; modern
// cores have 32-64 KB L1i and deep front ends, so the absolute numbers
// here are small — the point of this bench is methodological: the same
// experiment the paper ran with an instruction-level simulator can be run
// against this library's native code path with CPU counters. In
// containers or locked-down kernels perf_event is often unavailable; the
// bench then reports that and exits cleanly.
#include <cstdio>
#include <cstring>
#include <vector>

#if defined(__linux__)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

#include "pipe/pipeline.hpp"
#include "stack/host.hpp"

using namespace ldlp;

namespace {

#if defined(__linux__)

class PerfCounter {
 public:
  explicit PerfCounter(std::uint64_t config_value, std::uint32_t type) {
    perf_event_attr attr{};
    attr.size = sizeof attr;
    attr.type = type;
    attr.config = config_value;
    attr.disabled = 1;
    attr.exclude_kernel = 1;
    attr.exclude_hv = 1;
    fd_ = static_cast<int>(
        syscall(SYS_perf_event_open, &attr, 0, -1, -1, 0));
  }
  ~PerfCounter() {
    if (fd_ >= 0) close(fd_);
  }
  [[nodiscard]] bool ok() const noexcept { return fd_ >= 0; }
  void start() const {
    ioctl(fd_, PERF_EVENT_IOC_RESET, 0);
    ioctl(fd_, PERF_EVENT_IOC_ENABLE, 0);
  }
  [[nodiscard]] std::uint64_t stop() const {
    ioctl(fd_, PERF_EVENT_IOC_DISABLE, 0);
    std::uint64_t value = 0;
    if (read(fd_, &value, sizeof value) != sizeof value) return 0;
    return value;
  }

 private:
  int fd_ = -1;
};

/// Run `frames` TCP data segments through a receiving host in bursts of
/// `burst`, counting L1i misses during the receive-side processing only.
std::uint64_t measure(core::SchedMode mode, int frames, int burst,
                      PerfCounter& counter) {
  stack::HostConfig ca;
  ca.name = "tx";
  ca.mac = {2, 0, 0, 0, 0, 1};
  ca.ip = wire::ip_from_parts(10, 0, 0, 1);
  stack::HostConfig cb = ca;
  cb.name = "rx";
  cb.mac = {2, 0, 0, 0, 0, 2};
  cb.ip = wire::ip_from_parts(10, 0, 0, 2);
  cb.mode = mode;
  stack::Host tx(ca);
  stack::Host rx(cb);
  stack::NetDevice::connect(tx.device(), rx.device());
  (void)rx.tcp().listen(80);
  stack::PcbId accepted = stack::kNoPcb;
  rx.tcp().set_accept_hook([&](stack::PcbId id) { accepted = id; });
  const stack::PcbId conn = tx.tcp().connect(cb.ip, 80);
  for (int i = 0; i < 8; ++i) {
    tx.pump();
    rx.pump();
  }
  if (accepted == stack::kNoPcb) return 0;

  const std::vector<std::uint8_t> payload(400, 0x7a);
  std::vector<std::uint8_t> sink(65536);
  std::uint64_t total = 0;
  for (int sent = 0; sent < frames; sent += burst) {
    for (int i = 0; i < burst; ++i) {
      (void)tx.tcp().send(conn, payload);
      tx.pump();
    }
    counter.start();
    rx.pump();  // the measured region: the receive path only
    total += counter.stop();
    (void)rx.sockets().read(rx.tcp().socket_of(accepted), sink);
    tx.pump();
  }
  return total;
}

/// Same idea for the staged receive path: `frames` UDP datagrams pulled
/// through pipe::StagedRx in bursts of `burst`, counting L1i misses
/// inside StagedRx::pump() only — the native analogue of fig_pipeline's
/// simulated i-miss/msg column.
std::uint64_t measure_staged(pipe::RxMode mode, int frames, int burst,
                             PerfCounter& counter) {
  stack::HostConfig ca;
  ca.name = "tx";
  ca.mac = {2, 0, 0, 0, 0, 1};
  ca.ip = wire::ip_from_parts(10, 0, 0, 1);
  stack::HostConfig cb = ca;
  cb.name = "rx";
  cb.mac = {2, 0, 0, 0, 0, 2};
  cb.ip = wire::ip_from_parts(10, 0, 0, 2);
  cb.mode = core::SchedMode::kLdlp;  // StagedRx schedules the graph itself.
  stack::Host tx(ca);
  stack::Host rx(cb);
  stack::NetDevice::connect(tx.device(), rx.device());

  pipe::PipelineConfig pc;
  pc.mode = mode;
  pc.lanes = 2;
  pc.batch_limit = 8;
  pipe::StagedRx staged(rx, pc);

  const stack::SocketId sock =
      rx.sockets().create(stack::SocketKind::kDatagram);
  if (!rx.udp().bind(9000, sock)) return 0;
  const std::vector<std::uint8_t> payload(256, 0x7a);
  tx.udp().send(9001, cb.ip, 9000, payload);  // parks behind ARP
  for (int i = 0; i < 6; ++i) {
    tx.pump();
    (void)staged.pump();
  }
  while (rx.sockets().read_datagram(sock).has_value()) {
  }

  std::uint64_t total = 0;
  for (int sent = 0; sent < frames; sent += burst) {
    for (int i = 0; i < burst; ++i)
      tx.udp().send(9001, cb.ip, 9000, payload);
    tx.pump();
    counter.start();
    (void)staged.pump();  // the measured region: the staged rx path only
    total += counter.stop();
    while (rx.sockets().read_datagram(sock).has_value()) {
    }
  }
  return total;
}

#endif  // __linux__

}  // namespace

int main() {
#if defined(__linux__)
  const std::uint64_t l1i_miss =
      PERF_COUNT_HW_CACHE_L1I | (PERF_COUNT_HW_CACHE_OP_READ << 8) |
      (PERF_COUNT_HW_CACHE_RESULT_MISS << 16);
  PerfCounter counter(l1i_miss, PERF_TYPE_HW_CACHE);
  if (!counter.ok()) {
    std::printf(
        "native_icache: perf_event_open unavailable (container or\n"
        "kernel.perf_event_paranoid) — skipping the hardware-counter\n"
        "cross-check. The simulated-machine benches carry the result.\n");
    return 0;
  }

  const int frames = 4096;
  const int burst = 32;
  std::printf("L1 I-cache misses, native receive path, %d frames in "
              "bursts of %d:\n", frames, burst);
  for (const auto mode :
       {core::SchedMode::kConventional, core::SchedMode::kLdlp}) {
    std::uint64_t best = ~0ull;
    for (int rep = 0; rep < 3; ++rep) {
      const std::uint64_t misses = measure(mode, frames, burst, counter);
      if (misses != 0 && misses < best) best = misses;
    }
    std::printf("  %-13s %10.1f misses/frame\n",
                mode == core::SchedMode::kLdlp ? "LDLP" : "conventional",
                static_cast<double>(best) / frames);
  }
  std::printf("\nL1 I-cache misses, staged receive path (pipe::StagedRx), "
              "%d frames in bursts of %d:\n", frames, burst);
  for (const auto mode : {pipe::RxMode::kLdlp, pipe::RxMode::kPipelined,
                          pipe::RxMode::kHybrid}) {
    std::uint64_t best = ~0ull;
    for (int rep = 0; rep < 3; ++rep) {
      const std::uint64_t misses = measure_staged(mode, frames, burst,
                                                  counter);
      if (misses != 0 && misses < best) best = misses;
    }
    std::printf("  %-13s %10.1f misses/frame\n", pipe::rx_mode_name(mode),
                static_cast<double>(best) / frames);
  }
  std::printf(
      "\n(Modern L1i caches are 4-8x the paper's machine and the mini-\n"
      "stack's code footprint is small, so expect a much smaller gap than\n"
      "the 1995 simulation shows — direction, not magnitude.)\n");
#else
  std::printf("native_icache: perf_event is Linux-only; skipping.\n");
#endif
  return 0;
}
