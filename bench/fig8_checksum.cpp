// Figure 8: cache effects in checksum routines.
//
// Compares the elaborate 4.4BSD-style in_cksum (992 bytes of active code
// when messages exceed one unroll block) against a simple 288-byte routine,
// with warm and cold instruction caches, on the simulated DEC 3000/400-
// class machine (32-byte lines, 20-cycle miss). Per-byte execution costs
// are set from the two routines' instruction counts (the elaborate one
// retires ~1 cycle/byte, the simple one ~1.5); the *cache fill* component
// is what the model measures, and it reproduces the paper's ~426- and
// ~176-cycle cold-start offsets and the ~900-byte crossover.
#include <cstdio>

#include "bench_util.hpp"
#include "sim/cpu_model.hpp"

namespace {

struct Routine {
  const char* name;
  double fixed_cycles;
  double cycles_per_byte;
  std::uint32_t small_code_bytes;  ///< Touched when size < one unroll block.
  std::uint32_t full_code_bytes;   ///< Touched otherwise.
};

constexpr Routine kElaborate{"4.4BSD", 80.0, 1.0, 682, 992};
constexpr Routine kSimple{"Simple", 30.0, 1.5, 288, 288};

/// Simulated cycles for one checksum call at the given message size.
double run_once(const Routine& r, std::uint32_t size, bool warm) {
  ldlp::sim::CpuConfig cfg;  // paper machine defaults
  ldlp::sim::CpuModel cpu(cfg);
  const std::uint64_t code_base = 0x10000;
  const std::uint32_t active = size < 32 ? r.small_code_bytes
                                         : r.full_code_bytes;
  // A fresh CpuModel starts cold; warming is a pre-touch of the active
  // code (the measurement below only counts cycles after this point).
  if (warm) cpu.ifetch(code_base, active);
  const std::uint64_t before = cpu.busy_cycles();
  cpu.ifetch(code_base, active);
  cpu.execute(static_cast<std::uint64_t>(r.fixed_cycles +
                                         r.cycles_per_byte * size));
  return static_cast<double>(cpu.busy_cycles() - before);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ldlp;
  benchutil::Flags flags(argc, argv);
  const auto max_size = static_cast<std::uint32_t>(flags.u64("max", 1000));
  benchutil::BenchReport report("fig8_checksum", flags);
  report.config_u64("max", max_size);

  benchutil::heading("Figure 8: cache effects in checksum routines (cycles)");
  std::printf("%6s | %12s %12s | %12s %12s | %s\n", "bytes", "4.4BSD cold",
              "Simple cold", "4.4BSD warm", "Simple warm", "cold winner");

  std::uint32_t crossover = 0;
  for (std::uint32_t size = 0; size <= max_size; size += 64) {
    // Paper averages each [x, x+15] bucket; the model is deterministic per
    // size so the midpoint suffices.
    const double ec = run_once(kElaborate, size, false);
    const double sc = run_once(kSimple, size, false);
    const double ew = run_once(kElaborate, size, true);
    const double sw = run_once(kSimple, size, true);
    std::printf("%6u | %12.0f %12.0f | %12.0f %12.0f | %s\n", size, ec, sc,
                ew, sw, sc <= ec ? "simple" : "4.4BSD");
    if (crossover == 0 && size > 0 && ec < sc) crossover = size;
    if (size % 256 == 0) {
      const std::string sz = std::to_string(size);
      report.metric("bsd.cold_cycles@" + sz, ec);
      report.metric("simple.cold_cycles@" + sz, sc);
      report.metric("bsd.warm_cycles@" + sz, ew);
      report.metric("simple.warm_cycles@" + sz, sw);
    }
  }

  const double fill_elaborate =
      run_once(kElaborate, 0, false) - run_once(kElaborate, 0, true);
  const double fill_simple =
      run_once(kSimple, 0, false) - run_once(kSimple, 0, true);
  std::printf("\nCache-fill cost at size 0: 4.4BSD %.0f cycles (paper ~426), "
              "simple %.0f cycles (paper ~176).\n",
              fill_elaborate, fill_simple);
  if (crossover != 0) {
    std::printf("Cold-cache crossover: the elaborate routine wins above "
                "~%u bytes (paper: ~900).\n", crossover);
  } else {
    std::printf("Cold-cache crossover beyond %u bytes (paper: ~900).\n",
                max_size);
  }
  std::printf(
      "Warm cache: the elaborate routine is faster at nearly all sizes, as "
      "in the paper.\n");
  report.metric("bsd.cache_fill_cycles", fill_elaborate);
  report.metric("simple.cache_fill_cycles", fill_simple);
  report.metric("cold_crossover_bytes", static_cast<double>(crossover));
  report.write();
  return 0;
}
