// Extension: receive-side flow sharding (ldlp::par) under LDLP batching.
//
// The paper runs its whole receive path on one core behind one receive
// queue. Modern NICs hash flows over N receive queues (RSS), and each
// queue can drain on a core with its own primary cache. This sweep holds
// total offered load fixed and grows the shard count 1 -> 8, asking the
// two questions that decide whether sharding composes with LDLP:
//
//  1. Do per-shard i-cache misses stay no worse than the single-queue
//     LDLP baseline? (They must: layer code is shared text, and a shard
//     that still fills its batch limit amortises i-cache fills exactly
//     as well as the single queue did.)
//  2. What happens to latency? (Each shard drains 1/N of the load, so
//     queueing delay collapses even though per-message work is equal.)
//
// Also reports the Toeplitz load-balance quality (busiest shard's share
// of messages over the fair share) so a skewed hash shows up here rather
// than in production. Every number is a pure function of --seed; the
// regression gate pins a reduced version of this sweep.
//
// --jobs=N runs the sweep's shard-count points on a par::WorkerPool.
// Results land in point-indexed slots, so the output is bit-identical
// for every N.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "par/shard_engine.hpp"
#include "par/worker_pool.hpp"

int main(int argc, char** argv) {
  using namespace ldlp;
  benchutil::Flags flags(argc, argv);
  const std::uint64_t seed = flags.u64("seed", 0x5eed);
  const std::uint64_t flows = flags.u64("flows", 64);
  const std::uint64_t messages = flags.u64("messages", 20000);
  const double rate = static_cast<double>(flags.u64("rate", 16000));
  const std::uint64_t jobs = flags.u64("jobs", 1);
  const double rx_usecs = static_cast<double>(flags.u64("rx_usecs", 750));

  benchutil::BenchReport report("ext_shard_sweep", flags);
  report.config_u64("seed", seed);
  report.config_u64("flows", flows);
  report.config_u64("messages", messages);
  report.config_u64("rate", static_cast<std::uint64_t>(rate));
  report.config_u64("rx_usecs", static_cast<std::uint64_t>(rx_usecs));

  const std::vector<std::uint32_t> shard_counts = {1, 2, 4, 8};
  const double coalesce[2] = {0.0, rx_usecs * 1e-6};
  // 2 modes x 4 shard counts, point-indexed so output is --jobs-invariant.
  std::vector<par::ShardEngineResult> results(2 * shard_counts.size());

  par::WorkerPool pool(static_cast<std::size_t>(jobs));
  pool.run(results.size(), [&](std::size_t point, par::WorkerContext&) {
    par::ShardEngineConfig cfg;
    cfg.shards = shard_counts[point % shard_counts.size()];
    cfg.flows = static_cast<std::uint32_t>(flows);
    cfg.messages = messages;
    cfg.arrival_rate_hz = rate;
    cfg.seed = seed;
    cfg.coalesce_sec = coalesce[point / shard_counts.size()];
    results[point] = par::ShardEngine(cfg).run();
  });

  for (int mode = 0; mode < 2; ++mode) {
    // Each mode's own single-queue run is its LDLP baseline.
    const double single_queue_i = static_cast<double>(
        results[static_cast<std::size_t>(mode) * shard_counts.size()]
            .shards[0]
            .i_misses);
    benchutil::heading(
        mode == 0
            ? "Flow-sharded LDLP receive, pure polling, equal total load"
            : "Same sweep with receive coalescing (the NIC rx-usecs knob)");
    std::printf("%6s | %6s %6s | %6s %5s | %11s %11s | %9s %6s\n", "shards",
                "i/msg", "d/msg", "batch", "limit", "mean lat", "p99 lat",
                "sh.imiss", "skew");
    for (std::size_t i = 0; i < shard_counts.size(); ++i) {
      const par::ShardEngineResult& r =
          results[static_cast<std::size_t>(mode) * shard_counts.size() + i];
      std::uint64_t max_i = 0;
      for (const par::ShardStats& s : r.shards)
        max_i = std::max(max_i, s.i_misses);
      std::printf("%6u | %6.1f %6.2f | %6.2f %5u | %11s %11s | %9llu %5.2fx\n",
                  shard_counts[i], r.i_miss_per_msg, r.d_miss_per_msg,
                  r.mean_batch, r.batch_limit,
                  benchutil::fmt_latency(r.mean_latency_sec).c_str(),
                  benchutil::fmt_latency(r.p99_latency_sec).c_str(),
                  static_cast<unsigned long long>(max_i), r.max_shard_share);
      const std::string key = std::string(mode == 0 ? "poll" : "coal") + "@" +
                              std::to_string(shard_counts[i]);
      report.metric("i_miss_per_msg." + key, r.i_miss_per_msg);
      report.metric("d_miss_per_msg." + key, r.d_miss_per_msg);
      report.metric("mean_latency_sec." + key, r.mean_latency_sec);
      report.metric("p99_latency_sec." + key, r.p99_latency_sec);
      report.metric("mean_batch." + key, r.mean_batch);
      report.metric("max_shard_share." + key, r.max_shard_share);
      // The acceptance line: the busiest shard's i-cache miss count vs the
      // single-queue LDLP baseline at the same total load (<= 1 passes).
      report.metric("max_shard_i_miss_ratio." + key,
                    static_cast<double>(max_i) / single_queue_i);
    }
  }

  std::printf(
      "\nReading: `sh.imiss` is the busiest shard's i-cache miss count.\n"
      "Sharding alone is not free: splitting the load thins each queue, so\n"
      "under pure polling the batches collapse toward 1 and the busiest\n"
      "shard can miss MORE than the single queue did — LDLP's amortisation\n"
      "is what sharding spends. A modest coalescing window (rx-usecs)\n"
      "buys it back: batches refill (compare `batch` across the tables),\n"
      "every shard's miss count drops below its single-queue baseline,\n"
      "and the latency cost is bounded by the window while each shard's\n"
      "private d-cache now holds only its own flows. Skew is the busiest\n"
      "shard's message share over the fair share; the Toeplitz hash keeps\n"
      "it near 1 once flows outnumber shards by a few x.\n");
  report.write();
  return 0;
}
