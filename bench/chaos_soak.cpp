// Chaos soak: the chaos scenarios run standalone over a wide seed range
// with full conformance checking. Every run is driven by an explicit
// check::Schedule (scenario + seed + per-host fault plans), judged by
// ldlp::check oracles — exactly-once in-order byte-exact TCP delivery,
// at-most-once integral UDP datagrams — and audited after every
// scheduler pass by per-host invariant checkers (TCP sequence pointers,
// reassembly table, ARP accounting).
//
// On failure the harness serialises the run's schedule, delta-debugs it
// down to a minimal still-failing episode set (check::shrink), and writes
// the result as ldlp.schedule.v1 JSON. Any such file — or any hand-edited
// schedule — replays exactly with:
//
//   chaos_soak --replay=<schedule.json>
//
// Seed-range soaks use --seed_lo=<n> --seed_hi=<n> (half-open). Failing
// seeds are listed in BENCH_chaos_soak.json under config.failing_seeds.
// Exit status is nonzero when any seed fails, so the soak slots into CI.
#include <cstdio>
#include <filesystem>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "check/invariants.hpp"
#include "check/oracle.hpp"
#include "check/schedule.hpp"
#include "check/shrink.hpp"
#include "dns/resolver.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "stack/host.hpp"

namespace {

using namespace ldlp;
using wire::ip_from_parts;

constexpr double kHorizon = 1.0;

struct SoakResult {
  bool pass = true;
  std::string why;
  std::string detail;  ///< Extra diagnostics printed under the reason.
  std::vector<std::string> violations;  ///< Oracle + auditor findings.

  void fail(std::string reason) {
    if (pass) why = std::move(reason);
    pass = false;
  }
};

// ---------------------------------------------------------------------------
// Schedules: the canonical per-seed adversity for each scenario. The TCP
// and DNS scenarios draw independent plans (DNS perturbs the seed) so one
// soak seed exercises two distinct fault timelines.

check::Schedule make_tcp_schedule(std::uint64_t seed) {
  check::Schedule s;
  s.scenario = "tcp";
  s.seed = seed;
  s.injectors.push_back({"a", seed * 2 + 1,
                         fault::FaultPlan::random(seed, kHorizon)});
  s.injectors.push_back({"b", seed * 2 + 2,
                         fault::FaultPlan::random(seed ^ 0xbeefULL, kHorizon)});
  return s;
}

check::Schedule make_dns_schedule(std::uint64_t seed) {
  const std::uint64_t base = seed ^ 0xd15ULL;
  check::Schedule s;
  s.scenario = "dns";
  s.seed = seed;
  s.injectors.push_back({"a", base * 2 + 1,
                         fault::FaultPlan::random(base, kHorizon)});
  s.injectors.push_back({"b", base * 2 + 2,
                         fault::FaultPlan::random(base ^ 0xbeefULL, kHorizon)});
  return s;
}

/// Slow-reader TCP: a bigger transfer against an application that drains
/// its socket in a trickle, so the receive buffer rides against hiwat.
/// This is the regime where LDLP's deferred sbappend makes the advertised
/// window momentarily stale — ACKs computed mid-batch overstate the
/// socket room — and the overshoot-handling in SocketLayer::process()
/// earns its keep.
check::Schedule make_tcp_slow_schedule(std::uint64_t seed) {
  const std::uint64_t base = seed ^ 0x51deULL;
  check::Schedule s;
  s.scenario = "tcp-slow";
  s.seed = seed;
  s.injectors.push_back({"a", base * 2 + 1,
                         fault::FaultPlan::random(base, kHorizon)});
  s.injectors.push_back({"b", base * 2 + 2,
                         fault::FaultPlan::random(base ^ 0xbeefULL, kHorizon)});
  return s;
}

// ---------------------------------------------------------------------------

struct Net {
  std::unique_ptr<stack::Host> a;
  std::unique_ptr<stack::Host> b;
  std::vector<std::unique_ptr<fault::FaultInjector>> injectors;

  explicit Net(const check::Schedule& schedule) {
    stack::HostConfig ca;
    ca.name = "a";
    ca.mac = {2, 0, 0, 0, 0, 1};
    ca.ip = ip_from_parts(10, 0, 0, 1);
    // A small pool keeps allocation-failure paths hot: pool-exhaustion
    // episodes leave the stack genuinely starved rather than nibbling at
    // an 8k-mbuf cushion, so recovery code runs on many seeds.
    ca.pool_mbufs = 384;
    ca.pool_clusters = 96;
    // LDLP scheduling: the whole RX backlog is injected (holding mbufs)
    // before any layer runs, so deferred delivery races — stale advertised
    // windows, allocation failure mid-batch — actually occur. The
    // conventional path gets its chaos coverage from tests/test_chaos.cpp.
    ca.mode = core::SchedMode::kLdlp;
    stack::HostConfig cb = ca;
    cb.name = "b";
    cb.mac = {2, 0, 0, 0, 0, 2};
    cb.ip = ip_from_parts(10, 0, 0, 2);
    a = std::make_unique<stack::Host>(ca);
    b = std::make_unique<stack::Host>(cb);
    stack::NetDevice::connect(a->device(), b->device());
    for (const check::InjectorSpec& spec : schedule.injectors) {
      stack::Host* host =
          spec.host == "a" ? a.get() : spec.host == "b" ? b.get() : nullptr;
      if (host == nullptr) continue;  // shrunk/foreign spec: ignore
      injectors.push_back(
          std::make_unique<fault::FaultInjector>(spec.plan, spec.rng_seed));
      host->attach_fault(injectors.back().get());
    }
  }

  ~Net() {
    a->attach_fault(nullptr);
    b->attach_fault(nullptr);
  }

  void tick(double dt) {
    a->advance(dt);
    b->advance(dt);
    a->pump();
    b->pump();
    a->pump();
    b->pump();
  }

  [[nodiscard]] bool faults_cleared() const {
    for (const auto& injector : injectors)
      if (!injector->faults_cleared()) return false;
    return true;
  }

  /// Post-scenario invariants shared by both scenarios: faults cleared,
  /// graphs drained, queue occupancy within bounds, pools leak-free.
  void check(SoakResult& r) {
    for (int i = 0; i < 80 && !faults_cleared(); ++i) tick(0.1);
    if (!faults_cleared())
      r.fail("faults never cleared (delayed frames or held mbufs remain)");
    a->attach_fault(nullptr);
    b->attach_fault(nullptr);
    for (stack::Host* h : {a.get(), b.get()}) {
      h->pump();
      if (h->graph().backlog() != 0)
        r.fail(h->name() + ": graph backlog not drained");
      for (core::LayerId id = 0; id < h->graph().layer_count(); ++id) {
        const core::Layer& layer = h->graph().layer(id);
        if (layer.stats().max_queue > layer.queue_capacity())
          r.fail(h->name() + "/" + layer.name() + ": queue bound exceeded");
      }
      if (h->pool().stats().mbufs_outstanding() != 0)
        r.fail(h->name() + ": mbuf leak (" +
               std::to_string(h->pool().stats().mbufs_outstanding()) +
               " outstanding)");
    }
  }
};

/// Fold conformance findings into the scenario result.
void collect(SoakResult& r, const check::DeliveryOracle& oracle,
             const check::HostAuditor& aud_a,
             const check::HostAuditor& aud_b) {
  for (const std::string& v : oracle.violations()) {
    r.fail("delivery oracle: " + v);
    r.violations.push_back("oracle: " + v);
  }
  for (const check::HostAuditor* aud : {&aud_a, &aud_b}) {
    for (const std::string& v : aud->violations()) {
      r.fail("invariant auditor: " + v);
      r.violations.push_back("audit: " + v);
    }
  }
}

SoakResult run_tcp(const check::Schedule& schedule,
                   std::size_t payload_bytes, std::size_t read_chunk) {
  SoakResult r;
  const std::uint64_t seed = schedule.seed;
  Net net(schedule);
  check::HostAuditor aud_a(*net.a);
  check::HostAuditor aud_b(*net.b);
  aud_a.install();
  aud_b.install();

  check::DeliveryOracle oracle;
  const auto flow = oracle.open_stream("a->b");
  net.b->sockets().set_tap(&oracle);

  stack::PcbId accepted = stack::kNoPcb;
  net.b->tcp().set_accept_hook([&](stack::PcbId id) {
    if (accepted == stack::kNoPcb) {
      accepted = id;
      oracle.bind_stream_rx(flow, net.b->tcp().socket_of(id));
    }
  });
  (void)net.b->tcp().listen(80);
  const stack::PcbId conn =
      net.a->tcp().connect(ip_from_parts(10, 0, 0, 2), 80);
  net.a->tcp().set_send_tap(
      [&](stack::PcbId id, std::span<const std::uint8_t> bytes) {
        if (id == conn) oracle.stream_sent(flow, bytes);
      });
  for (int i = 0; i < 1600 &&
                  net.a->tcp().state(conn) != stack::TcpState::kEstablished;
       ++i)
    net.tick(0.05);
  if (net.a->tcp().state(conn) != stack::TcpState::kEstablished) {
    r.fail("TCP never established");
    return r;
  }
  std::vector<std::uint8_t> payload(payload_bytes);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i * 31 + seed);
  // The send buffer may be smaller than the payload; feed it as the
  // connection drains.
  std::size_t queued = 0;
  std::vector<std::uint8_t> got;
  for (int i = 0; i < 2400 && got.size() < payload.size(); ++i) {
    if (queued < payload.size()) {
      const std::span<const std::uint8_t> rest(payload.data() + queued,
                                               payload.size() - queued);
      if (net.a->tcp().send(conn, rest)) queued = payload.size();
    }
    net.tick(0.05);
    if (accepted == stack::kNoPcb) continue;
    std::vector<std::uint8_t> chunk(read_chunk);
    const std::size_t n =
        net.b->sockets().read(net.b->tcp().socket_of(accepted), chunk);
    got.insert(got.end(), chunk.begin(),
               chunk.begin() + static_cast<std::ptrdiff_t>(n));
  }
  if (queued != payload.size()) r.fail("send refused");
  if (got != payload) {
    r.fail("stream not delivered intact");
    std::size_t diff = 0;
    while (diff < got.size() && diff < payload.size() &&
           got[diff] == payload[diff])
      ++diff;
    r.detail = "got " + std::to_string(got.size()) + "/" +
               std::to_string(payload.size()) + " bytes, first mismatch at " +
               std::to_string(diff) +
               "; a: state=" + std::to_string(static_cast<int>(
                                   net.a->tcp().state(conn))) +
               " rtx=" +
               std::to_string(net.a->tcp().pcb_stats(conn).retransmits) +
               " bad_cksum=" +
               std::to_string(net.a->tcp().tcp_stats().bad_checksum) +
               "; b: bad_cksum=" +
               std::to_string(net.b->tcp().tcp_stats().bad_checksum) +
               " dev_rx_drops=" +
               std::to_string(net.b->device().stats().rx_drops) +
               " shed=" +
               std::to_string(net.b->graph().graph_stats().shed_entry) + "/" +
               std::to_string(net.b->graph().graph_stats().shed_depth);
    for (std::size_t li = 0; li < net.b->graph().layer_count(); ++li) {
      const core::Layer& l =
          net.b->graph().layer(static_cast<core::LayerId>(li));
      r.detail += " " + l.name() + ":d" + std::to_string(l.stats().drops);
    }
  }
  net.a->tcp().close(conn);
  if (accepted != stack::kNoPcb) net.b->tcp().close(accepted);
  for (int i = 0; i < 8; ++i) net.tick(1.0);
  net.check(r);
  (void)oracle.finalize();
  collect(r, oracle, aud_a, aud_b);
  net.b->sockets().set_tap(nullptr);
  return r;
}

SoakResult run_dns(const check::Schedule& schedule) {
  SoakResult r;
  Net net(schedule);
  check::HostAuditor aud_a(*net.a);
  check::HostAuditor aud_b(*net.b);
  aud_a.install();
  aud_b.install();

  dns::DnsServer server(*net.b);
  constexpr int kNames = 8;
  for (int i = 0; i < kNames; ++i)
    server.add_a("h" + std::to_string(i) + ".soak",
                 ip_from_parts(10, 7, 0, static_cast<std::uint8_t>(i)));
  dns::DnsResolver::Config cfg;
  cfg.server_ip = ip_from_parts(10, 0, 0, 2);
  dns::DnsResolver resolver(*net.a, cfg);

  // Datagram oracles, one per direction: queries a->b, responses b->a.
  // The wire may legally duplicate under duplicate (or reorder: a frame
  // can be cloned then displaced) episodes, so re-delivery is tolerated
  // exactly when the schedule says so; byte-exactness never is.
  check::DeliveryOracle to_server;   // taps b's socket layer
  check::DeliveryOracle to_resolver;  // taps a's socket layer
  const bool wire_duplicates =
      schedule.has_kind(fault::FaultKind::kDuplicate);
  to_server.set_allow_duplicates(wire_duplicates);
  to_resolver.set_allow_duplicates(wire_duplicates);
  const auto queries = to_server.open_datagram("dns.query");
  const auto responses = to_resolver.open_datagram("dns.response");
  to_server.bind_datagram_rx(queries, server.socket());
  to_resolver.bind_datagram_rx(responses, resolver.socket());
  net.b->sockets().set_tap(&to_server);
  net.a->sockets().set_tap(&to_resolver);
  net.a->udp().set_send_tap([&](std::uint16_t, std::uint32_t,
                                std::uint16_t dst_port,
                                std::span<const std::uint8_t> payload) {
    if (dst_port == dns::kDnsPort) to_server.datagram_sent(queries, payload);
  });
  net.b->udp().set_send_tap([&](std::uint16_t src_port, std::uint32_t,
                                std::uint16_t,
                                std::span<const std::uint8_t> payload) {
    if (src_port == dns::kDnsPort)
      to_resolver.datagram_sent(responses, payload);
  });

  std::vector<std::optional<std::uint32_t>> results(kNames);
  std::vector<bool> outstanding(kNames, false);
  const auto kick = [&](int i) {
    outstanding[i] = true;
    resolver.resolve(
        "h" + std::to_string(i) + ".soak",
        [&results, &outstanding, i](const std::string&,
                                    std::optional<std::uint32_t> addr) {
          outstanding[i] = false;
          if (addr.has_value()) results[i] = addr;
        });
  };
  for (int i = 0; i < kNames; ++i) kick(i);
  for (int iter = 0; iter < 500; ++iter) {
    net.tick(0.25);
    server.poll();
    net.b->pump();
    net.a->pump();
    resolver.poll();
    bool done = true;
    for (int i = 0; i < kNames; ++i) {
      if (results[i].has_value()) continue;
      done = false;
      if (!outstanding[i]) kick(i);
    }
    if (done) break;
  }
  for (int i = 0; i < kNames; ++i) {
    if (!results[i].has_value())
      r.fail("lookup " + std::to_string(i) + " never converged");
    else if (*results[i] !=
             ip_from_parts(10, 7, 0, static_cast<std::uint8_t>(i)))
      r.fail("lookup " + std::to_string(i) + " converged to wrong address");
  }
  if (!r.pass) {
    const dns::ResolverStats& rs = resolver.stats();
    r.detail = "resolver: lookups=" + std::to_string(rs.lookups) +
               " sent=" + std::to_string(rs.queries_sent) +
               " retries=" + std::to_string(rs.retries) +
               " answers=" + std::to_string(rs.answers) +
               " failures=" + std::to_string(rs.failures) +
               "; server: queries=" + std::to_string(server.stats().queries) +
               " answered=" + std::to_string(server.stats().answered) +
               " malformed=" + std::to_string(server.stats().malformed);
  }
  net.check(r);
  (void)to_server.finalize();
  (void)to_resolver.finalize();
  collect(r, to_server, aud_a, aud_b);
  for (const std::string& v : to_resolver.violations()) {
    r.fail("delivery oracle: " + v);
    r.violations.push_back("oracle: " + v);
  }
  net.a->sockets().set_tap(nullptr);
  net.b->sockets().set_tap(nullptr);
  return r;
}

SoakResult run_schedule(const check::Schedule& schedule) {
  if (schedule.scenario == "tcp")
    return run_tcp(schedule, /*payload_bytes=*/8000, /*read_chunk=*/2000);
  if (schedule.scenario == "tcp-slow")
    return run_tcp(schedule, /*payload_bytes=*/24000, /*read_chunk=*/900);
  if (schedule.scenario == "dns") return run_dns(schedule);
  SoakResult r;
  r.fail("unknown scenario '" + schedule.scenario + "'");
  return r;
}

void print_failure(const SoakResult& r, const check::Schedule& schedule) {
  std::printf("  %s failure: %s\n", schedule.scenario.c_str(), r.why.c_str());
  if (!r.detail.empty()) std::printf("  %s\n", r.detail.c_str());
  for (const std::string& v : r.violations)
    std::printf("    %s\n", v.c_str());
  for (const check::InjectorSpec& spec : schedule.injectors)
    std::printf("  %s plan (rng seed %llu):\n%s", spec.host.c_str(),
                static_cast<unsigned long long>(spec.rng_seed),
                spec.plan.describe().c_str());
}

/// Shrink a failing schedule and write the minimal reproducer next to the
/// bench report. Returns the written path (empty on save failure).
std::string shrink_and_save(const check::Schedule& failing,
                            const std::string& out_dir) {
  const check::ShrinkResult minimal = check::shrink(
      failing,
      [](const check::Schedule& candidate) {
        return !run_schedule(candidate).pass;
      });
  std::printf(
      "  shrink: %zu -> %zu episodes in %zu runs%s\n",
      minimal.episodes_before, minimal.episodes_after, minimal.runs,
      minimal.converged ? "" : " (run budget hit; may not be 1-minimal)");
  const std::string path = out_dir + "/chaos_" + failing.scenario + "_seed" +
                           std::to_string(failing.seed) + ".schedule.json";
  if (!minimal.schedule.save(path)) {
    std::printf("  warning: could not write %s\n", path.c_str());
    return {};
  }
  std::printf("  minimal schedule: %s\n  reproduce: chaos_soak --replay=%s\n",
              path.c_str(), path.c_str());
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::Flags flags(argc, argv);

  // --replay runs one serialised schedule and reports, nothing else.
  const char* replay = flags.str("replay", nullptr);
  if (replay != nullptr) {
    std::string error;
    const auto schedule = check::Schedule::load(replay, &error);
    if (!schedule.has_value()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
    std::printf("replaying %s: scenario %s, seed %llu, %zu episodes\n",
                replay, schedule->scenario.c_str(),
                static_cast<unsigned long long>(schedule->seed),
                schedule->episode_count());
    const SoakResult r = run_schedule(*schedule);
    std::printf("%s\n", r.pass ? "PASS" : "FAIL");
    if (!r.pass) print_failure(r, *schedule);
    return r.pass ? 0 : 1;
  }

  // Seed range: --seed_lo/--seed_hi (half-open); --seed/--seeds remain as
  // aliases so existing reproduce lines keep working.
  const std::uint64_t seed_lo = flags.u64("seed_lo", flags.u64("seed", 1));
  const std::uint64_t seed_hi =
      flags.u64("seed_hi", seed_lo + flags.u64("seeds", 32));
  const std::uint64_t seeds = seed_hi > seed_lo ? seed_hi - seed_lo : 0;
  const bool verbose = flags.u64("verbose", 0) != 0;
  const bool no_shrink = flags.u64("no_shrink", 0) != 0;
  const std::string out_dir = flags.str("out_dir", ".");
  std::error_code mkdir_ec;
  std::filesystem::create_directories(out_dir, mkdir_ec);
  ldlp::benchutil::BenchReport report("chaos_soak", flags);
  report.config_u64("seed_lo", seed_lo);
  report.config_u64("seed_hi", seed_hi);

  benchutil::heading(
      "Chaos soak: TCP + DNS under seeded fault schedules, oracle-checked");
  std::printf("seeds [%llu, %llu); horizon %.1f s per plan\n\n",
              static_cast<unsigned long long>(seed_lo),
              static_cast<unsigned long long>(seed_hi), kHorizon);

  std::uint64_t failures = 0;
  std::uint64_t tcp_failures = 0;
  std::uint64_t dns_failures = 0;
  std::string failing_seeds;
  for (std::uint64_t seed = seed_lo; seed < seed_hi; ++seed) {
    const check::Schedule tcp_schedule = make_tcp_schedule(seed);
    const check::Schedule slow_schedule = make_tcp_slow_schedule(seed);
    const check::Schedule dns_schedule = make_dns_schedule(seed);
    const SoakResult tcp = run_schedule(tcp_schedule);
    const SoakResult slow = run_schedule(slow_schedule);
    const SoakResult dns_r = run_schedule(dns_schedule);
    const bool pass = tcp.pass && slow.pass && dns_r.pass;
    if (!tcp.pass || !slow.pass) ++tcp_failures;
    if (!dns_r.pass) ++dns_failures;
    std::printf("seed %6llu  tcp:%s  tcp-slow:%s  dns:%s\n",
                static_cast<unsigned long long>(seed),
                tcp.pass ? "PASS" : "FAIL", slow.pass ? "PASS" : "FAIL",
                dns_r.pass ? "PASS" : "FAIL");
    if (!pass || verbose) {
      if (!tcp.pass) print_failure(tcp, tcp_schedule);
      if (!slow.pass) print_failure(slow, slow_schedule);
      if (!dns_r.pass) print_failure(dns_r, dns_schedule);
      if (!tcp.pass && !no_shrink) shrink_and_save(tcp_schedule, out_dir);
      if (!slow.pass && !no_shrink) shrink_and_save(slow_schedule, out_dir);
      if (!dns_r.pass && !no_shrink) shrink_and_save(dns_schedule, out_dir);
      std::printf(
          "  reproduce: chaos_soak --seed_lo=%llu --seed_hi=%llu "
          "--verbose=1\n",
          static_cast<unsigned long long>(seed),
          static_cast<unsigned long long>(seed + 1));
    }
    if (!pass) {
      ++failures;
      if (!failing_seeds.empty()) failing_seeds += ",";
      failing_seeds += std::to_string(seed);
    }
  }
  std::printf("\n%llu/%llu seeds passed\n",
              static_cast<unsigned long long>(seeds - failures),
              static_cast<unsigned long long>(seeds));
  report.config("failing_seeds", failing_seeds);
  report.tolerance(0.0);  // pass/fail counts must match exactly
  report.metric("seeds_run", static_cast<double>(seeds));
  report.metric("seeds_failed", static_cast<double>(failures));
  report.metric("tcp_failures", static_cast<double>(tcp_failures));
  report.metric("dns_failures", static_cast<double>(dns_failures));
  report.write();
  return failures == 0 ? 0 : 1;
}
