// Chaos soak: the chaos-test scenarios run standalone over a wide seed
// range — a TCP transfer and a DNS lookup storm per seed, both under
// random fault plans on both hosts. Each seed prints PASS/FAIL with the
// full episode schedule on failure; any failing seed reproduces exactly
// with `chaos_soak --seed=<n> --seeds=1 --verbose=1` (or by adding it to
// the seed range of tests/test_chaos.cpp). Exit status is nonzero when
// any seed fails, so the soak slots into CI.
#include <cstdio>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "dns/resolver.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "stack/host.hpp"

namespace {

using namespace ldlp;
using wire::ip_from_parts;

constexpr double kHorizon = 1.0;

struct SoakResult {
  bool pass = true;
  std::string why;
  std::string detail;  ///< Extra diagnostics printed under the reason.

  void fail(std::string reason) {
    if (pass) why = std::move(reason);
    pass = false;
  }
};

struct Net {
  std::unique_ptr<stack::Host> a;
  std::unique_ptr<stack::Host> b;
  std::unique_ptr<fault::FaultInjector> fault_a;
  std::unique_ptr<fault::FaultInjector> fault_b;

  explicit Net(std::uint64_t seed) {
    stack::HostConfig ca;
    ca.name = "a";
    ca.mac = {2, 0, 0, 0, 0, 1};
    ca.ip = ip_from_parts(10, 0, 0, 1);
    stack::HostConfig cb = ca;
    cb.name = "b";
    cb.mac = {2, 0, 0, 0, 0, 2};
    cb.ip = ip_from_parts(10, 0, 0, 2);
    a = std::make_unique<stack::Host>(ca);
    b = std::make_unique<stack::Host>(cb);
    stack::NetDevice::connect(a->device(), b->device());
    fault_a = std::make_unique<fault::FaultInjector>(
        fault::FaultPlan::random(seed, kHorizon), seed * 2 + 1);
    fault_b = std::make_unique<fault::FaultInjector>(
        fault::FaultPlan::random(seed ^ 0xbeefULL, kHorizon), seed * 2 + 2);
    a->attach_fault(fault_a.get());
    b->attach_fault(fault_b.get());
  }

  ~Net() {
    a->attach_fault(nullptr);
    b->attach_fault(nullptr);
  }

  void tick(double dt) {
    a->advance(dt);
    b->advance(dt);
    a->pump();
    b->pump();
    a->pump();
    b->pump();
  }

  /// Post-scenario invariants shared by both scenarios: faults cleared,
  /// graphs drained, queue occupancy within bounds, pools leak-free.
  void check(SoakResult& r) {
    for (int i = 0;
         i < 80 && !(fault_a->faults_cleared() && fault_b->faults_cleared());
         ++i)
      tick(0.1);
    if (!fault_a->faults_cleared() || !fault_b->faults_cleared())
      r.fail("faults never cleared (delayed frames or held mbufs remain)");
    a->attach_fault(nullptr);
    b->attach_fault(nullptr);
    for (stack::Host* h : {a.get(), b.get()}) {
      h->pump();
      if (h->graph().backlog() != 0)
        r.fail(h->name() + ": graph backlog not drained");
      for (core::LayerId id = 0; id < h->graph().layer_count(); ++id) {
        const core::Layer& layer = h->graph().layer(id);
        if (layer.stats().max_queue > layer.queue_capacity())
          r.fail(h->name() + "/" + layer.name() + ": queue bound exceeded");
      }
      if (h->pool().stats().mbufs_outstanding() != 0)
        r.fail(h->name() + ": mbuf leak (" +
               std::to_string(h->pool().stats().mbufs_outstanding()) +
               " outstanding)");
    }
  }
};

SoakResult soak_tcp(std::uint64_t seed) {
  SoakResult r;
  Net net(seed);
  stack::PcbId accepted = stack::kNoPcb;
  net.b->tcp().set_accept_hook([&accepted](stack::PcbId id) { accepted = id; });
  (void)net.b->tcp().listen(80);
  const stack::PcbId conn =
      net.a->tcp().connect(ip_from_parts(10, 0, 0, 2), 80);
  for (int i = 0; i < 1600 &&
                  net.a->tcp().state(conn) != stack::TcpState::kEstablished;
       ++i)
    net.tick(0.05);
  if (net.a->tcp().state(conn) != stack::TcpState::kEstablished) {
    r.fail("TCP never established");
    return r;
  }
  std::vector<std::uint8_t> payload(8000);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i * 31 + seed);
  if (!net.a->tcp().send(conn, payload)) r.fail("send refused");
  std::vector<std::uint8_t> got;
  for (int i = 0; i < 1600 && got.size() < payload.size(); ++i) {
    net.tick(0.05);
    if (accepted == stack::kNoPcb) continue;
    std::vector<std::uint8_t> chunk(2000);
    const std::size_t n =
        net.b->sockets().read(net.b->tcp().socket_of(accepted), chunk);
    got.insert(got.end(), chunk.begin(),
               chunk.begin() + static_cast<std::ptrdiff_t>(n));
  }
  if (got != payload) {
    r.fail("stream not delivered intact");
    std::size_t diff = 0;
    while (diff < got.size() && diff < payload.size() &&
           got[diff] == payload[diff])
      ++diff;
    r.detail = "got " + std::to_string(got.size()) + "/" +
               std::to_string(payload.size()) + " bytes, first mismatch at " +
               std::to_string(diff) +
               "; a: state=" + std::to_string(static_cast<int>(
                                   net.a->tcp().state(conn))) +
               " rtx=" +
               std::to_string(net.a->tcp().pcb_stats(conn).retransmits) +
               " bad_cksum=" +
               std::to_string(net.a->tcp().tcp_stats().bad_checksum) +
               " segs_out=" +
               std::to_string(net.a->tcp().pcb_stats(conn).segs_out) +
               " segs_in=" +
               std::to_string(net.a->tcp().pcb_stats(conn).segs_in) +
               "; b: bad_cksum=" +
               std::to_string(net.b->tcp().tcp_stats().bad_checksum) +
               " dev_rx_drops=" +
               std::to_string(net.b->device().stats().rx_drops) +
               " accepted=" +
               (accepted == stack::kNoPcb
                    ? std::string("none")
                    : "pcb" + std::to_string(accepted) + " state=" +
                          std::to_string(static_cast<int>(
                              net.b->tcp().state(accepted))) +
                          " segs_in=" +
                          std::to_string(
                              net.b->tcp().pcb_stats(accepted).segs_in));
  }
  net.a->tcp().close(conn);
  if (accepted != stack::kNoPcb) net.b->tcp().close(accepted);
  for (int i = 0; i < 8; ++i) net.tick(1.0);
  net.check(r);
  return r;
}

SoakResult soak_dns(std::uint64_t seed) {
  SoakResult r;
  Net net(seed ^ 0xd15ULL);
  dns::DnsServer server(*net.b);
  constexpr int kNames = 8;
  for (int i = 0; i < kNames; ++i)
    server.add_a("h" + std::to_string(i) + ".soak",
                 ip_from_parts(10, 7, 0, static_cast<std::uint8_t>(i)));
  dns::DnsResolver::Config cfg;
  cfg.server_ip = ip_from_parts(10, 0, 0, 2);
  dns::DnsResolver resolver(*net.a, cfg);

  std::vector<std::optional<std::uint32_t>> results(kNames);
  std::vector<bool> outstanding(kNames, false);
  const auto kick = [&](int i) {
    outstanding[i] = true;
    resolver.resolve(
        "h" + std::to_string(i) + ".soak",
        [&results, &outstanding, i](const std::string&,
                                    std::optional<std::uint32_t> addr) {
          outstanding[i] = false;
          if (addr.has_value()) results[i] = addr;
        });
  };
  for (int i = 0; i < kNames; ++i) kick(i);
  for (int iter = 0; iter < 500; ++iter) {
    net.tick(0.25);
    server.poll();
    net.b->pump();
    net.a->pump();
    resolver.poll();
    bool done = true;
    for (int i = 0; i < kNames; ++i) {
      if (results[i].has_value()) continue;
      done = false;
      if (!outstanding[i]) kick(i);
    }
    if (done) break;
  }
  for (int i = 0; i < kNames; ++i) {
    if (!results[i].has_value())
      r.fail("lookup " + std::to_string(i) + " never converged");
    else if (*results[i] !=
             ip_from_parts(10, 7, 0, static_cast<std::uint8_t>(i)))
      r.fail("lookup " + std::to_string(i) + " converged to wrong address");
  }
  if (!r.pass) {
    const dns::ResolverStats& rs = resolver.stats();
    r.detail = "resolver: lookups=" + std::to_string(rs.lookups) +
               " cache_hits=" + std::to_string(rs.cache_hits) +
               " neg_hits=" + std::to_string(rs.negative_hits) +
               " sent=" + std::to_string(rs.queries_sent) +
               " retries=" + std::to_string(rs.retries) +
               " answers=" + std::to_string(rs.answers) +
               " failures=" + std::to_string(rs.failures) +
               " inflight=" + std::to_string(resolver.inflight()) +
               "; server: queries=" + std::to_string(server.stats().queries) +
               " answered=" + std::to_string(server.stats().answered) +
               " malformed=" + std::to_string(server.stats().malformed);
    for (stack::Host* h : {net.a.get(), net.b.get()}) {
      const stack::NetDeviceStats& d = h->device().stats();
      const stack::EthLayerStats& e = h->eth().eth_stats();
      const stack::IpStats& ip = h->ip().ip_stats();
      r.detail += "\n  " + h->name() +
                  ": dev tx=" + std::to_string(d.tx_frames) +
                  " rx=" + std::to_string(d.rx_frames) +
                  " rx_drops=" + std::to_string(d.rx_drops) +
                  " tx_drops=" + std::to_string(d.tx_drops) +
                  " ring=" + std::to_string(h->device().rx_pending()) +
                  "; eth rx_ip=" + std::to_string(e.rx_ip) +
                  " rx_arp=" + std::to_string(e.rx_arp) +
                  " rx_dropped=" + std::to_string(e.rx_dropped) +
                  " arp_held=" + std::to_string(e.tx_arp_held) +
                  "; arp parked=" + std::to_string(h->eth().arp().stats().parked) +
                  " park_drops=" +
                  std::to_string(h->eth().arp().stats().park_drops) +
                  " req_ok=" +
                  std::to_string(h->eth().arp().stats().requests_allowed) +
                  "; ip rx=" + std::to_string(ip.rx) +
                  " rx_bad=" + std::to_string(ip.rx_bad);
    }
  }
  net.check(r);
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::Flags flags(argc, argv);
  const std::uint64_t first_seed = flags.u64("seed", 1);
  const std::uint64_t seeds = flags.u64("seeds", 32);
  const bool verbose = flags.u64("verbose", 0) != 0;
  ldlp::benchutil::BenchReport report("chaos_soak", flags);
  report.config_u64("seed", first_seed);
  report.config_u64("seeds", seeds);

  benchutil::heading("Chaos soak: TCP + DNS under seeded fault schedules");
  std::printf("seeds [%llu, %llu); horizon %.1f s per plan\n\n",
              static_cast<unsigned long long>(first_seed),
              static_cast<unsigned long long>(first_seed + seeds), kHorizon);

  std::uint64_t failures = 0;
  std::uint64_t tcp_failures = 0;
  std::uint64_t dns_failures = 0;
  for (std::uint64_t seed = first_seed; seed < first_seed + seeds; ++seed) {
    const SoakResult tcp = soak_tcp(seed);
    const SoakResult dns_r = soak_dns(seed);
    const bool pass = tcp.pass && dns_r.pass;
    if (!tcp.pass) ++tcp_failures;
    if (!dns_r.pass) ++dns_failures;
    std::printf("seed %6llu  tcp:%s  dns:%s\n",
                static_cast<unsigned long long>(seed),
                tcp.pass ? "PASS" : "FAIL", dns_r.pass ? "PASS" : "FAIL");
    if (!pass || verbose) {
      if (!tcp.pass) std::printf("  tcp failure: %s\n", tcp.why.c_str());
      if (!tcp.detail.empty()) std::printf("  %s\n", tcp.detail.c_str());
      if (!dns_r.pass) std::printf("  dns failure: %s\n", dns_r.why.c_str());
      if (!dns_r.detail.empty())
        std::printf("  %s\n", dns_r.detail.c_str());
      // soak_dns derives its Net seed from the soak seed, so report the
      // plans each scenario actually ran under.
      const auto print_plans = [](const char* scenario, std::uint64_t s) {
        for (const std::uint64_t ps :
             {s, static_cast<std::uint64_t>(s ^ 0xbeefULL)})
          std::printf("  %s plan (seed %llu):\n%s", scenario,
                      static_cast<unsigned long long>(ps),
                      fault::FaultPlan::random(ps, kHorizon)
                          .describe()
                          .c_str());
      };
      print_plans("tcp", seed);
      print_plans("dns", seed ^ 0xd15ULL);
      std::printf("  reproduce: chaos_soak --seed=%llu --seeds=1 --verbose=1\n",
                  static_cast<unsigned long long>(seed));
    }
    if (!pass) ++failures;
  }
  std::printf("\n%llu/%llu seeds passed\n",
              static_cast<unsigned long long>(seeds - failures),
              static_cast<unsigned long long>(seeds));
  report.tolerance(0.0);  // pass/fail counts must match exactly
  report.metric("seeds_run", static_cast<double>(seeds));
  report.metric("seeds_failed", static_cast<double>(failures));
  report.metric("tcp_failures", static_cast<double>(tcp_failures));
  report.metric("dns_failures", static_cast<double>(dns_failures));
  report.write();
  return failures == 0 ? 0 : 1;
}
