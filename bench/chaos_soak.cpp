// Chaos soak: the chaos scenarios run standalone over a wide seed range
// with full conformance checking. Every run is driven by an explicit
// check::Schedule (scenario + seed + per-host fault plans), judged by
// ldlp::check oracles — exactly-once in-order byte-exact TCP delivery,
// at-most-once integral UDP datagrams — and audited after every
// scheduler pass by per-host invariant checkers (TCP sequence pointers,
// reassembly table, ARP accounting).
//
// On failure the harness serialises the run's schedule, delta-debugs it
// down to a minimal still-failing episode set (check::shrink), and writes
// the result as ldlp.schedule.v1 JSON. Any such file — or any hand-edited
// schedule — replays exactly with:
//
//   chaos_soak --replay=<schedule.json>
//
// Seed-range soaks use --seed_lo=<n> --seed_hi=<n> (half-open); --scenario
// restricts the run to one scenario name. Failing seeds are listed in
// BENCH_chaos_soak.json under config.failing_seeds. Exit status is nonzero
// when any seed fails, so the soak slots into CI.
//
// Every scenario is additionally judged by ldlp::recover: a
// ConvergenceOracle demands that once the last fault episode has cleared,
// every TCP connection reaches a terminal or quiescent state within a
// pass budget, and a ProgressWatchdog condemns hosts that hold queued
// work while their progress counters stand still. The *-heal scenarios
// draw fault plans from FaultPlan::random_heal(), which includes the
// network-healing kinds (partition, link-flap, host-restart) the legacy
// seed-stable draw excludes.
//
// Each schedule run is bounded by a wall-clock budget (--seed_timeout_ms,
// default 20000, 0 disables): a hung seed becomes a reported failing seed
// with its schedule dumped instead of a hung CI job.
//
// --jobs=N runs the seeds on N real threads (ldlp::par::WorkerPool). Seeds
// are independent simulations, results land in seed-indexed slots, and all
// printing/shrinking happens after the barrier in seed order — so stdout,
// the failing-seed list and every shrunk schedule artifact are
// bit-identical to --jobs=1. --check_jobs=N proves it: the range is run
// serially and with N workers and the outcomes are compared field by
// field (nonzero exit on any divergence).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "bench_util.hpp"
#include "soak_scenarios.hpp"
#include "check/invariants.hpp"
#include "check/oracle.hpp"
#include "check/schedule.hpp"
#include "check/shrink.hpp"
#include "dns/resolver.hpp"
#include "fault/fault_plan.hpp"
#include "fault/injector.hpp"
#include "net/fabric.hpp"
#include "net/fleet_plan.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "overlay/gossip_sim.hpp"
#include "par/worker_pool.hpp"
#include "recover/convergence.hpp"
#include "recover/partition_heal.hpp"
#include "recover/watchdog.hpp"
#include "rpc/fanout.hpp"
#include "stack/host.hpp"

namespace {

using namespace ldlp;
using wire::ip_from_parts;

// Schedule makers, topology constants and the scenario registry
// (--help/--scenario/--seed_timeout_ms single source of truth) live in
// soak_scenarios.hpp.
using soak::kFleetHorizon;
using soak::kFleetHosts;
using soak::kFleetHostsPerRack;
using soak::kFleetRacks;
using soak::kFleetSpines;
using soak::kHorizon;

// Per-schedule wall-clock budget. Armed at the top of run_schedule (so
// every shrink candidate gets a fresh allowance) and checked cooperatively
// inside every scenario loop: a wedged stack turns into a failing seed
// with a serialised schedule rather than a hung soak. The timeout value is
// set once before any worker starts; the deadline itself is thread-local
// so --jobs workers each budget their own schedule.
std::uint64_t g_seed_timeout_ms = 20000;
thread_local std::chrono::steady_clock::time_point g_deadline;
thread_local bool g_deadline_armed = false;

void arm_deadline() {
  g_deadline_armed = g_seed_timeout_ms != 0;
  if (g_deadline_armed)
    g_deadline = std::chrono::steady_clock::now() +
                 std::chrono::milliseconds(g_seed_timeout_ms);
}

bool timed_out() {
  return g_deadline_armed && std::chrono::steady_clock::now() >= g_deadline;
}

struct SoakResult {
  bool pass = true;
  std::string why;
  std::string detail;  ///< Extra diagnostics printed under the reason.
  std::vector<std::string> violations;  ///< Oracle + auditor findings.

  void fail(std::string reason) {
    if (pass) why = std::move(reason);
    pass = false;
  }
};

// ---------------------------------------------------------------------------

struct Net {
  std::unique_ptr<stack::Host> a;
  std::unique_ptr<stack::Host> b;
  std::vector<std::unique_ptr<fault::FaultInjector>> injectors;
  fault::FaultInjector* inj_a = nullptr;
  fault::FaultInjector* inj_b = nullptr;
  recover::ConvergenceOracle* conv_ = nullptr;
  recover::ProgressWatchdog* dog_ = nullptr;

  explicit Net(const check::Schedule& schedule) {
    stack::HostConfig ca;
    ca.name = "a";
    ca.mac = {2, 0, 0, 0, 0, 1};
    ca.ip = ip_from_parts(10, 0, 0, 1);
    // A small pool keeps allocation-failure paths hot: pool-exhaustion
    // episodes leave the stack genuinely starved rather than nibbling at
    // an 8k-mbuf cushion, so recovery code runs on many seeds.
    ca.pool_mbufs = 384;
    ca.pool_clusters = 96;
    // LDLP scheduling: the whole RX backlog is injected (holding mbufs)
    // before any layer runs, so deferred delivery races — stale advertised
    // windows, allocation failure mid-batch — actually occur. The
    // conventional path gets its chaos coverage from tests/test_chaos.cpp.
    ca.mode = core::SchedMode::kLdlp;
    // Keepalive on: a peer that vanished (host restart, permanent loss)
    // is probed and the connection torn down instead of idling forever.
    // The idle clock resets on every received segment, so an active
    // transfer never sees a probe.
    ca.tcp.keepalive_idle_sec = 5.0;
    ca.tcp.keepalive_intvl_sec = 1.0;
    ca.tcp.keepalive_probes = 4;
    stack::HostConfig cb = ca;
    cb.name = "b";
    cb.mac = {2, 0, 0, 0, 0, 2};
    cb.ip = ip_from_parts(10, 0, 0, 2);
    a = std::make_unique<stack::Host>(ca);
    b = std::make_unique<stack::Host>(cb);
    stack::NetDevice::connect(a->device(), b->device());
    for (const check::InjectorSpec& spec : schedule.injectors) {
      stack::Host* host =
          spec.host == "a" ? a.get() : spec.host == "b" ? b.get() : nullptr;
      if (host == nullptr) continue;  // shrunk/foreign spec: ignore
      injectors.push_back(
          std::make_unique<fault::FaultInjector>(spec.plan, spec.rng_seed));
      host->attach_fault(injectors.back().get());
      (host == a.get() ? inj_a : inj_b) = injectors.back().get();
    }
  }

  ~Net() {
    a->attach_fault(nullptr);
    b->attach_fault(nullptr);
  }

  void tick(double dt) {
    a->advance(dt);
    b->advance(dt);
    a->pump();
    b->pump();
    a->pump();
    b->pump();
    if (conv_ != nullptr) conv_->on_pass();
    if (dog_ != nullptr) dog_->on_pass();
  }

  /// Put the run under recovery supervision: both hosts are tracked (with
  /// their injectors, so the liveness clocks only start once the faults
  /// have cleared) and every tick() counts as one oracle pass.
  void watch(recover::ConvergenceOracle& conv, recover::ProgressWatchdog& dog) {
    conv.add_host(*a, inj_a);
    conv.add_host(*b, inj_b);
    dog.add_host(*a, inj_a);
    dog.add_host(*b, inj_b);
    conv_ = &conv;
    dog_ = &dog;
  }

  [[nodiscard]] bool faults_cleared() const {
    for (const auto& injector : injectors)
      if (!injector->faults_cleared()) return false;
    return true;
  }

  /// Post-scenario invariants shared by both scenarios: faults cleared,
  /// graphs drained, queue occupancy within bounds, pools leak-free.
  void check(SoakResult& r) {
    for (int i = 0; i < 80 && !faults_cleared() && !timed_out(); ++i)
      tick(0.1);
    if (timed_out())
      r.fail("seed wall-clock budget exceeded (--seed_timeout_ms)");
    else if (!faults_cleared())
      r.fail("faults never cleared (delayed frames or held mbufs remain)");
    a->attach_fault(nullptr);
    b->attach_fault(nullptr);
    for (stack::Host* h : {a.get(), b.get()}) {
      h->pump();
      if (h->graph().backlog() != 0)
        r.fail(h->name() + ": graph backlog not drained");
      for (core::LayerId id = 0; id < h->graph().layer_count(); ++id) {
        const core::Layer& layer = h->graph().layer(id);
        if (layer.stats().max_queue > layer.queue_capacity())
          r.fail(h->name() + "/" + layer.name() + ": queue bound exceeded");
      }
      if (h->pool().stats().mbufs_outstanding() != 0)
        r.fail(h->name() + ": mbuf leak (" +
               std::to_string(h->pool().stats().mbufs_outstanding()) +
               " outstanding)");
    }
  }
};

/// Fold conformance findings into the scenario result.
void collect(SoakResult& r, const check::DeliveryOracle& oracle,
             const check::HostAuditor& aud_a,
             const check::HostAuditor& aud_b) {
  for (const std::string& v : oracle.violations()) {
    r.fail("delivery oracle: " + v);
    r.violations.push_back("oracle: " + v);
  }
  for (const check::HostAuditor* aud : {&aud_a, &aud_b}) {
    for (const std::string& v : aud->violations()) {
      r.fail("invariant auditor: " + v);
      r.violations.push_back("audit: " + v);
    }
  }
}

/// Fold liveness findings into the scenario result.
void collect_recovery(SoakResult& r, const recover::ConvergenceOracle& conv,
                      const recover::ProgressWatchdog& dog) {
  for (const std::string& v : conv.violations()) {
    r.fail("convergence oracle: " + v);
    r.violations.push_back("recover: " + v);
  }
  for (const std::string& v : dog.violations()) {
    r.fail("progress watchdog: " + v);
    r.violations.push_back("recover: " + v);
  }
}

SoakResult run_tcp(const check::Schedule& schedule,
                   std::size_t payload_bytes, std::size_t read_chunk) {
  SoakResult r;
  const std::uint64_t seed = schedule.seed;
  // A restart wipes an endpoint's connections: the stream may end short
  // (still prefix-exact), the handshake may never complete, and the
  // server's listener must be re-established like init restarting a
  // daemon after boot.
  const bool restarts = schedule.has_kind(fault::FaultKind::kHostRestart);
  Net net(schedule);
  check::HostAuditor aud_a(*net.a);
  check::HostAuditor aud_b(*net.b);
  aud_a.install();
  aud_b.install();

  recover::ConvergenceOracle conv;
  recover::ProgressWatchdog dog;
  net.watch(conv, dog);

  check::DeliveryOracle oracle;
  oracle.set_allow_truncation(restarts);
  const auto flow = oracle.open_stream("a->b");
  net.b->sockets().set_tap(&oracle);

  stack::PcbId accepted = stack::kNoPcb;
  // Cached at accept time: the socket slot stays addressable across a
  // crash, while socket_of(accepted) on a wiped pcb would not.
  stack::SocketId accepted_socket = stack::kNoSocket;
  net.b->tcp().set_accept_hook([&](stack::PcbId id) {
    if (accepted == stack::kNoPcb) {
      accepted = id;
      accepted_socket = net.b->tcp().socket_of(id);
      oracle.bind_stream_rx(flow, accepted_socket);
    }
  });
  stack::PcbId listener = net.b->tcp().listen(80);
  const stack::PcbId conn =
      net.a->tcp().connect(ip_from_parts(10, 0, 0, 2), 80);
  net.a->tcp().set_send_tap(
      [&](stack::PcbId id, std::span<const std::uint8_t> bytes) {
        if (id == conn) oracle.stream_sent(flow, bytes);
      });
  const auto ensure_listener = [&] {
    if (!restarts) return;
    if (net.b->tcp().state(listener) != stack::TcpState::kListen)
      listener = net.b->tcp().listen(80);
  };
  for (int i = 0; i < 1600 && !timed_out() &&
                  net.a->tcp().state(conn) != stack::TcpState::kEstablished;
       ++i) {
    ensure_listener();
    net.tick(0.05);
  }
  const bool established =
      net.a->tcp().state(conn) == stack::TcpState::kEstablished;
  if (!established && !restarts) {
    r.fail(timed_out() ? "seed wall-clock budget exceeded (--seed_timeout_ms)"
                       : "TCP never established");
    return r;
  }
  std::vector<std::uint8_t> payload(payload_bytes);
  for (std::size_t i = 0; i < payload.size(); ++i)
    payload[i] = static_cast<std::uint8_t>(i * 31 + seed);
  // The send buffer may be smaller than the payload; feed it as the
  // connection drains.
  std::size_t queued = 0;
  std::vector<std::uint8_t> got;
  bool conn_died = false;
  for (int i = 0; established && i < 2400 && !timed_out() &&
                  got.size() < payload.size();
       ++i) {
    ensure_listener();
    if (net.a->tcp().state(conn) == stack::TcpState::kClosed)
      conn_died = true;
    if (!conn_died && queued < payload.size()) {
      const std::span<const std::uint8_t> rest(payload.data() + queued,
                                               payload.size() - queued);
      if (net.a->tcp().send(conn, rest)) queued = payload.size();
    }
    net.tick(0.05);
    if (accepted_socket == stack::kNoSocket) continue;
    std::vector<std::uint8_t> chunk(read_chunk);
    const std::size_t n = net.b->sockets().read(accepted_socket, chunk);
    got.insert(got.end(), chunk.begin(),
               chunk.begin() + static_cast<std::ptrdiff_t>(n));
    // Once the connection is dead and the wire is quiet nothing more can
    // arrive; convergence is judged in the drain below.
    if (conn_died && net.faults_cleared()) break;
  }
  if (restarts) {
    // Truncation is legitimate; exactness of what did arrive is not
    // negotiable.
    if (got.size() > payload.size() ||
        !std::equal(got.begin(), got.end(), payload.begin()))
      r.fail("delivered bytes diverge from the sent stream");
  } else if (queued != payload.size()) {
    r.fail("send refused");
  }
  if (!restarts && got != payload) {
    r.fail("stream not delivered intact");
    std::size_t diff = 0;
    while (diff < got.size() && diff < payload.size() &&
           got[diff] == payload[diff])
      ++diff;
    r.detail = "got " + std::to_string(got.size()) + "/" +
               std::to_string(payload.size()) + " bytes, first mismatch at " +
               std::to_string(diff) +
               "; a: state=" + std::to_string(static_cast<int>(
                                   net.a->tcp().state(conn))) +
               " rtx=" +
               std::to_string(net.a->tcp().pcb_stats(conn).retransmits) +
               " bad_cksum=" +
               std::to_string(net.a->tcp().tcp_stats().bad_checksum) +
               "; b: bad_cksum=" +
               std::to_string(net.b->tcp().tcp_stats().bad_checksum) +
               " dev_rx_drops=" +
               std::to_string(net.b->device().stats().rx_drops) +
               " shed=" +
               std::to_string(net.b->graph().graph_stats().shed_entry) + "/" +
               std::to_string(net.b->graph().graph_stats().shed_depth);
    for (std::size_t li = 0; li < net.b->graph().layer_count(); ++li) {
      const core::Layer& l =
          net.b->graph().layer(static_cast<core::LayerId>(li));
      r.detail += " " + l.name() + ":d" + std::to_string(l.stats().drops);
    }
  }
  net.a->tcp().close(conn);
  if (accepted != stack::kNoPcb) net.b->tcp().close(accepted);
  // The application is done: from here on the stack owes convergence —
  // every pcb must reach a terminal or quiescent state within the
  // oracle's pass budget once the faults have cleared.
  conv.arm();
  for (int i = 0; i < 8 && !timed_out(); ++i) net.tick(1.0);
  for (int i = 0; i < 2200 && !conv.settled() && !timed_out(); ++i)
    net.tick(0.05);
  net.check(r);
  (void)oracle.finalize();
  collect(r, oracle, aud_a, aud_b);
  collect_recovery(r, conv, dog);
  net.b->sockets().set_tap(nullptr);
  return r;
}

SoakResult run_dns(const check::Schedule& schedule) {
  SoakResult r;
  Net net(schedule);
  check::HostAuditor aud_a(*net.a);
  check::HostAuditor aud_b(*net.b);
  aud_a.install();
  aud_b.install();

  recover::ConvergenceOracle conv;
  recover::ProgressWatchdog dog;
  net.watch(conv, dog);

  dns::DnsServer server(*net.b);
  constexpr int kNames = 8;
  for (int i = 0; i < kNames; ++i)
    server.add_a("h" + std::to_string(i) + ".soak",
                 ip_from_parts(10, 7, 0, static_cast<std::uint8_t>(i)));
  dns::DnsResolver::Config cfg;
  cfg.server_ip = ip_from_parts(10, 0, 0, 2);
  dns::DnsResolver resolver(*net.a, cfg);

  // Datagram oracles, one per direction: queries a->b, responses b->a.
  // The wire may legally duplicate under duplicate (or reorder: a frame
  // can be cloned then displaced) episodes, so re-delivery is tolerated
  // exactly when the schedule says so; byte-exactness never is.
  check::DeliveryOracle to_server;   // taps b's socket layer
  check::DeliveryOracle to_resolver;  // taps a's socket layer
  const bool wire_duplicates =
      schedule.has_kind(fault::FaultKind::kDuplicate);
  to_server.set_allow_duplicates(wire_duplicates);
  to_resolver.set_allow_duplicates(wire_duplicates);
  const auto queries = to_server.open_datagram("dns.query");
  const auto responses = to_resolver.open_datagram("dns.response");
  to_server.bind_datagram_rx(queries, server.socket());
  to_resolver.bind_datagram_rx(responses, resolver.socket());
  net.b->sockets().set_tap(&to_server);
  net.a->sockets().set_tap(&to_resolver);
  net.a->udp().set_send_tap([&](std::uint16_t, std::uint32_t,
                                std::uint16_t dst_port,
                                std::span<const std::uint8_t> payload) {
    if (dst_port == dns::kDnsPort) to_server.datagram_sent(queries, payload);
  });
  net.b->udp().set_send_tap([&](std::uint16_t src_port, std::uint32_t,
                                std::uint16_t,
                                std::span<const std::uint8_t> payload) {
    if (src_port == dns::kDnsPort)
      to_resolver.datagram_sent(responses, payload);
  });

  std::vector<std::optional<std::uint32_t>> results(kNames);
  std::vector<bool> outstanding(kNames, false);
  const auto kick = [&](int i) {
    outstanding[i] = true;
    resolver.resolve(
        "h" + std::to_string(i) + ".soak",
        [&results, &outstanding, i](const std::string&,
                                    std::optional<std::uint32_t> addr) {
          outstanding[i] = false;
          if (addr.has_value()) results[i] = addr;
        });
  };
  for (int i = 0; i < kNames; ++i) kick(i);
  for (int iter = 0; iter < 500 && !timed_out(); ++iter) {
    net.tick(0.25);
    server.poll();
    net.b->pump();
    net.a->pump();
    resolver.poll();
    bool done = true;
    for (int i = 0; i < kNames; ++i) {
      if (results[i].has_value()) continue;
      done = false;
      if (!outstanding[i]) kick(i);
    }
    if (done) break;
  }
  if (timed_out())
    r.fail("seed wall-clock budget exceeded (--seed_timeout_ms)");
  for (int i = 0; i < kNames; ++i) {
    if (!results[i].has_value())
      r.fail("lookup " + std::to_string(i) + " never converged");
    else if (*results[i] !=
             ip_from_parts(10, 7, 0, static_cast<std::uint8_t>(i)))
      r.fail("lookup " + std::to_string(i) + " converged to wrong address");
  }
  if (!r.pass) {
    const dns::ResolverStats& rs = resolver.stats();
    r.detail = "resolver: lookups=" + std::to_string(rs.lookups) +
               " sent=" + std::to_string(rs.queries_sent) +
               " retries=" + std::to_string(rs.retries) +
               " answers=" + std::to_string(rs.answers) +
               " failures=" + std::to_string(rs.failures) +
               "; server: queries=" + std::to_string(server.stats().queries) +
               " answered=" + std::to_string(server.stats().answered) +
               " malformed=" + std::to_string(server.stats().malformed);
  }
  // No TCP state here, so convergence reduces to "faults cleared and the
  // graphs drain"; the watchdog still guards against silently held work.
  conv.arm();
  for (int i = 0; i < 40 && !conv.settled() && !timed_out(); ++i) {
    net.tick(0.1);
    server.poll();
    resolver.poll();
  }
  net.check(r);
  (void)to_server.finalize();
  (void)to_resolver.finalize();
  collect(r, to_server, aud_a, aud_b);
  collect_recovery(r, conv, dog);
  for (const std::string& v : to_resolver.violations()) {
    r.fail("delivery oracle: " + v);
    r.violations.push_back("oracle: " + v);
  }
  net.a->sockets().set_tap(nullptr);
  net.b->sockets().set_tap(nullptr);
  return r;
}

// ---------------------------------------------------------------------------
// Fleet scenario: N hosts on a fat-tree fabric, cross-rack stream pairs
// plus a fan-out, judged by the PartitionHealOracle (exactly-once across
// every healed cut), the fleet-generalized recovery oracles, per-host
// auditors, and the fabric's frame-conservation ledger.

/// "h<i>" -> i; -1 for anything else.
int fleet_host_index(const std::string& name) {
  if (name.size() < 2 || name[0] != 'h') return -1;
  int value = 0;
  for (std::size_t i = 1; i < name.size(); ++i) {
    if (name[i] < '0' || name[i] > '9') return -1;
    value = value * 10 + (name[i] - '0');
  }
  return value;
}

struct FleetNet {
  net::Fabric fabric;
  std::vector<net::HostId> hosts;
  std::vector<std::unique_ptr<fault::FaultInjector>> injectors;
  std::vector<fault::FaultInjector*> host_inj;  ///< Per host; may be null.
  std::vector<std::unique_ptr<check::HostAuditor>> auditors;
  recover::ConvergenceOracle* conv_ = nullptr;
  recover::ProgressWatchdog* dog_ = nullptr;

  explicit FleetNet(const check::Schedule& schedule,
                    std::size_t racks = kFleetRacks,
                    std::size_t hosts_per_rack = kFleetHostsPerRack,
                    std::size_t spines = kFleetSpines)
      : fabric(net::FabricConfig{/*host_tick_sec=*/5e-3,
                                 /*fault_seed=*/schedule.seed * 2 + 1}) {
    net::FatTreeConfig topo;
    topo.racks = racks;
    topo.hosts_per_rack = hosts_per_rack;
    topo.spines = spines;
    // Same philosophy as the two-host Net: small pools keep the
    // allocation-failure paths hot, LDLP mode keeps the deferred-delivery
    // races live, keepalive reaps peers that crashed for good.
    topo.proto.pool_mbufs = 384;
    topo.proto.pool_clusters = 96;
    topo.proto.mode = core::SchedMode::kLdlp;
    topo.proto.tcp.keepalive_idle_sec = 5.0;
    topo.proto.tcp.keepalive_intvl_sec = 1.0;
    topo.proto.tcp.keepalive_probes = 4;
    hosts = net::build_fat_tree(fabric, topo);
    host_inj.assign(hosts.size(), nullptr);
    for (const check::InjectorSpec& spec : schedule.injectors) {
      if (spec.host == "fabric") {
        fabric.set_fault_plan(spec.plan, spec.rng_seed);
        continue;
      }
      const int index = fleet_host_index(spec.host);
      if (index < 0 || static_cast<std::size_t>(index) >= hosts.size())
        continue;  // shrunk/foreign spec: ignore
      injectors.push_back(
          std::make_unique<fault::FaultInjector>(spec.plan, spec.rng_seed));
      host(static_cast<std::size_t>(index))
          .attach_fault(injectors.back().get());
      host_inj[static_cast<std::size_t>(index)] = injectors.back().get();
    }
    auditors.reserve(hosts.size());
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      auditors.push_back(std::make_unique<check::HostAuditor>(host(i)));
      auditors.back()->install();
    }
  }

  ~FleetNet() {
    for (std::size_t i = 0; i < hosts.size(); ++i)
      host(i).attach_fault(nullptr);
  }

  [[nodiscard]] stack::Host& host(std::size_t i) {
    return fabric.host(hosts[i]);
  }

  /// Fleet supervision: every host is tracked (with its churn injector if
  /// any), the fabric's own faults_cleared gates both oracles' clocks,
  /// and every fabric tick round counts as one oracle pass.
  void watch(recover::ConvergenceOracle& conv,
             recover::ProgressWatchdog& dog) {
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      conv.add_host(host(i), host_inj[i]);
      dog.add_host(host(i), host_inj[i]);
    }
    conv.add_clearance([this] { return fabric.faults_cleared(); });
    dog.add_clearance([this] { return fabric.faults_cleared(); });
    conv_ = &conv;
    dog_ = &dog;
    fabric.set_pass_hook([this] {
      conv_->on_pass();
      dog_->on_pass();
    });
  }

  [[nodiscard]] bool faults_cleared() const {
    if (!fabric.faults_cleared()) return false;
    for (const auto& injector : injectors)
      if (!injector->faults_cleared()) return false;
    return true;
  }

  /// Post-scenario invariants: faults cleared, graphs drained, queue
  /// bounds held, pools leak-free, and the fabric's frame ledger balanced
  /// (injected == delivered + dropped + in-flight, i.e. residual 0).
  void check(SoakResult& r) {
    for (int i = 0; i < 80 && !faults_cleared() && !timed_out(); ++i)
      fabric.run_for(0.5);
    if (timed_out())
      r.fail("seed wall-clock budget exceeded (--seed_timeout_ms)");
    else if (!faults_cleared())
      r.fail("faults never cleared (active episodes or frames in flight)");
    for (std::size_t i = 0; i < hosts.size(); ++i)
      host(i).attach_fault(nullptr);
    for (std::size_t i = 0; i < hosts.size(); ++i) {
      stack::Host& h = host(i);
      h.pump();
      if (h.graph().backlog() != 0)
        r.fail(h.name() + ": graph backlog not drained");
      for (core::LayerId id = 0; id < h.graph().layer_count(); ++id) {
        const core::Layer& layer = h.graph().layer(id);
        if (layer.stats().max_queue > layer.queue_capacity())
          r.fail(h.name() + "/" + layer.name() + ": queue bound exceeded");
      }
      if (h.pool().stats().mbufs_outstanding() != 0)
        r.fail(h.name() + ": mbuf leak (" +
               std::to_string(h.pool().stats().mbufs_outstanding()) +
               " outstanding)");
    }
    if (fabric.conservation_residual() != 0)
      r.fail("fabric conservation violated (residual " +
             std::to_string(fabric.conservation_residual()) + ")");
  }
};

SoakResult run_fleet(const check::Schedule& schedule) {
  SoakResult r;
  const std::uint64_t seed = schedule.seed;
  const bool restarts = schedule.has_kind(fault::FaultKind::kHostRestart);
  FleetNet net(schedule);

  // The fabric ticks hosts every 5 ms (vs the two-host harness's 50 ms),
  // so pass budgets scale 10x to cover the same sim-time allowances: the
  // full retransmit ladder into reset (~47 s) within the convergence
  // budget, the capped rto_max 8 s silent gap within the stall window.
  recover::ConvergenceOracle conv({/*budget_passes=*/12000});
  recover::ProgressWatchdog dog({/*stall_passes=*/2500});
  net.watch(conv, dog);

  recover::PartitionHealOracle heal;
  heal.set_allow_truncation(restarts);

  // Traffic: 16 cross-rack stream pairs striped over the fleet, plus a
  // fan-out from one seed-chosen host to one host in every rack. Each
  // pair listens on its own port; dst hosts carry several pairs.
  struct PairRun {
    std::size_t src = 0, dst = 0;
    recover::PartitionHealOracle::PairId pid = 0;
    std::uint16_t port = 0;
    stack::PcbId listener = stack::kNoPcb;
    stack::PcbId conn = stack::kNoPcb;
    stack::PcbId accepted = stack::kNoPcb;
    stack::SocketId rx_socket = stack::kNoSocket;
    std::vector<std::uint8_t> payload;
    std::size_t sent_off = 0;
    std::size_t got = 0;
    bool dead = false;
  };
  std::vector<PairRun> pairs;
  const auto add_pair = [&](std::size_t src, std::size_t dst) {
    if (src == dst) return;
    PairRun p;
    p.src = src;
    p.dst = dst;
    p.port = static_cast<std::uint16_t>(2000 + pairs.size());
    p.pid = heal.open_pair(net.host(src).name(), net.host(dst).name());
    p.payload.resize(3000);
    for (std::size_t i = 0; i < p.payload.size(); ++i)
      p.payload[i] =
          static_cast<std::uint8_t>(i * 31 + seed + pairs.size() * 7);
    pairs.push_back(std::move(p));
  };
  for (std::size_t k = 0; k < 16; ++k) {
    const std::size_t src = (k * 5) % kFleetHosts;
    const std::size_t dst =
        (src + kFleetHostsPerRack * (1 + k % (kFleetRacks - 1)) + k) %
        kFleetHosts;
    add_pair(src, dst);
  }
  const std::size_t fan_src = seed % kFleetHosts;
  for (std::size_t rack = 0; rack < kFleetRacks; ++rack)
    add_pair(fan_src,
             rack * kFleetHostsPerRack + (seed + 3) % kFleetHostsPerRack);

  // Receive-side taps (one per receiving host) and accept hooks that
  // route an accepted connection to its pair by listening port.
  std::vector<bool> is_dst(kFleetHosts, false);
  for (const PairRun& p : pairs) is_dst[p.dst] = true;
  for (std::size_t i = 0; i < kFleetHosts; ++i) {
    if (is_dst[i])
      net.host(i).sockets().set_tap(&heal.rx_tap(net.host(i).name()));
  }
  for (std::size_t i = 0; i < kFleetHosts; ++i) {
    if (!is_dst[i]) continue;
    net.host(i).tcp().set_accept_hook([&, i](stack::PcbId id) {
      const std::uint16_t port = net.host(i).tcp().pcb_view(id).local_port;
      for (PairRun& p : pairs) {
        if (p.dst != i || p.port != port) continue;
        if (p.accepted == stack::kNoPcb) {
          p.accepted = id;
          p.rx_socket = net.host(i).tcp().socket_of(id);
          heal.bind_rx(p.pid, p.rx_socket);
        }
        return;
      }
    });
  }
  for (PairRun& p : pairs) p.listener = net.host(p.dst).tcp().listen(p.port);
  for (PairRun& p : pairs)
    p.conn = net.host(p.src).tcp().connect(
        net::host_ip(static_cast<std::uint32_t>(p.dst)), p.port);
  // Send taps, one per source host, dispatching on the sending pcb.
  std::vector<bool> is_src(kFleetHosts, false);
  for (const PairRun& p : pairs) is_src[p.src] = true;
  for (std::size_t i = 0; i < kFleetHosts; ++i) {
    if (!is_src[i]) continue;
    net.host(i).tcp().set_send_tap(
        [&, i](stack::PcbId id, std::span<const std::uint8_t> bytes) {
          for (const PairRun& p : pairs)
            if (p.src == i && p.conn == id) {
              heal.sent(p.pid, bytes);
              return;
            }
        });
  }

  const auto ensure_listener = [&](PairRun& p) {
    // A restarted server lost its listener; re-listen like a respawned
    // daemon so late SYN retransmits still find a socket.
    if (net.host(p.dst).tcp().state(p.listener) != stack::TcpState::kListen)
      p.listener = net.host(p.dst).tcp().listen(p.port);
  };
  std::vector<std::uint8_t> chunk(1024);
  for (int iter = 0; iter < 400 && !timed_out(); ++iter) {
    bool all_done = true;
    for (PairRun& p : pairs) {
      if (restarts) ensure_listener(p);
      stack::TcpLayer& stcp = net.host(p.src).tcp();
      if (!p.dead && stcp.state(p.conn) == stack::TcpState::kClosed)
        p.dead = true;
      // Drip-feed: one 250-byte chunk every third iteration (~0.15 s sim)
      // so the streams span the whole fault horizon instead of finishing
      // before the first episode bites. A refused chunk (full send
      // buffer) just retries next round.
      if (!p.dead && p.sent_off < p.payload.size() && iter % 3 == 0 &&
          stcp.state(p.conn) == stack::TcpState::kEstablished) {
        const std::size_t n =
            std::min<std::size_t>(250, p.payload.size() - p.sent_off);
        if (stcp.send(p.conn,
                      std::span(p.payload).subspan(p.sent_off, n)))
          p.sent_off += n;
      }
      if (p.rx_socket != stack::kNoSocket) {
        const std::size_t n =
            net.host(p.dst).sockets().read(p.rx_socket, chunk);
        p.got += n;
      }
      if (!(p.got >= p.payload.size() || p.dead)) all_done = false;
    }
    if (all_done && net.faults_cleared()) break;
    net.fabric.run_for(0.05);
  }
  for (PairRun& p : pairs) {
    if (!restarts && p.got < p.payload.size() && !p.dead)
      r.fail("pair " + net.host(p.src).name() + "->" +
             net.host(p.dst).name() + " incomplete (" +
             std::to_string(p.got) + "/" +
             std::to_string(p.payload.size()) + " bytes)");
    net.host(p.src).tcp().close(p.conn);
    if (p.accepted != stack::kNoPcb) net.host(p.dst).tcp().close(p.accepted);
  }
  conv.arm();
  for (int i = 0; i < 8 && !timed_out(); ++i) net.fabric.run_for(1.0);
  for (int i = 0; i < 240 && !conv.settled() && !timed_out(); ++i)
    net.fabric.run_for(0.25);
  net.check(r);
  (void)heal.finalize();
  for (const std::string& v : heal.violations()) {
    r.fail("partition-heal oracle: " + v);
    r.violations.push_back("heal: " + v);
  }
  for (const auto& aud : net.auditors) {
    for (const std::string& v : aud->violations()) {
      r.fail("invariant auditor: " + v);
      r.violations.push_back("audit: " + v);
    }
  }
  collect_recovery(r, conv, dog);
  if (r.pass && heal.stats().stream_bytes_delivered == 0)
    r.fail("no bytes crossed the fabric (traffic never started)");
  if (std::getenv("LDLP_FLEET_DEBUG") != nullptr) {
    const net::FabricTotals t = net.fabric.totals();
    std::fprintf(stderr,
                 "[fleet %llu] injected=%llu delivered=%llu qdrop=%llu "
                 "fdrop=%llu heal_sent=%llu heal_rx=%llu sim_t=%.2f\n",
                 static_cast<unsigned long long>(seed),
                 static_cast<unsigned long long>(t.injected),
                 static_cast<unsigned long long>(t.delivered),
                 static_cast<unsigned long long>(t.queue_drops),
                 static_cast<unsigned long long>(t.fault_drops),
                 static_cast<unsigned long long>(
                     heal.stats().stream_bytes_sent),
                 static_cast<unsigned long long>(
                     heal.stats().stream_bytes_delivered),
                 net.fabric.now());
  }
  for (std::size_t i = 0; i < kFleetHosts; ++i)
    net.host(i).sockets().set_tap(nullptr);
  return r;
}

/// The tail scenario: the RPC fan-out workload from src/rpc/fanout.hpp,
/// run for correctness rather than latency. Client h0 fans every request
/// to 8 servers (two per rack, odd host indices) over UDP while the
/// fabric runs a topology-scoped fault plan. Client-owned reliability
/// (per-leg RTO with exponential backoff) must deliver every request
/// *through* the partitions and loss bursts; DeliveryOracles assert every
/// call and reply that arrives is byte-exact and at-most-once, and the
/// convergence oracle asserts the fleet settles once the plan clears.
SoakResult run_tail(const check::Schedule& schedule) {
  SoakResult r;
  FleetNet net(schedule, soak::kTailRacks, soak::kTailHostsPerRack,
               soak::kTailSpines);

  recover::ConvergenceOracle conv({/*budget_passes=*/12000});
  recover::ProgressWatchdog dog({/*stall_passes=*/2500});
  net.watch(conv, dog);

  // Servers on the odd host indices, client on host 0. No CPU service
  // model: this scenario checks delivery, not latency distributions.
  rpc::FanoutConfig cfg;
  std::vector<std::size_t> server_idx;
  for (std::size_t i = 1; i < soak::kTailHosts; i += 2)
    server_idx.push_back(i);
  std::vector<std::unique_ptr<rpc::FanoutServer>> servers;
  std::vector<std::uint32_t> server_ips;
  for (std::size_t idx : server_idx) {
    servers.push_back(
        std::make_unique<rpc::FanoutServer>(net.host(idx), cfg));
    server_ips.push_back(net::host_ip(static_cast<std::uint32_t>(idx)));
  }
  obs::Histogram lat(1e-4, 1e3, 32);
  rpc::FanoutClient client(net.host(0), server_ips, cfg, lat);

  // Call-direction oracles: one per server host, because socket ids are
  // per-host (every host's first socket is id 0) so a shared oracle
  // could not tell the receive sockets apart. Retransmits re-enter
  // datagram_sent with the identical payload, which keeps the multiset
  // counting balanced; fleet plans never corrupt or duplicate frames
  // (partition/flap/loss only), so the oracles run strict.
  std::vector<std::unique_ptr<check::DeliveryOracle>> call_oracles;
  std::vector<check::DeliveryOracle::FlowId> call_flows;
  for (std::size_t k = 0; k < server_idx.size(); ++k) {
    auto oracle = std::make_unique<check::DeliveryOracle>();
    check::DeliveryOracle::FlowId flow =
        oracle->open_datagram("call.h" + std::to_string(server_idx[k]));
    oracle->bind_datagram_rx(flow, servers[k]->udp_socket());
    net.host(server_idx[k]).sockets().set_tap(oracle.get());
    call_flows.push_back(flow);
    call_oracles.push_back(std::move(oracle));
  }
  client.set_call_hook(
      [&](std::size_t leg, std::span<const std::uint8_t> bytes) {
        call_oracles[leg]->datagram_sent(call_flows[leg], bytes);
      });
  // Reply direction: replies to one xid are byte-identical across
  // servers (results keyed on the xid alone), so a single flow fed by
  // every server's UDP send tap stays consistent.
  check::DeliveryOracle reply_oracle;
  const check::DeliveryOracle::FlowId reply_flow =
      reply_oracle.open_datagram("reply");
  reply_oracle.bind_datagram_rx(reply_flow, client.udp_socket());
  net.host(0).sockets().set_tap(&reply_oracle);
  for (std::size_t idx : server_idx) {
    net.host(idx).udp().set_send_tap(
        [&reply_oracle, reply_flow, port = cfg.port](
            std::uint16_t src_port, std::uint32_t, std::uint16_t,
            std::span<const std::uint8_t> payload) {
          if (src_port == port)
            reply_oracle.datagram_sent(reply_flow, payload);
        });
  }

  // Workload: requests paced evenly across the whole fault horizon, then
  // a drain window generous enough for the full RTO ladder (0.25 s
  // doubling to 4 s) to push the last retransmits through after heal.
  constexpr std::size_t kRequests = 150;
  const double t0 = net.fabric.now();
  const double spacing = soak::kTailHorizon / static_cast<double>(kRequests);
  const double deadline = t0 + soak::kTailHorizon + 30.0;
  std::size_t issued = 0;
  while (!timed_out()) {
    const double now = net.fabric.now();
    while (issued < kRequests &&
           now >= t0 + static_cast<double>(issued) * spacing) {
      client.start(/*arrival_sec=*/now, now);
      ++issued;
    }
    client.poll(now);
    for (auto& server : servers) server->poll(now);
    if (issued == kRequests && client.outstanding() == 0) break;
    if (now > deadline) break;
    net.fabric.run_for(5e-3);
  }

  const rpc::FanoutClientStats& cs = client.stats();
  if (client.outstanding() != 0 || issued < kRequests)
    r.fail("rpc fan-out never drained: " +
           std::to_string(client.outstanding()) + " of " +
           std::to_string(issued) + " issued requests outstanding (" +
           std::to_string(cs.requests_completed) + " completed, " +
           std::to_string(cs.retransmits) + " retransmits)");
  if (cs.malformed != 0)
    r.fail("client saw " + std::to_string(cs.malformed) +
           " malformed replies (fleet plans never corrupt)");
  for (std::size_t k = 0; k < servers.size(); ++k)
    if (servers[k]->stats().malformed != 0)
      r.fail(net.host(server_idx[k]).name() + ": malformed calls");

  conv.arm();
  for (int i = 0; i < 240 && !conv.settled() && !timed_out(); ++i)
    net.fabric.run_for(0.25);
  net.check(r);
  (void)reply_oracle.finalize();
  for (const std::string& v : reply_oracle.violations()) {
    r.fail("delivery oracle: " + v);
    r.violations.push_back("reply: " + v);
  }
  for (std::size_t k = 0; k < call_oracles.size(); ++k) {
    (void)call_oracles[k]->finalize();
    for (const std::string& v : call_oracles[k]->violations()) {
      r.fail("delivery oracle: " + v);
      r.violations.push_back("call.h" + std::to_string(server_idx[k]) +
                             ": " + v);
    }
  }
  for (const auto& aud : net.auditors) {
    for (const std::string& v : aud->violations()) {
      r.fail("invariant auditor: " + v);
      r.violations.push_back("audit: " + v);
    }
  }
  collect_recovery(r, conv, dog);
  if (r.pass && cs.requests_completed == 0)
    r.fail("no requests completed (workload never started)");
  if (std::getenv("LDLP_FLEET_DEBUG") != nullptr) {
    const net::FabricTotals t = net.fabric.totals();
    std::fprintf(stderr,
                 "[tail %llu] completed=%llu/%llu calls=%llu rexmt=%llu "
                 "stale=%llu fdrop=%llu qdrop=%llu sim_t=%.2f\n",
                 static_cast<unsigned long long>(schedule.seed),
                 static_cast<unsigned long long>(cs.requests_completed),
                 static_cast<unsigned long long>(cs.requests_started),
                 static_cast<unsigned long long>(cs.calls_sent),
                 static_cast<unsigned long long>(cs.retransmits),
                 static_cast<unsigned long long>(cs.stale_replies),
                 static_cast<unsigned long long>(t.fault_drops),
                 static_cast<unsigned long long>(t.queue_drops),
                 net.fabric.now());
  }
  for (std::size_t i = 0; i < soak::kTailHosts; ++i)
    net.host(i).sockets().set_tap(nullptr);
  for (std::size_t idx : server_idx) net.host(idx).udp().set_send_tap({});
  return r;
}

// Gossip overlay on the 64-host fat-tree: the whole run (topology, join
// stagger, broadcast storm, convergence drain, oracle judgement) lives
// in overlay::run_gossip_sim so the soak, the perf gate and the unit
// tests judge the identical implementation. This wrapper only maps the
// result onto SoakResult and wires the per-seed wall deadline through.
SoakResult run_gossip(const check::Schedule& schedule) {
  SoakResult r;
  overlay::GossipSimConfig cfg;
  cfg.deadline = [] { return timed_out(); };
  const overlay::GossipSimResult g = overlay::run_gossip_sim(schedule, cfg);
  if (!g.pass) r.fail(g.why);
  r.violations = g.violations;
  r.detail = "broadcasts=" + std::to_string(g.broadcasts) +
             " deliveries=" + std::to_string(g.deliveries) +
             " dup=" + std::to_string(g.duplicates) +
             " grafts=" + std::to_string(g.grafts) +
             " prunes=" + std::to_string(g.prunes) +
             " repairs=" + std::to_string(g.repairs_done) +
             " redundancy=" + std::to_string(g.relay_redundancy);
  if (std::getenv("LDLP_FLEET_DEBUG") != nullptr)
    std::fprintf(stderr, "[gossip %llu] %s sim_t=%.2f\n",
                 static_cast<unsigned long long>(schedule.seed),
                 r.detail.c_str(), g.sim_time_sec);
  return r;
}

// Clocks scenario: the gossip sim with timer oracles armed. The
// schedule's "h<i>" victims carry clock-kind-only plans (skew, drift,
// stall, timer storm) instead of restarts; the TimerAuditor and the
// DeadlineOracle judge every host's wheel on top of the usual overlay
// oracles. Wheel defaults apply — in particular shed_guard stays on;
// the mutation check that reverts it lives in tests/test_time.cpp.
SoakResult run_clocks(const check::Schedule& schedule) {
  SoakResult r;
  overlay::GossipSimConfig cfg;
  cfg.timer_oracles = true;
  cfg.deadline = [] { return timed_out(); };
  const overlay::GossipSimResult g = overlay::run_gossip_sim(schedule, cfg);
  if (!g.pass) r.fail(g.why);
  r.violations = g.violations;
  r.detail = "arms=" + std::to_string(g.timer_arms) +
             " fires=" + std::to_string(g.timer_fires) +
             " cancels=" + std::to_string(g.timer_cancels) +
             " spurious=" + std::to_string(g.timer_spurious) +
             " shed=" + std::to_string(g.timer_shed) +
             " deliveries=" + std::to_string(g.deliveries) +
             " repairs=" + std::to_string(g.repairs_done);
  if (std::getenv("LDLP_FLEET_DEBUG") != nullptr)
    std::fprintf(stderr, "[clocks %llu] %s sim_t=%.2f\n",
                 static_cast<unsigned long long>(schedule.seed),
                 r.detail.c_str(), g.sim_time_sec);
  return r;
}

SoakResult run_schedule(const check::Schedule& schedule) {
  arm_deadline();
  if (schedule.scenario == "tcp" || schedule.scenario == "tcp-heal")
    return run_tcp(schedule, /*payload_bytes=*/8000, /*read_chunk=*/2000);
  if (schedule.scenario == "tcp-slow")
    return run_tcp(schedule, /*payload_bytes=*/24000, /*read_chunk=*/900);
  if (schedule.scenario == "dns" || schedule.scenario == "dns-heal")
    return run_dns(schedule);
  if (schedule.scenario == "fleet") return run_fleet(schedule);
  if (schedule.scenario == "tail") return run_tail(schedule);
  if (schedule.scenario == "gossip") return run_gossip(schedule);
  if (schedule.scenario == "clocks") return run_clocks(schedule);
  SoakResult r;
  r.fail("unknown scenario '" + schedule.scenario + "'");
  return r;
}

void print_failure(const SoakResult& r, const check::Schedule& schedule) {
  std::printf("  %s failure: %s\n", schedule.scenario.c_str(), r.why.c_str());
  if (!r.detail.empty()) std::printf("  %s\n", r.detail.c_str());
  for (const std::string& v : r.violations)
    std::printf("    %s\n", v.c_str());
  for (const check::InjectorSpec& spec : schedule.injectors)
    std::printf("  %s plan (rng seed %llu):\n%s", spec.host.c_str(),
                static_cast<unsigned long long>(spec.rng_seed),
                spec.plan.describe().c_str());
}

/// Shrink a failing schedule and write the minimal reproducer next to the
/// bench report. Returns the written path (empty on save failure).
std::string shrink_and_save(const check::Schedule& failing,
                            const std::string& out_dir) {
  const check::ShrinkResult minimal = check::shrink(
      failing,
      [](const check::Schedule& candidate) {
        return !run_schedule(candidate).pass;
      });
  std::printf(
      "  shrink: %zu -> %zu episodes in %zu runs%s\n",
      minimal.episodes_before, minimal.episodes_after, minimal.runs,
      minimal.converged ? "" : " (run budget hit; may not be 1-minimal)");
  const std::string path = out_dir + "/chaos_" + failing.scenario + "_seed" +
                           std::to_string(failing.seed) + ".schedule.json";
  if (!minimal.schedule.save(path)) {
    std::printf("  warning: could not write %s\n", path.c_str());
    return {};
  }
  std::printf("  minimal schedule: %s\n  reproduce: chaos_soak --replay=%s\n",
              path.c_str(), path.c_str());
  return path;
}

// ---------------------------------------------------------------------------
// Seed-range execution. One seed = one job for the worker pool: results go
// into seed-indexed slots, printing and shrinking stay on the main thread
// after the barrier, so the output stream is identical for any --jobs.

// The scenario table (name, maker, timeout default, sweep membership,
// help blurb) lives in soak_scenarios.hpp so --help, --scenario and the
// --seed_timeout_ms defaults can never drift apart.
using soak::kScenarioCount;
using soak::kScenarios;

struct ScenarioOutcome {
  std::size_t si = 0;  ///< Index into kScenarios.
  SoakResult res;
  check::Schedule schedule;
};

struct SeedOutcome {
  std::uint64_t seed = 0;
  std::vector<ScenarioOutcome> runs;  ///< In kScenarios order.

  [[nodiscard]] bool pass() const {
    for (const ScenarioOutcome& run : runs)
      if (!run.res.pass) return false;
    return true;
  }
};

/// Run seeds [seed_lo, seed_lo + count) across `jobs` workers. Per-worker
/// registries count scenario runs/failures and merge into `reg`
/// (order-independent combiners, so any jobs value yields the same
/// counters).
std::vector<SeedOutcome> compute_outcomes(std::uint64_t seed_lo,
                                          std::uint64_t count,
                                          const std::string& only,
                                          std::uint64_t jobs,
                                          obs::Registry& reg) {
  par::WorkerPool pool(static_cast<std::size_t>(jobs));
  std::vector<SeedOutcome> outcomes(count);
  pool.run(static_cast<std::size_t>(count),
           [&](std::size_t j, par::WorkerContext& ctx) {
             SeedOutcome& out = outcomes[j];
             out.seed = seed_lo + j;
             for (std::size_t si = 0; si < kScenarioCount; ++si) {
               const soak::ScenarioInfo& def = kScenarios[si];
               if (only.empty() ? !def.in_default_sweep : only != def.name)
                 continue;
               ScenarioOutcome run;
               run.si = si;
               run.schedule = kScenarios[si].make(out.seed);
               run.res = run_schedule(run.schedule);
               ctx.registry->counter("par.soak.scenarios").add(1);
               if (!run.res.pass)
                 ctx.registry->counter("par.soak.scenario_failures").add(1);
               out.runs.push_back(std::move(run));
             }
           });
  pool.publish(reg);
  pool.merge_registries(reg);
  return outcomes;
}

/// Field-by-field equality for the --check_jobs determinism audit.
bool outcomes_identical(const std::vector<SeedOutcome>& serial,
                        const std::vector<SeedOutcome>& parallel,
                        std::string* first_diff) {
  if (serial.size() != parallel.size()) {
    *first_diff = "outcome counts differ";
    return false;
  }
  for (std::size_t i = 0; i < serial.size(); ++i) {
    const SeedOutcome& s = serial[i];
    const SeedOutcome& p = parallel[i];
    const std::string tag = "seed " + std::to_string(s.seed) + ": ";
    if (s.seed != p.seed || s.runs.size() != p.runs.size()) {
      *first_diff = tag + "seed/run-count mismatch";
      return false;
    }
    for (std::size_t r = 0; r < s.runs.size(); ++r) {
      const ScenarioOutcome& sr = s.runs[r];
      const ScenarioOutcome& pr = p.runs[r];
      if (sr.si != pr.si || sr.res.pass != pr.res.pass ||
          sr.res.why != pr.res.why ||
          sr.res.violations != pr.res.violations) {
        *first_diff = tag + std::string(kScenarios[sr.si].name) +
                      " verdict diverges";
        return false;
      }
      if (sr.schedule.to_json().dump(2) != pr.schedule.to_json().dump(2)) {
        *first_diff = tag + std::string(kScenarios[sr.si].name) +
                      " schedule serialisation diverges";
        return false;
      }
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  benchutil::Flags flags(argc, argv);
  if (flags.u64("help", 0) != 0) {
    std::printf(
        "chaos_soak: seeded fault schedules against oracle-checked "
        "protocol scenarios\n\n"
        "scenarios (--scenario=<name>; default sweep runs the unmarked "
        "ones):\n%s\n"
        "flags: --seed_lo --seed_hi --seeds --scenario --jobs --check_jobs\n"
        "       --seed_timeout_ms --replay=<schedule.json> --verbose "
        "--no_shrink --out_dir\n",
        soak::scenario_help().c_str());
    return 0;
  }
  // Unset --seed_timeout_ms picks the scenario's registry default: fleet
  // and tail seeds pump 16-64 hosts per tick and legitimately need
  // minutes, not the two-host scenarios' 20 s. Explicit values
  // (including 0 = disabled) always win.
  const std::uint64_t timeout_flag =
      flags.u64("seed_timeout_ms", UINT64_MAX);
  const auto timeout_for = [timeout_flag](const std::string& scenario) {
    if (timeout_flag != UINT64_MAX) return timeout_flag;
    return soak::default_timeout_ms(scenario);
  };

  // --replay runs one serialised schedule and reports, nothing else.
  const char* replay = flags.str("replay", nullptr);
  if (replay != nullptr) {
    std::string error;
    const auto schedule = check::Schedule::load(replay, &error);
    if (!schedule.has_value()) {
      std::fprintf(stderr, "error: %s\n", error.c_str());
      return 2;
    }
    g_seed_timeout_ms = timeout_for(schedule->scenario);
    std::printf("replaying %s: scenario %s, seed %llu, %zu episodes\n",
                replay, schedule->scenario.c_str(),
                static_cast<unsigned long long>(schedule->seed),
                schedule->episode_count());
    const SoakResult r = run_schedule(*schedule);
    std::printf("%s\n", r.pass ? "PASS" : "FAIL");
    if (!r.pass) print_failure(r, *schedule);
    return r.pass ? 0 : 1;
  }

  // Seed range: --seed_lo/--seed_hi (half-open); --seed/--seeds remain as
  // aliases so existing reproduce lines keep working.
  const std::uint64_t seed_lo = flags.u64("seed_lo", flags.u64("seed", 1));
  const std::uint64_t seed_hi =
      flags.u64("seed_hi", seed_lo + flags.u64("seeds", 32));
  const std::uint64_t seeds = seed_hi > seed_lo ? seed_hi - seed_lo : 0;
  const bool verbose = flags.u64("verbose", 0) != 0;
  const bool no_shrink = flags.u64("no_shrink", 0) != 0;
  const std::string out_dir = flags.str("out_dir", ".");
  const std::string only = flags.str("scenario", "");
  g_seed_timeout_ms = timeout_for(only);
  const std::uint64_t jobs = std::max<std::uint64_t>(1, flags.u64("jobs", 1));
  const std::uint64_t check_jobs = flags.u64("check_jobs", 0);
  if (!only.empty() && soak::find_scenario(only) == nullptr) {
    std::fprintf(stderr,
                 "error: unknown --scenario '%s'; known scenarios:\n%s",
                 only.c_str(), soak::scenario_help().c_str());
    return 2;
  }
  std::error_code mkdir_ec;
  std::filesystem::create_directories(out_dir, mkdir_ec);

  // --check_jobs: the parallel-determinism audit. Same range twice — one
  // worker, then N — and every verdict, reason, violation list and
  // schedule serialisation must agree.
  if (check_jobs > 0) {
    benchutil::heading("Chaos soak determinism check: --jobs=1 vs --jobs=N");
    std::printf("seeds [%llu, %llu), %llu workers\n",
                static_cast<unsigned long long>(seed_lo),
                static_cast<unsigned long long>(seed_hi),
                static_cast<unsigned long long>(check_jobs));
    obs::Registry serial_reg;
    obs::Registry parallel_reg;
    const auto serial =
        compute_outcomes(seed_lo, seeds, only, 1, serial_reg);
    const auto parallel =
        compute_outcomes(seed_lo, seeds, only, check_jobs, parallel_reg);
    std::string diff;
    if (!outcomes_identical(serial, parallel, &diff)) {
      std::printf("FAIL: %s\n", diff.c_str());
      return 1;
    }
    // The merged soak counters must agree too — the whole point of the
    // order-independent combiners. (par.pool.* self-description metrics
    // legitimately differ: worker count is part of the configuration.)
    const obs::Snapshot ss = serial_reg.snapshot();
    const obs::Snapshot ps = parallel_reg.snapshot();
    for (const char* name :
         {"par.soak.scenarios", "par.soak.scenario_failures"}) {
      if (ss.value(name) != ps.value(name)) {
        std::printf("FAIL: merged counter %s diverges: %.0f (jobs=1) vs "
                    "%.0f (jobs=%llu)\n",
                    name, ss.value(name), ps.value(name),
                    static_cast<unsigned long long>(check_jobs));
        return 1;
      }
    }
    std::printf("PASS: %llu seeds bit-identical across jobs=1 and jobs=%llu "
                "(%.0f scenario runs)\n",
                static_cast<unsigned long long>(seeds),
                static_cast<unsigned long long>(check_jobs),
                ss.value("par.soak.scenarios"));
    return 0;
  }

  ldlp::benchutil::BenchReport report("chaos_soak", flags);
  report.config_u64("seed_lo", seed_lo);
  report.config_u64("seed_hi", seed_hi);
  report.config_u64("jobs", jobs);

  benchutil::heading(
      "Chaos soak: TCP + DNS under seeded fault schedules, oracle-checked");
  std::printf("seeds [%llu, %llu); horizon %.1f s per plan%s%s\n\n",
              static_cast<unsigned long long>(seed_lo),
              static_cast<unsigned long long>(seed_hi), kHorizon,
              only.empty() ? "" : "; scenario ",
              only.empty() ? "" : only.c_str());

  obs::Registry reg;
  const std::vector<SeedOutcome> outcomes =
      compute_outcomes(seed_lo, seeds, only, jobs, reg);

  // Reporting pass: main thread, seed order — identical for every --jobs.
  std::uint64_t failures = 0;
  std::uint64_t scenario_failures[kScenarioCount] = {};
  std::string failing_seeds;
  for (const SeedOutcome& out : outcomes) {
    const bool pass = out.pass();
    std::printf("seed %6llu", static_cast<unsigned long long>(out.seed));
    for (const ScenarioOutcome& run : out.runs) {
      std::printf("  %s:%s", kScenarios[run.si].name,
                  run.res.pass ? "PASS" : "FAIL");
      if (!run.res.pass) ++scenario_failures[run.si];
    }
    std::printf("\n");
    if (!pass || verbose) {
      for (const ScenarioOutcome& run : out.runs) {
        if (run.res.pass) continue;
        print_failure(run.res, run.schedule);
        if (!no_shrink) shrink_and_save(run.schedule, out_dir);
      }
      std::printf(
          "  reproduce: chaos_soak --seed_lo=%llu --seed_hi=%llu "
          "--verbose=1\n",
          static_cast<unsigned long long>(out.seed),
          static_cast<unsigned long long>(out.seed + 1));
    }
    if (!pass) {
      ++failures;
      if (!failing_seeds.empty()) failing_seeds += ",";
      failing_seeds += std::to_string(out.seed);
    }
  }
  std::printf("\n%llu/%llu seeds passed\n",
              static_cast<unsigned long long>(seeds - failures),
              static_cast<unsigned long long>(seeds));
  report.config("failing_seeds", failing_seeds);
  if (!only.empty()) report.config("scenario", only);
  report.tolerance(0.0);  // pass/fail counts must match exactly
  report.metric("seeds_run", static_cast<double>(seeds));
  report.metric("seeds_failed", static_cast<double>(failures));
  // Legacy rollups (tcp covers both loss-profile TCP scenarios) plus a
  // combined healing-scenario count.
  report.metric("tcp_failures", static_cast<double>(scenario_failures[0] +
                                                    scenario_failures[1]));
  report.metric("dns_failures", static_cast<double>(scenario_failures[2]));
  report.metric("heal_failures", static_cast<double>(scenario_failures[3] +
                                                     scenario_failures[4]));
  report.metric("fleet_failures", static_cast<double>(scenario_failures[5]));
  report.metric("tail_failures", static_cast<double>(scenario_failures[6]));
  report.metric("gossip_failures", static_cast<double>(scenario_failures[7]));
  report.metric("clocks_failures", static_cast<double>(scenario_failures[8]));
  report.write();
  return failures == 0 ? 0 : 1;
}
