// Figure 1: plot of active code for the TCP receive & acknowledge path —
// per-function touched bytes in each of the three Table 2 phases, with the
// per-phase code/read/write footers.
#include <cstdio>

#include <string>

#include "bench_util.hpp"
#include "stack/rx_path_trace.hpp"
#include "trace/code_map_render.hpp"
#include "trace/working_set.hpp"

int main(int argc, char** argv) {
  using namespace ldlp;
  benchutil::Flags flags(argc, argv);
  const auto payload = static_cast<std::uint32_t>(flags.u64("payload", 512));
  benchutil::BenchReport report("fig1_code_map", flags);
  report.config_u64("payload", payload);

  stack::StackTracer tracer;
  trace::TraceBuffer buffer;
  if (!stack::trace_tcp_receive_ack(tracer, buffer, {payload, 2})) {
    std::fprintf(stderr, "FAILED: receive path did not complete\n");
    return 1;
  }

  benchutil::heading("Table 2: phases of the receive & acknowledge path");
  std::printf(
      "  entry    - process makes read() call, no data, blocks\n"
      "  pkt intr - segment arrives; Ethernet -> IP -> TCP fast path ->\n"
      "             socket buffer; sleeping process woken\n"
      "  exit     - process wakes, copies data out, TCP sends the ACK\n");

  benchutil::heading("Figure 1: map of active code (touched bytes per phase)");
  std::printf("%s", trace::render_code_map(tracer.code_map(), buffer).c_str());
  std::printf(
      "\nPaper footers for comparison: entry 3008 B code / 564 refs;\n"
      "pkt intr 13664 B / 43138 refs; exit 18240 B / 10518 refs.\n"
      "(Reference *counts* are modelled coarsely — loop revisit factors are\n"
      "approximate — byte footprints are the calibrated quantity.)\n");

  const auto ws = trace::analyze_working_set(buffer, 32);
  for (std::size_t i = 0; i < trace::kNumPhases; ++i) {
    const trace::PhaseSummary& phase = ws.phases[i];
    std::string name(trace::phase_name(static_cast<trace::Phase>(i)));
    for (char& c : name)
      if (c == ' ') c = '_';
    report.metric(name + ".code_bytes", static_cast<double>(phase.code_bytes));
    report.metric(name + ".code_refs", static_cast<double>(phase.code_refs));
    report.metric(name + ".read_bytes", static_cast<double>(phase.read_bytes));
    report.metric(name + ".write_bytes",
                  static_cast<double>(phase.write_bytes));
  }
  report.write();
  return 0;
}
