// Shared helpers for the reproduction benches: tiny flag parser and
// paper-vs-measured report formatting.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

namespace ldlp::benchutil {

/// Minimal "--name=value" flag reader.
class Flags {
 public:
  Flags(int argc, char** argv) : argc_(argc), argv_(argv) {}

  [[nodiscard]] std::uint64_t u64(const char* name,
                                  std::uint64_t fallback) const {
    const char* v = find(name);
    return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
  }
  [[nodiscard]] double f64(const char* name, double fallback) const {
    const char* v = find(name);
    return v != nullptr ? std::strtod(v, nullptr) : fallback;
  }
  [[nodiscard]] bool flag(const char* name) const {
    for (int i = 1; i < argc_; ++i) {
      if (std::strncmp(argv_[i], "--", 2) == 0 &&
          std::strcmp(argv_[i] + 2, name) == 0)
        return true;
    }
    return false;
  }

 private:
  [[nodiscard]] const char* find(const char* name) const {
    const std::size_t len = std::strlen(name);
    for (int i = 1; i < argc_; ++i) {
      const char* arg = argv_[i];
      if (std::strncmp(arg, "--", 2) != 0) continue;
      if (std::strncmp(arg + 2, name, len) == 0 && arg[2 + len] == '=')
        return arg + 2 + len + 1;
    }
    return nullptr;
  }

  int argc_;
  char** argv_;
};

inline void heading(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

/// "paper X, measured Y (delta%)" row.
inline void compare_row(const char* label, double paper, double measured) {
  const double delta =
      paper != 0.0 ? (measured - paper) / paper * 100.0 : 0.0;
  std::printf("  %-28s paper %10.0f   measured %10.0f   (%+.1f%%)\n", label,
              paper, measured, delta);
}

/// Human-readable seconds.
inline std::string fmt_latency(double sec) {
  char buf[32];
  if (sec < 1e-3) {
    std::snprintf(buf, sizeof buf, "%7.1f us", sec * 1e6);
  } else if (sec < 1.0) {
    std::snprintf(buf, sizeof buf, "%7.2f ms", sec * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%7.2f s ", sec);
  }
  return buf;
}

}  // namespace ldlp::benchutil
