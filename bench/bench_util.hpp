// Shared helpers for the reproduction benches: tiny flag parser,
// paper-vs-measured report formatting, and the common machine-readable
// result file (BENCH_<name>.json, schema "ldlp.bench.v1").
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "obs/bench_result.hpp"

namespace ldlp::benchutil {

/// Minimal "--name=value" flag reader.
class Flags {
 public:
  Flags(int argc, char** argv) : argc_(argc), argv_(argv) {}

  [[nodiscard]] std::uint64_t u64(const char* name,
                                  std::uint64_t fallback) const {
    const char* v = find(name);
    return v != nullptr ? std::strtoull(v, nullptr, 10) : fallback;
  }
  [[nodiscard]] double f64(const char* name, double fallback) const {
    const char* v = find(name);
    return v != nullptr ? std::strtod(v, nullptr) : fallback;
  }
  [[nodiscard]] const char* str(const char* name, const char* fallback) const {
    const char* v = find(name);
    return v != nullptr ? v : fallback;
  }
  [[nodiscard]] bool flag(const char* name) const {
    for (int i = 1; i < argc_; ++i) {
      if (std::strncmp(argv_[i], "--", 2) == 0 &&
          std::strcmp(argv_[i] + 2, name) == 0)
        return true;
    }
    return false;
  }

 private:
  [[nodiscard]] const char* find(const char* name) const {
    const std::size_t len = std::strlen(name);
    for (int i = 1; i < argc_; ++i) {
      const char* arg = argv_[i];
      if (std::strncmp(arg, "--", 2) != 0) continue;
      if (std::strncmp(arg + 2, name, len) == 0 && arg[2 + len] == '=')
        return arg + 2 + len + 1;
    }
    return nullptr;
  }

  int argc_;
  char** argv_;
};

inline void heading(const char* title) {
  std::printf("\n=== %s ===\n", title);
}

/// "paper X, measured Y (delta%)" row.
inline void compare_row(const char* label, double paper, double measured) {
  const double delta =
      paper != 0.0 ? (measured - paper) / paper * 100.0 : 0.0;
  std::printf("  %-28s paper %10.0f   measured %10.0f   (%+.1f%%)\n", label,
              paper, measured, delta);
}

/// Accumulates a bench run's key numbers and writes BENCH_<name>.json next
/// to the human-readable stdout report. Output directory comes from
/// --out_dir=<dir> (default "."); --no_json suppresses the file, so ad hoc
/// sweeps don't clobber a result someone is comparing against.
class BenchReport {
 public:
  BenchReport(std::string name, const Flags& flags) {
    result_.name = std::move(name);
    enabled_ = !flags.flag("no_json");
    const char* dir = flags.str("out_dir", ".");
    dir_ = dir;
  }

  void config(std::string key, std::string value) {
    result_.set_config(std::move(key), std::move(value));
  }
  void config_u64(std::string key, std::uint64_t value) {
    result_.set_config(std::move(key), std::to_string(value));
  }
  void metric(std::string key, double value) {
    result_.set_metric(std::move(key), value);
  }
  void tolerance(double tol) { result_.tolerance = tol; }

  [[nodiscard]] const obs::BenchResult& result() const noexcept {
    return result_;
  }

  /// Emit BENCH_<name>.json (unless --no_json). Returns true on success or
  /// when suppressed; prints the path so runs are self-describing.
  bool write() const {
    if (!enabled_) return true;
    if (!result_.write_file(dir_)) {
      std::fprintf(stderr, "warning: failed to write %s/%s\n", dir_.c_str(),
                   result_.file_name().c_str());
      return false;
    }
    std::printf("\nwrote %s/%s\n", dir_.c_str(), result_.file_name().c_str());
    return true;
  }

 private:
  obs::BenchResult result_;
  std::string dir_;
  bool enabled_ = true;
};

/// Human-readable seconds.
inline std::string fmt_latency(double sec) {
  char buf[32];
  if (sec < 1e-3) {
    std::snprintf(buf, sizeof buf, "%7.1f us", sec * 1e6);
  } else if (sec < 1.0) {
    std::snprintf(buf, sizeof buf, "%7.2f ms", sec * 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%7.2f s ", sec);
  }
  return buf;
}

}  // namespace ldlp::benchutil
