// Figure 5: instruction and data cache misses per message vs arrival rate,
// Poisson source of 552-byte messages, conventional vs LDLP scheduling.
//
// Machine: 100 MHz CPU, 8 KB direct-mapped split I/D caches, 32-byte
// lines, 20-cycle miss penalty — the paper's synthetic machine. Results
// are averaged over randomised memory layouts (paper: 100 runs x 1 s;
// default here 30, selectable via --runs=N).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "synth/sweep.hpp"

int main(int argc, char** argv) {
  using namespace ldlp;
  benchutil::Flags flags(argc, argv);
  synth::SweepOptions opt;
  opt.runs = static_cast<std::uint32_t>(flags.u64("runs", 30));
  opt.run_seconds = flags.f64("seconds", 1.0);
  opt.seed = flags.u64("seed", 0x5eed);
  benchutil::BenchReport report("fig5_cache_misses", flags);
  report.config_u64("runs", opt.runs);
  report.config_u64("seed", opt.seed);
  report.config("seconds", std::to_string(opt.run_seconds));

  std::vector<double> rates;
  for (double r = 1000; r <= 10000; r += 1000) rates.push_back(r);

  synth::SynthConfig conv;
  conv.mode = synth::SynthMode::kConventional;
  synth::SynthConfig ilp = conv;
  ilp.mode = synth::SynthMode::kIlp;
  synth::SynthConfig ldlp = conv;
  ldlp.mode = synth::SynthMode::kLdlp;

  const auto pc = synth::sweep_poisson_rates(conv, rates, opt);
  const auto pi = synth::sweep_poisson_rates(ilp, rates, opt);
  const auto pl = synth::sweep_poisson_rates(ldlp, rates, opt);

  benchutil::heading(
      "Figure 5: cache misses per message vs arrival rate (Poisson, 552 B)");
  std::printf("(%u runs x %.1f s per point, random layout per run; "
              "LDLP batch limit = %u messages;\n ILP added beyond the "
              "paper's two curves — it fuses data loops but cannot touch "
              "code locality)\n\n",
              opt.runs, opt.run_seconds, pl.front().mean.batch_limit);
  std::printf("%9s | %9s %9s | %9s %9s | %9s %9s | %6s\n", "rate",
              "conv I", "conv D", "ILP I", "ILP D", "LDLP I", "LDLP D",
              "batch");
  for (std::size_t i = 0; i < rates.size(); ++i) {
    std::printf("%9.0f | %9.1f %9.1f | %9.1f %9.1f | %9.1f %9.1f | %6.2f\n",
                rates[i], pc[i].mean.i_misses_per_msg,
                pc[i].mean.d_misses_per_msg, pi[i].mean.i_misses_per_msg,
                pi[i].mean.d_misses_per_msg, pl[i].mean.i_misses_per_msg,
                pl[i].mean.d_misses_per_msg, pl[i].mean.mean_batch);
    const std::string rate = std::to_string(static_cast<int>(rates[i]));
    report.metric("conv.i_miss@" + rate, pc[i].mean.i_misses_per_msg);
    report.metric("conv.d_miss@" + rate, pc[i].mean.d_misses_per_msg);
    report.metric("ilp.i_miss@" + rate, pi[i].mean.i_misses_per_msg);
    report.metric("ilp.d_miss@" + rate, pi[i].mean.d_misses_per_msg);
    report.metric("ldlp.i_miss@" + rate, pl[i].mean.i_misses_per_msg);
    report.metric("ldlp.d_miss@" + rate, pl[i].mean.d_misses_per_msg);
    report.metric("ldlp.mean_batch@" + rate, pl[i].mean.mean_batch);
  }
  report.metric("ldlp.batch_limit",
                static_cast<double>(pl.front().mean.batch_limit));

  std::printf(
      "\nShape checks vs the paper:\n"
      "  - conventional I-misses stay ~flat near the full per-message\n"
      "    working set (5 layers x 6 KB / 32 B = 960 lines);\n"
      "  - LDLP I-misses fall roughly as 1/batch as load rises;\n"
      "  - LDLP D-misses rise with batching but stay far below the I-miss\n"
      "    savings;\n"
      "  - the LDLP curve flattens when batching hits the max batch size\n"
      "    (paper: beyond ~8500 msgs/sec).\n");
  report.write();
  return 0;
}
