// The perf-regression gate suite: fast, deterministic re-runs of the key
// reproduction results, reduced to "ldlp.bench.v1" BenchResults and gated
// against the checked-in baselines in bench/baselines/.
//
// Shared by bench_regress (the CLI driver, which can also --update the
// baselines) and tests/test_bench_regress.cpp (the ctest `bench-gate`
// label), so the gate that CI runs is byte-for-byte the gate a developer
// runs by hand.
//
// Every case here must be deterministic in its hard-coded seeds and finish
// in at most a few seconds; the slow statistical sweeps stay in the fig*
// binaries. Tolerances are per-case: analytic results use a hair above
// zero (they only move if the model changes), simulator results 5% (they
// only move if scheduling, cache or traffic behaviour changes — which is
// exactly what the gate is for).
#pragma once

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "core/blocking.hpp"
#include "obs/bench_result.hpp"
#include "par/shard_engine.hpp"
#include "sim/cpu_model.hpp"
#include "stack/rx_path_trace.hpp"
#include "synth/sweep.hpp"
#include "trace/working_set.hpp"

namespace ldlp::regress {

/// Analytic blocking estimates (core::estimate_blocking) at the paper's
/// machine points. Pure arithmetic — any drift is a semantic change.
inline obs::BenchResult gate_blocking() {
  obs::BenchResult result;
  result.name = "gate_blocking";
  result.tolerance = 1e-9;

  struct Point {
    const char* key;
    std::uint32_t dcache_kb;
    std::uint32_t message_bytes;
  };
  const Point points[] = {
      {"paper_552", 8, 552},    // the reference internet packet
      {"signal_100", 8, 100},   // signalling-sized messages
      {"big_cache", 64, 552},   // future machine
      {"tiny_cache", 1, 2048},  // degenerate: one message > cache
  };
  for (const Point& p : points) {
    const core::StackFootprint footprint{5, 6 * 1024, 256, p.message_bytes};
    sim::CacheConfig icache{8 * 1024, 32, 1};
    sim::CacheConfig dcache{p.dcache_kb * 1024, 32, 1};
    const auto est = core::estimate_blocking(footprint, icache, dcache);
    result.set_metric(std::string("batch_limit.") + p.key,
                      static_cast<double>(est.batch_limit));
  }
  return result;
}

/// The traced receive path's working set (Table 1 totals) and line-size
/// corollary (Table 3 dilution). Deterministic trace, no randomness.
inline obs::BenchResult gate_working_set() {
  obs::BenchResult result;
  result.name = "gate_working_set";
  result.tolerance = 1e-9;

  stack::StackTracer tracer;
  trace::TraceBuffer buffer;
  if (!stack::trace_tcp_receive_ack(tracer, buffer, {512, 2})) {
    result.set_metric("trace_failed", 1.0);
    return result;
  }
  const auto ws = trace::analyze_working_set(buffer, 32);
  result.set_metric("code_bytes", static_cast<double>(ws.code_bytes()));
  result.set_metric("ro_bytes", static_cast<double>(ws.ro_bytes()));
  result.set_metric("mut_bytes", static_cast<double>(ws.mut_bytes()));
  const auto ws4 = trace::analyze_working_set(buffer, 4);
  result.set_metric("dilution_frac",
                    1.0 - static_cast<double>(ws4.code_bytes()) /
                              static_cast<double>(ws.code_bytes()));
  return result;
}

/// Figure 8's cold-start offsets: the cache-fill cost of the two checksum
/// routines on the paper machine. Deterministic cycle counts.
inline obs::BenchResult gate_checksum() {
  obs::BenchResult result;
  result.name = "gate_checksum";
  result.tolerance = 1e-9;

  const auto fill_cycles = [](std::uint32_t code_bytes, double fixed) {
    sim::CpuModel cold(sim::CpuConfig{});
    sim::CpuModel warm(sim::CpuConfig{});
    warm.ifetch(0x10000, code_bytes);
    const std::uint64_t w0 = warm.busy_cycles();
    const std::uint64_t c0 = cold.busy_cycles();
    cold.ifetch(0x10000, code_bytes);
    cold.execute(static_cast<std::uint64_t>(fixed));
    warm.ifetch(0x10000, code_bytes);
    warm.execute(static_cast<std::uint64_t>(fixed));
    return static_cast<double>((cold.busy_cycles() - c0) -
                               (warm.busy_cycles() - w0));
  };
  result.set_metric("bsd.cache_fill_cycles", fill_cycles(682, 80.0));
  result.set_metric("simple.cache_fill_cycles", fill_cycles(288, 30.0));
  return result;
}

/// One fast point each from the Figure 5/6 sweeps: conventional vs LDLP
/// at a moderate and a saturating load, 3 randomised layouts, short
/// horizon. Deterministic in the seed; 5% tolerance absorbs benign
/// floating-point reordering without letting a scheduling change through.
inline obs::BenchResult gate_synth() {
  obs::BenchResult result;
  result.name = "gate_synth";
  result.tolerance = 0.05;

  synth::SweepOptions opt;
  opt.runs = 3;
  opt.run_seconds = 0.2;
  opt.seed = 0x5eed;
  const std::vector<double> rates = {3000.0, 8000.0};

  synth::SynthConfig conv;
  conv.mode = synth::SynthMode::kConventional;
  synth::SynthConfig ldlp = conv;
  ldlp.mode = synth::SynthMode::kLdlp;
  const auto pc = synth::sweep_poisson_rates(conv, rates, opt);
  const auto pl = synth::sweep_poisson_rates(ldlp, rates, opt);

  for (std::size_t i = 0; i < rates.size(); ++i) {
    const std::string rate = std::to_string(static_cast<int>(rates[i]));
    const auto& c = pc[i].mean;
    const auto& l = pl[i].mean;
    result.set_metric("conv.i_miss@" + rate, c.i_misses_per_msg);
    result.set_metric("conv.d_miss@" + rate, c.d_misses_per_msg);
    result.set_metric("conv.mean_latency_sec@" + rate, c.mean_latency_sec);
    result.set_metric("ldlp.i_miss@" + rate, l.i_misses_per_msg);
    result.set_metric("ldlp.d_miss@" + rate, l.d_misses_per_msg);
    result.set_metric("ldlp.mean_latency_sec@" + rate, l.mean_latency_sec);
    result.set_metric("ldlp.mean_batch@" + rate, l.mean_batch);
  }
  result.set_metric("ldlp.batch_limit",
                    static_cast<double>(pl.front().mean.batch_limit));
  return result;
}

/// A reduced ext_shard_sweep: coalesced flow-sharded LDLP at 1/4/8 shards,
/// equal total load. The acceptance line is the `i_miss_ratio@N` metrics —
/// the busiest shard's i-cache miss count over the single-queue LDLP
/// baseline, which must stay at or below 1. Bit-deterministic in the seed;
/// 5% tolerance, same rationale as gate_synth.
inline obs::BenchResult gate_shard_sweep() {
  obs::BenchResult result;
  result.name = "gate_shard_sweep";
  result.tolerance = 0.05;

  double single_queue_i = 0.0;
  for (const std::uint32_t shards : {1u, 4u, 8u}) {
    par::ShardEngineConfig cfg;
    cfg.shards = shards;
    cfg.flows = 64;
    cfg.messages = 6000;
    cfg.arrival_rate_hz = 16000.0;
    cfg.coalesce_sec = 750e-6;
    cfg.seed = 0x5eed;
    const par::ShardEngineResult r = par::ShardEngine(cfg).run();
    std::uint64_t max_i = 0;
    for (const par::ShardStats& s : r.shards)
      max_i = std::max<std::uint64_t>(max_i, s.i_misses);
    if (shards == 1) single_queue_i = static_cast<double>(max_i);
    const std::string key = "@" + std::to_string(shards);
    result.set_metric("i_miss_ratio" + key,
                      static_cast<double>(max_i) / single_queue_i);
    result.set_metric("i_miss_per_msg" + key, r.i_miss_per_msg);
    result.set_metric("mean_latency_sec" + key, r.mean_latency_sec);
    result.set_metric("mean_batch" + key, r.mean_batch);
    result.set_metric("max_shard_share" + key, r.max_shard_share);
  }
  return result;
}

struct GateCase {
  const char* name;
  obs::BenchResult (*run)();
};

inline std::vector<GateCase> suite() {
  return {
      {"gate_blocking", &gate_blocking},
      {"gate_working_set", &gate_working_set},
      {"gate_checksum", &gate_checksum},
      {"gate_synth", &gate_synth},
      {"gate_shard_sweep", &gate_shard_sweep},
  };
}

/// Gate one case against `baseline_dir`. Returns true on pass; on any
/// failure (missing baseline, drift) prints a report to stderr.
inline bool gate_case(const GateCase& gate, const std::string& baseline_dir) {
  const obs::BenchResult current = gate.run();
  std::string error;
  const auto baseline = obs::BenchResult::load_file(
      baseline_dir + "/" + current.file_name(), &error);
  if (!baseline.has_value()) {
    std::fprintf(stderr, "%s: no baseline (%s) — run `bench_regress --update`\n",
                 gate.name, error.c_str());
    return false;
  }
  const obs::CompareReport report = obs::compare_results(*baseline, current);
  if (!report.pass)
    std::fprintf(stderr, "%s: REGRESSION\n%s", gate.name,
                 report.describe().c_str());
  return report.pass;
}

}  // namespace ldlp::regress
