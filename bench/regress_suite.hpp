// The perf-regression gate suite: fast, deterministic re-runs of the key
// reproduction results, reduced to "ldlp.bench.v1" BenchResults and gated
// against the checked-in baselines in bench/baselines/.
//
// Shared by bench_regress (the CLI driver, which can also --update the
// baselines) and tests/test_bench_regress.cpp (the ctest `bench-gate`
// label), so the gate that CI runs is byte-for-byte the gate a developer
// runs by hand.
//
// Every case here must be deterministic in its hard-coded seeds and finish
// in at most a few seconds; the slow statistical sweeps stay in the fig*
// binaries. Tolerances are per-case: analytic results use a hair above
// zero (they only move if the model changes), simulator results 5% (they
// only move if scheduling, cache or traffic behaviour changes — which is
// exactly what the gate is for).
#pragma once

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <span>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/blocking.hpp"
#include "fault/fault_plan.hpp"
#include "net/fabric.hpp"
#include "net/topology.hpp"
#include "obs/bench_result.hpp"
#include "overlay/gossip_sim.hpp"
#include "par/shard_engine.hpp"
#include "pipe/stage_engine.hpp"
#include "recover/partition_heal.hpp"
#include "rpc/fanout.hpp"
#include "sim/cpu_model.hpp"
#include "stack/rx_path_trace.hpp"
#include "synth/sweep.hpp"
#include "time/timer_wheel.hpp"
#include "trace/working_set.hpp"
#include "traffic/self_similar.hpp"
#include "traffic/size_models.hpp"

namespace ldlp::regress {

/// Analytic blocking estimates (core::estimate_blocking) at the paper's
/// machine points. Pure arithmetic — any drift is a semantic change.
inline obs::BenchResult gate_blocking() {
  obs::BenchResult result;
  result.name = "gate_blocking";
  result.tolerance = 1e-9;

  struct Point {
    const char* key;
    std::uint32_t dcache_kb;
    std::uint32_t message_bytes;
  };
  const Point points[] = {
      {"paper_552", 8, 552},    // the reference internet packet
      {"signal_100", 8, 100},   // signalling-sized messages
      {"big_cache", 64, 552},   // future machine
      {"tiny_cache", 1, 2048},  // degenerate: one message > cache
  };
  for (const Point& p : points) {
    const core::StackFootprint footprint{5, 6 * 1024, 256, p.message_bytes};
    sim::CacheConfig icache{8 * 1024, 32, 1};
    sim::CacheConfig dcache{p.dcache_kb * 1024, 32, 1};
    const auto est = core::estimate_blocking(footprint, icache, dcache);
    result.set_metric(std::string("batch_limit.") + p.key,
                      static_cast<double>(est.batch_limit));
  }
  return result;
}

/// The traced receive path's working set (Table 1 totals) and line-size
/// corollary (Table 3 dilution). Deterministic trace, no randomness.
inline obs::BenchResult gate_working_set() {
  obs::BenchResult result;
  result.name = "gate_working_set";
  result.tolerance = 1e-9;

  stack::StackTracer tracer;
  trace::TraceBuffer buffer;
  if (!stack::trace_tcp_receive_ack(tracer, buffer, {512, 2})) {
    result.set_metric("trace_failed", 1.0);
    return result;
  }
  const auto ws = trace::analyze_working_set(buffer, 32);
  result.set_metric("code_bytes", static_cast<double>(ws.code_bytes()));
  result.set_metric("ro_bytes", static_cast<double>(ws.ro_bytes()));
  result.set_metric("mut_bytes", static_cast<double>(ws.mut_bytes()));
  const auto ws4 = trace::analyze_working_set(buffer, 4);
  result.set_metric("dilution_frac",
                    1.0 - static_cast<double>(ws4.code_bytes()) /
                              static_cast<double>(ws.code_bytes()));
  return result;
}

/// Figure 8's cold-start offsets: the cache-fill cost of the two checksum
/// routines on the paper machine. Deterministic cycle counts.
inline obs::BenchResult gate_checksum() {
  obs::BenchResult result;
  result.name = "gate_checksum";
  result.tolerance = 1e-9;

  const auto fill_cycles = [](std::uint32_t code_bytes, double fixed) {
    sim::CpuModel cold(sim::CpuConfig{});
    sim::CpuModel warm(sim::CpuConfig{});
    warm.ifetch(0x10000, code_bytes);
    const std::uint64_t w0 = warm.busy_cycles();
    const std::uint64_t c0 = cold.busy_cycles();
    cold.ifetch(0x10000, code_bytes);
    cold.execute(static_cast<std::uint64_t>(fixed));
    warm.ifetch(0x10000, code_bytes);
    warm.execute(static_cast<std::uint64_t>(fixed));
    return static_cast<double>((cold.busy_cycles() - c0) -
                               (warm.busy_cycles() - w0));
  };
  result.set_metric("bsd.cache_fill_cycles", fill_cycles(682, 80.0));
  result.set_metric("simple.cache_fill_cycles", fill_cycles(288, 30.0));
  return result;
}

/// One fast point each from the Figure 5/6 sweeps: conventional vs LDLP
/// at a moderate and a saturating load, 3 randomised layouts, short
/// horizon. Deterministic in the seed; 5% tolerance absorbs benign
/// floating-point reordering without letting a scheduling change through.
inline obs::BenchResult gate_synth() {
  obs::BenchResult result;
  result.name = "gate_synth";
  result.tolerance = 0.05;

  synth::SweepOptions opt;
  opt.runs = 3;
  opt.run_seconds = 0.2;
  opt.seed = 0x5eed;
  const std::vector<double> rates = {3000.0, 8000.0};

  synth::SynthConfig conv;
  conv.mode = synth::SynthMode::kConventional;
  synth::SynthConfig ldlp = conv;
  ldlp.mode = synth::SynthMode::kLdlp;
  const auto pc = synth::sweep_poisson_rates(conv, rates, opt);
  const auto pl = synth::sweep_poisson_rates(ldlp, rates, opt);

  for (std::size_t i = 0; i < rates.size(); ++i) {
    const std::string rate = std::to_string(static_cast<int>(rates[i]));
    const auto& c = pc[i].mean;
    const auto& l = pl[i].mean;
    result.set_metric("conv.i_miss@" + rate, c.i_misses_per_msg);
    result.set_metric("conv.d_miss@" + rate, c.d_misses_per_msg);
    result.set_metric("conv.mean_latency_sec@" + rate, c.mean_latency_sec);
    result.set_metric("ldlp.i_miss@" + rate, l.i_misses_per_msg);
    result.set_metric("ldlp.d_miss@" + rate, l.d_misses_per_msg);
    result.set_metric("ldlp.mean_latency_sec@" + rate, l.mean_latency_sec);
    result.set_metric("ldlp.mean_batch@" + rate, l.mean_batch);
  }
  result.set_metric("ldlp.batch_limit",
                    static_cast<double>(pl.front().mean.batch_limit));
  return result;
}

/// A reduced ext_shard_sweep: coalesced flow-sharded LDLP at 1/4/8 shards,
/// equal total load. The acceptance line is the `i_miss_ratio@N` metrics —
/// the busiest shard's i-cache miss count over the single-queue LDLP
/// baseline, which must stay at or below 1. Bit-deterministic in the seed;
/// 5% tolerance, same rationale as gate_synth.
inline obs::BenchResult gate_shard_sweep() {
  obs::BenchResult result;
  result.name = "gate_shard_sweep";
  result.tolerance = 0.05;

  double single_queue_i = 0.0;
  for (const std::uint32_t shards : {1u, 4u, 8u}) {
    par::ShardEngineConfig cfg;
    cfg.shards = shards;
    cfg.flows = 64;
    cfg.messages = 6000;
    cfg.arrival_rate_hz = 16000.0;
    cfg.coalesce_sec = 750e-6;
    cfg.seed = 0x5eed;
    const par::ShardEngineResult r = par::ShardEngine(cfg).run();
    std::uint64_t max_i = 0;
    for (const par::ShardStats& s : r.shards)
      max_i = std::max<std::uint64_t>(max_i, s.i_misses);
    if (shards == 1) single_queue_i = static_cast<double>(max_i);
    const std::string key = "@" + std::to_string(shards);
    result.set_metric("i_miss_ratio" + key,
                      static_cast<double>(max_i) / single_queue_i);
    result.set_metric("i_miss_per_msg" + key, r.i_miss_per_msg);
    result.set_metric("mean_latency_sec" + key, r.mean_latency_sec);
    result.set_metric("mean_batch" + key, r.mean_batch);
    result.set_metric("max_shard_share" + key, r.max_shard_share);
  }
  return result;
}

/// A reduced fleet soak on the ldlp::net fabric: 16 hosts on a 4x4
/// fat-tree with two spines, a hand-written fault plan (spine-0 partition,
/// a flapping trunk, a lossy rack), and eight cross-rack TCP streams
/// drip-fed across the fault window. Strict acceptance: every stream
/// completes byte-exact (no truncation allowance — nothing restarts), the
/// partition-heal oracle records zero violations, and the fabric's frame
/// ledger balances (injected == delivered + dropped + in-flight, residual
/// exactly 0 — the near-zero baselines compare absolutely).
inline obs::BenchResult gate_fleet_soak() {
  obs::BenchResult result;
  result.name = "gate_fleet_soak";
  result.tolerance = 0.05;

  net::Fabric fabric({/*host_tick_sec=*/5e-3, /*fault_seed=*/0x9a7e});
  net::FatTreeConfig topo;
  topo.racks = 4;
  topo.hosts_per_rack = 4;
  topo.spines = 2;
  topo.proto.pool_mbufs = 384;
  topo.proto.pool_clusters = 96;
  topo.proto.mode = core::SchedMode::kLdlp;
  const std::vector<net::HostId> hosts = net::build_fat_tree(fabric, topo);

  fault::FaultPlan plan;
  fault::Episode spine_cut;  // correlated: every spine-0 trunk at once
  spine_cut.kind = fault::FaultKind::kPartition;
  spine_cut.start = 0.4;
  spine_cut.end = 0.9;
  spine_cut.domain = fault::FaultDomain::kSwitch;
  spine_cut.domain_index = 0;  // spines are created first: switch id 0
  plan.add(spine_cut);
  fault::Episode trunk_flap;  // rack 1's only healthy uplink flaps too
  trunk_flap.kind = fault::FaultKind::kLinkFlap;
  trunk_flap.start = 0.1;
  trunk_flap.end = 0.7;
  trunk_flap.rate = 0.4;
  trunk_flap.magnitude = 0.05;
  trunk_flap.domain = fault::FaultDomain::kLink;
  trunk_flap.domain_index = 11;  // leaf1<->spine1 (4 access + trunks/rack)
  plan.add(trunk_flap);
  fault::Episode rack_loss;
  rack_loss.kind = fault::FaultKind::kLossBurst;
  rack_loss.start = 0.2;
  rack_loss.end = 0.6;
  rack_loss.rate = 0.3;
  rack_loss.domain = fault::FaultDomain::kRack;
  rack_loss.domain_index = 2;
  plan.add(rack_loss);
  fabric.set_fault_plan(plan, /*seed=*/0x50a6);

  recover::PartitionHealOracle heal;  // truncation NOT allowed: strict
  struct Pair {
    std::size_t src, dst;
    recover::PartitionHealOracle::PairId pid;
    std::uint16_t port;
    stack::PcbId conn = stack::kNoPcb;
    stack::SocketId rx_socket = stack::kNoSocket;
    std::vector<std::uint8_t> payload;
    std::size_t sent_off = 0;
    std::size_t got = 0;
  };
  std::vector<Pair> pairs;
  for (std::size_t k = 0; k < 8; ++k) {
    // Even hosts send, odd hosts receive; the +5 stride crosses racks.
    Pair p{2 * k, (2 * k + 5) % 16, 0,
           static_cast<std::uint16_t>(4000 + k)};
    p.pid = heal.open_pair(fabric.host(hosts[p.src]).name(),
                           fabric.host(hosts[p.dst]).name());
    p.payload.resize(4000);
    for (std::size_t i = 0; i < p.payload.size(); ++i)
      p.payload[i] = static_cast<std::uint8_t>(i * 13 + k * 101);
    pairs.push_back(std::move(p));
  }
  for (Pair& p : pairs) {
    stack::Host& dst = fabric.host(hosts[p.dst]);
    dst.sockets().set_tap(&heal.rx_tap(dst.name()));
    dst.tcp().set_accept_hook([&heal, &dst, &p](stack::PcbId id) {
      if (p.rx_socket != stack::kNoSocket) return;
      p.rx_socket = dst.tcp().socket_of(id);
      heal.bind_rx(p.pid, p.rx_socket);
    });
    (void)dst.tcp().listen(p.port);
  }
  for (Pair& p : pairs) {
    stack::Host& src = fabric.host(hosts[p.src]);
    src.tcp().set_send_tap(
        [&heal, &p](stack::PcbId id, std::span<const std::uint8_t> bytes) {
          if (id == p.conn) heal.sent(p.pid, bytes);
        });
    p.conn = src.tcp().connect(net::host_ip(static_cast<std::uint32_t>(
                                   p.dst)),
                               p.port);
  }

  std::vector<std::uint8_t> chunk(1024);
  for (int iter = 0; iter < 400; ++iter) {
    bool all_done = true;
    for (Pair& p : pairs) {
      stack::TcpLayer& stcp = fabric.host(hosts[p.src]).tcp();
      // Drip-feed so the streams straddle the partition window instead
      // of finishing before the first episode starts.
      if (p.sent_off < p.payload.size() &&
          stcp.state(p.conn) == stack::TcpState::kEstablished) {
        const std::size_t n =
            std::min<std::size_t>(250, p.payload.size() - p.sent_off);
        if (stcp.send(p.conn,
                      std::span(p.payload).subspan(p.sent_off, n)))
          p.sent_off += n;
      }
      if (p.rx_socket != stack::kNoSocket)
        p.got += fabric.host(hosts[p.dst]).sockets().read(p.rx_socket, chunk);
      if (p.got < p.payload.size()) all_done = false;
    }
    if (all_done && fabric.faults_cleared()) break;
    fabric.run_for(0.05);
  }

  std::size_t completed = 0;
  for (const Pair& p : pairs) completed += p.got >= p.payload.size();
  (void)heal.finalize();
  const net::FabricTotals totals = fabric.totals();
  result.set_metric("completed_pairs", static_cast<double>(completed));
  result.set_metric("heal_violations",
                    static_cast<double>(heal.stats().violations));
  result.set_metric("conservation_residual",
                    static_cast<double>(fabric.conservation_residual()));
  result.set_metric("frames_delivered",
                    static_cast<double>(totals.delivered));
  result.set_metric("frames_dropped", static_cast<double>(
                                          totals.queue_drops +
                                          totals.fault_drops));
  for (const net::HostId id : hosts)
    fabric.host(id).sockets().set_tap(nullptr);
  return result;
}

/// Self-healing overlay gate: a reduced run_gossip_sim (16 hosts on a
/// 4x4 fat-tree, the exact code the gossip soak and the unit tests run)
/// under a fixed schedule — a rack-scoped loss burst plus one mid-storm
/// host restart, so every protocol mechanism (graft, prune, probe-death
/// promotion, restart rejoin) leaves evidence. The whole run is a pure
/// function of the schedule, so the counters are pinned exactly and the
/// tolerance only absorbs float noise in the derived ratios; the
/// near-zero baselines (violations) compare absolutely.
inline obs::BenchResult gate_gossip_soak() {
  obs::BenchResult result;
  result.name = "gate_gossip_soak";
  result.tolerance = 0.05;

  check::Schedule schedule;
  schedule.scenario = "gossip";
  schedule.seed = 7;
  fault::FaultPlan fabric_plan;
  fault::Episode rack_loss;
  rack_loss.kind = fault::FaultKind::kLossBurst;
  rack_loss.start = 0.3;
  rack_loss.end = 0.8;
  rack_loss.rate = 0.3;
  rack_loss.domain = fault::FaultDomain::kRack;
  rack_loss.domain_index = 1;
  fabric_plan.add(rack_loss);
  schedule.injectors.push_back({"fabric", 0x60a1, std::move(fabric_plan)});
  fault::Episode restart;
  restart.kind = fault::FaultKind::kHostRestart;
  restart.start = 0.55;
  restart.end = 0.85;
  fault::FaultPlan churn;
  churn.add(restart);
  schedule.injectors.push_back({"h2", 26, std::move(churn)});

  overlay::GossipSimConfig cfg;
  cfg.racks = 4;
  cfg.hosts_per_rack = 4;
  cfg.spines = 2;
  cfg.fault_horizon_sec = 1.2;
  cfg.storm_broadcasts = 16;
  const overlay::GossipSimResult r = overlay::run_gossip_sim(schedule, cfg);

  result.set_metric("pass", r.pass ? 1.0 : 0.0);
  result.set_metric("violations", static_cast<double>(r.violations.size()));
  result.set_metric("delivery_completeness", r.delivery_completeness);
  result.set_metric("relay_redundancy", r.relay_redundancy);
  result.set_metric("deliveries", static_cast<double>(r.deliveries));
  result.set_metric("duplicates", static_cast<double>(r.duplicates));
  result.set_metric("grafts", static_cast<double>(r.grafts));
  result.set_metric("prunes", static_cast<double>(r.prunes));
  result.set_metric("repairs_done", static_cast<double>(r.repairs_done));
  result.set_metric("repair_p99_sec", r.repair_p99_sec);
  result.set_metric("suppressed_ticks",
                    static_cast<double>(r.suppressed_ticks));
  return result;
}

/// Tail-at-scale SLO gate: a reduced tail_fanout sweep (both scheduling
/// modes, N in {1, 4, 16}) whose p99/p999 per cell is pinned. The whole
/// workload is a pure function of the seed, so any drift here is a
/// behavior change in the RPC fan-out path, the fabric, the traffic
/// model, or the histogram — the tolerance only absorbs float noise.
inline obs::BenchResult gate_tail_rpc() {
  rpc::TailSweepConfig sweep;
  sweep.fanouts = {1, 4, 16};
  sweep.base.requests = 120;
  sweep.base.rate_per_sec = 200.0;
  sweep.base.seed = 1;
  obs::BenchResult result = rpc::run_tail_sweep(sweep, /*jobs=*/1);
  result.name = "gate_tail_rpc";
  result.tolerance = 0.05;
  return result;
}

/// Wheel-vs-scan cost gate: a deterministic retry-churn workload (the
/// arm/cancel/fire mix a busy host's TCP/RPC/overlay surfaces generate)
/// driven through the TimerWheel, next to the analytic cost of the
/// legacy per-pass scan it replaced (every pass visits every live
/// timer to re-derive the minimum deadline). The acceptance line is
/// `scan_to_wheel_ratio` — how many deadline visits the wheel turns
/// into O(1) bookkeeping — which must not sink; every count is an exact
/// function of the seed, so the tolerance only absorbs float noise.
inline obs::BenchResult gate_timer_wheel() {
  obs::BenchResult result;
  result.name = "gate_timer_wheel";
  result.tolerance = 0.05;

  time::TimerWheel wheel;
  Rng rng(0x7ee1);
  constexpr std::size_t kConns = 1024;
  constexpr int kPasses = 2000;  // 2 simulated seconds of 1 ms passes
  double t = 0.0;
  std::vector<time::TimerId> ids(kConns, time::kNoTimer);
  const auto rearm = [&](std::size_t i) {
    ids[i] = wheel.arm(t + rng.uniform(0.01, 0.4),
                       time::TimerClass::kLiveness, [] {});
  };
  for (std::size_t i = 0; i < kConns; ++i) rearm(i);
  std::uint64_t scan_visits = 0;
  for (int pass = 0; pass < kPasses; ++pass) {
    t += 1e-3;
    wheel.advance_to(t);
    // An eighth of the connections get "ACKed" each pass: cancel the
    // rtx timer and arm the next one — the dominant op mix in steady
    // state. Fired timers (timeouts) re-arm their backoff.
    for (std::size_t k = 0; k < kConns / 8; ++k) {
      const std::size_t i = static_cast<std::size_t>(rng.bounded(kConns));
      (void)wheel.cancel(ids[i]);
      rearm(i);
    }
    for (std::size_t i = 0; i < kConns; ++i)
      if (!wheel.armed(ids[i])) rearm(i);
    scan_visits += kConns;  // the legacy scan visits every PCB per pass
  }
  const time::WheelStats& ws = wheel.stats();
  const double wheel_ops = static_cast<double>(ws.arms + ws.cancels +
                                               ws.fires + ws.cascades);
  result.set_metric("arms", static_cast<double>(ws.arms));
  result.set_metric("fires", static_cast<double>(ws.fires));
  result.set_metric("cancels", static_cast<double>(ws.cancels));
  result.set_metric("cascades", static_cast<double>(ws.cascades));
  result.set_metric("max_armed", static_cast<double>(ws.max_armed));
  result.set_metric("scan_visits", static_cast<double>(scan_visits));
  result.set_metric("scan_to_wheel_ratio",
                    static_cast<double>(scan_visits) / wheel_ops);
  return result;
}

/// The batching-vs-pipelining separation (fig_pipeline, ROADMAP item 2),
/// pinned on a short deterministic trace near LDLP saturation: LDLP pays
/// i-misses per batch (the four stage bodies overflow one 8 KB i-cache)
/// where the pipelined stages keep their code resident, and the pipeline
/// pays around twice the d-misses at this load (the same zero-copy
/// message buffer is pulled into four private d-caches). Both
/// separations must hold; the full load sweep (and the hybrid's win past
/// the pipeline's saturation point) lives in fig_pipeline.
inline obs::BenchResult gate_pipeline() {
  obs::BenchResult result;
  result.name = "gate_pipeline";
  result.tolerance = 0.05;

  traffic::SelfSimilarConfig tc;
  tc.mean_rate_per_sec = 18000.0;
  tc.duration_sec = 0.5;
  const auto sizes = traffic::internet552_sizes();
  const auto trace = traffic::generate_self_similar_trace(tc, *sizes, 0x919e);

  const pipe::RxMode modes[] = {pipe::RxMode::kLdlp, pipe::RxMode::kPipelined,
                                pipe::RxMode::kHybrid};
  pipe::StageEngineResult runs[3];
  for (std::size_t mi = 0; mi < 3; ++mi) {
    pipe::StageEngineConfig cfg;
    cfg.mode = modes[mi];
    cfg.batch_limit = 8;
    runs[mi] = pipe::StageEngine(cfg).run(trace);
    const std::string key = pipe::rx_mode_name(modes[mi]);
    result.set_metric("i_miss_per_msg." + key, runs[mi].i_miss_per_msg);
    result.set_metric("d_miss_per_msg." + key, runs[mi].d_miss_per_msg);
    result.set_metric("p99_latency_usec." + key,
                      runs[mi].p99_latency_sec * 1e6);
    result.set_metric("mean_batch." + key, runs[mi].mean_batch);
  }
  // The two-sided separation the figure's argument turns on.
  result.set_metric("i_miss_ldlp_minus_pipelined",
                    runs[0].i_miss_per_msg - runs[1].i_miss_per_msg);
  result.set_metric("d_miss_pipelined_over_ldlp",
                    runs[1].d_miss_per_msg / runs[0].d_miss_per_msg);
  return result;
}

struct GateCase {
  const char* name;
  obs::BenchResult (*run)();
};

inline std::vector<GateCase> suite() {
  return {
      {"gate_blocking", &gate_blocking},
      {"gate_working_set", &gate_working_set},
      {"gate_checksum", &gate_checksum},
      {"gate_synth", &gate_synth},
      {"gate_shard_sweep", &gate_shard_sweep},
      {"gate_fleet_soak", &gate_fleet_soak},
      {"gate_gossip_soak", &gate_gossip_soak},
      {"gate_tail_rpc", &gate_tail_rpc},
      {"gate_timer_wheel", &gate_timer_wheel},
      {"gate_pipeline", &gate_pipeline},
  };
}

/// Gate one case against `baseline_dir`. Returns true on pass; on any
/// failure (missing baseline, drift) prints a report to stderr.
inline bool gate_case(const GateCase& gate, const std::string& baseline_dir) {
  const obs::BenchResult current = gate.run();
  std::string error;
  const auto baseline = obs::BenchResult::load_file(
      baseline_dir + "/" + current.file_name(), &error);
  if (!baseline.has_value()) {
    std::fprintf(stderr, "%s: no baseline (%s) — run `bench_regress --update`\n",
                 gate.name, error.c_str());
    return false;
  }
  const obs::CompareReport report = obs::compare_results(*baseline, current);
  if (!report.pass)
    std::fprintf(stderr, "%s: REGRESSION\n%s", gate.name,
                 report.describe().c_str());
  return report.pass;
}

}  // namespace ldlp::regress
