// Ablation E: memory-hierarchy features the paper's model omits.
//
// The paper's synthetic machine charges a flat 20-cycle stall per primary
// miss. Real 1995 hardware had a board-level L2 (the DEC 3000/400's
// 512 KB) and a TLB whose PAL-code refills the paper explicitly could not
// trace. This sweep re-runs the Figure 6 comparison at a moderate and a
// heavy load under four machine variants to show the conclusions are
// robust to the model's simplifications:
//
//   flat      — the paper's machine (baseline);
//   +L2       — primary misses that hit a 512 KB unified L2 cost 6 cycles;
//   +TLB      — 32-entry TLB, 30-cycle refills;
//   +L2+TLB   — both.
//
// With an L2, the absolute miss cost shrinks (the protocol working set
// fits in 512 KB easily) but LDLP's relative advantage persists: the
// batched schedule still touches ~1/batch as many primary lines.
#include <cstdio>
#include <string>

#include "bench_util.hpp"
#include "synth/sweep.hpp"

int main(int argc, char** argv) {
  using namespace ldlp;
  benchutil::Flags flags(argc, argv);
  synth::SweepOptions opt;
  opt.runs = static_cast<std::uint32_t>(flags.u64("runs", 15));
  opt.seed = flags.u64("seed", 0x5eed);

  struct Variant {
    const char* name;
    bool l2;
    bool tlb;
  };
  const Variant variants[] = {
      {"flat (paper)", false, false},
      {"+L2", true, false},
      {"+TLB", false, true},
      {"+L2+TLB", true, true},
  };
  benchutil::BenchReport report("ablation_memory_model", flags);
  report.config_u64("runs", opt.runs);
  report.config_u64("seed", opt.seed);
  const char* variant_key[] = {"flat", "l2", "tlb", "l2_tlb"};

  benchutil::heading("Ablation: memory-hierarchy model variants");
  std::printf("%-14s | %21s | %21s\n", "machine", "3000 msg/s conv/LDLP",
              "8000 msg/s conv/LDLP");
  for (std::size_t v = 0; v < 4; ++v) {
    const Variant& variant = variants[v];
    std::string row[2];
    int slot = 0;
    for (const double rate : {3000.0, 8000.0}) {
      double lat[2];
      int m = 0;
      for (const auto mode :
           {synth::SynthMode::kConventional, synth::SynthMode::kLdlp}) {
        synth::SynthConfig cfg;
        cfg.mode = mode;
        if (variant.l2) cfg.cpu.memory.l2 = sim::CacheConfig{512 * 1024, 32, 1};
        cfg.cpu.memory.tlb_enabled = variant.tlb;
        const auto points = synth::sweep_poisson_rates(cfg, {rate}, opt);
        lat[m++] = points.front().mean.mean_latency_sec;
      }
      const std::string key = std::string(variant_key[v]) + "@" +
                              std::to_string(static_cast<int>(rate));
      report.metric("conv.mean_latency_sec." + key, lat[0]);
      report.metric("ldlp.mean_latency_sec." + key, lat[1]);
      row[slot++] = benchutil::fmt_latency(lat[0]) + " /" +
                    benchutil::fmt_latency(lat[1]);
    }
    std::printf("%-14s | %21s | %21s\n", variant.name, row[0].c_str(),
                row[1].c_str());
  }
  report.write();
  std::printf(
      "\nThe L2 softens the conventional collapse (misses cost 6 cycles,\n"
      "not 20) but does not remove it; the TLB adds a near-constant tax.\n"
      "LDLP wins under every variant — the paper's conclusion does not\n"
      "hinge on the flat-penalty simplification.\n");
  return 0;
}
