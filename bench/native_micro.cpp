// Native microbenchmarks (google-benchmark): wall-clock costs of the real
// library primitives on the host machine. These complement the simulated
// figures — e.g. the warm-cache half of Figure 8 is directly measurable
// here, and the signalling benchmarks check the paper's stated goal of
// 10 000 setup/teardown pairs per second at ~100 us per message.
#include <benchmark/benchmark.h>

#include <cstring>
#include <deque>
#include <functional>
#include <limits>
#include <vector>

#include "buf/packet.hpp"
#include "buf/packet_queue.hpp"
#include "pipe/pipeline.hpp"
#include "signal/node.hpp"
#include "stack/host.hpp"
#include "time/timer_wheel.hpp"
#include "wire/checksum.hpp"
#include "wire/ipv4.hpp"
#include "wire/tcp.hpp"

namespace {

using namespace ldlp;

void BM_CksumSimple(benchmark::State& state) {
  std::vector<std::uint8_t> data(state.range(0), 0xa5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::cksum_simple(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CksumSimple)->Arg(64)->Arg(552)->Arg(1460);

void BM_CksumUnrolled(benchmark::State& state) {
  std::vector<std::uint8_t> data(state.range(0), 0xa5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::cksum_unrolled(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CksumUnrolled)->Arg(64)->Arg(552)->Arg(1460);

void BM_CksumWide(benchmark::State& state) {
  std::vector<std::uint8_t> data(state.range(0), 0xa5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::cksum_wide(data));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_CksumWide)->Arg(64)->Arg(552)->Arg(1460);

void BM_MbufPrependAdj(benchmark::State& state) {
  buf::MbufPool pool(256, 64);
  std::vector<std::uint8_t> payload(552, 0x42);
  for (auto _ : state) {
    buf::Packet pkt = buf::Packet::from_bytes(pool, payload);
    benchmark::DoNotOptimize(pkt.prepend(20));
    benchmark::DoNotOptimize(pkt.prepend(14));
    pkt.adj(34);
    benchmark::DoNotOptimize(pkt.length());
  }
}
BENCHMARK(BM_MbufPrependAdj);

void BM_Ipv4ParseSerialize(benchmark::State& state) {
  wire::Ipv4Header header;
  header.total_len = 572;
  header.protocol = 6;
  header.src = wire::ip_from_parts(10, 0, 0, 1);
  header.dst = wire::ip_from_parts(10, 0, 0, 2);
  std::uint8_t bytes[20];
  wire::write_ipv4(header, bytes);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::parse_ipv4(bytes));
  }
}
BENCHMARK(BM_Ipv4ParseSerialize);

void BM_TcpParse(benchmark::State& state) {
  wire::TcpHeader header;
  header.src_port = 1234;
  header.dst_port = 80;
  header.mss = 1460;
  std::uint8_t bytes[24];
  wire::write_tcp(header, bytes);
  for (auto _ : state) {
    benchmark::DoNotOptimize(wire::parse_tcp(bytes));
  }
}
BENCHMARK(BM_TcpParse);

/// The per-layer input queue, before and after the intrusive rewrite.
/// "Deque" is the old implementation (std::deque<Packet> — one node
/// allocation plus a Packet move per enqueue); "Intrusive" is the current
/// PacketQueue (BSD m_nextpkt links threaded through the mbuf itself, no
/// allocator traffic). One iteration pushes and pops a burst of 16
/// packets, the receive-side pattern an LDLP batch drains.
constexpr int kQueueBurst = 16;

void BM_PacketQueueDeque(benchmark::State& state) {
  buf::MbufPool pool(256, 64);
  std::vector<std::uint8_t> payload(128, 0x42);
  std::deque<buf::Packet> queue;
  for (auto _ : state) {
    for (int i = 0; i < kQueueBurst; ++i)
      queue.push_back(buf::Packet::from_bytes(pool, payload));
    while (!queue.empty()) {
      benchmark::DoNotOptimize(queue.front().length());
      queue.pop_front();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kQueueBurst);
}
BENCHMARK(BM_PacketQueueDeque);

void BM_PacketQueueIntrusive(benchmark::State& state) {
  buf::MbufPool pool(256, 64);
  std::vector<std::uint8_t> payload(128, 0x42);
  buf::PacketQueue queue;
  for (auto _ : state) {
    for (int i = 0; i < kQueueBurst; ++i)
      (void)queue.push(buf::Packet::from_bytes(pool, payload));
    while (!queue.empty()) {
      buf::Packet pkt = queue.pop();
      benchmark::DoNotOptimize(pkt.length());
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kQueueBurst);
}
BENCHMARK(BM_PacketQueueIntrusive);

/// One TCP data segment carried receive-side through the whole real stack
/// (device pull -> eth -> ip -> tcp fast path -> socket), per scheduling
/// mode.
void tcp_segment_walk(benchmark::State& state, core::SchedMode mode) {
  stack::HostConfig ca;
  ca.name = "tx";
  ca.mac = {2, 0, 0, 0, 0, 1};
  ca.ip = wire::ip_from_parts(10, 0, 0, 1);
  stack::HostConfig cb;
  cb.name = "rx";
  cb.mac = {2, 0, 0, 0, 0, 2};
  cb.ip = wire::ip_from_parts(10, 0, 0, 2);
  cb.mode = mode;
  stack::Host tx(ca);
  stack::Host rx(cb);
  stack::NetDevice::connect(tx.device(), rx.device());

  (void)rx.tcp().listen(80);
  stack::PcbId accepted = stack::kNoPcb;
  rx.tcp().set_accept_hook([&](stack::PcbId id) { accepted = id; });
  const stack::PcbId conn = tx.tcp().connect(cb.ip, 80);
  for (int i = 0; i < 8; ++i) {
    tx.pump();
    rx.pump();
  }
  if (tx.tcp().state(conn) != stack::TcpState::kEstablished) {
    state.SkipWithError("handshake failed");
    return;
  }

  std::vector<std::uint8_t> payload(512, 0x7e);
  std::vector<std::uint8_t> sink(payload.size());
  const stack::SocketId socket = rx.tcp().socket_of(accepted);
  for (auto _ : state) {
    if (!tx.tcp().send(conn, payload)) state.SkipWithError("send failed");
    rx.pump();
    benchmark::DoNotOptimize(rx.sockets().read(socket, sink));
    tx.pump();  // absorb the ACK
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(payload.size()));
}

void BM_TcpSegmentConventional(benchmark::State& state) {
  tcp_segment_walk(state, core::SchedMode::kConventional);
}
BENCHMARK(BM_TcpSegmentConventional);

void BM_TcpSegmentLdlp(benchmark::State& state) {
  tcp_segment_walk(state, core::SchedMode::kLdlp);
}
BENCHMARK(BM_TcpSegmentLdlp);

/// The staged receive path (parse -> steer -> proto -> socket) on real
/// frames: one iteration is a 16-datagram UDP burst carried tx -> wire ->
/// StagedRx -> socket under one scheduling mode. `state.range(0)` toggles
/// PipelineConfig::prefetch, so each mode reports the next-frame-header
/// prefetch hint's effect on the native stage loop.
void staged_rx_burst(benchmark::State& state, pipe::RxMode mode) {
  stack::HostConfig ca;
  ca.name = "tx";
  ca.mac = {2, 0, 0, 0, 0, 1};
  ca.ip = wire::ip_from_parts(10, 0, 0, 1);
  stack::HostConfig cb;
  cb.name = "rx";
  cb.mac = {2, 0, 0, 0, 0, 2};
  cb.ip = wire::ip_from_parts(10, 0, 0, 2);
  cb.mode = core::SchedMode::kLdlp;  // StagedRx schedules the graph itself.
  stack::Host tx(ca);
  stack::Host rx(cb);
  stack::NetDevice::connect(tx.device(), rx.device());

  pipe::PipelineConfig pc;
  pc.mode = mode;
  pc.lanes = 2;
  pc.batch_limit = 8;
  pc.prefetch = state.range(0) != 0;
  pipe::StagedRx staged(rx, pc);

  const stack::SocketId sock = rx.sockets().create(stack::SocketKind::kDatagram);
  if (!rx.udp().bind(9000, sock)) {
    state.SkipWithError("bind failed");
    return;
  }
  std::vector<std::uint8_t> payload(256, 0x7e);
  // First send parks behind ARP; settle the request/reply exchange.
  tx.udp().send(9001, cb.ip, 9000, payload);
  for (int i = 0; i < 6; ++i) {
    tx.pump();
    (void)staged.pump();
  }
  while (rx.sockets().read_datagram(sock).has_value()) {
  }

  for (auto _ : state) {
    for (int i = 0; i < kQueueBurst; ++i)
      tx.udp().send(9001, cb.ip, 9000, payload);
    tx.pump();
    benchmark::DoNotOptimize(staged.pump());
    while (rx.sockets().read_datagram(sock).has_value()) {
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          kQueueBurst);
}

void BM_StagedRxLdlp(benchmark::State& state) {
  staged_rx_burst(state, pipe::RxMode::kLdlp);
}
BENCHMARK(BM_StagedRxLdlp)->Arg(0)->Arg(1);

void BM_StagedRxPipelined(benchmark::State& state) {
  staged_rx_burst(state, pipe::RxMode::kPipelined);
}
BENCHMARK(BM_StagedRxPipelined)->Arg(0)->Arg(1);

void BM_StagedRxHybrid(benchmark::State& state) {
  staged_rx_burst(state, pipe::RxMode::kHybrid);
}
BENCHMARK(BM_StagedRxHybrid)->Arg(0)->Arg(1);

/// TCP connection churn: the paper counts "TCP's connection control
/// messages" among its small-message workloads. One full connect/close
/// cycle is six small segments (SYN, SYN|ACK, ACK, FIN|ACK, FIN|ACK, ACK)
/// plus timer work — all control, no payload.
void BM_TcpConnectClose(benchmark::State& state) {
  stack::HostConfig ca;
  ca.name = "dialer";
  ca.mac = {2, 0, 0, 0, 0, 1};
  ca.ip = wire::ip_from_parts(10, 0, 0, 1);
  stack::HostConfig cb;
  cb.name = "acceptor";
  cb.mac = {2, 0, 0, 0, 0, 2};
  cb.ip = wire::ip_from_parts(10, 0, 0, 2);
  // Short TIME_WAIT so PCB slots recycle inside the benchmark loop.
  ca.tcp.time_wait_sec = 0.001;
  cb.tcp.time_wait_sec = 0.001;
  stack::Host dialer(ca);
  stack::Host acceptor(cb);
  stack::NetDevice::connect(dialer.device(), acceptor.device());
  (void)acceptor.tcp().listen(9);
  stack::PcbId accepted = stack::kNoPcb;
  acceptor.tcp().set_accept_hook([&](stack::PcbId id) { accepted = id; });

  auto settle = [&] {
    for (int i = 0; i < 6; ++i) {
      dialer.pump();
      acceptor.pump();
    }
  };

  for (auto _ : state) {
    const stack::PcbId conn = dialer.tcp().connect(cb.ip, 9);
    settle();
    if (dialer.tcp().state(conn) != stack::TcpState::kEstablished) {
      state.SkipWithError("handshake failed");
      return;
    }
    dialer.tcp().close(conn);
    settle();
    acceptor.tcp().close(accepted);
    settle();
    dialer.advance(0.01);  // expire TIME_WAIT
    acceptor.advance(0.01);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TcpConnectClose);

/// A full signalling setup/teardown pair between two nodes — the paper's
/// target is 10 000 of these per second (<= 100 us per pair of messages on
/// each side).
void BM_SignallingSetupTeardown(benchmark::State& state) {
  signal::SignallingNode user("user");
  signal::SignallingNode network("switch");
  signal::SignallingNode::connect(user, network);
  const std::uint8_t called[] = {9, 1, 1};
  const std::uint8_t calling[] = {5, 5, 5};
  std::uint32_t active_ref = 0;
  user.calls().set_on_active(
      [&](const signal::Call& call) { active_ref = call.call_ref; });

  for (auto _ : state) {
    const std::uint32_t ref = user.calls().originate(
        called, calling, signal::TrafficDescriptor{353207, 176603});
    network.pump();
    user.pump();
    user.calls().release(ref);
    network.pump();
    user.pump();
  }
  benchmark::DoNotOptimize(active_ref);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_SignallingSetupTeardown);

/// Per-pass timer maintenance: hierarchical wheel vs the legacy scan.
/// One iteration is one 1 ms scheduler pass over a host keeping `n`
/// retry timers live. The wheel advances in O(timers actually due) — an
/// idle pass touches nothing — where the scan the wheel replaced visits
/// every deadline every pass to re-derive the minimum. Fired timers
/// re-arm themselves ~50 ms out, the retransmit-ladder steady state.
void BM_TimerWheelPass(benchmark::State& state) {
  time::TimerWheel wheel;
  const int n = static_cast<int>(state.range(0));
  double t = 0.0;
  std::vector<time::TimerId> ids(static_cast<std::size_t>(n));
  std::function<void(int)> arm_slot = [&](int i) {
    ids[static_cast<std::size_t>(i)] =
        wheel.arm(t + 0.05 + 0.001 * i, time::TimerClass::kLiveness,
                  [&arm_slot, i] { arm_slot(i); });
  };
  for (int i = 0; i < n; ++i) arm_slot(i);
  for (auto _ : state) {
    t += 0.001;
    wheel.advance_to(t);
  }
  benchmark::DoNotOptimize(wheel.next_deadline());
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TimerWheelPass)->Arg(64)->Arg(512)->Arg(4096);

void BM_TimerScanPass(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  double t = 0.0;
  std::vector<double> deadline(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i)
    deadline[static_cast<std::size_t>(i)] = t + 0.05 + 0.001 * i;
  for (auto _ : state) {
    t += 0.001;
    double next = std::numeric_limits<double>::infinity();
    for (double& d : deadline) {
      if (d <= t) d = t + 0.05;  // "fire": re-arm the ladder
      if (d < next) next = d;
    }
    benchmark::DoNotOptimize(next);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TimerScanPass)->Arg(64)->Arg(512)->Arg(4096);

void BM_Q93bEncodeDecode(benchmark::State& state) {
  const std::uint8_t called[] = {9, 1, 1};
  const std::uint8_t calling[] = {5, 5, 5};
  const auto msg = signal::make_setup(
      7, called, calling, signal::TrafficDescriptor{353207, 176603});
  for (auto _ : state) {
    const auto bytes = signal::encode(msg);
    benchmark::DoNotOptimize(signal::decode(bytes));
  }
}
BENCHMARK(BM_Q93bEncodeDecode);

}  // namespace

BENCHMARK_MAIN();
