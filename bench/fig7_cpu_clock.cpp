// Figure 7: latency as a function of CPU clock speed, driven by a
// self-similar Ethernet arrival trace (stand-in for the 1989 Bellcore
// traces; see DESIGN.md section 2). The same trace is replayed at every
// clock speed from 10 to 80 MHz; below the conventional stack's break-even
// clock the LDLP version batches to maintain throughput.
#include <cstdio>
#include <cstring>
#include <vector>

#include "bench_util.hpp"
#include "synth/sweep.hpp"
#include "traffic/hurst.hpp"
#include "traffic/self_similar.hpp"
#include "traffic/trace_io.hpp"

int main(int argc, char** argv) {
  using namespace ldlp;
  benchutil::Flags flags(argc, argv);
  synth::SweepOptions opt;
  opt.runs = static_cast<std::uint32_t>(flags.u64("runs", 3));
  opt.seed = flags.u64("seed", 0x5eed);
  const double duration = flags.f64("duration", 100.0);
  const double mean_rate = flags.f64("rate", 1200.0);
  benchutil::BenchReport report("fig7_cpu_clock", flags);
  report.config_u64("runs", opt.runs);
  report.config_u64("seed", opt.seed);
  report.config("duration", std::to_string(duration));
  report.config("rate", std::to_string(mean_rate));

  // --save-trace=/path and --load-trace=/path let a generated trace be
  // pinned across machines/runs, the way the paper replays one capture.
  std::vector<traffic::PacketArrival> trace;
  const auto load_path = flags.u64("dummy", 0);  // placeholder keeps Flags simple
  (void)load_path;
  if (const char* arg = [&]() -> const char* {
        for (int i = 1; i < argc; ++i) {
          if (std::strncmp(argv[i], "--load-trace=", 13) == 0)
            return argv[i] + 13;
        }
        return nullptr;
      }()) {
    trace = traffic::load_trace(arg);
    if (trace.empty()) {
      std::fprintf(stderr, "could not load trace from %s\n", arg);
      return 1;
    }
  } else {
    traffic::SelfSimilarConfig trace_cfg;
    trace_cfg.mean_rate_per_sec = mean_rate;
    trace_cfg.duration_sec = duration;
    auto sizes = traffic::ethernet1989_sizes();
    trace = traffic::generate_self_similar_trace(trace_cfg, *sizes, opt.seed);
  }
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--save-trace=", 13) == 0) {
      if (!traffic::save_trace(argv[i] + 13, trace))
        std::fprintf(stderr, "warning: could not save trace\n");
    }
  }
  const double hurst = traffic::estimate_hurst_variance_time(trace);

  std::vector<double> clocks;
  for (double mhz = 10; mhz <= 80; mhz += 10) clocks.push_back(mhz * 1e6);

  synth::SynthConfig conv;
  conv.mode = synth::SynthMode::kConventional;
  synth::SynthConfig ldlp = conv;
  ldlp.mode = synth::SynthMode::kLdlp;

  const auto pc = synth::sweep_cpu_clock(conv, trace, clocks, opt);
  const auto pl = synth::sweep_cpu_clock(ldlp, trace, clocks, opt);

  benchutil::heading("Figure 7: latency vs CPU clock (Ethernet-like trace)");
  std::printf(
      "(trace: %zu arrivals over %.0f s, mean %.0f msgs/s, estimated "
      "Hurst %.2f;\n %u runs per point with random layouts)\n\n",
      trace.size(), trace.empty() ? 0.0 : trace.back().time,
      trace.empty() ? 0.0
                    : static_cast<double>(trace.size()) / trace.back().time,
      hurst, opt.runs);
  std::printf("%7s | %11s %7s | %11s %7s | %6s\n", "MHz", "conv mean",
              "drop%", "LDLP mean", "drop%", "batch");
  for (std::size_t i = 0; i < clocks.size(); ++i) {
    const auto& c = pc[i].mean;
    const auto& l = pl[i].mean;
    std::printf("%7.0f | %11s %6.1f%% | %11s %6.1f%% | %6.2f\n",
                clocks[i] / 1e6,
                benchutil::fmt_latency(c.mean_latency_sec).c_str(),
                c.offered != 0
                    ? 100.0 * static_cast<double>(c.dropped) /
                          static_cast<double>(c.offered)
                    : 0.0,
                benchutil::fmt_latency(l.mean_latency_sec).c_str(),
                l.offered != 0
                    ? 100.0 * static_cast<double>(l.dropped) /
                          static_cast<double>(l.offered)
                    : 0.0,
                l.mean_batch);
    const std::string mhz = std::to_string(static_cast<int>(clocks[i] / 1e6));
    report.metric("conv.mean_latency_sec@" + mhz + "mhz", c.mean_latency_sec);
    report.metric("ldlp.mean_latency_sec@" + mhz + "mhz", l.mean_latency_sec);
    report.metric("ldlp.mean_batch@" + mhz + "mhz", l.mean_batch);
  }
  report.metric("trace.arrivals", static_cast<double>(trace.size()));
  report.metric("trace.hurst", hurst);
  std::printf(
      "\nShape check vs the paper: latency rises as the clock falls; below\n"
      "the conventional stack's break-even clock (paper: ~40 MHz for its\n"
      "trace) the LDLP version batches packets to maintain throughput,\n"
      "keeping latency bounded well below the conventional curve.\n");
  report.write();
  return 0;
}
