// Tail-at-scale RPC fan-out over the fleet fabric.
//
// A client host fans each small-message request to N server hosts and the
// request completes when the *slowest* reply lands — so the user-visible
// latency is the max of N samples and the figure that matters is p99/p999,
// not the mean the source paper optimizes. This sweep runs the workload at
// N in {1, 4, 16, 64} under both scheduling modes and prints mean vs tail
// side by side: where LDLP layer-blocked batching pays for its queueing
// delay at the tail, and where amortized per-message cost wins it back.
//
// Arrivals are open-loop self-similar (ldlp::traffic ON/OFF Pareto
// superposition; --poisson falls back to memoryless), transport is RPC
// over UDP with client-owned retransmit timers (--transport=tcp switches
// to RFC 1831 record framing over persistent connections). Every number
// is a pure function of the flags; --jobs=N runs the (mode, N) cells on a
// par::WorkerPool with cell-indexed result slots, so the report and the
// BENCH_tail_fanout.json emission are bit-identical for every N.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "rpc/fanout.hpp"

int main(int argc, char** argv) {
  using namespace ldlp;
  benchutil::Flags flags(argc, argv);

  rpc::TailSweepConfig sweep;
  sweep.base.requests = flags.u64("requests", 400);
  sweep.base.rate_per_sec = flags.f64("rate", 200.0);
  sweep.base.seed = flags.u64("seed", 1);
  sweep.base.self_similar = !flags.flag("poisson");
  const char* transport = flags.str("transport", "udp");
  if (std::strcmp(transport, "tcp") == 0)
    sweep.base.fanout_cfg.transport = rpc::FanoutTransport::kTcp;
  const std::uint64_t jobs = flags.u64("jobs", 1);

  const obs::BenchResult result =
      rpc::run_tail_sweep(sweep, static_cast<std::size_t>(jobs));
  const auto m = [&result](const std::string& key) {
    return result.metric(key).value_or(0.0);
  };

  benchutil::heading(
      "Tail-at-scale fan-out: response time = max of N RPC replies");
  std::printf("  transport=%s  requests=%zu  rate=%.0f/s  arrivals=%s  "
              "seed=%llu\n",
              rpc::transport_name(sweep.base.fanout_cfg.transport),
              sweep.base.requests, sweep.base.rate_per_sec,
              sweep.base.self_similar ? "self-similar" : "poisson",
              static_cast<unsigned long long>(sweep.base.seed));
  std::printf("\n  %4s %5s | %11s %11s %11s %11s | %6s\n", "mode", "N",
              "mean", "p99", "p999", "p9999", "rexmt");
  for (const core::SchedMode mode : sweep.modes) {
    const char* tag = mode == core::SchedMode::kLdlp ? "ldlp" : "conv";
    for (const std::size_t n : sweep.fanouts) {
      const std::string key = std::string(tag) + ".n" + std::to_string(n);
      std::printf("  %4s %5zu | %s %s %s %s | %6.0f\n", tag, n,
                  benchutil::fmt_latency(m(key + ".mean_sec"))
                      .c_str(),
                  benchutil::fmt_latency(m(key + ".p99_sec"))
                      .c_str(),
                  benchutil::fmt_latency(m(key + ".p999_sec"))
                      .c_str(),
                  benchutil::fmt_latency(m(key + ".p9999_sec"))
                      .c_str(),
                  m(key + ".retransmits"));
    }
  }

  benchutil::heading("LDLP vs per-message processing, tail amplification");
  std::printf("  %5s | %12s %12s | %12s %12s\n", "N", "mean ratio",
              "p99 ratio", "p999 ratio", "p9999 ratio");
  for (const std::size_t n : sweep.fanouts) {
    const std::string ln = "ldlp.n" + std::to_string(n);
    const std::string cn = "conv.n" + std::to_string(n);
    const auto ratio = [&](const char* stat) {
      const double conv = m(cn + "." + stat);
      return conv > 0.0 ? m(ln + "." + stat) / conv : 0.0;
    };
    std::printf("  %5zu | %12.3f %12.3f | %12.3f %12.3f\n", n,
                ratio("mean_sec"), ratio("p99_sec"), ratio("p999_sec"),
                ratio("p9999_sec"));
  }

  if (!flags.flag("no_json")) {
    const char* dir = flags.str("out_dir", ".");
    if (!result.write_file(dir)) {
      std::fprintf(stderr, "warning: failed to write %s/%s\n", dir,
                   result.file_name().c_str());
      return 1;
    }
    std::printf("\nwrote %s/%s\n", dir, result.file_name().c_str());
  }
  return 0;
}
