// Extension figure: batching vs pipelining vs both (ROADMAP item 2).
//
// The paper's LDLP runs the whole receive path on one core and batches
// messages per layer so the layer code is fetched once per batch. FlexTOE
// makes the opposite bet: split the path into micro-stages, give each
// stage its own core (and so its own private primary caches), and
// pipeline messages through with per-stage hand-off. This figure runs the
// staged receive path (parse -> steer -> proto -> socket) under all three
// schedules on the simulated paper machine, across offered load from a
// self-similar arrival process, and reports the metrics the argument
// turns on: i-miss/msg, d-miss/msg, p50/p99 latency, achieved batch.
//
// What it shows (and gate_pipeline pins):
//  * i-miss/msg — the staged path's four code bodies (~16.5 KB) cannot
//    share one 8 KB i-cache, so LDLP refetches them every batch; batching
//    divides that cost by the achieved batch as load grows. Pipelined
//    stages keep their code resident and sit near zero at every load.
//  * d-miss/msg — the zero-copy hand-off means the same message buffer is
//    touched by every stage: one d-cache under LDLP (it stays resident
//    across stages within a batch), four private d-caches when pipelined
//    (≈4x the message-line fetches). Batching's win, mirrored.
//  * latency — one LDLP core saturates first (it does all four stages'
//    work); the pipeline spreads it over four cores at the price of
//    per-message activations, which the hybrid amortises back.
//
// --jobs=N fans the mode x load grid over a par::WorkerPool into
// cell-indexed slots; output is bit-identical for every N.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "par/worker_pool.hpp"
#include "pipe/stage_engine.hpp"
#include "traffic/self_similar.hpp"
#include "traffic/size_models.hpp"

int main(int argc, char** argv) {
  using namespace ldlp;
  benchutil::Flags flags(argc, argv);
  const std::uint64_t seed = flags.u64("seed", 0x5eed);
  const std::uint64_t jobs = flags.u64("jobs", 1);
  const double duration = static_cast<double>(flags.u64("duration_sec", 2));
  const std::uint64_t batch = flags.u64("batch", 8);

  benchutil::BenchReport report("fig_pipeline", flags);
  report.config_u64("seed", seed);
  report.config_u64("batch", batch);

  // The last point sits past the single LDLP core's saturation (~21 k/s)
  // and near the pipeline's bottleneck stage, where the hybrid's batched
  // activations buy back the headroom per-message hand-off spends.
  const std::vector<double> loads = {4000.0, 12000.0, 20000.0, 48000.0};
  const pipe::RxMode modes[] = {pipe::RxMode::kLdlp, pipe::RxMode::kPipelined,
                                pipe::RxMode::kHybrid};

  // One self-similar trace per load point, shared by the three modes so
  // they answer for the identical arrival sample.
  std::vector<std::vector<traffic::PacketArrival>> traces(loads.size());
  for (std::size_t li = 0; li < loads.size(); ++li) {
    traffic::SelfSimilarConfig tc;
    tc.mean_rate_per_sec = loads[li];
    tc.duration_sec = duration;
    auto sizes = traffic::internet552_sizes();
    traces[li] = traffic::generate_self_similar_trace(tc, *sizes, seed + li);
  }

  std::vector<pipe::StageEngineResult> results(3 * loads.size());
  par::WorkerPool pool(static_cast<std::size_t>(jobs));
  pool.run(results.size(), [&](std::size_t cell, par::WorkerContext&) {
    const std::size_t mi = cell / loads.size();
    const std::size_t li = cell % loads.size();
    pipe::StageEngineConfig cfg;
    cfg.mode = modes[mi];
    cfg.batch_limit = static_cast<std::uint32_t>(batch);
    results[cell] = pipe::StageEngine(cfg).run(traces[li]);
  });

  for (std::size_t mi = 0; mi < 3; ++mi) {
    const char* mode = pipe::rx_mode_name(modes[mi]);
    benchutil::heading(
        (std::string("Staged rx path, mode = ") + mode).c_str());
    std::printf("%8s | %7s %7s | %6s | %11s %11s %11s | %6s\n", "load/s",
                "i/msg", "d/msg", "batch", "p50 lat", "p99 lat", "mean lat",
                "drop%");
    for (std::size_t li = 0; li < loads.size(); ++li) {
      const pipe::StageEngineResult& r = results[mi * loads.size() + li];
      const double drop_pct =
          r.offered != 0
              ? 100.0 * static_cast<double>(r.dropped) /
                    static_cast<double>(r.offered)
              : 0.0;
      std::printf("%8.0f | %7.2f %7.2f | %6.2f | %11s %11s %11s | %5.2f%%\n",
                  loads[li], r.i_miss_per_msg, r.d_miss_per_msg, r.mean_batch,
                  benchutil::fmt_latency(r.p50_latency_sec).c_str(),
                  benchutil::fmt_latency(r.p99_latency_sec).c_str(),
                  benchutil::fmt_latency(r.mean_latency_sec).c_str(),
                  drop_pct);
      const std::string key =
          std::string(mode) + "@" + std::to_string(
                                        static_cast<std::uint64_t>(loads[li]));
      report.metric("i_miss_per_msg." + key, r.i_miss_per_msg);
      report.metric("d_miss_per_msg." + key, r.d_miss_per_msg);
      report.metric("p50_latency_sec." + key, r.p50_latency_sec);
      report.metric("p99_latency_sec." + key, r.p99_latency_sec);
      report.metric("mean_batch." + key, r.mean_batch);
      report.metric("drop_frac." + key, drop_pct / 100.0);
    }
  }

  // Per-stage attribution at the middle load, pipelined mode: where the
  // misses live when every stage has its own cache pair.
  {
    const pipe::StageEngineResult& r = results[1 * loads.size() + 1];
    benchutil::heading("Per-stage attribution (pipelined, middle load)");
    std::printf("%8s | %9s %9s | %10s %11s\n", "stage", "i-miss", "d-miss",
                "msgs", "busy cyc");
    for (std::size_t s = 0; s < pipe::kStageCount; ++s) {
      const pipe::StageBreakdown& sb = r.stages[s];
      std::printf("%8s | %9llu %9llu | %10llu %11llu\n",
                  pipe::stage_name(static_cast<pipe::Stage>(s)),
                  static_cast<unsigned long long>(sb.i_misses),
                  static_cast<unsigned long long>(sb.d_misses),
                  static_cast<unsigned long long>(sb.messages),
                  static_cast<unsigned long long>(sb.busy_cycles));
    }
  }

  std::printf(
      "\nReading: pipelining keeps each stage's code resident in its own\n"
      "i-cache (i/msg ~ 0 at every load) but touches every message in four\n"
      "private d-caches (~4x d/msg) and pays a per-message activation;\n"
      "LDLP's one core refetches all the stage code each batch — a cost\n"
      "that falls as load fills the batches — keeps the message in one\n"
      "d-cache, and saturates first. The hybrid pipelines per-stage\n"
      "batches: pipeline headroom with batched activation costs.\n");
  report.write();
  return 0;
}
