// DNS: the paper's first-named small-message protocol, end to end.
//
// An authoritative server and a caching stub resolver run on two full
// stack hosts. A burst of lookups crosses the wire as ~30-byte queries
// and ~60-byte responses — messages an order of magnitude smaller than
// the protocol code that carries them, the paper's defining regime. The
// example prints resolution results, cache behaviour, and the server-side
// LDLP batching statistics for the query burst.
#include <cstdio>
#include <string>
#include <vector>

#include "dns/resolver.hpp"

using namespace ldlp;

int main() {
  stack::HostConfig stub_cfg;
  stub_cfg.name = "stub";
  stub_cfg.mac = {2, 0, 0, 0, 0, 1};
  stub_cfg.ip = wire::ip_from_parts(10, 0, 0, 1);
  stack::HostConfig ns_cfg;
  ns_cfg.name = "ns";
  ns_cfg.mac = {2, 0, 0, 0, 0, 2};
  ns_cfg.ip = wire::ip_from_parts(10, 0, 0, 2);
  ns_cfg.mode = core::SchedMode::kLdlp;  // the busy side batches

  stack::Host stub(stub_cfg);
  stack::Host ns(ns_cfg);
  stack::NetDevice::connect(stub.device(), ns.device());

  dns::DnsServer server(ns);
  server.add_a("ns.corp.example", ns_cfg.ip);
  server.add_cname("www.corp.example", "web1.corp.example");
  server.add_a("web1.corp.example", wire::ip_from_parts(10, 0, 5, 1));
  for (int i = 0; i < 24; ++i) {
    server.add_a("host" + std::to_string(i) + ".corp.example",
                 wire::ip_from_parts(10, 0, 9, static_cast<std::uint8_t>(i)));
  }

  dns::DnsResolver::Config rcfg;
  rcfg.server_ip = ns_cfg.ip;
  dns::DnsResolver resolver(stub, rcfg);

  auto settle = [&] {
    for (int i = 0; i < 8; ++i) {
      stub.pump();
      ns.pump();
      server.poll();
      ns.pump();
      stub.pump();
      resolver.poll();
    }
  };

  // Warm-up: one lookup resolves ARP and shows the CNAME chase.
  std::printf("single lookups:\n");
  for (const char* name : {"www.corp.example", "missing.corp.example"}) {
    std::string shown = name;
    resolver.resolve(name, [&](const std::string& n, auto addr) {
      if (addr.has_value()) {
        std::printf("  %-24s -> %s\n", n.c_str(),
                    wire::ip_to_string(*addr).c_str());
      } else {
        std::printf("  %-24s -> NXDOMAIN\n", n.c_str());
      }
    });
    settle();
  }

  // Burst: 24 parallel lookups arrive at the server together; LDLP runs
  // them through each layer as a batch.
  int resolved = 0;
  for (int i = 0; i < 24; ++i) {
    resolver.resolve("host" + std::to_string(i) + ".corp.example",
                     [&](const std::string&, auto addr) {
                       if (addr.has_value()) ++resolved;
                     });
  }
  settle();
  std::printf("\nburst: %d/24 resolved in one exchange\n", resolved);
  std::printf("server-side batching: eth %.1f msgs/activation, "
              "udp %.1f msgs/activation\n",
              ns.eth().stats().mean_batch(), ns.udp().stats().mean_batch());

  // Cache: repeat the burst — zero wire traffic.
  const auto queries_before = resolver.stats().queries_sent;
  int cached = 0;
  for (int i = 0; i < 24; ++i) {
    resolver.resolve("host" + std::to_string(i) + ".corp.example",
                     [&](const std::string&, auto addr) {
                       if (addr.has_value()) ++cached;
                     });
  }
  std::printf("\nrepeat burst: %d/24 from cache, %llu new queries\n", cached,
              static_cast<unsigned long long>(resolver.stats().queries_sent -
                                              queries_before));
  std::printf("resolver: %llu lookups, %llu cache hits, %llu sent\n",
              static_cast<unsigned long long>(resolver.stats().lookups),
              static_cast<unsigned long long>(resolver.stats().cache_hits),
              static_cast<unsigned long long>(resolver.stats().queries_sent));
  return resolved == 24 && cached == 24 ? 0 : 1;
}
