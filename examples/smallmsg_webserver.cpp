// "LDLP may improve performance for Internet WWW servers, where the data
// transfer unit is 512 bytes or less in most circumstances" (paper §6).
//
// A 1996-flavoured HTTP/0.9-ish exchange over the library's real TCP
// stack: many clients-worth of small GET requests arrive at a server whose
// receive side runs under LDLP; each request gets a ~500-byte response.
// The example reports end-to-end correctness and the server's per-layer
// batching statistics, then sizes the same workload on the simulated
// 1995 machine to show the cycles-per-request difference batching makes.
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "stack/host.hpp"
#include "synth/synth_stack.hpp"
#include "traffic/arrivals.hpp"

using namespace ldlp;

namespace {

const char kResponse[] =
    "HTTP/0.9 200 OK\r\n"
    "Server: ldlp-smallmsg/1.0\r\n"
    "Content-Type: text/html\r\n"
    "\r\n"
    "<html><head><title>LDLP</title></head><body>"
    "<h1>Locality-Driven Layer Processing</h1>"
    "<p>This ~500 byte page is the paper's canonical WWW transfer unit: "
    "small enough that protocol code, not data movement, dominates the "
    "memory traffic of serving it. Batching requests through each layer "
    "keeps that code in the instruction cache.</p>"
    "<hr><address>ldlp example server</address></body></html>\r\n";

}  // namespace

int main() {
  stack::HostConfig client_cfg;
  client_cfg.name = "browser";
  client_cfg.mac = {2, 0, 0, 0, 0, 1};
  client_cfg.ip = wire::ip_from_parts(10, 0, 0, 1);
  stack::HostConfig server_cfg;
  server_cfg.name = "www";
  server_cfg.mac = {2, 0, 0, 0, 0, 2};
  server_cfg.ip = wire::ip_from_parts(10, 0, 0, 2);
  server_cfg.mode = core::SchedMode::kLdlp;

  stack::Host client(client_cfg);
  stack::Host server(server_cfg);
  stack::NetDevice::connect(client.device(), server.device());

  (void)server.tcp().listen(80);
  stack::PcbId conn_at_server = stack::kNoPcb;
  server.tcp().set_accept_hook(
      [&](stack::PcbId id) { conn_at_server = id; });

  const stack::PcbId conn = client.tcp().connect(server_cfg.ip, 80);
  for (int i = 0; i < 8; ++i) {
    client.pump();
    server.pump();
  }
  if (conn_at_server == stack::kNoPcb) {
    std::fprintf(stderr, "handshake failed\n");
    return 1;
  }

  // Serve a burst of keep-alive requests on the one connection.
  const std::string request = "GET /index.html HTTP/0.9\r\n\r\n";
  const int kRequests = 200;
  int served = 0;
  std::size_t bytes_to_client = 0;
  std::vector<std::uint8_t> scratch(8192);

  for (int i = 0; i < kRequests; ++i) {
    if (!client.tcp().send(
            conn, {reinterpret_cast<const std::uint8_t*>(request.data()),
                   request.size()}))
      break;
    client.pump();
    server.pump();  // request batch climbs the server stack
    // Server application: drain requests, answer each with the page.
    const stack::SocketId ssock = server.tcp().socket_of(conn_at_server);
    while (server.sockets().readable_bytes(ssock) >= request.size()) {
      (void)server.sockets().read(
          ssock, {scratch.data(), request.size()});
      if (!server.tcp().send(
              conn_at_server,
              {reinterpret_cast<const std::uint8_t*>(kResponse),
               sizeof kResponse - 1}))
        break;
      ++served;
    }
    server.pump();
    client.pump();  // responses descend/arrive
    const stack::SocketId csock = client.tcp().socket_of(conn);
    bytes_to_client += client.sockets().read(csock, scratch);
    client.pump();
    server.pump();
  }

  std::printf("small-message web server (real stack, LDLP receive side)\n");
  std::printf("  requests served:   %d / %d\n", served, kRequests);
  std::printf("  response size:     %zu bytes\n", sizeof kResponse - 1);
  std::printf("  bytes to client:   %zu\n", bytes_to_client);
  std::printf("  server fast path:  %llu segments\n",
              static_cast<unsigned long long>(
                  server.tcp().pcb_stats(conn_at_server).fast_path));

  // --- The same workload on the paper's 1995 machine --------------------
  // ~500-byte messages at web-server arrival rates, conventional vs LDLP.
  std::printf("\nsimulated DEC 3000/400-class server, 500-byte requests:\n");
  std::printf("  %9s | %13s | %13s\n", "req/s", "conv latency", "ldlp latency");
  for (const double rate : {2000.0, 4000.0, 6000.0, 8000.0}) {
    double latency[2];
    int slot = 0;
    for (const auto mode :
         {core::SchedMode::kConventional, core::SchedMode::kLdlp}) {
      synth::SynthConfig cfg;
      cfg.mode = synth::from_sched(mode);
      cfg.layout_seed = 1234;
      synth::SynthStack machine(cfg);
      traffic::PoissonSource source(
          rate, std::make_unique<traffic::FixedSize>(500), 99);
      latency[slot++] = machine.run(source, 1.0).mean_latency_sec;
    }
    std::printf("  %9.0f | %10.2f ms | %10.2f ms\n", rate, latency[0] * 1e3,
                latency[1] * 1e3);
  }
  std::printf(
      "\nThe conventional server saturates mid-table; the LDLP server rides\n"
      "out the same load by batching — the paper's WWW-server conjecture.\n");
  return served == kRequests ? 0 : 1;
}
