// Quickstart: the ldlp library in ~80 lines.
//
// 1. Bring up two hosts with full TCP/IP stacks joined by a wire.
// 2. Open a TCP connection and exchange data (ARP, handshake, checksums,
//    acknowledgments all happen underneath).
// 3. Flip the receiver to LDLP scheduling and watch the per-layer batch
//    statistics change when a backlog arrives.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build &&
//               ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "stack/host.hpp"

using namespace ldlp;

int main() {
  // --- 1. Two hosts on a wire -------------------------------------------
  stack::HostConfig client_cfg;
  client_cfg.name = "client";
  client_cfg.mac = {0x02, 0, 0, 0, 0, 0x01};
  client_cfg.ip = wire::ip_from_parts(10, 0, 0, 1);

  stack::HostConfig server_cfg;
  server_cfg.name = "server";
  server_cfg.mac = {0x02, 0, 0, 0, 0, 0x02};
  server_cfg.ip = wire::ip_from_parts(10, 0, 0, 2);
  // The receiver runs locality-driven layer processing: when several
  // packets are waiting, each layer processes the whole batch before the
  // next layer runs, so layer code is fetched into the I-cache once per
  // batch instead of once per packet.
  server_cfg.mode = core::SchedMode::kLdlp;

  stack::Host client(client_cfg);
  stack::Host server(server_cfg);
  stack::NetDevice::connect(client.device(), server.device());

  // --- 2. TCP connection ------------------------------------------------
  (void)server.tcp().listen(7777);
  stack::PcbId accepted = stack::kNoPcb;
  server.tcp().set_accept_hook([&](stack::PcbId id) { accepted = id; });

  const stack::PcbId conn = client.tcp().connect(server_cfg.ip, 7777);
  for (int i = 0; i < 8; ++i) {  // pump the wire until the handshake lands
    client.pump();
    server.pump();
  }
  std::printf("connection state: client=%s server=%s\n",
              std::string(stack::tcp_state_name(client.tcp().state(conn))).c_str(),
              std::string(stack::tcp_state_name(server.tcp().state(accepted))).c_str());

  // --- 3. A burst of small messages, batched through the layers ---------
  const std::vector<std::uint8_t> request(120, 0x42);  // a "small message"
  for (int i = 0; i < 10; ++i) {
    if (!client.tcp().send(conn, request)) return 1;
    client.pump();  // each segment goes onto the wire immediately
  }
  std::printf("server rx ring backlog before pump: %zu frames\n",
              server.device().rx_pending());

  server.pump();  // one LDLP pass carries the whole backlog up the stack

  std::vector<std::uint8_t> buffer(4096);
  const std::size_t got =
      server.sockets().read(server.tcp().socket_of(accepted), buffer);
  std::printf("server application read %zu bytes\n", got);

  std::printf("\nper-layer batching (messages per activation):\n");
  for (const auto* layer :
       {static_cast<core::Layer*>(&server.eth()),
        static_cast<core::Layer*>(&server.ip()),
        static_cast<core::Layer*>(&server.tcp()),
        static_cast<core::Layer*>(&server.sockets())}) {
    std::printf("  %-10s processed=%-4llu batch=%.2f\n",
                layer->name().c_str(),
                static_cast<unsigned long long>(layer->stats().processed),
                layer->stats().mean_batch());
  }
  std::printf(
      "\nUnder conventional scheduling every batch above would be 1.00 —\n"
      "each packet would walk all layers alone, refetching ~30 KB of\n"
      "protocol code per packet on a small-cache machine.\n");
  return 0;
}
