// The paper's motivating workload (section 1): an ATM-style signalling
// switch that must sustain 10 000 connection setup/teardown pairs per
// second with ~100 us processing latency per message on a commodity CPU.
//
// A user node drives a switch node through full Q.93B-flavoured call
// flows (SETUP -> CONNECT, RELEASE -> RELEASE COMPLETE) over the reliable
// SSCOP-lite link. The switch runs under LDLP scheduling; batches form
// naturally whenever the offered load momentarily exceeds the service
// rate. Wall-clock throughput and per-message cost are reported against
// the paper's stated goal.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "signal/node.hpp"

using namespace ldlp;
using Clock = std::chrono::steady_clock;

int main(int argc, char** argv) {
  const int pairs = argc > 1 ? std::atoi(argv[1]) : 50000;
  const int burst = 32;  // calls in flight per round

  signal::SignallingNode user("user", core::SchedMode::kLdlp);
  signal::SignallingNode network("switch", core::SchedMode::kLdlp);
  signal::SignallingNode::connect(user, network);

  const std::uint8_t called[] = {4, 1, 5, 5, 5, 0, 1, 0, 0};
  const std::uint8_t calling[] = {4, 1, 5, 5, 5, 0, 2, 0, 0};
  const signal::TrafficDescriptor td{353207, 176603};  // ~150 Mb/s peak

  int completed = 0;
  std::uint64_t vci_checksum = 0;
  user.calls().set_on_active([&](const signal::Call& call) {
    if (call.vc.has_value()) vci_checksum += call.vc->vci;
  });

  const auto start = Clock::now();
  std::vector<std::uint32_t> refs;
  refs.reserve(burst);
  while (completed < pairs) {
    refs.clear();
    const int n = std::min(burst, pairs - completed);
    for (int i = 0; i < n; ++i)
      refs.push_back(user.calls().originate(called, calling, td));
    network.pump();  // switch handles the SETUP batch, allocates VCs
    user.pump();     // user handles the CONNECT batch
    for (const auto ref : refs) user.calls().release(ref);
    network.pump();  // RELEASE batch frees the VCs
    user.pump();     // RELEASE COMPLETE batch clears user state
    completed += n;
  }
  const auto elapsed = std::chrono::duration<double>(Clock::now() - start);

  const auto& sw = network.calls().stats();
  const double pairs_per_sec = completed / elapsed.count();
  // Each pair is four messages processed by the switch (SETUP, RELEASE in;
  // CONNECT, RELEASE COMPLETE out).
  const double us_per_msg = elapsed.count() / (completed * 2.0) * 1e6;

  std::printf("signalling switch benchmark\n");
  std::printf("  setup/teardown pairs:    %d\n", completed);
  std::printf("  wall time:               %.3f s\n", elapsed.count());
  std::printf("  pairs/second:            %.0f   (paper goal: 10000)\n",
              pairs_per_sec);
  std::printf("  us per inbound message:  %.2f   (paper goal: ~100)\n",
              us_per_msg);
  std::printf("  switch connects:         %llu\n",
              static_cast<unsigned long long>(sw.connects));
  std::printf("  switch active calls now: %llu (expect 0)\n",
              static_cast<unsigned long long>(sw.active_calls));
  std::printf("  protocol errors:         %llu\n",
              static_cast<unsigned long long>(sw.protocol_errors));
  std::printf("  vci assignment checksum: %llu\n",
              static_cast<unsigned long long>(vci_checksum));

  return sw.active_calls == 0 && sw.protocol_errors == 0 ? 0 : 1;
}
