// Working-set explorer: run the instrumented TCP receive & acknowledge
// path and inspect its memory behaviour interactively.
//
//   tcp_rx_trace [payload_bytes] [line_bytes]
//
// Prints the Figure 1-style code map, the Table 1 layer breakdown at the
// chosen cache line size, and what an 8 KB direct-mapped I-cache would do
// with one iteration of the path (the paper's "assume the cache is cold
// for every message" rule of thumb, checked against the cache model).
#include <cstdio>
#include <cstdlib>

#include "sim/cache.hpp"
#include "stack/rx_path_trace.hpp"
#include "trace/code_map_render.hpp"
#include "trace/working_set.hpp"

using namespace ldlp;

int main(int argc, char** argv) {
  const auto payload =
      static_cast<std::uint32_t>(argc > 1 ? std::atoi(argv[1]) : 512);
  const auto line =
      static_cast<std::uint32_t>(argc > 2 ? std::atoi(argv[2]) : 32);

  stack::StackTracer tracer;
  trace::TraceBuffer buffer;
  if (!stack::trace_tcp_receive_ack(tracer, buffer, {payload, 2})) {
    std::fprintf(stderr, "receive path failed to complete\n");
    return 1;
  }

  std::printf("TCP receive & acknowledge, payload=%u bytes, %zu trace "
              "records\n\n", payload, buffer.size());
  std::printf("%s\n", trace::render_code_map(tracer.code_map(), buffer).c_str());

  const auto ws = trace::analyze_working_set(buffer, line);
  std::printf("\nworking set at %u-byte lines:\n%s", line,
              ws.format_table().c_str());

  // Replay the code working set through the paper's primary I-cache twice:
  // the second pass shows how little survives between iterations.
  sim::Cache icache(sim::CacheConfig{8192, 32, 1});
  auto replay = [&] {
    std::uint64_t misses0 = icache.stats().misses;
    for (const auto& ref : buffer.refs()) {
      if (ref.kind == trace::RefKind::kCode)
        (void)icache.access_range(ref.addr, ref.len);
    }
    return icache.stats().misses - misses0;
  };
  const auto first = replay();
  const auto second = replay();
  std::printf(
      "\n8 KB direct-mapped I-cache, one iteration of the path:\n"
      "  cold-start misses:  %llu lines (%llu bytes)\n"
      "  next iteration:     %llu lines — %.0f%% of the cold cost, i.e. the\n"
      "  cache is effectively cold for every message (paper section 6).\n",
      static_cast<unsigned long long>(first),
      static_cast<unsigned long long>(first * 32),
      static_cast<unsigned long long>(second),
      100.0 * static_cast<double>(second) / static_cast<double>(first));
  return 0;
}
