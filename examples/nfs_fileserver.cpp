// NFS: "all except two messages in NFS" are small (paper §1) — the two
// being READ replies and WRITE calls. This example runs both halves of
// that observation against the NFS-lite server:
//
//   * a metadata storm (CREATE / LOOKUP / GETATTR / READDIR) whose
//     messages average well under 200 bytes — the small-message regime
//     where the protocol *code* dominates memory traffic;
//   * a bulk read of the same data in 8 KB chunks — the large-message
//     regime where the classic data-movement optimisations apply.
//
// The server host runs LDLP scheduling; per-layer batch statistics and
// the measured wire-size split are printed.
#include <cstdio>
#include <string>
#include <vector>

#include "rpc/nfs_lite.hpp"

using namespace ldlp;

int main() {
  stack::HostConfig client_cfg;
  client_cfg.name = "client";
  client_cfg.mac = {2, 0, 0, 0, 0, 1};
  client_cfg.ip = wire::ip_from_parts(10, 0, 0, 1);
  stack::HostConfig server_cfg;
  server_cfg.name = "nfsd";
  server_cfg.mac = {2, 0, 0, 0, 0, 2};
  server_cfg.ip = wire::ip_from_parts(10, 0, 0, 2);
  server_cfg.mode = core::SchedMode::kLdlp;

  stack::Host client_host(client_cfg);
  stack::Host server_host(server_cfg);
  stack::NetDevice::connect(client_host.device(), server_host.device());

  rpc::NfsServer server(server_host);
  rpc::NfsClient::Config ccfg;
  ccfg.server_ip = server_cfg.ip;
  rpc::NfsClient client(client_host, ccfg, [&] {
    client_host.pump();
    server_host.pump();
    server.poll();
    server_host.pump();
    client_host.pump();
  });

  // --- Phase 1: metadata storm ------------------------------------------
  const int kFiles = 40;
  std::vector<rpc::FileHandle> handles;
  for (int i = 0; i < kFiles; ++i) {
    const auto fh =
        client.create(rpc::kRootHandle, "log." + std::to_string(i));
    if (!fh.has_value()) return 1;
    handles.push_back(*fh);
    if (!client.getattr(*fh).has_value()) return 1;
    if (!client.lookup(rpc::kRootHandle, "log." + std::to_string(i))
             .has_value())
      return 1;
  }
  if (!client.readdir(rpc::kRootHandle).has_value()) return 1;

  const auto meta = server.stats();
  std::printf("metadata storm: %llu calls, mean request %llu B, "
              "mean reply %llu B\n",
              static_cast<unsigned long long>(meta.calls),
              static_cast<unsigned long long>(meta.bytes_in / meta.calls),
              static_cast<unsigned long long>(meta.bytes_out / meta.calls));

  // --- Phase 2: bulk data -------------------------------------------------
  std::vector<std::uint8_t> block(8192);
  for (std::size_t i = 0; i < block.size(); ++i)
    block[i] = static_cast<std::uint8_t>(i * 13);
  for (int i = 0; i < 8; ++i) {
    if (!client.write(handles[0], static_cast<std::uint32_t>(i) * 8192,
                      block))
      return 1;
  }
  std::size_t read_back = 0;
  for (int i = 0; i < 8; ++i) {
    const auto chunk =
        client.read(handles[0], static_cast<std::uint32_t>(i) * 8192, 8192);
    if (!chunk.has_value()) return 1;
    read_back += chunk->size();
  }

  const auto bulk = server.stats();
  const auto bulk_calls = bulk.calls - meta.calls;
  std::printf("bulk transfer:  %llu calls, mean request %llu B, "
              "mean reply %llu B, %zu bytes read back\n",
              static_cast<unsigned long long>(bulk_calls),
              static_cast<unsigned long long>((bulk.bytes_in - meta.bytes_in) /
                                              bulk_calls),
              static_cast<unsigned long long>(
                  (bulk.bytes_out - meta.bytes_out) / bulk_calls),
              read_back);

  std::printf("\nserver-side batching under LDLP: eth %.2f, ip %.2f, "
              "udp %.2f msgs/activation\n",
              server_host.eth().stats().mean_batch(),
              server_host.ip().stats().mean_batch(),
              server_host.udp().stats().mean_batch());
  std::printf(
      "\nThe metadata half is the paper's regime: ~100-byte messages whose\n"
      "service cost is protocol code, where LDLP batching pays. The bulk\n"
      "half is the regime of ILP/copy-avoidance — 8 KB of payload per\n"
      "message dwarfs the code footprint (paper Figure 4).\n");
  return 0;
}
