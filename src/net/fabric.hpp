// ldlp::net::Fabric — a deterministic multi-host network fabric.
//
// PR 4-6 grew the chaos harness around two hosts joined back-to-back;
// this layer replaces the wire with a real (simulated) fabric: switches
// with MAC learning and flooding, links with bounded queues,
// serialization and propagation delay, all driven from one shared
// eventsim::EventQueue. N stack::Host instances hang off access links
// via NetDevice's TxSink hook; host timers fire on fabric "tick rounds"
// (Host::advance_to + pump), so the per-host advance loops of the old
// harness collapse into Fabric::run_until.
//
// Fault model: the fabric executes one topology-scoped fault::FaultPlan.
// Episodes carry a FaultDomain (link / switch / rack / site / host) and
// the fabric maps a domain to the set of links it covers — a switch
// episode cuts every incident link at once, which is exactly the
// correlated failure that partitions the subtree below it. Partitions
// and flap-down phases are pure functions of (plan, now, link,
// direction), so the same schedule always cuts the same frames and the
// ddmin shrinker works on fleet schedules unchanged. Loss-burst
// episodes draw from the fabric's own seeded RNG.
//
// Conservation: every frame enqueue and every terminal outcome is
// counted per hop — frames injected == delivered + queue drops + fault
// drops + still in flight — and conservation_residual() must be zero at
// any quiescent point. The soak gates assert exactly that.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "eventsim/event_queue.hpp"
#include "common/rng.hpp"
#include "fault/fault_plan.hpp"
#include "stack/host.hpp"

namespace ldlp::net {

using HostId = std::uint32_t;
using SwitchId = std::uint32_t;
using LinkId = std::uint32_t;

/// One end of a link: a host's device or a switch port.
struct PortRef {
  enum class Kind : std::uint8_t { kHost, kSwitch };
  Kind kind = Kind::kHost;
  std::uint32_t id = 0;

  [[nodiscard]] static PortRef host(HostId id) noexcept {
    return {Kind::kHost, id};
  }
  [[nodiscard]] static PortRef sw(SwitchId id) noexcept {
    return {Kind::kSwitch, id};
  }
  friend bool operator==(const PortRef&, const PortRef&) = default;
};

struct LinkConfig {
  double delay_sec = 2e-6;      ///< Propagation delay, one way.
  double gbit_per_sec = 10.0;   ///< Serialization rate.
  std::size_t queue_frames = 64;  ///< Per-direction in-flight bound.
};

/// Per-direction link counters. Direction 0 is a->b, 1 is b->a (the
/// (a, b) order given to Fabric::link()).
struct LinkDirStats {
  std::uint64_t frames_in = 0;    ///< Accepted enqueues.
  std::uint64_t frames_out = 0;   ///< Delivered to the far port.
  std::uint64_t bytes = 0;
  std::uint64_t queue_drops = 0;  ///< Refused: in-flight bound hit.
  std::uint64_t fault_drops = 0;  ///< Cut by a domain episode.
  std::size_t in_flight = 0;
  std::size_t max_in_flight = 0;
};

struct SwitchStats {
  std::uint64_t forwarded = 0;  ///< Unicast frames sent on a learned port.
  std::uint64_t flooded = 0;    ///< Egress copies from flooding.
};

/// Fabric-wide conservation ledger (per-hop: each link enqueue counts).
struct FabricTotals {
  std::uint64_t injected = 0;
  std::uint64_t delivered = 0;
  std::uint64_t queue_drops = 0;
  std::uint64_t fault_drops = 0;
  std::size_t in_flight = 0;
};

struct FabricConfig {
  /// Host tick round period: every tick each host's clock snaps to fabric
  /// time, its timers fire, and its RX backlog is pumped. Effective RTT
  /// floor is ~2 ticks; 1 ms keeps TCP honest without drowning the run.
  double host_tick_sec = 1e-3;
  std::uint64_t fault_seed = 1;  ///< Drives domain loss-burst draws.
  /// Event-driven idle ticks: a host whose RX rings are empty and whose
  /// timer wheel has nothing due before the *next* round skips this one
  /// — its clock snaps forward on the next real tick, and because the
  /// skip consulted the wheel, no armed timer fires late. This replaces
  /// the blind `idle_tick_stride` heuristic of PR 9: the stride skipped
  /// a fixed count and accepted stride*tick timer lateness; the wheel
  /// margin makes the skip exact. The cap bounds how stale a fully
  /// quiescent host's clock may get (clock-fault episodes are evaluated
  /// at tick time, so an unbounded skip run could overshoot an episode
  /// boundary by the whole run). 0 = tick every host every round, the
  /// historical sweep bit for bit. The decision is pure in (ring state,
  /// wheel state, clocks), so runs stay deterministic for any --jobs.
  std::uint32_t idle_skip_cap = 16;
};

class Fabric {
 public:
  explicit Fabric(FabricConfig config = {});

  Fabric(const Fabric&) = delete;
  Fabric& operator=(const Fabric&) = delete;

  // -- Topology construction (before or between runs) --------------------

  /// Add a host; the fabric owns it. Its device transmits into the access
  /// link wired by link() (transmit before any link is a tx_drop).
  HostId add_host(stack::HostConfig config);

  /// Add a switch. `rack` and `site` are fault-domain annotations
  /// (-1 = unannotated); FaultDomain::kRack / kSite episodes cover every
  /// link incident to a switch with the matching annotation. `tier`
  /// orders switches vertically (0 = leaf/edge, 1 = spine, ...): a
  /// switch-switch link is an uplink on its lower-tier side (on both
  /// sides when equal), and flooding is split-horizon by tier — frames
  /// arriving on an uplink flood only downward, frames arriving on a
  /// downlink flood to the other downlinks plus ONE uplink chosen by a
  /// deterministic MAC-pair hash. That is valley-free (up*-down*)
  /// forwarding: loop-free and duplicate-free in any multi-rooted tree,
  /// which is what lets a fat-tree run without spanning tree.
  SwitchId add_switch(std::string name, int rack = -1, int site = -1,
                      int tier = 0);

  /// Join two ports with a full-duplex link. Direction 0 is a->b.
  LinkId link(PortRef a, PortRef b, LinkConfig config = {});

  // -- Accessors ----------------------------------------------------------

  [[nodiscard]] stack::Host& host(HostId id) { return *hosts_.at(id); }
  [[nodiscard]] const stack::Host& host(HostId id) const {
    return *hosts_.at(id);
  }
  [[nodiscard]] std::size_t host_count() const noexcept {
    return hosts_.size();
  }
  [[nodiscard]] std::size_t switch_count() const noexcept {
    return switches_.size();
  }
  [[nodiscard]] std::size_t link_count() const noexcept {
    return links_.size();
  }
  /// Number of distinct rack / site annotations (max index + 1).
  [[nodiscard]] std::size_t rack_count() const noexcept;
  [[nodiscard]] std::size_t site_count() const noexcept;

  [[nodiscard]] const LinkDirStats& link_stats(LinkId id,
                                               int direction) const {
    return links_.at(id).dir[direction & 1].stats;
  }
  [[nodiscard]] const SwitchStats& switch_stats(SwitchId id) const {
    return switches_.at(id).stats;
  }
  [[nodiscard]] const std::string& switch_name(SwitchId id) const {
    return switches_.at(id).name;
  }
  [[nodiscard]] std::size_t link_queue_depth(LinkId id) const {
    return links_.at(id).dir[0].stats.in_flight +
           links_.at(id).dir[1].stats.in_flight;
  }

  [[nodiscard]] FabricTotals totals() const noexcept;

  /// Host tick rounds skipped by wheel-driven idle coalescing (the
  /// suppressed timer work the net.* counters expose; 0 when
  /// idle_skip_cap == 0).
  [[nodiscard]] std::uint64_t suppressed_ticks() const noexcept {
    return suppressed_ticks_;
  }

  /// injected - delivered - queue_drops - fault_drops - in_flight; zero
  /// whenever the ledger balances (always, unless there is a bug).
  [[nodiscard]] std::int64_t conservation_residual() const noexcept;

  // -- Faults -------------------------------------------------------------

  /// Install the topology-scoped plan. Episodes with FaultDomain::kNone
  /// are ignored here (those belong on per-host injectors); the RNG for
  /// loss draws is reseeded from `seed`.
  void set_fault_plan(fault::FaultPlan plan, std::uint64_t seed);
  [[nodiscard]] const fault::FaultPlan& fault_plan() const noexcept {
    return plan_;
  }

  /// True once the plan horizon has passed and nothing is still on a
  /// wire — the gate recovery oracles use as a convergence clearance.
  [[nodiscard]] bool faults_cleared() const noexcept;

  /// Is this link direction cut right now (partition episode or flap
  /// down-phase whose domain covers the link)? Pure in (plan, t).
  [[nodiscard]] bool link_cut(LinkId id, int direction, double t) const;

  // -- Execution ----------------------------------------------------------

  [[nodiscard]] double now() const noexcept { return events_.now(); }

  /// Advance the fabric (links, switches, host ticks) to absolute time
  /// `t_sec` / by `dt_sec`.
  void run_until(double t_sec);
  void run_for(double dt_sec) { run_until(events_.now() + dt_sec); }

  /// Hook fired after every host tick round (all hosts advanced and
  /// pumped) — the fleet oracles' on_pass attachment point.
  void set_pass_hook(std::function<void()> hook) {
    pass_hook_ = std::move(hook);
  }

 private:
  struct LinkDir {
    double busy_until = 0.0;
    LinkDirStats stats;
  };
  struct Link {
    PortRef a, b;
    LinkConfig cfg;
    int site = -1;  ///< Same-site endpoints inherit it; cross-site = -1.
    LinkDir dir[2];
  };
  struct Switch {
    std::string name;
    int rack = -1;
    int site = -1;
    int tier = 0;
    std::vector<LinkId> ports;       ///< All incident links.
    std::vector<LinkId> up_ports;    ///< Toward higher (or equal) tiers.
    std::vector<LinkId> down_ports;  ///< Toward hosts / lower tiers.
    std::map<wire::MacAddr, LinkId> fdb;  ///< Learned source addresses.
    SwitchStats stats;
  };

  /// Does `episode`'s domain cover (link, direction)?
  [[nodiscard]] bool covers(const fault::Episode& e, LinkId id,
                            int direction) const noexcept;

  /// Try to put a frame on a link direction; false = dropped (counted).
  bool enqueue(LinkId id, int direction, std::vector<std::uint8_t> bytes);
  void deliver(LinkId id, int direction, std::vector<std::uint8_t> bytes);
  void forward(SwitchId id, LinkId ingress, std::vector<std::uint8_t> bytes);
  void send_via(SwitchId id, LinkId egress, std::vector<std::uint8_t> bytes);
  void tick_round();

  FabricConfig cfg_;
  eventsim::EventQueue events_;
  std::vector<std::unique_ptr<stack::Host>> hosts_;
  std::vector<LinkId> access_link_;  ///< Per host; kNoLink until wired.
  std::vector<Switch> switches_;
  std::vector<Link> links_;
  fault::FaultPlan plan_;
  Rng fault_rng_;
  std::function<void()> pass_hook_;
  bool tick_scheduled_ = false;
  std::vector<std::uint32_t> idle_rounds_;  ///< Per-host skipped-round run.
  std::uint64_t suppressed_ticks_ = 0;

  static constexpr LinkId kNoLink = ~LinkId{0};
};

}  // namespace ldlp::net
