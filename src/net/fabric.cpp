#include "net/fabric.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/assert.hpp"
#include "wire/ethernet.hpp"

namespace ldlp::net {

Fabric::Fabric(FabricConfig config)
    : cfg_(config), fault_rng_(config.fault_seed) {
  LDLP_ASSERT_MSG(cfg_.host_tick_sec > 0.0, "host tick must be positive");
}

HostId Fabric::add_host(stack::HostConfig config) {
  const HostId id = static_cast<HostId>(hosts_.size());
  hosts_.push_back(std::make_unique<stack::Host>(std::move(config)));
  access_link_.push_back(kNoLink);
  idle_rounds_.push_back(0);
  hosts_.back()->device().set_tx_sink(
      [this, id](std::vector<std::uint8_t>&& bytes) {
        const LinkId access = access_link_[id];
        if (access == kNoLink) return false;  // not wired yet
        const Link& l = links_[access];
        const int dir =
            (l.a == PortRef::host(id)) ? 0 : 1;  // toward the far end
        return enqueue(access, dir, std::move(bytes));
      });
  return id;
}

SwitchId Fabric::add_switch(std::string name, int rack, int site, int tier) {
  const SwitchId id = static_cast<SwitchId>(switches_.size());
  Switch sw;
  sw.name = std::move(name);
  sw.rack = rack;
  sw.site = site;
  sw.tier = tier;
  switches_.push_back(std::move(sw));
  return id;
}

LinkId Fabric::link(PortRef a, PortRef b, LinkConfig config) {
  LDLP_ASSERT_MSG(!(a == b), "a link needs two distinct ports");
  const LinkId id = static_cast<LinkId>(links_.size());
  Link l;
  l.a = a;
  l.b = b;
  l.cfg = config;
  // The link inherits a site annotation when its endpoints agree (a host
  // endpoint defers to the switch it hangs off); cross-site links stay -1
  // and are covered through their endpoint switches instead.
  int site_a = -2, site_b = -2;  // -2 = no opinion (host endpoint)
  for (const PortRef* p : {&l.a, &l.b}) {
    int& slot = (p == &l.a) ? site_a : site_b;
    if (p->kind == PortRef::Kind::kSwitch) slot = switches_.at(p->id).site;
  }
  if (site_a >= 0 && (site_b == site_a || site_b == -2)) l.site = site_a;
  else if (site_b >= 0 && site_a == -2) l.site = site_b;
  links_.push_back(std::move(l));
  for (const PortRef& p : {a, b}) {
    if (p.kind == PortRef::Kind::kSwitch) {
      Switch& sw = switches_.at(p.id);
      sw.ports.push_back(id);
      const PortRef& other = (p == a) ? b : a;
      if (other.kind == PortRef::Kind::kSwitch &&
          switches_.at(other.id).tier >= sw.tier) {
        sw.up_ports.push_back(id);  // equal tiers: uplink on both sides
      } else {
        sw.down_ports.push_back(id);
      }
    } else {
      LDLP_ASSERT_MSG(access_link_.at(p.id) == kNoLink,
                      "a host has exactly one access link");
      access_link_[p.id] = id;
    }
  }
  return id;
}

std::size_t Fabric::rack_count() const noexcept {
  int max_rack = -1;
  for (const Switch& sw : switches_) max_rack = std::max(max_rack, sw.rack);
  return static_cast<std::size_t>(max_rack + 1);
}

std::size_t Fabric::site_count() const noexcept {
  int max_site = -1;
  for (const Switch& sw : switches_) max_site = std::max(max_site, sw.site);
  return static_cast<std::size_t>(max_site + 1);
}

FabricTotals Fabric::totals() const noexcept {
  FabricTotals t;
  for (const Link& l : links_) {
    for (const LinkDir& d : l.dir) {
      t.injected += d.stats.frames_in;
      t.delivered += d.stats.frames_out;
      t.queue_drops += d.stats.queue_drops;
      t.fault_drops += d.stats.fault_drops;
      t.in_flight += d.stats.in_flight;
    }
  }
  return t;
}

std::int64_t Fabric::conservation_residual() const noexcept {
  const FabricTotals t = totals();
  return static_cast<std::int64_t>(t.injected) -
         static_cast<std::int64_t>(t.delivered) -
         static_cast<std::int64_t>(t.queue_drops) -
         static_cast<std::int64_t>(t.fault_drops) -
         static_cast<std::int64_t>(t.in_flight);
}

void Fabric::set_fault_plan(fault::FaultPlan plan, std::uint64_t seed) {
  plan_ = std::move(plan);
  fault_rng_.reseed(seed);
}

bool Fabric::faults_cleared() const noexcept {
  return events_.now() >= plan_.end_time() && totals().in_flight == 0;
}

bool Fabric::covers(const fault::Episode& e, LinkId id,
                    int direction) const noexcept {
  if (e.direction != fault::kDirBoth) {
    if (e.direction == fault::kDirAtoB && direction != 0) return false;
    if (e.direction == fault::kDirBtoA && direction != 1) return false;
  }
  const Link& l = links_[id];
  const auto endpoint_switch = [&](const PortRef& p) -> const Switch* {
    return p.kind == PortRef::Kind::kSwitch ? &switches_[p.id] : nullptr;
  };
  const Switch* sa = endpoint_switch(l.a);
  const Switch* sb = endpoint_switch(l.b);
  const int idx = static_cast<int>(e.domain_index);
  switch (e.domain) {
    case fault::FaultDomain::kNone:
      return false;
    case fault::FaultDomain::kLink:
      return id == e.domain_index;
    case fault::FaultDomain::kSwitch:
      return (sa != nullptr && l.a.id == e.domain_index) ||
             (sb != nullptr && l.b.id == e.domain_index);
    case fault::FaultDomain::kRack:
      return (sa != nullptr && sa->rack == idx) ||
             (sb != nullptr && sb->rack == idx);
    case fault::FaultDomain::kSite:
      return l.site == idx || (sa != nullptr && sa->site == idx) ||
             (sb != nullptr && sb->site == idx);
    case fault::FaultDomain::kHost:
      return (l.a.kind == PortRef::Kind::kHost && l.a.id == e.domain_index) ||
             (l.b.kind == PortRef::Kind::kHost && l.b.id == e.domain_index);
  }
  return false;
}

bool Fabric::link_cut(LinkId id, int direction, double t) const {
  for (const fault::Episode& e : plan_.episodes()) {
    if (!e.active_at(t) || !covers(e, id, direction)) continue;
    if (e.kind == fault::FaultKind::kPartition) return true;
    if (e.kind == fault::FaultKind::kLinkFlap && e.magnitude > 0.0) {
      // Same cycle geometry as the per-host injector: the first `rate`
      // fraction of every `magnitude`-second period is carrier-down.
      const double phase = std::fmod(t - e.start, e.magnitude);
      if (phase < e.rate * e.magnitude) return true;
    }
  }
  return false;
}

bool Fabric::enqueue(LinkId id, int direction,
                     std::vector<std::uint8_t> bytes) {
  const double t = events_.now();
  Link& l = links_[id];
  LinkDir& d = l.dir[direction & 1];
  // Every offered frame enters the ledger first, so that at any instant
  // injected == delivered + queue_drops + fault_drops + in_flight.
  ++d.stats.frames_in;
  if (link_cut(id, direction, t)) {
    ++d.stats.fault_drops;
    return false;
  }
  for (const fault::Episode& e : plan_.episodes()) {
    if (e.kind == fault::FaultKind::kLossBurst && e.active_at(t) &&
        covers(e, id, direction) && fault_rng_.chance(e.rate)) {
      ++d.stats.fault_drops;
      return false;
    }
  }
  if (d.stats.in_flight >= l.cfg.queue_frames) {
    ++d.stats.queue_drops;
    return false;
  }
  d.stats.bytes += bytes.size();
  ++d.stats.in_flight;
  d.stats.max_in_flight = std::max(d.stats.max_in_flight, d.stats.in_flight);
  const double start = std::max(t, d.busy_until);
  const double done =
      start + static_cast<double>(bytes.size()) * 8.0 /
                  (l.cfg.gbit_per_sec * 1e9);
  d.busy_until = done;
  events_.schedule_at(done + l.cfg.delay_sec,
                      [this, id, direction, b = std::move(bytes)]() mutable {
                        deliver(id, direction, std::move(b));
                      });
  return true;
}

void Fabric::deliver(LinkId id, int direction,
                     std::vector<std::uint8_t> bytes) {
  Link& l = links_[id];
  LinkDir& d = l.dir[direction & 1];
  LDLP_ASSERT_MSG(d.stats.in_flight > 0, "delivery without an enqueue");
  --d.stats.in_flight;
  ++d.stats.frames_out;
  const PortRef dst = (direction == 0) ? l.b : l.a;
  if (dst.kind == PortRef::Kind::kHost) {
    hosts_[dst.id]->device().inject(std::move(bytes));
  } else {
    forward(dst.id, id, std::move(bytes));
  }
}

void Fabric::forward(SwitchId id, LinkId ingress,
                     std::vector<std::uint8_t> bytes) {
  Switch& sw = switches_[id];
  const auto eth = wire::parse_eth(bytes);
  if (!eth) return;  // runt frame: a real switch would discard it too
  sw.fdb[eth->src] = ingress;  // backward learning
  if ((eth->dst[0] & 1) == 0) {  // unicast
    if (const auto hit = sw.fdb.find(eth->dst); hit != sw.fdb.end()) {
      if (hit->second != ingress) {
        ++sw.stats.forwarded;
        send_via(id, hit->second, std::move(bytes));
      }
      return;  // learned on the ingress segment: nothing to do
    }
  }
  // Broadcast / multicast / unknown unicast: split-horizon flood. Frames
  // that arrived from above only go down; frames from below go to every
  // other downlink plus one hash-chosen uplink (valley-free forwarding —
  // see add_switch). Copies fan out per egress; each is its own enqueue
  // in the conservation ledger.
  const bool from_above =
      std::find(sw.up_ports.begin(), sw.up_ports.end(), ingress) !=
      sw.up_ports.end();
  for (const LinkId egress : sw.down_ports) {
    if (egress == ingress) continue;
    ++sw.stats.flooded;
    send_via(id, egress, std::vector<std::uint8_t>(bytes));
  }
  if (!from_above && !sw.up_ports.empty()) {
    std::uint64_t h = 0;
    for (const std::uint8_t b : eth->src) h = h * 131 + b;
    for (const std::uint8_t b : eth->dst) h = h * 131 + b;
    std::uint64_t state = h;
    const LinkId up = sw.up_ports[splitmix64(state) % sw.up_ports.size()];
    ++sw.stats.flooded;
    send_via(id, up, std::move(bytes));
  }
}

void Fabric::send_via(SwitchId id, LinkId egress,
                      std::vector<std::uint8_t> bytes) {
  const Link& l = links_[egress];
  const int dir = (l.a == PortRef::sw(id)) ? 0 : 1;
  enqueue(egress, dir, std::move(bytes));
}

void Fabric::tick_round() {
  const double t = events_.now();
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    stack::Host& host = *hosts_[i];
    // Event-driven idle coalescing: skip a host with an empty RX ring
    // whose wheel has nothing due before the next round. The margin is
    // measured on the host's *virtual* clock while the gap is real
    // (fabric) time; without clock faults they advance in lockstep, and
    // with them the one-tick slack plus the skip cap keeps any lateness
    // inside the skew the fault itself already inflicts.
    if (cfg_.idle_skip_cap > 0 && host.device().rx_pending() == 0 &&
        idle_rounds_[i] < cfg_.idle_skip_cap &&
        host.wheel().next_deadline() - host.now() >
            (t - host.real_now()) + cfg_.host_tick_sec) {
      ++idle_rounds_[i];
      ++suppressed_ticks_;
      continue;
    }
    idle_rounds_[i] = 0;
    host.advance_to(t);
    host.pump();
  }
  if (pass_hook_) pass_hook_();
  events_.schedule_in(cfg_.host_tick_sec, [this] { tick_round(); });
}

void Fabric::run_until(double t_sec) {
  if (!tick_scheduled_ && !hosts_.empty()) {
    tick_scheduled_ = true;
    events_.schedule_in(cfg_.host_tick_sec, [this] { tick_round(); });
  }
  events_.run_until(t_sec);
}

}  // namespace ldlp::net
