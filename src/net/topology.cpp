#include "net/topology.hpp"

#include <string>

#include "common/assert.hpp"
#include "wire/ipv4.hpp"

namespace ldlp::net {

std::uint32_t host_ip(std::uint32_t index) noexcept {
  // 200 hosts per third octet keeps clear of .0 and .255 forever.
  return wire::ip_from_parts(10, 0, static_cast<std::uint8_t>(index / 200),
                             static_cast<std::uint8_t>(1 + index % 200));
}

stack::HostConfig host_identity(stack::HostConfig proto,
                                std::uint32_t index) {
  proto.name = "h" + std::to_string(index);
  proto.mac = wire::MacAddr{0x02, 0x00, 0x00, 0x00,
                            static_cast<std::uint8_t>(index >> 8),
                            static_cast<std::uint8_t>(index)};
  proto.ip = host_ip(index);
  return proto;
}

std::vector<HostId> build_star(Fabric& fabric, const StarConfig& config) {
  LDLP_ASSERT_MSG(config.hosts >= 2, "a star needs at least two hosts");
  const SwitchId sw = fabric.add_switch("sw0", /*rack=*/0, /*site=*/0);
  std::vector<HostId> hosts;
  hosts.reserve(config.hosts);
  for (std::size_t i = 0; i < config.hosts; ++i) {
    const HostId h = fabric.add_host(
        host_identity(config.proto, static_cast<std::uint32_t>(i)));
    fabric.link(PortRef::host(h), PortRef::sw(sw), config.access);
    hosts.push_back(h);
  }
  return hosts;
}

std::vector<HostId> build_fat_tree(Fabric& fabric,
                                   const FatTreeConfig& config) {
  LDLP_ASSERT_MSG(config.racks >= 1 && config.hosts_per_rack >= 1 &&
                      config.spines >= 1,
                  "degenerate fat-tree");
  std::vector<SwitchId> spines;
  spines.reserve(config.spines);
  for (std::size_t s = 0; s < config.spines; ++s) {
    spines.push_back(fabric.add_switch("spine" + std::to_string(s),
                                       /*rack=*/-1, /*site=*/0, /*tier=*/1));
  }
  std::vector<HostId> hosts;
  hosts.reserve(config.racks * config.hosts_per_rack);
  for (std::size_t r = 0; r < config.racks; ++r) {
    const SwitchId leaf =
        fabric.add_switch("leaf" + std::to_string(r),
                          static_cast<int>(r), /*site=*/0, /*tier=*/0);
    for (std::size_t i = 0; i < config.hosts_per_rack; ++i) {
      const std::uint32_t index =
          static_cast<std::uint32_t>(r * config.hosts_per_rack + i);
      const HostId h = fabric.add_host(host_identity(config.proto, index));
      fabric.link(PortRef::host(h), PortRef::sw(leaf), config.access);
      hosts.push_back(h);
    }
    for (const SwitchId spine : spines)
      fabric.link(PortRef::sw(leaf), PortRef::sw(spine), config.trunk);
  }
  return hosts;
}

std::vector<HostId> build_wan_pair(Fabric& fabric,
                                   const WanPairConfig& config) {
  LDLP_ASSERT_MSG(config.hosts_per_site >= 1, "empty site");
  std::vector<HostId> hosts;
  hosts.reserve(2 * config.hosts_per_site);
  SwitchId site_sw[2];
  for (int site = 0; site < 2; ++site) {
    site_sw[site] = fabric.add_switch("site" + std::to_string(site),
                                      /*rack=*/site, site, /*tier=*/0);
    for (std::size_t i = 0; i < config.hosts_per_site; ++i) {
      const std::uint32_t index = static_cast<std::uint32_t>(
          static_cast<std::size_t>(site) * config.hosts_per_site + i);
      const HostId h = fabric.add_host(host_identity(config.proto, index));
      fabric.link(PortRef::host(h), PortRef::sw(site_sw[site]),
                  config.access);
      hosts.push_back(h);
    }
  }
  // Equal tiers: the WAN link is an "uplink" on both sides, so a frame
  // that crossed it never crosses back — no loop with one cross link,
  // and site-local broadcast stays site-local plus one WAN copy.
  fabric.link(PortRef::sw(site_sw[0]), PortRef::sw(site_sw[1]), config.wan);
  return hosts;
}

}  // namespace ldlp::net
