// Seed-deterministic fleet fault plans: the topology-scoped adversity a
// fleet soak runs under. random_fleet_plan() draws over domain *shapes*
// (how many links / switches / racks / sites / hosts exist), not over a
// live Fabric, so a schedule can be generated, serialized and shrunk
// without constructing the topology — replay re-derives the same plan
// from (seed, shape) or just loads the episodes from the artifact.
#pragma once

#include <cstdint>

#include "fault/fault_plan.hpp"

namespace ldlp::net {

class Fabric;

/// Domain-index ranges a plan may draw from. Zero disables a domain
/// (sites <= 1 disables site cuts: cutting the only site is a blackout,
/// not a partition).
struct FleetShape {
  std::size_t links = 0;
  std::size_t switches = 0;
  std::size_t racks = 0;
  std::size_t sites = 0;
  std::size_t hosts = 0;
};

/// The shape of an existing fabric.
[[nodiscard]] FleetShape shape_of(const Fabric& fabric);

/// `episodes` topology-scoped fault windows over [0, horizon_sec):
/// partitions (sometimes asymmetric), link flaps, and loss bursts, each
/// aimed at a random domain the shape allows. Every episode ends by
/// 0.9 * horizon so the post-fault convergence budget is meaningful.
/// Pure in (seed, horizon, shape, episodes).
[[nodiscard]] fault::FaultPlan random_fleet_plan(std::uint64_t seed,
                                                 double horizon_sec,
                                                 const FleetShape& shape,
                                                 std::size_t episodes = 5);

}  // namespace ldlp::net
