#include "net/fleet_plan.hpp"

#include <algorithm>
#include <vector>

#include "common/rng.hpp"
#include "net/fabric.hpp"

namespace ldlp::net {

FleetShape shape_of(const Fabric& fabric) {
  FleetShape shape;
  shape.links = fabric.link_count();
  shape.switches = fabric.switch_count();
  shape.racks = fabric.rack_count();
  shape.sites = fabric.site_count();
  shape.hosts = fabric.host_count();
  return shape;
}

fault::FaultPlan random_fleet_plan(std::uint64_t seed, double horizon_sec,
                                   const FleetShape& shape,
                                   std::size_t episodes) {
  // Distinct stream from FaultPlan::random / random_heal so fleet plans
  // never alias the per-host plan a host with the same seed would get.
  std::uint64_t mix = seed ^ 0xf1ee7'0001ULL;
  Rng rng(splitmix64(mix));
  fault::FaultPlan plan;

  struct DomainChoice {
    fault::FaultDomain domain;
    std::size_t count;
  };
  std::vector<DomainChoice> choices;
  if (shape.links > 0) {
    // Links dominate the draw: most real outages are a cable, not a site.
    choices.push_back({fault::FaultDomain::kLink, shape.links});
    choices.push_back({fault::FaultDomain::kLink, shape.links});
  }
  if (shape.switches > 0)
    choices.push_back({fault::FaultDomain::kSwitch, shape.switches});
  if (shape.racks > 0)
    choices.push_back({fault::FaultDomain::kRack, shape.racks});
  if (shape.sites > 1)
    choices.push_back({fault::FaultDomain::kSite, shape.sites});
  if (shape.hosts > 0)
    choices.push_back({fault::FaultDomain::kHost, shape.hosts});
  if (choices.empty()) return plan;

  for (std::size_t i = 0; i < episodes; ++i) {
    const DomainChoice& c = choices[rng.bounded(choices.size())];
    fault::Episode e;
    e.domain = c.domain;
    e.domain_index = static_cast<std::uint32_t>(rng.bounded(c.count));
    e.start = rng.uniform(0.0, 0.6 * horizon_sec);
    const double max_len = 0.9 * horizon_sec - e.start;
    const double roll = rng.uniform();
    if (roll < 0.45) {
      e.kind = fault::FaultKind::kPartition;
      e.end = e.start + rng.uniform(0.05, std::min(0.25 * horizon_sec,
                                                   max_len));
      // A quarter of cuts are gray: one direction passes, the other
      // blackholes — the half-open-connection generator.
      if (rng.chance(0.25))
        e.direction = rng.chance(0.5) ? fault::kDirAtoB : fault::kDirBtoA;
    } else if (roll < 0.75) {
      e.kind = fault::FaultKind::kLinkFlap;
      e.end = e.start + rng.uniform(0.05, std::min(0.35 * horizon_sec,
                                                   max_len));
      e.rate = rng.uniform(0.25, 0.6);        // down fraction per cycle
      e.magnitude = rng.uniform(0.02, 0.12);  // cycle period, seconds
    } else {
      e.kind = fault::FaultKind::kLossBurst;
      e.end = e.start + rng.uniform(0.05, std::min(0.35 * horizon_sec,
                                                   max_len));
      e.rate = rng.uniform(0.15, 0.7);
    }
    plan.add(e);
  }
  return plan;
}

}  // namespace ldlp::net
