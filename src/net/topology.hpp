// Topology builders: the three fleet shapes the soaks exercise.
//
//   * star — one switch, N hosts; the smallest fabric with flooding,
//     learning and a shared failure point (the unit-test shape).
//   * 2-tier fat-tree — one leaf switch per rack, every leaf linked to
//     every spine; cross-rack traffic has spine path diversity at the
//     MAC-learning level (a learned path survives as long as its spine
//     does; a spine fault forces relearning via flooding).
//   * WAN pair — two star sites joined by one long fat link; the shape
//     where a site-domain fault is a real inter-datacenter partition.
//
// Hosts get a uniform identity from their fabric index: name "h<i>",
// MAC 02:00:00:00:hh:ll, IP 10.0.x.y — everything is on one subnet, so
// reachability is pure L2 (ARP + switch learning), no routes needed.
#pragma once

#include <cstdint>
#include <vector>

#include "net/fabric.hpp"
#include "stack/host.hpp"

namespace ldlp::net {

/// Stamp index-derived name / MAC / IP onto a host config prototype.
[[nodiscard]] stack::HostConfig host_identity(stack::HostConfig proto,
                                              std::uint32_t index);

/// IP a builder assigns to host `index` (10.0.index/200.1+index%200).
[[nodiscard]] std::uint32_t host_ip(std::uint32_t index) noexcept;

struct StarConfig {
  std::size_t hosts = 4;
  LinkConfig access{};
  stack::HostConfig proto{};  ///< Per-host template (identity overwritten).
};

struct FatTreeConfig {
  std::size_t racks = 4;
  std::size_t hosts_per_rack = 4;
  std::size_t spines = 2;
  LinkConfig access{};
  LinkConfig trunk{2e-6, 40.0, 256};  ///< Leaf-spine links: fatter, deeper.
  stack::HostConfig proto{};
};

struct WanPairConfig {
  std::size_t hosts_per_site = 4;
  LinkConfig access{};
  LinkConfig wan{5e-3, 1.0, 512};  ///< Long, thin, deep — a real WAN hop.
  stack::HostConfig proto{};
};

/// Each builder returns the HostIds it created, in index order.
std::vector<HostId> build_star(Fabric& fabric, const StarConfig& config);
std::vector<HostId> build_fat_tree(Fabric& fabric,
                                   const FatTreeConfig& config);
std::vector<HostId> build_wan_pair(Fabric& fabric,
                                   const WanPairConfig& config);

}  // namespace ldlp::net
