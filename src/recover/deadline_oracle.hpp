// DeadlineOracle: every armed timer fires, cancels, or is condemned.
//
// Subscribes to each attached host's TimerWheel event stream and keeps
// the set of currently-armed timers. Two invariants:
//
//   * liveness — an armed-overdue timer that sees the wheel advance
//     must have fired: advance_to fires everything due, so surviving an
//     advance means the wheel lost it. Overdue entries are stamped with
//     the wheel time they were first observed at and condemned only when
//     the wheel later moves past the stamp — never on sight — which
//     keeps clock faults from faking lateness (skewed hosts arm
//     fabric-time deadlines a fast wheel sees as past; they legally fire
//     on the next advance. A stalled wheel holds due timers frozen);
//   * no starvation — storm shedding and the stale-shed path may drop
//     cadence work, but never a kLiveness timer: shedding a retransmit
//     or probe wedges the connection forever. This is exactly what the
//     WheelConfig::shed_guard mutation reverts, and the `clocks` chaos
//     scenario proves this oracle catches it.
//
// Drive on_pass() from the fabric pass hook and finalize() at the end.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"
#include "stack/host.hpp"
#include "time/timer_wheel.hpp"

namespace ldlp::recover {

struct DeadlineOracleConfig {
  /// How far past its deadline an armed timer may linger before it is
  /// condemned. Covers the armed-in-past grace (such timers fire on the
  /// *next* advance) plus a few fabric tick rounds of scheduling slack.
  double lateness_slack_sec = 0.05;
};

struct DeadlineOracleStats {
  std::uint64_t arms = 0;
  std::uint64_t fires = 0;    ///< Due + spurious (early) fires.
  std::uint64_t cancels = 0;
  std::uint64_t sheds = 0;
  std::uint64_t passes = 0;
};

class DeadlineOracle {
 public:
  explicit DeadlineOracle(DeadlineOracleConfig config = {})
      : cfg_(config) {}
  ~DeadlineOracle() { detach(); }
  DeadlineOracle(const DeadlineOracle&) = delete;
  DeadlineOracle& operator=(const DeadlineOracle&) = delete;

  /// Subscribe to `host`'s wheel (takes the wheel's single observer
  /// slot). The host must outlive the oracle or detach() first.
  void attach(stack::Host& host, std::string label = {});

  /// Clear every observer installed by attach() (call before the hosts
  /// are destroyed if the oracle dies first).
  void detach();

  /// Overdue-armed sweep; call once per fabric tick round.
  void on_pass();

  /// Final sweep. Timers still armed with future deadlines are fine —
  /// teardown cancels them — but overdue ones are condemned.
  void finalize() { sweep(); }

  [[nodiscard]] bool ok() const noexcept { return violations_.empty(); }
  [[nodiscard]] const std::vector<std::string>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] const DeadlineOracleStats& stats() const noexcept {
    return stats_;
  }

  void publish(obs::Registry& registry,
               std::string_view prefix = "recover.deadline") const;

 private:
  struct Armed {
    double deadline = 0.0;
    time::TimerClass cls = time::TimerClass::kCadence;
    /// Wheel time when a sweep first saw this entry armed past its
    /// deadline; <0 until then. Condemned only once the wheel advances
    /// beyond this stamp with the entry still armed.
    double overdue_seen = -1.0;
  };
  struct HostState {
    stack::Host* host = nullptr;
    std::string label;
    std::map<time::TimerId, Armed> armed;
    bool overdue_flagged = false;  ///< One condemnation per host, not per tick.
  };

  void on_event(HostState& hs, const time::TimerEvent& event);
  void sweep();
  void violation(const std::string& what);

  DeadlineOracleConfig cfg_;
  std::vector<std::unique_ptr<HostState>> hosts_;
  std::vector<std::string> violations_;
  DeadlineOracleStats stats_;
};

}  // namespace ldlp::recover
