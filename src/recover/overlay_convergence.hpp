// Overlay convergence oracle: after the fault horizon, the membership
// views must stop moving and the eager-push graph must knit back into a
// single spanning tree.
//
// The ConvergenceOracle proves the *transport* comes back (every PCB
// terminal or quiescent); this oracle proves the *overlay* does. Its
// input is the same per-pass OverlayView snapshot the ViewAuditor
// consumes — plain data, so recover never depends on ldlp::overlay.
//
// Protocol mirrors ConvergenceOracle: arm() once churn is scheduled to
// end, add_clearance(fabric.faults_cleared) so the stability budget only
// counts once adversity has drained, on_pass(views) per scheduler tick.
// Stability is judged by fingerprinting every live node's sorted active
// and eager views: `stable_passes` consecutive identical fingerprints
// within `budget_passes` of readiness means the membership protocol
// settled (shuffles keep exchanging *passive* entries forever — that is
// steady-state maintenance, not instability, so passive views are
// excluded from the fingerprint).
//
// finalize(views) then judges the settled shape:
//   * connectivity — the undirected graph over active links reaches every
//     live node from the first (a partitioned-but-individually-stable
//     overlay must be condemned: repair failed);
//   * tree quality — the eager subgraph, which PlumTree prunes toward a
//     spanning tree, must itself connect every live node. (A pruned-too-
//     far eager graph would strand a subtree on lazy IHAVE links only;
//     delivery still happens via graft, but convergence demands the tree
//     healed.)
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "check/overlay_audit.hpp"
#include "obs/metrics.hpp"

namespace ldlp::recover {

struct OverlayConvergenceConfig {
  /// Passes allowed between "armed + clearances drained" and the views
  /// stabilizing. Gossip soaks tick at 5 ms, and a full repair (probe
  /// backoff ladder -> dead -> Neighbor promotion) spans ~2.5 s of sim
  /// time, so the default covers several back-to-back repairs.
  std::uint64_t budget_passes = 4000;
  /// Consecutive identical view fingerprints required to call it stable.
  std::uint64_t stable_passes = 40;
};

struct OverlayConvergenceStats {
  std::uint64_t passes = 0;
  std::uint64_t passes_to_converge = 0;  ///< Budget passes used (0 = not yet).
  std::uint64_t violations = 0;
};

class OverlayConvergenceOracle {
 public:
  explicit OverlayConvergenceOracle(OverlayConvergenceConfig cfg = {})
      : cfg_(cfg) {}

  /// "Adversity drained" predicates; all must hold before the stability
  /// budget starts counting (fleet runs hang fabric.faults_cleared here).
  void add_clearance(std::function<bool()> cleared) {
    clearances_.push_back(std::move(cleared));
  }

  /// No further churn or joins will be initiated; stability is owed.
  void arm() noexcept { armed_ = true; }

  /// Call once per scheduler pass with the fleet's current views.
  void on_pass(std::span<const check::OverlayView> views);

  [[nodiscard]] bool armed() const noexcept { return armed_; }
  [[nodiscard]] bool ready() const;
  /// Views have held still for stable_passes consecutive ready passes.
  [[nodiscard]] bool converged() const noexcept {
    return stable_run_ >= cfg_.stable_passes;
  }
  [[nodiscard]] bool settled() const { return ready() && converged(); }

  /// End-of-run shape check on the settled views (see file comment).
  /// Returns ok().
  bool finalize(std::span<const check::OverlayView> views);

  [[nodiscard]] bool ok() const noexcept { return violations_.empty(); }
  [[nodiscard]] const std::vector<std::string>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] const OverlayConvergenceStats& stats() const noexcept {
    return stats_;
  }

  /// Mirror totals into an obs registry as <prefix>.* counters.
  void publish(obs::Registry& registry,
               std::string_view prefix = "recover.overlay") const;

 private:
  [[nodiscard]] std::uint64_t fingerprint(
      std::span<const check::OverlayView> views) const;
  void violation(std::string what);

  OverlayConvergenceConfig cfg_;
  std::vector<std::function<bool()>> clearances_;
  bool armed_ = false;
  bool flagged_ = false;
  std::uint64_t ready_passes_ = 0;
  std::uint64_t stable_run_ = 0;
  std::uint64_t last_fingerprint_ = 0;
  std::vector<std::string> violations_;
  OverlayConvergenceStats stats_;
};

}  // namespace ldlp::recover
