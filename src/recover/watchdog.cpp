#include "recover/watchdog.hpp"

#include <cstdio>

namespace ldlp::recover {

void ProgressWatchdog::add_host(stack::Host& host,
                                fault::FaultInjector* injector) {
  hosts_.push_back({&host, injector, progress_fingerprint(host), 0, false});
}

std::uint64_t ProgressWatchdog::occupancy(stack::Host& host) {
  std::uint64_t held = host.graph().backlog() + host.device().rx_pending();
  stack::TcpLayer& tcp = host.tcp();
  for (stack::PcbId id = 0; id < tcp.pcb_count(); ++id) {
    const stack::TcpPcb& p = tcp.pcb_view(id);
    held += p.send_buffer.size() + p.rtx.size() + p.ooo.size();
  }
  return held;
}

std::uint64_t ProgressWatchdog::progress_fingerprint(stack::Host& host) {
  std::uint64_t sum = 0;
  core::StackGraph& graph = host.graph();
  for (core::LayerId id = 0; id < graph.layer_count(); ++id) {
    const core::LayerStats& s = graph.layer(id).stats();
    sum += s.processed + s.drops;
  }
  const stack::NetDeviceStats& d = host.device().stats();
  sum += d.rx_frames + d.tx_frames + d.rx_drops + d.tx_drops;
  // Segments built count even when the wire later eats them — the host
  // *acted*; retransmits and probes during a quiet stretch are progress.
  stack::TcpLayer& tcp = host.tcp();
  for (stack::PcbId id = 0; id < tcp.pcb_count(); ++id)
    sum += tcp.pcb_view(id).stats.segs_out;
  return sum;
}

void ProgressWatchdog::on_pass() {
  ++stats_.passes;
  bool fleet_cleared = true;
  for (const auto& cleared : clearances_) {
    if (!cleared()) {
      fleet_cleared = false;
      break;
    }
  }
  for (Tracked& t : hosts_) {
    const std::uint64_t fp = progress_fingerprint(*t.host);
    const bool cleared =
        fleet_cleared &&
        (t.injector == nullptr || t.injector->faults_cleared());
    const bool moved = fp != t.fingerprint;
    t.fingerprint = fp;
    if (!cleared || moved || occupancy(*t.host) == 0) {
      t.stalled = 0;
      continue;
    }
    ++t.stalled;
    if (t.stalled >= cfg_.stall_passes && !t.flagged) {
      t.flagged = true;
      ++stats_.stalls_flagged;
      char line[160];
      std::snprintf(line, sizeof line,
                    "%s holds %llu queued units with zero progress for "
                    "%llu passes",
                    t.host->name().c_str(),
                    static_cast<unsigned long long>(occupancy(*t.host)),
                    static_cast<unsigned long long>(t.stalled));
      violations_.emplace_back(line);
    }
  }
}

void ProgressWatchdog::publish(obs::Registry& registry,
                               std::string_view prefix) const {
  const std::string p(prefix);
  registry.counter(p + ".passes").set(stats_.passes);
  registry.counter(p + ".stalls_flagged").set(stats_.stalls_flagged);
}

}  // namespace ldlp::recover
