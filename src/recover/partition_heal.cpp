#include "recover/partition_heal.hpp"

namespace ldlp::recover {

check::DeliveryOracle& PartitionHealOracle::oracle_for(
    const std::string& dst) {
  auto it = by_dst_.find(dst);
  if (it == by_dst_.end()) {
    it = by_dst_.emplace(dst, std::make_unique<check::DeliveryOracle>())
             .first;
    it->second->set_allow_truncation(allow_truncation_);
  }
  return *it->second;
}

PartitionHealOracle::PairId PartitionHealOracle::open_pair(
    const std::string& src, const std::string& dst) {
  const PairId id = static_cast<PairId>(pairs_.size());
  pairs_.push_back({dst, oracle_for(dst).open_stream(src + "->" + dst)});
  return id;
}

stack::SocketTap& PartitionHealOracle::rx_tap(const std::string& dst) {
  return oracle_for(dst);
}

void PartitionHealOracle::sent(PairId pair,
                               std::span<const std::uint8_t> bytes) {
  const Pair& p = pairs_.at(pair);
  by_dst_.at(p.dst)->stream_sent(p.flow, bytes);
}

void PartitionHealOracle::bind_rx(PairId pair, stack::SocketId socket) {
  const Pair& p = pairs_.at(pair);
  by_dst_.at(p.dst)->bind_stream_rx(p.flow, socket);
}

void PartitionHealOracle::set_allow_truncation(bool allow) noexcept {
  allow_truncation_ = allow;
  for (auto& [dst, oracle] : by_dst_) oracle->set_allow_truncation(allow);
}

bool PartitionHealOracle::finalize() {
  bool all_ok = true;
  for (auto& [dst, oracle] : by_dst_) all_ok &= oracle->finalize();
  return all_ok;
}

bool PartitionHealOracle::ok() const {
  for (const auto& [dst, oracle] : by_dst_)
    if (!oracle->ok()) return false;
  return true;
}

std::vector<std::string> PartitionHealOracle::violations() const {
  std::vector<std::string> all;
  for (const auto& [dst, oracle] : by_dst_)
    for (const std::string& v : oracle->violations())
      all.push_back("rx@" + dst + ": " + v);
  return all;
}

check::OracleStats PartitionHealOracle::stats() const {
  check::OracleStats sum;
  for (const auto& [dst, oracle] : by_dst_) {
    const check::OracleStats& s = oracle->stats();
    sum.stream_bytes_sent += s.stream_bytes_sent;
    sum.stream_bytes_delivered += s.stream_bytes_delivered;
    sum.datagrams_sent += s.datagrams_sent;
    sum.datagrams_delivered += s.datagrams_delivered;
    sum.datagram_duplicates += s.datagram_duplicates;
    sum.violations += s.violations;
  }
  return sum;
}

void PartitionHealOracle::publish(obs::Registry& registry,
                                  std::string_view prefix) const {
  const check::OracleStats s = stats();
  const std::string p(prefix);
  registry.counter(p + ".pairs").set(pairs_.size());
  registry.counter(p + ".stream_bytes_sent").set(s.stream_bytes_sent);
  registry.counter(p + ".stream_bytes_delivered")
      .set(s.stream_bytes_delivered);
  registry.counter(p + ".violations").set(s.violations);
}

}  // namespace ldlp::recover
