// PartitionHealOracle: exactly-once across a healed cut.
//
// The ConvergenceOracle says the fleet *settled* after a partition; this
// oracle says it settled *correctly*. The harness stripes stream traffic
// across host pairs that the fault plan will cut — some bytes sent
// before the partition, some into it (and retransmitted across it), some
// after the heal — and the oracle asserts the full transport contract on
// every pair: each stream's bytes arrive exactly once, in order,
// byte-exact, with nothing lost at the cut and nothing replayed by the
// heal.
//
// Mechanically it is a per-receiving-host sheaf of check::DeliveryOracle
// taps (SocketIds are host-local, so each receiver needs its own tap),
// with pair-granular flow bookkeeping on top and one aggregated verdict.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "check/oracle.hpp"
#include "obs/metrics.hpp"
#include "stack/socket_layer.hpp"

namespace ldlp::recover {

class PartitionHealOracle {
 public:
  using PairId = std::uint32_t;

  /// Open a unidirectional src -> dst stream pair. `dst` keys the
  /// receive-side tap: install rx_tap(dst) on the destination host's
  /// SocketLayer (one tap per receiving host, shared by all its pairs).
  [[nodiscard]] PairId open_pair(const std::string& src,
                                 const std::string& dst);

  /// The SocketTap for deliveries on host `dst` (created on first use).
  [[nodiscard]] stack::SocketTap& rx_tap(const std::string& dst);

  /// Send-side ground truth for the pair's stream.
  void sent(PairId pair, std::span<const std::uint8_t> bytes);

  /// Bind the receiving socket (on the pair's dst host) to the pair.
  void bind_rx(PairId pair, stack::SocketId socket);

  /// Forwarded to every per-host oracle (current and future): host
  /// restarts legitimately truncate streams.
  void set_allow_truncation(bool allow) noexcept;

  /// End-of-run: every pair's stream must be complete (unless truncation
  /// is allowed). Returns ok().
  bool finalize();

  [[nodiscard]] bool ok() const;
  /// Aggregated violations, each prefixed with the receiving host.
  [[nodiscard]] std::vector<std::string> violations() const;
  [[nodiscard]] check::OracleStats stats() const;
  [[nodiscard]] std::size_t pair_count() const noexcept {
    return pairs_.size();
  }

  /// Mirror totals into an obs registry as <prefix>.* counters.
  void publish(obs::Registry& registry,
               std::string_view prefix = "recover.heal") const;

 private:
  struct Pair {
    std::string dst;
    check::DeliveryOracle::FlowId flow;
  };

  check::DeliveryOracle& oracle_for(const std::string& dst);

  // unique_ptr: the SocketLayer holds the tap pointer for the whole run,
  // so oracle addresses must survive map growth.
  std::map<std::string, std::unique_ptr<check::DeliveryOracle>> by_dst_;
  std::vector<Pair> pairs_;
  bool allow_truncation_ = false;
};

}  // namespace ldlp::recover
