#include "recover/overlay_convergence.hpp"

#include <algorithm>
#include <cstddef>

#include "common/rng.hpp"

namespace ldlp::recover {
namespace {

constexpr std::size_t kMaxViolations = 64;

/// Reach every live node from `start` over the edge set `edges`
/// (undirected adjacency by node id). Returns reached count.
std::size_t reach(const std::vector<std::uint32_t>& ids,
                  const std::vector<std::vector<std::uint32_t>>& adj,
                  std::size_t start) {
  std::vector<bool> seen(ids.size(), false);
  std::vector<std::size_t> frontier{start};
  seen[start] = true;
  std::size_t count = 1;
  while (!frontier.empty()) {
    const std::size_t i = frontier.back();
    frontier.pop_back();
    for (const std::uint32_t peer : adj[i]) {
      const auto it = std::lower_bound(ids.begin(), ids.end(), peer);
      if (it == ids.end() || *it != peer) continue;
      const auto j = static_cast<std::size_t>(it - ids.begin());
      if (seen[j]) continue;
      seen[j] = true;
      ++count;
      frontier.push_back(j);
    }
  }
  return count;
}

}  // namespace

void OverlayConvergenceOracle::violation(std::string what) {
  ++stats_.violations;
  if (violations_.size() < kMaxViolations)
    violations_.push_back(std::move(what));
}

bool OverlayConvergenceOracle::ready() const {
  if (!armed_) return false;
  return std::all_of(clearances_.begin(), clearances_.end(),
                     [](const auto& fn) { return fn(); });
}

std::uint64_t OverlayConvergenceOracle::fingerprint(
    std::span<const check::OverlayView> views) const {
  // Order-independent mix over (self, sorted active, sorted eager) of
  // every live node. splitmix64 per element keeps the hash cheap and
  // deterministic; the per-node hashes are summed so fleet iteration
  // order cannot matter.
  std::uint64_t sum = 0;
  std::vector<std::uint32_t> ids;
  for (const check::OverlayView& v : views) {
    if (!v.live) continue;
    std::uint64_t h = 0x6f766c79ULL;  // "ovly"
    std::uint64_t s = v.self;
    h ^= splitmix64(s);
    for (auto [set, salt] :
         {std::pair{&v.active, 0xac71ULL}, std::pair{&v.eager, 0xea6eULL}}) {
      ids.assign(set->begin(), set->end());
      std::sort(ids.begin(), ids.end());
      for (const std::uint32_t id : ids) {
        std::uint64_t e = (static_cast<std::uint64_t>(id) << 16) ^ salt;
        h = h * 0x100000001b3ULL ^ splitmix64(e);
      }
    }
    sum += h;
  }
  return sum;
}

void OverlayConvergenceOracle::on_pass(
    std::span<const check::OverlayView> views) {
  ++stats_.passes;
  if (!ready()) return;
  ++ready_passes_;

  const std::uint64_t fp = fingerprint(views);
  if (ready_passes_ > 1 && fp == last_fingerprint_) {
    ++stable_run_;
  } else {
    stable_run_ = 0;
  }
  last_fingerprint_ = fp;

  if (converged()) {
    if (stats_.passes_to_converge == 0)
      stats_.passes_to_converge = ready_passes_;
    return;
  }
  if (ready_passes_ > cfg_.budget_passes && !flagged_) {
    flagged_ = true;
    violation("views still churning after " +
              std::to_string(cfg_.budget_passes) + " post-clearance passes");
  }
}

bool OverlayConvergenceOracle::finalize(
    std::span<const check::OverlayView> views) {
  if (!converged() && !flagged_) {
    flagged_ = true;
    violation("finalized before views stabilized (stable run " +
              std::to_string(stable_run_) + "/" +
              std::to_string(cfg_.stable_passes) + ")");
  }

  // Index live nodes; sorted ids let reach() binary-search.
  std::vector<std::uint32_t> ids;
  for (const check::OverlayView& v : views)
    if (v.live) ids.push_back(v.self);
  std::sort(ids.begin(), ids.end());
  if (ids.size() < 2) return ok();

  std::vector<std::vector<std::uint32_t>> active_adj(ids.size());
  std::vector<std::vector<std::uint32_t>> eager_adj(ids.size());
  for (const check::OverlayView& v : views) {
    if (!v.live) continue;
    const auto it = std::lower_bound(ids.begin(), ids.end(), v.self);
    const auto i = static_cast<std::size_t>(it - ids.begin());
    active_adj[i].assign(v.active.begin(), v.active.end());
    // Eager links push payloads one way; a tree is healthy if its
    // *undirected* shape connects everyone (each edge's payload flow is
    // direction-per-source). Treat a->b eager as an undirected edge.
    eager_adj[i].assign(v.eager.begin(), v.eager.end());
  }
  // Symmetrize eager edges (a tree link grafted by one side counts).
  for (std::size_t i = 0; i < ids.size(); ++i) {
    for (const std::uint32_t peer : eager_adj[i]) {
      const auto it = std::lower_bound(ids.begin(), ids.end(), peer);
      if (it == ids.end() || *it != peer) continue;
      const auto j = static_cast<std::size_t>(it - ids.begin());
      if (std::find(eager_adj[j].begin(), eager_adj[j].end(), ids[i]) ==
          eager_adj[j].end())
        eager_adj[j].push_back(ids[i]);
    }
  }

  const std::size_t active_reached = reach(ids, active_adj, 0);
  if (active_reached != ids.size())
    violation("active-link graph disconnected: reached " +
              std::to_string(active_reached) + " of " +
              std::to_string(ids.size()) + " live nodes");
  const std::size_t eager_reached = reach(ids, eager_adj, 0);
  if (eager_reached != ids.size())
    violation("eager-push tree disconnected: reached " +
              std::to_string(eager_reached) + " of " +
              std::to_string(ids.size()) + " live nodes");
  return ok();
}

void OverlayConvergenceOracle::publish(obs::Registry& registry,
                                       std::string_view prefix) const {
  const std::string p(prefix);
  registry.counter(p + ".passes").set(stats_.passes);
  registry.counter(p + ".passes_to_converge").set(stats_.passes_to_converge);
  registry.counter(p + ".violations").set(stats_.violations);
}

}  // namespace ldlp::recover
