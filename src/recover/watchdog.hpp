// ProgressWatchdog: flags hosts that hold work but do none.
//
// The ConvergenceOracle judges end states; the watchdog catches a
// different pathology — a host whose queues are non-empty (graph
// backlog, device ring, TCP send buffers, retransmit queues) while its
// progress counters stand perfectly still for N consecutive scheduler
// passes. A healthy stalled connection still *does* things (retransmits,
// probes, drops); total silence with work pending means a timer was
// never armed or an event was lost — the class of bug the PR-4 persist
// fix repaired, now guarded permanently.
//
// Like the oracle, the watchdog only arms once the host's faults have
// cleared: during a partition or device stall, frozen progress is the
// fault's job, not a bug.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "fault/injector.hpp"
#include "obs/metrics.hpp"
#include "stack/host.hpp"

namespace ldlp::recover {

struct WatchdogConfig {
  /// Consecutive zero-progress passes (with work pending) before a host
  /// is flagged. Must exceed the longest sanctioned silent gap — the
  /// capped retransmit backoff (rto_max 8 s = 160 passes at the chaos
  /// harness's 50 ms tick) — with margin.
  std::uint64_t stall_passes = 400;
};

struct WatchdogStats {
  std::uint64_t passes = 0;
  std::uint64_t stalls_flagged = 0;
};

class ProgressWatchdog {
 public:
  explicit ProgressWatchdog(WatchdogConfig cfg = {}) : cfg_(cfg) {}

  /// Track a host. `injector` may be nullptr (treated as always cleared).
  void add_host(stack::Host& host, fault::FaultInjector* injector = nullptr);

  /// Extra fleet-wide clearance ANDed with each host's injector: while
  /// any clearance is false (e.g. the fabric still has an active
  /// topology fault), frozen progress is the fault's doing, not a stall.
  void add_clearance(std::function<bool()> cleared) {
    clearances_.push_back(std::move(cleared));
  }

  /// Call once per scheduler pass.
  void on_pass();

  [[nodiscard]] bool ok() const noexcept { return violations_.empty(); }
  [[nodiscard]] const std::vector<std::string>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] const WatchdogStats& stats() const noexcept { return stats_; }

  /// Mirror totals into an obs registry as <prefix>.* counters.
  void publish(obs::Registry& registry,
               std::string_view prefix = "recover.watchdog") const;

  /// Work currently held anywhere in the host (exposed for tests).
  [[nodiscard]] static std::uint64_t occupancy(stack::Host& host);
  /// Monotone "things happened" sum — any processed, dropped, sent or
  /// received unit moves it (exposed for tests).
  [[nodiscard]] static std::uint64_t progress_fingerprint(stack::Host& host);

 private:
  struct Tracked {
    stack::Host* host;
    fault::FaultInjector* injector;
    std::uint64_t fingerprint = 0;
    std::uint64_t stalled = 0;
    bool flagged = false;
  };

  WatchdogConfig cfg_;
  std::vector<Tracked> hosts_;
  std::vector<std::function<bool()>> clearances_;
  std::vector<std::string> violations_;
  WatchdogStats stats_;
};

}  // namespace ldlp::recover
