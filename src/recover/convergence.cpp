#include "recover/convergence.hpp"

#include <cstdio>

namespace ldlp::recover {

void ConvergenceOracle::add_host(stack::Host& host,
                                 fault::FaultInjector* injector) {
  hosts_.push_back({&host, injector});
}

bool ConvergenceOracle::ready() const {
  if (!armed_) return false;
  for (const Tracked& t : hosts_) {
    if (t.injector != nullptr && !t.injector->faults_cleared()) return false;
  }
  for (const auto& cleared : clearances_) {
    if (!cleared()) return false;
  }
  return true;
}

bool ConvergenceOracle::pcb_converged(const stack::TcpPcb& p) noexcept {
  switch (p.state) {
    case stack::TcpState::kClosed:
    case stack::TcpState::kListen:
    case stack::TcpState::kTimeWait:
      return true;
    case stack::TcpState::kEstablished:
    case stack::TcpState::kCloseWait:
      // Quiescent both ways: nothing left to send, nothing in flight,
      // no gap the peer still owes us, no FIN waiting to go out.
      return p.send_buffer.empty() && p.rtx.empty() && p.ooo.empty() &&
             !p.fin_queued;
    default:
      // Handshake and close intermediates owe a peer interaction; they
      // must resolve (forward or via reset) within the budget.
      return false;
  }
}

bool ConvergenceOracle::converged() const {
  for (const Tracked& t : hosts_) {
    stack::TcpLayer& tcp = t.host->tcp();
    for (stack::PcbId id = 0; id < tcp.pcb_count(); ++id) {
      if (!pcb_converged(tcp.pcb_view(id))) return false;
    }
  }
  return true;
}

void ConvergenceOracle::on_pass() {
  ++stats_.passes;
  if (!ready()) {
    ready_passes_ = 0;
    return;
  }
  ++ready_passes_;
  if (converged()) {
    if (stats_.passes_to_converge == 0)
      stats_.passes_to_converge = ready_passes_;
    return;
  }
  stats_.passes_to_converge = 0;  // regressed; only the final state counts
  if (ready_passes_ > cfg_.budget_passes && !flagged_) {
    flagged_ = true;
    flag_violations();
  }
}

void ConvergenceOracle::flag_violations() {
  char line[192];
  for (const Tracked& t : hosts_) {
    stack::TcpLayer& tcp = t.host->tcp();
    for (stack::PcbId id = 0; id < tcp.pcb_count(); ++id) {
      const stack::TcpPcb& p = tcp.pcb_view(id);
      if (pcb_converged(p)) continue;
      std::snprintf(line, sizeof line,
                    "%s pcb%u %s not converged %llu passes after faults "
                    "cleared (send_buf=%zu rtx=%zu ooo=%zu fin_queued=%d)",
                    t.host->name().c_str(), id,
                    std::string(tcp_state_name(p.state)).c_str(),
                    static_cast<unsigned long long>(ready_passes_),
                    p.send_buffer.size(), p.rtx.size(), p.ooo.size(),
                    p.fin_queued ? 1 : 0);
      violations_.emplace_back(line);
      ++stats_.violations;
    }
  }
  if (violations_.empty()) {
    // Defensive: flag_violations is only called when !converged(), but a
    // pcb freed between the check and the walk must still leave a trace.
    violations_.emplace_back("convergence budget exceeded");
    ++stats_.violations;
  }
}

void ConvergenceOracle::publish(obs::Registry& registry,
                                std::string_view prefix) const {
  const std::string p(prefix);
  registry.counter(p + ".passes").set(stats_.passes);
  registry.counter(p + ".passes_to_converge").set(stats_.passes_to_converge);
  registry.counter(p + ".violations").set(stats_.violations);
}

}  // namespace ldlp::recover
