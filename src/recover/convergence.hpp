// ldlp::recover — liveness oracles for post-fault convergence.
//
// ldlp::check asks "did anything wrong ever happen?" (safety); this
// subsystem asks "did the stack come back?" (liveness). The paper's
// batching argument assumes forward progress — a wedged connection
// batches nothing — so after the last fault episode ends, every TCP
// connection must either finish its work (deliver the remaining stream
// bytes and close) or reset cleanly, within a bounded number of
// scheduler passes. The ConvergenceOracle enforces that bound.
//
// Protocol: the harness calls add_host() for each host (with its fault
// injector, so the oracle knows when adversity has truly drained), calls
// arm() at the moment the application will offer no further work, and
// calls on_pass() once per scheduler tick. The liveness budget starts
// counting only when both conditions hold — armed and faults cleared —
// because convergence is only owed once the world stops changing.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "fault/injector.hpp"
#include "obs/metrics.hpp"
#include "stack/host.hpp"

namespace ldlp::recover {

struct ConvergenceConfig {
  /// Scheduler passes allowed between "armed + faults cleared" and every
  /// connection converged. The default clears the worst sanctioned path:
  /// a full retransmit backoff ladder into a reset (~950 passes at the
  /// chaos harness's 50 ms tick) plus keepalive teardown of a half-open
  /// peer, with margin.
  std::uint64_t budget_passes = 2000;
};

struct ConvergenceStats {
  std::uint64_t passes = 0;             ///< on_pass() calls observed.
  std::uint64_t passes_to_converge = 0; ///< Budget passes used (0 = not yet).
  std::uint64_t violations = 0;
};

class ConvergenceOracle {
 public:
  explicit ConvergenceOracle(ConvergenceConfig cfg = {}) : cfg_(cfg) {}

  /// Track a host. `injector` may be nullptr (treated as always cleared).
  void add_host(stack::Host& host, fault::FaultInjector* injector = nullptr);

  /// Extra "adversity has drained" predicate ANDed into ready() alongside
  /// the per-host injectors. Fleet runs hang the fabric's
  /// faults_cleared() here — the convergence budget must not start while
  /// a topology-scoped partition is still cutting links or frames are
  /// still on a wire.
  void add_clearance(std::function<bool()> cleared) {
    clearances_.push_back(std::move(cleared));
  }

  /// The application will offer no more work (sends, connects, closes all
  /// issued); from here on, quiescence is owed.
  void arm() noexcept { armed_ = true; }

  /// Call once per scheduler pass (after the hosts' advance+pump tick).
  void on_pass();

  [[nodiscard]] bool armed() const noexcept { return armed_; }
  /// Armed and every tracked injector reports faults cleared.
  [[nodiscard]] bool ready() const;
  /// Every connection on every tracked host is converged right now.
  [[nodiscard]] bool converged() const;
  /// ready() && converged() — the harness's drain loop may stop here.
  [[nodiscard]] bool settled() const { return ready() && converged(); }

  [[nodiscard]] bool ok() const noexcept { return violations_.empty(); }
  [[nodiscard]] const std::vector<std::string>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] const ConvergenceStats& stats() const noexcept {
    return stats_;
  }

  /// Mirror totals into an obs registry as <prefix>.* counters.
  void publish(obs::Registry& registry,
               std::string_view prefix = "recover.convergence") const;

  /// A single connection's convergence predicate: terminal (Closed,
  /// Listen, TimeWait) or quiescent with nothing owed in either
  /// direction. FinWait2/Closing/LastAck are *not* converged — they owe
  /// a peer interaction that must complete (or keepalive must cut short)
  /// within the budget.
  [[nodiscard]] static bool pcb_converged(const stack::TcpPcb& p) noexcept;

 private:
  struct Tracked {
    stack::Host* host;
    fault::FaultInjector* injector;
  };

  void flag_violations();

  ConvergenceConfig cfg_;
  std::vector<Tracked> hosts_;
  std::vector<std::function<bool()>> clearances_;
  bool armed_ = false;
  bool flagged_ = false;
  std::uint64_t ready_passes_ = 0;
  std::vector<std::string> violations_;
  ConvergenceStats stats_;
};

}  // namespace ldlp::recover
