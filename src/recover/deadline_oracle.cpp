#include "recover/deadline_oracle.hpp"

namespace ldlp::recover {

void DeadlineOracle::attach(stack::Host& host, std::string label) {
  auto state = std::make_unique<HostState>();
  state->host = &host;
  state->label = label.empty() ? host.name() : std::move(label);
  HostState* hs = state.get();
  host.wheel().set_observer(
      [this, hs](const time::TimerEvent& event) { on_event(*hs, event); });
  hosts_.push_back(std::move(state));
}

void DeadlineOracle::detach() {
  for (const auto& hs : hosts_) hs->host->wheel().set_observer(nullptr);
  hosts_.clear();
}

void DeadlineOracle::on_event(HostState& hs, const time::TimerEvent& event) {
  using Kind = time::TimerEvent::Kind;
  switch (event.kind) {
    case Kind::kArm:
      ++stats_.arms;
      hs.armed[event.id] = Armed{event.deadline, event.cls};
      break;
    case Kind::kFire:
    case Kind::kSpurious:
      ++stats_.fires;
      hs.armed.erase(event.id);
      break;
    case Kind::kCancel:
      ++stats_.cancels;
      hs.armed.erase(event.id);
      break;
    case Kind::kShed:
      ++stats_.sheds;
      hs.armed.erase(event.id);
      // Shedding cadence under pressure is degraded service; shedding a
      // liveness timer is a wedged connection — the shed_guard mutation.
      if (event.cls == time::TimerClass::kLiveness)
        violation(hs.label + ": liveness timer (deadline " +
                  std::to_string(event.deadline) + ") shed at t=" +
                  std::to_string(event.now) +
                  " — retransmit/probe will never fire");
      break;
  }
}

void DeadlineOracle::on_pass() {
  ++stats_.passes;
  sweep();
}

void DeadlineOracle::sweep() {
  for (const auto& hs : hosts_) {
    if (hs->overdue_flagged) continue;
    // A timer is lost iff the wheel ADVANCED while it sat armed past its
    // deadline: advance_to fires everything due, so surviving an advance
    // means the wheel dropped it. Each overdue entry is first *observed*
    // (stamping the wheel time it was seen armed at) and only condemned
    // on a later sweep once the wheel has moved beyond that stamp. Two
    // clock-fault regimes make the naive "overdue right now" check
    // false-positive, and this two-step dodges both: endpoints arm
    // fabric-time deadlines that a skew-fast wheel sees as already past
    // (legal — they fire on the next advance, before a second sweep can
    // see the wheel advance past the stamp), and a stalled wheel holds
    // due timers frozen (wheel time never passes the stamp).
    const double now = hs->host->wheel().now();
    for (auto& [id, armed] : hs->armed) {
      if (armed.deadline + cfg_.lateness_slack_sec >= now) continue;
      if (armed.overdue_seen < 0.0) {
        armed.overdue_seen = now;
        continue;
      }
      if (now <= armed.overdue_seen) continue;
      hs->overdue_flagged = true;
      violation(hs->label + ": " +
                std::string(time::timer_class_name(armed.cls)) +
                " timer armed for " + std::to_string(armed.deadline) +
                " still pending at wheel time " + std::to_string(now));
      break;
    }
  }
}

void DeadlineOracle::violation(const std::string& what) {
  violations_.push_back(what);
}

void DeadlineOracle::publish(obs::Registry& registry,
                             std::string_view prefix) const {
  const std::string p(prefix);
  registry.counter(p + ".arms").set(stats_.arms);
  registry.counter(p + ".fires").set(stats_.fires);
  registry.counter(p + ".cancels").set(stats_.cancels);
  registry.counter(p + ".sheds").set(stats_.sheds);
  registry.counter(p + ".violations").set(violations_.size());
}

}  // namespace ldlp::recover
