#include "stack/udp_layer.hpp"

#include <vector>

#include "common/byteorder.hpp"
#include "stack/footprints.hpp"
#include "wire/checksum.hpp"
#include "wire/udp.hpp"

namespace ldlp::stack {

bool UdpLayer::bind(std::uint16_t port, SocketId socket) {
  return ports_.emplace(port, socket).second;
}

void UdpLayer::unbind(std::uint16_t port) { ports_.erase(port); }

void UdpLayer::process(core::Message msg) {
  ++stats_.rx;
  std::uint8_t* base = msg.packet.pullup(wire::kUdpHeaderLen);
  if (base == nullptr) {
    ++stats_.rx_bad;
    return;
  }
  const auto header = wire::parse_udp({base, wire::kUdpHeaderLen});
  if (!header.has_value() || header->length > msg.packet.length()) {
    ++stats_.rx_bad;
    return;
  }
  const std::uint32_t src_ip = flow_src(msg.flow_id);
  const std::uint32_t dst_ip = flow_dst(msg.flow_id);
  if (header->checksum != 0) {
    trace_fn(Fn::kInCksum, 1.0, 4.0);
    const std::uint16_t sum = wire::transport_cksum(
        msg.packet, 0, header->length, src_ip, dst_ip,
        static_cast<std::uint8_t>(wire::IpProto::kUdp));
    if (sum != 0) {
      ++stats_.rx_bad;
      return;
    }
  }
  const auto it = ports_.find(header->dst_port);
  if (it == ports_.end()) {
    ++stats_.rx_no_port;
    return;
  }
  Datagram dgram;
  dgram.from_ip = src_ip;
  dgram.from_port = header->src_port;
  const std::uint32_t payload_len = header->length - wire::kUdpHeaderLen;
  dgram.payload.resize(payload_len);
  if (!msg.packet.copy_out(wire::kUdpHeaderLen, dgram.payload)) {
    ++stats_.rx_bad;
    return;
  }
  trace_pkt(trace::RefKind::kRead, payload_len);
  sockets_.deliver_datagram(it->second, std::move(dgram));
}

void UdpLayer::send(std::uint16_t src_port, std::uint32_t dst_ip,
                    std::uint16_t dst_port,
                    std::span<const std::uint8_t> payload) {
  ++stats_.tx;
  if (send_tap_) send_tap_(src_port, dst_ip, dst_port, payload);
  buf::Packet pkt = buf::Packet::make(ip_.pool());
  if (!pkt) return;
  std::uint8_t header_bytes[wire::kUdpHeaderLen];
  wire::UdpHeader header;
  header.src_port = src_port;
  header.dst_port = dst_port;
  header.length =
      static_cast<std::uint16_t>(wire::kUdpHeaderLen + payload.size());
  header.checksum = 0;
  wire::write_udp(header, header_bytes);
  if (!pkt.append(header_bytes) || !pkt.append(payload)) return;
  // Compute the real checksum now that the bytes are in place.
  const std::uint16_t sum = wire::transport_cksum(
      pkt, 0, header.length, ip_.ip_addr(), dst_ip,
      static_cast<std::uint8_t>(wire::IpProto::kUdp));
  std::uint8_t sum_bytes[2];
  store_be16(sum_bytes, sum == 0 ? 0xffff : sum);
  if (!pkt.copy_in(6, sum_bytes)) return;
  pkt.sync_pkt_len();
  ip_.output(std::move(pkt), dst_ip, wire::IpProto::kUdp);
}

}  // namespace ldlp::stack
