// Host: a complete stack instance — pool, device, layers, scheduler.
//
// Wires device -> ethernet -> ip -> {tcp, udp} -> socket through a
// core::StackGraph, so the same host runs under conventional or LDLP
// scheduling with one switch. pump() is the softirq loop: it pulls every
// frame waiting in the adaptor into mbufs and hands them to the graph —
// under LDLP that is precisely the batch-formation point of section 3.1.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "core/stack_graph.hpp"
#include "time/timer_wheel.hpp"
#include "time/virtual_clock.hpp"
#include "stack/eth_layer.hpp"
#include "stack/igmp.hpp"
#include "stack/ip_layer.hpp"
#include "stack/netdev.hpp"
#include "stack/socket_layer.hpp"
#include "stack/tcp_layer.hpp"
#include "stack/udp_layer.hpp"

namespace ldlp::stack {

struct HostConfig {
  std::string name = "host";
  wire::MacAddr mac{0x02, 0, 0, 0, 0, 1};
  std::uint32_t ip = 0;
  std::uint16_t mtu = 1500;
  std::size_t pool_mbufs = 8192;
  std::size_t pool_clusters = 2048;
  core::SchedMode mode = core::SchedMode::kConventional;
  std::size_t batch_limit = 0;  ///< LDLP entry-layer yield bound; 0 = all.
  std::size_t rx_queues = 1;    ///< RX queues (flow-hash sharded when > 1).
  bool rx_symmetric = false;    ///< Co-steer both directions of a flow.
  TcpConfig tcp{};
};

class Host {
 public:
  explicit Host(HostConfig config);

  Host(const Host&) = delete;
  Host& operator=(const Host&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return cfg_.name; }
  [[nodiscard]] NetDevice& device() noexcept { return dev_; }
  [[nodiscard]] EthLayer& eth() noexcept { return *eth_; }
  [[nodiscard]] Ip4Layer& ip() noexcept { return *ip_; }
  [[nodiscard]] TcpLayer& tcp() noexcept { return *tcp_; }
  [[nodiscard]] UdpLayer& udp() noexcept { return *udp_; }
  [[nodiscard]] IgmpHost& igmp() noexcept { return *igmp_; }
  [[nodiscard]] SocketLayer& sockets() noexcept { return *sock_; }
  [[nodiscard]] core::StackGraph& graph() noexcept { return graph_; }
  [[nodiscard]] buf::MbufPool& pool() noexcept { return pool_; }

  /// This host's *virtual* clock — what its timers, RTOs and TTLs see.
  /// Identical to real_now() unless clock-fault episodes are active.
  [[nodiscard]] double now() const noexcept { return now_; }
  /// The fabric/driver clock: the sum of advance() deltas.
  [[nodiscard]] double real_now() const noexcept { return real_now_; }

  /// The host-owned hierarchical timer wheel. Every protocol timer on
  /// this host (TCP, ARP, and any application endpoint living here)
  /// arms through it; advance() turns it. next_deadline() is what lets
  /// ldlp::net::Fabric skip tick rounds for quiescent hosts.
  [[nodiscard]] time::TimerWheel& wheel() noexcept { return wheel_; }
  [[nodiscard]] const time::TimerWheel& wheel() const noexcept {
    return wheel_;
  }

  /// Attach a fault injector to this host: its clock follows the host's,
  /// the device applies its frame-scope episodes, and advance() drives
  /// its pool-pressure episodes against this host's pool. nullptr
  /// detaches (any held pool buffers are released).
  void attach_fault(fault::FaultInjector* injector) noexcept;

  /// Advance simulated time and fire protocol timers.
  void advance(double dt_sec);

  /// Absolute-time variant for event-engine drivers (ldlp::net::Fabric):
  /// snap the host clock to `t_sec` (>= real_now) and fire timers once.
  /// The per-host advance(dt) loops disappear — one shared
  /// eventsim::EventQueue owns time and calls this on every host tick.
  /// `t_sec` is *real* (fabric) time; the virtual clock follows it
  /// through any active clock-fault episodes.
  void advance_to(double t_sec) {
    advance(t_sec > real_now_ ? t_sec - real_now_ : 0.0);
  }

  /// Crash and reboot in place: TCP PCBs, socket buffers, the ARP cache,
  /// partial reassemblies, and the device RX ring are wiped — none of
  /// that survives a power cycle — while the scheduler's in-flight queues
  /// (software, conceptually re-run after boot) and every statistics
  /// counter (the observer's ledger, not the host's) are preserved, so
  /// the chaos conservation laws keep holding across the crash.
  /// advance() calls this when the attached injector reports a pending
  /// FaultKind::kHostRestart episode; tests may call it directly.
  void restart();

  /// Drain the device RX rings through the stack. Returns frames handled.
  /// Under LDLP each RX queue's backlog is injected and the graph then
  /// runs layer by layer — one batch per queue, so with rx_queues > 1 each
  /// shard's flows stay together and its d-cache state stays hot while
  /// i-cache amortisation happens within the shard's batch. Conventionally
  /// each frame runs to completion; with one queue this is the classic
  /// single-ring pump, bit for bit.
  std::size_t pump(std::size_t max_frames = SIZE_MAX);

  /// Drain one RX queue only (the per-shard pump step): injects that
  /// queue's frames and, under LDLP, runs the graph for that shard's
  /// batch. Returns frames handled. Does not run the post-pass hook;
  /// callers driving shards individually invoke run_post_pass() after the
  /// last shard of a pass.
  std::size_t pump_queue(std::size_t queue, std::size_t max_frames = SIZE_MAX);

  /// The device-interrupt half of the pump, alone: vector through the
  /// interrupt glue and copy the next frame of RX `queue` out of device
  /// memory into a fresh mbuf chain. Empty when the queue is idle or the
  /// pool is exhausted (frames then stay in device memory). ldlp::pipe
  /// uses this as the intake of its parse stage; pump_queue() is exactly
  /// pull_frame + inject_rx in a loop.
  [[nodiscard]] buf::Packet pull_frame(std::size_t queue);

  /// The softirq half: hand one pulled frame to the stack's entry layer.
  /// Conventional mode processes it through the whole stack here; LDLP
  /// mode enqueues it and the caller decides the schedule — graph().run()
  /// for a layer-blocked batch, run_stage_pass() for a pipeline stage.
  void inject_rx(buf::Packet frame);

  /// Fire the post-pass hook (invariant auditors) if any is attached.
  void run_post_pass() {
    if (post_pass_hook_) post_pass_hook_();
  }

  /// Hook run at the end of every pump() that handled at least one frame
  /// — i.e. after every scheduler pass. Chaos builds hang the ldlp::check
  /// invariant auditors here; clean builds leave it empty (one branch).
  void set_post_pass_hook(std::function<void()> hook) {
    post_pass_hook_ = std::move(hook);
  }

  /// Hook run at the end of restart(), after kernel state is wiped.
  /// Application endpoints living on this host (overlay nodes, RPC
  /// servers) hang their own crash-recovery here: whatever they would
  /// lose in a power cycle gets wiped in the same instant the kernel's
  /// does. Empty by default (one branch).
  void set_restart_hook(std::function<void()> hook) {
    restart_hook_ = std::move(hook);
  }

 private:
  HostConfig cfg_;
  double now_ = 0.0;       ///< Virtual time (timer-visible).
  double real_now_ = 0.0;  ///< Driver/fabric time (sum of advance dts).
  time::TimerWheel wheel_;
  time::VirtualClock vclock_;
  buf::MbufPool pool_;
  NetDevice dev_;
  std::unique_ptr<EthLayer> eth_;
  std::unique_ptr<Ip4Layer> ip_;
  std::unique_ptr<TcpLayer> tcp_;
  std::unique_ptr<UdpLayer> udp_;
  std::unique_ptr<SocketLayer> sock_;
  std::unique_ptr<IgmpHost> igmp_;
  core::StackGraph graph_;
  core::LayerId eth_id_ = core::kNoLayer;
  fault::FaultInjector* fault_ = nullptr;
  std::function<void()> post_pass_hook_;
  std::function<void()> restart_hook_;
};

}  // namespace ldlp::stack
