#include "stack/arp_cache.hpp"

#include <algorithm>
#include <limits>

namespace ldlp::stack {

std::optional<wire::MacAddr> ArpCache::lookup(std::uint32_t ip) const noexcept {
  const auto it = table_.find(ip);
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

void ArpCache::insert(std::uint32_t ip, const wire::MacAddr& mac) {
  table_[ip] = mac;
}

bool ArpCache::hold(std::uint32_t ip, buf::Packet pkt) {
  PendingState& state = pending_[ip];
  if (state.packets.size() >= max_pending_ ||
      pending_total_ >= max_pending_total_) {
    ++stats_.park_drops;
    return false;
  }
  state.packets.push_back(std::move(pkt));
  ++pending_total_;
  ++stats_.parked;
  return true;
}

bool ArpCache::should_request(std::uint32_t ip) {
  PendingState& state = pending_[ip];
  ++state.parks;
  if (state.parks < state.next_request) {
    ++stats_.requests_suppressed;
    return false;
  }
  state.next_request = state.parks + state.gap;
  state.gap = std::min(state.gap * 2, kMaxRequestGap);
  ++stats_.requests_allowed;
  return true;
}

bool ArpCache::audit(std::string* why) const {
  std::size_t counted = 0;
  for (const auto& [ip, state] : pending_) {
    counted += state.packets.size();
    if (state.packets.size() > max_pending_) {
      if (why != nullptr)
        *why = "per-IP pending queue exceeds cap (" +
               std::to_string(state.packets.size()) + " > " +
               std::to_string(max_pending_) + ")";
      return false;
    }
    if (!state.packets.empty() && table_.count(ip) != 0) {
      if (why != nullptr)
        *why = "IP has parked packets while already resolved";
      return false;
    }
  }
  if (counted != pending_total_) {
    if (why != nullptr)
      *why = "pending_total accounting drift (" + std::to_string(counted) +
             " queued vs " + std::to_string(pending_total_) + " counted)";
    return false;
  }
  if (pending_total_ > max_pending_total_) {
    if (why != nullptr)
      *why = "global pending count exceeds cap";
    return false;
  }
  return true;
}

std::vector<std::uint32_t> ArpCache::poll_retries(double now) {
  std::vector<std::uint32_t> due;
  for (auto it = pending_.begin(); it != pending_.end();) {
    PendingState& state = it->second;
    if (state.packets.empty()) {
      ++it;
      continue;
    }
    if (state.retry_deadline == 0.0) {
      // First timer pass after the park: arm only. The park itself
      // already sent a request; the timer exists for when that one dies.
      state.retry_deadline = now + state.retry_gap_sec;
      ++it;
      continue;
    }
    if (now < state.retry_deadline) {
      ++it;
      continue;
    }
    if (state.tries >= kMaxTries) {
      ++stats_.resolve_failures;
      pending_total_ -= state.packets.size();
      it = pending_.erase(it);  // frees the parked packets
      continue;
    }
    ++state.tries;
    ++stats_.retries;
    state.retry_gap_sec = std::min(state.retry_gap_sec * 2.0, kMaxRetryGapSec);
    state.retry_deadline = now + state.retry_gap_sec;
    due.push_back(it->first);
    ++it;
  }
  return due;
}

void ArpCache::arm_retry(std::uint32_t ip, double now) {
  const auto it = pending_.find(ip);
  if (it == pending_.end()) return;
  PendingState& state = it->second;
  if (state.packets.empty() || state.retry_deadline != 0.0) return;
  state.retry_deadline = now + state.retry_gap_sec;
}

double ArpCache::next_retry_deadline() const noexcept {
  double best = std::numeric_limits<double>::infinity();
  for (const auto& [ip, state] : pending_) {
    if (state.packets.empty() || state.retry_deadline == 0.0) continue;
    best = std::min(best, state.retry_deadline);
  }
  return best;
}

std::vector<buf::Packet> ArpCache::take_pending(std::uint32_t ip) {
  const auto it = pending_.find(ip);
  if (it == pending_.end()) return {};
  std::vector<buf::Packet> out = std::move(it->second.packets);
  pending_.erase(it);
  pending_total_ -= out.size();
  return out;
}

}  // namespace ldlp::stack
