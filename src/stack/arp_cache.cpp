#include "stack/arp_cache.hpp"

#include <algorithm>

namespace ldlp::stack {

std::optional<wire::MacAddr> ArpCache::lookup(std::uint32_t ip) const noexcept {
  const auto it = table_.find(ip);
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

void ArpCache::insert(std::uint32_t ip, const wire::MacAddr& mac) {
  table_[ip] = mac;
}

bool ArpCache::hold(std::uint32_t ip, buf::Packet pkt) {
  PendingState& state = pending_[ip];
  if (state.packets.size() >= max_pending_ ||
      pending_total_ >= max_pending_total_) {
    ++stats_.park_drops;
    return false;
  }
  state.packets.push_back(std::move(pkt));
  ++pending_total_;
  ++stats_.parked;
  return true;
}

bool ArpCache::should_request(std::uint32_t ip) {
  PendingState& state = pending_[ip];
  ++state.parks;
  if (state.parks < state.next_request) {
    ++stats_.requests_suppressed;
    return false;
  }
  state.next_request = state.parks + state.gap;
  state.gap = std::min(state.gap * 2, kMaxRequestGap);
  ++stats_.requests_allowed;
  return true;
}

std::vector<buf::Packet> ArpCache::take_pending(std::uint32_t ip) {
  const auto it = pending_.find(ip);
  if (it == pending_.end()) return {};
  std::vector<buf::Packet> out = std::move(it->second.packets);
  pending_.erase(it);
  pending_total_ -= out.size();
  return out;
}

}  // namespace ldlp::stack
