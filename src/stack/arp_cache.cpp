#include "stack/arp_cache.hpp"

namespace ldlp::stack {

std::optional<wire::MacAddr> ArpCache::lookup(std::uint32_t ip) const noexcept {
  const auto it = table_.find(ip);
  if (it == table_.end()) return std::nullopt;
  return it->second;
}

void ArpCache::insert(std::uint32_t ip, const wire::MacAddr& mac) {
  table_[ip] = mac;
}

bool ArpCache::hold(std::uint32_t ip, buf::Packet pkt) {
  PendingState& state = pending_[ip];
  if (state.packets.size() >= max_pending_) return false;
  state.packets.push_back(std::move(pkt));
  return true;
}

bool ArpCache::should_request(std::uint32_t ip) {
  PendingState& state = pending_[ip];
  ++state.parks;
  return state.parks % 2 == 1;
}

std::vector<buf::Packet> ArpCache::take_pending(std::uint32_t ip) {
  const auto it = pending_.find(ip);
  if (it == pending_.end()) return {};
  std::vector<buf::Packet> out = std::move(it->second.packets);
  pending_.erase(it);
  return out;
}

}  // namespace ldlp::stack
