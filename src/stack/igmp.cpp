#include "stack/igmp.hpp"

#include "common/byteorder.hpp"
#include "stack/ip_layer.hpp"
#include "wire/checksum.hpp"

namespace ldlp::stack {

namespace {
constexpr double kUnsolicitedIntervalSec = 10.0;
constexpr std::uint32_t kUnsolicitedReports = 2;
}  // namespace

std::optional<IgmpMessage> parse_igmp(
    std::span<const std::uint8_t> data) noexcept {
  if (data.size() < kIgmpLen) return std::nullopt;
  if (wire::cksum_simple(data.subspan(0, kIgmpLen)) != 0) return std::nullopt;
  IgmpMessage msg;
  msg.type = static_cast<IgmpType>(data[0]);
  switch (msg.type) {
    case IgmpType::kQuery:
    case IgmpType::kReportV1:
    case IgmpType::kReportV2:
    case IgmpType::kLeave:
      break;
    default:
      return std::nullopt;
  }
  msg.max_resp_deciseconds = data[1];
  msg.group = load_be32(data.data() + 4);
  return msg;
}

std::size_t write_igmp(const IgmpMessage& msg,
                       std::span<std::uint8_t> out) noexcept {
  if (out.size() < kIgmpLen) return 0;
  out[0] = static_cast<std::uint8_t>(msg.type);
  out[1] = msg.max_resp_deciseconds;
  out[2] = out[3] = 0;
  store_be32(out.data() + 4, msg.group);
  const std::uint16_t sum = wire::cksum_simple(out.subspan(0, kIgmpLen));
  store_be16(out.data() + 2, sum);
  return kIgmpLen;
}

IgmpHost::IgmpHost(Ip4Layer& ip, const double* now_sec, std::uint64_t seed)
    : ip_(ip), now_sec_(now_sec), rng_(seed) {}

bool IgmpHost::is_member(std::uint32_t group) const noexcept {
  return groups_.count(group) != 0;
}

void IgmpHost::send_report(std::uint32_t group) {
  ++stats_.reports_sent;
  buf::Packet pkt = buf::Packet::make(ip_.pool());
  if (!pkt) return;
  std::uint8_t bytes[kIgmpLen];
  IgmpMessage msg;
  msg.type = IgmpType::kReportV2;
  msg.max_resp_deciseconds = 0;
  msg.group = group;
  (void)write_igmp(msg, bytes);
  if (!pkt.append(bytes)) return;
  // Reports go to the group itself, TTL 1.
  ip_.output(std::move(pkt), group, wire::IpProto::kIgmp, 1);
}

void IgmpHost::send_leave(std::uint32_t group) {
  ++stats_.leaves_sent;
  buf::Packet pkt = buf::Packet::make(ip_.pool());
  if (!pkt) return;
  std::uint8_t bytes[kIgmpLen];
  IgmpMessage msg;
  msg.type = IgmpType::kLeave;
  msg.max_resp_deciseconds = 0;
  msg.group = group;
  (void)write_igmp(msg, bytes);
  if (!pkt.append(bytes)) return;
  // Leaves go to the all-routers group; all-hosts serves here.
  ip_.output(std::move(pkt), kAllHostsGroup, wire::IpProto::kIgmp, 1);
}

void IgmpHost::join(std::uint32_t group) {
  if (!is_multicast(group) || is_member(group)) return;
  Membership membership;
  membership.we_reported_last = true;
  membership.unsolicited_left = kUnsolicitedReports - 1;
  membership.report_pending = membership.unsolicited_left > 0;
  membership.report_at = now() + rng_.uniform(0.0, kUnsolicitedIntervalSec);
  groups_[group] = membership;
  send_report(group);  // first unsolicited report goes out immediately
}

void IgmpHost::leave(std::uint32_t group) {
  const auto it = groups_.find(group);
  if (it == groups_.end()) return;
  if (it->second.we_reported_last) send_leave(group);
  groups_.erase(it);
}

void IgmpHost::on_message(const IgmpMessage& msg, std::uint32_t from_ip) {
  (void)from_ip;
  switch (msg.type) {
    case IgmpType::kQuery: {
      ++stats_.queries_heard;
      const double max_resp =
          std::max<std::uint8_t>(msg.max_resp_deciseconds, 1) / 10.0;
      for (auto& [group, membership] : groups_) {
        if (msg.group != 0 && msg.group != group) continue;  // targeted
        const double deadline = now() + rng_.uniform(0.0, max_resp);
        if (!membership.report_pending || deadline < membership.report_at) {
          membership.report_pending = true;
          membership.report_at = deadline;
        }
      }
      break;
    }
    case IgmpType::kReportV1:
    case IgmpType::kReportV2: {
      ++stats_.reports_heard;
      const auto it = groups_.find(msg.group);
      if (it != groups_.end() && it->second.report_pending) {
        // Someone else answered for the group: suppress ours.
        it->second.report_pending = false;
        it->second.we_reported_last = false;
        ++stats_.suppressed;
      }
      break;
    }
    case IgmpType::kLeave:
      break;  // router business; hosts ignore
  }
}

void IgmpHost::on_timer() {
  const double t = now();
  for (auto& [group, membership] : groups_) {
    if (!membership.report_pending || t < membership.report_at) continue;
    membership.report_pending = false;
    membership.we_reported_last = true;
    send_report(group);
    if (membership.unsolicited_left > 0) {
      --membership.unsolicited_left;
      if (membership.unsolicited_left > 0) {
        membership.report_pending = true;
        membership.report_at = t + rng_.uniform(0.0, kUnsolicitedIntervalSec);
      }
    }
  }
}

}  // namespace ldlp::stack
