#include "stack/rx_path_trace.hpp"

#include <vector>

#include "stack/host.hpp"
#include "wire/ipv4.hpp"

namespace ldlp::stack {

namespace {

/// Pump both sides until quiescent (handshake, ACK exchanges).
void settle(Host& a, Host& b, int rounds = 16) {
  for (int i = 0; i < rounds; ++i) {
    a.pump();
    b.pump();
    if (a.device().rx_pending() == 0 && b.device().rx_pending() == 0) break;
  }
}

}  // namespace

bool trace_tcp_receive_ack(StackTracer& tracer, trace::TraceBuffer& buffer,
                           const RxTraceOptions& options) {
  HostConfig ca;
  ca.name = "sender";
  ca.mac = {0x02, 0, 0, 0, 0, 0xaa};
  ca.ip = wire::ip_from_parts(10, 0, 0, 1);
  HostConfig cb;
  cb.name = "receiver";
  cb.mac = {0x02, 0, 0, 0, 0, 0xbb};
  cb.ip = wire::ip_from_parts(10, 0, 0, 2);
  // Suppress the receiver's inline every-2nd-segment ACK so the ACK is
  // sent from the exit phase, as in the paper's Table 2 flow.
  cb.tcp.delack_every = 1000;
  cb.tcp.delack_timeout_sec = 10.0;

  Host sender(ca);
  Host receiver(cb);
  NetDevice::connect(sender.device(), receiver.device());

  const PcbId listener = receiver.tcp().listen(5000);
  (void)listener;
  PcbId accepted = kNoPcb;
  receiver.tcp().set_accept_hook([&](PcbId id) { accepted = id; });

  const PcbId conn =
      sender.tcp().connect(wire::ip_from_parts(10, 0, 0, 2), 5000);
  settle(sender, receiver);
  if (sender.tcp().state(conn) != TcpState::kEstablished ||
      accepted == kNoPcb) {
    return false;
  }

  // Prime the path untraced so caches of *state* (ARP, PCB cache) are warm
  // — the paper traces the steady bulk-transfer state.
  std::vector<std::uint8_t> payload(options.payload_bytes, 0x5a);
  for (std::uint32_t i = 0; i < options.prime_segments; ++i) {
    if (!sender.tcp().send(conn, payload)) return false;
    settle(sender, receiver);
    std::vector<std::uint8_t> sink(payload.size());
    (void)receiver.sockets().read(receiver.tcp().socket_of(accepted), sink);
    receiver.tcp().ack_now(accepted);
    settle(sender, receiver);
  }

  const SocketId rx_socket = receiver.tcp().socket_of(accepted);

  // ---- Phase 1: entry — the process read()s and blocks. -----------------
  tracer.activate(buffer);
  tracer.set_phase(trace::Phase::kEntry);
  trace_fn(Fn::kXentSys);
  trace_fn(Fn::kSyscall, 0.6);
  trace_fn(Fn::kRead);
  trace_fn(Fn::kSooRead);
  trace_rgn(Rgn::kSysentRo, 0.4);
  trace_rgn(Rgn::kSockHighRo, 0.5);
  trace_rgn(Rgn::kSockFileMut);
  // soreceive finds no data and blocks.
  trace_fn(Fn::kSoReceive, 0.35);
  trace_fn(Fn::kSbWait);
  trace_fn(Fn::kTsleep);
  trace_fn(Fn::kMiSwitch);
  trace_fn(Fn::kCpuSwitch);
  trace_fn(Fn::kIdle);
  trace_rgn(Rgn::kProcStateMut, 0.5);
  tracer.deactivate();

  // The segment is transmitted by the sender untraced (the paper traces
  // only the receiving host).
  if (!sender.tcp().send(conn, payload)) return false;
  sender.pump();  // nothing pending, but keeps both sides symmetric

  // ---- Phase 2: device interrupt through TCP to the socket buffer. ------
  tracer.activate(buffer);
  tracer.set_phase(trace::Phase::kPacketIntr);
  const std::size_t handled = receiver.pump();
  tracer.deactivate();
  if (handled == 0) return false;

  // ---- Phase 3: exit — wake, copy out, send the ACK. ---------------------
  tracer.activate(buffer);
  tracer.set_phase(trace::Phase::kExit);
  trace_fn(Fn::kWakeup);
  trace_fn(Fn::kSetRunqueue);
  trace_fn(Fn::kMiSwitch);
  trace_fn(Fn::kCpuSwitch);
  trace_fn(Fn::kSchedMisc);
  trace_fn(Fn::kMicrotime);
  trace_fn(Fn::kSelWakeup);
  trace_rgn(Rgn::kProcTablesRo);
  trace_rgn(Rgn::kProcStateMut);
  trace_rgn(Rgn::kKernFrameMut);
  // soreceive copies the data into the process.
  std::vector<std::uint8_t> sink(payload.size());
  const std::size_t got = receiver.sockets().read(rx_socket, sink);
  trace_fn(Fn::kBcopy);
  trace_fn(Fn::kNtohl);
  trace_fn(Fn::kNtohs);
  trace_fn(Fn::kFree);  // mbufs released after the copy
  trace_rgn(Rgn::kCopyTablesRo);
  trace_rgn(Rgn::kCopyStateMut);
  trace_pkt(trace::RefKind::kRead, options.payload_bytes);
  trace_pkt(trace::RefKind::kWrite, options.payload_bytes);
  // The window update: soreceive calls tcp_output to send the ACK.
  trace_fn(Fn::kTcpUsrreq);
  receiver.tcp().ack_now(accepted);
  // Return from the system call.
  trace_fn(Fn::kSyscall);
  trace_fn(Fn::kTrap);
  trace_fn(Fn::kRei);
  trace_fn(Fn::kSpl0);
  trace_fn(Fn::kBzero);
  tracer.deactivate();

  return got == payload.size();
}

}  // namespace ldlp::stack
