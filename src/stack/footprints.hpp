// Calibrated code/data footprints for the mini-stack (see DESIGN.md §2).
//
// The paper measured a NetBSD/Alpha kernel with an instruction-level
// simulator. We cannot rerun a 1995 kernel, so the mini-stack carries a
// footprint model instead: every function on the receive path is
// registered with the byte size published in the paper's Figure 1
// (tcp_input = 11872 bytes, in_cksum = 1104, ...) and an executed-bytes
// calibration chosen so the per-layer Table 1 code totals reproduce.
// Layer data (PCBs, dispatch tables, socket buffers, interrupt vectors)
// is registered the same way against the Table 1 read-only/mutable
// columns. The working-set *analysis* (rasterisation at any line size,
// first-touch classification) is computed, not assumed — Table 3 falls
// out of the sparsity structure.
//
// A few kernel-overhead rows (process control, kernel entry) include an
// aggregate entry for small unlabeled functions that Figure 1 does not
// name individually; these are marked "misc" below.
#pragma once

#include <array>
#include <cstdint>

#include "trace/code_map.hpp"
#include "trace/data_map.hpp"
#include "trace/trace_buffer.hpp"

namespace ldlp::stack {

/// Every function named in the paper's Figure 1, plus per-layer misc
/// aggregates.
enum class Fn : std::uint16_t {
  // Device driver (Lance Ethernet + TurboChannel glue).
  kLeIntr,
  kLeStart,
  kAsicIntr,
  kTcIoIntr,
  kLeWriteReg,
  // Ethernet.
  kEtherInput,
  kEtherOutput,
  kArpResolve,
  kInBroadcast,
  // IP.
  kIpIntr,
  kIpOutput,
  kNetIntr,
  kDoSir,
  // TCP.
  kTcpInput,
  kTcpOutput,
  kTcpUsrreq,
  // Socket, lower half.
  kSbAppend,
  kSbCompress,
  kSoWakeup,
  // Socket, upper half.
  kSoReceive,
  kSooRead,
  kSbWait,
  kRead,
  // Kernel entry/exit.
  kSyscall,
  kTrap,
  kXentInt,
  kXentSys,
  kRei,
  kInterrupt,
  kPalSwpIpl,
  kSpl0,
  // Process control.
  kTsleep,
  kWakeup,
  kMiSwitch,
  kCpuSwitch,
  kSetRunqueue,
  kSelWakeup,
  kIdle,
  kMicrotime,
  kSchedMisc,  ///< Aggregate of unlabeled scheduler helpers.
  // Buffer management.
  kMalloc,
  kFree,
  kMAdj,
  // Copy / checksum.
  kInCksum,
  kBcopy,
  kCopyout,
  kUiomove,
  kBzero,
  kNtohl,
  kNtohs,
  kCopyFromBufGap2,
  kZeroBufGap16,
  kCopyToBufGap16,
  kCopyToBufGap2,
  kCopyFromBufGap16,
  kCount
};

/// Data regions, one or two per Table 1 row.
enum class Rgn : std::uint16_t {
  kDevConfigRo,
  kDevRingMut,
  kEthIfnetRo,
  kEthStatsMut,
  kIpRouteRo,
  kIpStateMut,
  kTcpTablesRo,
  kTcpPcbMut,
  kSockLowRo,
  kSockBufMut,
  kSockHighRo,
  kSockFileMut,
  kSysentRo,
  kKernFrameMut,
  kProcTablesRo,
  kProcStateMut,
  kBufBucketsRo,
  kBufFreelistMut,
  kCopyTablesRo,
  kCopyStateMut,
  kCount
};

/// Singleton-ish tracing session: layers call the free functions below,
/// which no-op unless a tracer is active. Exactly one tracer can be
/// active at a time (the stack is single-threaded, like the kernel path
/// it models).
class StackTracer {
 public:
  /// `code_scale` shrinks (or grows) every function's size and executed
  /// bytes — the section 5.2 CISC/RISC experiment: the paper measures
  /// i386 protocol code at roughly half the Alpha's size (55% smaller for
  /// the TCP/IP files, ~40% for typical code), so code_scale=0.5 models
  /// an i386-class instruction encoding on the same stack.
  explicit StackTracer(double code_scale = 1.0);

  StackTracer(const StackTracer&) = delete;
  StackTracer& operator=(const StackTracer&) = delete;
  ~StackTracer();

  void activate(trace::TraceBuffer& buffer) noexcept;
  void deactivate() noexcept;

  [[nodiscard]] static StackTracer* active() noexcept { return active_; }

  void call(Fn fn, double fraction = 1.0, double revisit = 1.0) const;
  void touch(Rgn region, double fraction = 1.0) const;
  void set_phase(trace::Phase phase) noexcept;

  /// Record a reference to packet contents (excluded from Table 1 but
  /// visible in the Figure 1 footers).
  void packet_bytes(trace::RefKind kind, std::uint32_t len) const;

  [[nodiscard]] const trace::CodeMap& code_map() const noexcept {
    return code_;
  }
  [[nodiscard]] const trace::DataMap& data_map() const noexcept {
    return data_;
  }

 private:
  // Thread-local: tracing is a per-thread measurement activity, so a
  // tracer armed on one thread (a fig/table bench) never races with
  // ldlp::par workers pumping their own untraced hosts.
  static thread_local StackTracer* active_;

  trace::CodeMap code_;
  trace::DataMap data_;
  std::array<trace::FnId, static_cast<std::size_t>(Fn::kCount)> fn_ids_{};
  std::array<trace::RegionId, static_cast<std::size_t>(Rgn::kCount)>
      rgn_ids_{};
  trace::TraceBuffer* buffer_ = nullptr;
};

/// Layer-side hooks (no-ops when no tracer is active).
inline void trace_fn(Fn fn, double fraction = 1.0, double revisit = 1.0) {
  if (const StackTracer* t = StackTracer::active()) t->call(fn, fraction, revisit);
}
inline void trace_rgn(Rgn region, double fraction = 1.0) {
  if (const StackTracer* t = StackTracer::active()) t->touch(region, fraction);
}
inline void trace_pkt(trace::RefKind kind, std::uint32_t len) {
  if (const StackTracer* t = StackTracer::active()) t->packet_bytes(kind, len);
}

}  // namespace ldlp::stack
