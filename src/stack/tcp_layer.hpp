// TCP layer: demultiplexing (with the single-entry PCB cache the paper's
// trace exercises), input state machine with header-prediction fast path,
// output/segmentation, and timers.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/stack_graph.hpp"
#include "stack/ip_layer.hpp"
#include "stack/socket_layer.hpp"
#include "stack/tcp_pcb.hpp"
#include "time/timer_wheel.hpp"

namespace ldlp::stack {

using PcbId = std::uint32_t;
inline constexpr PcbId kNoPcb = ~PcbId{0};

struct TcpLayerStats {
  std::uint64_t segs_in = 0;
  std::uint64_t bad_checksum = 0;
  std::uint64_t bad_header = 0;
  std::uint64_t no_pcb = 0;          ///< RST sent / segment dropped.
  std::uint64_t pcb_cache_hits = 0;  ///< Single-entry cache (paper §2, Table 2).
  std::uint64_t pcb_cache_misses = 0;
  std::uint64_t rsts_sent = 0;
  std::uint64_t conns_established = 0;
  std::uint64_t conns_reset = 0;
  std::uint64_t rsts_ignored = 0;      ///< Out-of-window RSTs dropped.
  std::uint64_t time_wait_reuses = 0;  ///< TIME_WAIT recycled by a new SYN.
  std::uint64_t keepalive_drops = 0;   ///< Half-open conns torn down.
};

class TcpLayer final : public core::Layer {
 public:
  TcpLayer(Ip4Layer& ip, SocketLayer& sockets, TcpConfig config = {});

  void set_clock(const double* now_sec) noexcept { now_sec_ = now_sec; }

  /// Attach the host's timer wheel: every PCB keeps one consolidated
  /// wheel timer armed at its earliest pending deadline, and the wheel
  /// drives per-PCB timer work instead of a per-pass scan over every
  /// PCB. Without a wheel (standalone tests) on_timer() keeps the old
  /// scan semantics.
  void set_wheel(time::TimerWheel* wheel) noexcept { wheel_ = wheel; }

  /// Passive open. Connections accepted on this port get fresh PCBs and
  /// sockets; `on_accept` (if set) fires when they reach ESTABLISHED.
  [[nodiscard]] PcbId listen(std::uint16_t port);
  void set_accept_hook(std::function<void(PcbId)> hook) {
    accept_hook_ = std::move(hook);
  }

  /// Active open; allocates an ephemeral port and a stream socket.
  [[nodiscard]] PcbId connect(std::uint32_t dst_ip, std::uint16_t dst_port);

  /// Queue bytes for transmission. Returns false if the send buffer is
  /// full or the connection cannot send.
  [[nodiscard]] bool send(PcbId id, std::span<const std::uint8_t> data);

  /// Orderly close (FIN after queued data drains).
  void close(PcbId id);
  /// Abortive close (RST).
  void abort(PcbId id);

  /// Host crash: drop every PCB on the floor without a single segment on
  /// the wire — the peer only learns via RST-on-probe or keepalive after
  /// the host returns (FaultKind::kHostRestart). Layer-level counters
  /// survive; they describe the machine, not the incarnation.
  void crash();

  /// Drive retransmit / delayed-ACK / TIME_WAIT timers for every PCB
  /// (legacy per-pass scan; wheel-attached hosts get the same work per
  /// PCB from wheel fires instead). Safe to call in either mode.
  void on_timer();

  /// One PCB's timer work: TIME_WAIT expiry, delayed ACK, keepalive,
  /// persist probe, retransmit, mbuf-exhaustion re-attempt. This is the
  /// wheel-fire handler; early (spurious) wakeups are tolerated — each
  /// action re-checks its own deadline. Re-syncs the wheel at the end.
  void pcb_timer(PcbId id);

  /// Send an immediate window-update ACK (what 4.4BSD's soreceive triggers
  /// after the application drains the socket buffer — the "exit" phase ACK
  /// of the paper's Table 2).
  void ack_now(PcbId id) {
    send_ack(id);     // clears any pending delayed ACK…
    sync_wheel(id);   // …so the wheel can stand down with it
  }

  [[nodiscard]] TcpState state(PcbId id) const;
  [[nodiscard]] SocketId socket_of(PcbId id) const;
  [[nodiscard]] const TcpPcbStats& pcb_stats(PcbId id) const;
  /// Read-only PCB view for invariant checkers and tests.
  [[nodiscard]] const TcpPcb& pcb_view(PcbId id) const { return pcb(id); }

  /// Wire-tap on the send API: fires with exactly the bytes accepted into
  /// the send buffer by a successful send(). Conformance oracles record
  /// these as the ground truth the peer's socket layer must deliver.
  void set_send_tap(
      std::function<void(PcbId, std::span<const std::uint8_t>)> tap) {
    send_tap_ = std::move(tap);
  }
  [[nodiscard]] const TcpLayerStats& tcp_stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] std::size_t pcb_count() const noexcept { return pcbs_.size(); }

 protected:
  void process(core::Message msg) override;

 private:
  [[nodiscard]] double now() const noexcept {
    return now_sec_ != nullptr ? *now_sec_ : 0.0;
  }
  [[nodiscard]] TcpPcb& pcb(PcbId id);
  [[nodiscard]] const TcpPcb& pcb(PcbId id) const;
  [[nodiscard]] PcbId alloc_pcb();
  [[nodiscard]] PcbId demux(std::uint32_t src_ip, std::uint16_t src_port,
                            std::uint32_t dst_ip, std::uint16_t dst_port);

  /// Transmit a segment: flags + up to `payload_len` bytes taken from the
  /// send buffer at snd_nxt. Handles rtx queueing. Returns false when the
  /// segment could not be built (mbuf pool exhausted) — nothing was sent
  /// or queued, and the caller must keep the bytes for a later attempt.
  bool send_segment(PcbId id, std::uint8_t flags,
                    std::vector<std::uint8_t> payload, bool retransmission,
                    std::uint32_t seq_override = 0);
  /// Push send-buffer data within the usable window.
  void try_send_data(PcbId id);
  void send_ack(PcbId id);
  /// Emit a RST to dst; src_* are our side (placed in the header's source
  /// fields).
  void send_rst(std::uint32_t dst_ip, std::uint16_t dst_port,
                std::uint32_t src_ip, std::uint16_t src_port,
                std::uint32_t seq, std::uint32_t ack, bool with_ack);
  void enter_established(PcbId id);
  void enter_time_wait(PcbId id);
  /// Earliest pending deadline of `p` (+inf if none) and its class.
  [[nodiscard]] std::pair<double, time::TimerClass> earliest_deadline(
      const TcpPcb& p) const;
  /// Reconcile the PCB's consolidated wheel timer with its deadline
  /// fields: cancel/arm so exactly the earliest pending deadline is
  /// armed. No-op without a wheel. Called from every entry point that
  /// can create or shorten a deadline.
  void sync_wheel(PcbId id);
  /// RAII: sync_wheel on every exit path of process().
  struct WheelSync {
    TcpLayer* layer;
    PcbId id;
    ~WheelSync() {
      if (layer != nullptr && id != kNoPcb) layer->sync_wheel(id);
    }
  };
  /// Disarm rtx/delayed-ACK deadlines and reset backoff bookkeeping.
  static void cancel_timers(TcpPcb& p) noexcept;
  void reset_connection(PcbId id);
  void process_ack(PcbId id, std::uint32_t ack, std::uint32_t wnd);
  /// Advance rcv_nxt and pass bytes up toward the socket. Returns false
  /// (with rcv_nxt untouched) when the rx pool is exhausted — the caller
  /// must treat the segment as lost so the peer retransmits it.
  [[nodiscard]] bool deliver_payload(PcbId id, std::vector<std::uint8_t> bytes);
  void handle_fin(PcbId id);
  [[nodiscard]] std::uint16_t advertised_window(const TcpPcb& p) const;
  [[nodiscard]] std::uint32_t next_iss() noexcept;

  Ip4Layer& ip_;
  SocketLayer& sockets_;
  TcpConfig cfg_;
  const double* now_sec_ = nullptr;
  time::TimerWheel* wheel_ = nullptr;
  std::vector<std::unique_ptr<TcpPcb>> pcbs_;
  PcbId last_pcb_ = kNoPcb;  ///< Single-entry PCB cache.
  std::uint16_t next_ephemeral_ = 49152;
  std::uint32_t iss_counter_ = 0x1000;
  std::function<void(PcbId)> accept_hook_;
  std::function<void(PcbId, std::span<const std::uint8_t>)> send_tap_;
  TcpLayerStats stats_;
};

}  // namespace ldlp::stack
