#include "stack/ip_layer.hpp"

#include <algorithm>

#include "common/byteorder.hpp"
#include "stack/footprints.hpp"
#include "wire/checksum.hpp"

namespace ldlp::stack {

namespace {
constexpr std::uint8_t kIcmpEchoRequest = 8;
constexpr std::uint8_t kIcmpEchoReply = 0;
}  // namespace

Ip4Layer::Ip4Layer(EthLayer& eth, std::uint32_t my_ip, std::uint16_t mtu)
    : core::Layer("ip"), eth_(eth), my_ip_(my_ip), mtu_(mtu) {}

void Ip4Layer::process(core::Message msg) {
  trace_fn(Fn::kIpIntr);
  trace_fn(Fn::kNetIntr);
  trace_rgn(Rgn::kIpStateMut);
  ++stats_.rx;

  // Headers may straddle mbufs after driver copies; pull them contiguous.
  std::uint8_t* base = msg.packet.pullup(wire::kIpMinHeaderLen);
  if (base == nullptr) {
    ++stats_.rx_bad;
    return;
  }
  const std::uint32_t ihl_bytes = (base[0] & 0x0f) * 4u;
  if (ihl_bytes > wire::kIpMinHeaderLen) {  // options present
    base = msg.packet.pullup(ihl_bytes);
    if (base == nullptr) {
      ++stats_.rx_bad;
      return;
    }
  }
  const auto header =
      wire::parse_ipv4({base, msg.packet.head()->len()});
  if (!header.has_value()) {
    ++stats_.rx_bad;
    return;
  }
  trace_pkt(trace::RefKind::kRead, header->header_len());
  if (header->ttl == 0) {
    ++stats_.rx_bad;
    return;
  }
  if (header->dst != my_ip_ && header->dst != 0xffffffff) {
    trace_fn(Fn::kInBroadcast);
    // Multicast: accept all-hosts always, joined groups when IGMP is up.
    const bool multicast_ok =
        is_multicast(header->dst) &&
        (header->dst == kAllHostsGroup ||
         (igmp_ != nullptr && igmp_->is_member(header->dst)));
    if (!multicast_ok) {
      ++stats_.rx_not_mine;
      return;  // No forwarding: this is a host stack.
    }
    ++stats_.rx_multicast;
  }
  // Drop any link padding (minimum-size Ethernet frames) then strip the
  // header.
  const std::uint32_t have = msg.packet.length();
  if (have < header->total_len) {
    ++stats_.rx_bad;
    return;
  }
  if (have > header->total_len)
    msg.packet.adj(-static_cast<std::int32_t>(have - header->total_len));
  msg.packet.adj(static_cast<std::int32_t>(header->header_len()));
  trace_fn(Fn::kMAdj);

  if (header->is_fragment()) {
    ++stats_.rx_fragments;
    const double now = now_sec_ != nullptr ? *now_sec_ : 0.0;
    auto whole = reasm_.offer(*header, std::move(msg.packet), now);
    if (!whole.has_value()) return;
    ++stats_.rx_reassembled;
    msg.packet = std::move(*whole);
  }

  deliver_local(*header, std::move(msg));
}

void Ip4Layer::deliver_local(const wire::Ipv4Header& header,
                             core::Message msg) {
  msg.flow_id = make_flow(header.src, header.dst);
  msg.aux = header.protocol;
  switch (static_cast<wire::IpProto>(header.protocol)) {
    case wire::IpProto::kTcp:
      emit(std::move(msg), ipports::kTcp);
      break;
    case wire::IpProto::kUdp:
      emit(std::move(msg), ipports::kUdp);
      break;
    case wire::IpProto::kIcmp:
      handle_icmp(header, std::move(msg.packet));
      break;
    case wire::IpProto::kIgmp: {
      ++stats_.rx_igmp;
      if (igmp_ == nullptr) break;
      std::uint8_t bytes[kIgmpLen];
      if (!msg.packet.copy_out(0, bytes)) break;
      if (const auto igmp_msg = parse_igmp(bytes)) {
        igmp_->on_message(*igmp_msg, header.src);
      }
      break;
    }
    default:
      ++stats_.rx_bad;
      break;
  }
}

void Ip4Layer::handle_icmp(const wire::Ipv4Header& header, buf::Packet pkt) {
  // Echo request -> echo reply with the same payload; everything else is
  // consumed silently (this host sends no errors).
  std::uint8_t head[8];
  if (!pkt.copy_out(0, head)) return;
  if (head[0] != kIcmpEchoRequest || head[1] != 0) return;
  if (wire::cksum_packet(pkt, 0, pkt.length()) != 0) return;
  ++stats_.rx_icmp_echo;

  head[0] = kIcmpEchoReply;
  store_be16(head + 2, 0);  // zero checksum field before recompute
  if (!pkt.copy_in(0, head)) return;
  const std::uint16_t sum = wire::cksum_packet(pkt, 0, pkt.length());
  store_be16(head + 2, sum);
  if (!pkt.copy_in(0, head)) return;
  output(std::move(pkt), header.src, wire::IpProto::kIcmp, 64);
}

std::uint32_t Ip4Layer::next_hop(std::uint32_t dst) const noexcept {
  for (const Route& route : routes_) {
    if ((dst & route.mask) == (route.prefix & route.mask))
      return route.gateway != 0 ? route.gateway : dst;
  }
  return dst;  // No table: assume on-link, like a host with one interface.
}

void Ip4Layer::output(buf::Packet payload, std::uint32_t dst,
                      wire::IpProto proto, std::uint8_t ttl) {
  trace_fn(Fn::kIpOutput);
  trace_rgn(Rgn::kIpRouteRo);
  ++stats_.tx;

  const std::uint32_t hop = next_hop(dst);
  const std::uint32_t total_payload = payload.length();
  const std::uint32_t max_frag_payload =
      (static_cast<std::uint32_t>(mtu_) - wire::kIpMinHeaderLen) / 8 * 8;
  const std::uint16_t ident = next_ident_++;

  if (total_payload + wire::kIpMinHeaderLen <= mtu_) {
    wire::Ipv4Header header;
    header.total_len =
        static_cast<std::uint16_t>(wire::kIpMinHeaderLen + total_payload);
    header.ident = ident;
    header.ttl = ttl;
    header.protocol = static_cast<std::uint8_t>(proto);
    header.src = my_ip_;
    header.dst = dst;
    std::uint8_t* front = payload.prepend(wire::kIpMinHeaderLen);
    if (front == nullptr) return;
    wire::write_ipv4(header, {front, wire::kIpMinHeaderLen});
    payload.sync_pkt_len();
    eth_.output_ip(std::move(payload), hop);
    return;
  }

  // Fragment: split the payload into MTU-sized, 8-byte-aligned pieces.
  ++stats_.tx_fragmented;
  std::uint32_t offset = 0;
  while (payload.length() > 0) {
    const std::uint32_t remaining = payload.length();
    const std::uint32_t take = std::min(remaining, max_frag_payload);
    buf::Packet frag;
    if (take == remaining) {
      frag = std::move(payload);
      payload = {};
    } else {
      buf::Packet rest = payload.split(take);
      frag = std::move(payload);
      payload = std::move(rest);
    }
    wire::Ipv4Header header;
    header.total_len =
        static_cast<std::uint16_t>(wire::kIpMinHeaderLen + take);
    header.ident = ident;
    header.ttl = ttl;
    header.protocol = static_cast<std::uint8_t>(proto);
    header.src = my_ip_;
    header.dst = dst;
    header.frag_offset = static_cast<std::uint16_t>(offset / 8);
    header.more_fragments = payload.length() > 0;
    std::uint8_t* front = frag.prepend(wire::kIpMinHeaderLen);
    if (front == nullptr) return;
    wire::write_ipv4(header, {front, wire::kIpMinHeaderLen});
    frag.sync_pkt_len();
    eth_.output_ip(std::move(frag), hop);
    offset += take;
  }
}

void Ip4Layer::expire_reassembly() {
  reasm_.expire(now_sec_ != nullptr ? *now_sec_ : 0.0);
}

}  // namespace ldlp::stack
