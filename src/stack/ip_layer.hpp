// IPv4 layer: input validation and demultiplexing, fragment reassembly,
// ICMP echo, and the output path with fragmentation and minimal routing.
#pragma once

#include <cstdint>
#include <vector>

#include "core/stack_graph.hpp"
#include "stack/eth_layer.hpp"
#include "stack/igmp.hpp"
#include "stack/reassembly.hpp"
#include "wire/ipv4.hpp"

namespace ldlp::stack {

/// Output ports of the IP input layer.
namespace ipports {
inline constexpr int kTcp = 0;
inline constexpr int kUdp = 1;
}  // namespace ipports

/// Convention for messages emitted upward: the IP header is stripped;
/// flow_id packs (src_ip << 32 | dst_ip); aux holds the protocol number.
[[nodiscard]] constexpr std::uint64_t make_flow(std::uint32_t src,
                                                std::uint32_t dst) noexcept {
  return (static_cast<std::uint64_t>(src) << 32) | dst;
}
[[nodiscard]] constexpr std::uint32_t flow_src(std::uint64_t flow) noexcept {
  return static_cast<std::uint32_t>(flow >> 32);
}
[[nodiscard]] constexpr std::uint32_t flow_dst(std::uint64_t flow) noexcept {
  return static_cast<std::uint32_t>(flow);
}

struct IpStats {
  std::uint64_t rx = 0;
  std::uint64_t rx_bad = 0;        ///< Header/checksum/length failures.
  std::uint64_t rx_not_mine = 0;
  std::uint64_t rx_fragments = 0;
  std::uint64_t rx_reassembled = 0;
  std::uint64_t rx_icmp_echo = 0;
  std::uint64_t rx_igmp = 0;
  std::uint64_t rx_multicast = 0;
  std::uint64_t tx = 0;
  std::uint64_t tx_fragmented = 0;  ///< Datagrams that needed splitting.
  std::uint64_t tx_no_route = 0;
};

struct Route {
  std::uint32_t prefix = 0;
  std::uint32_t mask = 0;      ///< 0 mask = default route.
  std::uint32_t gateway = 0;   ///< 0 = directly attached (next hop = dst).
};

class Ip4Layer final : public core::Layer {
 public:
  Ip4Layer(EthLayer& eth, std::uint32_t my_ip, std::uint16_t mtu = 1500);

  /// Send `payload` as protocol `proto` from our address to `dst`.
  /// Fragments when payload + header exceeds the MTU.
  void output(buf::Packet payload, std::uint32_t dst, wire::IpProto proto,
              std::uint8_t ttl = 64);

  void add_route(const Route& route) { routes_.push_back(route); }
  void set_clock(const double* now_sec) noexcept { now_sec_ = now_sec; }
  /// Attach the IGMP host (enables multicast reception for joined
  /// groups and protocol-2 delivery).
  void set_igmp(IgmpHost* igmp) noexcept { igmp_ = igmp; }
  void expire_reassembly();
  /// Host restart: partial datagrams do not survive a crash.
  void flush_reassembly() noexcept { reasm_.clear(); }

  [[nodiscard]] const IpStats& ip_stats() const noexcept { return stats_; }
  [[nodiscard]] const ReassemblyTable& reassembly() const noexcept {
    return reasm_;
  }
  [[nodiscard]] std::uint32_t ip_addr() const noexcept { return my_ip_; }
  [[nodiscard]] std::uint16_t mtu() const noexcept { return mtu_; }
  [[nodiscard]] buf::MbufPool& pool() noexcept {
    return eth_.device().pool();
  }

 protected:
  void process(core::Message msg) override;

 private:
  void deliver_local(const wire::Ipv4Header& header, core::Message msg);
  void handle_icmp(const wire::Ipv4Header& header, buf::Packet pkt);
  [[nodiscard]] std::uint32_t next_hop(std::uint32_t dst) const noexcept;

  EthLayer& eth_;
  std::uint32_t my_ip_;
  std::uint16_t mtu_;
  std::uint16_t next_ident_ = 1;
  const double* now_sec_ = nullptr;
  IgmpHost* igmp_ = nullptr;
  ReassemblyTable reasm_;
  std::vector<Route> routes_;
  IpStats stats_;
};

}  // namespace ldlp::stack
