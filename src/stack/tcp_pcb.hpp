// TCP protocol control block and sequence-space helpers.
//
// A deliberately compact but functional TCP: three-way handshake, data
// transfer with a header-prediction fast path, cumulative ACKs with
// ack-every-second-segment (the 4.4BSD behaviour the paper's Table 2 trace
// exhibits), retransmission with exponential backoff, out-of-order segment
// buffering, and orderly close through TIME_WAIT. No congestion control,
// no RTT estimation, no timestamps (the paper's measured configuration has
// RFC 1323 features disabled).
#pragma once

#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <string_view>
#include <vector>

#include "stack/socket_layer.hpp"

namespace ldlp::stack {

enum class TcpState : std::uint8_t {
  kClosed,
  kListen,
  kSynSent,
  kSynReceived,
  kEstablished,
  kFinWait1,
  kFinWait2,
  kCloseWait,
  kClosing,
  kLastAck,
  kTimeWait,
};

[[nodiscard]] std::string_view tcp_state_name(TcpState state) noexcept;

/// Sequence-space comparisons (RFC 793 modular arithmetic).
[[nodiscard]] constexpr bool seq_lt(std::uint32_t a, std::uint32_t b) noexcept {
  return static_cast<std::int32_t>(a - b) < 0;
}
[[nodiscard]] constexpr bool seq_leq(std::uint32_t a,
                                     std::uint32_t b) noexcept {
  return static_cast<std::int32_t>(a - b) <= 0;
}
[[nodiscard]] constexpr bool seq_gt(std::uint32_t a, std::uint32_t b) noexcept {
  return static_cast<std::int32_t>(a - b) > 0;
}
[[nodiscard]] constexpr bool seq_geq(std::uint32_t a,
                                     std::uint32_t b) noexcept {
  return static_cast<std::int32_t>(a - b) >= 0;
}

struct TcpConfig {
  std::uint16_t mss = 1460;          ///< Our offer; min() with the peer's.
  double rto_initial_sec = 0.5;
  double rto_max_sec = 8.0;
  std::uint32_t max_retransmits = 8;
  double time_wait_sec = 1.0;        ///< Shortened 2MSL for simulation.
  std::uint32_t delack_every = 2;    ///< ACK every Nth data segment.
  double delack_timeout_sec = 0.05;
  std::size_t send_buffer_bytes = 64 * 1024;
  /// Keepalive: after `keepalive_idle_sec` without hearing from the peer,
  /// probe (zero-length segment at snd_una-1, 4.4BSD tcp_keepalive) every
  /// `keepalive_intvl_sec`; `keepalive_probes` unanswered probes abort
  /// the half-open connection. 0 disables — keepalive is app opt-in
  /// (SO_KEEPALIVE) in 4.4BSD, so the default stays off.
  double keepalive_idle_sec = 0.0;
  double keepalive_intvl_sec = 0.5;
  std::uint32_t keepalive_probes = 4;
  /// Test hook (mutation revert-guard): false re-introduces the PR-4
  /// zero-window wedge — the persist timer never arms — so liveness
  /// oracles can prove they would have caught it.
  bool enable_persist_timer = true;
};

/// A transmitted-but-unacknowledged segment.
struct RtxSegment {
  std::uint32_t seq = 0;
  std::uint32_t len = 0;  ///< Payload bytes (SYN/FIN occupy seq space too).
  std::uint8_t flags = 0;
  std::vector<std::uint8_t> payload;
};

struct TcpPcbStats {
  std::uint64_t segs_in = 0;
  std::uint64_t fast_path = 0;  ///< Header-prediction hits.
  std::uint64_t slow_path = 0;
  std::uint64_t acks_sent = 0;
  std::uint64_t segs_out = 0;
  std::uint64_t retransmits = 0;
  std::uint64_t ooo_buffered = 0;
  std::uint64_t dup_acks_sent = 0;
  std::uint64_t persist_probes = 0;    ///< Zero-window probes sent.
  std::uint64_t keepalive_probes = 0;  ///< Idle-peer probes sent.
};

struct TcpPcb {
  TcpState state = TcpState::kClosed;
  std::uint32_t local_ip = 0;
  std::uint32_t remote_ip = 0;
  std::uint16_t local_port = 0;
  std::uint16_t remote_port = 0;

  std::uint32_t iss = 0;       ///< Initial send sequence.
  std::uint32_t irs = 0;       ///< Initial receive sequence.
  std::uint32_t snd_una = 0;
  std::uint32_t snd_nxt = 0;
  std::uint32_t snd_max = 0;   ///< Highest snd_nxt ever reached (invariant:
                               ///< snd_una <= snd_nxt <= snd_max).
  std::uint32_t snd_wnd = 0;   ///< Peer's advertised window.
  std::uint32_t rcv_nxt = 0;
  std::uint16_t mss = 536;

  SocketId socket = kNoSocket;

  std::deque<std::uint8_t> send_buffer;   ///< App data not yet segmented.
  std::deque<RtxSegment> rtx;             ///< In flight, oldest first.
  double rto_sec = 0.5;
  double rtx_deadline = std::numeric_limits<double>::infinity();
  std::uint32_t retries = 0;

  std::uint32_t segs_since_ack = 0;
  double delack_deadline = std::numeric_limits<double>::infinity();
  double time_wait_deadline = std::numeric_limits<double>::infinity();
  /// Persist timer: armed when the peer advertises a zero window while
  /// data waits in send_buffer with nothing in flight. Without it the
  /// connection deadlocks — the peer only announces a reopened window on
  /// an ACK, and it has nothing to ACK (4.4BSD tcp_setpersist).
  double persist_deadline = std::numeric_limits<double>::infinity();

  std::map<std::uint32_t, std::vector<std::uint8_t>> ooo;  ///< seq -> bytes.
  bool fin_received = false;
  bool fin_queued = false;  ///< Application closed; FIN follows the data.

  double last_rcv_time = 0.0;          ///< Clock at the last segment heard.
  std::uint32_t keep_probes_sent = 0;  ///< Unanswered keepalive probes.

  /// Consolidated time::TimerWheel handle (time::TimerId; kept as a raw
  /// integer so this header stays dependency-free): armed at the PCB's
  /// earliest pending deadline, 0 when nothing is pending. Owned by
  /// TcpLayer::sync_wheel; check::TimerAuditor asserts it agrees with
  /// the deadline fields above.
  std::uint64_t wheel_timer = 0;

  TcpPcbStats stats;

  [[nodiscard]] bool is_free() const noexcept {
    return state == TcpState::kClosed;
  }
  [[nodiscard]] bool matches(std::uint32_t src_ip, std::uint16_t src_port,
                             std::uint32_t dst_ip,
                             std::uint16_t dst_port) const noexcept {
    return state != TcpState::kClosed && state != TcpState::kListen &&
           remote_ip == src_ip && remote_port == src_port &&
           local_ip == dst_ip && local_port == dst_port;
  }
  /// Bytes of send window still usable.
  [[nodiscard]] std::uint32_t usable_window() const noexcept {
    const std::uint32_t in_flight = snd_nxt - snd_una;
    return snd_wnd > in_flight ? snd_wnd - in_flight : 0;
  }
};

}  // namespace ldlp::stack
