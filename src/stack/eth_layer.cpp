#include "stack/eth_layer.hpp"

#include <cmath>

#include "common/assert.hpp"
#include "stack/footprints.hpp"
#include "stack/igmp.hpp"
#include "wire/arp.hpp"

namespace ldlp::stack {

EthLayer::EthLayer(NetDevice& device, std::uint32_t my_ip)
    : core::Layer("ethernet"), device_(device), my_ip_(my_ip) {}

void EthLayer::process(core::Message msg) {
  trace_fn(Fn::kEtherInput);
  trace_rgn(Rgn::kEthIfnetRo);
  trace_rgn(Rgn::kEthStatsMut);

  std::uint8_t header_bytes[wire::kEthHeaderLen];
  if (!msg.packet.copy_out(0, header_bytes)) {
    ++stats_.rx_dropped;
    return;
  }
  trace_pkt(trace::RefKind::kRead, wire::kEthHeaderLen);
  const auto header = wire::parse_eth(header_bytes);
  if (!header.has_value()) {
    ++stats_.rx_dropped;
    return;
  }
  // Accept our unicast MAC, broadcast, and any group (multicast) MAC —
  // the IP layer filters multicast by group membership.
  const bool group_addressed = (header->dst[0] & 0x01) != 0;
  if (header->dst != device_.mac() && !header->is_broadcast() &&
      !group_addressed) {
    ++stats_.rx_dropped;
    return;
  }

  msg.packet.adj(static_cast<std::int32_t>(wire::kEthHeaderLen));
  trace_fn(Fn::kMAdj);

  switch (header->ether_type) {
    case static_cast<std::uint16_t>(wire::EtherType::kIpv4):
      ++stats_.rx_ip;
      emit(std::move(msg), ethports::kIp);
      break;
    case static_cast<std::uint16_t>(wire::EtherType::kArp):
      ++stats_.rx_arp;
      handle_arp(std::move(msg.packet));
      break;
    default:
      ++stats_.rx_dropped;
      break;
  }
}

void EthLayer::handle_arp(buf::Packet pkt) {
  std::uint8_t bytes[wire::kArpLen];
  if (!pkt.copy_out(0, bytes)) return;
  const auto arp = wire::parse_arp(bytes);
  if (!arp.has_value()) return;

  // Learn the sender mapping either way (standard ARP behaviour).
  arp_.insert(arp->sender_ip, arp->sender_mac);
  for (buf::Packet& held : arp_.take_pending(arp->sender_ip)) {
    output_ip(std::move(held), arp->sender_ip);
  }
  resync_wheel();  // the resolved IP's retry deadline is gone

  if (arp->op == wire::ArpOp::kRequest && arp->target_ip == my_ip_) {
    send_arp(wire::ArpOp::kReply, arp->sender_ip, arp->sender_mac);
  }
}

void EthLayer::send_arp(wire::ArpOp op, std::uint32_t target_ip,
                        const wire::MacAddr& target_mac) {
  buf::Packet pkt = buf::Packet::make(device_.pool());
  if (!pkt) return;
  wire::ArpPacket arp;
  arp.op = op;
  arp.sender_mac = device_.mac();
  arp.sender_ip = my_ip_;
  arp.target_mac = op == wire::ArpOp::kRequest ? wire::MacAddr{} : target_mac;
  arp.target_ip = target_ip;
  std::uint8_t bytes[wire::kArpLen];
  if (wire::write_arp(arp, bytes) != wire::kArpLen) return;
  if (!pkt.append(bytes)) return;
  const wire::MacAddr dst =
      op == wire::ArpOp::kRequest ? wire::kBroadcastMac : target_mac;
  send_frame(std::move(pkt), dst, wire::EtherType::kArp);
}

void EthLayer::send_frame(buf::Packet payload, const wire::MacAddr& dst,
                          wire::EtherType type) {
  std::uint8_t* front = payload.prepend(wire::kEthHeaderLen);
  if (front == nullptr) return;
  wire::EthHeader header;
  header.dst = dst;
  header.src = device_.mac();
  header.ether_type = static_cast<std::uint16_t>(type);
  wire::write_eth(header, {front, wire::kEthHeaderLen});
  payload.sync_pkt_len();
  ++stats_.tx_frames;
  (void)device_.transmit(std::move(payload));
}

void EthLayer::output_ip(buf::Packet datagram, std::uint32_t next_hop_ip) {
  trace_fn(Fn::kEtherOutput);
  // Multicast maps algorithmically to a group MAC (01:00:5e + low 23
  // bits, RFC 1112) — no ARP involved.
  if (is_multicast(next_hop_ip)) {
    const wire::MacAddr group_mac{
        0x01,
        0x00,
        0x5e,
        static_cast<std::uint8_t>((next_hop_ip >> 16) & 0x7f),
        static_cast<std::uint8_t>(next_hop_ip >> 8),
        static_cast<std::uint8_t>(next_hop_ip)};
    send_frame(std::move(datagram), group_mac, wire::EtherType::kIpv4);
    return;
  }
  trace_fn(Fn::kArpResolve);
  const auto mac = arp_.lookup(next_hop_ip);
  if (!mac.has_value()) {
    ++stats_.tx_arp_held;
    // Park-queue overflow drops the datagram but must still count as a
    // resolution attempt: if the queue filled and then the ARP reply was
    // lost, suppressing the request here would deadlock the next hop
    // forever (the parked packets keep the queue full, so no later send
    // could ever re-request).
    (void)arp_.hold(next_hop_ip, std::move(datagram));
    if (arp_.should_request(next_hop_ip)) {
      send_arp(wire::ArpOp::kRequest, next_hop_ip, {});
    }
    if (wheel_ != nullptr) {
      // Wheel mode arms the retry deadline at park time (the legacy
      // scan armed it one pass later — a sub-tick difference).
      arp_.arm_retry(next_hop_ip, wheel_->now());
      resync_wheel();
    }
    return;
  }
  send_frame(std::move(datagram), *mac, wire::EtherType::kIpv4);
}

void EthLayer::on_timer(double now) {
  for (const std::uint32_t ip : arp_.poll_retries(now)) {
    send_arp(wire::ArpOp::kRequest, ip, {});
  }
  resync_wheel();
}

void EthLayer::resync_wheel() {
  if (wheel_ == nullptr) return;
  const double deadline = arp_.next_retry_deadline();
  if (!std::isfinite(deadline)) {
    if (arp_timer_ != time::kNoTimer) {
      wheel_->cancel(arp_timer_);
      arp_timer_ = time::kNoTimer;
    }
    return;
  }
  if (arp_timer_ != time::kNoTimer &&
      wheel_->deadline_of(arp_timer_) == deadline)
    return;
  if (arp_timer_ != time::kNoTimer) wheel_->cancel(arp_timer_);
  arp_timer_ = wheel_->arm(deadline, time::TimerClass::kLiveness,
                           [this] { on_timer(wheel_->now()); });
}

}  // namespace ldlp::stack
