#include "stack/tcp_layer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/assert.hpp"
#include "common/byteorder.hpp"
#include "stack/footprints.hpp"
#include "wire/checksum.hpp"
#include "wire/tcp.hpp"

namespace ldlp::stack {

using wire::tcpflags::kAck;
using wire::tcpflags::kFin;
using wire::tcpflags::kPsh;
using wire::tcpflags::kRst;
using wire::tcpflags::kSyn;

namespace {
/// Cadence for re-attempting a segment whose mbuf allocation failed:
/// one wheel tick, matching the every-pass retry the legacy scan gave.
constexpr double kPoolRetrySec = 1e-3;
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

TcpLayer::TcpLayer(Ip4Layer& ip, SocketLayer& sockets, TcpConfig config)
    : core::Layer("tcp"), ip_(ip), sockets_(sockets), cfg_(config) {}

TcpPcb& TcpLayer::pcb(PcbId id) {
  LDLP_ASSERT_MSG(id < pcbs_.size(), "bad pcb id");
  return *pcbs_[id];
}

const TcpPcb& TcpLayer::pcb(PcbId id) const {
  LDLP_ASSERT_MSG(id < pcbs_.size(), "bad pcb id");
  return *pcbs_[id];
}

PcbId TcpLayer::alloc_pcb() {
  for (PcbId id = 0; id < pcbs_.size(); ++id) {
    if (pcbs_[id]->is_free()) {
      // A freed slot should have synced its wheel timer away; cancel
      // defensively so a stale callback can never fire for the tenant.
      if (wheel_ != nullptr && pcbs_[id]->wheel_timer != time::kNoTimer)
        wheel_->cancel(pcbs_[id]->wheel_timer);
      *pcbs_[id] = TcpPcb{};
      return id;
    }
  }
  pcbs_.push_back(std::make_unique<TcpPcb>());
  return static_cast<PcbId>(pcbs_.size() - 1);
}

std::uint32_t TcpLayer::next_iss() noexcept {
  iss_counter_ += 64000;
  return iss_counter_;
}

PcbId TcpLayer::listen(std::uint16_t port) {
  const PcbId id = alloc_pcb();
  TcpPcb& p = pcb(id);
  p.state = TcpState::kListen;
  p.local_ip = ip_.ip_addr();
  p.local_port = port;
  return id;
}

PcbId TcpLayer::connect(std::uint32_t dst_ip, std::uint16_t dst_port) {
  trace_fn(Fn::kTcpUsrreq);
  const PcbId id = alloc_pcb();
  TcpPcb& p = pcb(id);
  p.state = TcpState::kSynSent;
  p.local_ip = ip_.ip_addr();
  p.local_port = next_ephemeral_++;
  if (next_ephemeral_ == 0) next_ephemeral_ = 49152;
  p.remote_ip = dst_ip;
  p.remote_port = dst_port;
  p.iss = next_iss();
  p.snd_una = p.iss;
  p.snd_nxt = p.iss;
  p.snd_max = p.iss;
  p.snd_wnd = 1;  // enough for the handshake; real window arrives with it
  p.mss = cfg_.mss;
  p.rto_sec = cfg_.rto_initial_sec;
  p.last_rcv_time = now();
  p.socket = sockets_.create(SocketKind::kStream);
  send_segment(id, kSyn, {}, /*retransmission=*/false);
  sync_wheel(id);
  return id;
}

bool TcpLayer::send(PcbId id, std::span<const std::uint8_t> data) {
  trace_fn(Fn::kTcpUsrreq);
  TcpPcb& p = pcb(id);
  if (p.state != TcpState::kEstablished && p.state != TcpState::kCloseWait &&
      p.state != TcpState::kSynSent && p.state != TcpState::kSynReceived)
    return false;
  if (p.fin_queued) return false;
  if (p.send_buffer.size() + data.size() > cfg_.send_buffer_bytes)
    return false;
  p.send_buffer.insert(p.send_buffer.end(), data.begin(), data.end());
  if (send_tap_) send_tap_(id, data);
  if (p.state == TcpState::kEstablished || p.state == TcpState::kCloseWait)
    try_send_data(id);
  sync_wheel(id);
  return true;
}

void TcpLayer::close(PcbId id) {
  trace_fn(Fn::kTcpUsrreq);
  TcpPcb& p = pcb(id);
  switch (p.state) {
    case TcpState::kListen:
    case TcpState::kSynSent:
      // Cancel timers with the state change: a SYN may still sit on the
      // rtx queue with a live deadline, and the PCB slot is now reusable.
      cancel_timers(p);
      p.rtx.clear();
      p.send_buffer.clear();
      p.state = TcpState::kClosed;
      if (last_pcb_ == id) last_pcb_ = kNoPcb;
      break;
    case TcpState::kSynReceived:
    case TcpState::kEstablished:
    case TcpState::kCloseWait:
      p.fin_queued = true;
      try_send_data(id);
      break;
    default:
      break;  // Already closing.
  }
  sync_wheel(id);
}

void TcpLayer::abort(PcbId id) {
  TcpPcb& p = pcb(id);
  if (p.state != TcpState::kClosed && p.state != TcpState::kListen) {
    send_rst(p.remote_ip, p.remote_port, p.local_ip, p.local_port, p.snd_nxt,
             0, false);
  }
  reset_connection(id);
}

TcpState TcpLayer::state(PcbId id) const { return pcb(id).state; }
SocketId TcpLayer::socket_of(PcbId id) const { return pcb(id).socket; }
const TcpPcbStats& TcpLayer::pcb_stats(PcbId id) const {
  return pcb(id).stats;
}

PcbId TcpLayer::demux(std::uint32_t src_ip, std::uint16_t src_port,
                      std::uint32_t dst_ip, std::uint16_t dst_port) {
  // Single-entry PCB cache: the common case — a long exchange with one
  // peer — hits here without touching the PCB list (Table 2: "the
  // single-entry PCB cache hits").
  if (last_pcb_ != kNoPcb && last_pcb_ < pcbs_.size() &&
      pcbs_[last_pcb_]->matches(src_ip, src_port, dst_ip, dst_port)) {
    ++stats_.pcb_cache_hits;
    return last_pcb_;
  }
  ++stats_.pcb_cache_misses;
  for (PcbId id = 0; id < pcbs_.size(); ++id) {
    if (pcbs_[id]->matches(src_ip, src_port, dst_ip, dst_port)) {
      last_pcb_ = id;
      return id;
    }
  }
  // Fall back to a listener on the destination port.
  for (PcbId id = 0; id < pcbs_.size(); ++id) {
    if (pcbs_[id]->state == TcpState::kListen &&
        pcbs_[id]->local_port == dst_port) {
      return id;
    }
  }
  return kNoPcb;
}

std::uint16_t TcpLayer::advertised_window(const TcpPcb& p) const {
  if (p.socket == kNoSocket) return 16 * 1024;
  return static_cast<std::uint16_t>(
      std::min<std::size_t>(sockets_.room(p.socket), 65535));
}

void TcpLayer::process(core::Message msg) {
  trace_fn(Fn::kTcpInput);
  trace_rgn(Rgn::kTcpTablesRo);
  trace_rgn(Rgn::kTcpPcbMut);
  ++stats_.segs_in;

  const std::uint32_t src_ip = flow_src(msg.flow_id);
  const std::uint32_t dst_ip = flow_dst(msg.flow_id);
  const std::uint32_t total_len = msg.packet.length();

  std::uint8_t* base = msg.packet.pullup(wire::kTcpMinHeaderLen);
  if (base == nullptr) {
    ++stats_.bad_header;
    return;
  }
  const std::uint32_t doff = (base[12] >> 4) * 4u;
  if (doff > wire::kTcpMinHeaderLen) {
    base = msg.packet.pullup(doff);
    if (base == nullptr) {
      ++stats_.bad_header;
      return;
    }
  }
  const auto header = wire::parse_tcp({base, msg.packet.head()->len()});
  if (!header.has_value() || header->header_len() > total_len) {
    ++stats_.bad_header;
    return;
  }

  // in_cksum over the whole segment (the paper's fast path computes this
  // for every received segment).
  trace_fn(Fn::kInCksum, 1.0, 2.0 + total_len / 64.0);
  trace_pkt(trace::RefKind::kRead, total_len);
  if (wire::transport_cksum(msg.packet, 0, total_len, src_ip, dst_ip,
                            static_cast<std::uint8_t>(wire::IpProto::kTcp)) !=
      0) {
    ++stats_.bad_checksum;
    return;
  }

  const std::uint32_t payload_len = total_len - header->header_len();
  PcbId id = demux(src_ip, header->src_port, dst_ip, header->dst_port);
  if (id == kNoPcb) {
    ++stats_.no_pcb;
    if (!header->has(kRst)) {
      if (header->has(kAck)) {
        send_rst(src_ip, header->src_port, dst_ip, header->dst_port,
                 header->ack, 0, false);
      } else {
        const std::uint32_t ack = header->seq + payload_len +
                                  (header->has(kSyn) ? 1 : 0) +
                                  (header->has(kFin) ? 1 : 0);
        send_rst(src_ip, header->src_port, dst_ip, header->dst_port, 0, ack,
                 true);
      }
    }
    return;
  }

  // TIME_WAIT reuse (2MSL shortcut, 4.4BSD): a fresh SYN whose sequence
  // is strictly beyond the old incarnation's receive point cannot be a
  // stray duplicate of it, so the wait may be cut short — retire the old
  // PCB and hand the SYN to the listener on the same port.
  if (pcb(id).state == TcpState::kTimeWait && header->has(kSyn) &&
      !header->has(kAck) && !header->has(kRst) &&
      seq_gt(header->seq, pcb(id).rcv_nxt)) {
    const std::uint16_t port = pcb(id).local_port;
    for (PcbId lid = 0; lid < pcbs_.size(); ++lid) {
      if (pcbs_[lid]->state == TcpState::kListen &&
          pcbs_[lid]->local_port == port) {
        ++stats_.time_wait_reuses;
        reset_connection(id);
        id = lid;
        break;
      }
    }
  }

  TcpPcb& p = pcb(id);
  // Everything below can create, shorten, or cancel a deadline on this
  // PCB; reconcile its consolidated wheel timer on every exit path.
  const WheelSync wheel_sync{this, id};
  ++p.stats.segs_in;
  p.last_rcv_time = now();
  p.keep_probes_sent = 0;  // any segment is proof of life

  // ---- LISTEN ----------------------------------------------------------
  if (p.state == TcpState::kListen) {
    if (header->has(kRst)) return;
    if (header->has(kAck)) {
      send_rst(src_ip, header->src_port, dst_ip, header->dst_port,
               header->ack, 0, false);
      return;
    }
    if (!header->has(kSyn)) return;
    const PcbId child_id = alloc_pcb();
    TcpPcb& child = pcb(child_id);
    child.state = TcpState::kSynReceived;
    child.local_ip = dst_ip;
    child.local_port = header->dst_port;
    child.remote_ip = src_ip;
    child.remote_port = header->src_port;
    child.irs = header->seq;
    child.rcv_nxt = header->seq + 1;
    child.iss = next_iss();
    child.snd_una = child.iss;
    child.snd_nxt = child.iss;
    child.snd_max = child.iss;
    child.snd_wnd = header->window;
    child.mss = std::min(cfg_.mss, header->mss.value_or(536));
    child.rto_sec = cfg_.rto_initial_sec;
    child.last_rcv_time = now();
    child.socket = sockets_.create(SocketKind::kStream);
    send_segment(child_id, static_cast<std::uint8_t>(kSyn | kAck), {},
                 /*retransmission=*/false);
    sync_wheel(child_id);  // the guard tracks the listener, not the child
    return;
  }

  // ---- SYN_SENT --------------------------------------------------------
  if (p.state == TcpState::kSynSent) {
    if (header->has(kAck) &&
        (seq_leq(header->ack, p.iss) || seq_gt(header->ack, p.snd_nxt))) {
      if (!header->has(kRst)) {
        send_rst(src_ip, header->src_port, dst_ip, header->dst_port,
                 header->ack, 0, false);
      }
      return;
    }
    if (header->has(kRst)) {
      if (header->has(kAck)) reset_connection(id);
      return;
    }
    if (!header->has(kSyn)) return;
    p.irs = header->seq;
    p.rcv_nxt = header->seq + 1;
    if (header->mss.has_value()) p.mss = std::min(p.mss, *header->mss);
    if (header->has(kAck)) {
      process_ack(id, header->ack, header->window);
      enter_established(id);
      send_ack(id);
    } else {
      // Simultaneous open.
      p.state = TcpState::kSynReceived;
      send_segment(id, static_cast<std::uint8_t>(kSyn | kAck), {},
                   /*retransmission=*/true, p.iss);
    }
    return;
  }

  // ---- Synchronized states ---------------------------------------------

  // Header-prediction fast path (4.4BSD tcp_input): established, exactly
  // ACK (data may carry PSH), next expected sequence, sane ACK.
  const std::uint8_t interesting =
      header->flags & static_cast<std::uint8_t>(kSyn | kFin | kRst);
  if (p.state == TcpState::kEstablished && interesting == 0 &&
      header->has(kAck) && header->seq == p.rcv_nxt &&
      seq_geq(header->ack, p.snd_una) && seq_leq(header->ack, p.snd_nxt)) {
    ++p.stats.fast_path;
    process_ack(id, header->ack, header->window);
    if (payload_len != 0) {
      std::vector<std::uint8_t> bytes(payload_len);
      if (!msg.packet.copy_out(header->header_len(), bytes)) return;
      if (!deliver_payload(id, std::move(bytes))) return;  // rx pool dry
      // Drain any out-of-order data this made contiguous. A failed
      // delivery keeps the entry for the retransmission to land on.
      auto it = p.ooo.begin();
      while (it != p.ooo.end() && seq_leq(it->first, p.rcv_nxt)) {
        if (seq_geq(it->first + it->second.size(), p.rcv_nxt)) {
          const std::uint32_t skip = p.rcv_nxt - it->first;
          if (!deliver_payload(id,
                               {it->second.begin() + skip, it->second.end()}))
            break;
        }
        it = p.ooo.erase(it);
      }
      // ACK every second data segment (the measured 4.4BSD behaviour).
      ++p.segs_since_ack;
      if (p.segs_since_ack >= cfg_.delack_every) {
        send_ack(id);
      } else {
        p.delack_deadline = now() + cfg_.delack_timeout_sec;
      }
    }
    return;
  }

  ++p.stats.slow_path;

  // Sequence acceptability: anything entirely left of rcv_nxt is a
  // duplicate; answer with an ACK so the peer resynchronises.
  const std::uint32_t seg_space =
      payload_len + (header->has(kSyn) ? 1 : 0) + (header->has(kFin) ? 1 : 0);
  if (seg_space != 0 && seq_leq(header->seq + seg_space, p.rcv_nxt)) {
    ++p.stats.dup_acks_sent;
    send_ack(id);
    return;
  }

  // Zero-length acceptability (RFC 793): a segment carrying no sequence
  // space is acceptable only at rcv_nxt (window closed) or inside the
  // receive window. An unacceptable one gets an ACK in reply — which is
  // exactly how a live endpoint answers a keepalive probe (its sequence
  // sits one below rcv_nxt) — unless it is a RST, which must be dropped
  // silently: replying would start an ACK war, and honouring it would
  // hand blind off-window RSTs a connection kill.
  if (seg_space == 0) {
    const std::uint32_t rwnd = advertised_window(p);
    const bool acceptable =
        rwnd == 0 ? header->seq == p.rcv_nxt
                  : (seq_geq(header->seq, p.rcv_nxt) &&
                     seq_lt(header->seq, p.rcv_nxt + rwnd));
    if (!acceptable) {
      if (header->has(kRst)) {
        ++stats_.rsts_ignored;
      } else {
        ++p.stats.dup_acks_sent;
        send_ack(id);
      }
      return;
    }
  }

  if (header->has(kRst)) {
    // In-window by the checks above: a valid abort from the peer.
    reset_connection(id);
    return;
  }
  if (header->has(kSyn)) {
    // SYN in window: fatal.
    send_rst(src_ip, header->src_port, dst_ip, header->dst_port, p.snd_nxt, 0,
             false);
    reset_connection(id);
    return;
  }
  if (!header->has(kAck)) return;

  if (seq_gt(header->ack, p.snd_nxt)) {
    send_ack(id);  // ACK for data we have not sent.
    return;
  }
  const bool fin_was_outstanding =
      (p.state == TcpState::kFinWait1 || p.state == TcpState::kLastAck ||
       p.state == TcpState::kClosing);
  process_ack(id, header->ack, header->window);
  const bool our_fin_acked =
      fin_was_outstanding && p.snd_una == p.snd_nxt && p.rtx.empty();

  if (p.state == TcpState::kSynReceived &&
      seq_geq(header->ack, p.iss + 1)) {
    enter_established(id);
  }
  if (our_fin_acked) {
    switch (p.state) {
      case TcpState::kFinWait1: p.state = TcpState::kFinWait2; break;
      case TcpState::kClosing: enter_time_wait(id); break;
      case TcpState::kLastAck:
        p.state = TcpState::kClosed;
        return;
      default: break;
    }
  }

  // Payload.
  if (payload_len != 0 &&
      (p.state == TcpState::kEstablished || p.state == TcpState::kFinWait1 ||
       p.state == TcpState::kFinWait2)) {
    std::vector<std::uint8_t> bytes(payload_len);
    if (!msg.packet.copy_out(header->header_len(), bytes)) return;
    if (header->seq == p.rcv_nxt) {
      if (deliver_payload(id, std::move(bytes))) {
        auto it = p.ooo.begin();
        while (it != p.ooo.end() && seq_leq(it->first, p.rcv_nxt)) {
          if (seq_geq(it->first + it->second.size(), p.rcv_nxt)) {
            const std::uint32_t skip = p.rcv_nxt - it->first;
            if (!deliver_payload(
                    id, {it->second.begin() + skip, it->second.end()}))
              break;
          }
          it = p.ooo.erase(it);
        }
      }
      send_ack(id);  // rcv_nxt unchanged on failed delivery → dup ACK
    } else if (seq_gt(header->seq, p.rcv_nxt)) {
      // Out of order: buffer (bounded) and ask for what we need.
      if (p.ooo.size() < 64) {
        p.ooo.emplace(header->seq, std::move(bytes));
        ++p.stats.ooo_buffered;
      }
      ++p.stats.dup_acks_sent;
      send_ack(id);
    } else {
      // Partially duplicate: trim the prefix we already have. On a failed
      // delivery the ACK repeats the old rcv_nxt, soliciting retransmit.
      const std::uint32_t skip = p.rcv_nxt - header->seq;
      (void)deliver_payload(id, {bytes.begin() + skip, bytes.end()});
      send_ack(id);
    }
  }

  // FIN processing (only once all preceding data has arrived).
  if (header->has(kFin) &&
      header->seq + payload_len == p.rcv_nxt) {
    handle_fin(id);
  }
}

bool TcpLayer::deliver_payload(PcbId id, std::vector<std::uint8_t> bytes) {
  TcpPcb& p = pcb(id);
  if (bytes.empty()) return true;
  // Consume sequence space only when the bytes actually reach the socket
  // path. Advancing rcv_nxt past an allocation failure would ACK data
  // that was silently dropped — the peer clears its rtx entry and the
  // hole in the stream becomes unrecoverable. Failing here instead makes
  // the segment look rx-lost, and the peer's retransmit repairs it.
  buf::Packet pkt = buf::Packet::from_bytes(ip_.pool(), bytes);
  if (!pkt) return false;
  p.rcv_nxt += static_cast<std::uint32_t>(bytes.size());
  core::Message up(std::move(pkt));
  up.flow_id = p.socket;
  emit(std::move(up), 0);
  return true;
}

void TcpLayer::handle_fin(PcbId id) {
  TcpPcb& p = pcb(id);
  if (p.fin_received) return;
  p.fin_received = true;
  ++p.rcv_nxt;
  send_ack(id);
  switch (p.state) {
    case TcpState::kEstablished:
      p.state = TcpState::kCloseWait;
      break;
    case TcpState::kFinWait1:
      // Our FIN not yet acked: simultaneous close.
      p.state = TcpState::kClosing;
      break;
    case TcpState::kFinWait2:
      enter_time_wait(id);
      break;
    default:
      break;
  }
}

void TcpLayer::process_ack(PcbId id, std::uint32_t ack, std::uint32_t wnd) {
  TcpPcb& p = pcb(id);
  p.snd_wnd = wnd;
  if (seq_gt(ack, p.snd_una) && seq_leq(ack, p.snd_nxt)) {
    p.snd_una = ack;
    while (!p.rtx.empty()) {
      const RtxSegment& seg = p.rtx.front();
      const std::uint32_t seg_space =
          seg.len + ((seg.flags & kSyn) != 0 ? 1 : 0) +
          ((seg.flags & kFin) != 0 ? 1 : 0);
      if (seq_leq(seg.seq + seg_space, p.snd_una)) {
        p.rtx.pop_front();
      } else {
        break;
      }
    }
    p.retries = 0;
    p.rto_sec = cfg_.rto_initial_sec;
    p.rtx_deadline = p.rtx.empty()
                         ? std::numeric_limits<double>::infinity()
                         : now() + p.rto_sec;
  }
  try_send_data(id);
}

void TcpLayer::try_send_data(PcbId id) {
  TcpPcb& p = pcb(id);
  if (p.state != TcpState::kEstablished && p.state != TcpState::kCloseWait &&
      p.state != TcpState::kFinWait1 && p.state != TcpState::kLastAck &&
      p.state != TcpState::kSynReceived)
    return;

  while (!p.send_buffer.empty() &&
         (p.state == TcpState::kEstablished ||
          p.state == TcpState::kCloseWait)) {
    const std::uint32_t window = p.usable_window();
    if (window == 0) break;
    const auto take = static_cast<std::uint32_t>(std::min<std::size_t>(
        {p.send_buffer.size(), p.mss, window}));
    if (take == 0) break;
    std::vector<std::uint8_t> payload(p.send_buffer.begin(),
                                      p.send_buffer.begin() + take);
    // Erase only after the segment is built and queued for rtx — if the
    // mbuf pool is exhausted the bytes must stay in the send buffer, or
    // they would fall out of the stream with no retransmit entry to
    // recover them (on_timer re-attempts once nothing is in flight).
    if (!send_segment(id, static_cast<std::uint8_t>(kAck | kPsh),
                      std::move(payload), /*retransmission=*/false))
      return;
    p.send_buffer.erase(p.send_buffer.begin(),
                        p.send_buffer.begin() + take);
  }

  // Persist: if the peer's window is closed with nothing in flight, no
  // ACK will ever arrive to reopen it — arm the probe timer. Any other
  // state (window open, or data in flight whose ACK will carry a window
  // update) disarms it.
  const bool zero_window_stall =
      p.snd_wnd == 0 && p.rtx.empty() && !p.send_buffer.empty() &&
      (p.state == TcpState::kEstablished || p.state == TcpState::kCloseWait);
  if (zero_window_stall && cfg_.enable_persist_timer) {
    if (!std::isfinite(p.persist_deadline))
      p.persist_deadline = now() + p.rto_sec;
  } else {
    p.persist_deadline = std::numeric_limits<double>::infinity();
  }

  // FIN once the buffer drains. State advances only if the FIN actually
  // went out; otherwise fin_queued stays set for a later attempt.
  if (p.fin_queued && p.send_buffer.empty()) {
    if (p.state == TcpState::kEstablished ||
        p.state == TcpState::kSynReceived) {
      if (send_segment(id, static_cast<std::uint8_t>(kFin | kAck), {},
                       /*retransmission=*/false)) {
        p.state = TcpState::kFinWait1;
        p.fin_queued = false;
      }
    } else if (p.state == TcpState::kCloseWait) {
      if (send_segment(id, static_cast<std::uint8_t>(kFin | kAck), {},
                       /*retransmission=*/false)) {
        p.state = TcpState::kLastAck;
        p.fin_queued = false;
      }
    }
  }
}

bool TcpLayer::send_segment(PcbId id, std::uint8_t flags,
                            std::vector<std::uint8_t> payload,
                            bool retransmission,
                            std::uint32_t seq_override) {
  trace_fn(Fn::kTcpOutput);
  TcpPcb& p = pcb(id);
  const std::uint32_t seq = retransmission ? seq_override : p.snd_nxt;

  buf::Packet pkt = buf::Packet::make(ip_.pool());
  if (!pkt) return false;

  wire::TcpHeader header;
  header.src_port = p.local_port;
  header.dst_port = p.remote_port;
  header.seq = seq;
  header.ack = (flags & kAck) != 0 ? p.rcv_nxt : 0;
  header.flags = flags;
  header.window = advertised_window(p);
  if ((flags & kSyn) != 0) header.mss = cfg_.mss;

  std::uint8_t header_bytes[wire::kTcpMinHeaderLen + 4];
  const std::size_t hlen = wire::write_tcp(header, header_bytes);
  if (hlen == 0) return false;
  if (!pkt.append({header_bytes, hlen})) return false;
  if (!payload.empty() && !pkt.append(payload)) return false;
  pkt.sync_pkt_len();

  // Patch the checksum now that everything is in place.
  const std::uint16_t sum = wire::transport_cksum(
      pkt, 0, pkt.length(), p.local_ip, p.remote_ip,
      static_cast<std::uint8_t>(wire::IpProto::kTcp));
  std::uint8_t sum_bytes[2];
  store_be16(sum_bytes, sum);
  if (!pkt.copy_in(16, sum_bytes)) return false;

  ++p.stats.segs_out;
  if ((flags & kAck) != 0 && payload.empty() &&
      (flags & (kSyn | kFin)) == 0) {
    ++p.stats.acks_sent;  // pure window/ack segment
  }

  if (!retransmission) {
    const std::uint32_t seg_space =
        static_cast<std::uint32_t>(payload.size()) +
        ((flags & kSyn) != 0 ? 1 : 0) + ((flags & kFin) != 0 ? 1 : 0);
    if (seg_space != 0) {
      p.rtx.push_back(RtxSegment{
          seq, static_cast<std::uint32_t>(payload.size()), flags,
          std::move(payload)});
      p.snd_nxt = seq + seg_space;
      if (seq_gt(p.snd_nxt, p.snd_max)) p.snd_max = p.snd_nxt;
      if (p.rtx_deadline == std::numeric_limits<double>::infinity())
        p.rtx_deadline = now() + p.rto_sec;
    }
  } else if (!payload.empty() || (flags & (kSyn | kFin)) != 0) {
    ++p.stats.retransmits;  // pure ACKs resent via this path don't count
  }

  // Data or window-bearing segment counts as an ACK of everything seen.
  p.segs_since_ack = 0;
  p.delack_deadline = std::numeric_limits<double>::infinity();

  ip_.output(std::move(pkt), p.remote_ip, wire::IpProto::kTcp);
  return true;
}

void TcpLayer::send_ack(PcbId id) {
  send_segment(id, kAck, {}, /*retransmission=*/true,
               pcb(id).snd_nxt);  // pure ACK consumes no sequence space
}

void TcpLayer::send_rst(std::uint32_t dst_ip, std::uint16_t dst_port,
                        std::uint32_t src_ip, std::uint16_t src_port,
                        std::uint32_t seq, std::uint32_t ack, bool with_ack) {
  ++stats_.rsts_sent;
  buf::Packet pkt = buf::Packet::make(ip_.pool());
  if (!pkt) return;
  wire::TcpHeader header;
  header.src_port = src_port;
  header.dst_port = dst_port;
  header.seq = seq;
  header.ack = ack;
  header.flags = static_cast<std::uint8_t>(kRst | (with_ack ? kAck : 0));
  std::uint8_t header_bytes[wire::kTcpMinHeaderLen];
  if (wire::write_tcp(header, header_bytes) == 0) return;
  if (!pkt.append(header_bytes)) return;
  const std::uint16_t sum = wire::transport_cksum(
      pkt, 0, pkt.length(), src_ip, dst_ip,
      static_cast<std::uint8_t>(wire::IpProto::kTcp));
  std::uint8_t sum_bytes[2];
  store_be16(sum_bytes, sum);
  if (!pkt.copy_in(16, sum_bytes)) return;
  pkt.sync_pkt_len();
  ip_.output(std::move(pkt), dst_ip, wire::IpProto::kTcp);
}

void TcpLayer::enter_established(PcbId id) {
  TcpPcb& p = pcb(id);
  if (p.state == TcpState::kEstablished) return;
  p.state = TcpState::kEstablished;
  ++stats_.conns_established;
  last_pcb_ = id;
  if (accept_hook_) accept_hook_(id);
  try_send_data(id);
}

void TcpLayer::cancel_timers(TcpPcb& p) noexcept {
  p.rtx_deadline = std::numeric_limits<double>::infinity();
  p.delack_deadline = std::numeric_limits<double>::infinity();
  p.persist_deadline = std::numeric_limits<double>::infinity();
  p.retries = 0;
  p.segs_since_ack = 0;
  p.keep_probes_sent = 0;
}

void TcpLayer::enter_time_wait(PcbId id) {
  TcpPcb& p = pcb(id);
  p.state = TcpState::kTimeWait;
  // Our FIN is acked, so nothing may retransmit and no delayed ACK is
  // owed; only the 2MSL timer stays armed.
  cancel_timers(p);
  p.rtx.clear();
  p.time_wait_deadline = now() + cfg_.time_wait_sec;
}

void TcpLayer::reset_connection(PcbId id) {
  TcpPcb& p = pcb(id);
  if (p.state != TcpState::kClosed) ++stats_.conns_reset;
  if (last_pcb_ == id) last_pcb_ = kNoPcb;
  p.state = TcpState::kClosed;
  p.rtx.clear();
  p.send_buffer.clear();
  p.ooo.clear();
  // Disarm everything: the slot is immediately reusable by alloc_pcb(),
  // and a stale deadline must never fire against the next tenant.
  cancel_timers(p);
  p.time_wait_deadline = std::numeric_limits<double>::infinity();
  p.fin_queued = false;
  p.fin_received = false;
  sync_wheel(id);  // slot reusable: the wheel must forget it now
}

void TcpLayer::crash() {
  // No RSTs, no state transitions observable on the wire: the machine
  // simply stops existing mid-thought. Each slot is reinitialised so
  // alloc_pcb() can hand it out fresh after the reboot. Wheel timers are
  // software, not protocol state — cancel them or they would fire into
  // the wiped PCBs.
  for (auto& p : pcbs_) {
    if (wheel_ != nullptr && p->wheel_timer != time::kNoTimer)
      wheel_->cancel(p->wheel_timer);
    *p = TcpPcb{};
  }
  last_pcb_ = kNoPcb;
}

void TcpLayer::on_timer() {
  for (PcbId id = 0; id < pcbs_.size(); ++id) pcb_timer(id);
}

void TcpLayer::pcb_timer(PcbId id) {
  const double t = now();
  TcpPcb& p = pcb(id);
  // Every action below re-checks its own deadline, so a spurious (early)
  // wheel fire — a timer storm — costs one pass over this PCB and
  // nothing else. The guard re-arms the wheel at whatever deadline is
  // earliest once the work settles.
  const WheelSync wheel_sync{this, id};
  switch (p.state) {
    case TcpState::kClosed:
    case TcpState::kListen:
      return;
    case TcpState::kTimeWait:
      if (t >= p.time_wait_deadline) {
        if (last_pcb_ == id) last_pcb_ = kNoPcb;
        p.state = TcpState::kClosed;
      }
      return;
    default:
      break;
  }
  if (t >= p.delack_deadline) {
    send_ack(id);
  }
  // Keepalive: a peer silent past the idle threshold may be gone —
  // crashed, or the other half of a half-open connection. Probe with a
  // zero-length segment one byte below snd_una: a live peer must answer
  // it with an ACK (zero-length acceptability), a restarted peer
  // answers with a RST, and a dead one answers nothing — after
  // `keepalive_probes` silences the connection is torn down rather
  // than wedged forever (4.4BSD tcp_keepalive semantics).
  if (cfg_.keepalive_idle_sec > 0.0 && p.rtx.empty() &&
      (p.state == TcpState::kEstablished ||
       p.state == TcpState::kCloseWait ||
       p.state == TcpState::kFinWait2)) {
    const double due = p.last_rcv_time + cfg_.keepalive_idle_sec +
                       p.keep_probes_sent * cfg_.keepalive_intvl_sec;
    if (t >= due) {
      if (p.keep_probes_sent >= cfg_.keepalive_probes) {
        ++stats_.keepalive_drops;
        reset_connection(id);
        return;
      }
      ++p.keep_probes_sent;
      ++p.stats.keepalive_probes;
      send_segment(id, kAck, {}, /*retransmission=*/true, p.snd_una - 1);
    }
  }
  if (t >= p.persist_deadline) {
    // Zero-window probe: force one byte past the closed window. The
    // receiver either accepts it (and its ACK reopens the window) or
    // dup-ACKs with the current window; either way we learn the truth.
    // The probe byte rides the normal rtx queue, so backoff and loss
    // recovery come for free; try_send_data re-arms if the window is
    // still closed once the probe is ACKed.
    p.persist_deadline = kInf;
    if (!p.send_buffer.empty() && p.rtx.empty() &&
        (p.state == TcpState::kEstablished ||
         p.state == TcpState::kCloseWait)) {
      ++p.stats.persist_probes;
      std::vector<std::uint8_t> probe(p.send_buffer.begin(),
                                      p.send_buffer.begin() + 1);
      if (send_segment(id, static_cast<std::uint8_t>(kAck | kPsh),
                       std::move(probe), /*retransmission=*/false)) {
        p.send_buffer.pop_front();
      } else {
        p.persist_deadline = t + p.rto_sec;  // pool dry: retry later
      }
    }
  }
  if (!p.rtx.empty() && t >= p.rtx_deadline) {
    ++p.retries;
    if (p.retries > cfg_.max_retransmits) {
      reset_connection(id);
      return;
    }
    const RtxSegment& seg = p.rtx.front();
    send_segment(id, seg.flags, seg.payload, /*retransmission=*/true,
                 seg.seq);
    p.rto_sec = std::min(p.rto_sec * 2.0, cfg_.rto_max_sec);
    p.rtx_deadline = t + p.rto_sec;
  }
  // Mbuf-exhaustion recovery: a segment whose allocation failed was
  // neither sent nor queued for retransmit, so nothing is in flight to
  // drive progress — the rtx queue is empty while the connection still
  // owes the peer a segment. Re-attempt it each timer tick until the
  // pool recovers (snd_nxt was never advanced, so the sequence numbers
  // come out identical to the original attempt). On the wheel this rides
  // the kPoolRetrySec deadline earliest_deadline() keeps armed.
  if (p.rtx.empty()) {
    if (p.state == TcpState::kSynSent) {
      send_segment(id, kSyn, {}, /*retransmission=*/false);
    } else if (p.state == TcpState::kSynReceived) {
      send_segment(id, static_cast<std::uint8_t>(kSyn | kAck), {},
                   /*retransmission=*/false);
    } else if (!p.send_buffer.empty() || p.fin_queued) {
      try_send_data(id);
    }
  }
}

std::pair<double, time::TimerClass> TcpLayer::earliest_deadline(
    const TcpPcb& p) const {
  double best = kInf;
  time::TimerClass cls = time::TimerClass::kCadence;
  const auto consider = [&](double d, time::TimerClass c) {
    if (d < best) {
      best = d;
      cls = c;
    }
  };
  switch (p.state) {
    case TcpState::kClosed:
    case TcpState::kListen:
      return {kInf, cls};
    case TcpState::kTimeWait:
      return {p.time_wait_deadline, time::TimerClass::kExpiry};
    default:
      break;
  }
  consider(p.delack_deadline, time::TimerClass::kCadence);
  if (cfg_.keepalive_idle_sec > 0.0 && p.rtx.empty() &&
      (p.state == TcpState::kEstablished || p.state == TcpState::kCloseWait ||
       p.state == TcpState::kFinWait2)) {
    consider(p.last_rcv_time + cfg_.keepalive_idle_sec +
                 p.keep_probes_sent * cfg_.keepalive_intvl_sec,
             time::TimerClass::kLiveness);
  }
  consider(p.persist_deadline, time::TimerClass::kLiveness);
  if (!p.rtx.empty()) consider(p.rtx_deadline, time::TimerClass::kLiveness);
  // Mbuf-exhaustion recovery cadence: the PCB owes the peer a segment it
  // could not allocate; keep a short-fuse liveness timer burning until
  // the pool recovers (mirrors pcb_timer's recovery block, which also
  // covers the zero-window stall where try_send_data is a cheap no-op).
  if (p.rtx.empty() &&
      (p.state == TcpState::kSynSent || p.state == TcpState::kSynReceived ||
       !p.send_buffer.empty() || p.fin_queued)) {
    consider(now() + kPoolRetrySec, time::TimerClass::kLiveness);
  }
  return {best, cls};
}

void TcpLayer::sync_wheel(PcbId id) {
  if (wheel_ == nullptr) return;
  TcpPcb& p = pcb(id);
  const auto [deadline, cls] = earliest_deadline(p);
  if (!std::isfinite(deadline)) {
    if (p.wheel_timer != time::kNoTimer) {
      wheel_->cancel(p.wheel_timer);
      p.wheel_timer = time::kNoTimer;
    }
    return;
  }
  // Unchanged earliest deadline: the armed timer is already right.
  if (p.wheel_timer != time::kNoTimer &&
      wheel_->deadline_of(p.wheel_timer) == deadline)
    return;
  if (p.wheel_timer != time::kNoTimer) wheel_->cancel(p.wheel_timer);
  p.wheel_timer = wheel_->arm(deadline, cls, [this, id] { pcb_timer(id); });
}

}  // namespace ldlp::stack
