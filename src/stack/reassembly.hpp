// IPv4 fragment reassembly.
//
// Classic hole-filling reassembly keyed by (src, dst, ident, protocol),
// with a per-datagram timeout so lost fragments don't pin buffers.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "buf/packet.hpp"
#include "wire/ipv4.hpp"

namespace ldlp::stack {

struct ReassemblyStats {
  std::uint64_t fragments_in = 0;
  std::uint64_t datagrams_out = 0;
  std::uint64_t timeouts = 0;
  std::uint64_t overflows = 0;
};

class ReassemblyTable {
 public:
  explicit ReassemblyTable(std::size_t max_datagrams = 64,
                           double timeout_sec = 30.0)
      : max_datagrams_(max_datagrams), timeout_sec_(timeout_sec) {}

  /// Offer a fragment (header already parsed, `payload` is the fragment
  /// body with IP header stripped). Returns the reassembled payload when
  /// this fragment completes the datagram.
  [[nodiscard]] std::optional<buf::Packet> offer(const wire::Ipv4Header& header,
                                                 buf::Packet payload,
                                                 double now_sec);

  /// Drop datagrams older than the timeout.
  void expire(double now_sec);

  /// Drop every partial datagram (host restart): fragments held across a
  /// crash never complete, the peer's transport retransmits instead.
  void clear() noexcept { table_.clear(); }

  [[nodiscard]] const ReassemblyStats& stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] std::size_t pending() const noexcept { return table_.size(); }

  /// Structural invariant check for chaos builds: bounded table, sorted
  /// non-overlapping fragments per datagram. Returns false and fills
  /// `why` (if non-null) on the first violation.
  [[nodiscard]] bool audit(std::string* why) const;

 private:
  struct Key {
    std::uint32_t src;
    std::uint32_t dst;
    std::uint16_t ident;
    std::uint8_t proto;

    auto operator<=>(const Key&) const = default;
  };

  struct Fragment {
    std::uint16_t offset_bytes;
    buf::Packet payload;
  };

  struct Datagram {
    std::vector<Fragment> fragments;  ///< Sorted by offset, non-overlapping.
    std::optional<std::uint32_t> total_len;  ///< Known once the last
                                             ///< fragment arrives.
    double first_seen = 0.0;
  };

  [[nodiscard]] static bool complete(const Datagram& d) noexcept;
  [[nodiscard]] static buf::Packet assemble(Datagram& d);

  std::size_t max_datagrams_;
  double timeout_sec_;
  std::map<Key, Datagram> table_;
  ReassemblyStats stats_;
};

}  // namespace ldlp::stack
