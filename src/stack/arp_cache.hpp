// ARP cache with pending-resolution queues.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "buf/packet.hpp"
#include "wire/ethernet.hpp"

namespace ldlp::stack {

class ArpCache {
 public:
  explicit ArpCache(std::size_t max_pending_per_ip = 8)
      : max_pending_(max_pending_per_ip) {}

  [[nodiscard]] std::optional<wire::MacAddr> lookup(
      std::uint32_t ip) const noexcept;

  void insert(std::uint32_t ip, const wire::MacAddr& mac);

  /// Park a packet until `ip` resolves. Returns false (packet dropped)
  /// when the per-IP pending queue is full.
  [[nodiscard]] bool hold(std::uint32_t ip, buf::Packet pkt);

  /// Rate-limit policy for requests on an unresolved IP: returns true
  /// when a (re)request should go on the wire — the first time a packet
  /// is parked and every second park thereafter, so a lost request is
  /// retried as soon as traffic shows the resolution is still wanted.
  [[nodiscard]] bool should_request(std::uint32_t ip);

  /// Remove and return the packets parked on `ip` (called on resolution).
  [[nodiscard]] std::vector<buf::Packet> take_pending(std::uint32_t ip);

  [[nodiscard]] std::size_t entries() const noexcept { return table_.size(); }

 private:
  struct PendingState {
    std::vector<buf::Packet> packets;
    std::uint32_t parks = 0;  ///< Packets parked since creation.
  };

  std::size_t max_pending_;
  std::unordered_map<std::uint32_t, wire::MacAddr> table_;
  std::unordered_map<std::uint32_t, PendingState> pending_;
};

}  // namespace ldlp::stack
