// ARP cache with pending-resolution queues.
//
// Robustness posture: parked packets are bounded per IP *and* globally
// (an unresolvable subnet scan must not eat the mbuf pool), and repeat
// requests toward a silent IP back off exponentially with a cap, so a
// dead next hop costs a trickle of requests rather than one per parked
// packet.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "buf/packet.hpp"
#include "wire/ethernet.hpp"

namespace ldlp::stack {

struct ArpCacheStats {
  std::uint64_t parked = 0;
  std::uint64_t park_drops = 0;  ///< Packets refused (per-IP or global cap).
  std::uint64_t requests_allowed = 0;
  std::uint64_t requests_suppressed = 0;  ///< Backoff said "not yet".
};

class ArpCache {
 public:
  explicit ArpCache(std::size_t max_pending_per_ip = 8,
                    std::size_t max_pending_total = 64)
      : max_pending_(max_pending_per_ip),
        max_pending_total_(max_pending_total) {}

  [[nodiscard]] std::optional<wire::MacAddr> lookup(
      std::uint32_t ip) const noexcept;

  void insert(std::uint32_t ip, const wire::MacAddr& mac);

  /// Park a packet until `ip` resolves. Returns false (packet dropped)
  /// when the per-IP or the global pending cap is hit.
  [[nodiscard]] bool hold(std::uint32_t ip, buf::Packet pkt);

  /// Rate-limit policy for requests on an unresolved IP: the first park
  /// sends immediately, then the gap between requests doubles — parks
  /// 1, 3, 7, 15, 31, 63 trigger a (re)request, after which every 64th
  /// park does (capped exponential backoff). The state resets when the
  /// IP resolves, so a re-expired entry starts eager again.
  [[nodiscard]] bool should_request(std::uint32_t ip);

  /// Remove and return the packets parked on `ip` (called on resolution).
  [[nodiscard]] std::vector<buf::Packet> take_pending(std::uint32_t ip);

  [[nodiscard]] std::size_t entries() const noexcept { return table_.size(); }
  [[nodiscard]] std::size_t pending_total() const noexcept {
    return pending_total_;
  }
  [[nodiscard]] const ArpCacheStats& stats() const noexcept { return stats_; }

  /// Structural invariant check for chaos builds: pending accounting
  /// matches the queues, caps are respected, and no IP is simultaneously
  /// resolved and pending. Returns false and fills `why` on violation.
  [[nodiscard]] bool audit(std::string* why) const;

 private:
  struct PendingState {
    std::vector<buf::Packet> packets;
    std::uint32_t parks = 0;          ///< Packets parked since creation.
    std::uint32_t next_request = 1;   ///< Park count of the next request.
    std::uint32_t gap = 2;            ///< Current backoff gap, doubling.
  };

  static constexpr std::uint32_t kMaxRequestGap = 64;

  std::size_t max_pending_;
  std::size_t max_pending_total_;
  std::size_t pending_total_ = 0;
  std::unordered_map<std::uint32_t, wire::MacAddr> table_;
  std::unordered_map<std::uint32_t, PendingState> pending_;
  ArpCacheStats stats_;
};

}  // namespace ldlp::stack
