// ARP cache with pending-resolution queues.
//
// Robustness posture: parked packets are bounded per IP *and* globally
// (an unresolvable subnet scan must not eat the mbuf pool), and repeat
// requests toward a silent IP back off exponentially with a cap, so a
// dead next hop costs a trickle of requests rather than one per parked
// packet.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "buf/packet.hpp"
#include "wire/ethernet.hpp"

namespace ldlp::stack {

struct ArpCacheStats {
  std::uint64_t parked = 0;
  std::uint64_t park_drops = 0;  ///< Packets refused (per-IP or global cap).
  std::uint64_t requests_allowed = 0;
  std::uint64_t requests_suppressed = 0;  ///< Backoff said "not yet".
  std::uint64_t retries = 0;            ///< Timer-driven re-requests.
  std::uint64_t resolve_failures = 0;   ///< Entries that exhausted retries.
};

class ArpCache {
 public:
  explicit ArpCache(std::size_t max_pending_per_ip = 8,
                    std::size_t max_pending_total = 64)
      : max_pending_(max_pending_per_ip),
        max_pending_total_(max_pending_total) {}

  [[nodiscard]] std::optional<wire::MacAddr> lookup(
      std::uint32_t ip) const noexcept;

  void insert(std::uint32_t ip, const wire::MacAddr& mac);

  /// Park a packet until `ip` resolves. Returns false (packet dropped)
  /// when the per-IP or the global pending cap is hit.
  [[nodiscard]] bool hold(std::uint32_t ip, buf::Packet pkt);

  /// Rate-limit policy for requests on an unresolved IP: the first park
  /// sends immediately, then the gap between requests doubles — parks
  /// 1, 3, 7, 15, 31, 63 trigger a (re)request, after which every 64th
  /// park does (capped exponential backoff). The state resets when the
  /// IP resolves, so a re-expired entry starts eager again.
  [[nodiscard]] bool should_request(std::uint32_t ip);

  /// Remove and return the packets parked on `ip` (called on resolution).
  [[nodiscard]] std::vector<buf::Packet> take_pending(std::uint32_t ip);

  /// Timer hook (4.4BSD arptimer): returns the IPs whose pending
  /// resolution is due for a re-request. Park-triggered requests alone
  /// deadlock when the one request for a lone parked packet is lost —
  /// nothing ever parks again, so nothing ever re-requests, and the
  /// packet (an mbuf) is parked forever. Retries back off 0.5 s
  /// doubling to 4 s; an IP that stays silent past `kMaxTries` retries
  /// has its parked packets dropped (freed) and is forgotten —
  /// resolution failure, as BSD's EHOSTDOWN, not a leak.
  [[nodiscard]] std::vector<std::uint32_t> poll_retries(double now);

  /// Wheel-driven variant of the first-pass arming poll_retries does:
  /// arm the retry deadline at park time so the owner can file it on a
  /// timer wheel instead of scanning. Idempotent while already armed.
  void arm_retry(std::uint32_t ip, double now);

  /// Earliest armed retry deadline across parked IPs, +inf when none —
  /// what the owning layer arms its consolidated wheel timer at.
  [[nodiscard]] double next_retry_deadline() const noexcept;

  [[nodiscard]] std::size_t entries() const noexcept { return table_.size(); }
  [[nodiscard]] std::size_t pending_total() const noexcept {
    return pending_total_;
  }
  [[nodiscard]] const ArpCacheStats& stats() const noexcept { return stats_; }

  /// Forget everything — resolutions, parked packets, backoff state — as
  /// a crashing host does (FaultKind::kHostRestart). Parked packets are
  /// freed, not transmitted.
  void flush() noexcept {
    table_.clear();
    pending_.clear();
    pending_total_ = 0;
  }

  /// Structural invariant check for chaos builds: pending accounting
  /// matches the queues, caps are respected, and no IP is simultaneously
  /// resolved and pending. Returns false and fills `why` on violation.
  [[nodiscard]] bool audit(std::string* why) const;

 private:
  struct PendingState {
    std::vector<buf::Packet> packets;
    std::uint32_t parks = 0;          ///< Packets parked since creation.
    std::uint32_t next_request = 1;   ///< Park count of the next request.
    std::uint32_t gap = 2;            ///< Current backoff gap, doubling.
    double retry_deadline = 0.0;      ///< 0 = not yet armed by the timer.
    double retry_gap_sec = 0.5;       ///< Timer backoff, doubling to cap.
    std::uint32_t tries = 0;          ///< Timer retries issued so far.
  };

  static constexpr std::uint32_t kMaxRequestGap = 64;
  static constexpr double kMaxRetryGapSec = 4.0;
  static constexpr std::uint32_t kMaxTries = 5;

  std::size_t max_pending_;
  std::size_t max_pending_total_;
  std::size_t pending_total_ = 0;
  std::unordered_map<std::uint32_t, wire::MacAddr> table_;
  std::unordered_map<std::uint32_t, PendingState> pending_;
  ArpCacheStats stats_;
};

}  // namespace ldlp::stack
