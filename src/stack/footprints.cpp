#include "stack/footprints.hpp"

#include "common/assert.hpp"

namespace ldlp::stack {

thread_local StackTracer* StackTracer::active_ = nullptr;

namespace {

using trace::DataIntent;
using trace::LayerClass;

struct FnSpec {
  Fn fn;
  const char* name;
  LayerClass layer;
  std::uint32_t size;    ///< Figure 1 function size (bytes).
  std::uint32_t target;  ///< Calibrated touched bytes (32 B line units)
                         ///< so per-layer sums match Table 1.
};

// Sizes are the numbers printed beside each function in the paper's
// Figure 1. Targets distribute each Table 1 layer total over the layer's
// functions proportionally to size (Device 4480, Ethernet 2784, IP 3168,
// TCP 5536, Socket low 608, Socket high 1184, Kernel entry/exit 2208,
// Process control 5472, Buffer mgmt 1632, Copy/checksum 3232).
constexpr FnSpec kFns[] = {
    // Device: total target 4480 over 6544 bytes of code.
    {Fn::kLeIntr, "leintr", LayerClass::kDevice, 3264, 2234},
    {Fn::kLeStart, "lestart", LayerClass::kDevice, 1824, 1249},
    {Fn::kAsicIntr, "asic_intr", LayerClass::kDevice, 392, 268},
    {Fn::kTcIoIntr, "tc_3000_500_iointr", LayerClass::kDevice, 848, 581},
    {Fn::kLeWriteReg, "lewritereg", LayerClass::kDevice, 216, 148},
    // Ethernet: 2784 over 7592.
    {Fn::kEtherInput, "ether_input", LayerClass::kEthernet, 2728, 1000},
    {Fn::kEtherOutput, "ether_output", LayerClass::kEthernet, 3632, 1332},
    {Fn::kArpResolve, "arpresolve", LayerClass::kEthernet, 944, 346},
    {Fn::kInBroadcast, "in_broadcast", LayerClass::kEthernet, 288, 106},
    // IP: 3168 over 8312.
    {Fn::kIpIntr, "ipintr", LayerClass::kIp, 2648, 1009},
    {Fn::kIpOutput, "ip_output", LayerClass::kIp, 5120, 1951},
    {Fn::kNetIntr, "netintr", LayerClass::kIp, 344, 131},
    {Fn::kDoSir, "do_sir", LayerClass::kIp, 200, 77},
    // TCP: 5536 over 19096 (the fast path touches ~29% of the code).
    {Fn::kTcpInput, "tcp_input", LayerClass::kTcp, 11872, 3442},
    {Fn::kTcpOutput, "tcp_output", LayerClass::kTcp, 4872, 1412},
    {Fn::kTcpUsrreq, "tcp_usrreq", LayerClass::kTcp, 2352, 682},
    // Socket low: 608 over 1224.
    {Fn::kSbAppend, "sbappend", LayerClass::kSocketLow, 160, 79},
    {Fn::kSbCompress, "sbcompress", LayerClass::kSocketLow, 704, 350},
    {Fn::kSoWakeup, "sowakeup", LayerClass::kSocketLow, 360, 179},
    // Socket high: 1184 over 6088.
    {Fn::kSoReceive, "soreceive", LayerClass::kSocketHigh, 5536, 1077},
    {Fn::kSooRead, "soo_read", LayerClass::kSocketHigh, 80, 16},
    {Fn::kSbWait, "sbwait", LayerClass::kSocketHigh, 160, 31},
    {Fn::kRead, "read", LayerClass::kSocketHigh, 312, 60},
    // Kernel entry/exit: 2208 over 4188.
    {Fn::kSyscall, "syscall", LayerClass::kKernelEntry, 1176, 620},
    {Fn::kTrap, "trap", LayerClass::kKernelEntry, 2008, 1054},
    {Fn::kXentInt, "XentInt", LayerClass::kKernelEntry, 208, 110},
    {Fn::kXentSys, "XentSys", LayerClass::kKernelEntry, 148, 78},
    {Fn::kRei, "rei", LayerClass::kKernelEntry, 320, 169},
    {Fn::kInterrupt, "interrupt", LayerClass::kKernelEntry, 184, 97},
    {Fn::kPalSwpIpl, "pal_swpipl", LayerClass::kKernelEntry, 8, 8},
    {Fn::kSpl0, "spl0", LayerClass::kKernelEntry, 136, 72},
    // Process control: 5472 over 3552 named + misc aggregate.
    {Fn::kTsleep, "tsleep", LayerClass::kProcessControl, 1096, 944},
    {Fn::kWakeup, "wakeup", LayerClass::kProcessControl, 488, 420},
    {Fn::kMiSwitch, "mi_switch", LayerClass::kProcessControl, 520, 448},
    {Fn::kCpuSwitch, "cpu_switch", LayerClass::kProcessControl, 460, 396},
    {Fn::kSetRunqueue, "setrunqueue", LayerClass::kProcessControl, 176, 152},
    {Fn::kSelWakeup, "selwakeup", LayerClass::kProcessControl, 456, 393},
    {Fn::kIdle, "idle", LayerClass::kProcessControl, 68, 59},
    {Fn::kMicrotime, "microtime", LayerClass::kProcessControl, 288, 248},
    {Fn::kSchedMisc, "sched_misc", LayerClass::kProcessControl, 2800, 2412},
    // Buffer management: 1632 over 2840.
    {Fn::kMalloc, "malloc", LayerClass::kBufferMgmt, 1608, 924},
    {Fn::kFree, "free", LayerClass::kBufferMgmt, 856, 492},
    {Fn::kMAdj, "m_adj", LayerClass::kBufferMgmt, 376, 216},
    // Copy / checksum: 3232; in_cksum active bytes (992) are given in the
    // paper's section 5.1 directly.
    {Fn::kInCksum, "in_cksum", LayerClass::kCopyChecksum, 1104, 992},
    {Fn::kBcopy, "bcopy", LayerClass::kCopyChecksum, 620, 544},
    {Fn::kCopyout, "copyout", LayerClass::kCopyChecksum, 132, 116},
    {Fn::kUiomove, "uiomove", LayerClass::kCopyChecksum, 424, 372},
    {Fn::kBzero, "bzero", LayerClass::kCopyChecksum, 184, 161},
    {Fn::kNtohl, "ntohl", LayerClass::kCopyChecksum, 64, 56},
    {Fn::kNtohs, "ntohs", LayerClass::kCopyChecksum, 32, 28},
    {Fn::kCopyFromBufGap2, "copyfrombuf_gap2", LayerClass::kCopyChecksum, 240,
     211},
    {Fn::kZeroBufGap16, "zerobuf_gap16", LayerClass::kCopyChecksum, 184, 161},
    {Fn::kCopyToBufGap16, "copytobuf_gap16", LayerClass::kCopyChecksum, 208,
     183},
    {Fn::kCopyToBufGap2, "copytobuf_gap2", LayerClass::kCopyChecksum, 256,
     225},
    {Fn::kCopyFromBufGap16, "copyfrombuf_gap16", LayerClass::kCopyChecksum,
     208, 183},
};

struct RgnSpec {
  Rgn rgn;
  const char* name;
  LayerClass layer;
  DataIntent intent;
  std::uint32_t target;  ///< Table 1 bytes (32 B line units).
};

// Region extents are sized ~2x the touched bytes (kernel tables are
// touched sparsely); targets match the Table 1 RO/mutable columns.
constexpr RgnSpec kRgns[] = {
    {Rgn::kDevConfigRo, "le_config", LayerClass::kDevice,
     DataIntent::kReadOnly, 864},
    {Rgn::kDevRingMut, "le_ring", LayerClass::kDevice, DataIntent::kMutable,
     672},
    {Rgn::kEthIfnetRo, "ifnet_ro", LayerClass::kEthernet,
     DataIntent::kReadOnly, 480},
    {Rgn::kEthStatsMut, "ifnet_stats", LayerClass::kEthernet,
     DataIntent::kMutable, 128},
    {Rgn::kIpRouteRo, "ip_route", LayerClass::kIp, DataIntent::kReadOnly, 448},
    {Rgn::kIpStateMut, "ipstat", LayerClass::kIp, DataIntent::kMutable, 160},
    {Rgn::kTcpTablesRo, "tcp_tables", LayerClass::kTcp, DataIntent::kReadOnly,
     544},
    {Rgn::kTcpPcbMut, "tcp_pcb", LayerClass::kTcp, DataIntent::kMutable, 448},
    {Rgn::kSockLowRo, "sb_ro", LayerClass::kSocketLow, DataIntent::kReadOnly,
     32},
    {Rgn::kSockBufMut, "sockbuf", LayerClass::kSocketLow,
     DataIntent::kMutable, 160},
    {Rgn::kSockHighRo, "fileops", LayerClass::kSocketHigh,
     DataIntent::kReadOnly, 256},
    {Rgn::kSockFileMut, "file_state", LayerClass::kSocketHigh,
     DataIntent::kMutable, 64},
    {Rgn::kSysentRo, "sysent", LayerClass::kKernelEntry,
     DataIntent::kReadOnly, 1280},
    {Rgn::kKernFrameMut, "kern_globals", LayerClass::kKernelEntry,
     DataIntent::kMutable, 640},
    {Rgn::kProcTablesRo, "proc_tables", LayerClass::kProcessControl,
     DataIntent::kReadOnly, 544},
    {Rgn::kProcStateMut, "proc_state", LayerClass::kProcessControl,
     DataIntent::kMutable, 736},
    {Rgn::kBufBucketsRo, "kmembuckets", LayerClass::kBufferMgmt,
     DataIntent::kReadOnly, 192},
    {Rgn::kBufFreelistMut, "mbstat", LayerClass::kBufferMgmt,
     DataIntent::kMutable, 512},
    {Rgn::kCopyTablesRo, "copy_tables", LayerClass::kCopyChecksum,
     DataIntent::kReadOnly, 448},
    {Rgn::kCopyStateMut, "copy_state", LayerClass::kCopyChecksum,
     DataIntent::kMutable, 128},
};

// Sparsity parameters: executed code comes in ~96-byte basic-block runs,
// read-only data in ~20-byte items, mutable data in ~14-byte items (see
// DESIGN.md — chosen so Table 3's line-size scaling reproduces).
constexpr trace::SparsityParams kCodeSparsity{96, 8};
constexpr trace::SparsityParams kRoSparsity{20, 4};
constexpr trace::SparsityParams kMutSparsity{14, 4};

/// Table 1 counts whole cache lines; a touch of `target` bytes in runs of
/// mean length `run` rasterises to roughly target*(run+pad)/run bytes of
/// lines, where `pad` is the measured per-run line-boundary overhead
/// (empirically below the worst-case line-1 because runs share lines with
/// close neighbours). Pre-shrink the generated touch so the rasterised
/// size lands on the target.
[[nodiscard]] constexpr std::uint32_t deflate(std::uint32_t target,
                                              std::uint32_t mean_run,
                                              std::uint32_t pad) {
  return static_cast<std::uint32_t>(
      static_cast<std::uint64_t>(target) * mean_run / (mean_run + pad));
}

constexpr std::uint32_t kCodePad = 23;
constexpr std::uint32_t kRoPad = 18;
constexpr std::uint32_t kMutPad = 28;

}  // namespace

StackTracer::StackTracer(double code_scale)
    : code_(0x1000'0000, kCodeSparsity),
      data_(0x4000'0000, kRoSparsity, kMutSparsity) {
  LDLP_ASSERT(code_scale > 0.0 && code_scale <= 4.0);
  for (const FnSpec& spec : kFns) {
    const auto size = std::max<std::uint32_t>(
        8, static_cast<std::uint32_t>(spec.size * code_scale));
    const auto target = std::max<std::uint32_t>(
        8, static_cast<std::uint32_t>(spec.target * code_scale));
    const std::uint32_t active =
        size <= target
            ? size
            : std::min(size,
                       deflate(target, kCodeSparsity.mean_run, kCodePad));
    fn_ids_[static_cast<std::size_t>(spec.fn)] =
        code_.define(spec.name, spec.layer, size, active);
  }
  for (const RgnSpec& spec : kRgns) {
    const bool ro = spec.intent == DataIntent::kReadOnly;
    const std::uint32_t mean_item =
        ro ? kRoSparsity.mean_run : kMutSparsity.mean_run;
    const std::uint32_t active =
        deflate(spec.target, mean_item, ro ? kRoPad : kMutPad);
    // Region extent: touched items scattered through a table ~5x larger,
    // so neighbouring items rarely share a cache line.
    const std::uint32_t extent = active * 5 + 64;
    rgn_ids_[static_cast<std::size_t>(spec.rgn)] =
        data_.define(spec.name, spec.layer, spec.intent, extent, active);
  }
}

StackTracer::~StackTracer() {
  if (active_ == this) active_ = nullptr;
}

void StackTracer::activate(trace::TraceBuffer& buffer) noexcept {
  LDLP_ASSERT_MSG(active_ == nullptr || active_ == this,
                  "another StackTracer is already active");
  buffer_ = &buffer;
  buffer.enable();
  active_ = this;
}

void StackTracer::deactivate() noexcept {
  if (buffer_ != nullptr) buffer_->disable();
  buffer_ = nullptr;
  if (active_ == this) active_ = nullptr;
}

void StackTracer::call(Fn fn, double fraction, double revisit) const {
  if (buffer_ == nullptr) return;
  code_.record_call(*buffer_, fn_ids_[static_cast<std::size_t>(fn)], fraction,
                    revisit);
}

void StackTracer::touch(Rgn region, double fraction) const {
  if (buffer_ == nullptr) return;
  data_.record_touch(*buffer_, rgn_ids_[static_cast<std::size_t>(region)],
                     fraction);
}

void StackTracer::set_phase(trace::Phase phase) noexcept {
  if (buffer_ != nullptr) buffer_->set_phase(phase);
}

void StackTracer::packet_bytes(trace::RefKind kind, std::uint32_t len) const {
  if (buffer_ == nullptr) return;
  // Packet contents live in their own address range; Table 1 excludes
  // them via LayerClass::kPacketData, the Figure 1 footers include them.
  static constexpr std::uint64_t kPacketBase = 0x7000'0000;
  buffer_->record(kind, LayerClass::kPacketData, kPacketBase, len,
                  std::max<std::uint32_t>(1, len / 8));
}

}  // namespace ldlp::stack
