// IGMPv2 host side (RFC 2236) — the paper's third named small-message
// protocol. Eight-byte messages and a timer-driven state machine: joining
// a group emits unsolicited reports; a router's membership query starts a
// random delay timer; hearing another member's report suppresses ours;
// the last reporter sends a leave.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>

#include "common/rng.hpp"
#include "wire/ipv4.hpp"

namespace ldlp::stack {

class Ip4Layer;

inline constexpr std::uint32_t kAllHostsGroup = 0xe0000001;  ///< 224.0.0.1.

[[nodiscard]] constexpr bool is_multicast(std::uint32_t ip) noexcept {
  return (ip & 0xf0000000) == 0xe0000000;
}

enum class IgmpType : std::uint8_t {
  kQuery = 0x11,
  kReportV1 = 0x12,
  kReportV2 = 0x16,
  kLeave = 0x17,
};

struct IgmpMessage {
  IgmpType type = IgmpType::kQuery;
  std::uint8_t max_resp_deciseconds = 100;
  std::uint32_t group = 0;  ///< 0 in a general query.
};

inline constexpr std::size_t kIgmpLen = 8;

[[nodiscard]] std::optional<IgmpMessage> parse_igmp(
    std::span<const std::uint8_t> data) noexcept;
std::size_t write_igmp(const IgmpMessage& msg,
                       std::span<std::uint8_t> out) noexcept;

struct IgmpStats {
  std::uint64_t reports_sent = 0;
  std::uint64_t leaves_sent = 0;
  std::uint64_t queries_heard = 0;
  std::uint64_t reports_heard = 0;
  std::uint64_t suppressed = 0;  ///< Our pending report cancelled.
  std::uint64_t bad = 0;
};

class IgmpHost {
 public:
  /// `now_sec` is the host clock (same pointer the other layers use).
  IgmpHost(Ip4Layer& ip, const double* now_sec, std::uint64_t seed = 2236);

  void join(std::uint32_t group);
  void leave(std::uint32_t group);
  [[nodiscard]] bool is_member(std::uint32_t group) const noexcept;
  [[nodiscard]] std::size_t group_count() const noexcept {
    return groups_.size();
  }

  /// Called by the IP layer for protocol-2 datagrams.
  void on_message(const IgmpMessage& msg, std::uint32_t from_ip);

  /// Fire pending delayed reports. Call from Host::advance().
  void on_timer();

  [[nodiscard]] const IgmpStats& stats() const noexcept { return stats_; }

 private:
  struct Membership {
    double report_at = 0.0;   ///< Pending delayed report deadline.
    bool report_pending = false;
    bool we_reported_last = false;  ///< Governs who sends the leave.
    std::uint32_t unsolicited_left = 0;
  };

  [[nodiscard]] double now() const noexcept {
    return now_sec_ != nullptr ? *now_sec_ : 0.0;
  }
  void send_report(std::uint32_t group);
  void send_leave(std::uint32_t group);

  Ip4Layer& ip_;
  const double* now_sec_;
  Rng rng_;
  std::unordered_map<std::uint32_t, Membership> groups_;
  IgmpStats stats_;
};

}  // namespace ldlp::stack
