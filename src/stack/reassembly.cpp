#include "stack/reassembly.hpp"

#include <algorithm>

namespace ldlp::stack {

std::optional<buf::Packet> ReassemblyTable::offer(
    const wire::Ipv4Header& header, buf::Packet payload, double now_sec) {
  ++stats_.fragments_in;
  const Key key{header.src, header.dst, header.ident, header.protocol};
  auto it = table_.find(key);
  if (it == table_.end()) {
    if (table_.size() >= max_datagrams_) {
      ++stats_.overflows;
      return std::nullopt;
    }
    it = table_.emplace(key, Datagram{}).first;
    it->second.first_seen = now_sec;
  }
  Datagram& datagram = it->second;

  const std::uint16_t offset = header.frag_offset * 8;
  const std::uint32_t len = payload.length();

  // Reject overlap (legitimate stacks never produce it; drop the dupe).
  for (const Fragment& frag : datagram.fragments) {
    const std::uint32_t frag_end = frag.offset_bytes + frag.payload.length();
    if (offset < frag_end && frag.offset_bytes < offset + len)
      return std::nullopt;
  }

  if (!header.more_fragments)
    datagram.total_len = offset + len;

  Fragment frag{offset, std::move(payload)};
  datagram.fragments.insert(
      std::upper_bound(datagram.fragments.begin(), datagram.fragments.end(),
                       frag,
                       [](const Fragment& a, const Fragment& b) {
                         return a.offset_bytes < b.offset_bytes;
                       }),
      std::move(frag));

  if (!complete(datagram)) return std::nullopt;

  buf::Packet whole = assemble(datagram);
  table_.erase(it);
  ++stats_.datagrams_out;
  return whole;
}

bool ReassemblyTable::complete(const Datagram& d) noexcept {
  if (!d.total_len.has_value()) return false;
  std::uint32_t expected = 0;
  for (const Fragment& frag : d.fragments) {
    if (frag.offset_bytes != expected) return false;
    expected += frag.payload.length();
  }
  return expected == *d.total_len;
}

buf::Packet ReassemblyTable::assemble(Datagram& d) {
  buf::Packet whole = std::move(d.fragments.front().payload);
  for (std::size_t i = 1; i < d.fragments.size(); ++i)
    whole.cat(std::move(d.fragments[i].payload));
  whole.sync_pkt_len();
  d.fragments.clear();
  return whole;
}

bool ReassemblyTable::audit(std::string* why) const {
  if (table_.size() > max_datagrams_) {
    if (why != nullptr)
      *why = "reassembly table exceeds max_datagrams (" +
             std::to_string(table_.size()) + " > " +
             std::to_string(max_datagrams_) + ")";
    return false;
  }
  for (const auto& [key, datagram] : table_) {
    std::uint32_t prev_end = 0;
    bool first = true;
    for (const Fragment& frag : datagram.fragments) {
      if (!first && frag.offset_bytes < prev_end) {
        if (why != nullptr)
          *why = "accepted fragments overlap (offset " +
                 std::to_string(frag.offset_bytes) + " < previous end " +
                 std::to_string(prev_end) + ")";
        return false;
      }
      first = false;
      prev_end = frag.offset_bytes + frag.payload.length();
      if (datagram.total_len.has_value() && prev_end > *datagram.total_len) {
        if (why != nullptr)
          *why = "fragment extends past known datagram length";
        return false;
      }
    }
  }
  return true;
}

void ReassemblyTable::expire(double now_sec) {
  for (auto it = table_.begin(); it != table_.end();) {
    if (now_sec - it->second.first_seen > timeout_sec_) {
      ++stats_.timeouts;
      it = table_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace ldlp::stack
