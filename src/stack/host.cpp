#include "stack/host.hpp"

#include "fault/injector.hpp"
#include "stack/footprints.hpp"

namespace ldlp::stack {

Host::Host(HostConfig config)
    : cfg_(std::move(config)),
      pool_(cfg_.pool_mbufs, cfg_.pool_clusters),
      dev_(cfg_.name + ".le0", cfg_.mac, pool_) {
  eth_ = std::make_unique<EthLayer>(dev_, cfg_.ip);
  ip_ = std::make_unique<Ip4Layer>(*eth_, cfg_.ip, cfg_.mtu);
  sock_ = std::make_unique<SocketLayer>();
  tcp_ = std::make_unique<TcpLayer>(*ip_, *sock_, cfg_.tcp);
  udp_ = std::make_unique<UdpLayer>(*ip_, *sock_);

  ip_->set_clock(&now_);
  tcp_->set_clock(&now_);
  tcp_->set_wheel(&wheel_);
  eth_->set_wheel(&wheel_);
  igmp_ = std::make_unique<IgmpHost>(*ip_, &now_);
  ip_->set_igmp(igmp_.get());

  eth_id_ = graph_.add_layer(*eth_);
  const core::LayerId ip_id = graph_.add_layer(*ip_);
  const core::LayerId tcp_id = graph_.add_layer(*tcp_);
  const core::LayerId udp_id = graph_.add_layer(*udp_);
  const core::LayerId sock_id = graph_.add_layer(*sock_);

  graph_.connect(eth_id_, ip_id, ethports::kIp);
  graph_.connect(ip_id, tcp_id, ipports::kTcp);
  graph_.connect(ip_id, udp_id, ipports::kUdp);
  graph_.connect(tcp_id, sock_id, 0);

  graph_.set_mode(cfg_.mode);
  graph_.set_batch_limit(cfg_.batch_limit);
  if (cfg_.rx_queues > 1) dev_.set_rx_queues(cfg_.rx_queues, cfg_.rx_symmetric);
}

void Host::attach_fault(fault::FaultInjector* injector) noexcept {
  if (fault_ != nullptr && injector == nullptr)
    fault_->release_pool_pressure();
  fault_ = injector;
  dev_.set_fault(injector);
  if (fault_ != nullptr) fault_->set_clock(&now_);
}

void Host::restart() {
  tcp_->crash();
  sock_->crash();
  eth_->arp().flush();
  eth_->resync_wheel();  // nothing pending → the retry timer disarms
  ip_->flush_reassembly();
  (void)dev_.clear_rx_ring();
  if (restart_hook_) restart_hook_();
}

void Host::advance(double dt_sec) {
  real_now_ += dt_sec;
  // The virtual clock follows real time through any clock-fault
  // episodes; without them the mapping is the identity bit for bit.
  now_ = fault_ != nullptr ? vclock_.advance(real_now_, &fault_->plan())
                           : vclock_.advance(real_now_, nullptr);
  if (fault_ != nullptr && fault_->host_restart_pending()) restart();
  if (fault_ != nullptr) {
    const fault::Episode* storm =
        fault_->plan().active(fault::FaultKind::kTimerStorm, real_now_);
    wheel_.set_storm_level(storm != nullptr ? static_cast<int>(storm->param)
                                            : 0);
  }
  // TCP and ARP timers live on the wheel now; only IGMP report jitter
  // and reassembly TTLs (cheap, bounded scans) remain pass-driven.
  wheel_.advance_to(now_);
  igmp_->on_timer();
  ip_->expire_reassembly();
  if (fault_ != nullptr) fault_->apply_pool_pressure(pool_);
}

buf::Packet Host::pull_frame(std::size_t queue) {
  if (dev_.rx_pending(queue) == 0) return {};
  // Device interrupt path: vector through the interrupt glue, copy the
  // frame out of device memory into a fresh mbuf chain.
  trace_fn(Fn::kXentInt);
  trace_fn(Fn::kInterrupt);
  trace_fn(Fn::kPalSwpIpl);
  trace_fn(Fn::kAsicIntr);
  trace_fn(Fn::kTcIoIntr);
  trace_fn(Fn::kLeIntr);
  trace_fn(Fn::kCopyFromBufGap2);
  trace_fn(Fn::kCopyFromBufGap16);
  trace_fn(Fn::kMalloc);
  trace_rgn(Rgn::kDevConfigRo);
  trace_rgn(Rgn::kDevRingMut);
  trace_rgn(Rgn::kBufFreelistMut);
  trace_rgn(Rgn::kBufBucketsRo, 0.5);

  buf::Packet frame = dev_.receive_queue(queue);
  if (frame) trace_pkt(trace::RefKind::kWrite, frame.length());
  return frame;  // empty: pool exhausted, frame stays in device memory
}

void Host::inject_rx(buf::Packet frame) {
  // Post-interrupt softirq dispatch.
  trace_fn(Fn::kDoSir);
  trace_fn(Fn::kSpl0);
  trace_fn(Fn::kRei);
  graph_.inject(eth_id_, core::Message(std::move(frame), now_));
}

std::size_t Host::pump_queue(std::size_t queue, std::size_t max_frames) {
  std::size_t handled = 0;
  while (handled < max_frames && dev_.rx_pending(queue) > 0) {
    buf::Packet frame = pull_frame(queue);
    if (!frame) break;  // pool exhausted; leave frames in device memory
    inject_rx(std::move(frame));
    ++handled;
  }
  // Per-shard LDLP pass: this queue's backlog runs through the layers as
  // one batch before the next shard is touched.
  if (handled > 0 && cfg_.mode == core::SchedMode::kLdlp) graph_.run();
  return handled;
}

std::size_t Host::pump(std::size_t max_frames) {
  dev_.poll();  // surface any delay-released frames first
  std::size_t handled = 0;
  for (std::size_t q = 0; q < dev_.rx_queue_count(); ++q) {
    if (handled >= max_frames) break;
    handled += pump_queue(q, max_frames - handled);
  }
  if (handled > 0 && post_pass_hook_) post_pass_hook_();
  return handled;
}

}  // namespace ldlp::stack
