// Ethernet layer: input demultiplexing (IP / ARP), output encapsulation
// with ARP resolution, and the host-side ARP responder.
#pragma once

#include <cstdint>

#include "core/stack_graph.hpp"
#include "stack/arp_cache.hpp"
#include "stack/netdev.hpp"
#include "time/timer_wheel.hpp"
#include "wire/arp.hpp"

namespace ldlp::stack {

/// Output ports of the Ethernet input layer.
namespace ethports {
inline constexpr int kIp = 0;
inline constexpr int kArp = 1;  ///< Consumed internally; port kept for tests.
}  // namespace ethports

struct EthLayerStats {
  std::uint64_t rx_ip = 0;
  std::uint64_t rx_arp = 0;
  std::uint64_t rx_dropped = 0;   ///< Bad/foreign/unknown frames.
  std::uint64_t tx_frames = 0;
  std::uint64_t tx_arp_held = 0;  ///< Packets parked awaiting resolution.
};

class EthLayer final : public core::Layer {
 public:
  EthLayer(NetDevice& device, std::uint32_t my_ip);

  /// Send an IP datagram (IP header already built) to `next_hop_ip`.
  /// Resolves via ARP; parks the packet and emits a request on a miss.
  void output_ip(buf::Packet datagram, std::uint32_t next_hop_ip);

  /// Re-request stalled ARP resolutions (and expire hopeless ones).
  /// Wheel-attached hosts get this from the wheel; wheel-less tests may
  /// still call it per pass with their own clock.
  void on_timer(double now);

  /// Attach the host's timer wheel: ARP retries ride one consolidated
  /// wheel timer armed at the cache's earliest retry deadline instead of
  /// being found by a per-pass scan.
  void set_wheel(time::TimerWheel* wheel) noexcept { wheel_ = wheel; }

  /// Reconcile the consolidated retry timer with the cache — needed
  /// after out-of-band cache surgery (Host::restart flushes the cache,
  /// leaving the timer pointing at forgotten entries).
  void resync_wheel();

  [[nodiscard]] const EthLayerStats& eth_stats() const noexcept {
    return stats_;
  }
  [[nodiscard]] ArpCache& arp() noexcept { return arp_; }
  [[nodiscard]] std::uint32_t ip_addr() const noexcept { return my_ip_; }
  [[nodiscard]] NetDevice& device() noexcept { return device_; }

 protected:
  void process(core::Message msg) override;

 private:
  void handle_arp(buf::Packet pkt);
  void send_arp(wire::ArpOp op, std::uint32_t target_ip,
                const wire::MacAddr& target_mac);
  void send_frame(buf::Packet payload_with_room, const wire::MacAddr& dst,
                  wire::EtherType type);

  NetDevice& device_;
  std::uint32_t my_ip_;
  ArpCache arp_;
  time::TimerWheel* wheel_ = nullptr;
  time::TimerId arp_timer_ = time::kNoTimer;
  EthLayerStats stats_;
};

}  // namespace ldlp::stack
