#include "stack/socket_layer.hpp"

#include <algorithm>

#include "common/assert.hpp"
#include "stack/footprints.hpp"

namespace ldlp::stack {

SocketId SocketLayer::create(SocketKind kind, std::size_t hiwat_bytes) {
  Socket socket;
  socket.kind = kind;
  socket.hiwat = hiwat_bytes;
  sockets_.push_back(std::move(socket));
  return static_cast<SocketId>(sockets_.size() - 1);
}

SocketLayer::Socket& SocketLayer::sock(SocketId id) {
  LDLP_ASSERT_MSG(id < sockets_.size(), "bad socket id");
  return sockets_[id];
}

const SocketLayer::Socket& SocketLayer::sock(SocketId id) const {
  LDLP_ASSERT_MSG(id < sockets_.size(), "bad socket id");
  return sockets_[id];
}

void SocketLayer::set_wakeup(SocketId id, std::function<void(SocketId)> hook) {
  sock(id).wakeup = std::move(hook);
}

void SocketLayer::wake(Socket& socket, SocketId id) {
  trace_fn(Fn::kSoWakeup);
  trace_fn(Fn::kWakeup);
  ++socket.stats.wakeups;
  if (socket.wakeup) socket.wakeup(id);
}

void SocketLayer::process(core::Message msg) {
  trace_fn(Fn::kSbAppend);
  trace_fn(Fn::kSbCompress);
  trace_rgn(Rgn::kSockBufMut);
  trace_rgn(Rgn::kSockLowRo);
  const auto id = static_cast<SocketId>(msg.flow_id);
  if (id >= sockets_.size()) return;
  Socket& socket = sockets_[id];
  LDLP_DASSERT(socket.kind == SocketKind::kStream);

  const std::uint32_t len = msg.packet.length();
  if (socket.stream.size() + len > socket.hiwat) {
    // TCP's advertised window normally prevents this, but under deferred
    // (LDLP) scheduling the window is computed while earlier segments
    // still sit in the tcp→socket queue, so a burst can land past hiwat.
    // These bytes are already ACKed (rcv_nxt advanced in deliver_payload);
    // dropping them here would tear an unrecoverable hole in the stream —
    // the peer has cleared its rtx entry. Accept the transient overshoot
    // (bounded by the advertised window) and count it.
    ++socket.stats.overflows;
  }
  // sbappend: copy mbuf bytes into the socket buffer.
  std::vector<std::uint8_t> bytes(len);
  if (!msg.packet.copy_out(0, bytes)) return;
  trace_pkt(trace::RefKind::kRead, len);
  socket.stream.insert(socket.stream.end(), bytes.begin(), bytes.end());
  socket.stats.appended_bytes += len;
  if (tap_ != nullptr) tap_->on_stream_append(id, bytes);
  wake(socket, id);
}

void SocketLayer::deliver_datagram(SocketId id, Datagram dgram) {
  Socket& socket = sock(id);
  LDLP_DASSERT(socket.kind == SocketKind::kDatagram);
  std::size_t queued = 0;
  for (const Datagram& d : socket.dgrams) queued += d.payload.size();
  if (queued + dgram.payload.size() > socket.hiwat) {
    ++socket.stats.overflows;
    return;
  }
  socket.stats.appended_bytes += dgram.payload.size();
  if (tap_ != nullptr) tap_->on_datagram(id, dgram);
  socket.dgrams.push_back(std::move(dgram));
  wake(socket, id);
}

std::size_t SocketLayer::read(SocketId id, std::span<std::uint8_t> dst) {
  trace_fn(Fn::kSoReceive);
  trace_fn(Fn::kSooRead);
  trace_fn(Fn::kUiomove);
  trace_fn(Fn::kCopyout);
  Socket& socket = sock(id);
  const std::size_t n = std::min(dst.size(), socket.stream.size());
  std::copy_n(socket.stream.begin(), n, dst.begin());
  socket.stream.erase(socket.stream.begin(),
                      socket.stream.begin() + static_cast<std::ptrdiff_t>(n));
  socket.stats.read_bytes += n;
  return n;
}

std::optional<Datagram> SocketLayer::read_datagram(SocketId id) {
  Socket& socket = sock(id);
  if (socket.dgrams.empty()) return std::nullopt;
  Datagram out = std::move(socket.dgrams.front());
  socket.dgrams.pop_front();
  socket.stats.read_bytes += out.payload.size();
  return out;
}

std::size_t SocketLayer::readable_bytes(SocketId id) const {
  return sock(id).stream.size();
}

std::size_t SocketLayer::pending_datagrams(SocketId id) const {
  return sock(id).dgrams.size();
}

const SocketStats& SocketLayer::socket_stats(SocketId id) const {
  return sock(id).stats;
}

std::size_t SocketLayer::room(SocketId id) const {
  const Socket& socket = sock(id);
  return socket.hiwat - std::min(socket.hiwat, socket.stream.size());
}

}  // namespace ldlp::stack
