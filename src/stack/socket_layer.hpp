// Socket layer: receive buffering and application wakeups.
//
// The "socket low" half (sbappend/sowakeup in Table 1) runs as a Layer so
// the scheduler treats it like every other layer; the "socket high" half
// (soreceive/read) is the API the application calls. Stream sockets byte-
// buffer (TCP); datagram sockets preserve message boundaries and sender
// addresses (UDP).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <vector>

#include "core/stack_graph.hpp"

namespace ldlp::stack {

using SocketId = std::uint32_t;
inline constexpr SocketId kNoSocket = ~SocketId{0};

enum class SocketKind : std::uint8_t { kStream, kDatagram };

struct Datagram {
  std::vector<std::uint8_t> payload;
  std::uint32_t from_ip = 0;
  std::uint16_t from_port = 0;
};

struct SocketStats {
  std::uint64_t appended_bytes = 0;
  std::uint64_t read_bytes = 0;
  std::uint64_t wakeups = 0;
  std::uint64_t overflows = 0;  ///< Deliveries past hiwat (dgram: dropped;
                                ///< stream: accepted, see process()).
};

/// Wire-tap on socket-layer delivery, the last point before the
/// application. Conformance oracles (ldlp::check) implement this to
/// assert what the stack delivered against what the peer sent.
class SocketTap {
 public:
  virtual ~SocketTap() = default;
  /// Stream bytes appended to `id`'s receive buffer (sbappend).
  virtual void on_stream_append(SocketId id,
                                std::span<const std::uint8_t> bytes) = 0;
  /// Datagram queued on `id` (about to wake the application).
  virtual void on_datagram(SocketId id, const Datagram& dgram) = 0;
};

class SocketLayer final : public core::Layer {
 public:
  SocketLayer() : core::Layer("socket") {}

  [[nodiscard]] SocketId create(SocketKind kind,
                                std::size_t hiwat_bytes = 16 * 1024);

  /// Called whenever data arrives on the socket (sowakeup). The paper's
  /// blocked process is modelled by the caller polling or by this hook.
  void set_wakeup(SocketId id, std::function<void(SocketId)> hook);

  /// soreceive for stream sockets: copy out up to dst.size() bytes.
  [[nodiscard]] std::size_t read(SocketId id, std::span<std::uint8_t> dst);

  /// recvfrom for datagram sockets.
  [[nodiscard]] std::optional<Datagram> read_datagram(SocketId id);

  [[nodiscard]] std::size_t readable_bytes(SocketId id) const;
  [[nodiscard]] std::size_t pending_datagrams(SocketId id) const;
  [[nodiscard]] const SocketStats& socket_stats(SocketId id) const;
  [[nodiscard]] std::size_t room(SocketId id) const;  ///< Receive window.

  /// Datagram-side delivery (UDP calls this directly; stream data arrives
  /// as Messages through process()).
  void deliver_datagram(SocketId id, Datagram dgram);

  /// Attach a delivery wire-tap observing every append on every socket
  /// (nullptr detaches). Used by chaos builds; nullptr costs one branch.
  void set_tap(SocketTap* tap) noexcept { tap_ = tap; }

  /// Host crash: unread buffers and application wakeup hooks are gone,
  /// but the socket slots stay addressable — in-flight stream messages
  /// already in the scheduler's queues still land somewhere (on a dead
  /// socket, harmlessly) rather than faulting. Stats survive; they
  /// describe the machine, not the incarnation.
  void crash() {
    for (Socket& s : sockets_) {
      s.stream.clear();
      s.dgrams.clear();
      s.wakeup = nullptr;
    }
  }

 protected:
  /// Stream delivery: msg.flow_id is the SocketId, packet holds payload.
  void process(core::Message msg) override;

 private:
  struct Socket {
    SocketKind kind = SocketKind::kStream;
    std::size_t hiwat = 0;
    std::deque<std::uint8_t> stream;
    std::deque<Datagram> dgrams;
    std::function<void(SocketId)> wakeup;
    SocketStats stats;
  };

  [[nodiscard]] Socket& sock(SocketId id);
  [[nodiscard]] const Socket& sock(SocketId id) const;
  void wake(Socket& socket, SocketId id);

  std::vector<Socket> sockets_;
  SocketTap* tap_ = nullptr;
};

}  // namespace ldlp::stack
