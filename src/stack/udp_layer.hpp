// UDP: datagram demultiplexing onto sockets.
#pragma once

#include <cstdint>
#include <functional>
#include <unordered_map>

#include "core/stack_graph.hpp"
#include "stack/ip_layer.hpp"
#include "stack/socket_layer.hpp"

namespace ldlp::stack {

struct UdpStats {
  std::uint64_t rx = 0;
  std::uint64_t rx_bad = 0;
  std::uint64_t rx_no_port = 0;
  std::uint64_t tx = 0;
};

class UdpLayer final : public core::Layer {
 public:
  UdpLayer(Ip4Layer& ip, SocketLayer& sockets)
      : core::Layer("udp"), ip_(ip), sockets_(sockets) {}

  /// Bind a local port to a datagram socket. Returns false if taken.
  [[nodiscard]] bool bind(std::uint16_t port, SocketId socket);
  void unbind(std::uint16_t port);

  /// Send a datagram from `src_port` to dst:dst_port.
  void send(std::uint16_t src_port, std::uint32_t dst_ip,
            std::uint16_t dst_port, std::span<const std::uint8_t> payload);

  /// Wire-tap on the send API: fires once per send() with the exact
  /// payload handed down, before any wire impairment can touch it.
  void set_send_tap(
      std::function<void(std::uint16_t src_port, std::uint32_t dst_ip,
                         std::uint16_t dst_port,
                         std::span<const std::uint8_t>)>
          tap) {
    send_tap_ = std::move(tap);
  }

  [[nodiscard]] const UdpStats& udp_stats() const noexcept { return stats_; }

 protected:
  void process(core::Message msg) override;

 private:
  Ip4Layer& ip_;
  SocketLayer& sockets_;
  std::unordered_map<std::uint16_t, SocketId> ports_;
  std::function<void(std::uint16_t, std::uint32_t, std::uint16_t,
                     std::span<const std::uint8_t>)>
      send_tap_;
  UdpStats stats_;
};

}  // namespace ldlp::stack
