// Simulated network device.
//
// Models a Lance-style Ethernet adaptor: received frames wait in device
// memory (the RX ring) until the host pulls them into mbufs — which is
// where LDLP's batching naturally begins, since "when the protocol stack
// is able to accept a new message, it takes all available messages"
// (section 3.1). Two devices connect back-to-back to form a wire; a frame
// transmitted on one side is copied into the peer's RX ring (frames cross
// pools by value, like real DMA).
//
// Multi-queue receive (ldlp::par): the device can be configured with N RX
// queues, each its own ring, with arriving frames steered by a
// deterministic Toeplitz-style hash over the IPv4 flow 4-tuple
// (src, dst, proto, ports) — RSS in miniature. A flow always lands on the
// same queue, so per-queue (per-shard) LDLP batches keep their d-cache
// locality while the flow hash spreads independent flows across
// contexts. Non-IP frames (ARP) and fragments steer to queue 0.
#pragma once

#include <array>
#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "buf/packet.hpp"
#include "common/rng.hpp"
#include "wire/ethernet.hpp"

namespace ldlp::fault {
class FaultInjector;
}

namespace ldlp::stack {

/// IPv4 flow identity for receive-side steering.
struct FlowKey {
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t proto = 0;

  friend bool operator==(const FlowKey&, const FlowKey&) = default;
};

/// Deterministic Toeplitz hash (the RSS construction: a fixed random key
/// string, one 32-bit key window shifted per input bit, XOR-folded on set
/// bits). The key is derived from `key_seed` via splitmix64, so every
/// device/run with the same seed steers identically — the stability the
/// shard tests pin down.
class FlowHash {
 public:
  static constexpr std::uint64_t kDefaultKeySeed = 0x1d1b'0001'600d'5eedULL;

  explicit FlowHash(bool symmetric = false,
                    std::uint64_t key_seed = kDefaultKeySeed);

  /// 32-bit Toeplitz hash of the 13-byte flow tuple. In symmetric mode the
  /// (ip, port) endpoint pairs are canonically ordered first, so both
  /// directions of a connection hash identically (co-steering).
  [[nodiscard]] std::uint32_t operator()(const FlowKey& key) const noexcept;

  [[nodiscard]] bool symmetric() const noexcept { return symmetric_; }

  /// Extract the flow key from a raw Ethernet frame. nullopt for non-IPv4
  /// frames, IP fragments (ports unreadable past the first fragment) and
  /// truncated headers; ICMP/IGMP yield ports 0.
  [[nodiscard]] static std::optional<FlowKey> classify(
      std::span<const std::uint8_t> frame) noexcept;

 private:
  // 40-byte key as in RSS, stored padded so any 32-bit window read is in
  // bounds.
  std::array<std::uint8_t, 44> key_{};
  bool symmetric_ = false;
};

struct NetDeviceStats {
  std::uint64_t tx_frames = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_frames = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t rx_drops = 0;   ///< RX ring overflow.
  std::uint64_t tx_drops = 0;   ///< No peer / frame too large.
};

class NetDevice {
 public:
  NetDevice(std::string name, wire::MacAddr mac, buf::MbufPool& pool,
            std::size_t rx_ring_slots = 64);

  NetDevice(const NetDevice&) = delete;
  NetDevice& operator=(const NetDevice&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const wire::MacAddr& mac() const noexcept { return mac_; }
  [[nodiscard]] const NetDeviceStats& stats() const noexcept { return stats_; }
  /// Zero the frame/byte/drop counters (ring contents untouched), so a
  /// device reused across measurement runs starts each run at zero.
  void reset_stats() noexcept {
    stats_ = {};
    for (auto& n : rx_queue_frames_) n = 0;
  }
  [[nodiscard]] buf::MbufPool& pool() noexcept { return pool_; }

  /// Join two devices with a full-duplex "wire".
  static void connect(NetDevice& a, NetDevice& b) noexcept;

  /// Serialized-frame consumer replacing the back-to-back wire: when set,
  /// transmit() hands the frame bytes here instead of injecting them into
  /// a peer device. This is how a device attaches to an ldlp::net fabric
  /// (the sink enqueues the frame onto the access link); set nullptr to
  /// detach. The sink returns false when it refused the frame (counted as
  /// a tx_drop).
  using TxSink = std::function<bool(std::vector<std::uint8_t>&&)>;
  void set_tx_sink(TxSink sink) { tx_sink_ = std::move(sink); }
  [[nodiscard]] bool has_tx_sink() const noexcept {
    return static_cast<bool>(tx_sink_);
  }

  /// Configure `queues` RX queues (>= 1), each with its own
  /// `rx_ring_slots`-deep ring, steered by the Toeplitz flow hash.
  /// `symmetric` co-steers both directions of a connection onto one
  /// queue. Frames already waiting are re-steered (deterministically), so
  /// the call is safe at any time; queues=1 restores the classic
  /// single-ring device.
  void set_rx_queues(std::size_t queues, bool symmetric = false);

  [[nodiscard]] std::size_t rx_queue_count() const noexcept {
    return rings_.size();
  }
  [[nodiscard]] const FlowHash& flow_hash() const noexcept { return hash_; }

  /// RX queue a frame with these bytes would steer to right now.
  [[nodiscard]] std::size_t steer(
      std::span<const std::uint8_t> frame_bytes) const noexcept;

  /// Transmit a complete Ethernet frame (header already in place). The
  /// frame is serialised onto the wire; the packet is always consumed.
  /// Returns false if it could not be delivered.
  bool transmit(buf::Packet frame) noexcept;

  /// Frames waiting across all RX rings.
  [[nodiscard]] std::size_t rx_pending() const noexcept {
    std::size_t total = 0;
    for (const auto& ring : rings_) total += ring.size();
    return total;
  }
  /// Frames waiting in one RX ring.
  [[nodiscard]] std::size_t rx_pending(std::size_t queue) const noexcept {
    return queue < rings_.size() ? rings_[queue].size() : 0;
  }

  /// Cumulative frames steered into each queue (survives receive();
  /// cleared by reset_stats) — the shard-balance evidence.
  [[nodiscard]] const std::vector<std::uint64_t>& rx_queue_frames()
      const noexcept {
    return rx_queue_frames_;
  }

  /// Pull the next received frame into an mbuf chain from our pool (the
  /// driver copy: "the message is copied from device memory into the
  /// mbufs"). Scans queues in index order; empty packet when every ring
  /// is empty or the pool is dry.
  [[nodiscard]] buf::Packet receive() noexcept;

  /// Pull from one RX queue only — the per-shard driver path.
  [[nodiscard]] buf::Packet receive_queue(std::size_t queue) noexcept;

  /// Deliver raw frame bytes into this device's RX ring (used by the peer
  /// and by tests to inject crafted frames).
  void inject(std::vector<std::uint8_t> frame_bytes) noexcept;

  /// Drop a fraction of frames on reception — a lossy wire for exercising
  /// retransmission. Deterministic in the seed.
  void set_loss(double rate, std::uint64_t seed = 99) noexcept {
    loss_rate_ = rate;
    loss_rng_.reseed(seed);
  }

  /// Swap a fraction of arriving frames with the frame already at the
  /// tail of the RX ring — adjacent reordering, the common real-world
  /// case, which exercises receivers' out-of-order paths.
  void set_reorder(double rate, std::uint64_t seed = 77) noexcept {
    reorder_rate_ = rate;
    reorder_rng_.reseed(seed);
  }

  /// Attach a fault injector: every arriving frame is subjected to the
  /// injector's active episodes (loss burst, corruption, duplication,
  /// reorder window, delay jitter, device stall). nullptr detaches.
  /// Supersedes nothing: set_loss/set_reorder remain and compose.
  void set_fault(fault::FaultInjector* injector) noexcept {
    fault_ = injector;
  }

  /// Move any delay-released frames from the injector into the RX ring.
  /// Called by Host::pump; harmless without an injector.
  void poll() noexcept;

  /// Discard every frame waiting in the RX rings — device memory does not
  /// survive a host crash (FaultKind::kHostRestart). Returns how many
  /// frames were lost; they are counted as rx_drops.
  std::size_t clear_rx_ring() noexcept;

 private:
  std::string name_;
  wire::MacAddr mac_;
  buf::MbufPool& pool_;
  std::size_t rx_ring_slots_;
  /// One ring per RX queue, each rx_ring_slots_ deep (per-queue rings,
  /// as on real multi-queue adaptors).
  std::vector<std::deque<std::vector<std::uint8_t>>> rings_;
  std::vector<std::uint64_t> rx_queue_frames_;
  FlowHash hash_;
  NetDevice* peer_ = nullptr;
  TxSink tx_sink_;
  double loss_rate_ = 0.0;
  Rng loss_rng_{99};
  double reorder_rate_ = 0.0;
  Rng reorder_rng_{77};
  fault::FaultInjector* fault_ = nullptr;
  NetDeviceStats stats_;

  void ring_push(std::vector<std::uint8_t> frame_bytes,
                 std::uint32_t reorder_depth) noexcept;
};

}  // namespace ldlp::stack
