// Simulated network device.
//
// Models a Lance-style Ethernet adaptor: received frames wait in device
// memory (the RX ring) until the host pulls them into mbufs — which is
// where LDLP's batching naturally begins, since "when the protocol stack
// is able to accept a new message, it takes all available messages"
// (section 3.1). Two devices connect back-to-back to form a wire; a frame
// transmitted on one side is copied into the peer's RX ring (frames cross
// pools by value, like real DMA).
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <vector>

#include "buf/packet.hpp"
#include "common/rng.hpp"
#include "wire/ethernet.hpp"

namespace ldlp::fault {
class FaultInjector;
}

namespace ldlp::stack {

struct NetDeviceStats {
  std::uint64_t tx_frames = 0;
  std::uint64_t tx_bytes = 0;
  std::uint64_t rx_frames = 0;
  std::uint64_t rx_bytes = 0;
  std::uint64_t rx_drops = 0;   ///< RX ring overflow.
  std::uint64_t tx_drops = 0;   ///< No peer / frame too large.
};

class NetDevice {
 public:
  NetDevice(std::string name, wire::MacAddr mac, buf::MbufPool& pool,
            std::size_t rx_ring_slots = 64);

  NetDevice(const NetDevice&) = delete;
  NetDevice& operator=(const NetDevice&) = delete;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const wire::MacAddr& mac() const noexcept { return mac_; }
  [[nodiscard]] const NetDeviceStats& stats() const noexcept { return stats_; }
  /// Zero the frame/byte/drop counters (ring contents untouched), so a
  /// device reused across measurement runs starts each run at zero.
  void reset_stats() noexcept { stats_ = {}; }
  [[nodiscard]] buf::MbufPool& pool() noexcept { return pool_; }

  /// Join two devices with a full-duplex "wire".
  static void connect(NetDevice& a, NetDevice& b) noexcept;

  /// Transmit a complete Ethernet frame (header already in place). The
  /// frame is serialised onto the wire; the packet is always consumed.
  /// Returns false if it could not be delivered.
  bool transmit(buf::Packet frame) noexcept;

  /// Frames waiting in the RX ring.
  [[nodiscard]] std::size_t rx_pending() const noexcept {
    return rx_ring_.size();
  }

  /// Pull the next received frame into an mbuf chain from our pool (the
  /// driver copy: "the message is copied from device memory into the
  /// mbufs"). Empty packet when the ring is empty or the pool is dry.
  [[nodiscard]] buf::Packet receive() noexcept;

  /// Deliver raw frame bytes into this device's RX ring (used by the peer
  /// and by tests to inject crafted frames).
  void inject(std::vector<std::uint8_t> frame_bytes) noexcept;

  /// Drop a fraction of frames on reception — a lossy wire for exercising
  /// retransmission. Deterministic in the seed.
  void set_loss(double rate, std::uint64_t seed = 99) noexcept {
    loss_rate_ = rate;
    loss_rng_.reseed(seed);
  }

  /// Swap a fraction of arriving frames with the frame already at the
  /// tail of the RX ring — adjacent reordering, the common real-world
  /// case, which exercises receivers' out-of-order paths.
  void set_reorder(double rate, std::uint64_t seed = 77) noexcept {
    reorder_rate_ = rate;
    reorder_rng_.reseed(seed);
  }

  /// Attach a fault injector: every arriving frame is subjected to the
  /// injector's active episodes (loss burst, corruption, duplication,
  /// reorder window, delay jitter, device stall). nullptr detaches.
  /// Supersedes nothing: set_loss/set_reorder remain and compose.
  void set_fault(fault::FaultInjector* injector) noexcept {
    fault_ = injector;
  }

  /// Move any delay-released frames from the injector into the RX ring.
  /// Called by Host::pump; harmless without an injector.
  void poll() noexcept;

  /// Discard every frame waiting in the RX ring — device memory does not
  /// survive a host crash (FaultKind::kHostRestart). Returns how many
  /// frames were lost; they are counted as rx_drops.
  std::size_t clear_rx_ring() noexcept;

 private:
  std::string name_;
  wire::MacAddr mac_;
  buf::MbufPool& pool_;
  std::size_t rx_ring_slots_;
  std::deque<std::vector<std::uint8_t>> rx_ring_;
  NetDevice* peer_ = nullptr;
  double loss_rate_ = 0.0;
  Rng loss_rng_{99};
  double reorder_rate_ = 0.0;
  Rng reorder_rng_{77};
  fault::FaultInjector* fault_ = nullptr;
  NetDeviceStats stats_;

  void ring_push(std::vector<std::uint8_t> frame_bytes,
                 std::uint32_t reorder_depth) noexcept;
};

}  // namespace ldlp::stack
