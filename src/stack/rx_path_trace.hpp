// The paper's traced scenario (Table 2): a TCP socket receives a segment,
// delivers the contents to the application, and sends an acknowledgment.
//
// Two hosts are connected back to back; a connection is established and
// primed untraced; then exactly one receive & acknowledge iteration runs
// under the tracer, split into the three phases of Table 2:
//   entry     — the process makes a read() call and blocks;
//   pkt intr  — the segment arrives, is pulled through Ethernet/IP/TCP and
//               appended to the socket buffer, and the process is woken;
//   exit      — the process wakes, copies the data out, and TCP sends the
//               window-update ACK.
//
// Protocol-layer references come from the instrumented stack functions
// actually executing; process-control and kernel-entry overhead (which
// this library does not literally implement) is scripted against the
// calibrated footprint table. See DESIGN.md section 2.
#pragma once

#include "stack/footprints.hpp"
#include "trace/trace_buffer.hpp"

namespace ldlp::stack {

struct RxTraceOptions {
  std::uint32_t payload_bytes = 512;  ///< Paper: 512-584 depending on layer.
  std::uint32_t prime_segments = 2;   ///< Untraced warm-up segments.
};

/// Runs the scenario and fills `buffer` with the reference trace of one
/// receive & acknowledge iteration. `tracer` supplies the footprint
/// calibration. Returns false if the TCP session failed to establish
/// (indicates a stack bug; tests assert on it).
[[nodiscard]] bool trace_tcp_receive_ack(StackTracer& tracer,
                                         trace::TraceBuffer& buffer,
                                         const RxTraceOptions& options = {});

}  // namespace ldlp::stack
