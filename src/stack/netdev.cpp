#include "stack/netdev.hpp"

#include <utility>

#include "stack/footprints.hpp"

namespace ldlp::stack {

NetDevice::NetDevice(std::string name, wire::MacAddr mac, buf::MbufPool& pool,
                     std::size_t rx_ring_slots)
    : name_(std::move(name)),
      mac_(mac),
      pool_(pool),
      rx_ring_slots_(rx_ring_slots) {}

void NetDevice::connect(NetDevice& a, NetDevice& b) noexcept {
  a.peer_ = &b;
  b.peer_ = &a;
}

bool NetDevice::transmit(buf::Packet frame) noexcept {
  const std::uint32_t len = frame.length();
  if (peer_ == nullptr || len < wire::kEthHeaderLen ||
      len > wire::kEthHeaderLen + wire::kEthMaxPayload) {
    ++stats_.tx_drops;
    return false;
  }
  // Driver transmit path: stage the frame into device buffer memory.
  trace_fn(Fn::kLeStart);
  trace_fn(Fn::kCopyToBufGap2);
  trace_fn(Fn::kCopyToBufGap16);
  trace_fn(Fn::kZeroBufGap16);
  trace_fn(Fn::kLeWriteReg);
  trace_rgn(Rgn::kDevRingMut, 0.5);
  trace_pkt(trace::RefKind::kRead, len);

  std::vector<std::uint8_t> bytes(len);
  if (!frame.copy_out(0, bytes)) {
    ++stats_.tx_drops;
    return false;
  }
  ++stats_.tx_frames;
  stats_.tx_bytes += len;
  peer_->inject(std::move(bytes));
  return true;
}

void NetDevice::inject(std::vector<std::uint8_t> frame_bytes) noexcept {
  if (loss_rate_ > 0.0 && loss_rng_.chance(loss_rate_)) {
    ++stats_.rx_drops;
    return;
  }
  if (rx_ring_.size() >= rx_ring_slots_) {
    ++stats_.rx_drops;
    return;
  }
  rx_ring_.push_back(std::move(frame_bytes));
  if (reorder_rate_ > 0.0 && rx_ring_.size() >= 2 &&
      reorder_rng_.chance(reorder_rate_)) {
    std::swap(rx_ring_.back(), rx_ring_[rx_ring_.size() - 2]);
  }
}

buf::Packet NetDevice::receive() noexcept {
  if (rx_ring_.empty()) return {};
  const std::vector<std::uint8_t>& bytes = rx_ring_.front();
  buf::Packet pkt = buf::Packet::from_bytes(pool_, bytes);
  if (!pkt) {
    // Pool exhausted: leave the frame in device memory for a later pull
    // (the adaptor keeps buffering, which is what enables batching).
    return {};
  }
  ++stats_.rx_frames;
  stats_.rx_bytes += bytes.size();
  rx_ring_.pop_front();
  return pkt;
}

}  // namespace ldlp::stack
