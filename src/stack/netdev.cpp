#include "stack/netdev.hpp"

#include <utility>

#include "fault/injector.hpp"
#include "stack/footprints.hpp"

namespace ldlp::stack {

NetDevice::NetDevice(std::string name, wire::MacAddr mac, buf::MbufPool& pool,
                     std::size_t rx_ring_slots)
    : name_(std::move(name)),
      mac_(mac),
      pool_(pool),
      rx_ring_slots_(rx_ring_slots) {}

void NetDevice::connect(NetDevice& a, NetDevice& b) noexcept {
  a.peer_ = &b;
  b.peer_ = &a;
}

bool NetDevice::transmit(buf::Packet frame) noexcept {
  const std::uint32_t len = frame.length();
  if (peer_ == nullptr || len < wire::kEthHeaderLen ||
      len > wire::kEthHeaderLen + wire::kEthMaxPayload) {
    ++stats_.tx_drops;
    return false;
  }
  // Outage faults are bidirectional: a partition, a carrier-down flap
  // phase, or a dark (restarting) host loses frames leaving this side
  // just as inject() loses frames arriving at it.
  if (fault_ != nullptr && fault_->link_blocked()) {
    fault_->count_blocked_frame();
    ++stats_.tx_drops;
    return false;
  }
  // Driver transmit path: stage the frame into device buffer memory.
  trace_fn(Fn::kLeStart);
  trace_fn(Fn::kCopyToBufGap2);
  trace_fn(Fn::kCopyToBufGap16);
  trace_fn(Fn::kZeroBufGap16);
  trace_fn(Fn::kLeWriteReg);
  trace_rgn(Rgn::kDevRingMut, 0.5);
  trace_pkt(trace::RefKind::kRead, len);

  std::vector<std::uint8_t> bytes(len);
  if (!frame.copy_out(0, bytes)) {
    ++stats_.tx_drops;
    return false;
  }
  ++stats_.tx_frames;
  stats_.tx_bytes += len;
  peer_->inject(std::move(bytes));
  return true;
}

void NetDevice::ring_push(std::vector<std::uint8_t> frame_bytes,
                          std::uint32_t reorder_depth) noexcept {
  if (rx_ring_.size() >= rx_ring_slots_) {
    ++stats_.rx_drops;
    return;
  }
  rx_ring_.push_back(std::move(frame_bytes));
  if (reorder_depth == 0 && reorder_rate_ > 0.0 &&
      reorder_rng_.chance(reorder_rate_)) {
    reorder_depth = 1;
  }
  // Displace the new arrival up to `reorder_depth` slots toward the head.
  std::size_t at = rx_ring_.size() - 1;
  while (reorder_depth > 0 && at > 0) {
    std::swap(rx_ring_[at], rx_ring_[at - 1]);
    --at;
    --reorder_depth;
  }
}

void NetDevice::inject(std::vector<std::uint8_t> frame_bytes) noexcept {
  if (fault_ != nullptr && fault_->link_blocked()) {
    fault_->count_blocked_frame();
    ++stats_.rx_drops;
    return;
  }
  if (loss_rate_ > 0.0 && loss_rng_.chance(loss_rate_)) {
    ++stats_.rx_drops;
    return;
  }
  std::uint32_t reorder_depth = 0;
  bool duplicate = false;
  if (fault_ != nullptr) {
    const fault::FrameVerdict v = fault_->on_frame(frame_bytes);
    if (v.drop) {
      ++stats_.rx_drops;
      return;
    }
    if (v.delayed) return;  // injector holds the bytes until release
    duplicate = v.duplicate;
    reorder_depth = v.reorder_depth;
  }
  if (duplicate) {
    ring_push(frame_bytes, 0);  // copy first, original may be displaced
  }
  ring_push(std::move(frame_bytes), reorder_depth);
}

void NetDevice::poll() noexcept {
  if (fault_ == nullptr) return;
  for (auto& bytes : fault_->collect_released()) ring_push(std::move(bytes), 0);
}

std::size_t NetDevice::clear_rx_ring() noexcept {
  const std::size_t lost = rx_ring_.size();
  stats_.rx_drops += lost;
  rx_ring_.clear();
  return lost;
}

buf::Packet NetDevice::receive() noexcept {
  if (fault_ != nullptr && fault_->device_stalled()) {
    // Stall episode: the adaptor buffers but the host sees nothing —
    // exactly the backlog-formation regime LDLP batches through later.
    return {};
  }
  if (rx_ring_.empty()) return {};
  const std::vector<std::uint8_t>& bytes = rx_ring_.front();
  buf::Packet pkt = buf::Packet::from_bytes(pool_, bytes);
  if (!pkt) {
    // Pool exhausted: leave the frame in device memory for a later pull
    // (the adaptor keeps buffering, which is what enables batching).
    return {};
  }
  ++stats_.rx_frames;
  stats_.rx_bytes += bytes.size();
  rx_ring_.pop_front();
  return pkt;
}

}  // namespace ldlp::stack
