#include "stack/netdev.hpp"

#include <algorithm>
#include <tuple>
#include <utility>

#include "common/assert.hpp"
#include "fault/injector.hpp"
#include "stack/footprints.hpp"
#include "wire/ipv4.hpp"
#include "wire/tcp.hpp"
#include "wire/udp.hpp"

namespace ldlp::stack {

FlowHash::FlowHash(bool symmetric, std::uint64_t key_seed)
    : symmetric_(symmetric) {
  // Expand the seed into the 40-byte RSS key (plus 4 bytes of window
  // padding) with splitmix64 — deterministic and well-mixed.
  std::uint64_t state = key_seed;
  for (std::size_t i = 0; i < key_.size(); i += 8) {
    const std::uint64_t word = splitmix64(state);
    for (std::size_t b = 0; b < 8 && i + b < key_.size(); ++b) {
      key_[i + b] = static_cast<std::uint8_t>(word >> (56 - 8 * b));
    }
  }
}

std::uint32_t FlowHash::operator()(const FlowKey& key) const noexcept {
  std::uint32_t src_ip = key.src_ip;
  std::uint32_t dst_ip = key.dst_ip;
  std::uint16_t src_port = key.src_port;
  std::uint16_t dst_port = key.dst_port;
  if (symmetric_) {
    // Canonical endpoint order: both directions of a connection present
    // the same tuple, so they co-steer onto one queue.
    if (std::tie(src_ip, src_port) > std::tie(dst_ip, dst_port)) {
      std::swap(src_ip, dst_ip);
      std::swap(src_port, dst_port);
    }
  }
  // RSS input layout: src addr, dst addr, src port, dst port — big-endian,
  // with the protocol appended (a common vendor extension).
  const std::uint8_t input[13] = {
      static_cast<std::uint8_t>(src_ip >> 24),
      static_cast<std::uint8_t>(src_ip >> 16),
      static_cast<std::uint8_t>(src_ip >> 8),
      static_cast<std::uint8_t>(src_ip),
      static_cast<std::uint8_t>(dst_ip >> 24),
      static_cast<std::uint8_t>(dst_ip >> 16),
      static_cast<std::uint8_t>(dst_ip >> 8),
      static_cast<std::uint8_t>(dst_ip),
      static_cast<std::uint8_t>(src_port >> 8),
      static_cast<std::uint8_t>(src_port),
      static_cast<std::uint8_t>(dst_port >> 8),
      static_cast<std::uint8_t>(dst_port),
      key.proto,
  };
  std::uint32_t result = 0;
  for (std::size_t byte = 0; byte < sizeof input; ++byte) {
    // 32-bit key window starting at bit position `byte * 8`.
    std::uint64_t window = (std::uint64_t{key_[byte]} << 32) |
                           (std::uint64_t{key_[byte + 1]} << 24) |
                           (std::uint64_t{key_[byte + 2]} << 16) |
                           (std::uint64_t{key_[byte + 3]} << 8) |
                           std::uint64_t{key_[byte + 4]};
    for (int bit = 7; bit >= 0; --bit) {
      if ((input[byte] >> bit) & 1) {
        // 32-bit slice of the 40-bit window at offset (7 - bit).
        result ^= static_cast<std::uint32_t>(window >> (bit + 1));
      }
    }
  }
  return result;
}

std::optional<FlowKey> FlowHash::classify(
    std::span<const std::uint8_t> frame) noexcept {
  const auto eth = wire::parse_eth(frame);
  if (!eth ||
      eth->ether_type != static_cast<std::uint16_t>(wire::EtherType::kIpv4)) {
    return std::nullopt;
  }
  const auto payload = frame.subspan(wire::kEthHeaderLen);
  const auto ip = wire::parse_ipv4(payload);
  if (!ip) return std::nullopt;
  FlowKey key;
  key.src_ip = ip->src;
  key.dst_ip = ip->dst;
  key.proto = ip->protocol;
  if (ip->frag_offset != 0) {
    // Non-first fragment: the transport header is elsewhere. Hash on the
    // address pair only (ports stay 0) so all fragments still co-steer
    // with everything between these hosts.
    return key;
  }
  if (payload.size() < ip->header_len()) return key;
  const auto l4 = payload.subspan(ip->header_len());
  if (ip->protocol == static_cast<std::uint8_t>(wire::IpProto::kTcp)) {
    if (const auto tcp = wire::parse_tcp(l4)) {
      key.src_port = tcp->src_port;
      key.dst_port = tcp->dst_port;
    }
  } else if (ip->protocol == static_cast<std::uint8_t>(wire::IpProto::kUdp)) {
    if (const auto udp = wire::parse_udp(l4)) {
      key.src_port = udp->src_port;
      key.dst_port = udp->dst_port;
    }
  }
  return key;
}

NetDevice::NetDevice(std::string name, wire::MacAddr mac, buf::MbufPool& pool,
                     std::size_t rx_ring_slots)
    : name_(std::move(name)),
      mac_(mac),
      pool_(pool),
      rx_ring_slots_(rx_ring_slots),
      rings_(1),
      rx_queue_frames_(1, 0) {}

void NetDevice::connect(NetDevice& a, NetDevice& b) noexcept {
  a.peer_ = &b;
  b.peer_ = &a;
}

void NetDevice::set_rx_queues(std::size_t queues, bool symmetric) {
  LDLP_ASSERT_MSG(queues >= 1, "a device needs at least one RX queue");
  hash_ = FlowHash(symmetric);
  std::vector<std::deque<std::vector<std::uint8_t>>> old;
  old.swap(rings_);
  rings_.resize(queues);
  rx_queue_frames_.assign(queues, 0);
  // Re-steer anything already buffered, oldest first per old queue — the
  // deterministic repartition that makes reconfiguration safe mid-run.
  for (auto& ring : old) {
    for (auto& bytes : ring) ring_push(std::move(bytes), 0);
  }
}

std::size_t NetDevice::steer(
    std::span<const std::uint8_t> frame_bytes) const noexcept {
  if (rings_.size() == 1) return 0;
  const auto key = FlowHash::classify(frame_bytes);
  if (!key) return 0;  // ARP and friends share the housekeeping queue
  return hash_(*key) % rings_.size();
}

bool NetDevice::transmit(buf::Packet frame) noexcept {
  const std::uint32_t len = frame.length();
  if ((peer_ == nullptr && !tx_sink_) || len < wire::kEthHeaderLen ||
      len > wire::kEthHeaderLen + wire::kEthMaxPayload) {
    ++stats_.tx_drops;
    return false;
  }
  // Outage faults are bidirectional: a partition, a carrier-down flap
  // phase, or a dark (restarting) host loses frames leaving this side
  // just as inject() loses frames arriving at it.
  if (fault_ != nullptr && fault_->link_blocked()) {
    fault_->count_blocked_frame();
    ++stats_.tx_drops;
    return false;
  }
  // Driver transmit path: stage the frame into device buffer memory.
  trace_fn(Fn::kLeStart);
  trace_fn(Fn::kCopyToBufGap2);
  trace_fn(Fn::kCopyToBufGap16);
  trace_fn(Fn::kZeroBufGap16);
  trace_fn(Fn::kLeWriteReg);
  trace_rgn(Rgn::kDevRingMut, 0.5);
  trace_pkt(trace::RefKind::kRead, len);

  std::vector<std::uint8_t> bytes(len);
  if (!frame.copy_out(0, bytes)) {
    ++stats_.tx_drops;
    return false;
  }
  if (tx_sink_) {
    // Fabric attachment: the sink owns delivery (links, switches, delays).
    if (!tx_sink_(std::move(bytes))) {
      ++stats_.tx_drops;
      return false;
    }
    ++stats_.tx_frames;
    stats_.tx_bytes += len;
    return true;
  }
  ++stats_.tx_frames;
  stats_.tx_bytes += len;
  peer_->inject(std::move(bytes));
  return true;
}

void NetDevice::ring_push(std::vector<std::uint8_t> frame_bytes,
                          std::uint32_t reorder_depth) noexcept {
  const std::size_t q = steer(frame_bytes);
  auto& ring = rings_[q];
  if (ring.size() >= rx_ring_slots_) {
    ++stats_.rx_drops;
    return;
  }
  ring.push_back(std::move(frame_bytes));
  ++rx_queue_frames_[q];
  if (reorder_depth == 0 && reorder_rate_ > 0.0 &&
      reorder_rng_.chance(reorder_rate_)) {
    reorder_depth = 1;
  }
  // Displace the new arrival up to `reorder_depth` slots toward the head
  // of its own queue (reordering across queues cannot happen: a flow's
  // frames all share one queue).
  std::size_t at = ring.size() - 1;
  while (reorder_depth > 0 && at > 0) {
    std::swap(ring[at], ring[at - 1]);
    --at;
    --reorder_depth;
  }
}

void NetDevice::inject(std::vector<std::uint8_t> frame_bytes) noexcept {
  if (fault_ != nullptr && fault_->link_blocked()) {
    fault_->count_blocked_frame();
    ++stats_.rx_drops;
    return;
  }
  if (loss_rate_ > 0.0 && loss_rng_.chance(loss_rate_)) {
    ++stats_.rx_drops;
    return;
  }
  std::uint32_t reorder_depth = 0;
  bool duplicate = false;
  if (fault_ != nullptr) {
    const fault::FrameVerdict v = fault_->on_frame(frame_bytes);
    if (v.drop) {
      ++stats_.rx_drops;
      return;
    }
    if (v.delayed) return;  // injector holds the bytes until release
    duplicate = v.duplicate;
    reorder_depth = v.reorder_depth;
  }
  if (duplicate) {
    ring_push(frame_bytes, 0);  // copy first, original may be displaced
  }
  ring_push(std::move(frame_bytes), reorder_depth);
}

void NetDevice::poll() noexcept {
  if (fault_ == nullptr) return;
  for (auto& bytes : fault_->collect_released()) ring_push(std::move(bytes), 0);
}

std::size_t NetDevice::clear_rx_ring() noexcept {
  std::size_t lost = 0;
  for (auto& ring : rings_) {
    lost += ring.size();
    ring.clear();
  }
  stats_.rx_drops += lost;
  return lost;
}

buf::Packet NetDevice::receive() noexcept {
  for (std::size_t q = 0; q < rings_.size(); ++q) {
    if (!rings_[q].empty()) return receive_queue(q);
    // Queue order is the scan order; a stalled device returns empty from
    // receive_queue, and every later queue would too.
    if (fault_ != nullptr && fault_->device_stalled()) return {};
  }
  return {};
}

buf::Packet NetDevice::receive_queue(std::size_t queue) noexcept {
  if (fault_ != nullptr && fault_->device_stalled()) {
    // Stall episode: the adaptor buffers but the host sees nothing —
    // exactly the backlog-formation regime LDLP batches through later.
    return {};
  }
  if (queue >= rings_.size() || rings_[queue].empty()) return {};
  auto& ring = rings_[queue];
  const std::vector<std::uint8_t>& bytes = ring.front();
  buf::Packet pkt = buf::Packet::from_bytes(pool_, bytes);
  if (!pkt) {
    // Pool exhausted: leave the frame in device memory for a later pull
    // (the adaptor keeps buffering, which is what enables batching).
    return {};
  }
  ++stats_.rx_frames;
  stats_.rx_bytes += bytes.size();
  ring.pop_front();
  return pkt;
}

}  // namespace ldlp::stack
