// TimerWheel: a 4.4BSD-callout-style hierarchical timing wheel.
//
// Every retry/cadence surface in the stack (TCP rtx/persist/keepalive/
// TIME_WAIT, ARP re-requests, DNS retry ladders, RPC leg RTOs, overlay
// probe/shuffle/graft cadences) used to rediscover its own deadlines by
// scanning its state once per scheduler pass — per-pass overhead of
// exactly the kind the paper indicts for small messages. The wheel turns
// that into O(1) arm/cancel and an advance whose cost is proportional to
// time passed plus timers actually due, so an idle host costs nothing
// and ldlp::net::Fabric can skip its tick rounds entirely.
//
// Determinism contract: timers fire in ascending (deadline, arm-seq)
// order within one advance, so two runs arming the same timers fire the
// same callbacks in the same order regardless of wheel occupancy or
// --jobs. Arming a timer in the past is legal and fires on the next
// advance; cancelling an already-fired or already-cancelled timer is a
// no-op returning false.
//
// Fault surface: set_storm_level(n) models a timer storm (spurious
// wakeups): each advance fires up to n not-yet-due timers early, capped
// at storm_spurious_cap — the excess is shed. The shed_guard config knob
// is a mutation revert-guard (precedent: TcpConfig::enable_persist_timer)
// — when reverted, an advance that jumps far past a deadline (the
// clock-stall recovery snap) sheds the overdue timer instead of firing
// it, which recover::DeadlineOracle must catch.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

namespace ldlp::time {

/// Opaque timer handle. 0 is never a live timer.
using TimerId = std::uint64_t;
inline constexpr TimerId kNoTimer = 0;

/// Liveness classification, carried per timer so storm shedding and the
/// deadline oracle can tell "the connection dies without this" apart
/// from background cadence and pure state expiry.
enum class TimerClass : std::uint8_t {
  kLiveness,  ///< Retransmit/probe timers: losing one wedges progress.
  kCadence,   ///< Periodic background work (shuffles, digests, delack).
  kExpiry,    ///< State garbage collection (TIME_WAIT, cache TTLs).
};
inline constexpr std::size_t kTimerClassCount = 3;

[[nodiscard]] const char* timer_class_name(TimerClass cls) noexcept;

struct WheelConfig {
  double tick_sec = 1e-3;  ///< Wheel resolution; deadlines round up.
  /// Mutation revert-guard: true (default) fires every overdue timer on
  /// a large clock jump (stall recovery); false re-introduces the bug
  /// class where recovery "sheds" stale timers — they silently never
  /// fire — so the deadline oracle can prove it would catch it.
  bool shed_guard = true;
  /// Overdue-beyond-this threshold for the reverted guard's shedding.
  double stale_shed_sec = 0.25;
  /// Max spurious (early) fires per advance under a timer storm; demand
  /// beyond the cap is shed so a storm cannot starve due timers.
  int storm_spurious_cap = 8;
};

struct WheelStats {
  std::uint64_t arms = 0;
  std::uint64_t fires = 0;           ///< On-time (due) fires.
  std::uint64_t cancels = 0;
  std::uint64_t spurious_fires = 0;  ///< Storm-induced early fires.
  std::uint64_t shed = 0;            ///< Fires dropped (storm cap / guard off).
  std::uint64_t cascades = 0;        ///< Timers re-filed from outer levels.
  std::uint64_t max_armed = 0;       ///< High-water mark of live timers.
};

/// Event stream for oracles (recover::DeadlineOracle subscribes).
struct TimerEvent {
  enum class Kind : std::uint8_t { kArm, kFire, kCancel, kShed, kSpurious };
  Kind kind;
  TimerId id = kNoTimer;
  TimerClass cls = TimerClass::kCadence;
  double deadline = 0.0;  ///< The armed deadline.
  double now = 0.0;       ///< Wheel time at the event.
};

class TimerWheel {
 public:
  explicit TimerWheel(WheelConfig config = {});

  TimerWheel(const TimerWheel&) = delete;
  TimerWheel& operator=(const TimerWheel&) = delete;

  /// Arm a one-shot timer. The callback runs inside advance_to(); it may
  /// arm or cancel timers freely (a timer armed in the past from inside
  /// a callback fires on the *next* advance, not the current one).
  [[nodiscard]] TimerId arm(double deadline_sec, TimerClass cls,
                            std::function<void()> fn);

  /// O(1). False if the id already fired, was cancelled, or never existed.
  bool cancel(TimerId id);

  [[nodiscard]] bool armed(TimerId id) const noexcept;
  /// Armed deadline of `id`, +inf when not armed.
  [[nodiscard]] double deadline_of(TimerId id) const noexcept;

  /// Advance wheel time and fire everything due, in (deadline, seq)
  /// order. Time never moves backwards; a stale `now_sec` is a no-op
  /// (still applies storm-induced spurious fires).
  void advance_to(double now_sec);

  [[nodiscard]] double now() const noexcept { return now_; }
  /// Earliest armed deadline, +inf when the wheel is empty. O(log n)
  /// amortized — this is what makes event-driven idle ticks possible.
  [[nodiscard]] double next_deadline() const noexcept;
  [[nodiscard]] std::size_t armed_count() const noexcept { return live_; }
  [[nodiscard]] const WheelStats& stats() const noexcept { return stats_; }
  [[nodiscard]] WheelConfig& config() noexcept { return cfg_; }

  /// Timer-storm intensity: >0 fires up to that many not-yet-due timers
  /// spuriously per advance (capped at storm_spurious_cap, excess shed).
  void set_storm_level(int level) noexcept { storm_ = level; }

  void set_observer(std::function<void(const TimerEvent&)> observer) {
    observer_ = std::move(observer);
  }

 private:
  static constexpr int kLevels = 4;
  static constexpr int kSlotBits = 6;
  static constexpr std::uint64_t kSlots = 1ull << kSlotBits;  // 64
  static constexpr std::uint64_t kSlotMask = kSlots - 1;

  struct Node {
    double deadline = 0.0;
    std::uint64_t tick = 0;
    std::uint64_t seq = 0;      ///< Arm order; firing tiebreaker.
    std::uint32_t gen = 0;      ///< Bumped on fire/cancel; stale-ref guard.
    TimerClass cls = TimerClass::kCadence;
    bool live = false;
    std::function<void()> fn;
  };

  [[nodiscard]] static std::uint32_t index_of(TimerId id) noexcept {
    return static_cast<std::uint32_t>(id & 0xffffffffu) - 1;
  }
  [[nodiscard]] static std::uint32_t gen_of(TimerId id) noexcept {
    return static_cast<std::uint32_t>(id >> 32);
  }
  [[nodiscard]] const Node* resolve(TimerId id) const noexcept;
  void place(TimerId id);  ///< File a live node by its tick delta.
  void emit(TimerEvent::Kind kind, const Node& node, TimerId id);
  /// Detach a node (bump gen, free the slot) returning its callback.
  std::function<void()> detach(std::uint32_t index);

  WheelConfig cfg_;
  double now_ = 0.0;
  std::uint64_t now_tick_ = 0;
  std::uint64_t seq_ = 0;
  std::size_t live_ = 0;
  int storm_ = 0;
  std::vector<Node> nodes_;
  std::vector<std::uint32_t> free_;
  /// slots_[level][slot] holds timer ids; stale refs (cancelled/refiled
  /// timers, reused node slots) are detected by the generation check.
  std::vector<TimerId> slots_[kLevels][kSlots];
  std::vector<TimerId> overflow_;  ///< Beyond the level-3 horizon.
  std::vector<TimerId> due_now_;   ///< Armed-in-past; fire next advance.
  /// Lazy min-heap over (deadline, id) for next_deadline(); entries for
  /// fired/cancelled timers are peeled on query.
  mutable std::priority_queue<std::pair<double, TimerId>,
                              std::vector<std::pair<double, TimerId>>,
                              std::greater<>>
      soonest_;
  WheelStats stats_;
  std::function<void(const TimerEvent&)> observer_;
};

}  // namespace ldlp::time
