// VirtualClock: a per-host monotone virtual clock under clock faults.
//
// stack::Host keeps two clocks: the fabric's real time (what the shared
// eventsim::EventQueue advances) and this host's *virtual* time — what
// its own timers, RTO ladders and TTLs see. Without clock-fault episodes
// the two are bit-identical, so every historical run reproduces exactly.
// With them, the mapping real→virtual is a pure function of the fault
// plan, piecewise per advance:
//
//   kClockSkew   while active, the virtual clock runs offset by
//                `magnitude` seconds (negative skew holds the clock
//                still until real time catches up — monotonicity is
//                never sacrificed to an episode).
//   kClockDrift  the virtual clock accrues `magnitude` extra seconds
//                per real second for the duration; the accumulated
//                offset persists after the episode (drift is not healed
//                by the episode ending, only by skew in the other
//                direction).
//   kClockStall  the virtual clock freezes for the episode and snaps
//                forward monotonically when it ends — the burst of
//                suddenly-due timers that follows is exactly the stall-
//                recovery load the TimerWheel's shed guard exists for.
//
// Episode windows are evaluated against *real* time (a stalled clock
// must still observe its own stall ending).
#pragma once

#include "fault/fault_plan.hpp"

namespace ldlp::time {

class VirtualClock {
 public:
  /// Map the next real-time instant to virtual time. `real_now` must be
  /// non-decreasing across calls. Pass the owning host's fault plan (or
  /// nullptr for the identity mapping).
  double advance(double real_now, const fault::FaultPlan* plan) {
    double virt = real_now;
    if (plan != nullptr && !plan->empty()) {
      // Drift accrues over the elapsed slice, episode-intersected.
      for (const fault::Episode& e : plan->episodes()) {
        if (e.kind != fault::FaultKind::kClockDrift) continue;
        const double lo = last_real_ > e.start ? last_real_ : e.start;
        const double hi = real_now < e.end ? real_now : e.end;
        if (hi > lo) drift_offset_ += e.magnitude * (hi - lo);
      }
      double offset = drift_offset_;
      for (const fault::Episode& e : plan->episodes()) {
        if (e.kind == fault::FaultKind::kClockSkew && e.active_at(real_now))
          offset += e.magnitude;
      }
      virt = real_now + offset;
      stalled_ = plan->active(fault::FaultKind::kClockStall, real_now) !=
                 nullptr;
      if (stalled_) virt = last_virtual_;  // frozen
    } else {
      stalled_ = false;
    }
    if (virt < last_virtual_) virt = last_virtual_;  // always monotone
    last_real_ = real_now;
    last_virtual_ = virt;
    return virt;
  }

  [[nodiscard]] bool stalled() const noexcept { return stalled_; }
  [[nodiscard]] double virtual_now() const noexcept { return last_virtual_; }
  /// Cumulative virtual-minus-real displacement (oracle bound input).
  [[nodiscard]] double displacement() const noexcept {
    return last_virtual_ - last_real_;
  }

 private:
  double last_real_ = 0.0;
  double last_virtual_ = 0.0;
  double drift_offset_ = 0.0;
  bool stalled_ = false;
};

}  // namespace ldlp::time
