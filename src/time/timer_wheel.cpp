#include "time/timer_wheel.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace ldlp::time {

const char* timer_class_name(TimerClass cls) noexcept {
  switch (cls) {
    case TimerClass::kLiveness: return "liveness";
    case TimerClass::kCadence: return "cadence";
    case TimerClass::kExpiry: return "expiry";
  }
  return "?";
}

TimerWheel::TimerWheel(WheelConfig config) : cfg_(config) {
  LDLP_ASSERT_MSG(cfg_.tick_sec > 0.0, "wheel tick must be positive");
}

const TimerWheel::Node* TimerWheel::resolve(TimerId id) const noexcept {
  if (id == kNoTimer) return nullptr;
  const std::uint32_t index = index_of(id);
  if (index >= nodes_.size()) return nullptr;
  const Node& node = nodes_[index];
  if (!node.live || node.gen != gen_of(id)) return nullptr;
  return &node;
}

TimerId TimerWheel::arm(double deadline_sec, TimerClass cls,
                        std::function<void()> fn) {
  std::uint32_t index;
  if (!free_.empty()) {
    index = free_.back();
    free_.pop_back();
  } else {
    index = static_cast<std::uint32_t>(nodes_.size());
    nodes_.emplace_back();
  }
  Node& node = nodes_[index];
  node.deadline = deadline_sec;
  // Round the deadline tick up so a timer never fires before its time;
  // the epsilon keeps an exactly-on-boundary deadline on its boundary.
  const double ticks = deadline_sec / cfg_.tick_sec;
  node.tick = ticks <= 0.0
                  ? 0
                  : static_cast<std::uint64_t>(std::ceil(ticks - 1e-9));
  node.seq = ++seq_;
  node.cls = cls;
  node.live = true;
  node.fn = std::move(fn);
  const TimerId id =
      (static_cast<std::uint64_t>(node.gen) << 32) | (index + 1ull);
  place(id);
  soonest_.emplace(node.deadline, id);
  ++live_;
  ++stats_.arms;
  stats_.max_armed = std::max<std::uint64_t>(stats_.max_armed, live_);
  emit(TimerEvent::Kind::kArm, node, id);
  return id;
}

void TimerWheel::place(TimerId id) {
  const Node& node = nodes_[index_of(id)];
  if (node.tick <= now_tick_) {
    due_now_.push_back(id);
    return;
  }
  const std::uint64_t delta = node.tick - now_tick_;
  for (int level = 0; level < kLevels; ++level) {
    if (delta < (1ull << (kSlotBits * (level + 1)))) {
      const std::uint64_t slot = (node.tick >> (kSlotBits * level)) & kSlotMask;
      slots_[level][slot].push_back(id);
      return;
    }
  }
  overflow_.push_back(id);
}

std::function<void()> TimerWheel::detach(std::uint32_t index) {
  Node& node = nodes_[index];
  std::function<void()> fn = std::move(node.fn);
  node.fn = nullptr;
  node.live = false;
  ++node.gen;
  free_.push_back(index);
  --live_;
  return fn;
}

bool TimerWheel::cancel(TimerId id) {
  const Node* node = resolve(id);
  if (node == nullptr) return false;
  emit(TimerEvent::Kind::kCancel, *node, id);
  // The slot reference goes stale; the generation bump guards against it.
  (void)detach(index_of(id));
  ++stats_.cancels;
  return true;
}

bool TimerWheel::armed(TimerId id) const noexcept {
  return resolve(id) != nullptr;
}

double TimerWheel::deadline_of(TimerId id) const noexcept {
  const Node* node = resolve(id);
  return node != nullptr ? node->deadline
                         : std::numeric_limits<double>::infinity();
}

double TimerWheel::next_deadline() const noexcept {
  while (!soonest_.empty()) {
    const auto& [deadline, id] = soonest_.top();
    const Node* node = resolve(id);
    if (node != nullptr && node->deadline == deadline) return deadline;
    soonest_.pop();  // fired, cancelled, or superseded — peel and retry
  }
  return std::numeric_limits<double>::infinity();
}

void TimerWheel::emit(TimerEvent::Kind kind, const Node& node, TimerId id) {
  if (!observer_) return;
  observer_(TimerEvent{kind, id, node.cls, node.deadline, now_});
}

void TimerWheel::advance_to(double now_sec) {
  if (now_sec > now_) {
    now_ = now_sec;
    const std::uint64_t target =
        static_cast<std::uint64_t>(now_ / cfg_.tick_sec + 1e-9);

    // Collect everything that comes due while turning the wheel up to
    // the target tick. due_now_ holds timers armed in the past *before*
    // this advance (they fire now); arms-in-past made by callbacks
    // during the firing phase land in due_now_ for the next advance.
    std::vector<TimerId> due = std::move(due_now_);
    due_now_.clear();

    while (now_tick_ < target) {
      ++now_tick_;
      // Cascade outer levels at their rotation boundaries first, so a
      // refiled timer due at this very tick joins this batch.
      for (int level = 1; level < kLevels; ++level) {
        if ((now_tick_ & ((1ull << (kSlotBits * level)) - 1)) != 0) break;
        auto& outer =
            slots_[level][(now_tick_ >> (kSlotBits * level)) & kSlotMask];
        std::vector<TimerId> refile;
        refile.swap(outer);
        for (const TimerId id : refile) {
          if (resolve(id) != nullptr) {
            ++stats_.cascades;
            place(id);
          }
        }
        if (level == kLevels - 1) {
          // The top level wrapped: overflow timers may now fit.
          std::vector<TimerId> spill;
          spill.swap(overflow_);
          for (const TimerId id : spill) {
            if (resolve(id) != nullptr) {
              ++stats_.cascades;
              place(id);
            }
          }
        }
      }
      auto& slot = slots_[0][now_tick_ & kSlotMask];
      for (const TimerId id : slot) {
        const Node* node = resolve(id);
        if (node != nullptr && node->tick <= now_tick_) due.push_back(id);
      }
      slot.clear();
      if (!due_now_.empty()) {
        // Cascaded timers already due (deadline tick == this tick).
        due.insert(due.end(), due_now_.begin(), due_now_.end());
        due_now_.clear();
      }
    }

    // Deterministic firing order regardless of slot/cascade geometry.
    std::sort(due.begin(), due.end(), [this](TimerId a, TimerId b) {
      const Node& na = nodes_[index_of(a)];
      const Node& nb = nodes_[index_of(b)];
      if (na.deadline != nb.deadline) return na.deadline < nb.deadline;
      return na.seq < nb.seq;
    });
    for (const TimerId id : due) {
      const Node* node = resolve(id);
      if (node == nullptr || node->tick > now_tick_) continue;  // gone/refiled
      if (!cfg_.shed_guard && now_ - node->deadline > cfg_.stale_shed_sec) {
        // Reverted guard: a deadline left far behind by a clock jump is
        // "stale" and silently dropped — the bug class DeadlineOracle
        // exists to catch.
        emit(TimerEvent::Kind::kShed, *node, id);
        (void)detach(index_of(id));
        ++stats_.shed;
        continue;
      }
      emit(TimerEvent::Kind::kFire, *node, id);
      std::function<void()> fn = detach(index_of(id));
      ++stats_.fires;
      if (fn) fn();  // may arm/cancel; nodes_ may grow — no refs held
    }
  }

  // Timer storm: fire up to `storm_` not-yet-due timers early (earliest
  // first, so the blast is deterministic), shedding demand beyond the
  // cap. Handlers tolerate early wakeups by re-checking their own state
  // deadlines and re-arming, so a storm costs work, not correctness —
  // and because due timers above fire unconditionally, a storm can
  // never starve them.
  if (storm_ > 0) {
    int quota = std::min(storm_, cfg_.storm_spurious_cap);
    stats_.shed += static_cast<std::uint64_t>(storm_ - quota);
    while (quota > 0 && !soonest_.empty()) {
      const auto [deadline, id] = soonest_.top();
      soonest_.pop();
      const Node* node = resolve(id);
      if (node == nullptr || node->deadline != deadline) continue;
      emit(TimerEvent::Kind::kSpurious, *node, id);
      std::function<void()> fn = detach(index_of(id));
      ++stats_.spurious_fires;
      --quota;
      if (fn) fn();
    }
  }
}

}  // namespace ldlp::time
