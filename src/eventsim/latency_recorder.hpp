// Latency and drop accounting for queueing simulations.
//
// Records per-message sojourn time (arrival to completion of processing),
// drops, and throughput over a measurement window. Figures 6 and 7 plot
// the mean; percentiles are kept as well since batching shifts the tail.
#pragma once

#include <cstdint>

#include "common/histogram.hpp"
#include "common/stats.hpp"
#include "eventsim/event_queue.hpp"

namespace ldlp::eventsim {

class LatencyRecorder {
 public:
  /// Histogram spans 1 us .. 100 s, which covers Figure 6's axis with room.
  LatencyRecorder() : histogram_(1e-6, 100.0) {}

  void record_completion(SimTime arrival, SimTime completion) {
    const double latency = completion - arrival;
    stats_.add(latency);
    histogram_.add(latency);
  }

  void record_drop() noexcept { ++drops_; }

  void merge(const LatencyRecorder& other) {
    stats_.merge(other.stats_);
    histogram_.merge(other.histogram_);
    drops_ += other.drops_;
  }

  [[nodiscard]] std::uint64_t completed() const noexcept {
    return stats_.count();
  }
  [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }
  [[nodiscard]] double mean_latency() const noexcept { return stats_.mean(); }
  [[nodiscard]] double max_latency() const noexcept { return stats_.max(); }
  [[nodiscard]] double p50_latency() const noexcept { return histogram_.p50(); }
  [[nodiscard]] double p99_latency() const noexcept { return histogram_.p99(); }
  [[nodiscard]] const RunningStats& stats() const noexcept { return stats_; }

 private:
  RunningStats stats_;
  LogHistogram histogram_;
  std::uint64_t drops_ = 0;
};

}  // namespace ldlp::eventsim
