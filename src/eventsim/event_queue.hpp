// Discrete-event simulation core.
//
// A minimal calendar: events are (time, sequence, callback); the sequence
// number makes simultaneous events fire in scheduling order so runs are
// fully deterministic. Time is double seconds of simulated time.
#pragma once

#include <cstdint>
#include <functional>
#include <limits>
#include <queue>
#include <vector>

#include "common/assert.hpp"

namespace ldlp::eventsim {

using SimTime = double;

class EventQueue {
 public:
  using Callback = std::function<void()>;

  [[nodiscard]] SimTime now() const noexcept { return now_; }
  [[nodiscard]] bool empty() const noexcept { return heap_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return heap_.size(); }

  /// Schedule `fn` at absolute time `when` (>= now).
  void schedule_at(SimTime when, Callback fn);

  /// Schedule `fn` `delay` seconds from now.
  void schedule_in(SimTime delay, Callback fn) {
    schedule_at(now_ + delay, std::move(fn));
  }

  /// Run events until the queue is empty or the horizon is passed. Events
  /// scheduled exactly at the horizon still run; later ones remain queued.
  void run_until(SimTime horizon);

  /// Run everything (caller must guarantee termination).
  void run() { run_until(std::numeric_limits<SimTime>::infinity()); }

 private:
  struct Entry {
    SimTime when;
    std::uint64_t seq;
    Callback fn;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const noexcept {
      if (a.when != b.when) return a.when > b.when;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  SimTime now_ = 0.0;
  std::uint64_t next_seq_ = 0;
};

}  // namespace ldlp::eventsim
