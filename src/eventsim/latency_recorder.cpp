#include "eventsim/latency_recorder.hpp"

// Header-only; anchors the translation unit.
