#include "eventsim/event_queue.hpp"

#include <limits>

namespace ldlp::eventsim {

void EventQueue::schedule_at(SimTime when, Callback fn) {
  LDLP_ASSERT_MSG(when >= now_, "cannot schedule into the past");
  heap_.push(Entry{when, next_seq_++, std::move(fn)});
}

void EventQueue::run_until(SimTime horizon) {
  while (!heap_.empty() && heap_.top().when <= horizon) {
    // priority_queue::top() is const; move via const_cast is the standard
    // idiom to avoid copying the std::function.
    Entry entry = std::move(const_cast<Entry&>(heap_.top()));
    heap_.pop();
    now_ = entry.when;
    entry.fn();
  }
  if (heap_.empty() && horizon != std::numeric_limits<SimTime>::infinity())
    now_ = std::max(now_, horizon);
}

}  // namespace ldlp::eventsim
