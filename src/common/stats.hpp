// Streaming summary statistics.
#pragma once

#include <cstdint>
#include <limits>

namespace ldlp {

/// Welford-style running mean/variance plus min/max. O(1) per sample.
class RunningStats {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    if (x < min_) min_ = x;
    if (x > max_) max_ = x;
    sum_ += x;
  }

  /// Merge another accumulator into this one (parallel Welford).
  void merge(const RunningStats& other) noexcept;

  void reset() noexcept { *this = RunningStats{}; }

  [[nodiscard]] std::uint64_t count() const noexcept { return n_; }
  [[nodiscard]] bool empty() const noexcept { return n_ == 0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double mean() const noexcept { return n_ != 0 ? mean_ : 0.0; }
  [[nodiscard]] double variance() const noexcept {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  [[nodiscard]] double stddev() const noexcept;
  [[nodiscard]] double min() const noexcept {
    return n_ != 0 ? min_ : 0.0;
  }
  [[nodiscard]] double max() const noexcept {
    return n_ != 0 ? max_ : 0.0;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace ldlp
