// Intrusive doubly-linked list.
//
// Queues between protocol layers must not allocate per enqueue (the paper's
// ~40-instruction enqueue/dequeue budget in section 3.2 leaves no room for
// heap traffic), so list linkage is embedded in the queued objects.
#pragma once

#include <cstddef>

#include "common/assert.hpp"

namespace ldlp {

struct ListHook {
  ListHook* prev = nullptr;
  ListHook* next = nullptr;

  [[nodiscard]] bool linked() const noexcept { return next != nullptr; }

  void unlink() noexcept {
    LDLP_DASSERT(linked());
    prev->next = next;
    next->prev = prev;
    prev = next = nullptr;
  }
};

/// Intrusive list of T, where `Hook` is a pointer-to-member selecting which
/// ListHook inside T to use (objects can sit on several lists at once).
template <typename T, ListHook T::* Hook = &T::hook>
class IntrusiveList {
 public:
  IntrusiveList() noexcept { head_.prev = head_.next = &head_; }

  IntrusiveList(const IntrusiveList&) = delete;
  IntrusiveList& operator=(const IntrusiveList&) = delete;

  ~IntrusiveList() { clear(); }

  [[nodiscard]] bool empty() const noexcept { return head_.next == &head_; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }

  void push_back(T& item) noexcept {
    ListHook& h = item.*Hook;
    LDLP_DASSERT(!h.linked());
    h.prev = head_.prev;
    h.next = &head_;
    head_.prev->next = &h;
    head_.prev = &h;
    ++size_;
  }

  void push_front(T& item) noexcept {
    ListHook& h = item.*Hook;
    LDLP_DASSERT(!h.linked());
    h.next = head_.next;
    h.prev = &head_;
    head_.next->prev = &h;
    head_.next = &h;
    ++size_;
  }

  [[nodiscard]] T* front() noexcept {
    return empty() ? nullptr : owner(head_.next);
  }
  [[nodiscard]] T* back() noexcept {
    return empty() ? nullptr : owner(head_.prev);
  }

  T* pop_front() noexcept {
    if (empty()) return nullptr;
    T* item = owner(head_.next);
    (item->*Hook).unlink();
    --size_;
    return item;
  }

  void remove(T& item) noexcept {
    (item.*Hook).unlink();
    --size_;
  }

  /// Unlinks every element; does not destroy them (list does not own).
  void clear() noexcept {
    while (pop_front() != nullptr) {
    }
  }

  /// Moves all elements of `other` onto the back of this list.
  void splice_back(IntrusiveList& other) noexcept {
    while (T* item = other.pop_front()) push_back(*item);
  }

  template <typename F>
  void for_each(F&& fn) {
    for (ListHook* h = head_.next; h != &head_;) {
      ListHook* next = h->next;  // fn may unlink h
      fn(*owner(h));
      h = next;
    }
  }

 private:
  [[nodiscard]] static T* owner(ListHook* h) noexcept {
    // Standard container_of computation via pointer-to-member offset.
    alignas(T) static char probe_storage[sizeof(T)];
    T* probe = reinterpret_cast<T*>(probe_storage);
    const auto offset = reinterpret_cast<char*>(&(probe->*Hook)) -
                        reinterpret_cast<char*>(probe);
    return reinterpret_cast<T*>(reinterpret_cast<char*>(h) - offset);
  }

  ListHook head_;
  std::size_t size_ = 0;
};

}  // namespace ldlp
