// Lightweight always-on assertion macros.
//
// Protocol code must validate invariants in release builds too: a corrupted
// mbuf chain or a scheduler invariant violation should fail loudly rather
// than silently corrupt simulation results. LDLP_ASSERT therefore does not
// compile away with NDEBUG. Use LDLP_DASSERT for hot-path checks that are
// acceptable to drop in optimized builds.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace ldlp::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* file,
                                     int line, const char* msg) {
  std::fprintf(stderr, "ldlp assertion failed: %s\n  at %s:%d\n  %s\n", expr,
               file, line, msg != nullptr ? msg : "");
  std::abort();
}

}  // namespace ldlp::detail

#define LDLP_ASSERT(expr)                                                  \
  do {                                                                     \
    if (!(expr)) [[unlikely]]                                              \
      ::ldlp::detail::assert_fail(#expr, __FILE__, __LINE__, nullptr);     \
  } while (false)

#define LDLP_ASSERT_MSG(expr, msg)                                         \
  do {                                                                     \
    if (!(expr)) [[unlikely]]                                              \
      ::ldlp::detail::assert_fail(#expr, __FILE__, __LINE__, (msg));       \
  } while (false)

#ifdef NDEBUG
#define LDLP_DASSERT(expr) ((void)0)
#else
#define LDLP_DASSERT(expr) LDLP_ASSERT(expr)
#endif
