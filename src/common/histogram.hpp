// Log-bucketed histogram for latency-style measurements.
//
// Values spanning many orders of magnitude (100 us .. 1 s in Figure 6) are
// recorded into logarithmically spaced buckets so that percentile queries
// have bounded relative error without storing every sample.
#pragma once

#include <cstdint>
#include <vector>

namespace ldlp {

class LogHistogram {
 public:
  /// Buckets span [lo, hi) with `per_decade` buckets per factor of 10.
  /// Values below lo land in an underflow bucket, above hi in overflow.
  LogHistogram(double lo, double hi, int per_decade = 20);

  void add(double value) noexcept;
  void merge(const LogHistogram& other);
  void reset() noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }
  [[nodiscard]] double mean() const noexcept {
    return total_ != 0 ? sum_ / static_cast<double>(total_) : 0.0;
  }
  [[nodiscard]] double max_seen() const noexcept { return max_seen_; }

  /// Quantile in [0, 1]; returns the geometric midpoint of the bucket that
  /// contains the q-th sample. q=0.5 gives the median.
  [[nodiscard]] double quantile(double q) const noexcept;

  [[nodiscard]] double p50() const noexcept { return quantile(0.50); }
  [[nodiscard]] double p99() const noexcept { return quantile(0.99); }
  [[nodiscard]] double p999() const noexcept { return quantile(0.999); }
  [[nodiscard]] double p9999() const noexcept { return quantile(0.9999); }

 private:
  [[nodiscard]] std::size_t bucket_for(double value) const noexcept;
  [[nodiscard]] double bucket_mid(std::size_t i) const noexcept;

  double lo_;
  double hi_;
  double log_lo_;
  double inv_log_step_;
  double log_step_;
  std::vector<std::uint64_t> buckets_;  // [under, b0..bn-1, over]
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
  double max_seen_ = 0.0;
};

}  // namespace ldlp
