// Network byte order (big endian) load/store helpers.
//
// All wire codecs go through these rather than casting struct overlays onto
// packet bytes: the loads are alignment-safe (protocol headers frequently
// start at odd offsets inside mbuf chains) and the compiler reduces them to
// single bswap'd loads on every mainstream target.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>

namespace ldlp {

[[nodiscard]] inline std::uint16_t load_be16(const std::uint8_t* p) noexcept {
  return static_cast<std::uint16_t>((p[0] << 8) | p[1]);
}

[[nodiscard]] inline std::uint32_t load_be32(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint32_t>(p[0]) << 24) |
         (static_cast<std::uint32_t>(p[1]) << 16) |
         (static_cast<std::uint32_t>(p[2]) << 8) |
         static_cast<std::uint32_t>(p[3]);
}

[[nodiscard]] inline std::uint64_t load_be64(const std::uint8_t* p) noexcept {
  return (static_cast<std::uint64_t>(load_be32(p)) << 32) | load_be32(p + 4);
}

inline void store_be16(std::uint8_t* p, std::uint16_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 8);
  p[1] = static_cast<std::uint8_t>(v);
}

inline void store_be32(std::uint8_t* p, std::uint32_t v) noexcept {
  p[0] = static_cast<std::uint8_t>(v >> 24);
  p[1] = static_cast<std::uint8_t>(v >> 16);
  p[2] = static_cast<std::uint8_t>(v >> 8);
  p[3] = static_cast<std::uint8_t>(v);
}

inline void store_be64(std::uint8_t* p, std::uint64_t v) noexcept {
  store_be32(p, static_cast<std::uint32_t>(v >> 32));
  store_be32(p + 4, static_cast<std::uint32_t>(v));
}

/// Bounds-checked cursor for decoding wire formats.
class ByteReader {
 public:
  explicit ByteReader(std::span<const std::uint8_t> data) noexcept
      : data_(data) {}

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] bool ok() const noexcept { return !failed_; }

  [[nodiscard]] std::uint8_t u8() noexcept {
    if (!need(1)) return 0;
    return data_[pos_++];
  }
  [[nodiscard]] std::uint16_t be16() noexcept {
    if (!need(2)) return 0;
    const auto v = load_be16(data_.data() + pos_);
    pos_ += 2;
    return v;
  }
  [[nodiscard]] std::uint32_t be32() noexcept {
    if (!need(4)) return 0;
    const auto v = load_be32(data_.data() + pos_);
    pos_ += 4;
    return v;
  }
  [[nodiscard]] std::uint64_t be64() noexcept {
    if (!need(8)) return 0;
    const auto v = load_be64(data_.data() + pos_);
    pos_ += 8;
    return v;
  }
  /// Returns a view of n bytes, or an empty span (and failure) if short.
  [[nodiscard]] std::span<const std::uint8_t> bytes(std::size_t n) noexcept {
    if (!need(n)) return {};
    auto out = data_.subspan(pos_, n);
    pos_ += n;
    return out;
  }
  void skip(std::size_t n) noexcept {
    if (need(n)) pos_ += n;
  }

 private:
  [[nodiscard]] bool need(std::size_t n) noexcept {
    if (failed_ || remaining() < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

/// Bounds-checked cursor for encoding wire formats.
class ByteWriter {
 public:
  explicit ByteWriter(std::span<std::uint8_t> data) noexcept : data_(data) {}

  [[nodiscard]] std::size_t remaining() const noexcept {
    return data_.size() - pos_;
  }
  [[nodiscard]] std::size_t position() const noexcept { return pos_; }
  [[nodiscard]] bool ok() const noexcept { return !failed_; }

  void u8(std::uint8_t v) noexcept {
    if (need(1)) data_[pos_++] = v;
  }
  void be16(std::uint16_t v) noexcept {
    if (need(2)) {
      store_be16(data_.data() + pos_, v);
      pos_ += 2;
    }
  }
  void be32(std::uint32_t v) noexcept {
    if (need(4)) {
      store_be32(data_.data() + pos_, v);
      pos_ += 4;
    }
  }
  void be64(std::uint64_t v) noexcept {
    if (need(8)) {
      store_be64(data_.data() + pos_, v);
      pos_ += 8;
    }
  }
  void bytes(std::span<const std::uint8_t> src) noexcept {
    if (need(src.size()) && !src.empty()) {
      std::memcpy(data_.data() + pos_, src.data(), src.size());
      pos_ += src.size();
    }
  }
  void fill(std::uint8_t v, std::size_t n) noexcept {
    if (need(n) && n != 0) {
      std::memset(data_.data() + pos_, v, n);
      pos_ += n;
    }
  }

 private:
  [[nodiscard]] bool need(std::size_t n) noexcept {
    if (failed_ || remaining() < n) {
      failed_ = true;
      return false;
    }
    return true;
  }

  std::span<std::uint8_t> data_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace ldlp
