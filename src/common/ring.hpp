// Fixed-capacity ring buffer (single producer / single consumer semantics
// within one thread; the simulators are single-threaded by design).
#pragma once

#include <array>
#include <cstddef>
#include <optional>
#include <utility>

#include "common/assert.hpp"

namespace ldlp {

template <typename T, std::size_t Capacity>
class Ring {
  static_assert(Capacity > 0);

 public:
  [[nodiscard]] bool empty() const noexcept { return count_ == 0; }
  [[nodiscard]] bool full() const noexcept { return count_ == Capacity; }
  [[nodiscard]] std::size_t size() const noexcept { return count_; }
  [[nodiscard]] static constexpr std::size_t capacity() noexcept {
    return Capacity;
  }

  /// Returns false (and drops the item) when full.
  [[nodiscard]] bool push(T value) noexcept {
    if (full()) return false;
    slots_[tail_] = std::move(value);
    tail_ = (tail_ + 1) % Capacity;
    ++count_;
    return true;
  }

  [[nodiscard]] std::optional<T> pop() noexcept {
    if (empty()) return std::nullopt;
    T value = std::move(slots_[head_]);
    head_ = (head_ + 1) % Capacity;
    --count_;
    return value;
  }

  [[nodiscard]] T& front() noexcept {
    LDLP_DASSERT(!empty());
    return slots_[head_];
  }

  void clear() noexcept {
    while (!empty()) (void)pop();
  }

 private:
  std::array<T, Capacity> slots_{};
  std::size_t head_ = 0;
  std::size_t tail_ = 0;
  std::size_t count_ = 0;
};

}  // namespace ldlp
