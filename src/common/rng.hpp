// Deterministic pseudo-random number generation for simulations.
//
// Every stochastic component in the library takes an explicit Rng (or a
// 64-bit seed) so that any benchmark run is exactly reproducible. The
// generator is xoshiro256++, seeded through splitmix64 as its authors
// recommend; it is much faster than std::mt19937_64 and has no measurable
// bias for the distributions used here.
#pragma once

#include <cstdint>

namespace ldlp {

/// splitmix64 step; used for seeding and for cheap hash mixing.
[[nodiscard]] constexpr std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  constexpr explicit Rng(std::uint64_t seed = 0x1d1b1996ULL) noexcept {
    reseed(seed);
  }

  constexpr void reseed(std::uint64_t seed) noexcept {
    std::uint64_t sm = seed;
    for (auto& word : state_) word = splitmix64(sm);
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return ~std::uint64_t{0};
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(state_[0] + state_[3], 23) + state_[0];
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  [[nodiscard]] double uniform() noexcept {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  [[nodiscard]] double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * uniform();
  }

  /// Uniform integer in [0, bound). bound must be nonzero.
  [[nodiscard]] std::uint64_t bounded(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive.
  [[nodiscard]] std::int64_t range(std::int64_t lo, std::int64_t hi) noexcept;

  /// Exponentially distributed value with the given mean (> 0).
  [[nodiscard]] double exponential(double mean) noexcept;

  /// Pareto distributed value: shape alpha (> 0), minimum xm (> 0).
  /// Mean is alpha*xm/(alpha-1) for alpha > 1; infinite otherwise.
  [[nodiscard]] double pareto(double alpha, double xm) noexcept;

  /// Bernoulli trial with probability p of returning true.
  [[nodiscard]] bool chance(double p) noexcept { return uniform() < p; }

  /// Fork an independent stream; deterministic function of current state.
  [[nodiscard]] Rng split() noexcept {
    return Rng{(*this)() ^ 0x9e3779b97f4a7c15ULL};
  }

 private:
  [[nodiscard]] static constexpr std::uint64_t rotl(std::uint64_t x,
                                                    int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace ldlp
