#include "common/rng.hpp"

#include <cmath>

#include "common/assert.hpp"

namespace ldlp {

std::uint64_t Rng::bounded(std::uint64_t bound) noexcept {
  LDLP_DASSERT(bound != 0);
  // Lemire's nearly-divisionless method; the rejection loop runs at most a
  // handful of times even for adversarial bounds.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = -bound % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::range(std::int64_t lo, std::int64_t hi) noexcept {
  LDLP_DASSERT(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(bounded(span));
}

double Rng::exponential(double mean) noexcept {
  LDLP_DASSERT(mean > 0.0);
  // uniform() can return exactly 0; 1-u is in (0, 1].
  return -mean * std::log(1.0 - uniform());
}

double Rng::pareto(double alpha, double xm) noexcept {
  LDLP_DASSERT(alpha > 0.0 && xm > 0.0);
  return xm / std::pow(1.0 - uniform(), 1.0 / alpha);
}

}  // namespace ldlp
