#include "common/histogram.hpp"

#include <algorithm>
#include <cmath>

#include "common/assert.hpp"

namespace ldlp {

LogHistogram::LogHistogram(double lo, double hi, int per_decade)
    : lo_(lo), hi_(hi) {
  LDLP_ASSERT(lo > 0.0 && hi > lo && per_decade > 0);
  log_lo_ = std::log10(lo);
  log_step_ = 1.0 / per_decade;
  inv_log_step_ = per_decade;
  const auto n = static_cast<std::size_t>(
      std::ceil((std::log10(hi) - log_lo_) * per_decade));
  buckets_.assign(n + 2, 0);  // +under +over
}

std::size_t LogHistogram::bucket_for(double value) const noexcept {
  if (value < lo_) return 0;
  if (value >= hi_) return buckets_.size() - 1;
  const auto i = static_cast<std::size_t>(
      (std::log10(value) - log_lo_) * inv_log_step_);
  return std::min(i + 1, buckets_.size() - 2);
}

double LogHistogram::bucket_mid(std::size_t i) const noexcept {
  if (i == 0) return lo_;
  if (i == buckets_.size() - 1) return hi_;
  const double lg = log_lo_ + (static_cast<double>(i - 1) + 0.5) * log_step_;
  return std::pow(10.0, lg);
}

void LogHistogram::add(double value) noexcept {
  // NaN has no bucket (log10 of it would cast to a garbage index): drop
  // the sample rather than poison the distribution. ±inf land in the
  // under/overflow buckets through the ordinary comparisons.
  if (std::isnan(value)) return;
  ++buckets_[bucket_for(value)];
  ++total_;
  sum_ += value;
  if (value > max_seen_) max_seen_ = value;
}

void LogHistogram::merge(const LogHistogram& other) {
  LDLP_ASSERT(buckets_.size() == other.buckets_.size());
  for (std::size_t i = 0; i < buckets_.size(); ++i)
    buckets_[i] += other.buckets_[i];
  total_ += other.total_;
  sum_ += other.sum_;
  max_seen_ = std::max(max_seen_, other.max_seen_);
}

void LogHistogram::reset() noexcept {
  std::fill(buckets_.begin(), buckets_.end(), 0);
  total_ = 0;
  sum_ = 0.0;
  max_seen_ = 0.0;
}

double LogHistogram::quantile(double q) const noexcept {
  // Zero-sample safe: snapshots emit p50..p9999 unconditionally, and a
  // repair-latency histogram on a calm run has no samples — every
  // quantile of an empty histogram is a well-defined 0.0. NaN q would
  // pass std::clamp through; treat it as empty too.
  if (total_ == 0 || std::isnan(q)) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const auto target = static_cast<std::uint64_t>(
      q * static_cast<double>(total_ - 1));
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < buckets_.size(); ++i) {
    seen += buckets_[i];
    if (seen > target) return bucket_mid(i);
  }
  return hi_;
}

}  // namespace ldlp
