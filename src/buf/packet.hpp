// Packet: RAII handle over an mbuf chain, plus the classic chain
// operations (m_prepend, m_adj, m_pullup, m_copydata, m_split, m_cat...).
//
// A Packet owns its chain; moving a Packet transfers ownership (which is
// exactly the "lower layers hand off their buffers to the higher layers"
// discipline LDLP requires, expressed in the type system). Destruction
// returns every mbuf to its pool.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "buf/pool.hpp"

namespace ldlp::buf {

class Packet {
 public:
  Packet() = default;
  Packet(MbufPool& pool, Mbuf* head) noexcept : pool_(&pool), head_(head) {}

  Packet(Packet&& other) noexcept : pool_(other.pool_), head_(other.head_) {
    other.head_ = nullptr;
  }
  Packet& operator=(Packet&& other) noexcept {
    if (this != &other) {
      reset();
      pool_ = other.pool_;
      head_ = other.head_;
      other.head_ = nullptr;
    }
    return *this;
  }

  Packet(const Packet&) = delete;
  Packet& operator=(const Packet&) = delete;

  ~Packet() { reset(); }

  /// Allocate an empty packet (one pkthdr mbuf, window centered).
  /// Returns an empty Packet if the pool is exhausted.
  [[nodiscard]] static Packet make(MbufPool& pool) noexcept;

  /// Allocate a packet containing a copy of `payload`, spread over
  /// cluster-backed mbufs as needed.
  [[nodiscard]] static Packet from_bytes(
      MbufPool& pool, std::span<const std::uint8_t> payload) noexcept;

  [[nodiscard]] bool empty() const noexcept { return head_ == nullptr; }
  explicit operator bool() const noexcept { return head_ != nullptr; }

  [[nodiscard]] Mbuf* head() noexcept { return head_; }
  [[nodiscard]] const Mbuf* head() const noexcept { return head_; }
  [[nodiscard]] MbufPool* pool() noexcept { return pool_; }

  /// Total payload bytes in the chain (recomputed, not the cached pkt_len).
  [[nodiscard]] std::uint32_t length() const noexcept;

  /// Number of mbufs in the chain.
  [[nodiscard]] std::uint32_t chain_count() const noexcept;

  /// Refresh the pkthdr cached length from the chain.
  void sync_pkt_len() noexcept;

  /// --- BSD chain operations ---------------------------------------------

  /// M_PREPEND: make room for `n` bytes in front, allocating a new head
  /// mbuf when the current one has no leading space. Returns a pointer to
  /// the new front bytes, or nullptr on allocation failure.
  [[nodiscard]] std::uint8_t* prepend(std::uint32_t n) noexcept;

  /// Append `payload`, using trailing space then new cluster mbufs.
  /// Returns false on allocation failure (packet may be partly extended).
  [[nodiscard]] bool append(std::span<const std::uint8_t> payload) noexcept;

  /// m_adj: trim `n` bytes from the front (positive) or back (negative),
  /// freeing emptied mbufs (the head mbuf is kept even if empty, as BSD
  /// keeps the pkthdr).
  void adj(std::int32_t n) noexcept;

  /// m_pullup: ensure the first `n` bytes are contiguous in the head mbuf.
  /// Returns a pointer to them, or nullptr if the chain is shorter than
  /// `n` or it cannot fit in one mbuf's internal area.
  [[nodiscard]] std::uint8_t* pullup(std::uint32_t n) noexcept;

  /// m_copydata: copy `len` bytes starting at `off` into `dst`.
  /// Returns false if the chain is too short.
  [[nodiscard]] bool copy_out(std::uint32_t off,
                              std::span<std::uint8_t> dst) const noexcept;

  /// Overwrite bytes at `off` from `src` (chain must already cover them).
  [[nodiscard]] bool copy_in(std::uint32_t off,
                             std::span<const std::uint8_t> src) noexcept;

  /// m_split: split at `off`; this keeps [0, off), the returned packet
  /// holds [off, end). Returns empty packet on failure (chain unchanged
  /// if off > length()).
  [[nodiscard]] Packet split(std::uint32_t off) noexcept;

  /// m_cat: append other's chain to this (other is consumed).
  void cat(Packet&& other) noexcept;

  /// Contiguous view of bytes [off, off+len) if they happen to sit in one
  /// mbuf; nullopt otherwise (caller falls back to copy_out).
  [[nodiscard]] std::optional<std::span<const std::uint8_t>> try_view(
      std::uint32_t off, std::uint32_t len) const noexcept;

  /// Release the chain back to the pool.
  void reset() noexcept;

  /// Give up ownership (e.g. to hand the raw chain to a queue).
  [[nodiscard]] Mbuf* release() noexcept {
    Mbuf* m = head_;
    head_ = nullptr;
    return m;
  }

 private:
  MbufPool* pool_ = nullptr;
  Mbuf* head_ = nullptr;
};

}  // namespace ldlp::buf
