// Mbuf and cluster pool.
//
// Fixed-capacity slab allocator with O(1) freelists. Allocation failure is
// reported, not thrown: a protocol stack under overload must shed packets,
// not unwind. The pool tracks outstanding buffers so tests can assert
// leak-freedom after every scenario.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "buf/mbuf.hpp"

namespace ldlp::buf {

struct PoolStats {
  std::uint64_t mbuf_allocs = 0;
  std::uint64_t mbuf_frees = 0;
  std::uint64_t cluster_allocs = 0;
  std::uint64_t cluster_frees = 0;
  std::uint64_t alloc_failures = 0;

  [[nodiscard]] std::uint64_t mbufs_outstanding() const noexcept {
    return mbuf_allocs - mbuf_frees;
  }
  [[nodiscard]] std::uint64_t clusters_outstanding() const noexcept {
    return cluster_allocs - cluster_frees;
  }
};

class MbufPool {
 public:
  explicit MbufPool(std::size_t mbuf_count = 4096,
                    std::size_t cluster_count = 1024);

  MbufPool(const MbufPool&) = delete;
  MbufPool& operator=(const MbufPool&) = delete;
  ~MbufPool();

  /// Allocate one mbuf with an empty, centered data window. Returns
  /// nullptr when the pool is exhausted. `pkthdr` marks it as the first
  /// mbuf of a packet.
  [[nodiscard]] Mbuf* alloc(bool pkthdr = false) noexcept;

  /// Attach a fresh cluster to `m` (which must have len == 0). The data
  /// window moves into the cluster. Returns false if no clusters remain.
  [[nodiscard]] bool add_cluster(Mbuf& m) noexcept;

  /// Share `from`'s cluster with `to` (refcounted, zero-copy). `to` gets
  /// the same data window as `from`.
  void share_cluster(const Mbuf& from, Mbuf& to) noexcept;

  /// Free one mbuf (not its chain); returns m->next() for m_free()-style
  /// iteration.
  Mbuf* free_one(Mbuf* m) noexcept;

  /// Free an entire chain.
  void free_chain(Mbuf* m) noexcept;

  [[nodiscard]] const PoolStats& stats() const noexcept { return stats_; }
  [[nodiscard]] std::size_t mbufs_free() const noexcept {
    return mbuf_free_.size();
  }
  [[nodiscard]] std::size_t clusters_free() const noexcept {
    return cluster_free_.size();
  }

 private:
  void release_cluster(Cluster* c) noexcept;

  std::unique_ptr<Mbuf[]> mbuf_slab_;
  std::unique_ptr<Cluster[]> cluster_slab_;
  std::vector<Mbuf*> mbuf_free_;
  std::vector<Cluster*> cluster_free_;
  PoolStats stats_;
};

}  // namespace ldlp::buf
