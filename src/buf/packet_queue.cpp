#include "buf/packet_queue.hpp"

// Header-only; anchors the translation unit.
