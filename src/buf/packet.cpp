#include "buf/packet.hpp"

#include <algorithm>
#include <cstring>

#include "common/assert.hpp"

namespace ldlp::buf {

namespace {

/// Move an empty mbuf's data window to the very start of its buffer so the
/// entire area is trailing space.
void window_to_start(Mbuf& m) noexcept {
  LDLP_DASSERT(m.len() == 0);
  m.grow_front(m.leading_space());
  m.set_len(0);
}

}  // namespace

Packet Packet::make(MbufPool& pool) noexcept {
  Mbuf* m = pool.alloc(/*pkthdr=*/true);
  if (m == nullptr) return {};
  return Packet{pool, m};
}

Packet Packet::from_bytes(MbufPool& pool,
                          std::span<const std::uint8_t> payload) noexcept {
  Packet pkt = make(pool);
  if (!pkt) return pkt;
  // Leave the head window centered for header prepends; payload goes into
  // trailing space and clusters.
  if (!pkt.append(payload)) {
    pkt.reset();
    return {};
  }
  pkt.sync_pkt_len();
  return pkt;
}

std::uint32_t Packet::length() const noexcept {
  std::uint32_t total = 0;
  for (const Mbuf* m = head_; m != nullptr; m = m->next()) total += m->len();
  return total;
}

std::uint32_t Packet::chain_count() const noexcept {
  std::uint32_t n = 0;
  for (const Mbuf* m = head_; m != nullptr; m = m->next()) ++n;
  return n;
}

void Packet::sync_pkt_len() noexcept {
  if (head_ != nullptr) head_->set_pkt_len(length());
}

std::uint8_t* Packet::prepend(std::uint32_t n) noexcept {
  LDLP_DASSERT(head_ != nullptr);
  if (head_->leading_space() >= n) {
    return head_->grow_front(n);
  }
  // Allocate a fresh head mbuf; the header goes at its tail so later
  // prepends still have room in front.
  Mbuf* m = pool_->alloc(/*pkthdr=*/true);
  if (m == nullptr) return nullptr;
  if (n > m->buffer_size()) {  // header larger than an mbuf: caller error
    pool_->free_one(m);
    return nullptr;
  }
  m->set_pkt_len(head_->pkt_len());
  m->set_next(head_);
  head_ = m;
  if (m->leading_space() < n) {
    // Shift the empty window toward the buffer end so the header fits in
    // front while leaving the rest of the leading area for later layers.
    const std::uint32_t deficit = n - m->leading_space();
    m->grow_back(deficit);
    m->trim_front(deficit);
  }
  return m->grow_front(n);
}

bool Packet::append(std::span<const std::uint8_t> payload) noexcept {
  LDLP_DASSERT(head_ != nullptr);
  Mbuf* tail = head_;
  while (tail->next() != nullptr) tail = tail->next();
  while (!payload.empty()) {
    std::uint32_t space = tail->trailing_space();
    if (space == 0) {
      Mbuf* m = pool_->alloc();
      if (m == nullptr) return false;
      if (payload.size() > m->buffer_size() / 2) {
        if (!pool_->add_cluster(*m)) {
          pool_->free_one(m);
          return false;
        }
      }
      // Pure payload buffers use their whole area.
      window_to_start(*m);
      tail->set_next(m);
      tail = m;
      space = tail->trailing_space();
    }
    const auto take =
        static_cast<std::uint32_t>(std::min<std::size_t>(space, payload.size()));
    std::memcpy(tail->grow_back(take), payload.data(), take);
    payload = payload.subspan(take);
  }
  return true;
}

void Packet::adj(std::int32_t n) noexcept {
  if (head_ == nullptr || n == 0) return;
  if (n > 0) {
    auto remaining = static_cast<std::uint32_t>(n);
    Mbuf* m = head_;
    while (m != nullptr && remaining > 0) {
      const std::uint32_t take = std::min(remaining, m->len());
      m->trim_front(take);
      remaining -= take;
      if (m->len() == 0 && m != head_) {
        // Free emptied interior mbufs by relinking from the head.
        Mbuf* prev = head_;
        while (prev->next() != m) prev = prev->next();
        prev->set_next(pool_->free_one(m));
        m = prev->next();
      } else {
        m = m->next();
      }
    }
  } else {
    auto remaining = static_cast<std::uint32_t>(-n);
    while (remaining > 0 && head_ != nullptr) {
      // Find the last mbuf with data.
      Mbuf* last = nullptr;
      for (Mbuf* m = head_; m != nullptr; m = m->next()) {
        if (m->len() > 0) last = m;
      }
      if (last == nullptr) break;
      const std::uint32_t take = std::min(remaining, last->len());
      last->trim_back(take);
      remaining -= take;
      if (last->len() == 0 && last != head_) {
        Mbuf* prev = head_;
        while (prev->next() != last) prev = prev->next();
        prev->set_next(pool_->free_one(last));
      }
    }
  }
  sync_pkt_len();
}

std::uint8_t* Packet::pullup(std::uint32_t n) noexcept {
  if (head_ == nullptr || n > length()) return nullptr;
  if (head_->len() >= n) return head_->data();
  if (n > head_->buffer_size()) return nullptr;

  // Compact the first n bytes into a fresh head mbuf (simpler than BSD's
  // in-place shuffle and equivalent for correctness).
  Mbuf* fresh = pool_->alloc(/*pkthdr=*/true);
  if (fresh == nullptr) return nullptr;
  if (n > fresh->buffer_size()) {
    pool_->free_one(fresh);
    return nullptr;
  }
  fresh->set_pkt_len(head_->pkt_len());
  if (fresh->trailing_space() < n) window_to_start(*fresh);

  std::uint8_t* dst = fresh->grow_back(n);
  std::uint32_t copied = 0;
  Mbuf* m = head_;
  while (m != nullptr && copied < n) {
    const std::uint32_t take = std::min(n - copied, m->len());
    std::memcpy(dst + copied, m->data(), take);
    m->trim_front(take);
    copied += take;
    if (m->len() == 0) {
      Mbuf* next = pool_->free_one(m);
      m = next;
    }
  }
  fresh->set_next(m);
  head_ = fresh;
  return fresh->data();
}

bool Packet::copy_out(std::uint32_t off,
                      std::span<std::uint8_t> dst) const noexcept {
  const Mbuf* m = head_;
  while (m != nullptr && off >= m->len()) {
    off -= m->len();
    m = m->next();
  }
  std::size_t copied = 0;
  while (m != nullptr && copied < dst.size()) {
    const auto take = static_cast<std::uint32_t>(
        std::min<std::size_t>(m->len() - off, dst.size() - copied));
    std::memcpy(dst.data() + copied, m->data() + off, take);
    copied += take;
    off = 0;
    m = m->next();
  }
  return copied == dst.size();
}

bool Packet::copy_in(std::uint32_t off,
                     std::span<const std::uint8_t> src) noexcept {
  Mbuf* m = head_;
  while (m != nullptr && off >= m->len()) {
    off -= m->len();
    m = m->next();
  }
  std::size_t copied = 0;
  while (m != nullptr && copied < src.size()) {
    const auto take = static_cast<std::uint32_t>(
        std::min<std::size_t>(m->len() - off, src.size() - copied));
    std::memcpy(m->data() + off, src.data() + copied, take);
    copied += take;
    off = 0;
    m = m->next();
  }
  return copied == src.size();
}

Packet Packet::split(std::uint32_t off) noexcept {
  if (head_ == nullptr || off > length()) return {};

  Packet rest = make(*pool_);
  if (!rest) return {};

  // Walk to the split point.
  Mbuf* m = head_;
  std::uint32_t pos = off;
  while (m != nullptr && pos > m->len()) {
    pos -= m->len();
    m = m->next();
  }
  if (m == nullptr) {  // off == length(): empty tail
    rest.sync_pkt_len();
    return rest;
  }

  if (pos < m->len()) {
    // Copy the partial tail of `m` into the new packet's head, then trim.
    const std::uint32_t tail_len = m->len() - pos;
    if (!rest.append({m->data() + pos, tail_len})) {
      rest.reset();
      return {};
    }
    m->trim_back(tail_len);
  }
  // Move the remaining whole mbufs over.
  Mbuf* moved = m->next();
  m->set_next(nullptr);
  if (moved != nullptr) {
    Mbuf* rest_tail = rest.head_;
    while (rest_tail->next() != nullptr) rest_tail = rest_tail->next();
    rest_tail->set_next(moved);
  }
  sync_pkt_len();
  rest.sync_pkt_len();
  return rest;
}

void Packet::cat(Packet&& other) noexcept {
  if (other.head_ == nullptr) return;
  LDLP_DASSERT(other.pool_ == pool_);
  if (head_ == nullptr) {
    head_ = other.release();
    sync_pkt_len();
    return;
  }
  Mbuf* tail = head_;
  while (tail->next() != nullptr) tail = tail->next();
  tail->set_next(other.release());
  sync_pkt_len();
}

std::optional<std::span<const std::uint8_t>> Packet::try_view(
    std::uint32_t off, std::uint32_t len) const noexcept {
  const Mbuf* m = head_;
  while (m != nullptr && off >= m->len()) {
    off -= m->len();
    m = m->next();
  }
  if (m == nullptr || m->len() - off < len) return std::nullopt;
  return std::span<const std::uint8_t>{m->data() + off, len};
}

void Packet::reset() noexcept {
  if (head_ != nullptr) {
    pool_->free_chain(head_);
    head_ = nullptr;
  }
}

}  // namespace ldlp::buf
