// mbuf: the 4.4BSD-style network buffer.
//
// The paper leans on the mbuf design twice: its measurements show how much
// of a real stack's working set is buffer management (Table 1), and its
// LDLP implementation requires "a buffer management scheme where lower
// layers hand off their buffers to the higher layers" (section 3.2) — mbuf
// chains provide exactly that. This is a faithful miniature: fixed-size
// buffers with either a small internal data area or an attached shared
// cluster, chained per packet via `next`, queued per protocol via chains
// of packets. Headers are stripped and prepended by moving the data
// pointer, never by copying payload bytes.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace ldlp::buf {

class MbufPool;

inline constexpr std::size_t kMbufSize = 256;      ///< Whole object (MSIZE).
inline constexpr std::size_t kClusterSize = 2048;  ///< Cluster (MCLBYTES).

/// Reference-counted external storage shared between mbufs (m_copy-style
/// zero-copy duplication bumps the count instead of copying bytes).
struct Cluster {
  std::uint32_t refs = 0;
  alignas(8) std::uint8_t bytes[kClusterSize];
};

class Mbuf {
 public:
  // Mbufs live in MbufPool slabs; constructing them elsewhere is possible
  // but pointless — every useful entry point takes a pool.
  Mbuf() = default;
  Mbuf(const Mbuf&) = delete;
  Mbuf& operator=(const Mbuf&) = delete;

  /// --- Chain linkage -----------------------------------------------------
  [[nodiscard]] Mbuf* next() const noexcept { return next_; }
  void set_next(Mbuf* m) noexcept { next_ = m; }

  /// BSD m_nextpkt: links whole packets (head mbufs) on protocol queues,
  /// so a FIFO of packets needs no per-enqueue allocation — the queue is
  /// threaded through storage the packets already own.
  [[nodiscard]] Mbuf* nextpkt() const noexcept { return nextpkt_; }
  void set_nextpkt(Mbuf* m) noexcept { nextpkt_ = m; }

  /// Owning pool (set at allocation); lets a queue of raw chains rebuild
  /// the RAII Packet handle on dequeue.
  [[nodiscard]] MbufPool* pool() const noexcept { return pool_; }

  /// --- Data window -------------------------------------------------------
  [[nodiscard]] std::uint32_t len() const noexcept { return len_; }
  [[nodiscard]] std::uint8_t* data() noexcept { return data_; }
  [[nodiscard]] const std::uint8_t* data() const noexcept { return data_; }
  [[nodiscard]] std::span<std::uint8_t> bytes() noexcept {
    return {data_, len_};
  }
  [[nodiscard]] std::span<const std::uint8_t> bytes() const noexcept {
    return {data_, len_};
  }

  /// Buffer bounds (internal area or cluster).
  [[nodiscard]] std::uint8_t* buffer_start() noexcept;
  [[nodiscard]] std::uint8_t* buffer_end() noexcept;
  [[nodiscard]] std::uint32_t buffer_size() const noexcept {
    return has_cluster() ? kClusterSize
                         : static_cast<std::uint32_t>(sizeof internal_);
  }

  /// Space available in front of / behind the current data window.
  [[nodiscard]] std::uint32_t leading_space() noexcept {
    return static_cast<std::uint32_t>(data_ - buffer_start());
  }
  [[nodiscard]] std::uint32_t trailing_space() noexcept {
    return static_cast<std::uint32_t>(buffer_end() - (data_ + len_));
  }

  /// Grow the window forward (toward lower addresses) by `n` bytes and
  /// return the new front. Caller must check leading_space() first.
  std::uint8_t* grow_front(std::uint32_t n) noexcept;
  /// Grow the window at the tail by `n` bytes; returns pointer to the new
  /// region. Caller must check trailing_space() first.
  std::uint8_t* grow_back(std::uint32_t n) noexcept;
  /// Shrink from the front / back (len must cover n).
  void trim_front(std::uint32_t n) noexcept;
  void trim_back(std::uint32_t n) noexcept;

  void set_len(std::uint32_t n) noexcept { len_ = n; }

  /// Center the (empty) data window so both prepend and append have room.
  void center_window() noexcept;

  [[nodiscard]] bool has_cluster() const noexcept { return cluster_ != nullptr; }

  /// --- Packet header (first mbuf of a packet only) -----------------------
  [[nodiscard]] bool is_pkthdr() const noexcept { return pkthdr_; }
  [[nodiscard]] std::uint32_t pkt_len() const noexcept { return pkt_len_; }
  void set_pkt_len(std::uint32_t n) noexcept { pkt_len_ = n; }

 private:
  friend class MbufPool;

  Mbuf* next_ = nullptr;
  Mbuf* nextpkt_ = nullptr;
  std::uint8_t* data_ = nullptr;
  std::uint32_t len_ = 0;
  std::uint32_t pkt_len_ = 0;
  bool pkthdr_ = false;
  Cluster* cluster_ = nullptr;
  MbufPool* pool_ = nullptr;

  // Internal data area fills the rest of the fixed-size object, as in BSD.
  static constexpr std::size_t kHeaderBytes =
      2 * sizeof(Mbuf*) + sizeof(std::uint8_t*) + 2 * sizeof(std::uint32_t) +
      sizeof(bool) + sizeof(Cluster*) + sizeof(MbufPool*);
  std::uint8_t internal_[kMbufSize - ((kHeaderBytes + 7) / 8) * 8]{};
};

static_assert(sizeof(Mbuf) <= kMbufSize, "mbuf must stay a small fixed size");

}  // namespace ldlp::buf
