#include "buf/pool.hpp"

#include "common/assert.hpp"

namespace ldlp::buf {

MbufPool::MbufPool(std::size_t mbuf_count, std::size_t cluster_count) {
  LDLP_ASSERT(mbuf_count > 0);
  mbuf_slab_ = std::unique_ptr<Mbuf[]>(new Mbuf[mbuf_count]);
  mbuf_free_.reserve(mbuf_count);
  for (std::size_t i = 0; i < mbuf_count; ++i)
    mbuf_free_.push_back(&mbuf_slab_[mbuf_count - 1 - i]);

  cluster_slab_ = std::unique_ptr<Cluster[]>(new Cluster[cluster_count]);
  cluster_free_.reserve(cluster_count);
  for (std::size_t i = 0; i < cluster_count; ++i)
    cluster_free_.push_back(&cluster_slab_[cluster_count - 1 - i]);
}

MbufPool::~MbufPool() {
  LDLP_ASSERT_MSG(stats_.mbufs_outstanding() == 0,
                  "mbuf leak detected at pool destruction");
}

Mbuf* MbufPool::alloc(bool pkthdr) noexcept {
  if (mbuf_free_.empty()) {
    ++stats_.alloc_failures;
    return nullptr;
  }
  Mbuf* m = mbuf_free_.back();
  mbuf_free_.pop_back();
  m->next_ = nullptr;
  m->nextpkt_ = nullptr;
  m->len_ = 0;
  m->pkt_len_ = 0;
  m->pkthdr_ = pkthdr;
  m->cluster_ = nullptr;
  m->pool_ = this;
  m->center_window();
  ++stats_.mbuf_allocs;
  return m;
}

bool MbufPool::add_cluster(Mbuf& m) noexcept {
  LDLP_DASSERT(m.len_ == 0 && m.cluster_ == nullptr);
  if (cluster_free_.empty()) {
    ++stats_.alloc_failures;
    return false;
  }
  Cluster* c = cluster_free_.back();
  cluster_free_.pop_back();
  c->refs = 1;
  m.cluster_ = c;
  m.center_window();
  ++stats_.cluster_allocs;
  return true;
}

void MbufPool::share_cluster(const Mbuf& from, Mbuf& to) noexcept {
  LDLP_DASSERT(from.cluster_ != nullptr);
  LDLP_DASSERT(to.cluster_ == nullptr && to.len_ == 0);
  ++from.cluster_->refs;
  to.cluster_ = from.cluster_;
  to.data_ = from.data_;
  to.len_ = from.len_;
}

void MbufPool::release_cluster(Cluster* c) noexcept {
  LDLP_DASSERT(c->refs > 0);
  if (--c->refs == 0) {
    cluster_free_.push_back(c);
    ++stats_.cluster_frees;
  }
}

Mbuf* MbufPool::free_one(Mbuf* m) noexcept {
  LDLP_DASSERT(m != nullptr && m->pool_ == this);
  Mbuf* next = m->next_;
  if (m->cluster_ != nullptr) {
    release_cluster(m->cluster_);
    m->cluster_ = nullptr;
  }
  m->next_ = nullptr;
  m->nextpkt_ = nullptr;
  m->pool_ = nullptr;
  mbuf_free_.push_back(m);
  ++stats_.mbuf_frees;
  return next;
}

void MbufPool::free_chain(Mbuf* m) noexcept {
  while (m != nullptr) m = free_one(m);
}

}  // namespace ldlp::buf
