// Bounded FIFO of packets — the per-layer input queues of section 3.2 and
// the 500-packet receive buffer of section 4.
//
// Intrusive singly-linked ring threaded through Mbuf::nextpkt (BSD's
// m_nextpkt), exactly like a 4.4BSD ifqueue: push links the new tail,
// pop unlinks the head, and neither touches the allocator — the deque of
// Packet handles this used to be paid one node allocation (and a Packet
// move) per enqueue on the hottest receive-side path. The queue briefly
// owns the raw chains; pop() rebuilds the RAII Packet from the head
// mbuf's pool backref, so leak accounting is unchanged.
#pragma once

#include <cstdint>

#include "buf/packet.hpp"

namespace ldlp::buf {

class PacketQueue {
 public:
  explicit PacketQueue(std::size_t max_packets = SIZE_MAX)
      : max_packets_(max_packets) {}

  PacketQueue(const PacketQueue&) = delete;
  PacketQueue& operator=(const PacketQueue&) = delete;

  ~PacketQueue() { clear(); }

  /// Returns false (and frees the packet) when the queue is full — a
  /// protocol stack sheds load by dropping, never by blocking the driver.
  [[nodiscard]] bool push(Packet pkt) {
    if (pkt.empty()) return false;  // nothing to queue
    if (size_ >= max_packets_) {
      ++drops_;
      return false;  // pkt destructor returns the chain to its pool
    }
    Mbuf* head = pkt.release();
    head->set_nextpkt(nullptr);
    if (tail_ != nullptr) {
      tail_->set_nextpkt(head);
    } else {
      head_ = head;
    }
    tail_ = head;
    ++size_;
    if (size_ > high_water_) high_water_ = size_;
    return true;
  }

  [[nodiscard]] Packet pop() {
    if (head_ == nullptr) return {};
    Mbuf* head = head_;
    head_ = head->nextpkt();
    if (head_ == nullptr) tail_ = nullptr;
    head->set_nextpkt(nullptr);
    --size_;
    return Packet(*head->pool(), head);
  }

  /// Head of the intrusive ring without transferring ownership — audits
  /// walk the queued chains via Mbuf::nextpkt while the queue still owns
  /// them (the mbuf-ownership invariant of check::HostAuditor).
  [[nodiscard]] const Mbuf* peek_head() const noexcept { return head_; }

  [[nodiscard]] bool empty() const noexcept { return head_ == nullptr; }
  [[nodiscard]] std::size_t size() const noexcept { return size_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return max_packets_; }
  [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }
  [[nodiscard]] std::size_t high_water() const noexcept { return high_water_; }

  void clear() noexcept {
    while (head_ != nullptr) {
      Mbuf* head = head_;
      head_ = head->nextpkt();
      head->set_nextpkt(nullptr);
      Packet dropped(*head->pool(), head);  // destructor frees the chain
    }
    tail_ = nullptr;
    size_ = 0;
  }

 private:
  Mbuf* head_ = nullptr;
  Mbuf* tail_ = nullptr;
  std::size_t size_ = 0;
  std::size_t max_packets_;
  std::size_t high_water_ = 0;
  std::uint64_t drops_ = 0;
};

}  // namespace ldlp::buf
