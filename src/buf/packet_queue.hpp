// Bounded FIFO of packets — the per-layer input queues of section 3.2 and
// the 500-packet receive buffer of section 4.
#pragma once

#include <cstdint>
#include <deque>

#include "buf/packet.hpp"

namespace ldlp::buf {

class PacketQueue {
 public:
  explicit PacketQueue(std::size_t max_packets = SIZE_MAX)
      : max_packets_(max_packets) {}

  /// Returns false (and frees the packet) when the queue is full — a
  /// protocol stack sheds load by dropping, never by blocking the driver.
  [[nodiscard]] bool push(Packet pkt) {
    if (queue_.size() >= max_packets_) {
      ++drops_;
      return false;  // pkt destructor returns the chain to its pool
    }
    queue_.push_back(std::move(pkt));
    if (queue_.size() > high_water_) high_water_ = queue_.size();
    return true;
  }

  [[nodiscard]] Packet pop() {
    if (queue_.empty()) return {};
    Packet pkt = std::move(queue_.front());
    queue_.pop_front();
    return pkt;
  }

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t size() const noexcept { return queue_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return max_packets_; }
  [[nodiscard]] std::uint64_t drops() const noexcept { return drops_; }
  [[nodiscard]] std::size_t high_water() const noexcept { return high_water_; }

  void clear() noexcept { queue_.clear(); }

 private:
  std::deque<Packet> queue_;
  std::size_t max_packets_;
  std::size_t high_water_ = 0;
  std::uint64_t drops_ = 0;
};

}  // namespace ldlp::buf
