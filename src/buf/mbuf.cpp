#include "buf/mbuf.hpp"

#include "common/assert.hpp"

namespace ldlp::buf {

std::uint8_t* Mbuf::buffer_start() noexcept {
  return has_cluster() ? cluster_->bytes : internal_;
}

std::uint8_t* Mbuf::buffer_end() noexcept {
  return buffer_start() + buffer_size();
}

std::uint8_t* Mbuf::grow_front(std::uint32_t n) noexcept {
  LDLP_DASSERT(leading_space() >= n);
  data_ -= n;
  len_ += n;
  return data_;
}

std::uint8_t* Mbuf::grow_back(std::uint32_t n) noexcept {
  LDLP_DASSERT(trailing_space() >= n);
  std::uint8_t* region = data_ + len_;
  len_ += n;
  return region;
}

void Mbuf::trim_front(std::uint32_t n) noexcept {
  LDLP_DASSERT(len_ >= n);
  data_ += n;
  len_ -= n;
}

void Mbuf::trim_back(std::uint32_t n) noexcept {
  LDLP_DASSERT(len_ >= n);
  len_ -= n;
}

void Mbuf::center_window() noexcept {
  LDLP_DASSERT(len_ == 0);
  data_ = buffer_start() + buffer_size() / 2;
}

}  // namespace ldlp::buf
