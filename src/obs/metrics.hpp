// ldlp::obs — unified metrics registry.
//
// The paper's whole argument is quantitative (cache misses per message,
// per-message cycles, queueing latency), so every subsystem reports through
// one registry instead of ad hoc stat structs printed ad hoc:
//
//   * Counter   — monotonic uint64 (messages, misses, drops, sheds);
//   * Gauge     — instantaneous double (queue depth, batch factor);
//   * Histogram — log-bucketed distribution with p50/p95/p99 (latencies).
//
// Hot-path discipline: metrics are registered once (a name lookup) and then
// held by reference; add()/set() are plain arithmetic, O(1), no allocation,
// no locking (each registry is owned by a single thread; ldlp::par gives
// every worker its own registry and merges them at the barrier).
//
// Registry::snapshot() freezes every metric into a value list ordered by
// (insertion, name): metrics registered directly appear in registration
// order, and metrics that arrived through merge() are appended name-sorted
// after them — so a snapshot of merged per-worker registries is identical
// no matter how the workers interleaved or which worker registered a name
// first. JSON and CSV emitters; the JSON schema ("ldlp.obs.v1") is locked
// by a golden-file test (tests/test_obs.cpp).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/histogram.hpp"
#include "obs/json.hpp"

namespace ldlp::obs {

class Counter {
 public:
  void add(std::uint64_t n = 1) noexcept { value_ += n; }
  /// Mirror an externally maintained total (bridge publishing).
  void set(std::uint64_t v) noexcept { value_ = v; }
  void reset() noexcept { value_ = 0; }
  [[nodiscard]] std::uint64_t value() const noexcept { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) noexcept { value_ = v; }
  void add(double v) noexcept { value_ += v; }
  void reset() noexcept { value_ = 0.0; }
  [[nodiscard]] double value() const noexcept { return value_; }

 private:
  double value_ = 0.0;
};

/// Log-scaled histogram wrapper: fixed O(1) bucket insert, percentile
/// queries with bounded relative error (see common/histogram.hpp). The
/// tail quantiles (p999/p9999) are what the tail-at-scale workloads gate
/// on: a fan-out request is as slow as its slowest reply, so the far tail
/// of this distribution is the user-visible latency.
class Histogram {
 public:
  Histogram(double lo, double hi, int per_decade)
      : hist_(lo, hi, per_decade) {}

  void add(double v) noexcept { hist_.add(v); }
  /// Fold another histogram's samples in (bucket layouts must match —
  /// register merged histograms with identical bounds).
  void merge(const Histogram& other) { hist_.merge(other.hist_); }
  void reset() noexcept { hist_.reset(); }

  [[nodiscard]] std::uint64_t count() const noexcept { return hist_.count(); }
  [[nodiscard]] double mean() const noexcept { return hist_.mean(); }
  [[nodiscard]] double max() const noexcept { return hist_.max_seen(); }
  [[nodiscard]] double quantile(double q) const noexcept {
    return hist_.quantile(q);
  }
  [[nodiscard]] double p50() const noexcept { return hist_.quantile(0.50); }
  [[nodiscard]] double p95() const noexcept { return hist_.quantile(0.95); }
  [[nodiscard]] double p99() const noexcept { return hist_.quantile(0.99); }
  [[nodiscard]] double p999() const noexcept {
    return hist_.quantile(0.999);
  }
  [[nodiscard]] double p9999() const noexcept {
    return hist_.quantile(0.9999);
  }

 private:
  LogHistogram hist_;
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

/// One frozen metric. For histograms the distribution summary fields are
/// populated and `value` holds the sample count.
struct SnapshotEntry {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  double value = 0.0;
  double mean = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p95 = 0.0;
  double p99 = 0.0;
  double p999 = 0.0;
  double p9999 = 0.0;
};

struct Snapshot {
  std::vector<SnapshotEntry> entries;  ///< (insertion, name) order.

  /// Lookup by exact name; nullptr when absent.
  [[nodiscard]] const SnapshotEntry* find(std::string_view name) const noexcept;
  /// Value of a counter/gauge (histogram: sample count); 0 when absent —
  /// use find() when absence must be distinguished.
  [[nodiscard]] double value(std::string_view name) const noexcept;

  [[nodiscard]] Json to_json() const;
  [[nodiscard]] std::string to_csv() const;
  static constexpr const char* kSchema = "ldlp.obs.v1";
};

class Registry {
 public:
  Registry() = default;
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  /// Find-or-create. References stay valid for the registry's lifetime.
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  /// Histogram bounds apply on first registration only (later calls with
  /// the same name return the existing instance unchanged).
  Histogram& histogram(std::string_view name, double lo = 1e-7,
                       double hi = 1e3, int per_decade = 20);

  [[nodiscard]] std::size_t size() const noexcept { return metrics_.size(); }

  /// Zero every metric (names stay registered).
  void reset();

  /// Forget every metric — outstanding references die with them. Used to
  /// recycle per-worker registries between parallel runs.
  void clear() noexcept {
    metrics_.clear();
    next_rank_ = 0;
  }

  /// Fold `other` into this registry (the ldlp::par barrier merge):
  /// counters sum, histograms pool their samples, gauges take the maximum
  /// — all three combiners are order-independent, so merging worker
  /// registries in any order yields the same values. Names not yet present
  /// are cloned in and snapshot after every directly-registered metric in
  /// name order (see the header comment on snapshot ordering), making the
  /// merged emission deterministic regardless of which worker happened to
  /// touch a name first.
  void merge(const Registry& other);

  [[nodiscard]] Snapshot snapshot() const;

 private:
  struct Metric {
    MetricKind kind;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    /// Snapshot rank: registration sequence for direct registrations,
    /// kMergedRank for metrics that arrived via merge() (which then order
    /// among themselves by name).
    std::uint64_t rank = 0;
  };

  static constexpr std::uint64_t kMergedRank = ~std::uint64_t{0};

  // std::map (ordered, < on string) keeps node references stable across
  // inserts; emission order is decided by Metric::rank at snapshot time.
  std::map<std::string, Metric, std::less<>> metrics_;
  std::uint64_t next_rank_ = 0;
};

}  // namespace ldlp::obs
