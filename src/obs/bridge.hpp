// Bridges: publish every subsystem's counters through one obs::Registry.
//
// Collection stays where it is cheap (the subsystems' own stat structs,
// incremented inline); publishing mirrors those totals into the registry
// under namespaced metric names, so one snapshot carries the whole stack —
// scheduler, caches, protocol layers, fault injector — in the common
// "ldlp.obs.v1" schema. Call a publisher right before snapshot(); calling
// it repeatedly is idempotent (counters are set, not accumulated).
//
// Naming convention: <prefix>.<subsystem>.<counter>, e.g.
//   a.graph.shed_entry        a.graph.layer.tcp.queue_depth
//   mem.icache.misses         mem.layer2.i_misses
//   a.dev.rx_drops            fault.frames_dropped
#pragma once

#include <string>
#include <string_view>

#include "obs/metrics.hpp"

namespace ldlp::core {
class StackGraph;
}
namespace ldlp::sim {
class MemorySystem;
}
namespace ldlp::fault {
class FaultInjector;
}
namespace ldlp::stack {
class Host;
class NetDevice;
}
namespace ldlp::net {
class Fabric;
}

namespace ldlp::obs {

/// Scheduler: graph-wide conservation counters (injected / shed_entry /
/// shed_depth / delivered_top / runs), per-run drain latency, and one
/// group per layer: enqueued / processed / drops / activations /
/// queue_depth / max_queue / mean_batch.
void publish_graph(Registry& registry, const core::StackGraph& graph,
                   std::string_view prefix = "graph");

/// Memory hierarchy: I/D hit+miss counters, stall cycles, and the
/// per-scope (per layer id) miss attribution as mem.layer<N>.{i,d}_misses.
void publish_memory(Registry& registry, const sim::MemorySystem& memory,
                    std::string_view prefix = "mem");

/// Fault injection: frames seen / dropped / corrupted / duplicated /
/// reordered / delayed, pool squeezes and the held-buffer peak.
void publish_fault(Registry& registry, const fault::FaultInjector& injector,
                   std::string_view prefix = "fault");

/// Network device: tx/rx frame+byte counters and both drop classes.
void publish_device(Registry& registry, const stack::NetDevice& device,
                    std::string_view prefix = "dev");

/// A whole host: device, ethernet (+ARP), IP, TCP, UDP and the scheduler
/// graph, all prefixed with the host's name (or `prefix` if non-empty).
void publish_host(Registry& registry, stack::Host& host,
                  std::string_view prefix = {});

/// The multi-host fabric: conservation totals (injected / delivered /
/// queue_drops / fault_drops / in_flight / residual), per-link
/// per-direction frame+drop counters with current and peak queue depth
/// (net.link<N>.<dir>.*), and per-switch forwarded/flooded counts keyed
/// by switch name.
void publish_fabric(Registry& registry, const net::Fabric& fabric,
                    std::string_view prefix = "net");

}  // namespace ldlp::obs
