#include "obs/metrics.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace ldlp::obs {
namespace {

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

std::string fmt(double v) {
  Json j(v);
  return j.dump();
}

}  // namespace

const SnapshotEntry* Snapshot::find(std::string_view name) const noexcept {
  const auto it = std::lower_bound(
      entries.begin(), entries.end(), name,
      [](const SnapshotEntry& e, std::string_view n) { return e.name < n; });
  if (it == entries.end() || it->name != name) return nullptr;
  return &*it;
}

double Snapshot::value(std::string_view name) const noexcept {
  const SnapshotEntry* e = find(name);
  return e != nullptr ? e->value : 0.0;
}

Json Snapshot::to_json() const {
  Json root = Json::object();
  root.set("schema", Json(kSchema));
  Json metrics = Json::array();
  for (const SnapshotEntry& e : entries) {
    Json m = Json::object();
    m.set("name", Json(e.name));
    m.set("type", Json(kind_name(e.kind)));
    if (e.kind == MetricKind::kCounter) {
      m.set("value", Json(static_cast<std::uint64_t>(e.value)));
    } else {
      m.set("value", Json(e.value));
    }
    if (e.kind == MetricKind::kHistogram) {
      m.set("mean", Json(e.mean));
      m.set("p50", Json(e.p50));
      m.set("p95", Json(e.p95));
      m.set("p99", Json(e.p99));
      m.set("max", Json(e.max));
    }
    metrics.push_back(std::move(m));
  }
  root.set("metrics", std::move(metrics));
  return root;
}

std::string Snapshot::to_csv() const {
  std::string out = "name,type,value,mean,p50,p95,p99,max\n";
  for (const SnapshotEntry& e : entries) {
    out += e.name;
    out += ',';
    out += kind_name(e.kind);
    out += ',';
    out += fmt(e.value);
    if (e.kind == MetricKind::kHistogram) {
      out += ',' + fmt(e.mean) + ',' + fmt(e.p50) + ',' + fmt(e.p95) + ',' +
             fmt(e.p99) + ',' + fmt(e.max);
    } else {
      out += ",,,,,";
    }
    out += '\n';
  }
  return out;
}

Counter& Registry::counter(std::string_view name) {
  const auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    LDLP_ASSERT_MSG(it->second.kind == MetricKind::kCounter,
                    "metric re-registered with a different kind");
    return *it->second.counter;
  }
  Metric m{MetricKind::kCounter, std::make_unique<Counter>(), nullptr, nullptr};
  return *metrics_.emplace(std::string(name), std::move(m))
              .first->second.counter;
}

Gauge& Registry::gauge(std::string_view name) {
  const auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    LDLP_ASSERT_MSG(it->second.kind == MetricKind::kGauge,
                    "metric re-registered with a different kind");
    return *it->second.gauge;
  }
  Metric m{MetricKind::kGauge, nullptr, std::make_unique<Gauge>(), nullptr};
  return *metrics_.emplace(std::string(name), std::move(m))
              .first->second.gauge;
}

Histogram& Registry::histogram(std::string_view name, double lo, double hi,
                               int per_decade) {
  const auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    LDLP_ASSERT_MSG(it->second.kind == MetricKind::kHistogram,
                    "metric re-registered with a different kind");
    return *it->second.histogram;
  }
  Metric m{MetricKind::kHistogram, nullptr, nullptr,
           std::make_unique<Histogram>(lo, hi, per_decade)};
  return *metrics_.emplace(std::string(name), std::move(m))
              .first->second.histogram;
}

void Registry::reset() {
  for (auto& [name, metric] : metrics_) {
    switch (metric.kind) {
      case MetricKind::kCounter: metric.counter->reset(); break;
      case MetricKind::kGauge: metric.gauge->reset(); break;
      case MetricKind::kHistogram: metric.histogram->reset(); break;
    }
  }
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  snap.entries.reserve(metrics_.size());
  for (const auto& [name, metric] : metrics_) {
    SnapshotEntry e;
    e.name = name;
    e.kind = metric.kind;
    switch (metric.kind) {
      case MetricKind::kCounter:
        e.value = static_cast<double>(metric.counter->value());
        break;
      case MetricKind::kGauge:
        e.value = metric.gauge->value();
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *metric.histogram;
        e.value = static_cast<double>(h.count());
        e.mean = h.mean();
        e.max = h.max();
        e.p50 = h.p50();
        e.p95 = h.p95();
        e.p99 = h.p99();
        break;
      }
    }
    snap.entries.push_back(std::move(e));
  }
  return snap;  // std::map iteration order is already name-sorted
}

}  // namespace ldlp::obs
