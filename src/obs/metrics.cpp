#include "obs/metrics.hpp"

#include <algorithm>

#include "common/assert.hpp"

namespace ldlp::obs {
namespace {

const char* kind_name(MetricKind kind) {
  switch (kind) {
    case MetricKind::kCounter: return "counter";
    case MetricKind::kGauge: return "gauge";
    case MetricKind::kHistogram: return "histogram";
  }
  return "?";
}

std::string fmt(double v) {
  Json j(v);
  return j.dump();
}

}  // namespace

const SnapshotEntry* Snapshot::find(std::string_view name) const noexcept {
  // Entries are (insertion, name)-ordered, not name-sorted: linear scan.
  // Snapshots are cold-path objects (report emission, assertions).
  for (const SnapshotEntry& e : entries) {
    if (e.name == name) return &e;
  }
  return nullptr;
}

double Snapshot::value(std::string_view name) const noexcept {
  const SnapshotEntry* e = find(name);
  return e != nullptr ? e->value : 0.0;
}

Json Snapshot::to_json() const {
  Json root = Json::object();
  root.set("schema", Json(kSchema));
  Json metrics = Json::array();
  for (const SnapshotEntry& e : entries) {
    Json m = Json::object();
    m.set("name", Json(e.name));
    m.set("type", Json(kind_name(e.kind)));
    if (e.kind == MetricKind::kCounter) {
      m.set("value", Json(static_cast<std::uint64_t>(e.value)));
    } else {
      m.set("value", Json(e.value));
    }
    if (e.kind == MetricKind::kHistogram) {
      m.set("mean", Json(e.mean));
      m.set("p50", Json(e.p50));
      m.set("p95", Json(e.p95));
      m.set("p99", Json(e.p99));
      m.set("p999", Json(e.p999));
      m.set("p9999", Json(e.p9999));
      m.set("max", Json(e.max));
    }
    metrics.push_back(std::move(m));
  }
  root.set("metrics", std::move(metrics));
  return root;
}

std::string Snapshot::to_csv() const {
  std::string out = "name,type,value,mean,p50,p95,p99,p999,p9999,max\n";
  for (const SnapshotEntry& e : entries) {
    out += e.name;
    out += ',';
    out += kind_name(e.kind);
    out += ',';
    out += fmt(e.value);
    if (e.kind == MetricKind::kHistogram) {
      out += ',' + fmt(e.mean) + ',' + fmt(e.p50) + ',' + fmt(e.p95) + ',' +
             fmt(e.p99) + ',' + fmt(e.p999) + ',' + fmt(e.p9999) + ',' +
             fmt(e.max);
    } else {
      out += ",,,,,,,";
    }
    out += '\n';
  }
  return out;
}

Counter& Registry::counter(std::string_view name) {
  const auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    LDLP_ASSERT_MSG(it->second.kind == MetricKind::kCounter,
                    "metric re-registered with a different kind");
    return *it->second.counter;
  }
  Metric m{MetricKind::kCounter, std::make_unique<Counter>(), nullptr, nullptr,
           next_rank_++};
  return *metrics_.emplace(std::string(name), std::move(m))
              .first->second.counter;
}

Gauge& Registry::gauge(std::string_view name) {
  const auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    LDLP_ASSERT_MSG(it->second.kind == MetricKind::kGauge,
                    "metric re-registered with a different kind");
    return *it->second.gauge;
  }
  Metric m{MetricKind::kGauge, nullptr, std::make_unique<Gauge>(), nullptr,
           next_rank_++};
  return *metrics_.emplace(std::string(name), std::move(m))
              .first->second.gauge;
}

Histogram& Registry::histogram(std::string_view name, double lo, double hi,
                               int per_decade) {
  const auto it = metrics_.find(name);
  if (it != metrics_.end()) {
    LDLP_ASSERT_MSG(it->second.kind == MetricKind::kHistogram,
                    "metric re-registered with a different kind");
    return *it->second.histogram;
  }
  Metric m{MetricKind::kHistogram, nullptr, nullptr,
           std::make_unique<Histogram>(lo, hi, per_decade), next_rank_++};
  return *metrics_.emplace(std::string(name), std::move(m))
              .first->second.histogram;
}

void Registry::merge(const Registry& other) {
  // std::map iteration is name-sorted, so names new to this registry are
  // created in name order; they all share kMergedRank, which keeps the
  // merged tail name-sorted in snapshots no matter how many merges
  // contribute to it or in which order they run.
  for (const auto& [name, theirs] : other.metrics_) {
    const auto it = metrics_.find(name);
    if (it == metrics_.end()) {
      Metric m{theirs.kind, nullptr, nullptr, nullptr, kMergedRank};
      switch (theirs.kind) {
        case MetricKind::kCounter:
          m.counter = std::make_unique<Counter>(*theirs.counter);
          break;
        case MetricKind::kGauge:
          m.gauge = std::make_unique<Gauge>(*theirs.gauge);
          break;
        case MetricKind::kHistogram:
          m.histogram = std::make_unique<Histogram>(*theirs.histogram);
          break;
      }
      metrics_.emplace(name, std::move(m));
      continue;
    }
    Metric& ours = it->second;
    LDLP_ASSERT_MSG(ours.kind == theirs.kind,
                    "merge: metric registered with a different kind");
    switch (ours.kind) {
      case MetricKind::kCounter:
        ours.counter->add(theirs.counter->value());
        break;
      case MetricKind::kGauge:
        // max() is the only order-independent combiner that makes sense
        // for instantaneous values (peak depth, peak batch factor).
        ours.gauge->set(std::max(ours.gauge->value(), theirs.gauge->value()));
        break;
      case MetricKind::kHistogram:
        ours.histogram->merge(*theirs.histogram);
        break;
    }
  }
}

void Registry::reset() {
  for (auto& [name, metric] : metrics_) {
    switch (metric.kind) {
      case MetricKind::kCounter: metric.counter->reset(); break;
      case MetricKind::kGauge: metric.gauge->reset(); break;
      case MetricKind::kHistogram: metric.histogram->reset(); break;
    }
  }
}

Snapshot Registry::snapshot() const {
  Snapshot snap;
  snap.entries.reserve(metrics_.size());
  std::vector<std::uint64_t> ranks;
  ranks.reserve(metrics_.size());
  for (const auto& [name, metric] : metrics_) {
    SnapshotEntry e;
    e.name = name;
    e.kind = metric.kind;
    switch (metric.kind) {
      case MetricKind::kCounter:
        e.value = static_cast<double>(metric.counter->value());
        break;
      case MetricKind::kGauge:
        e.value = metric.gauge->value();
        break;
      case MetricKind::kHistogram: {
        const Histogram& h = *metric.histogram;
        e.value = static_cast<double>(h.count());
        e.mean = h.mean();
        e.max = h.max();
        e.p50 = h.p50();
        e.p95 = h.p95();
        e.p99 = h.p99();
        e.p999 = h.p999();
        e.p9999 = h.p9999();
        break;
      }
    }
    ranks.push_back(metric.rank);
    snap.entries.push_back(std::move(e));
  }
  // Map iteration gave us name order; re-sort into (insertion, name).
  // Ranks are unique except for the shared merged rank, whose ties the
  // stable sort leaves in the map's name order.
  std::vector<std::size_t> idx(snap.entries.size());
  for (std::size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  std::stable_sort(idx.begin(), idx.end(), [&ranks](std::size_t a, std::size_t b) {
    return ranks[a] < ranks[b];
  });
  Snapshot ordered;
  ordered.entries.reserve(snap.entries.size());
  for (const std::size_t i : idx)
    ordered.entries.push_back(std::move(snap.entries[i]));
  return ordered;
}

}  // namespace ldlp::obs
