// Minimal JSON document model for the observability layer.
//
// Zero-dependency by design: the metrics registry, the BENCH_*.json bench
// emitters and the perf-regression gate all need to write *and read* the
// same schema, so the writer and parser live together and are tested as a
// round-trip pair (tests/test_obs.cpp). Objects preserve insertion order —
// the emitters insert keys in sorted metric order, so serialised output is
// byte-stable across runs and platforms (doubles are printed with
// std::to_chars shortest round-trip form).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace ldlp::obs {

class Json {
 public:
  enum class Type : std::uint8_t {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject
  };

  Json() = default;  // null
  explicit Json(bool b) : type_(Type::kBool), bool_(b) {}
  explicit Json(double n) : type_(Type::kNumber), num_(n) {}
  explicit Json(std::int64_t n)
      : type_(Type::kNumber), num_(static_cast<double>(n)), integral_(true) {}
  explicit Json(std::uint64_t n)
      : type_(Type::kNumber), num_(static_cast<double>(n)), integral_(true) {}
  explicit Json(std::string s) : type_(Type::kString), str_(std::move(s)) {}
  explicit Json(const char* s) : type_(Type::kString), str_(s) {}

  static Json array() {
    Json j;
    j.type_ = Type::kArray;
    return j;
  }
  static Json object() {
    Json j;
    j.type_ = Type::kObject;
    return j;
  }

  [[nodiscard]] Type type() const noexcept { return type_; }
  [[nodiscard]] bool is_object() const noexcept {
    return type_ == Type::kObject;
  }
  [[nodiscard]] bool is_array() const noexcept { return type_ == Type::kArray; }
  [[nodiscard]] bool is_number() const noexcept {
    return type_ == Type::kNumber;
  }
  [[nodiscard]] bool is_string() const noexcept {
    return type_ == Type::kString;
  }

  [[nodiscard]] bool as_bool() const noexcept { return bool_; }
  [[nodiscard]] double as_double() const noexcept { return num_; }
  [[nodiscard]] const std::string& as_string() const noexcept { return str_; }

  // -- array ---------------------------------------------------------------
  void push_back(Json value) { items_.push_back(std::move(value)); }
  [[nodiscard]] const std::vector<Json>& items() const noexcept {
    return items_;
  }

  // -- object (insertion-ordered) ------------------------------------------
  /// Set `key` (appends; replaces in place if the key already exists).
  void set(std::string_view key, Json value);
  /// Member lookup; nullptr when absent or not an object.
  [[nodiscard]] const Json* find(std::string_view key) const noexcept;
  [[nodiscard]] const std::vector<std::pair<std::string, Json>>& members()
      const noexcept {
    return members_;
  }

  /// Convenience typed getters for the schemas used in this repo.
  [[nodiscard]] std::optional<double> number_at(std::string_view key) const;
  [[nodiscard]] std::optional<std::string> string_at(std::string_view key) const;

  /// Serialise. indent == 0 emits a compact single line; indent > 0 pretty-
  /// prints with that many spaces per level. Key order is emission order.
  [[nodiscard]] std::string dump(int indent = 0) const;

  /// Parse a complete JSON document. On failure returns nullopt and, when
  /// `error` is non-null, stores a one-line diagnostic with the offset.
  static std::optional<Json> parse(std::string_view text,
                                   std::string* error = nullptr);

 private:
  void write(std::string& out, int indent, int depth) const;

  Type type_ = Type::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  bool integral_ = false;  ///< Emit without decimal point / exponent.
  std::string str_;
  std::vector<Json> items_;
  std::vector<std::pair<std::string, Json>> members_;
};

}  // namespace ldlp::obs
