// Machine-readable bench output ("ldlp.bench.v1") and the regression gate.
//
// Every bench binary reduces its run to a flat metric map and writes it as
// BENCH_<name>.json; the perf gate re-runs the fast deterministic benches
// and compares each metric against a checked-in baseline with a relative
// tolerance. One schema end to end means the gate, the golden tests and any
// external plotting scripts all read the same files.
//
//   {
//     "schema": "ldlp.bench.v1",
//     "name": "fig5_cache_misses",
//     "tolerance": 0.1,
//     "config": {"runs": "30", "seed": "24301"},
//     "metrics": {"conv.i_miss_per_msg@8000": 912.4, ...}
//   }
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "obs/json.hpp"

namespace ldlp::obs {

struct BenchResult {
  std::string name;
  /// Default relative tolerance used by compare() for every metric.
  double tolerance = 0.10;
  /// Free-form provenance (flag values, seeds); not compared.
  std::vector<std::pair<std::string, std::string>> config;
  /// Insertion-ordered; keys must be unique.
  std::vector<std::pair<std::string, double>> metrics;

  void set_config(std::string key, std::string value);
  void set_metric(std::string key, double value);
  [[nodiscard]] std::optional<double> metric(std::string_view key) const;

  [[nodiscard]] Json to_json() const;
  static std::optional<BenchResult> from_json(const Json& json,
                                              std::string* error = nullptr);

  /// Canonical file name: BENCH_<name>.json under `dir`.
  [[nodiscard]] std::string file_name() const { return "BENCH_" + name + ".json"; }
  /// Write (pretty-printed) into `dir`; returns false on I/O failure.
  bool write_file(const std::string& dir) const;
  static std::optional<BenchResult> load_file(const std::string& path,
                                              std::string* error = nullptr);

  static constexpr const char* kSchema = "ldlp.bench.v1";
};

/// Outcome of gating `current` against `baseline`.
struct CompareReport {
  struct Row {
    std::string key;
    double baseline = 0.0;
    double current = 0.0;
    double rel_delta = 0.0;  ///< (current - baseline) / max(|baseline|, eps).
    bool pass = true;
    bool missing = false;  ///< Metric present in baseline, absent in current.
  };
  std::vector<Row> rows;
  bool pass = true;

  /// Human-readable multi-line report (one row per metric).
  [[nodiscard]] std::string describe() const;
};

/// Compare every baseline metric against `current`. A metric fails when it
/// is missing from `current` or drifts beyond the relative tolerance
/// (baseline.tolerance unless `tolerance_override` >= 0). Near-zero
/// baselines fall back to an absolute tolerance of the same magnitude.
/// Metrics present only in `current` are additions, not failures — the
/// gate refuses regressions, not progress.
[[nodiscard]] CompareReport compare_results(const BenchResult& baseline,
                                            const BenchResult& current,
                                            double tolerance_override = -1.0);

}  // namespace ldlp::obs
