#include "obs/bridge.hpp"

#include "core/stack_graph.hpp"
#include "fault/injector.hpp"
#include "net/fabric.hpp"
#include "sim/memory_system.hpp"
#include "stack/host.hpp"
#include "stack/netdev.hpp"

namespace ldlp::obs {
namespace {

std::string join(std::string_view prefix, std::string_view name) {
  std::string out;
  out.reserve(prefix.size() + 1 + name.size());
  out.append(prefix);
  out += '.';
  out.append(name);
  return out;
}

void set_counter(Registry& registry, std::string name, std::uint64_t value) {
  registry.counter(name).set(value);
}

}  // namespace

void publish_graph(Registry& registry, const core::StackGraph& graph,
                   std::string_view prefix) {
  const core::GraphStats& gs = graph.graph_stats();
  set_counter(registry, join(prefix, "injected"), gs.injected);
  set_counter(registry, join(prefix, "shed_entry"), gs.shed_entry);
  set_counter(registry, join(prefix, "shed_depth"), gs.shed_depth);
  set_counter(registry, join(prefix, "delivered_top"), gs.delivered_top);
  set_counter(registry, join(prefix, "runs"), gs.runs);
  registry.gauge(join(prefix, "backlog"))
      .set(static_cast<double>(graph.backlog()));

  const RunningStats& drain = graph.drain_stats();
  registry.counter(join(prefix, "drain.count")).set(drain.count());
  registry.gauge(join(prefix, "drain.mean_sec")).set(drain.mean());
  registry.gauge(join(prefix, "drain.max_sec")).set(drain.max());

  for (core::LayerId id = 0; id < graph.layer_count(); ++id) {
    const core::Layer& layer = graph.layer(id);
    const core::LayerStats& ls = layer.stats();
    const std::string base = join(prefix, join("layer", layer.name()));
    set_counter(registry, join(base, "enqueued"), ls.enqueued);
    set_counter(registry, join(base, "processed"), ls.processed);
    set_counter(registry, join(base, "drops"), ls.drops);
    set_counter(registry, join(base, "activations"), ls.activations);
    registry.gauge(join(base, "queue_depth"))
        .set(static_cast<double>(layer.queue_len()));
    registry.gauge(join(base, "max_queue"))
        .set(static_cast<double>(ls.max_queue));
    registry.gauge(join(base, "mean_batch")).set(ls.mean_batch());
  }
}

void publish_memory(Registry& registry, const sim::MemorySystem& memory,
                    std::string_view prefix) {
  const sim::CacheStats& ic = memory.icache().stats();
  const sim::CacheStats& dc = memory.dcache().stats();
  set_counter(registry, join(prefix, "icache.hits"), ic.hits);
  set_counter(registry, join(prefix, "icache.misses"), ic.misses);
  set_counter(registry, join(prefix, "dcache.hits"), dc.hits);
  set_counter(registry, join(prefix, "dcache.misses"), dc.misses);
  set_counter(registry, join(prefix, "stall_cycles"),
              memory.total_stall_cycles());
  if (memory.l2() != nullptr) {
    set_counter(registry, join(prefix, "l2.hits"), memory.l2()->stats().hits);
    set_counter(registry, join(prefix, "l2.misses"),
                memory.l2()->stats().misses);
  }
  if (memory.tlb() != nullptr)
    set_counter(registry, join(prefix, "tlb.misses"), memory.tlb_misses());

  const auto& scopes = memory.scope_misses();
  for (std::size_t id = 0; id < scopes.size(); ++id) {
    const std::string base = join(prefix, "layer" + std::to_string(id));
    set_counter(registry, join(base, "i_misses"), scopes[id].i_misses);
    set_counter(registry, join(base, "d_misses"), scopes[id].d_misses);
  }
}

void publish_fault(Registry& registry, const fault::FaultInjector& injector,
                   std::string_view prefix) {
  const fault::FaultStats& fs = injector.stats();
  set_counter(registry, join(prefix, "frames_seen"), fs.frames_seen);
  set_counter(registry, join(prefix, "frames_dropped"), fs.dropped);
  set_counter(registry, join(prefix, "frames_corrupted"), fs.corrupted);
  set_counter(registry, join(prefix, "frames_duplicated"), fs.duplicated);
  set_counter(registry, join(prefix, "frames_reordered"), fs.reordered);
  set_counter(registry, join(prefix, "frames_delayed"), fs.delayed);
  set_counter(registry, join(prefix, "frames_burst_dropped"),
              fs.burst_dropped);
  set_counter(registry, join(prefix, "burst_entries"), fs.burst_entries);
  set_counter(registry, join(prefix, "pool_squeezes"), fs.pool_squeezes);
  set_counter(registry, join(prefix, "frames_partition_dropped"),
              fs.partition_dropped);
  set_counter(registry, join(prefix, "frames_flap_dropped"), fs.flap_dropped);
  set_counter(registry, join(prefix, "frames_restart_dropped"),
              fs.restart_dropped);
  set_counter(registry, join(prefix, "host_restarts"), fs.host_restarts);
  registry.gauge(join(prefix, "mbufs_held_peak"))
      .set(static_cast<double>(fs.mbufs_held_peak));
  registry.gauge(join(prefix, "delayed_pending"))
      .set(static_cast<double>(injector.delayed_pending()));
}

void publish_device(Registry& registry, const stack::NetDevice& device,
                    std::string_view prefix) {
  const stack::NetDeviceStats& ds = device.stats();
  set_counter(registry, join(prefix, "tx_frames"), ds.tx_frames);
  set_counter(registry, join(prefix, "tx_bytes"), ds.tx_bytes);
  set_counter(registry, join(prefix, "rx_frames"), ds.rx_frames);
  set_counter(registry, join(prefix, "rx_bytes"), ds.rx_bytes);
  set_counter(registry, join(prefix, "rx_drops"), ds.rx_drops);
  set_counter(registry, join(prefix, "tx_drops"), ds.tx_drops);
  registry.gauge(join(prefix, "rx_pending"))
      .set(static_cast<double>(device.rx_pending()));
}

void publish_host(Registry& registry, stack::Host& host,
                  std::string_view prefix) {
  const std::string p(prefix.empty() ? std::string_view(host.name()) : prefix);

  publish_device(registry, host.device(), join(p, "dev"));
  publish_graph(registry, host.graph(), join(p, "graph"));

  const stack::EthLayerStats& es = host.eth().eth_stats();
  set_counter(registry, join(p, "eth.rx_ip"), es.rx_ip);
  set_counter(registry, join(p, "eth.rx_arp"), es.rx_arp);
  set_counter(registry, join(p, "eth.rx_dropped"), es.rx_dropped);
  set_counter(registry, join(p, "eth.tx_frames"), es.tx_frames);
  set_counter(registry, join(p, "eth.tx_arp_held"), es.tx_arp_held);

  const stack::ArpCacheStats& as = host.eth().arp().stats();
  set_counter(registry, join(p, "arp.parked"), as.parked);
  set_counter(registry, join(p, "arp.park_drops"), as.park_drops);
  set_counter(registry, join(p, "arp.requests_allowed"), as.requests_allowed);
  set_counter(registry, join(p, "arp.requests_suppressed"),
              as.requests_suppressed);
  set_counter(registry, join(p, "arp.retries"), as.retries);
  set_counter(registry, join(p, "arp.resolve_failures"),
              as.resolve_failures);

  const stack::IpStats& is = host.ip().ip_stats();
  set_counter(registry, join(p, "ip.rx"), is.rx);
  set_counter(registry, join(p, "ip.rx_bad"), is.rx_bad);
  set_counter(registry, join(p, "ip.rx_not_mine"), is.rx_not_mine);
  set_counter(registry, join(p, "ip.rx_fragments"), is.rx_fragments);
  set_counter(registry, join(p, "ip.rx_reassembled"), is.rx_reassembled);
  set_counter(registry, join(p, "ip.rx_icmp_echo"), is.rx_icmp_echo);
  set_counter(registry, join(p, "ip.rx_igmp"), is.rx_igmp);
  set_counter(registry, join(p, "ip.rx_multicast"), is.rx_multicast);
  set_counter(registry, join(p, "ip.tx"), is.tx);
  set_counter(registry, join(p, "ip.tx_fragmented"), is.tx_fragmented);
  set_counter(registry, join(p, "ip.tx_no_route"), is.tx_no_route);

  const stack::TcpLayerStats& ts = host.tcp().tcp_stats();
  set_counter(registry, join(p, "tcp.segs_in"), ts.segs_in);
  set_counter(registry, join(p, "tcp.bad_checksum"), ts.bad_checksum);
  set_counter(registry, join(p, "tcp.bad_header"), ts.bad_header);
  set_counter(registry, join(p, "tcp.no_pcb"), ts.no_pcb);
  set_counter(registry, join(p, "tcp.pcb_cache_hits"), ts.pcb_cache_hits);
  set_counter(registry, join(p, "tcp.pcb_cache_misses"), ts.pcb_cache_misses);
  set_counter(registry, join(p, "tcp.rsts_sent"), ts.rsts_sent);
  set_counter(registry, join(p, "tcp.rsts_ignored"), ts.rsts_ignored);
  set_counter(registry, join(p, "tcp.time_wait_reuses"), ts.time_wait_reuses);
  set_counter(registry, join(p, "tcp.keepalive_drops"), ts.keepalive_drops);
  set_counter(registry, join(p, "tcp.conns_established"),
              ts.conns_established);
  set_counter(registry, join(p, "tcp.conns_reset"), ts.conns_reset);

  const stack::UdpStats& us = host.udp().udp_stats();
  set_counter(registry, join(p, "udp.rx"), us.rx);
  set_counter(registry, join(p, "udp.rx_bad"), us.rx_bad);
  set_counter(registry, join(p, "udp.rx_no_port"), us.rx_no_port);
  set_counter(registry, join(p, "udp.tx"), us.tx);

  const time::WheelStats& ws = host.wheel().stats();
  set_counter(registry, join(p, "time.arms"), ws.arms);
  set_counter(registry, join(p, "time.fires"), ws.fires);
  set_counter(registry, join(p, "time.cancels"), ws.cancels);
  set_counter(registry, join(p, "time.spurious_fires"), ws.spurious_fires);
  set_counter(registry, join(p, "time.shed"), ws.shed);
  set_counter(registry, join(p, "time.cascades"), ws.cascades);
  registry.gauge(join(p, "time.armed"))
      .set(static_cast<double>(host.wheel().armed_count()));
  registry.gauge(join(p, "time.max_armed"))
      .set(static_cast<double>(ws.max_armed));
}

void publish_fabric(Registry& registry, const net::Fabric& fabric,
                    std::string_view prefix) {
  const net::FabricTotals totals = fabric.totals();
  set_counter(registry, join(prefix, "injected"), totals.injected);
  set_counter(registry, join(prefix, "delivered"), totals.delivered);
  set_counter(registry, join(prefix, "queue_drops"), totals.queue_drops);
  set_counter(registry, join(prefix, "fault_drops"), totals.fault_drops);
  set_counter(registry, join(prefix, "suppressed_ticks"),
              fabric.suppressed_ticks());
  registry.gauge(join(prefix, "in_flight"))
      .set(static_cast<double>(totals.in_flight));
  registry.gauge(join(prefix, "conservation_residual"))
      .set(static_cast<double>(fabric.conservation_residual()));
  // Fleet-summed timer-wheel work: how much firing the fabric's hosts did
  // and how much the idle skip avoided (pairs with suppressed_ticks).
  time::WheelStats wheel_totals;
  std::size_t armed = 0;
  for (std::size_t i = 0; i < fabric.host_count(); ++i) {
    const time::WheelStats& s =
        fabric.host(static_cast<net::HostId>(i)).wheel().stats();
    wheel_totals.arms += s.arms;
    wheel_totals.fires += s.fires;
    wheel_totals.cancels += s.cancels;
    wheel_totals.spurious_fires += s.spurious_fires;
    wheel_totals.shed += s.shed;
    wheel_totals.cascades += s.cascades;
    armed += fabric.host(static_cast<net::HostId>(i)).wheel().armed_count();
  }
  set_counter(registry, join(prefix, "time.arms"), wheel_totals.arms);
  set_counter(registry, join(prefix, "time.fires"), wheel_totals.fires);
  set_counter(registry, join(prefix, "time.cancels"), wheel_totals.cancels);
  set_counter(registry, join(prefix, "time.spurious_fires"),
              wheel_totals.spurious_fires);
  set_counter(registry, join(prefix, "time.shed"), wheel_totals.shed);
  set_counter(registry, join(prefix, "time.cascades"),
              wheel_totals.cascades);
  registry.gauge(join(prefix, "time.armed"))
      .set(static_cast<double>(armed));
  for (net::LinkId id = 0; id < fabric.link_count(); ++id) {
    const std::string base = join(prefix, "link" + std::to_string(id));
    for (int dir = 0; dir < 2; ++dir) {
      const net::LinkDirStats& s = fabric.link_stats(id, dir);
      const std::string d = join(base, dir == 0 ? "ab" : "ba");
      set_counter(registry, join(d, "frames_in"), s.frames_in);
      set_counter(registry, join(d, "frames_out"), s.frames_out);
      set_counter(registry, join(d, "queue_drops"), s.queue_drops);
      set_counter(registry, join(d, "fault_drops"), s.fault_drops);
      registry.gauge(join(d, "queue_depth"))
          .set(static_cast<double>(s.in_flight));
      registry.gauge(join(d, "queue_depth_peak"))
          .set(static_cast<double>(s.max_in_flight));
    }
  }
  for (net::SwitchId id = 0; id < fabric.switch_count(); ++id) {
    const net::SwitchStats& s = fabric.switch_stats(id);
    const std::string base = join(prefix, fabric.switch_name(id));
    set_counter(registry, join(base, "forwarded"), s.forwarded);
    set_counter(registry, join(base, "flooded"), s.flooded);
  }
}

}  // namespace ldlp::obs
