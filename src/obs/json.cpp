#include "obs/json.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace ldlp::obs {
namespace {

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void append_number(std::string& out, double v, bool integral) {
  if (!std::isfinite(v)) {  // JSON has no Inf/NaN; emit null.
    out += "null";
    return;
  }
  char buf[32];
  if (integral || (v == std::floor(v) && std::fabs(v) < 1e15)) {
    const auto n = static_cast<long long>(v);
    const auto [p, ec] = std::to_chars(buf, buf + sizeof buf, n);
    out.append(buf, p);
    return;
  }
  // Shortest representation that round-trips the exact double.
  const auto [p, ec] = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, p);
}

struct Parser {
  std::string_view text;
  std::size_t pos = 0;
  std::string error;

  [[nodiscard]] bool fail(const std::string& what) {
    if (error.empty())
      error = what + " at offset " + std::to_string(pos);
    return false;
  }

  void skip_ws() {
    while (pos < text.size() &&
           (text[pos] == ' ' || text[pos] == '\t' || text[pos] == '\n' ||
            text[pos] == '\r'))
      ++pos;
  }

  [[nodiscard]] bool consume(char c) {
    skip_ws();
    if (pos >= text.size() || text[pos] != c)
      return fail(std::string("expected '") + c + "'");
    ++pos;
    return true;
  }

  bool parse_string(std::string& out) {
    if (!consume('"')) return false;
    while (pos < text.size()) {
      const char c = text[pos++];
      if (c == '"') return true;
      if (c == '\\') {
        if (pos >= text.size()) return fail("bad escape");
        const char e = text[pos++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos + 4 > text.size()) return fail("bad \\u escape");
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              const char h = text[pos++];
              code <<= 4;
              if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
              else if (h >= 'a' && h <= 'f')
                code |= static_cast<unsigned>(h - 'a' + 10);
              else if (h >= 'A' && h <= 'F')
                code |= static_cast<unsigned>(h - 'A' + 10);
              else
                return fail("bad \\u escape");
            }
            // The metrics schema is ASCII; encode BMP points as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default: return fail("bad escape");
        }
      } else {
        out += c;
      }
    }
    return fail("unterminated string");
  }

  bool parse_value(Json& out) {
    skip_ws();
    if (pos >= text.size()) return fail("unexpected end of input");
    const char c = text[pos];
    if (c == '{') {
      ++pos;
      out = Json::object();
      skip_ws();
      if (pos < text.size() && text[pos] == '}') {
        ++pos;
        return true;
      }
      for (;;) {
        std::string key;
        if (!parse_string(key)) return false;
        if (!consume(':')) return false;
        Json value;
        if (!parse_value(value)) return false;
        out.set(key, std::move(value));
        skip_ws();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          skip_ws();
          continue;
        }
        return consume('}');
      }
    }
    if (c == '[') {
      ++pos;
      out = Json::array();
      skip_ws();
      if (pos < text.size() && text[pos] == ']') {
        ++pos;
        return true;
      }
      for (;;) {
        Json value;
        if (!parse_value(value)) return false;
        out.push_back(std::move(value));
        skip_ws();
        if (pos < text.size() && text[pos] == ',') {
          ++pos;
          continue;
        }
        return consume(']');
      }
    }
    if (c == '"') {
      std::string s;
      if (!parse_string(s)) return false;
      out = Json(std::move(s));
      return true;
    }
    if (text.compare(pos, 4, "true") == 0) {
      pos += 4;
      out = Json(true);
      return true;
    }
    if (text.compare(pos, 5, "false") == 0) {
      pos += 5;
      out = Json(false);
      return true;
    }
    if (text.compare(pos, 4, "null") == 0) {
      pos += 4;
      out = Json();
      return true;
    }
    // Number.
    double value = 0.0;
    const char* begin = text.data() + pos;
    const char* end = text.data() + text.size();
    const auto [p, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || p == begin) return fail("bad number");
    pos = static_cast<std::size_t>(p - text.data());
    out = Json(value);
    return true;
  }
};

}  // namespace

void Json::set(std::string_view key, Json value) {
  for (auto& [k, v] : members_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  members_.emplace_back(std::string(key), std::move(value));
}

const Json* Json::find(std::string_view key) const noexcept {
  for (const auto& [k, v] : members_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::optional<double> Json::number_at(std::string_view key) const {
  const Json* v = find(key);
  if (v == nullptr || !v->is_number()) return std::nullopt;
  return v->as_double();
}

std::optional<std::string> Json::string_at(std::string_view key) const {
  const Json* v = find(key);
  if (v == nullptr || !v->is_string()) return std::nullopt;
  return v->as_string();
}

void Json::write(std::string& out, int indent, int depth) const {
  const auto newline_pad = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<std::size_t>(indent * d), ' ');
  };
  switch (type_) {
    case Type::kNull: out += "null"; break;
    case Type::kBool: out += bool_ ? "true" : "false"; break;
    case Type::kNumber: append_number(out, num_, integral_); break;
    case Type::kString: append_escaped(out, str_); break;
    case Type::kArray: {
      if (items_.empty()) {
        out += "[]";
        break;
      }
      out += '[';
      for (std::size_t i = 0; i < items_.size(); ++i) {
        if (i != 0) out += indent > 0 ? "," : ", ";
        newline_pad(depth + 1);
        items_[i].write(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += ']';
      break;
    }
    case Type::kObject: {
      if (members_.empty()) {
        out += "{}";
        break;
      }
      out += '{';
      for (std::size_t i = 0; i < members_.size(); ++i) {
        if (i != 0) out += indent > 0 ? "," : ", ";
        newline_pad(depth + 1);
        append_escaped(out, members_[i].first);
        out += ": ";
        members_[i].second.write(out, indent, depth + 1);
      }
      newline_pad(depth);
      out += '}';
      break;
    }
  }
}

std::string Json::dump(int indent) const {
  std::string out;
  write(out, indent, 0);
  return out;
}

std::optional<Json> Json::parse(std::string_view text, std::string* error) {
  Parser parser{text};
  Json out;
  if (!parser.parse_value(out)) {
    if (error != nullptr) *error = parser.error;
    return std::nullopt;
  }
  parser.skip_ws();
  if (parser.pos != text.size()) {
    if (error != nullptr)
      *error = "trailing garbage at offset " + std::to_string(parser.pos);
    return std::nullopt;
  }
  return out;
}

}  // namespace ldlp::obs
