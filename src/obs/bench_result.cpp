#include "obs/bench_result.hpp"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace ldlp::obs {

void BenchResult::set_config(std::string key, std::string value) {
  for (auto& [k, v] : config) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  config.emplace_back(std::move(key), std::move(value));
}

void BenchResult::set_metric(std::string key, double value) {
  for (auto& [k, v] : metrics) {
    if (k == key) {
      v = value;
      return;
    }
  }
  metrics.emplace_back(std::move(key), value);
}

std::optional<double> BenchResult::metric(std::string_view key) const {
  for (const auto& [k, v] : metrics) {
    if (k == key) return v;
  }
  return std::nullopt;
}

Json BenchResult::to_json() const {
  Json root = Json::object();
  root.set("schema", Json(kSchema));
  root.set("name", Json(name));
  root.set("tolerance", Json(tolerance));
  Json cfg = Json::object();
  for (const auto& [k, v] : config) cfg.set(k, Json(v));
  root.set("config", std::move(cfg));
  Json met = Json::object();
  for (const auto& [k, v] : metrics) met.set(k, Json(v));
  root.set("metrics", std::move(met));
  return root;
}

std::optional<BenchResult> BenchResult::from_json(const Json& json,
                                                 std::string* error) {
  const auto fail = [&](const char* what) -> std::optional<BenchResult> {
    if (error != nullptr) *error = what;
    return std::nullopt;
  };
  if (!json.is_object()) return fail("not a JSON object");
  const auto schema = json.string_at("schema");
  if (!schema.has_value() || *schema != kSchema)
    return fail("missing or unknown schema (want ldlp.bench.v1)");
  const auto name = json.string_at("name");
  if (!name.has_value() || name->empty()) return fail("missing name");

  BenchResult out;
  out.name = *name;
  out.tolerance = json.number_at("tolerance").value_or(0.10);
  if (const Json* cfg = json.find("config"); cfg != nullptr && cfg->is_object())
    for (const auto& [k, v] : cfg->members())
      out.config.emplace_back(k, v.is_string() ? v.as_string() : v.dump());
  const Json* met = json.find("metrics");
  if (met == nullptr || !met->is_object()) return fail("missing metrics object");
  for (const auto& [k, v] : met->members()) {
    if (!v.is_number()) return fail("non-numeric metric value");
    out.metrics.emplace_back(k, v.as_double());
  }
  return out;
}

bool BenchResult::write_file(const std::string& dir) const {
  const std::string path =
      (dir.empty() || dir == ".") ? file_name() : dir + "/" + file_name();
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  out << to_json().dump(2) << '\n';
  return static_cast<bool>(out);
}

std::optional<BenchResult> BenchResult::load_file(const std::string& path,
                                                 std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  const auto json = Json::parse(buffer.str(), error);
  if (!json.has_value()) return std::nullopt;
  return from_json(*json, error);
}

std::string CompareReport::describe() const {
  std::string out;
  char line[256];
  for (const Row& row : rows) {
    if (row.missing) {
      std::snprintf(line, sizeof line, "  %-44s MISSING (baseline %.6g)\n",
                    row.key.c_str(), row.baseline);
    } else {
      std::snprintf(line, sizeof line,
                    "  %-44s base %12.6g  cur %12.6g  (%+.2f%%) %s\n",
                    row.key.c_str(), row.baseline, row.current,
                    row.rel_delta * 100.0, row.pass ? "ok" : "FAIL");
    }
    out += line;
  }
  return out;
}

CompareReport compare_results(const BenchResult& baseline,
                              const BenchResult& current,
                              double tolerance_override) {
  const double tol =
      tolerance_override >= 0.0 ? tolerance_override : baseline.tolerance;
  CompareReport report;
  for (const auto& [key, base] : baseline.metrics) {
    CompareReport::Row row;
    row.key = key;
    row.baseline = base;
    const auto cur = current.metric(key);
    if (!cur.has_value()) {
      row.missing = true;
      row.pass = false;
    } else {
      row.current = *cur;
      // Near-zero baselines (drop counts of 0, etc.) cannot take a
      // relative tolerance; use `tol` itself as the absolute allowance.
      const double scale = std::max(std::fabs(base), 1.0);
      row.rel_delta = (*cur - base) / scale;
      row.pass = std::fabs(*cur - base) <= tol * scale;
    }
    report.pass = report.pass && row.pass;
    report.rows.push_back(std::move(row));
  }
  return report;
}

}  // namespace ldlp::obs
