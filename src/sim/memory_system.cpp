#include "sim/memory_system.hpp"

#include <bit>

#include "common/assert.hpp"

namespace ldlp::sim {

MemorySystem::MemorySystem(MemoryConfig cfg) : cfg_(cfg) {
  contexts_.push_back(Context{Cache(cfg_.icache), Cache(cfg_.dcache)});
  if (cfg_.l2.has_value()) l2_ = std::make_unique<Cache>(*cfg_.l2);
  if (cfg_.tlb_enabled) {
    LDLP_ASSERT(std::has_single_bit(cfg_.tlb_page_bytes) &&
                std::has_single_bit(cfg_.tlb_entries));
    // Fully associative page cache: one set, `tlb_entries` ways.
    tlb_ = std::make_unique<Cache>(CacheConfig{
        cfg_.tlb_page_bytes * cfg_.tlb_entries, cfg_.tlb_page_bytes,
        cfg_.tlb_entries});
  }
}

void MemorySystem::set_context_count(std::size_t n) {
  LDLP_ASSERT_MSG(n >= 1, "the memory system needs at least one context");
  contexts_.clear();
  contexts_.reserve(n);
  for (std::size_t i = 0; i < n; ++i)
    contexts_.push_back(Context{Cache(cfg_.icache), Cache(cfg_.dcache)});
  cur_ = 0;
}

std::uint64_t MemorySystem::access(Access kind, std::uint64_t addr,
                                   std::uint64_t len) noexcept {
  if (len == 0) return 0;
  Cache& target = (kind == Access::kIFetch) ? icache() : dcache();
  std::uint64_t stall = 0;

  if (tlb_ != nullptr) {
    const std::uint64_t first_page = addr / cfg_.tlb_page_bytes;
    const std::uint64_t last_page = (addr + len - 1) / cfg_.tlb_page_bytes;
    for (std::uint64_t page = first_page; page <= last_page; ++page) {
      if (!tlb_->access(page * cfg_.tlb_page_bytes))
        stall += cfg_.tlb_miss_cycles;
    }
  }

  const std::uint32_t line = target.config().line_bytes;
  const std::uint64_t first = addr / line;
  const std::uint64_t last = (addr + len - 1) / line;
  std::uint64_t misses = 0;
  for (std::uint64_t ln = first; ln <= last; ++ln) {
    const std::uint64_t line_addr = ln * line;
    if (target.access(line_addr)) continue;
    ++misses;
    if (l2_ != nullptr) {
      stall += l2_->access(line_addr) ? cfg_.l2_hit_cycles
                                      : cfg_.miss_penalty_cycles;
    } else {
      stall += cfg_.miss_penalty_cycles;
    }
  }
  if (scope_ != kNoScope && misses != 0) {
    if (scope_ >= scope_misses_.size()) scope_misses_.resize(scope_ + 1);
    if (kind == Access::kIFetch) {
      scope_misses_[scope_].i_misses += misses;
    } else {
      scope_misses_[scope_].d_misses += misses;
    }
  }
  stall_cycles_ += stall;
  return stall;
}

void MemorySystem::flush() noexcept {
  for (Context& ctx : contexts_) {
    ctx.icache.flush();
    if (!cfg_.unified) ctx.dcache.flush();
  }
  if (l2_ != nullptr) l2_->flush();
  if (tlb_ != nullptr) tlb_->flush();
}

void MemorySystem::reset_stats() noexcept {
  for (Context& ctx : contexts_) {
    ctx.icache.reset_stats();
    if (!cfg_.unified) ctx.dcache.reset_stats();
  }
  if (l2_ != nullptr) l2_->reset_stats();
  if (tlb_ != nullptr) tlb_->reset_stats();
  stall_cycles_ = 0;
  scope_misses_.clear();
}

}  // namespace ldlp::sim
