#include "sim/cpu_model.hpp"

// CpuModel is header-only today; this translation unit anchors the library
// and will hold out-of-line definitions if the model grows (e.g. TLB or
// second-level cache charging).
