// Cycle-accounting CPU model.
//
// The paper's synthetic machine: a single-issue processor at a configurable
// clock rate whose only stalls are primary-cache misses. Instruction
// execution is charged as cycles directly (the synthetic layers specify
// cycles per message); instruction *fetch* is charged through the I-cache.
#pragma once

#include <cstdint>

#include "sim/memory_system.hpp"

namespace ldlp::sim {

struct CpuConfig {
  double clock_hz = 100e6;  ///< Paper section 4 uses 100 MHz.
  MemoryConfig memory{};
};

class CpuModel {
 public:
  explicit CpuModel(CpuConfig cfg) : cfg_(cfg), memory_(cfg.memory) {}

  [[nodiscard]] const CpuConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] MemorySystem& memory() noexcept { return memory_; }
  [[nodiscard]] const MemorySystem& memory() const noexcept { return memory_; }

  /// Charge pure execution cycles (no memory traffic).
  void execute(std::uint64_t cycles) noexcept { busy_cycles_ += cycles; }

  /// Fetch `len` bytes of instructions at `addr`; charges I-cache stalls.
  void ifetch(std::uint64_t addr, std::uint64_t len) noexcept {
    busy_cycles_ += memory_.access(Access::kIFetch, addr, len);
  }

  /// Data read/write of `len` bytes at `addr`; charges D-cache stalls.
  void read(std::uint64_t addr, std::uint64_t len) noexcept {
    busy_cycles_ += memory_.access(Access::kRead, addr, len);
  }
  void write(std::uint64_t addr, std::uint64_t len) noexcept {
    busy_cycles_ += memory_.access(Access::kWrite, addr, len);
  }

  [[nodiscard]] std::uint64_t busy_cycles() const noexcept {
    return busy_cycles_;
  }

  /// Wall-clock seconds corresponding to `cycles` at this clock rate.
  [[nodiscard]] double seconds(std::uint64_t cycles) const noexcept {
    return static_cast<double>(cycles) / cfg_.clock_hz;
  }
  [[nodiscard]] double busy_seconds() const noexcept {
    return seconds(busy_cycles_);
  }

  void reset() noexcept {
    busy_cycles_ = 0;
    memory_.flush();
    memory_.reset_stats();
  }

 private:
  CpuConfig cfg_;
  MemorySystem memory_;
  std::uint64_t busy_cycles_ = 0;
};

}  // namespace ldlp::sim
