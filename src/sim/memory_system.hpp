// Split (or unified) primary cache pair with miss penalties, plus two
// optional hierarchy levels the paper's own measurement could not cover:
//
//  * a unified second-level cache ("some processors can prefetch
//    instructions from the second level cache... ultimately the execution
//    rate is bounded by the second level cache bandwidth", §4) — a
//    primary miss that hits in L2 stalls for l2_hit_cycles instead of the
//    full memory penalty;
//  * a TLB ("both these sets of results miss some contributions... such
//    as managing the translation lookaside buffer", §2.2) — modelled as a
//    fully-associative page cache whose misses add tlb_miss_cycles.
//
// Both are off by default so the baseline machine is exactly the paper's:
// every primary-cache read miss stalls for a fixed 20 cycles. Write misses
// allocate (write-allocate) and stall like reads — the paper's model does
// not distinguish, and for its protocol workloads writes are a minority.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "sim/cache.hpp"

namespace ldlp::sim {

enum class Access : std::uint8_t { kIFetch, kRead, kWrite };

struct MemoryConfig {
  CacheConfig icache{};               ///< 8 KB / 32 B / direct-mapped default.
  CacheConfig dcache{};
  std::uint32_t miss_penalty_cycles = 20;
  bool unified = false;               ///< If true, only icache is used.

  /// Optional unified L2: e.g. {512*1024, 32, 1} for a DEC 3000/400-like
  /// board cache. L1 misses that hit here cost l2_hit_cycles.
  std::optional<CacheConfig> l2{};
  std::uint32_t l2_hit_cycles = 6;

  /// Optional TLB (fully associative over pages).
  bool tlb_enabled = false;
  std::uint32_t tlb_entries = 32;
  std::uint32_t tlb_page_bytes = 8192;  ///< Alpha page size.
  std::uint32_t tlb_miss_cycles = 30;   ///< PAL-code refill estimate.
};

/// Primary-cache misses attributed to one scope id (see set_scope).
struct ScopeMisses {
  std::uint64_t i_misses = 0;
  std::uint64_t d_misses = 0;
};

class MemorySystem {
 public:
  static constexpr std::uint32_t kNoScope = ~std::uint32_t{0};

  explicit MemorySystem(MemoryConfig cfg);

  [[nodiscard]] const MemoryConfig& config() const noexcept { return cfg_; }

  /// Model `n` execution contexts (cores): each context gets its own
  /// private primary cache pair built from the configured geometry, while
  /// L2 and the TLB stay shared — the sharding machine of ldlp::par.
  /// Rebuilds the primary level cold with fresh statistics; existing
  /// references from icache()/dcache() are invalidated. Default is 1.
  void set_context_count(std::size_t n);
  [[nodiscard]] std::size_t context_count() const noexcept {
    return contexts_.size();
  }

  /// Route subsequent accesses through context `ctx`'s primary caches.
  void set_context(std::size_t ctx) noexcept { cur_ = ctx; }
  [[nodiscard]] std::size_t context() const noexcept { return cur_; }

  /// Per-context primary caches (read-only; for miss accounting).
  [[nodiscard]] const Cache& icache_of(std::size_t ctx) const noexcept {
    return contexts_[ctx].icache;
  }
  [[nodiscard]] const Cache& dcache_of(std::size_t ctx) const noexcept {
    return cfg_.unified ? contexts_[ctx].icache : contexts_[ctx].dcache;
  }

  /// Touch [addr, addr+len); returns the stall cycles incurred.
  std::uint64_t access(Access kind, std::uint64_t addr,
                       std::uint64_t len) noexcept;

  /// Attribute subsequent primary-cache misses to `scope` (a layer id in
  /// the synthetic stack; any small dense id space works). kNoScope
  /// disables attribution. O(1) on the access path: one indexed add.
  void set_scope(std::uint32_t scope) noexcept { scope_ = scope; }
  [[nodiscard]] std::uint32_t scope() const noexcept { return scope_; }

  /// Per-scope miss totals, indexed by scope id (grown on demand).
  [[nodiscard]] const std::vector<ScopeMisses>& scope_misses() const noexcept {
    return scope_misses_;
  }

  /// Current context's primary caches (context 0 unless set_context ran —
  /// i.e. exactly the historical single-cache behaviour).
  [[nodiscard]] Cache& icache() noexcept { return contexts_[cur_].icache; }
  [[nodiscard]] Cache& dcache() noexcept {
    return cfg_.unified ? contexts_[cur_].icache : contexts_[cur_].dcache;
  }
  [[nodiscard]] const Cache& icache() const noexcept {
    return contexts_[cur_].icache;
  }
  [[nodiscard]] const Cache& dcache() const noexcept {
    return cfg_.unified ? contexts_[cur_].icache : contexts_[cur_].dcache;
  }

  [[nodiscard]] std::uint64_t total_stall_cycles() const noexcept {
    return stall_cycles_;
  }

  [[nodiscard]] const Cache* l2() const noexcept { return l2_.get(); }
  [[nodiscard]] const Cache* tlb() const noexcept { return tlb_.get(); }
  [[nodiscard]] std::uint64_t tlb_misses() const noexcept {
    return tlb_ != nullptr ? tlb_->stats().misses : 0;
  }

  /// Cold-start the whole hierarchy (keeps statistics).
  void flush() noexcept;
  void reset_stats() noexcept;

 private:
  /// One context = one private primary cache pair (dcache unused when the
  /// config says unified).
  struct Context {
    Cache icache;
    Cache dcache;
  };

  MemoryConfig cfg_;
  std::vector<Context> contexts_;
  std::size_t cur_ = 0;
  std::unique_ptr<Cache> l2_;
  std::unique_ptr<Cache> tlb_;
  std::uint64_t stall_cycles_ = 0;
  std::uint32_t scope_ = kNoScope;
  std::vector<ScopeMisses> scope_misses_;
};

}  // namespace ldlp::sim
