#include "sim/address_space.hpp"

#include <utility>

#include "common/assert.hpp"

namespace ldlp::sim {

AddressSpace::AddressSpace(std::uint64_t span_bytes, std::uint64_t align)
    : span_(span_bytes), align_(align) {
  LDLP_ASSERT(span_bytes > 0 && align > 0);
}

bool AddressSpace::collides(const Region& candidate) const noexcept {
  for (const auto& r : regions_) {
    if (r.overlaps(candidate)) return true;
  }
  return false;
}

Region AddressSpace::allocate(std::string name, std::uint64_t size, Rng& rng) {
  LDLP_ASSERT(size > 0 && size <= span_);
  const std::uint64_t slots = (span_ - size) / align_ + 1;
  for (int attempt = 0; attempt < 4096; ++attempt) {
    Region candidate{std::move(name), rng.bounded(slots) * align_, size};
    if (!collides(candidate)) {
      regions_.push_back(candidate);
      return candidate;
    }
    name = std::move(candidate.name);  // reuse for next attempt
  }
  LDLP_ASSERT_MSG(false, "address space too crowded for random placement");
  return {};
}

Region AddressSpace::allocate_sequential(std::string name,
                                         std::uint64_t size) {
  LDLP_ASSERT(size > 0 && size <= span_);
  std::uint64_t base = 0;
  for (;;) {
    Region candidate{name, base, size};
    if (!collides(candidate)) {
      candidate.name = std::move(name);
      regions_.push_back(candidate);
      return regions_.back();
    }
    // Jump past the earliest region that blocked us.
    std::uint64_t next = base + align_;
    for (const auto& r : regions_) {
      if (r.overlaps(candidate)) next = std::max(next, r.end());
    }
    base = (next + align_ - 1) / align_ * align_;
    LDLP_ASSERT_MSG(base + size <= span_, "address space exhausted");
  }
}

}  // namespace ldlp::sim
