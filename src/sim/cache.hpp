// Set-associative cache model.
//
// The paper's results (section 4) are produced on a synthetic machine with
// 8 KB direct-mapped primary instruction and data caches, 32-byte lines and
// a 20-cycle read-miss stall. This class models exactly that — a tag array
// with true-LRU replacement within a set (direct-mapped when ways == 1) —
// and nothing more: no write buffers, no prefetch, no hierarchy below. A
// miss is a miss; the penalty is applied by MemorySystem/CpuModel.
#pragma once

#include <cstdint>
#include <vector>

namespace ldlp::sim {

struct CacheConfig {
  std::uint32_t size_bytes = 8 * 1024;
  std::uint32_t line_bytes = 32;
  std::uint32_t ways = 1;  ///< 1 = direct-mapped.

  [[nodiscard]] std::uint32_t num_lines() const noexcept {
    return size_bytes / line_bytes;
  }
  [[nodiscard]] std::uint32_t num_sets() const noexcept {
    return num_lines() / ways;
  }
  /// All three fields must be powers of two and consistent.
  [[nodiscard]] bool valid() const noexcept;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;

  [[nodiscard]] std::uint64_t accesses() const noexcept {
    return hits + misses;
  }
  [[nodiscard]] double miss_rate() const noexcept {
    const auto n = accesses();
    return n != 0 ? static_cast<double>(misses) / static_cast<double>(n) : 0.0;
  }
};

class Cache {
 public:
  explicit Cache(CacheConfig cfg);

  [[nodiscard]] const CacheConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const CacheStats& stats() const noexcept { return stats_; }

  /// Touch the line containing `addr`. Returns true on hit. A miss fills
  /// the line (evicting LRU) so a subsequent access hits.
  bool access(std::uint64_t addr) noexcept;

  /// Touch every line overlapping [addr, addr+len). Returns miss count.
  std::uint32_t access_range(std::uint64_t addr, std::uint64_t len) noexcept;

  /// Is the line containing `addr` currently resident? Does not update LRU
  /// or statistics.
  [[nodiscard]] bool contains(std::uint64_t addr) const noexcept;

  /// Invalidate all lines (cold cache). Statistics are preserved.
  void flush() noexcept;

  void reset_stats() noexcept { stats_ = {}; }

  /// Number of currently valid lines.
  [[nodiscard]] std::uint32_t resident_lines() const noexcept;

 private:
  struct Way {
    std::uint64_t tag = 0;
    std::uint32_t lru = 0;  ///< Higher = more recently used.
    bool valid = false;
  };

  [[nodiscard]] std::uint64_t line_of(std::uint64_t addr) const noexcept {
    return addr >> line_shift_;
  }

  CacheConfig cfg_;
  CacheStats stats_;
  std::uint32_t line_shift_;
  std::uint32_t set_mask_;
  std::uint32_t lru_clock_ = 0;
  std::vector<Way> ways_;  ///< num_sets * ways, set-major.
};

}  // namespace ldlp::sim
