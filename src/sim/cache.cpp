#include "sim/cache.hpp"

#include <bit>

#include "common/assert.hpp"

namespace ldlp::sim {

bool CacheConfig::valid() const noexcept {
  if (size_bytes == 0 || line_bytes == 0 || ways == 0) return false;
  if (!std::has_single_bit(size_bytes) || !std::has_single_bit(line_bytes) ||
      !std::has_single_bit(ways))
    return false;
  if (line_bytes > size_bytes) return false;
  return num_lines() % ways == 0 && num_sets() >= 1;
}

Cache::Cache(CacheConfig cfg) : cfg_(cfg) {
  LDLP_ASSERT_MSG(cfg_.valid(), "cache geometry must be powers of two");
  line_shift_ = static_cast<std::uint32_t>(std::countr_zero(cfg_.line_bytes));
  set_mask_ = cfg_.num_sets() - 1;
  ways_.resize(static_cast<std::size_t>(cfg_.num_sets()) * cfg_.ways);
}

bool Cache::access(std::uint64_t addr) noexcept {
  const std::uint64_t line = line_of(addr);
  const auto set = static_cast<std::uint32_t>(line) & set_mask_;
  const std::uint64_t tag = line >> std::countr_zero(cfg_.num_sets());
  Way* base = &ways_[static_cast<std::size_t>(set) * cfg_.ways];

  // Direct-mapped fast path: no LRU bookkeeping needed.
  if (cfg_.ways == 1) {
    if (base->valid && base->tag == tag) {
      ++stats_.hits;
      return true;
    }
    base->valid = true;
    base->tag = tag;
    ++stats_.misses;
    return false;
  }

  Way* victim = base;
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    Way& way = base[w];
    if (way.valid && way.tag == tag) {
      way.lru = ++lru_clock_;
      ++stats_.hits;
      return true;
    }
    if (!way.valid) {
      victim = &way;
    } else if (victim->valid && way.lru < victim->lru) {
      victim = &way;
    }
  }
  victim->valid = true;
  victim->tag = tag;
  victim->lru = ++lru_clock_;
  ++stats_.misses;
  return false;
}

std::uint32_t Cache::access_range(std::uint64_t addr,
                                  std::uint64_t len) noexcept {
  if (len == 0) return 0;
  std::uint32_t misses = 0;
  const std::uint64_t first = line_of(addr);
  const std::uint64_t last = line_of(addr + len - 1);
  for (std::uint64_t line = first; line <= last; ++line) {
    if (!access(line << line_shift_)) ++misses;
  }
  return misses;
}

bool Cache::contains(std::uint64_t addr) const noexcept {
  const std::uint64_t line = line_of(addr);
  const auto set = static_cast<std::uint32_t>(line) & set_mask_;
  const std::uint64_t tag = line >> std::countr_zero(cfg_.num_sets());
  const Way* base = &ways_[static_cast<std::size_t>(set) * cfg_.ways];
  for (std::uint32_t w = 0; w < cfg_.ways; ++w) {
    if (base[w].valid && base[w].tag == tag) return true;
  }
  return false;
}

void Cache::flush() noexcept {
  for (auto& way : ways_) way.valid = false;
}

std::uint32_t Cache::resident_lines() const noexcept {
  std::uint32_t n = 0;
  for (const auto& way : ways_) n += way.valid ? 1u : 0u;
  return n;
}

}  // namespace ldlp::sim
