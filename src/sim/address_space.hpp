// Randomised code/data placement.
//
// With direct-mapped caches, the number of conflict misses depends on where
// the program lands in memory. The paper insulates its results from layout
// effects by averaging 100 runs, "each with a different random placement in
// memory" (section 4). AddressSpace hands out non-overlapping, line-aligned
// regions at random offsets so each simulation run sees a fresh layout.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"

namespace ldlp::sim {

struct Region {
  std::string name;
  std::uint64_t base = 0;
  std::uint64_t size = 0;

  [[nodiscard]] std::uint64_t end() const noexcept { return base + size; }
  [[nodiscard]] bool overlaps(const Region& other) const noexcept {
    return base < other.end() && other.base < end();
  }
};

class AddressSpace {
 public:
  /// Regions are allocated within [0, span_bytes), aligned to `align`.
  explicit AddressSpace(std::uint64_t span_bytes = 1ull << 30,
                        std::uint64_t align = 32);

  /// Place a region of `size` bytes at a random non-overlapping offset.
  /// Aborts if the space is too full to place it (simulation setups are
  /// tiny relative to the span, so this indicates a configuration error).
  Region allocate(std::string name, std::uint64_t size, Rng& rng);

  /// Place a region deterministically at the lowest free offset (for tests
  /// that need a known layout).
  Region allocate_sequential(std::string name, std::uint64_t size);

  [[nodiscard]] const std::vector<Region>& regions() const noexcept {
    return regions_;
  }

  void clear() noexcept { regions_.clear(); }

 private:
  [[nodiscard]] bool collides(const Region& candidate) const noexcept;

  std::uint64_t span_;
  std::uint64_t align_;
  std::vector<Region> regions_;
};

}  // namespace ldlp::sim
