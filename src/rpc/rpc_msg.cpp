#include "rpc/rpc_msg.hpp"

namespace ldlp::rpc {

namespace {
constexpr std::uint32_t kAuthNone = 0;
constexpr std::uint32_t kReplyAccepted = 0;
}  // namespace

std::vector<std::uint8_t> encode_call(const RpcCall& call) {
  XdrWriter w;
  w.u32(call.xid);
  w.u32(static_cast<std::uint32_t>(MsgKind::kCall));
  w.u32(kRpcVersion);
  w.u32(call.prog);
  w.u32(call.vers);
  w.u32(call.proc);
  // Credential and verifier: AUTH_NONE with empty bodies.
  w.u32(kAuthNone);
  w.u32(0);
  w.u32(kAuthNone);
  w.u32(0);
  w.opaque_fixed(call.args);
  return w.take();
}

std::vector<std::uint8_t> encode_reply(const RpcReply& reply) {
  XdrWriter w;
  w.u32(reply.xid);
  w.u32(static_cast<std::uint32_t>(MsgKind::kReply));
  w.u32(kReplyAccepted);
  // Verifier: AUTH_NONE.
  w.u32(kAuthNone);
  w.u32(0);
  w.u32(static_cast<std::uint32_t>(reply.stat));
  if (reply.stat == AcceptStat::kSuccess) w.opaque_fixed(reply.results);
  return w.take();
}

std::optional<DecodedRpc> decode_rpc(std::span<const std::uint8_t> data) {
  XdrReader r(data);
  const auto xid = r.u32();
  const auto kind = r.u32();
  if (!xid.has_value() || !kind.has_value()) return std::nullopt;

  DecodedRpc out;
  if (*kind == static_cast<std::uint32_t>(MsgKind::kCall)) {
    RpcCall call;
    call.xid = *xid;
    const auto rpcvers = r.u32();
    const auto prog = r.u32();
    const auto vers = r.u32();
    const auto proc = r.u32();
    if (!rpcvers.has_value() || *rpcvers != kRpcVersion || !prog.has_value() ||
        !vers.has_value() || !proc.has_value())
      return std::nullopt;
    call.prog = *prog;
    call.vers = *vers;
    call.proc = *proc;
    // Credential + verifier: flavor and opaque body, both skipped.
    for (int i = 0; i < 2; ++i) {
      const auto flavor = r.u32();
      const auto body = r.opaque(400);
      if (!flavor.has_value() || !body.has_value()) return std::nullopt;
    }
    const auto rest = r.opaque_fixed(static_cast<std::uint32_t>(r.remaining()));
    if (!rest.has_value()) return std::nullopt;
    call.args = std::move(*rest);
    out.call = std::move(call);
    return out;
  }
  if (*kind == static_cast<std::uint32_t>(MsgKind::kReply)) {
    RpcReply reply;
    reply.xid = *xid;
    const auto reply_stat = r.u32();
    if (!reply_stat.has_value() || *reply_stat != kReplyAccepted)
      return std::nullopt;  // MSG_DENIED unsupported (never sent here)
    const auto flavor = r.u32();
    const auto body = r.opaque(400);
    const auto stat = r.u32();
    if (!flavor.has_value() || !body.has_value() || !stat.has_value() ||
        *stat > static_cast<std::uint32_t>(AcceptStat::kSystemErr))
      return std::nullopt;
    reply.stat = static_cast<AcceptStat>(*stat);
    const auto rest = r.opaque_fixed(static_cast<std::uint32_t>(r.remaining()));
    if (!rest.has_value()) return std::nullopt;
    reply.results = std::move(*rest);
    out.reply = std::move(reply);
    return out;
  }
  return std::nullopt;
}

}  // namespace ldlp::rpc
