// ONC RPC message layer (RFC 1831 subset): CALL and REPLY framing with
// AUTH_NONE credentials — the transport under NFS and the other Sun
// services whose messages the paper counts among its small-message
// workloads.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "rpc/xdr.hpp"

namespace ldlp::rpc {

inline constexpr std::uint32_t kRpcVersion = 2;

enum class MsgKind : std::uint32_t { kCall = 0, kReply = 1 };

enum class AcceptStat : std::uint32_t {
  kSuccess = 0,
  kProgUnavail = 1,
  kProgMismatch = 2,
  kProcUnavail = 3,
  kGarbageArgs = 4,
  kSystemErr = 5,
};

struct RpcCall {
  std::uint32_t xid = 0;
  std::uint32_t prog = 0;
  std::uint32_t vers = 0;
  std::uint32_t proc = 0;
  std::vector<std::uint8_t> args;  ///< XDR-encoded procedure arguments.
};

struct RpcReply {
  std::uint32_t xid = 0;
  AcceptStat stat = AcceptStat::kSuccess;
  std::vector<std::uint8_t> results;  ///< XDR-encoded results (kSuccess).
};

[[nodiscard]] std::vector<std::uint8_t> encode_call(const RpcCall& call);
[[nodiscard]] std::vector<std::uint8_t> encode_reply(const RpcReply& reply);

/// Decode either kind; exactly one of the optionals is set on success.
struct DecodedRpc {
  std::optional<RpcCall> call;
  std::optional<RpcReply> reply;
};
[[nodiscard]] std::optional<DecodedRpc> decode_rpc(
    std::span<const std::uint8_t> data);

}  // namespace ldlp::rpc
